#include "src/mks/pager/default_pager.h"

#include <cstring>
#include <vector>

#include "src/base/log.h"
#include "src/mk/vm_object.h"

namespace mks {

namespace {
const hw::CodeRegion& ServeRegion() {
  static const hw::CodeRegion r = hw::DefineCode("mks.pager.serve", 240);
  return r;
}
}  // namespace

DefaultPager::DefaultPager(mk::Kernel& kernel, mk::Task* task, std::unique_ptr<BlockStore> store)
    : kernel_(kernel), task_(task), store_(std::move(store)) {
  auto port = kernel_.PortAllocate(*task_);
  WPOS_CHECK(port.ok());
  receive_port_ = *port;
  port_raw_ = *kernel_.ResolvePort(*task_, receive_port_);
  kernel_.CreateThread(task_, "default-pager", [this](mk::Env& env) { Serve(env); },
                       mk::Thread::kDefaultPriority + 3);
}

std::shared_ptr<mk::VmObject> DefaultPager::CreateBackedObject(uint64_t size) {
  auto object = std::make_shared<mk::VmObject>(hw::PageRound(size));
  kernel_.RegisterPagedObject(object, port_raw_, 0);
  return object;
}

uint64_t DefaultPager::LbaFor(uint64_t object_id, uint64_t page_index, bool allocate) {
  const auto key = std::make_pair(object_id, page_index);
  auto it = allocation_.find(key);
  if (it != allocation_.end()) {
    return it->second;
  }
  if (!allocate) {
    return ~0ull;
  }
  const uint64_t lba = next_lba_;
  next_lba_ += kSectorsPerPage;
  WPOS_CHECK(next_lba_ <= store_->num_sectors()) << "paging partition exhausted";
  allocation_.emplace(key, lba);
  return lba;
}

base::Status DefaultPager::Preload(uint64_t object_id, uint64_t page_index, const void* page) {
  // Host-side staging: the page is held in memory and served (or flushed by a
  // later data-write) as if it had been paged out before the system booted.
  std::vector<uint8_t> copy(hw::kPageSize);
  std::memcpy(copy.data(), page, hw::kPageSize);
  preloaded_[std::make_pair(object_id, page_index)] = std::move(copy);
  return base::Status::kOk;
}

void DefaultPager::Serve(mk::Env& env) {
  struct Buffers {
    mk::PagerRequest req;
    std::vector<uint8_t> page = std::vector<uint8_t>(hw::kPageSize);
  } b;
  while (true) {
    mk::RpcRef ref;
    ref.recv_buf = b.page.data();
    ref.recv_cap = static_cast<uint32_t>(b.page.size());
    auto req = env.RpcReceive(receive_port_, &b.req, sizeof(b.req), &ref);
    if (!req.ok()) {
      return;
    }
    mk::trace::Tracer& tracer = kernel_.tracer();
    mk::trace::ScopedSpan op_span(tracer, mk::trace::SpanKind::kServerOp,
                                  mk::trace::EventType::kServerDispatch,
                                  mk::trace::EventType::kServerDone,
                                  static_cast<uint64_t>(b.req.op));
    op_span.set_end_payload(static_cast<uint64_t>(b.req.op));
    tracer.LabelSpan(op_span.id(), "pager");
    ++tracer.metrics().Counter("server.pager.ops");
    kernel_.cpu().Execute(ServeRegion());
    mk::PagerReply reply{};
    if (b.req.op == mk::PagerOp::kDataRequest) {
      ++pageins_served_;
      ++tracer.metrics().Counter("server.pager.pageins");
      const auto key = std::make_pair(b.req.object_id, b.req.page_index);
      std::vector<uint8_t> out(hw::kPageSize, 0);
      if (auto pre = preloaded_.find(key); pre != preloaded_.end()) {
        out = pre->second;
      } else {
        const uint64_t lba = LbaFor(b.req.object_id, b.req.page_index, /*allocate=*/false);
        if (lba != ~0ull) {
          const base::Status st = store_->Read(env, lba, kSectorsPerPage, out.data());
          if (st != base::Status::kOk) {
            reply.status = static_cast<int32_t>(st);
          }
        }
        // Never-written pages page in as zeros.
      }
      env.RpcReply(req->token, &reply, sizeof(reply), out.data(),
                   static_cast<uint32_t>(out.size()));
    } else if (b.req.op == mk::PagerOp::kDataWrite) {
      ++pageouts_served_;
      ++tracer.metrics().Counter("server.pager.pageouts");
      if (ref.recv_len != hw::kPageSize) {
        reply.status = static_cast<int32_t>(base::Status::kInvalidArgument);
      } else {
        const uint64_t lba = LbaFor(b.req.object_id, b.req.page_index, /*allocate=*/true);
        const base::Status st = store_->Write(env, lba, kSectorsPerPage, b.page.data());
        reply.status = static_cast<int32_t>(st);
        preloaded_.erase(std::make_pair(b.req.object_id, b.req.page_index));
      }
      env.RpcReply(req->token, &reply, sizeof(reply));
    } else if (b.req.op == mk::PagerOp::kObjectSetup) {
      // Backing store allocates lazily; the init handshake is just an ack.
      env.RpcReply(req->token, &reply, sizeof(reply));
    } else if (b.req.op == mk::PagerOp::kObjectTerminate) {
      const uint64_t gone = b.req.object_id;
      std::erase_if(allocation_, [gone](const auto& kv) { return kv.first.first == gone; });
      std::erase_if(preloaded_, [gone](const auto& kv) { return kv.first.first == gone; });
      env.RpcReply(req->token, &reply, sizeof(reply));
    } else {
      reply.status = static_cast<int32_t>(base::Status::kNotSupported);
      env.RpcReply(req->token, &reply, sizeof(reply));
    }
  
    if (!running_) {
      // Server shutdown: kill the service port so queued and future
      // callers fail with kPortDead instead of blocking forever.
      (void)kernel_.PortDestroy(*task_, receive_port_);
      return;
    }
  }
}

}  // namespace mks
