// The default pager: the Microkernel Services component that backs anonymous
// memory objects with a paging partition on disk. It is an ordinary
// user-level RPC server speaking the external-memory-object protocol
// (src/mk/pager_protocol.h); the kernel's fault path RPCs to it exactly as it
// would to any personality-provided pager.
#ifndef SRC_MKS_PAGER_DEFAULT_PAGER_H_
#define SRC_MKS_PAGER_DEFAULT_PAGER_H_

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/hw/disk.h"
#include "src/mk/kernel.h"
#include "src/mk/pager_protocol.h"

namespace mks {

// Abstract block access so the pager can run against the raw disk backdoor
// (tests) or a real driver stack (system assembly).
class BlockStore {
 public:
  virtual ~BlockStore() = default;
  virtual base::Status Read(mk::Env& env, uint64_t lba, uint32_t count, void* out) = 0;
  virtual base::Status Write(mk::Env& env, uint64_t lba, uint32_t count, const void* src) = 0;
  virtual uint64_t num_sectors() const = 0;
};

class DefaultPager {
 public:
  static constexpr uint32_t kSectorsPerPage = 4096 / 512;

  DefaultPager(mk::Kernel& kernel, mk::Task* task, std::unique_ptr<BlockStore> store);

  mk::Task* task() const { return task_; }
  mk::Port* port_raw() const { return port_raw_; }
  void Stop() { running_ = false; }

  // Creates a pager-backed object of `size` bytes registered with the kernel.
  std::shared_ptr<mk::VmObject> CreateBackedObject(uint64_t size);

  // Host-side helper: pre-populates the backing store for (object, page), as
  // if the page had been paged out earlier. Usable before the kernel runs.
  base::Status Preload(uint64_t object_id, uint64_t page_index, const void* page);

  uint64_t pageins_served() const { return pageins_served_; }
  uint64_t pageouts_served() const { return pageouts_served_; }
  uint64_t sectors_allocated() const { return next_lba_; }

 private:
  void Serve(mk::Env& env);
  uint64_t LbaFor(uint64_t object_id, uint64_t page_index, bool allocate);

  mk::Kernel& kernel_;
  mk::Task* task_;
  mk::PortName receive_port_ = mk::kNullPort;
  mk::Port* port_raw_ = nullptr;
  std::unique_ptr<BlockStore> store_;
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> allocation_;  // (obj,page) -> lba
  std::map<std::pair<uint64_t, uint64_t>, std::vector<uint8_t>> preloaded_;
  uint64_t next_lba_ = 0;
  uint64_t pageins_served_ = 0;
  uint64_t pageouts_served_ = 0;
  bool running_ = true;
};

// BlockStore over the disk's host backdoor, with the device latency modelled
// as a sleep (the full driver-based store lives in src/drv).
class BackdoorBlockStore : public BlockStore {
 public:
  explicit BackdoorBlockStore(hw::Disk* disk, uint64_t latency_ns = 300'000)
      : disk_(disk), latency_ns_(latency_ns) {}

  base::Status Read(mk::Env& env, uint64_t lba, uint32_t count, void* out) override {
    env.SleepNs(latency_ns_);
    disk_->ReadSectors(lba, count, out);
    return base::Status::kOk;
  }
  base::Status Write(mk::Env& env, uint64_t lba, uint32_t count, const void* src) override {
    env.SleepNs(latency_ns_);
    disk_->WriteSectors(lba, count, src);
    return base::Status::kOk;
  }
  uint64_t num_sectors() const override { return disk_->num_sectors(); }

 private:
  hw::Disk* disk_;
  uint64_t latency_ns_;
};

}  // namespace mks

#endif  // SRC_MKS_PAGER_DEFAULT_PAGER_H_
