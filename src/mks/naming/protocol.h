// Wire protocol of the Microkernel Services name service.
//
// The full service is X.500-flavoured (paper: "We based our interfaces on a
// subset of the X.500 architecture to support storing attribute information
// with names, complex naming formats, sophisticated search mechanisms and
// notifications on name space alteration"). The lite service (Release 2)
// supports only register/resolve over a flat namespace.
#ifndef SRC_MKS_NAMING_PROTOCOL_H_
#define SRC_MKS_NAMING_PROTOCOL_H_

#include <cstdint>
#include <cstring>

namespace mks {

inline constexpr uint32_t kMaxNameLen = 120;
inline constexpr uint32_t kMaxAttrKey = 24;
inline constexpr uint32_t kMaxAttrValue = 48;
inline constexpr uint32_t kMaxAttrsPerEntry = 6;
inline constexpr uint32_t kMaxListResults = 16;

enum class NameOp : uint32_t {
  kRegister = 1,     // bind name -> transferred port right (+ attributes)
  kResolve = 2,      // name -> granted send right
  kUnregister = 3,
  kList = 4,         // children of a directory name
  kSearch = 5,       // attribute filter -> matching names
  kSetAttr = 6,
  kGetAttr = 7,
  kWatch = 8,        // notifications on namespace alteration under a prefix
};

struct Attribute {
  char key[kMaxAttrKey] = {};
  char value[kMaxAttrValue] = {};
};

struct NameRequest {
  NameOp op = NameOp::kResolve;
  char name[kMaxNameLen] = {};
  // kSearch: attribute filter; kSetAttr/kRegister: attribute payload.
  Attribute attr;
  uint32_t attr_count = 0;  // kRegister: attributes in the bulk-ref payload

  void SetName(const char* s) {
    std::strncpy(name, s, kMaxNameLen - 1);
    name[kMaxNameLen - 1] = '\0';
  }
};

struct NameReply {
  int32_t status = 0;  // base::Status
  uint32_t count = 0;  // kList/kSearch: number of results in the bulk reply
  Attribute attr;      // kGetAttr result
};

// kList/kSearch bulk reply: `count` of these.
struct NameListEntry {
  char name[kMaxNameLen] = {};
};

// Notification message (legacy IPC) posted to watchers.
struct NameEvent {
  uint32_t kind = 0;  // 1 = registered, 2 = unregistered, 3 = attr changed
  char name[kMaxNameLen] = {};
};

enum class LiteNameOp : uint32_t {
  kRegister = 1,
  kResolve = 2,
};

struct LiteNameRequest {
  LiteNameOp op = LiteNameOp::kResolve;
  char name[kMaxNameLen] = {};
  void SetName(const char* s) {
    std::strncpy(name, s, kMaxNameLen - 1);
    name[kMaxNameLen - 1] = '\0';
  }
};

struct LiteNameReply {
  int32_t status = 0;
};

}  // namespace mks

#endif  // SRC_MKS_NAMING_PROTOCOL_H_
