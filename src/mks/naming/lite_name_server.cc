#include "src/mks/naming/lite_name_server.h"

#include <cstring>

#include "src/base/log.h"

namespace mks {

namespace {
const hw::CodeRegion& LookupRegion() {
  // One flat hash probe; contrast with the full service's per-component walk.
  static const hw::CodeRegion r = hw::DefineCode("mks.name_lite.lookup", 70);
  return r;
}
}  // namespace

LiteNameServer::LiteNameServer(mk::Kernel& kernel, mk::Task* task)
    : kernel_(kernel), task_(task) {
  auto port = kernel_.PortAllocate(*task_);
  WPOS_CHECK(port.ok());
  receive_port_ = *port;
  table_sim_addr_ = kernel_.heap().Allocate(4096);
  kernel_.CreateThread(task_, "lite-name-server", [this](mk::Env& env) { Serve(env); },
                       mk::Thread::kDefaultPriority + 2);
}

mk::PortName LiteNameServer::GrantTo(mk::Task& client) {
  auto name = kernel_.MakeSendRight(*task_, receive_port_, client);
  WPOS_CHECK(name.ok());
  return *name;
}

void LiteNameServer::Serve(mk::Env& env) {
  static const hw::CodeRegion kLoop =
      hw::DefineCode("loop.naming_lite", mk::Costs::kRpcServerLoop);
  LiteNameRequest r;
  while (true) {
    auto req = env.RpcReceive(receive_port_, &r, sizeof(r));
    if (!req.ok()) {
      return;
    }
    mk::trace::Tracer& tracer = kernel_.tracer();
    mk::trace::ScopedSpan op_span(tracer, mk::trace::SpanKind::kServerOp,
                                  mk::trace::EventType::kServerDispatch,
                                  mk::trace::EventType::kServerDone,
                                  static_cast<uint64_t>(r.op));
    op_span.set_end_payload(static_cast<uint64_t>(r.op));
    tracer.LabelSpan(op_span.id(), "naming_lite");
    ++tracer.metrics().Counter("server.naming_lite.ops");
    kernel_.cpu().Execute(kLoop);
    kernel_.cpu().Execute(LookupRegion());
    const uint64_t bucket = std::hash<std::string_view>{}(r.name) % 64;
    kernel_.cpu().AccessData(table_sim_addr_ + bucket * 64, 32, /*write=*/false);
    LiteNameReply reply;
    if (r.op == LiteNameOp::kRegister) {
      if (req->rights.empty()) {
        reply.status = static_cast<int32_t>(base::Status::kInvalidArgument);
      } else if (!entries_.emplace(r.name, req->rights.front()).second) {
        reply.status = static_cast<int32_t>(base::Status::kAlreadyExists);
      }
      env.RpcReply(req->token, &reply, sizeof(reply));
    } else if (r.op == LiteNameOp::kResolve) {
      ++resolves_;
      auto it = entries_.find(r.name);
      if (it == entries_.end()) {
        reply.status = static_cast<int32_t>(base::Status::kNotFound);
        env.RpcReply(req->token, &reply, sizeof(reply));
      } else {
        env.RpcReply(req->token, &reply, sizeof(reply), nullptr, 0, /*grant=*/it->second);
      }
    } else {
      reply.status = static_cast<int32_t>(base::Status::kNotSupported);
      env.RpcReply(req->token, &reply, sizeof(reply));
    }
  
    if (!running_) {
      // Server shutdown: kill the service port so queued and future
      // callers fail with kPortDead instead of blocking forever.
      (void)kernel_.PortDestroy(*task_, receive_port_);
      return;
    }
  }
}

base::Status LiteNameClient::Register(mk::Env& env, const std::string& name, mk::PortName right) {
  LiteNameRequest r;
  r.op = LiteNameOp::kRegister;
  r.SetName(name.c_str());
  LiteNameReply reply;
  mk::RightDescriptor rd{.name = right, .disposition = mk::RightType::kSend};
  const base::Status st = stub_.Call(env, r, &reply, nullptr, &rd, 1);
  return st != base::Status::kOk ? st : static_cast<base::Status>(reply.status);
}

base::Result<mk::PortName> LiteNameClient::Resolve(mk::Env& env, const std::string& name) {
  LiteNameRequest r;
  r.op = LiteNameOp::kResolve;
  r.SetName(name.c_str());
  LiteNameReply reply;
  mk::PortName granted = mk::kNullPort;
  const base::Status st = stub_.Call(env, r, &reply, nullptr, nullptr, 0, &granted);
  if (st != base::Status::kOk) {
    return st;
  }
  if (reply.status != 0) {
    return static_cast<base::Status>(reply.status);
  }
  return granted;
}

}  // namespace mks
