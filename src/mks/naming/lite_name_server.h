// Release-2 "lite" name service for embedded configurations: a flat
// hash-mapped namespace with register/resolve only — the alternative the
// paper says was added because the X.500-style design was too expensive.
#ifndef SRC_MKS_NAMING_LITE_NAME_SERVER_H_
#define SRC_MKS_NAMING_LITE_NAME_SERVER_H_

#include <string>
#include <unordered_map>

#include "src/mk/kernel.h"
#include "src/mk/server_loop.h"
#include "src/mks/naming/protocol.h"

namespace mks {

class LiteNameServer {
 public:
  LiteNameServer(mk::Kernel& kernel, mk::Task* task);

  mk::PortName receive_port() const { return receive_port_; }
  mk::PortName GrantTo(mk::Task& client);
  void Stop() { running_ = false; }

  uint64_t resolves() const { return resolves_; }

 private:
  void Serve(mk::Env& env);

  mk::Kernel& kernel_;
  mk::Task* task_;
  mk::PortName receive_port_ = mk::kNullPort;
  std::unordered_map<std::string, mk::PortName> entries_;
  hw::PhysAddr table_sim_addr_ = 0;
  uint64_t resolves_ = 0;
  bool running_ = true;
};

class LiteNameClient {
 public:
  explicit LiteNameClient(mk::PortName service) : stub_("naming_lite.client", service) {}

  base::Status Register(mk::Env& env, const std::string& name, mk::PortName right);
  base::Result<mk::PortName> Resolve(mk::Env& env, const std::string& name);

 private:
  mk::ClientStub stub_;
};

}  // namespace mks

#endif  // SRC_MKS_NAMING_LITE_NAME_SERVER_H_
