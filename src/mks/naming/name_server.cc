#include "src/mks/naming/name_server.h"

#include <cstring>

#include "src/base/log.h"

namespace mks {

namespace {
const hw::CodeRegion& ParseRegion() {
  static const hw::CodeRegion r = hw::DefineCode("mks.name.parse", 180);
  return r;
}
const hw::CodeRegion& ComponentRegion() {
  static const hw::CodeRegion r = hw::DefineCode("mks.name.component", 140);
  return r;
}
const hw::CodeRegion& AttrRegion() {
  static const hw::CodeRegion r = hw::DefineCode("mks.name.attr_match", 90);
  return r;
}
const hw::CodeRegion& NotifyRegion() {
  static const hw::CodeRegion r = hw::DefineCode("mks.name.notify", 130);
  return r;
}

std::string Canonical(const char* raw) {
  std::string name(raw);
  while (name.size() > 1 && name.back() == '/') {
    name.pop_back();
  }
  if (name.empty() || name.front() != '/') {
    name.insert(name.begin(), '/');
  }
  return name;
}

bool IsDirectChild(const std::string& dir, const std::string& name) {
  const std::string prefix = dir == "/" ? "/" : dir + "/";
  if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix) != 0) {
    return false;
  }
  return name.find('/', prefix.size()) == std::string::npos;
}
}  // namespace

NameServer::NameServer(mk::Kernel& kernel, mk::Task* task) : kernel_(kernel), task_(task) {
  auto port = kernel_.PortAllocate(*task_);
  WPOS_CHECK(port.ok());
  receive_port_ = *port;
  kernel_.CreateThread(task_, "name-server", [this](mk::Env& env) { Serve(env); },
                       mk::Thread::kDefaultPriority + 2);
}

mk::PortName NameServer::GrantTo(mk::Task& client) {
  auto name = kernel_.MakeSendRight(*task_, receive_port_, client);
  WPOS_CHECK(name.ok());
  return *name;
}

void NameServer::Stop() { running_ = false; }

void NameServer::ChargeNameWalk(const std::string& name) {
  kernel_.cpu().Execute(ParseRegion());
  size_t components = 0;
  std::string prefix;
  for (size_t i = 1; i <= name.size(); ++i) {
    if (i == name.size() || name[i] == '/') {
      ++components;
      prefix = name.substr(0, i);
      kernel_.cpu().Execute(ComponentRegion());
      auto it = entries_.lower_bound(prefix);
      if (it != entries_.end() && it->second.sim_addr != 0) {
        kernel_.cpu().AccessData(it->second.sim_addr, 48, /*write=*/false);
      }
    }
  }
}

void NameServer::Serve(mk::Env& env) {
  std::vector<uint8_t> buf(sizeof(NameRequest));
  std::vector<uint8_t> ref(sizeof(Attribute) * kMaxAttrsPerEntry);
  static const hw::CodeRegion kLoop = hw::DefineCode("loop.naming", mk::Costs::kRpcServerLoop);
  static const hw::CodeRegion kStub = hw::DefineCode("stub.naming", mk::Costs::kRpcServerStub);
  while (true) {
    mk::RpcRef rref;
    rref.recv_buf = ref.data();
    rref.recv_cap = static_cast<uint32_t>(ref.size());
    auto req = env.RpcReceive(receive_port_, buf.data(), static_cast<uint32_t>(buf.size()), &rref);
    if (!req.ok()) {
      return;
    }
    kernel_.cpu().Execute(kLoop);
    kernel_.cpu().Execute(kStub);
    NameRequest r;
    std::memcpy(&r, buf.data(), std::min<size_t>(req->req_len, sizeof(r)));
    mk::trace::Tracer& tracer = kernel_.tracer();
    mk::trace::ScopedSpan op_span(tracer, mk::trace::SpanKind::kServerOp,
                                  mk::trace::EventType::kServerDispatch,
                                  mk::trace::EventType::kServerDone,
                                  static_cast<uint64_t>(r.op));
    op_span.set_end_payload(static_cast<uint64_t>(r.op));
    tracer.LabelSpan(op_span.id(), "naming");
    ++tracer.metrics().Counter("server.naming.ops");
    switch (r.op) {
      case NameOp::kRegister:
        HandleRegister(env, *req, r, ref.data(), rref.recv_len);
        break;
      case NameOp::kResolve:
        HandleResolve(env, *req, r);
        break;
      case NameOp::kUnregister:
        HandleUnregister(env, *req, r);
        break;
      case NameOp::kList:
        HandleList(env, *req, r);
        break;
      case NameOp::kSearch:
        HandleSearch(env, *req, r);
        break;
      case NameOp::kSetAttr:
        HandleSetAttr(env, *req, r);
        break;
      case NameOp::kGetAttr:
        HandleGetAttr(env, *req, r);
        break;
      case NameOp::kWatch:
        HandleWatch(env, *req, r);
        break;
      default: {
        NameReply reply;
        reply.status = static_cast<int32_t>(base::Status::kNotSupported);
        env.RpcReply(req->token, &reply, sizeof(reply));
      }
    }
  
    if (!running_) {
      // Server shutdown: kill the service port so queued and future
      // callers fail with kPortDead instead of blocking forever.
      (void)kernel_.PortDestroy(*task_, receive_port_);
      return;
    }
  }
}

void NameServer::HandleRegister(mk::Env& env, const mk::RpcRequest& req, const NameRequest& r,
                                const uint8_t* ref, uint32_t ref_len) {
  NameReply reply;
  const std::string name = Canonical(r.name);
  ChargeNameWalk(name);
  if (req.rights.empty()) {
    reply.status = static_cast<int32_t>(base::Status::kInvalidArgument);
    env.RpcReply(req.token, &reply, sizeof(reply));
    return;
  }
  if (entries_.contains(name)) {
    reply.status = static_cast<int32_t>(base::Status::kAlreadyExists);
    env.RpcReply(req.token, &reply, sizeof(reply));
    return;
  }
  Node node;
  node.right = req.rights.front();
  node.sim_addr = kernel_.heap().Allocate(128);
  const uint32_t n_attrs = std::min(r.attr_count, kMaxAttrsPerEntry);
  for (uint32_t i = 0; i < n_attrs && (i + 1) * sizeof(Attribute) <= ref_len; ++i) {
    Attribute a;
    std::memcpy(&a, ref + i * sizeof(Attribute), sizeof(Attribute));
    node.attrs.push_back(a);
  }
  entries_.emplace(name, std::move(node));
  ++registrations_;
  NotifyWatchers(env, 1, name);
  env.RpcReply(req.token, &reply, sizeof(reply));
}

void NameServer::HandleResolve(mk::Env& env, const mk::RpcRequest& req, const NameRequest& r) {
  NameReply reply;
  const std::string name = Canonical(r.name);
  ChargeNameWalk(name);
  ++resolves_;
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    reply.status = static_cast<int32_t>(base::Status::kNotFound);
    env.RpcReply(req.token, &reply, sizeof(reply));
    return;
  }
  kernel_.cpu().AccessData(it->second.sim_addr, 48, /*write=*/false);
  env.RpcReply(req.token, &reply, sizeof(reply), nullptr, 0, /*grant=*/it->second.right);
}

void NameServer::HandleUnregister(mk::Env& env, const mk::RpcRequest& req, const NameRequest& r) {
  NameReply reply;
  const std::string name = Canonical(r.name);
  ChargeNameWalk(name);
  if (entries_.erase(name) == 0) {
    reply.status = static_cast<int32_t>(base::Status::kNotFound);
  } else {
    NotifyWatchers(env, 2, name);
  }
  env.RpcReply(req.token, &reply, sizeof(reply));
}

void NameServer::HandleList(mk::Env& env, const mk::RpcRequest& req, const NameRequest& r) {
  NameReply reply;
  const std::string dir = Canonical(r.name);
  ChargeNameWalk(dir);
  std::vector<NameListEntry> results;
  for (const auto& [name, node] : entries_) {
    kernel_.cpu().Execute(ComponentRegion());
    if (IsDirectChild(dir, name) && results.size() < kMaxListResults) {
      NameListEntry e;
      std::strncpy(e.name, name.c_str(), kMaxNameLen - 1);
      results.push_back(e);
    }
  }
  reply.count = static_cast<uint32_t>(results.size());
  env.RpcReply(req.token, &reply, sizeof(reply), results.data(),
               static_cast<uint32_t>(results.size() * sizeof(NameListEntry)));
}

void NameServer::HandleSearch(mk::Env& env, const mk::RpcRequest& req, const NameRequest& r) {
  NameReply reply;
  std::vector<NameListEntry> results;
  for (const auto& [name, node] : entries_) {
    kernel_.cpu().Execute(AttrRegion());
    kernel_.cpu().AccessData(node.sim_addr, 64, /*write=*/false);
    for (const Attribute& a : node.attrs) {
      if (std::strncmp(a.key, r.attr.key, kMaxAttrKey) == 0 &&
          std::strncmp(a.value, r.attr.value, kMaxAttrValue) == 0) {
        if (results.size() < kMaxListResults) {
          NameListEntry e;
          std::strncpy(e.name, name.c_str(), kMaxNameLen - 1);
          results.push_back(e);
        }
        break;
      }
    }
  }
  reply.count = static_cast<uint32_t>(results.size());
  env.RpcReply(req.token, &reply, sizeof(reply), results.data(),
               static_cast<uint32_t>(results.size() * sizeof(NameListEntry)));
}

void NameServer::HandleSetAttr(mk::Env& env, const mk::RpcRequest& req, const NameRequest& r) {
  NameReply reply;
  const std::string name = Canonical(r.name);
  ChargeNameWalk(name);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    reply.status = static_cast<int32_t>(base::Status::kNotFound);
  } else {
    kernel_.cpu().AccessData(it->second.sim_addr, 64, /*write=*/true);
    bool updated = false;
    for (Attribute& a : it->second.attrs) {
      if (std::strncmp(a.key, r.attr.key, kMaxAttrKey) == 0) {
        std::memcpy(a.value, r.attr.value, kMaxAttrValue);
        updated = true;
        break;
      }
    }
    if (!updated) {
      if (it->second.attrs.size() >= kMaxAttrsPerEntry) {
        reply.status = static_cast<int32_t>(base::Status::kNoSpace);
      } else {
        it->second.attrs.push_back(r.attr);
      }
    }
    if (reply.status == 0) {
      NotifyWatchers(env, 3, name);
    }
  }
  env.RpcReply(req.token, &reply, sizeof(reply));
}

void NameServer::HandleGetAttr(mk::Env& env, const mk::RpcRequest& req, const NameRequest& r) {
  NameReply reply;
  const std::string name = Canonical(r.name);
  ChargeNameWalk(name);
  auto it = entries_.find(name);
  reply.status = static_cast<int32_t>(base::Status::kNotFound);
  if (it != entries_.end()) {
    for (const Attribute& a : it->second.attrs) {
      kernel_.cpu().Execute(AttrRegion());
      if (std::strncmp(a.key, r.attr.key, kMaxAttrKey) == 0) {
        reply.attr = a;
        reply.status = 0;
        break;
      }
    }
  }
  env.RpcReply(req.token, &reply, sizeof(reply));
}

void NameServer::HandleWatch(mk::Env& env, const mk::RpcRequest& req, const NameRequest& r) {
  NameReply reply;
  if (req.rights.empty()) {
    reply.status = static_cast<int32_t>(base::Status::kInvalidArgument);
  } else {
    auto port = kernel_.ResolvePort(*task_, req.rights.front());
    if (!port.ok()) {
      reply.status = static_cast<int32_t>(port.status());
    } else {
      watchers_.push_back({Canonical(r.name), *port});
    }
  }
  env.RpcReply(req.token, &reply, sizeof(reply));
}

void NameServer::NotifyWatchers(mk::Env& env, uint32_t kind, const std::string& name) {
  for (const Watcher& w : watchers_) {
    const std::string prefix = w.prefix == "/" ? "/" : w.prefix + "/";
    if (name != w.prefix && name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    kernel_.cpu().Execute(NotifyRegion());
    if (w.port->dead() || w.port->queue.size() >= w.port->queue_limit) {
      continue;
    }
    NameEvent event;
    event.kind = kind;
    std::strncpy(event.name, name.c_str(), kMaxNameLen - 1);
    auto qm = std::make_unique<mk::QueuedMessage>();
    qm->msg_id = 0x3000;
    qm->kernel_buffer = kernel_.heap().Allocate(sizeof(NameEvent));
    qm->inline_data.resize(sizeof(NameEvent));
    std::memcpy(qm->inline_data.data(), &event, sizeof(NameEvent));
    w.port->queue.push_back(std::move(qm));
    if (mk::Thread* receiver = w.port->blocked_receivers.DequeueFront()) {
      receiver->waiting_on = nullptr;
      kernel_.scheduler().Wake(receiver, base::Status::kOk);
    }
  }
}

// --- Client library ---------------------------------------------------------------

base::Status NameClient::Register(mk::Env& env, const std::string& name, mk::PortName right,
                                  const std::vector<Attribute>& attrs) {
  NameRequest r;
  r.op = NameOp::kRegister;
  r.SetName(name.c_str());
  r.attr_count = static_cast<uint32_t>(attrs.size());
  NameReply reply;
  mk::RightDescriptor rd{.name = right, .disposition = mk::RightType::kSend};
  mk::RpcRef ref;
  if (!attrs.empty()) {
    ref.send_data = attrs.data();
    ref.send_len = static_cast<uint32_t>(attrs.size() * sizeof(Attribute));
  }
  const base::Status st = stub_.Call(env, r, &reply, attrs.empty() ? nullptr : &ref, &rd, 1);
  if (st != base::Status::kOk) {
    return st;
  }
  return static_cast<base::Status>(reply.status);
}

base::Result<mk::PortName> NameClient::Resolve(mk::Env& env, const std::string& name) {
  NameRequest r;
  r.op = NameOp::kResolve;
  r.SetName(name.c_str());
  NameReply reply;
  mk::PortName granted = mk::kNullPort;
  const base::Status st = stub_.Call(env, r, &reply, nullptr, nullptr, 0, &granted);
  if (st != base::Status::kOk) {
    return st;
  }
  if (reply.status != 0) {
    return static_cast<base::Status>(reply.status);
  }
  return granted;
}

base::Status NameClient::Unregister(mk::Env& env, const std::string& name) {
  NameRequest r;
  r.op = NameOp::kUnregister;
  r.SetName(name.c_str());
  NameReply reply;
  const base::Status st = stub_.Call(env, r, &reply);
  return st != base::Status::kOk ? st : static_cast<base::Status>(reply.status);
}

base::Result<std::vector<std::string>> NameClient::List(mk::Env& env, const std::string& dir) {
  NameRequest r;
  r.op = NameOp::kList;
  r.SetName(dir.c_str());
  NameReply reply;
  std::vector<NameListEntry> results(kMaxListResults);
  mk::RpcRef ref;
  ref.recv_buf = results.data();
  ref.recv_cap = static_cast<uint32_t>(results.size() * sizeof(NameListEntry));
  const base::Status st = stub_.Call(env, r, &reply, &ref);
  if (st != base::Status::kOk) {
    return st;
  }
  if (reply.status != 0) {
    return static_cast<base::Status>(reply.status);
  }
  std::vector<std::string> names;
  for (uint32_t i = 0; i < reply.count; ++i) {
    names.emplace_back(results[i].name);
  }
  return names;
}

base::Result<std::vector<std::string>> NameClient::Search(mk::Env& env, const std::string& key,
                                                          const std::string& value) {
  NameRequest r;
  r.op = NameOp::kSearch;
  std::strncpy(r.attr.key, key.c_str(), kMaxAttrKey - 1);
  std::strncpy(r.attr.value, value.c_str(), kMaxAttrValue - 1);
  NameReply reply;
  std::vector<NameListEntry> results(kMaxListResults);
  mk::RpcRef ref;
  ref.recv_buf = results.data();
  ref.recv_cap = static_cast<uint32_t>(results.size() * sizeof(NameListEntry));
  const base::Status st = stub_.Call(env, r, &reply, &ref);
  if (st != base::Status::kOk) {
    return st;
  }
  std::vector<std::string> names;
  for (uint32_t i = 0; i < reply.count; ++i) {
    names.emplace_back(results[i].name);
  }
  return names;
}

base::Status NameClient::SetAttr(mk::Env& env, const std::string& name, const std::string& key,
                                 const std::string& value) {
  NameRequest r;
  r.op = NameOp::kSetAttr;
  r.SetName(name.c_str());
  std::strncpy(r.attr.key, key.c_str(), kMaxAttrKey - 1);
  std::strncpy(r.attr.value, value.c_str(), kMaxAttrValue - 1);
  NameReply reply;
  const base::Status st = stub_.Call(env, r, &reply);
  return st != base::Status::kOk ? st : static_cast<base::Status>(reply.status);
}

base::Result<std::string> NameClient::GetAttr(mk::Env& env, const std::string& name,
                                              const std::string& key) {
  NameRequest r;
  r.op = NameOp::kGetAttr;
  r.SetName(name.c_str());
  std::strncpy(r.attr.key, key.c_str(), kMaxAttrKey - 1);
  NameReply reply;
  const base::Status st = stub_.Call(env, r, &reply);
  if (st != base::Status::kOk) {
    return st;
  }
  if (reply.status != 0) {
    return static_cast<base::Status>(reply.status);
  }
  return std::string(reply.attr.value);
}

base::Status NameClient::Watch(mk::Env& env, const std::string& prefix,
                               mk::PortName notify_port) {
  NameRequest r;
  r.op = NameOp::kWatch;
  r.SetName(prefix.c_str());
  NameReply reply;
  mk::RightDescriptor rd{.name = notify_port, .disposition = mk::RightType::kSend};
  const base::Status st = stub_.Call(env, r, &reply, nullptr, &rd, 1);
  return st != base::Status::kOk ? st : static_cast<base::Status>(reply.status);
}

}  // namespace mks
