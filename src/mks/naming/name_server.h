// The Microkernel Services name service.
//
// The microkernel's capabilities are task-local, so clients and servers find
// each other through this user-level service: a single rooted tree of
// slash-separated names with per-entry attributes, prefix listing, attribute
// search, and notifications on namespace alteration. The cost of all that
// generality is one of the paper's observations — hence the Release-2 "lite"
// service (lite_name_server.h) for embedded configurations.
#ifndef SRC_MKS_NAMING_NAME_SERVER_H_
#define SRC_MKS_NAMING_NAME_SERVER_H_

#include <map>
#include <string>
#include <vector>

#include "src/mk/kernel.h"
#include "src/mk/server_loop.h"
#include "src/mks/naming/protocol.h"

namespace mks {

class NameServer {
 public:
  // Creates the receive port in `task` and spawns the service thread.
  NameServer(mk::Kernel& kernel, mk::Task* task);

  mk::Task* task() const { return task_; }
  mk::PortName receive_port() const { return receive_port_; }
  // Gives `client` a send right to the service.
  mk::PortName GrantTo(mk::Task& client);
  void Stop();

  uint64_t resolves() const { return resolves_; }
  uint64_t registrations() const { return registrations_; }
  size_t entry_count() const { return entries_.size(); }

 private:
  struct Node {
    mk::PortName right = mk::kNullPort;  // name in the *server's* port space
    std::vector<Attribute> attrs;
    hw::PhysAddr sim_addr = 0;
  };
  struct Watcher {
    std::string prefix;
    mk::Port* port = nullptr;
  };

  void Serve(mk::Env& env);
  void HandleRegister(mk::Env& env, const mk::RpcRequest& req, const NameRequest& r,
                      const uint8_t* ref, uint32_t ref_len);
  void HandleResolve(mk::Env& env, const mk::RpcRequest& req, const NameRequest& r);
  void HandleUnregister(mk::Env& env, const mk::RpcRequest& req, const NameRequest& r);
  void HandleList(mk::Env& env, const mk::RpcRequest& req, const NameRequest& r);
  void HandleSearch(mk::Env& env, const mk::RpcRequest& req, const NameRequest& r);
  void HandleSetAttr(mk::Env& env, const mk::RpcRequest& req, const NameRequest& r);
  void HandleGetAttr(mk::Env& env, const mk::RpcRequest& req, const NameRequest& r);
  void HandleWatch(mk::Env& env, const mk::RpcRequest& req, const NameRequest& r);
  void NotifyWatchers(mk::Env& env, uint32_t kind, const std::string& name);

  // Models the X.500-style processing: canonicalize and walk the name one
  // component at a time, touching per-node state.
  void ChargeNameWalk(const std::string& name);

  mk::Kernel& kernel_;
  mk::Task* task_;
  mk::PortName receive_port_ = mk::kNullPort;
  std::map<std::string, Node> entries_;
  std::vector<Watcher> watchers_;
  uint64_t resolves_ = 0;
  uint64_t registrations_ = 0;
  bool running_ = true;
};

// Client-side library.
class NameClient {
 public:
  // `service` is a send right to the name service in the caller's task.
  explicit NameClient(mk::PortName service) : stub_("naming.client", service) {}

  base::Status Register(mk::Env& env, const std::string& name, mk::PortName right,
                        const std::vector<Attribute>& attrs = {});
  base::Result<mk::PortName> Resolve(mk::Env& env, const std::string& name);
  base::Status Unregister(mk::Env& env, const std::string& name);
  base::Result<std::vector<std::string>> List(mk::Env& env, const std::string& dir);
  // Returns names whose attribute `key` equals `value`.
  base::Result<std::vector<std::string>> Search(mk::Env& env, const std::string& key,
                                                const std::string& value);
  base::Status SetAttr(mk::Env& env, const std::string& name, const std::string& key,
                       const std::string& value);
  base::Result<std::string> GetAttr(mk::Env& env, const std::string& name,
                                    const std::string& key);
  // Notifications about changes under `prefix` arrive as NameEvent legacy
  // messages on `notify_port` (a receive right of the caller).
  base::Status Watch(mk::Env& env, const std::string& prefix, mk::PortName notify_port);

 private:
  mk::ClientStub stub_;
};

}  // namespace mks

#endif  // SRC_MKS_NAMING_NAME_SERVER_H_
