#include "src/mks/loader/loader.h"

#include "src/base/log.h"

namespace mks {

namespace {
const hw::CodeRegion& MapRegion() {
  static const hw::CodeRegion r = hw::DefineCode("mks.loader.map_segment", 260);
  return r;
}
const hw::CodeRegion& SymbolRegion() {
  static const hw::CodeRegion r = hw::DefineCode("mks.loader.resolve_symbol", 120);
  return r;
}
}  // namespace

base::Status Loader::RegisterModule(LoadModule module) {
  if (module.name.empty()) {
    return base::Status::kInvalidArgument;
  }
  if (registry_.contains(module.name)) {
    return base::Status::kAlreadyExists;
  }
  registry_.emplace(module.name, std::move(module));
  return base::Status::kOk;
}

base::Result<const LoadModule*> Loader::FindModule(const std::string& name) const {
  auto it = registry_.find(name);
  if (it == registry_.end()) {
    return base::Status::kNotFound;
  }
  return &it->second;
}

base::Result<hw::VirtAddr> Loader::MapModule(mk::Task& task, const LoadModule& module) {
  auto& task_mods = per_task_[task.id()];
  if (auto it = task_mods.find(module.name); it != task_mods.end()) {
    return it->second;  // already mapped in this task
  }
  kernel_.cpu().Execute(MapRegion());

  const uint64_t text_bytes = hw::PageRound(module.text_size);
  const uint64_t data_bytes = hw::PageRound(module.data_size + module.bss_size);
  const uint64_t total = text_bytes + data_bytes;
  if (total == 0) {
    return base::Status::kInvalidArgument;
  }

  hw::VirtAddr base = 0;
  if (module.coerced) {
    // Address-coerced shared library: one range for every task.
    auto it = coerced_bases_.find(module.name);
    if (it == coerced_bases_.end()) {
      auto addr = kernel_.VmAllocateCoerced(task, total);
      if (!addr.ok()) {
        return addr.status();
      }
      coerced_bases_.emplace(module.name, *addr);
      base = *addr;
    } else {
      base = it->second;
      const base::Status st = kernel_.VmMapCoerced(task, base);
      if (st != base::Status::kOk) {
        return st;
      }
    }
  } else {
    // Reserve a contiguous range, then carve it: text (shared object for
    // shared libraries), then private data+bss.
    std::shared_ptr<mk::VmObject> text;
    if (module.shared_library) {
      auto it = text_objects_.find(module.name);
      if (it == text_objects_.end()) {
        text = std::make_shared<mk::VmObject>(text_bytes);
        text_objects_.emplace(module.name, text);
      } else {
        text = it->second;
      }
    } else {
      text = std::make_shared<mk::VmObject>(text_bytes);
    }
    auto text_addr = kernel_.VmMapObject(task, text, 0, text_bytes,
                                         mk::Prot::kRead | mk::Prot::kExecute,
                                         /*anywhere=*/true);
    if (!text_addr.ok()) {
      return text_addr.status();
    }
    base = *text_addr;
    if (data_bytes > 0) {
      const base::Status st = kernel_.VmAllocateAt(task, base + text_bytes, data_bytes);
      if (st != base::Status::kOk) {
        // Range after text was taken; fall back to anywhere for data. The
        // module's data then lives at a non-standard offset, which the
        // loader tolerates by tracking only the text base.
        auto data_addr = kernel_.VmAllocate(task, data_bytes);
        if (!data_addr.ok()) {
          return data_addr.status();
        }
      }
      // Write the initialized-data image through the fault path.
      if (!module.data_image.empty()) {
        const base::Status wr = kernel_.CopyOut(task, base + text_bytes,
                                                module.data_image.data(),
                                                module.data_image.size());
        if (wr != base::Status::kOk) {
          return wr;
        }
      }
    }
  }
  task_mods.emplace(module.name, base);
  return base;
}

base::Status Loader::LoadClosure(mk::Task& task, const std::string& name,
                                 std::vector<MappedModule>* loaded) {
  for (const MappedModule& m : *loaded) {
    if (m.module->name == name) {
      return base::Status::kOk;  // dependency cycle or diamond: already done
    }
  }
  auto module = FindModule(name);
  if (!module.ok()) {
    return module.status();
  }
  // Depth-first: dependencies map first (SVR4 initialization order).
  for (const std::string& dep : (*module)->needed) {
    const base::Status st = LoadClosure(task, dep, loaded);
    if (st != base::Status::kOk) {
      return st;
    }
  }
  auto base = MapModule(task, **module);
  if (!base.ok()) {
    return base.status();
  }
  loaded->push_back({.base = *base, .module = *module});
  return base::Status::kOk;
}

base::Result<Loader::LoadResult> Loader::LoadProgram(mk::Task& task, const std::string& program) {
  std::vector<MappedModule> loaded;
  const base::Status st = LoadClosure(task, program, &loaded);
  if (st != base::Status::kOk) {
    return st;
  }
  LoadResult result;
  result.base = loaded.back().base;  // the program itself maps last
  for (const MappedModule& m : loaded) {
    result.modules.push_back(m.module->name);
  }
  // Resolve every import of every loaded module.
  for (const MappedModule& m : loaded) {
    for (const ModuleImport& imp : m.module->imports) {
      kernel_.cpu().Execute(SymbolRegion());
      ++relocations_;
      bool found = false;
      for (const MappedModule& provider : loaded) {
        if (policy_ == ResolutionPolicy::kRestrictedPerLibrary &&
            provider.module->name != imp.library) {
          continue;
        }
        if (policy_ == ResolutionPolicy::kSvr4Global && provider.module == m.module) {
          continue;  // global search skips the importer itself
        }
        for (const ModuleSymbol& sym : provider.module->exports) {
          if (sym.name == imp.symbol) {
            result.resolved[imp.symbol] =
                LoadedSymbol{provider.module->name, provider.base + sym.offset};
            found = true;
            break;
          }
        }
        if (found) {
          break;
        }
      }
      if (!found) {
        WPOS_LOG(kInfo) << "unresolved symbol " << imp.symbol << " wanted by "
                        << m.module->name;
        return base::Status::kNotFound;
      }
    }
  }
  return result;
}

}  // namespace mks
