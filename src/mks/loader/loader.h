// The Microkernel Services loader: loads programs and shared libraries into
// address spaces.
//
// Paper features modelled here:
//   - ELF-style load modules (module.h) with SVR4-style global symbol
//     resolution, later restricted to per-library resolution
//     (ResolutionPolicy) when personality-neutral and personality-specific
//     code began sharing address spaces;
//   - shared-library text shared between tasks via a common VM object;
//   - address coercion of shared libraries (the library occupies the same
//     address range in every task, via the kernel's coerced memory).
#ifndef SRC_MKS_LOADER_LOADER_H_
#define SRC_MKS_LOADER_LOADER_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/mk/kernel.h"
#include "src/mks/loader/module.h"

namespace mks {

enum class ResolutionPolicy {
  kSvr4Global,           // search every module loaded in the task, load order
  kRestrictedPerLibrary  // search only the library named by the import
};

class Loader {
 public:
  explicit Loader(mk::Kernel& kernel, ResolutionPolicy policy = ResolutionPolicy::kSvr4Global)
      : kernel_(kernel), policy_(policy) {}

  ResolutionPolicy policy() const { return policy_; }
  void set_policy(ResolutionPolicy p) { policy_ = p; }

  // The module registry stands in for the executables on disk.
  base::Status RegisterModule(LoadModule module);
  base::Result<const LoadModule*> FindModule(const std::string& name) const;

  struct LoadedSymbol {
    std::string module;
    hw::VirtAddr address = 0;
  };

  struct LoadResult {
    hw::VirtAddr base = 0;            // program load base
    std::vector<std::string> modules; // everything mapped, dependency order
    // import symbol -> resolved address (after relocation)
    std::unordered_map<std::string, LoadedSymbol> resolved;
  };

  // Loads `program` plus its `needed` closure into `task`.
  base::Result<LoadResult> LoadProgram(mk::Task& task, const std::string& program);

  // Diagnostics.
  uint64_t text_objects_created() const { return text_objects_.size(); }
  uint64_t relocations_processed() const { return relocations_; }

 private:
  struct MappedModule {
    hw::VirtAddr base = 0;
    const LoadModule* module = nullptr;
  };

  // Maps one module into the task; reuses shared text, honours coercion.
  base::Result<hw::VirtAddr> MapModule(mk::Task& task, const LoadModule& module);
  base::Status LoadClosure(mk::Task& task, const std::string& name,
                           std::vector<MappedModule>* loaded);

  mk::Kernel& kernel_;
  ResolutionPolicy policy_;
  std::map<std::string, LoadModule> registry_;
  // Shared text objects: one per shared library, shared across all tasks.
  std::unordered_map<std::string, std::shared_ptr<mk::VmObject>> text_objects_;
  // Coerced libraries: fixed address, assigned on first load.
  std::unordered_map<std::string, hw::VirtAddr> coerced_bases_;
  // Per task: what is already mapped (task id -> module -> base).
  std::unordered_map<mk::TaskId, std::unordered_map<std::string, hw::VirtAddr>> per_task_;
  uint64_t relocations_ = 0;
};

}  // namespace mks

#endif  // SRC_MKS_LOADER_LOADER_H_
