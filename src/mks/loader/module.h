// Load-module format for the Microkernel Services loader: a simplified ELF
// ("we chose the ELF format") with text/data/bss segments, an export symbol
// table, and import lists. Modules serialize to a flat byte image so they can
// live on the simulated disk.
#ifndef SRC_MKS_LOADER_MODULE_H_
#define SRC_MKS_LOADER_MODULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"

namespace mks {

struct ModuleSymbol {
  std::string name;
  uint32_t offset = 0;  // relative to the module's load base
};

struct ModuleImport {
  std::string library;  // which library the symbol is expected from
  std::string symbol;
};

struct LoadModule {
  static constexpr uint32_t kMagic = 0x7f4c4d31;  // "\x7fLM1"

  std::string name;
  bool shared_library = false;
  bool coerced = false;  // address-coerced shared library (same base everywhere)
  uint32_t text_size = 0;
  uint32_t data_size = 0;
  uint32_t bss_size = 0;
  std::vector<uint8_t> data_image;  // initialized-data contents (<= data_size)
  std::vector<ModuleSymbol> exports;
  std::vector<ModuleImport> imports;
  std::vector<std::string> needed;  // libraries to load first

  std::vector<uint8_t> Serialize() const;
  static base::Result<LoadModule> Parse(const std::vector<uint8_t>& image);
};

}  // namespace mks

#endif  // SRC_MKS_LOADER_MODULE_H_
