#include "src/mks/loader/module.h"

#include <cstring>

namespace mks {

namespace {
void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  out.insert(out.end(), {static_cast<uint8_t>(v), static_cast<uint8_t>(v >> 8),
                         static_cast<uint8_t>(v >> 16), static_cast<uint8_t>(v >> 24)});
}
void PutString(std::vector<uint8_t>& out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& data) : data_(data) {}
  bool ok() const { return ok_; }
  uint32_t U32() {
    if (pos_ + 4 > data_.size()) {
      ok_ = false;
      return 0;
    }
    uint32_t v;
    std::memcpy(&v, data_.data() + pos_, 4);
    pos_ += 4;
    return v;
  }
  std::string String() {
    const uint32_t len = U32();
    if (!ok_ || pos_ + len > data_.size() || len > 4096) {
      ok_ = false;
      return "";
    }
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return s;
  }
  std::vector<uint8_t> Bytes(uint32_t len) {
    if (pos_ + len > data_.size()) {
      ok_ = false;
      return {};
    }
    std::vector<uint8_t> b(data_.begin() + pos_, data_.begin() + pos_ + len);
    pos_ += len;
    return b;
  }

 private:
  const std::vector<uint8_t>& data_;
  size_t pos_ = 0;
  bool ok_ = true;
};
}  // namespace

std::vector<uint8_t> LoadModule::Serialize() const {
  std::vector<uint8_t> out;
  PutU32(out, kMagic);
  PutString(out, name);
  PutU32(out, (shared_library ? 1u : 0u) | (coerced ? 2u : 0u));
  PutU32(out, text_size);
  PutU32(out, data_size);
  PutU32(out, bss_size);
  PutU32(out, static_cast<uint32_t>(data_image.size()));
  out.insert(out.end(), data_image.begin(), data_image.end());
  PutU32(out, static_cast<uint32_t>(exports.size()));
  for (const ModuleSymbol& s : exports) {
    PutString(out, s.name);
    PutU32(out, s.offset);
  }
  PutU32(out, static_cast<uint32_t>(imports.size()));
  for (const ModuleImport& imp : imports) {
    PutString(out, imp.library);
    PutString(out, imp.symbol);
  }
  PutU32(out, static_cast<uint32_t>(needed.size()));
  for (const std::string& n : needed) {
    PutString(out, n);
  }
  return out;
}

base::Result<LoadModule> LoadModule::Parse(const std::vector<uint8_t>& image) {
  Reader r(image);
  if (r.U32() != kMagic) {
    return base::Status::kCorrupt;
  }
  LoadModule m;
  m.name = r.String();
  const uint32_t flags = r.U32();
  m.shared_library = (flags & 1u) != 0;
  m.coerced = (flags & 2u) != 0;
  m.text_size = r.U32();
  m.data_size = r.U32();
  m.bss_size = r.U32();
  const uint32_t data_len = r.U32();
  if (!r.ok() || data_len > m.data_size) {
    return base::Status::kCorrupt;
  }
  m.data_image = r.Bytes(data_len);
  const uint32_t n_exports = r.U32();
  if (!r.ok() || n_exports > 10000) {
    return base::Status::kCorrupt;
  }
  for (uint32_t i = 0; i < n_exports; ++i) {
    ModuleSymbol s;
    s.name = r.String();
    s.offset = r.U32();
    m.exports.push_back(std::move(s));
  }
  const uint32_t n_imports = r.U32();
  if (!r.ok() || n_imports > 10000) {
    return base::Status::kCorrupt;
  }
  for (uint32_t i = 0; i < n_imports; ++i) {
    ModuleImport imp;
    imp.library = r.String();
    imp.symbol = r.String();
    m.imports.push_back(std::move(imp));
  }
  const uint32_t n_needed = r.U32();
  if (!r.ok() || n_needed > 1000) {
    return base::Status::kCorrupt;
  }
  for (uint32_t i = 0; i < n_needed; ++i) {
    m.needed.push_back(r.String());
  }
  if (!r.ok()) {
    return base::Status::kCorrupt;
  }
  return m;
}

}  // namespace mks
