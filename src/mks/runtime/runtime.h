// The personality-neutral runtime: a cthreads-style threading package over
// microkernel threads, mutexes and condition variables built on the
// memory-based synchronizers (user-level fast path, kernel slow path), and a
// heap allocator for personality-neutral code. This is the runtime that let
// WPOS run user-space code without requiring a UNIX environment.
#ifndef SRC_MKS_RUNTIME_RUNTIME_H_
#define SRC_MKS_RUNTIME_RUNTIME_H_

#include <map>
#include <string>

#include "src/mk/kernel.h"

namespace mks {

// Allocates 4-byte synchronization words out of a task-private page; the
// words live in simulated memory so the memory synchronizers work on them.
class SyncArena {
 public:
  SyncArena(mk::Kernel& kernel, mk::Task& task);
  hw::VirtAddr AllocWord();

 private:
  mk::Kernel& kernel_;
  mk::Task& task_;
  hw::VirtAddr base_ = 0;
  uint64_t used_ = 0;
  uint64_t capacity_ = 0;
};

// cthreads-flavoured mutex: three-state word (0 free, 1 held, 2 contended);
// uncontended acquire/release never enters the kernel.
class RtMutex {
 public:
  RtMutex(mk::Kernel& kernel, SyncArena& arena)
      : kernel_(kernel), word_(arena.AllocWord()) {}

  void Lock(mk::Env& env);
  void Unlock(mk::Env& env);
  bool TryLock(mk::Env& env);
  hw::VirtAddr word() const { return word_; }

  uint64_t contended_acquires() const { return contended_; }

 private:
  uint32_t ReadWord(mk::Env& env);
  void WriteWord(mk::Env& env, uint32_t v);

  mk::Kernel& kernel_;
  hw::VirtAddr word_;
  uint64_t contended_ = 0;
};

// Condition variable over a sequence word; always used with an RtMutex.
class RtCondition {
 public:
  RtCondition(mk::Kernel& kernel, SyncArena& arena)
      : kernel_(kernel), seq_word_(arena.AllocWord()) {}

  void Wait(mk::Env& env, RtMutex& mutex);
  void Signal(mk::Env& env);
  void Broadcast(mk::Env& env);

 private:
  mk::Kernel& kernel_;
  hw::VirtAddr seq_word_;
};

// cthread_fork/cthread_join equivalents.
class CThreads {
 public:
  CThreads(mk::Kernel& kernel, mk::Task* task) : kernel_(kernel), task_(task) {}

  mk::Thread* Fork(const std::string& name, mk::ThreadBody body,
                   int priority = mk::Thread::kDefaultPriority);
  base::Status Join(mk::Env& env, mk::Thread* thread);

 private:
  mk::Kernel& kernel_;
  mk::Task* task_;
};

// First-fit heap over a task VM region; metadata is host-side, addresses and
// contents are simulated. The ANSI C runtime's malloc/free.
class RtHeap {
 public:
  RtHeap(mk::Kernel& kernel, mk::Task& task, uint64_t size);

  base::Result<hw::VirtAddr> Malloc(uint64_t size);
  base::Status Free(hw::VirtAddr addr);
  uint64_t bytes_in_use() const { return in_use_; }
  uint64_t high_water() const { return high_water_; }

 private:
  mk::Kernel& kernel_;
  hw::VirtAddr base_ = 0;
  uint64_t size_ = 0;
  std::map<hw::VirtAddr, uint64_t> allocations_;  // addr -> size
  std::map<hw::VirtAddr, uint64_t> free_list_;    // addr -> size (coalesced)
  uint64_t in_use_ = 0;
  uint64_t high_water_ = 0;
};

}  // namespace mks

#endif  // SRC_MKS_RUNTIME_RUNTIME_H_
