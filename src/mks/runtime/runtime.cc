#include "src/mks/runtime/runtime.h"

#include "src/base/log.h"

namespace mks {

namespace {
const hw::CodeRegion& MutexFastRegion() {
  static const hw::CodeRegion r = hw::DefineCode("mks.rt.mutex_fast", 22);
  return r;
}
const hw::CodeRegion& HeapRegion() {
  static const hw::CodeRegion r = hw::DefineCode("mks.rt.heap", 160);
  return r;
}
}  // namespace

SyncArena::SyncArena(mk::Kernel& kernel, mk::Task& task) : kernel_(kernel), task_(task) {
  auto addr = kernel_.VmAllocate(task_, hw::kPageSize);
  WPOS_CHECK(addr.ok());
  base_ = *addr;
  capacity_ = hw::kPageSize / 4;
}

hw::VirtAddr SyncArena::AllocWord() {
  WPOS_CHECK(used_ < capacity_) << "sync arena exhausted";
  return base_ + 4 * used_++;
}

uint32_t RtMutex::ReadWord(mk::Env& env) {
  uint32_t v = 0;
  WPOS_CHECK(env.CopyIn(word_, &v, 4) == base::Status::kOk);
  return v;
}

void RtMutex::WriteWord(mk::Env& env, uint32_t v) {
  WPOS_CHECK(env.CopyOut(word_, &v, 4) == base::Status::kOk);
}

void RtMutex::Lock(mk::Env& env) {
  kernel_.cpu().Execute(MutexFastRegion());
  // Green threads cannot be preempted between a read and the following
  // write except at kernel entries, so each read-modify-write below is
  // effectively atomic at the simulation's granularity (as a real CAS
  // would make it).
  if (ReadWord(env) == 0) {
    WriteWord(env, 1);  // uncontended fast path
    return;
  }
  ++contended_;
  while (true) {
    // Slow path: acquire in "contended" state so our unlock always wakes
    // the next waiter — otherwise a second sleeper is lost forever.
    const uint32_t v = ReadWord(env);
    if (v == 0) {
      WriteWord(env, 2);
      return;
    }
    WriteWord(env, 2);
    (void)kernel_.MemSyncWait(word_, 2);
  }
}

bool RtMutex::TryLock(mk::Env& env) {
  kernel_.cpu().Execute(MutexFastRegion());
  if (ReadWord(env) == 0) {
    WriteWord(env, 1);
    return true;
  }
  return false;
}

void RtMutex::Unlock(mk::Env& env) {
  kernel_.cpu().Execute(MutexFastRegion());
  const uint32_t v = ReadWord(env);
  WriteWord(env, 0);
  if (v == 2) {
    kernel_.MemSyncWake(word_, 1);
  }
}

void RtCondition::Wait(mk::Env& env, RtMutex& mutex) {
  uint32_t seq = 0;
  WPOS_CHECK(env.CopyIn(seq_word_, &seq, 4) == base::Status::kOk);
  mutex.Unlock(env);
  (void)kernel_.MemSyncWait(seq_word_, seq);
  mutex.Lock(env);
}

void RtCondition::Signal(mk::Env& env) {
  uint32_t seq = 0;
  WPOS_CHECK(env.CopyIn(seq_word_, &seq, 4) == base::Status::kOk);
  ++seq;
  WPOS_CHECK(env.CopyOut(seq_word_, &seq, 4) == base::Status::kOk);
  kernel_.MemSyncWake(seq_word_, 1);
}

void RtCondition::Broadcast(mk::Env& env) {
  uint32_t seq = 0;
  WPOS_CHECK(env.CopyIn(seq_word_, &seq, 4) == base::Status::kOk);
  ++seq;
  WPOS_CHECK(env.CopyOut(seq_word_, &seq, 4) == base::Status::kOk);
  kernel_.MemSyncWake(seq_word_, ~0u);
}

mk::Thread* CThreads::Fork(const std::string& name, mk::ThreadBody body, int priority) {
  return kernel_.CreateThread(task_, name, std::move(body), priority);
}

base::Status CThreads::Join(mk::Env& env, mk::Thread* thread) {
  return kernel_.ThreadJoin(thread);
}

RtHeap::RtHeap(mk::Kernel& kernel, mk::Task& task, uint64_t size) : kernel_(kernel) {
  size_ = hw::PageRound(size);
  auto addr = kernel_.VmAllocate(task, size_);
  WPOS_CHECK(addr.ok());
  base_ = *addr;
  free_list_.emplace(base_, size_);
}

base::Result<hw::VirtAddr> RtHeap::Malloc(uint64_t size) {
  kernel_.cpu().Execute(HeapRegion());
  if (size == 0) {
    return base::Status::kInvalidArgument;
  }
  size = (size + 15) & ~15ull;
  for (auto it = free_list_.begin(); it != free_list_.end(); ++it) {
    if (it->second >= size) {
      const hw::VirtAddr addr = it->first;
      const uint64_t remaining = it->second - size;
      free_list_.erase(it);
      if (remaining > 0) {
        free_list_.emplace(addr + size, remaining);
      }
      allocations_.emplace(addr, size);
      in_use_ += size;
      if (in_use_ > high_water_) {
        high_water_ = in_use_;
      }
      return addr;
    }
  }
  return base::Status::kResourceShortage;
}

base::Status RtHeap::Free(hw::VirtAddr addr) {
  kernel_.cpu().Execute(HeapRegion());
  auto it = allocations_.find(addr);
  if (it == allocations_.end()) {
    return base::Status::kInvalidAddress;
  }
  uint64_t size = it->second;
  in_use_ -= size;
  allocations_.erase(it);
  // Coalesce with neighbours.
  auto next = free_list_.upper_bound(addr);
  if (next != free_list_.end() && addr + size == next->first) {
    size += next->second;
    free_list_.erase(next);
  }
  if (!free_list_.empty()) {
    auto prev = free_list_.upper_bound(addr);
    if (prev != free_list_.begin()) {
      --prev;
      if (prev->first + prev->second == addr) {
        prev->second += size;
        return base::Status::kOk;
      }
    }
  }
  free_list_.emplace(addr, size);
  return base::Status::kOk;
}

}  // namespace mks
