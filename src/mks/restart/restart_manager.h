// The restart manager: the microkernel-services supervisor that turns the
// paper's isolation promise into recovery. User-level servers are separate
// failure domains; when one dies, the machine should degrade, restart the
// server, and carry on — not assert.
//
// The manager registers a death-notification port with the kernel
// (Kernel::RegisterDeathWatcher) and supervises servers by name: each
// Supervise() call pairs a server task with a factory that can build a fresh
// instance. On a TaskDeathNotice for a supervised task it waits out an
// exponential backoff (in simulated time), runs the factory, and re-registers
// the new instance's service port in the name service under the same name —
// so a client retrying through RpcCallRobust + name re-resolution lands on
// the respawn without ever knowing the server died. A per-server restart
// budget bounds the loop: once exhausted the manager unregisters the name
// and marks the server degraded, and clients see kUnavailable.
//
// Restart activity is exported through the metrics registry
// ("restart.<name>.restarts", "restart.<name>.gave_up", "restart.total")
// and the trace (EventType::kServerRestart), so a fault-injection campaign's
// recovery behaviour shows up in the same metrics JSON as everything else.
#ifndef SRC_MKS_RESTART_RESTART_MANAGER_H_
#define SRC_MKS_RESTART_RESTART_MANAGER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/mk/kernel.h"
#include "src/mks/naming/name_server.h"

namespace mks {

struct RestartPolicy {
  // Restarts allowed per supervised server before it is declared degraded.
  uint32_t max_restarts = 3;
  // Backoff slept before the first restart; doubles each consecutive one.
  uint64_t backoff_initial_ns = 200'000;
  // Watchdog: a supervised server that has heartbeated at least once (see
  // ServerLoop::EnableHeartbeat) and then goes silent for this long in
  // simulated time is force-terminated — TerminateTask fails its queued
  // callers with kPortDead — and respawned through the normal death path,
  // so a wedged server heals exactly like a crashed one. 0 = watchdog off.
  uint64_t heartbeat_deadline_ns = 0;
  // How often the manager wakes to check deadlines while idle; 0 picks
  // heartbeat_deadline_ns / 2.
  uint64_t watchdog_poll_ns = 0;
};

// Administrative revive request (RestartManager::ResetBudget): the name of
// the degraded server rides as the message's inline data.
constexpr uint32_t kReviveMsgId = 0x4D11;

class RestartManager {
 public:
  // What a factory hands back: the respawned server's task plus a send
  // right (in the *manager's* port space) for its service port, which the
  // manager re-registers under the supervised name.
  struct Respawned {
    mk::Task* task = nullptr;
    mk::PortName service_right = mk::kNullPort;
  };
  using Factory = std::function<Respawned(mk::Env&)>;

  // `name_service` is a send right to the name service held by `task`
  // (kNullPort for configurations without naming: respawn only, no
  // re-registration).
  RestartManager(mk::Kernel& kernel, mk::Task* task, mk::PortName name_service,
                 const RestartPolicy& policy = RestartPolicy());

  // Starts supervising `server_task` under `name`. The factory is invoked on
  // the manager's thread after each death.
  void Supervise(const std::string& name, mk::Task* server_task, Factory factory);
  // Withdraws supervision before a *deliberate* shutdown. To the watchdog a
  // stopped server is indistinguishable from a wedged one — without this it
  // would "kill" the exited task and respawn an orphan instance.
  void Unsupervise(const std::string& name);
  void Stop();

  // Mints a send right to the manager's notification port in `server_task`'s
  // space, for ServerLoop::EnableHeartbeat / FileServer::EnableHeartbeat.
  // Heartbeats, death notices and revive requests share the one port.
  base::Result<mk::PortName> HealthRightFor(mk::Task& server_task);

  // Registers a callback invoked (with the supervised name) whenever a
  // supervised server dies — before backoff and respawn. Client-side caches
  // hook this to drop state cached against the dead instance (e.g.
  // RobustFsSession::OnServerDeath); listeners must not block.
  void AddDeathListener(std::function<void(const std::string&)> listener) {
    death_listeners_.push_back(std::move(listener));
  }

  // Administratively revives a degraded (gave-up) server: resets its restart
  // budget, respawns it through its factory and re-registers the name.
  // Callable from any task; the request is a kReviveMsgId message handled on
  // the manager's thread (rights minted by the factory must land in the
  // manager's port space). Exports restart.<name>.revived.
  base::Status ResetBudget(mk::Env& env, const std::string& name);

  uint64_t restarts(const std::string& name) const;
  bool degraded(const std::string& name) const;
  uint64_t watchdog_kills(const std::string& name) const;
  uint64_t total_restarts() const { return total_restarts_; }
  mk::PortName notify_port() const { return notify_port_; }

 private:
  struct Entry {
    mk::Task* task = nullptr;
    Factory factory;
    uint32_t restarts = 0;
    bool degraded = false;
    // Watchdog state: the deadline arms once the instance heartbeats (an
    // instance that never beats — heartbeats not enabled — is never killed).
    bool beating = false;
    uint64_t last_beat_ns = 0;
    uint64_t watchdog_kills = 0;
  };

  void Serve(mk::Env& env);
  void HandleTaskDeath(mk::Env& env, mk::TaskId dead);
  void HandleHeartbeat(mk::Env& env, mk::TaskId task);
  void HandleRevive(mk::Env& env, const std::string& name);
  void CheckDeadlines(mk::Env& env);
  uint64_t WatchdogPollNs() const {
    return policy_.watchdog_poll_ns != 0 ? policy_.watchdog_poll_ns
                                         : policy_.heartbeat_deadline_ns / 2 + 1;
  }

  mk::Kernel& kernel_;
  mk::Task* task_;
  RestartPolicy policy_;
  mk::PortName notify_port_ = mk::kNullPort;
  std::unique_ptr<NameClient> names_;  // null when name_service == kNullPort
  std::map<std::string, Entry> entries_;
  std::map<mk::TaskId, std::string> by_task_;
  std::vector<std::function<void(const std::string&)>> death_listeners_;
  uint64_t total_restarts_ = 0;
  bool running_ = true;
};

}  // namespace mks

#endif  // SRC_MKS_RESTART_RESTART_MANAGER_H_
