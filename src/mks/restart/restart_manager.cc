#include "src/mks/restart/restart_manager.h"

#include <cstring>

#include "src/base/log.h"

namespace mks {

RestartManager::RestartManager(mk::Kernel& kernel, mk::Task* task, mk::PortName name_service,
                               const RestartPolicy& policy)
    : kernel_(kernel), task_(task), policy_(policy) {
  auto port = kernel_.PortAllocate(*task_);
  WPOS_CHECK(port.ok());
  notify_port_ = *port;
  WPOS_CHECK(kernel_.RegisterDeathWatcher(*task_, notify_port_) == base::Status::kOk);
  if (name_service != mk::kNullPort) {
    names_ = std::make_unique<NameClient>(name_service);
  }
  // Above server priority so a death is handled before more clients pile
  // onto the dead port.
  kernel_.CreateThread(task_, "restart-mgr", [this](mk::Env& env) { Serve(env); },
                       mk::Thread::kDefaultPriority + 3);
}

void RestartManager::Supervise(const std::string& name, mk::Task* server_task, Factory factory) {
  WPOS_CHECK(server_task != nullptr);
  Entry& entry = entries_[name];
  entry.task = server_task;
  entry.factory = std::move(factory);
  by_task_[server_task->id()] = name;
}

void RestartManager::Stop() {
  running_ = false;
  (void)kernel_.UnregisterDeathWatcher(*task_, notify_port_);
  // Killing the notify port wakes the serve thread with kPortDead.
  (void)kernel_.PortDestroy(*task_, notify_port_);
}

uint64_t RestartManager::restarts(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.restarts;
}

bool RestartManager::degraded(const std::string& name) const {
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.degraded;
}

void RestartManager::Serve(mk::Env& env) {
  while (running_) {
    mk::MachMessage msg;
    const base::Status st = env.MachMsgReceive(notify_port_, &msg);
    if (st != base::Status::kOk) {
      return;  // notify port destroyed (Stop) or task aborted
    }
    if (msg.msg_id == mk::kTaskDeathMsgId &&
        msg.inline_data.size() >= sizeof(mk::TaskDeathNotice)) {
      mk::TaskDeathNotice notice;
      std::memcpy(&notice, msg.inline_data.data(), sizeof(notice));
      HandleTaskDeath(env, notice.task);
    }
    // PortDeathNotices are informational here; supervision keys off tasks.
  }
}

void RestartManager::HandleTaskDeath(mk::Env& env, mk::TaskId dead) {
  auto by = by_task_.find(dead);
  if (by == by_task_.end()) {
    return;  // not one of ours
  }
  const std::string name = by->second;
  by_task_.erase(by);
  Entry& entry = entries_[name];
  mk::trace::MetricRegistry& metrics = kernel_.tracer().metrics();
  if (entry.restarts >= policy_.max_restarts) {
    // Budget exhausted: degrade cleanly. Dropping the name means clients
    // re-resolving it get kNotFound, which RpcCallRobust surfaces as
    // kUnavailable — no half-dead right left behind.
    entry.degraded = true;
    ++metrics.Counter("restart." + name + ".gave_up");
    if (names_ != nullptr) {
      (void)names_->Unregister(env, name);
    }
    WPOS_LOG(kWarn) << "restart: budget exhausted for " << name << ", degraded";
    return;
  }
  const uint64_t backoff = policy_.backoff_initial_ns << entry.restarts;
  (void)env.SleepNs(backoff);
  Respawned spawned = entry.factory(env);
  WPOS_CHECK(spawned.task != nullptr) << "restart factory for " << name << " returned no task";
  ++entry.restarts;
  ++total_restarts_;
  entry.task = spawned.task;
  by_task_[spawned.task->id()] = name;
  if (names_ != nullptr && spawned.service_right != mk::kNullPort) {
    // Register under the same name. The stale entry (if any) must go first:
    // the name server refuses duplicate registration.
    (void)names_->Unregister(env, name);
    (void)names_->Register(env, name, spawned.service_right);
  }
  ++metrics.Counter("restart." + name + ".restarts");
  ++metrics.Counter("restart.total");
  kernel_.tracer().Emit(mk::trace::EventType::kServerRestart, spawned.task->id(),
                        entry.restarts);
  WPOS_LOG(kInfo) << "restart: respawned " << name << " (restart " << entry.restarts << "/"
                  << policy_.max_restarts << ")";
}

}  // namespace mks
