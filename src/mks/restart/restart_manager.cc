#include "src/mks/restart/restart_manager.h"

#include <cstring>

#include "src/base/log.h"

namespace mks {

RestartManager::RestartManager(mk::Kernel& kernel, mk::Task* task, mk::PortName name_service,
                               const RestartPolicy& policy)
    : kernel_(kernel), task_(task), policy_(policy) {
  auto port = kernel_.PortAllocate(*task_);
  WPOS_CHECK(port.ok());
  notify_port_ = *port;
  WPOS_CHECK(kernel_.RegisterDeathWatcher(*task_, notify_port_) == base::Status::kOk);
  if (name_service != mk::kNullPort) {
    names_ = std::make_unique<NameClient>(name_service);
  }
  // Above server priority so a death is handled before more clients pile
  // onto the dead port.
  kernel_.CreateThread(task_, "restart-mgr", [this](mk::Env& env) { Serve(env); },
                       mk::Thread::kDefaultPriority + 3);
}

void RestartManager::Supervise(const std::string& name, mk::Task* server_task, Factory factory) {
  WPOS_CHECK(server_task != nullptr);
  Entry& entry = entries_[name];
  entry.task = server_task;
  entry.factory = std::move(factory);
  by_task_[server_task->id()] = name;
}

void RestartManager::Unsupervise(const std::string& name) {
  // Deliberate shutdown: without this, stopping a supervised server looks to
  // the watchdog exactly like a wedge — the stale `beating` flag would earn
  // the exited task a bogus kill and a zombie respawn nobody ever stops.
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return;
  }
  if (it->second.task != nullptr) {
    by_task_.erase(it->second.task->id());
  }
  entries_.erase(it);
}

void RestartManager::Stop() {
  running_ = false;
  (void)kernel_.UnregisterDeathWatcher(*task_, notify_port_);
  // Killing the notify port wakes the serve thread with kPortDead.
  (void)kernel_.PortDestroy(*task_, notify_port_);
}

base::Result<mk::PortName> RestartManager::HealthRightFor(mk::Task& server_task) {
  return kernel_.MakeSendRight(*task_, notify_port_, server_task);
}

base::Status RestartManager::ResetBudget(mk::Env& env, const std::string& name) {
  // The revive must run on the manager's thread: the factory mints rights in
  // the manager's port space, which a caller-side respawn could not do.
  auto right = kernel_.MakeSendRight(*task_, notify_port_, env.task());
  if (!right.ok()) {
    return right.status();
  }
  mk::MachMessage msg;
  msg.msg_id = kReviveMsgId;
  msg.dest = *right;
  msg.inline_data.assign(name.begin(), name.end());
  return kernel_.MachMsgSend(std::move(msg));
}

uint64_t RestartManager::restarts(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.restarts;
}

bool RestartManager::degraded(const std::string& name) const {
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.degraded;
}

uint64_t RestartManager::watchdog_kills(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.watchdog_kills;
}

void RestartManager::Serve(mk::Env& env) {
  while (running_) {
    mk::MachMessage msg;
    // With the watchdog armed the park is bounded so missed deadlines are
    // noticed even when no message ever arrives.
    const uint64_t timeout =
        policy_.heartbeat_deadline_ns != 0 ? WatchdogPollNs() : mk::kForever;
    const base::Status st = env.MachMsgReceive(notify_port_, &msg, timeout);
    if (st == base::Status::kTimedOut) {
      CheckDeadlines(env);
      continue;
    }
    if (st != base::Status::kOk) {
      return;  // notify port destroyed (Stop) or task aborted
    }
    if (msg.msg_id == mk::kTaskDeathMsgId &&
        msg.inline_data.size() >= sizeof(mk::TaskDeathNotice)) {
      mk::TaskDeathNotice notice;
      std::memcpy(&notice, msg.inline_data.data(), sizeof(notice));
      HandleTaskDeath(env, notice.task);
    } else if (msg.msg_id == mk::kHeartbeatMsgId &&
               msg.inline_data.size() >= sizeof(mk::HeartbeatPing)) {
      mk::HeartbeatPing ping;
      std::memcpy(&ping, msg.inline_data.data(), sizeof(ping));
      HandleHeartbeat(env, ping.task);
    } else if (msg.msg_id == kReviveMsgId && !msg.inline_data.empty()) {
      HandleRevive(env, std::string(msg.inline_data.begin(), msg.inline_data.end()));
    }
    // PortDeathNotices are informational here; supervision keys off tasks.
    if (policy_.heartbeat_deadline_ns != 0) {
      CheckDeadlines(env);
    }
  }
}

void RestartManager::HandleHeartbeat(mk::Env& env, mk::TaskId task) {
  auto by = by_task_.find(task);
  if (by == by_task_.end()) {
    return;  // a beat from an instance we already gave up on (or killed)
  }
  Entry& entry = entries_[by->second];
  entry.last_beat_ns = env.NowNs();
  entry.beating = true;
}

void RestartManager::CheckDeadlines(mk::Env& env) {
  const uint64_t now = env.NowNs();
  mk::trace::MetricRegistry& metrics = kernel_.tracer().metrics();
  for (auto& [name, entry] : entries_) {
    if (entry.degraded || !entry.beating || entry.task == nullptr) {
      continue;
    }
    if (now - entry.last_beat_ns <= policy_.heartbeat_deadline_ns) {
      continue;
    }
    // Missed deadline: the server is alive but wedged (or starved beyond
    // tolerance). Force-terminate it — the teardown fails every queued and
    // in-flight caller with kPortDead — and let the death notice drive the
    // normal backoff/respawn path.
    entry.beating = false;  // one kill per silence
    ++entry.watchdog_kills;
    ++metrics.Counter("restart." + name + ".watchdog_kills");
    ++metrics.Counter("restart.watchdog_kills");
    kernel_.tracer().Emit(mk::trace::EventType::kWatchdogKill, entry.task->id(),
                          now - entry.last_beat_ns);
    WPOS_LOG(kWarn) << "restart: watchdog killing wedged server " << name << " (silent "
                    << now - entry.last_beat_ns << " ns)";
    kernel_.TerminateTask(entry.task);
  }
}

void RestartManager::HandleRevive(mk::Env& env, const std::string& name) {
  auto it = entries_.find(name);
  if (it == entries_.end() || !it->second.degraded) {
    return;  // unknown or not degraded; nothing to revive
  }
  Entry& entry = it->second;
  entry.restarts = 0;
  entry.degraded = false;
  entry.beating = false;
  Respawned spawned = entry.factory(env);
  WPOS_CHECK(spawned.task != nullptr) << "revive factory for " << name << " returned no task";
  entry.task = spawned.task;
  by_task_[spawned.task->id()] = name;
  if (names_ != nullptr && spawned.service_right != mk::kNullPort) {
    (void)names_->Unregister(env, name);
    (void)names_->Register(env, name, spawned.service_right);
  }
  ++kernel_.tracer().metrics().Counter("restart." + name + ".revived");
  kernel_.tracer().Emit(mk::trace::EventType::kServerRestart, spawned.task->id(),
                        entry.restarts);
  WPOS_LOG(kInfo) << "restart: revived " << name << " (budget reset)";
}

void RestartManager::HandleTaskDeath(mk::Env& env, mk::TaskId dead) {
  auto by = by_task_.find(dead);
  if (by == by_task_.end()) {
    return;  // not one of ours
  }
  const std::string name = by->second;
  by_task_.erase(by);
  Entry& entry = entries_[name];
  // Coherence fan-out before any respawn: whatever clients cached against
  // the dead instance (names, attributes, read-ahead) is now suspect.
  for (const auto& listener : death_listeners_) {
    listener(name);
  }
  mk::trace::MetricRegistry& metrics = kernel_.tracer().metrics();
  if (entry.restarts >= policy_.max_restarts) {
    // Budget exhausted: degrade cleanly. Dropping the name means clients
    // re-resolving it get kNotFound, which RpcCallRobust surfaces as
    // kUnavailable — no half-dead right left behind.
    entry.degraded = true;
    ++metrics.Counter("restart." + name + ".gave_up");
    if (names_ != nullptr) {
      (void)names_->Unregister(env, name);
    }
    WPOS_LOG(kWarn) << "restart: budget exhausted for " << name << ", degraded";
    return;
  }
  const uint64_t backoff = policy_.backoff_initial_ns << entry.restarts;
  (void)env.SleepNs(backoff);
  Respawned spawned = entry.factory(env);
  WPOS_CHECK(spawned.task != nullptr) << "restart factory for " << name << " returned no task";
  ++entry.restarts;
  ++total_restarts_;
  entry.task = spawned.task;
  // The fresh instance hasn't beaten yet; its watchdog deadline arms on its
  // first heartbeat, not on the predecessor's stale timestamp.
  entry.beating = false;
  by_task_[spawned.task->id()] = name;
  if (names_ != nullptr && spawned.service_right != mk::kNullPort) {
    // Register under the same name. The stale entry (if any) must go first:
    // the name server refuses duplicate registration.
    (void)names_->Unregister(env, name);
    (void)names_->Register(env, name, spawned.service_right);
  }
  ++metrics.Counter("restart." + name + ".restarts");
  ++metrics.Counter("restart.total");
  kernel_.tracer().Emit(mk::trace::EventType::kServerRestart, spawned.task->id(),
                        entry.restarts);
  WPOS_LOG(kInfo) << "restart: respawned " << name << " (restart " << entry.restarts << "/"
                  << policy_.max_restarts << ")";
}

}  // namespace mks
