#include "src/mk/analysis/explore/explorer.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/base/log.h"
#include "src/mk/analysis/wait_for_graph.h"
#include "src/mk/kernel.h"
#include "src/mk/trace/exporters.h"

namespace mk::analysis::explore {

namespace {

std::vector<uint64_t> IdsOf(const std::vector<Thread*>& threads) {
  std::vector<uint64_t> ids;
  ids.reserve(threads.size());
  for (Thread* t : threads) {
    ids.push_back(t->id());
  }
  return ids;
}

size_t IndexOfId(const std::vector<Thread*>& candidates, uint64_t id) {
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i]->id() == id) {
      return i;
    }
  }
  WPOS_CHECK(false) << "schedule replay: thread " << id << " not runnable where it was recorded";
  __builtin_unreachable();
}

// Deadlock verdict at halt. `blocked` is Kernel::Run()'s return value.
bool DeadlockAtHalt(Kernel& kernel, size_t blocked, std::string* message) {
  if (blocked == 0) {
    return false;
  }
  WaitForGraph graph = WaitForGraph::Build(kernel);
  const std::vector<const Thread*> dead = graph.DeadlockedThreads();
  if (dead.empty()) {
    return false;
  }
  std::ostringstream os;
  os << dead.size() << " deadlocked thread(s)";
  for (const std::string& report : graph.FindCycleReports()) {
    os << "\n  " << report;
  }
  for (const Thread* t : dead) {
    os << "\n  " << graph.DescribeBlocked(t);
  }
  *message = os.str();
  return true;
}

// Replays a recorded trace decision-for-decision, validating at each point
// that the candidate set matches what was recorded (the determinism
// guarantee), then falls back to stock behaviour past the end of the record.
class ReplayPolicy : public SchedulePolicy {
 public:
  ReplayPolicy(const ScheduleTrace* trace, ConcurrencyMonitor* monitor)
      : trace_(trace), monitor_(monitor) {}

  size_t PickIndex(const std::vector<Thread*>& candidates, size_t natural, Thread* previous,
                   SwitchReason reason) override {
    (void)previous;
    (void)reason;
    if (pending_forced_) {
      pending_forced_ = false;
      WPOS_CHECK(candidates[natural]->id() == forced_id_) << "replay: forced heir not runnable";
      return natural;
    }
    if (idx_ >= trace_->decisions.size()) {
      return natural;
    }
    const Decision& d = trace_->decisions[idx_++];
    WPOS_CHECK(!d.preempt_point) << "replay diverged: expected preempt point at decision "
                                 << idx_ - 1;
    WPOS_CHECK(IdsOf(candidates) == d.candidates)
        << "replay diverged: candidate set changed at decision " << idx_ - 1;
    const size_t i = IndexOfId(candidates, d.chosen);
    monitor_->BeginStep(candidates[i], /*preempt_point=*/false);
    return i;
  }

  Thread* OnPreemptPoint(Thread* current, const std::vector<Thread*>& candidates) override {
    if (idx_ >= trace_->decisions.size()) {
      return current;
    }
    const Decision& d = trace_->decisions[idx_++];
    WPOS_CHECK(d.preempt_point) << "replay diverged: expected voluntary switch at decision "
                                << idx_ - 1;
    WPOS_CHECK(IdsOf(candidates) == d.candidates)
        << "replay diverged: candidate set changed at decision " << idx_ - 1;
    const size_t i = IndexOfId(candidates, d.chosen);
    Thread* chosen = candidates[i];
    monitor_->BeginStep(chosen, /*preempt_point=*/true);
    if (chosen != current) {
      pending_forced_ = true;
      forced_id_ = d.chosen;
    }
    return chosen;
  }

 private:
  const ScheduleTrace* trace_;
  ConcurrencyMonitor* monitor_;
  size_t idx_ = 0;
  bool pending_forced_ = false;
  uint64_t forced_id_ = 0;
};

}  // namespace

// --- DfsPolicy -------------------------------------------------------------------

size_t ScheduleExplorer::DfsPolicy::Decide(const std::vector<Thread*>& candidates, size_t natural,
                                           bool preempt) {
  ScheduleExplorer* ex = owner_;
  WPOS_CHECK(depth_ < ex->options_.max_steps_per_run)
      << "schedule explorer '" << ex->options_.name << "': run exceeded "
      << ex->options_.max_steps_per_run << " dispatch decisions (livelock under exploration?)";
  const std::vector<uint64_t> ids = IdsOf(candidates);

  size_t idx;
  if (depth_ < ex->frames_.size()) {
    // Replaying the DFS prefix (identical program state up to here).
    Frame& f = ex->frames_[depth_];
    WPOS_CHECK(f.preempt_point == preempt && f.candidates == ids)
        << "exploration diverged at decision " << depth_ << " of '" << ex->options_.name << "'";
    const uint64_t chosen = f.alts[f.alt];
    idx = IndexOfId(candidates, chosen);
    f.chosen = chosen;
    f.preempts_before = preempts_used_;
  } else {
    // New territory: take the default and record the branch point.
    Frame f;
    f.candidates = ids;
    f.preempt_point = preempt;
    const uint64_t def = ids[natural];
    f.alts.push_back(def);
    for (uint64_t id : ids) {
      if (id != def) {
        f.alts.push_back(id);
      }
    }
    f.chosen = def;
    f.preempts_before = preempts_used_;
    ex->frames_.push_back(std::move(f));
    idx = natural;
  }
  // At a preempt point alts[0] == current: any other choice costs budget.
  if (preempt && ex->frames_[depth_].chosen != ids[0]) {
    ++preempts_used_;
  }
  ++depth_;
  ex->monitor_.BeginStep(candidates[idx], preempt);
  if (ex->options_.check_invariants && !ex->invariant_failed_ && ex->kernel_ != nullptr) {
    const size_t bad = ex->kernel_->CheckInvariants();
    if (bad > 0) {
      ex->invariant_failed_ = true;
      std::ostringstream os;
      os << bad << " invariant violation(s) at dispatch decision " << depth_ - 1;
      ex->invariant_message_ = os.str();
    }
  }
  return idx;
}

size_t ScheduleExplorer::DfsPolicy::PickIndex(const std::vector<Thread*>& candidates,
                                              size_t natural, Thread* previous,
                                              SwitchReason reason) {
  (void)previous;
  (void)reason;
  if (pending_forced_) {
    // The dispatch following a forced preemption: the decision was already
    // taken (and recorded) at the preempt point; just honour it.
    pending_forced_ = false;
    WPOS_CHECK(natural < candidates.size() && candidates[natural]->id() == forced_id_)
        << "forced preemption lost its heir";
    return natural;
  }
  return Decide(candidates, natural, /*preempt=*/false);
}

Thread* ScheduleExplorer::DfsPolicy::OnPreemptPoint(Thread* current,
                                                    const std::vector<Thread*>& candidates) {
  const size_t idx = Decide(candidates, /*natural=*/0, /*preempt=*/true);
  Thread* chosen = candidates[idx];
  if (chosen != current) {
    pending_forced_ = true;
    forced_id_ = chosen->id();
  }
  return chosen;
}

// --- ScheduleExplorer ------------------------------------------------------------

ScheduleExplorer::ScheduleExplorer(Options options, Setup setup, Verify verify)
    : options_(std::move(options)), setup_(std::move(setup)), verify_(std::move(verify)) {}

ScheduleTrace ScheduleExplorer::CurrentTrace() const {
  ScheduleTrace trace;
  trace.decisions.reserve(frames_.size());
  for (const Frame& f : frames_) {
    Decision d;
    d.chosen = f.alts[f.alt];
    d.candidates = f.candidates;
    d.preempt_point = f.preempt_point;
    trace.decisions.push_back(std::move(d));
  }
  return trace;
}

void ScheduleExplorer::RecordFailure(Result* result, const std::string& kind,
                                     const std::string& message) {
  Failure f;
  f.kind = kind;
  f.message = message;
  f.schedule_index = result->schedules;  // 0-based index of the failing run
  f.schedule = CurrentTrace();
  if (!options_.trace_dir.empty()) {
    f.schedule_file = options_.trace_dir + "/" + options_.name + ".failing.schedule";
    f.schedule.Save(f.schedule_file);
  }
  result->failures.push_back(std::move(f));
}

void ScheduleExplorer::RunOnce(Result* result) {
  monitor_.ResetRun(options_.race_detection);
  invariant_failed_ = false;
  invariant_message_.clear();
  DfsPolicy policy(this);
  policy.ResetRun();

  hw::Machine machine;
  Kernel kernel(&machine);
  kernel_ = &kernel;
  monitor_.Attach(kernel);
  kernel.scheduler().set_policy(&policy);

  if (!options_.trace_dir.empty()) {
    // The planned prefix; with the deterministic default policy past its
    // end, this file alone reproduces the run even if it aborts the process.
    std::filesystem::create_directories(options_.trace_dir);
    CurrentTrace().Save(options_.trace_dir + "/" + options_.name + ".current.schedule");
  }

  setup_(kernel);
  const size_t blocked = kernel.Run();
  result->decisions += monitor_.footprints().size();

  // Snapshot this run for the POR admissibility test — backtracking pops
  // frames, but pruning needs the popped steps' footprints.
  last_run_.clear();
  last_run_.reserve(frames_.size());
  const std::vector<std::set<uint64_t>>& fps = monitor_.footprints();
  for (size_t i = 0; i < frames_.size(); ++i) {
    StepRecord rec;
    rec.chosen = frames_[i].chosen;
    rec.candidates = frames_[i].candidates;
    if (i < fps.size()) {
      rec.footprint = fps[i];
    }
    last_run_.push_back(std::move(rec));
  }

  bool failed = false;
  if (invariant_failed_) {
    RecordFailure(result, "invariant", invariant_message_);
    failed = true;
  }
  std::string deadlock_msg;
  if (!failed && DeadlockAtHalt(kernel, blocked, &deadlock_msg)) {
    RecordFailure(result, "deadlock", deadlock_msg);
    failed = true;
  }
  if (!failed && verify_) {
    std::string msg;
    if (!verify_(kernel, &msg)) {
      RecordFailure(result, "verify", msg.empty() ? "verify callback failed" : msg);
      failed = true;
    }
  }
  for (const RaceReport& race : monitor_.races()) {
    if (race_keys_.insert(race.Describe()).second) {
      result->races.push_back(race);
    }
  }
  if (!failed && options_.fail_on_race && !monitor_.races().empty()) {
    RecordFailure(result, "race", monitor_.races().front().Describe());
  }

  kernel.scheduler().set_policy(nullptr);
  monitor_.Detach();
  kernel_ = nullptr;
}

bool ScheduleExplorer::PrunableByPor(size_t depth, uint64_t alt_id) const {
  // Find the alternative thread's next step in the last run.
  size_t j = 0;
  bool found = false;
  for (size_t i = depth; i < last_run_.size(); ++i) {
    if (last_run_[i].chosen == alt_id) {
      j = i;
      found = true;
      break;
    }
  }
  if (!found || j == depth) {
    return false;
  }
  // The thread must have stayed runnable from the decision to its first
  // step — otherwise scheduling it at `depth` is a genuinely new behaviour.
  for (size_t i = depth; i < j; ++i) {
    const StepRecord& step = last_run_[i];
    if (std::find(step.candidates.begin(), step.candidates.end(), alt_id) ==
        step.candidates.end()) {
      return false;
    }
  }
  // Prunable iff the thread's entire remaining execution commutes with every
  // step it could move ahead of: each of its steps must be disjoint from
  // every other thread's step between the decision and it. Then sliding the
  // thread earlier only reorders independent steps, reaching states the
  // search already covers. Checking just the next step is not enough — a
  // later conflicting step (say, a task termination) would be dragged
  // forward past steps it does not commute with. Lifecycle steps
  // (kGlobalEffectCell) conflict with everything by definition.
  for (size_t k = j; k < last_run_.size(); ++k) {
    if (last_run_[k].chosen != alt_id) {
      continue;
    }
    if (last_run_[k].footprint.count(kGlobalEffectCell) != 0) {
      return false;
    }
    for (size_t i = depth; i < k; ++i) {
      const StepRecord& step = last_run_[i];
      if (step.chosen == alt_id) {
        continue;
      }
      if (step.footprint.count(kGlobalEffectCell) != 0) {
        return false;
      }
      for (uint64_t cell : last_run_[k].footprint) {
        if (step.footprint.count(cell) != 0) {
          return false;
        }
      }
    }
  }
  return true;
}

bool ScheduleExplorer::AdmissibleAlternative(const Frame& frame, size_t frame_depth,
                                             size_t alt_index, Result* result) const {
  if (frame.preempt_point && alt_index > 0 && options_.preemption_bound >= 0 &&
      frame.preempts_before >= options_.preemption_bound) {
    return false;  // over the context bound; not counted as POR pruning
  }
  if (options_.partial_order_reduction && PrunableByPor(frame_depth, frame.alts[alt_index])) {
    ++result->pruned;
    return false;
  }
  return true;
}

bool ScheduleExplorer::NextPrefix(Result* result) {
  while (!frames_.empty()) {
    Frame& f = frames_.back();
    size_t next = f.alt + 1;
    while (next < f.alts.size() &&
           !AdmissibleAlternative(f, frames_.size() - 1, next, result)) {
      ++next;
    }
    if (next < f.alts.size()) {
      f.alt = next;
      return true;
    }
    frames_.pop_back();
  }
  return false;
}

Result ScheduleExplorer::Explore() {
  Result result;
  frames_.clear();
  last_run_.clear();
  race_keys_.clear();
  for (;;) {
    if (result.schedules >= options_.max_schedules) {
      result.hit_schedule_cap = true;
      break;
    }
    RunOnce(&result);
    ++result.schedules;
    if (!result.failures.empty()) {
      break;
    }
    if (!NextPrefix(&result)) {
      break;
    }
  }
  result.lock_order_cycles = monitor_.lock_order().Cycles();
  if (!result.failures.empty() && !result.failures.front().schedule_file.empty()) {
    // Render the failing interleaving as a Chrome trace through a replay.
    std::string msg;
    (void)Replay(result.failures.front().schedule_file, setup_, verify_, &msg,
                 options_.trace_dir + "/" + options_.name + ".failing.trace.json");
  }
  return result;
}

bool ScheduleExplorer::Replay(const std::string& schedule_file, const Setup& setup,
                              const Verify& verify, std::string* message,
                              const std::string& chrome_trace_out) {
  ScheduleTrace trace;
  if (!ScheduleTrace::Load(schedule_file, &trace)) {
    if (message != nullptr) {
      *message = "cannot load schedule file: " + schedule_file;
    }
    return false;
  }
  ConcurrencyMonitor monitor;
  monitor.ResetRun(/*race_detection=*/true);
  ReplayPolicy policy(&trace, &monitor);

  hw::Machine machine;
  Kernel kernel(&machine);
  monitor.Attach(kernel);
  kernel.scheduler().set_policy(&policy);
  if (!chrome_trace_out.empty()) {
    kernel.tracer().Enable();
  }
  setup(kernel);
  const size_t blocked = kernel.Run();

  std::string kind;
  std::string detail;
  if (kernel.CheckInvariants() > 0) {
    kind = "invariant";
    detail = "invariant violations at halt";
  } else if (DeadlockAtHalt(kernel, blocked, &detail)) {
    kind = "deadlock";
  } else if (verify) {
    std::string msg;
    if (!verify(kernel, &msg)) {
      kind = "verify";
      detail = msg.empty() ? "verify callback failed" : msg;
    }
  }
  if (kind.empty() && !monitor.races().empty()) {
    kind = "race";
    detail = monitor.races().front().Describe();
  }

  if (!chrome_trace_out.empty()) {
    std::ofstream os(chrome_trace_out);
    trace::WriteChromeTrace(os, kernel);
  }
  kernel.scheduler().set_policy(nullptr);
  monitor.Detach();

  if (message != nullptr) {
    *message = kind.empty() ? "" : kind + ": " + detail;
  }
  return !kind.empty();
}

}  // namespace mk::analysis::explore
