#include "src/mk/analysis/explore/race_detector.h"

#include <sstream>

namespace mk::analysis::explore {

namespace {
void Join(VectorClock& into, const VectorClock& from) {
  for (const auto& [tid, clk] : from) {
    uint64_t& slot = into[tid];
    if (clk > slot) {
      slot = clk;
    }
  }
}
}  // namespace

std::string RaceReport::Describe() const {
  std::ostringstream os;
  os << "data race on cell 0x" << std::hex << (cell << 4) << std::dec << ": thread "
     << first_thread << " " << (first_write ? "write" : "read") << " in " << first_op
     << " vs thread " << second_thread << " " << (second_write ? "write" : "read") << " in "
     << second_op << " (no happens-before order, no common lock)";
  return os.str();
}

void RaceDetector::Reset() {
  clocks_.clear();
  channels_.clear();
  held_.clear();
  shadow_.clear();
  names_.clear();
  reported_.clear();
  races_.clear();
}

VectorClock& RaceDetector::ClockOf(uint64_t tid) {
  VectorClock& vc = clocks_[tid];
  if (vc.find(tid) == vc.end()) {
    vc[tid] = 1;  // every thread starts with its own component ticked
  }
  return vc;
}

void RaceDetector::ThreadCreate(uint64_t parent, uint64_t child) {
  VectorClock& pc = ClockOf(parent);
  Join(ClockOf(child), pc);
  ++pc[parent];
}

void RaceDetector::ChannelRelease(uint64_t chan, uint64_t tid) {
  VectorClock& vc = ClockOf(tid);
  Join(channels_[chan], vc);
  ++vc[tid];
}

void RaceDetector::ChannelAcquire(uint64_t chan, uint64_t tid) {
  auto it = channels_.find(chan);
  if (it != channels_.end()) {
    Join(ClockOf(tid), it->second);
  }
}

void RaceDetector::DirectEdge(uint64_t from, uint64_t to) {
  VectorClock& fc = ClockOf(from);
  Join(ClockOf(to), fc);
  ++fc[from];
}

void RaceDetector::Acquire(uint64_t tid, uint64_t lock) { held_[tid].insert(lock); }

void RaceDetector::Release(uint64_t tid, uint64_t lock) { held_[tid].erase(lock); }

bool RaceDetector::Holds(uint64_t tid, uint64_t lock) const {
  auto it = held_.find(tid);
  return it != held_.end() && it->second.count(lock) != 0;
}

bool RaceDetector::OrderedBefore(const AccessRecord& rec, uint64_t tid) {
  const VectorClock& vc = ClockOf(tid);
  auto it = vc.find(rec.tid);
  return it != vc.end() && it->second >= rec.clock;
}

void RaceDetector::Report(const AccessRecord& prev, bool prev_write, uint64_t tid, uint64_t cell,
                          bool write, const std::string& op, const std::set<uint64_t>& locks) {
  // Common lock (including the implicit kernel lock) => consistently guarded.
  for (uint64_t l : prev.locks) {
    if (locks.count(l) != 0) {
      return;
    }
  }
  std::ostringstream key;
  key << cell << '|' << prev.op << '|' << op << '|' << prev_write << write;
  if (!reported_.insert(key.str()).second) {
    return;
  }
  RaceReport r;
  r.cell = cell;
  r.first_thread = prev.tid;
  r.first_op = prev.op;
  r.first_write = prev_write;
  r.second_thread = tid;
  r.second_op = op;
  r.second_write = write;
  races_.push_back(std::move(r));
}

void RaceDetector::Access(uint64_t tid, uint64_t cell, bool write, const std::string& op,
                          bool in_kernel) {
  const VectorClock& vc = ClockOf(tid);
  std::set<uint64_t> locks;
  auto hit = held_.find(tid);
  if (hit != held_.end()) {
    locks = hit->second;
  }
  if (in_kernel) {
    locks.insert(kKernelLock);
  }
  Shadow& sh = shadow_[cell];
  if (sh.has_write && sh.last_write.tid != tid && !OrderedBefore(sh.last_write, tid)) {
    Report(sh.last_write, /*prev_write=*/true, tid, cell, write, op, locks);
  }
  if (write) {
    for (const auto& [rtid, rec] : sh.reads) {
      if (rtid != tid && !OrderedBefore(rec, tid)) {
        Report(rec, /*prev_write=*/false, tid, cell, write, op, locks);
      }
    }
    sh.last_write = {tid, vc.at(tid), locks, op};
    sh.has_write = true;
    sh.reads.clear();
  } else {
    sh.reads[tid] = {tid, vc.at(tid), locks, op};
  }
}

}  // namespace mk::analysis::explore
