#include "src/mk/analysis/explore/schedule.h"

#include <fstream>
#include <sstream>

namespace mk::analysis::explore {

std::string ScheduleTrace::ToString() const {
  std::ostringstream os;
  for (const Decision& d : decisions) {
    os << "pick " << d.chosen << " of";
    for (uint64_t c : d.candidates) {
      os << ' ' << c;
    }
    os << " preempt=" << (d.preempt_point ? 1 : 0) << '\n';
  }
  return os.str();
}

bool ScheduleTrace::Save(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    return false;
  }
  os << ToString();
  return static_cast<bool>(os);
}

bool ScheduleTrace::Load(const std::string& path, ScheduleTrace* out) {
  std::ifstream is(path);
  if (!is) {
    return false;
  }
  out->decisions.clear();
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream ls(line);
    std::string word;
    Decision d;
    if (!(ls >> word) || word != "pick" || !(ls >> d.chosen)) {
      return false;
    }
    if (!(ls >> word) || word != "of") {
      return false;
    }
    while (ls >> word) {
      if (word.rfind("preempt=", 0) == 0) {
        d.preempt_point = word == "preempt=1";
        break;
      }
      d.candidates.push_back(std::stoull(word));
    }
    out->decisions.push_back(std::move(d));
  }
  return true;
}

}  // namespace mk::analysis::explore
