// Hybrid lockset + vector-clock data-race detector over simulated memory.
//
// Works at scheduling-step granularity: the cooperative simulator only
// switches threads at kernel entries and blocking points, so execution
// between two dispatch decisions is atomic and the detector's job is to find
// pairs of conflicting accesses in *different* steps of *different* threads
// that are neither ordered by a happens-before edge (vector clocks over the
// kernel's synchronizers: semaphores, port/channel transfers, RPC
// rendezvous, explicit wakes, thread create/join) nor consistently protected
// by a common lock (Eraser-style locksets over semaphores used as mutexes,
// plus the implicit big kernel lock for accesses made between
// EnterKernel/LeaveKernel brackets).
//
// All bookkeeping is host-side: no simulated cycles are charged. Containers
// are ordered (std::map/std::set) so reports come out in a deterministic
// order regardless of allocation history.
#ifndef SRC_MK_ANALYSIS_EXPLORE_RACE_DETECTOR_H_
#define SRC_MK_ANALYSIS_EXPLORE_RACE_DETECTOR_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace mk::analysis::explore {

// The implicit lock modelling the atomicity of kernel sections: any access
// made while the thread is inside an EnterKernel/LeaveKernel bracket holds
// it, so kernel-structure traffic never races with kernel-structure traffic.
constexpr uint64_t kKernelLock = ~0ull;

using VectorClock = std::map<uint64_t, uint64_t>;  // thread id -> clock

struct RaceReport {
  uint64_t cell = 0;  // simulated physical address >> 4
  uint64_t first_thread = 0;
  std::string first_op;
  bool first_write = false;
  uint64_t second_thread = 0;
  std::string second_op;
  bool second_write = false;
  std::string Describe() const;
};

class RaceDetector {
 public:
  // Per-run reset: clears clocks, shadow memory, and pending reports (the
  // monitor re-reports per run; the explorer dedupes across runs).
  void Reset();

  // --- Happens-before edges --------------------------------------------------
  void ThreadCreate(uint64_t parent, uint64_t child);
  // Release half: the channel absorbs the sender's clock.
  void ChannelRelease(uint64_t chan, uint64_t tid);
  // Acquire half: the receiver absorbs the channel's clock.
  void ChannelAcquire(uint64_t chan, uint64_t tid);
  // Direct edge from -> to (RPC rendezvous, wake).
  void DirectEdge(uint64_t from, uint64_t to);

  // --- Locksets ----------------------------------------------------------------
  void Acquire(uint64_t tid, uint64_t lock);
  void Release(uint64_t tid, uint64_t lock);
  bool Holds(uint64_t tid, uint64_t lock) const;

  // --- Accesses ----------------------------------------------------------------
  // `op` labels the access site for the report (the nearest kernel operation
  // or "user"); `in_kernel` adds the implicit kernel lock.
  void Access(uint64_t tid, uint64_t cell, bool write, const std::string& op, bool in_kernel);

  const std::vector<RaceReport>& races() const { return races_; }
  void set_thread_name(uint64_t tid, const std::string& name) { names_[tid] = name; }
  const std::map<uint64_t, std::string>& thread_names() const { return names_; }

 private:
  struct AccessRecord {
    uint64_t tid = 0;
    uint64_t clock = 0;  // accessor's own component at access time
    std::set<uint64_t> locks;
    std::string op;
  };
  struct Shadow {
    AccessRecord last_write;
    bool has_write = false;
    std::map<uint64_t, AccessRecord> reads;  // by thread id
  };

  VectorClock& ClockOf(uint64_t tid);
  // True when `rec` happened-before thread `tid`'s current point.
  bool OrderedBefore(const AccessRecord& rec, uint64_t tid);
  void Report(const AccessRecord& prev, bool prev_write, uint64_t tid, uint64_t cell, bool write,
              const std::string& op, const std::set<uint64_t>& locks);

  std::map<uint64_t, VectorClock> clocks_;
  std::map<uint64_t, VectorClock> channels_;
  std::map<uint64_t, std::set<uint64_t>> held_;
  std::map<uint64_t, Shadow> shadow_;
  std::map<uint64_t, std::string> names_;
  std::set<std::string> reported_;  // dedup key: cell + both ops
  std::vector<RaceReport> races_;
};

}  // namespace mk::analysis::explore

#endif  // SRC_MK_ANALYSIS_EXPLORE_RACE_DETECTOR_H_
