#include "src/mk/analysis/explore/lock_order.h"

#include <algorithm>
#include <functional>
#include <sstream>

namespace mk::analysis::explore {

void LockOrderChecker::ResetRun() { held_.clear(); }

void LockOrderChecker::Acquired(uint64_t tid, uint64_t lock) {
  std::vector<uint64_t>& stack = held_[tid];
  for (uint64_t h : stack) {
    if (h != lock) {
      edges_[h].insert(lock);
    }
  }
  stack.push_back(lock);
}

void LockOrderChecker::Released(uint64_t tid, uint64_t lock) {
  std::vector<uint64_t>& stack = held_[tid];
  auto it = std::find(stack.rbegin(), stack.rend(), lock);
  if (it != stack.rend()) {
    stack.erase(std::next(it).base());
  }
}

std::vector<std::string> LockOrderChecker::Cycles() const {
  // DFS from each node in id order; a back edge to a node on the current
  // path closes a cycle. Each cycle is canonicalized by its smallest member
  // so the same loop is reported once regardless of entry point.
  std::vector<std::string> out;
  std::set<std::vector<uint64_t>> seen;
  std::vector<uint64_t> path;
  std::set<uint64_t> on_path;

  std::function<void(uint64_t)> dfs = [&](uint64_t node) {
    path.push_back(node);
    on_path.insert(node);
    auto it = edges_.find(node);
    if (it != edges_.end()) {
      for (uint64_t next : it->second) {
        if (on_path.count(next) != 0) {
          // Extract the cycle path[pos..end] and canonicalize.
          auto pos = std::find(path.begin(), path.end(), next);
          std::vector<uint64_t> cycle(pos, path.end());
          auto min_it = std::min_element(cycle.begin(), cycle.end());
          std::rotate(cycle.begin(), min_it, cycle.end());
          if (seen.insert(cycle).second) {
            std::ostringstream os;
            for (uint64_t l : cycle) {
              os << "sem " << l << " -> ";
            }
            os << "sem " << cycle.front();
            out.push_back(os.str());
          }
        } else {
          dfs(next);
        }
      }
    }
    on_path.erase(node);
    path.pop_back();
  };

  for (const auto& [node, targets] : edges_) {
    (void)targets;
    dfs(node);
  }
  return out;
}

}  // namespace mk::analysis::explore
