// Mutation self-test for the concurrency checker: a shared-tally workload
// whose semaphore guard is compiled out under WPOS_EXPLORE_SELFTEST. The
// explore_selftest test binary (built with the macro) must then find both
// symptoms of the seeded bug — the lockset/vector-clock detector must flag
// the unprotected cell, and the explorer must find a schedule that loses an
// update (Verify fails) and leave a replayable trace. The normal build keeps
// the guard, and the regular test suite asserts the same workload explores
// clean — so a checker regression shows up as one of the two binaries
// disagreeing with its expectation.
#ifndef SRC_MK_ANALYSIS_EXPLORE_SELFTEST_H_
#define SRC_MK_ANALYSIS_EXPLORE_SELFTEST_H_

#include <memory>

#include "src/mk/kernel.h"

namespace mk::analysis::explore {

// Shared state for one run of the seeded-tally workload.
struct SeededTally {
  int value = 0;        // host-side mirror of the simulated counter
  uint32_t sem = 0;     // the guard (unused when compiled out)
  hw::PhysAddr cell = 0;  // simulated address the tally lives at
};

// Installs `workers` threads that each perform a read-modify-write of a
// shared tally cell with a deliberate yield between the read and the write —
// the canonical lost-update window. Each access is charged through the
// simulated D-cache *outside* any kernel bracket, so the race detector sees
// plain user-level traffic. Guarded (default build): SemWait/SemSignal
// around the critical section makes every schedule end with value ==
// workers. Unguarded (WPOS_EXPLORE_SELFTEST): some interleaving loses an
// update and value < workers.
inline std::shared_ptr<SeededTally> InstallSeededTally(Kernel& kernel, int workers = 2) {
  auto tally = std::make_shared<SeededTally>();
  tally->cell = kernel.heap().Allocate(64);
  auto sem = kernel.SemCreate(1);
  WPOS_CHECK(sem.ok());
  tally->sem = *sem;
  Task* task = kernel.CreateTask("selftest");
  for (int i = 0; i < workers; ++i) {
    const std::string name = "tally" + std::to_string(i);
    kernel.CreateThread(task, name, [tally](Env& env) {
      Kernel& k = env.kernel();
#ifndef WPOS_EXPLORE_SELFTEST
      WPOS_CHECK(k.SemWait(tally->sem) == base::Status::kOk);
#endif
      k.ChargeKernelData(tally->cell, 4, /*write=*/false);
      const int read = tally->value;
      env.Yield();  // the lost-update window
      k.ChargeKernelData(tally->cell, 4, /*write=*/true);
      tally->value = read + 1;
#ifndef WPOS_EXPLORE_SELFTEST
      WPOS_CHECK(k.SemSignal(tally->sem) == base::Status::kOk);
#endif
    });
  }
  return tally;
}

}  // namespace mk::analysis::explore

#endif  // SRC_MK_ANALYSIS_EXPLORE_SELFTEST_H_
