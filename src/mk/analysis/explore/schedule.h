// Schedule traces: the serialized record of every dispatch decision the
// explorer made during one run. A trace plus the deterministic simulator is
// a complete reproduction recipe — replaying the recorded choices (and
// falling back to the stock scheduler's behaviour past the end of the
// record) re-executes the exact same interleaving, so a failing schedule
// found after thousands of runs can be handed around as a small text file.
#ifndef SRC_MK_ANALYSIS_EXPLORE_SCHEDULE_H_
#define SRC_MK_ANALYSIS_EXPLORE_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mk::analysis::explore {

// One dispatch decision. `candidates` are thread ids in the stock
// scheduler's scan order; thread ids are deterministic across runs (creation
// order), which is what makes the trace portable between kernel instances.
struct Decision {
  uint64_t chosen = 0;
  std::vector<uint64_t> candidates;
  // True for a forced preemption at a kernel entry (the previous thread was
  // still runnable); false for a voluntary switch point (block/yield/exit).
  bool preempt_point = false;
};

struct ScheduleTrace {
  std::vector<Decision> decisions;

  // Text format, one decision per line:
  //   pick <id> of <id> <id> ... preempt=<0|1>
  bool Save(const std::string& path) const;
  static bool Load(const std::string& path, ScheduleTrace* out);
  std::string ToString() const;
};

}  // namespace mk::analysis::explore

#endif  // SRC_MK_ANALYSIS_EXPLORE_SCHEDULE_H_
