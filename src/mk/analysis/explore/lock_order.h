// Lock-order checker: accumulates a semaphore-acquisition-order graph across
// every explored schedule (edge A -> B whenever a thread acquires B while
// holding A) and reports each cycle as a potential deadlock — even when no
// explored schedule actually deadlocked, the inverted orders prove one is
// reachable. The graph deliberately persists across runs: two orders that
// never collide within a single schedule still form a cycle in the union.
#ifndef SRC_MK_ANALYSIS_EXPLORE_LOCK_ORDER_H_
#define SRC_MK_ANALYSIS_EXPLORE_LOCK_ORDER_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace mk::analysis::explore {

class LockOrderChecker {
 public:
  // Per-run reset of held stacks only; the order graph accumulates.
  void ResetRun();

  void Acquired(uint64_t tid, uint64_t lock);
  void Released(uint64_t tid, uint64_t lock);

  // Each cycle rendered as "sem 1 -> sem 2 -> sem 1", deterministic order.
  std::vector<std::string> Cycles() const;

 private:
  std::map<uint64_t, std::vector<uint64_t>> held_;  // per-thread, in order
  std::map<uint64_t, std::set<uint64_t>> edges_;    // lock -> locks taken under it
};

}  // namespace mk::analysis::explore

#endif  // SRC_MK_ANALYSIS_EXPLORE_LOCK_ORDER_H_
