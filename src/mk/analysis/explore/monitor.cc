#include "src/mk/analysis/explore/monitor.h"

#include <sstream>

#include "src/mk/kernel.h"
#include "src/mk/thread.h"

namespace mk::analysis::explore {

namespace {
// Semaphore signal/wait edges get their own channel namespace so a semaphore
// id can never alias a port id or a memsync word address.
constexpr uint64_t kSemChannelTag = kChannelCellTag | (1ull << 61);

const std::string kUserLabel = "user";
}  // namespace

void ConcurrencyMonitor::Attach(Kernel& kernel) {
  kernel_ = &kernel;
  kernel.set_sync_observer(this);
  kernel.cpu().set_access_observer(
      [this](hw::PhysAddr paddr, uint32_t size, bool write) { OnAccess(paddr, size, write); });
}

void ConcurrencyMonitor::Detach() {
  if (kernel_ != nullptr) {
    kernel_->set_sync_observer(nullptr);
    kernel_->cpu().set_access_observer(nullptr);
    kernel_ = nullptr;
  }
}

void ConcurrencyMonitor::ResetRun(bool race_detection) {
  race_detection_ = race_detection;
  detector_.Reset();
  lock_order_.ResetRun();
  footprints_.clear();
  kernel_depth_.clear();
  op_label_.clear();
}

void ConcurrencyMonitor::BeginStep(Thread* chosen, bool preempt_point) {
  (void)preempt_point;
  footprints_.emplace_back();
  Touch(kThreadCellTag | chosen->id());
}

void ConcurrencyMonitor::Touch(uint64_t cell) {
  if (!footprints_.empty()) {
    footprints_.back().insert(cell);
  }
}

const std::string& ConcurrencyMonitor::LabelOf(uint64_t tid) {
  auto it = op_label_.find(tid);
  return it == op_label_.end() || it->second.empty() ? kUserLabel : it->second;
}

void ConcurrencyMonitor::OnAccess(uint64_t paddr, uint32_t size, bool write) {
  (void)size;
  const uint64_t cell = paddr >> 4;
  Touch(cell);
  if (!race_detection_ || kernel_ == nullptr) {
    return;
  }
  Thread* t = kernel_->current();
  if (t == nullptr) {
    return;  // machine-context access (boot, timer callback): not a thread
  }
  const uint64_t tid = t->id();
  auto depth = kernel_depth_.find(tid);
  const bool in_kernel = depth != kernel_depth_.end() && depth->second > 0;
  detector_.Access(tid, cell, write, LabelOf(tid), in_kernel);
}

void ConcurrencyMonitor::OnThreadStart(Thread* t, Thread* creator) {
  detector_.set_thread_name(t->id(), t->name());
  if (creator != nullptr) {
    detector_.ThreadCreate(creator->id(), t->id());
  }
  Touch(kThreadCellTag | t->id());
}

void ConcurrencyMonitor::OnThreadExit(Thread* t) {
  kernel_depth_.erase(t->id());
  op_label_.erase(t->id());
}

void ConcurrencyMonitor::OnSwitch(Thread* incoming, SwitchReason reason) {
  (void)incoming;
  (void)reason;
}

void ConcurrencyMonitor::OnWake(Thread* waker, Thread* woken) {
  Touch(kThreadCellTag | woken->id());
  if (waker != nullptr) {
    detector_.DirectEdge(waker->id(), woken->id());
  }
}

void ConcurrencyMonitor::OnKernelEnter(Thread* t) { ++kernel_depth_[t->id()]; }

void ConcurrencyMonitor::OnKernelLeave(Thread* t) {
  auto it = kernel_depth_.find(t->id());
  if (it != kernel_depth_.end() && it->second > 0) {
    --it->second;
    if (it->second == 0) {
      op_label_[t->id()].clear();  // back in user code
    }
  }
}

void ConcurrencyMonitor::OnSemAcquired(uint32_t sem, Thread* t) {
  const uint64_t tid = t->id();
  Touch(kSemChannelTag | sem);
  detector_.ChannelAcquire(kSemChannelTag | sem, tid);
  detector_.Acquire(tid, sem);
  lock_order_.Acquired(tid, sem);
}

void ConcurrencyMonitor::OnSemSignal(uint32_t sem, Thread* t) {
  if (t == nullptr) {
    return;
  }
  const uint64_t tid = t->id();
  Touch(kSemChannelTag | sem);
  detector_.ChannelRelease(kSemChannelTag | sem, tid);
  if (detector_.Holds(tid, sem)) {
    // Mutex discipline: the signaller held it, so this is an unlock.
    detector_.Release(tid, sem);
    lock_order_.Released(tid, sem);
  }
}

void ConcurrencyMonitor::OnChannelSend(uint64_t chan, Thread* t) {
  Touch(kChannelCellTag | chan);
  if (t != nullptr) {
    detector_.ChannelRelease(kChannelCellTag | chan, t->id());
  }
}

void ConcurrencyMonitor::OnChannelRecv(uint64_t chan, Thread* t) {
  Touch(kChannelCellTag | chan);
  if (t != nullptr) {
    detector_.ChannelAcquire(kChannelCellTag | chan, t->id());
  }
}

void ConcurrencyMonitor::OnRendezvous(Thread* from, Thread* to) {
  Touch(kThreadCellTag | from->id());
  Touch(kThreadCellTag | to->id());
  detector_.DirectEdge(from->id(), to->id());
}

void ConcurrencyMonitor::OnOpLabel(Thread* t, const char* op, uint64_t arg) {
  if (t == nullptr) {
    return;
  }
  std::ostringstream os;
  os << op << '(' << arg << ')';
  op_label_[t->id()] = os.str();
}

void ConcurrencyMonitor::OnGlobalOp(Thread*) { Touch(kGlobalEffectCell); }

}  // namespace mk::analysis::explore
