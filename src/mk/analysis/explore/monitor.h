// ConcurrencyMonitor: the glue between the kernel's synchronization hooks
// (SyncObserver), the CPU's data-access observer, and the analysis engines —
// the lockset/vector-clock race detector and the lock-order checker. It also
// records per-scheduling-step access footprints, which the explorer's
// partial-order reduction uses to prove two adjacent steps commute.
//
// Entirely host-side: installing the monitor charges no simulated cycles and
// perturbs no counters (the zero-cost guarantee the explore tests assert).
#ifndef SRC_MK_ANALYSIS_EXPLORE_MONITOR_H_
#define SRC_MK_ANALYSIS_EXPLORE_MONITOR_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/mk/analysis/explore/lock_order.h"
#include "src/mk/analysis/explore/race_detector.h"
#include "src/mk/sync_observer.h"

namespace mk {
class Kernel;
}

namespace mk::analysis::explore {

// Footprint cells are tagged so data, scheduling, and channel dependencies
// all land in one disjointness check: two steps with disjoint footprints
// touch different memory AND different threads AND different synchronizers,
// so they commute.
constexpr uint64_t kThreadCellTag = 1ull << 63;
constexpr uint64_t kChannelCellTag = 1ull << 62;
// Sentinel footprint cell for lifecycle operations (task termination, port
// or semaphore destruction): a step carrying it conflicts with every other
// step, so the partial-order reduction never commutes across it.
constexpr uint64_t kGlobalEffectCell = kThreadCellTag | kChannelCellTag;

class ConcurrencyMonitor : public SyncObserver {
 public:
  ConcurrencyMonitor() = default;

  // Installs on `kernel` (sync observer) and its CPU (access observer).
  // Uninstall before the kernel dies by installing on the next kernel or
  // calling Detach().
  void Attach(Kernel& kernel);
  void Detach();

  // Per-run reset: clears clocks, shadow state, footprints. The lock-order
  // graph accumulates across runs by design.
  void ResetRun(bool race_detection);

  // Called by the explorer's policy at every dispatch decision; accesses
  // until the next call are attributed to `chosen`'s step.
  void BeginStep(Thread* chosen, bool preempt_point);

  const std::vector<std::set<uint64_t>>& footprints() const { return footprints_; }
  const std::vector<RaceReport>& races() const { return detector_.races(); }
  const RaceDetector& detector() const { return detector_; }
  LockOrderChecker& lock_order() { return lock_order_; }

  // --- SyncObserver ----------------------------------------------------------
  void OnThreadStart(Thread* t, Thread* creator) override;
  void OnThreadExit(Thread* t) override;
  void OnSwitch(Thread* incoming, SwitchReason reason) override;
  void OnWake(Thread* waker, Thread* woken) override;
  void OnKernelEnter(Thread* t) override;
  void OnKernelLeave(Thread* t) override;
  void OnSemAcquired(uint32_t sem, Thread* t) override;
  void OnSemSignal(uint32_t sem, Thread* t) override;
  void OnChannelSend(uint64_t chan, Thread* t) override;
  void OnChannelRecv(uint64_t chan, Thread* t) override;
  void OnRendezvous(Thread* from, Thread* to) override;
  void OnOpLabel(Thread* t, const char* op, uint64_t arg) override;
  void OnGlobalOp(Thread* t) override;

 private:
  void OnAccess(uint64_t paddr, uint32_t size, bool write);
  void Touch(uint64_t cell);
  const std::string& LabelOf(uint64_t tid);

  Kernel* kernel_ = nullptr;
  bool race_detection_ = true;
  RaceDetector detector_;
  LockOrderChecker lock_order_;

  std::vector<std::set<uint64_t>> footprints_;  // one per scheduling step
  std::map<uint64_t, int> kernel_depth_;        // per thread id
  std::map<uint64_t, std::string> op_label_;    // per thread id
};

}  // namespace mk::analysis::explore

#endif  // SRC_MK_ANALYSIS_EXPLORE_MONITOR_H_
