// Systematic schedule-space explorer (stateless model checking in the CHESS
// style). The explorer re-runs a test body — a Setup callback that builds
// tasks and threads on a fresh Kernel — once per distinct thread
// interleaving, taking control of every dispatch decision through the
// scheduler's SchedulePolicy hook and of every kernel entry through its
// preemption point. Voluntary switch points (block / yield / exit) are
// enumerated exhaustively; forced preemptions at kernel entries are subject
// to an iterative context bound (`preemption_bound`), which is the knob that
// keeps the schedule count polynomial while still catching most concurrency
// bugs at small bounds.
//
// At every dispatch decision the kernel's structural invariants are checked
// and the ConcurrencyMonitor feeds the lockset/vector-clock race detector;
// at every halt the wait-for graph is consulted for deadlock. Any failure —
// invariant violation, deadlock cycle, race (opt-in), or a false Verify
// callback — stops the search and leaves a replayable schedule trace behind;
// Replay() re-executes it decision-for-decision and can render the failing
// run as a Chrome trace via the PR-2 tracer.
//
// Pruning: a commuting-suffix partial-order reduction skips an alternative
// `a` at decision `d` when the last run shows every remaining step of `a`
// commutes (disjoint access footprints, including scheduling and channel
// cells) with every other thread's step it would move ahead of — running `a`
// earlier then only reorders independent steps and reaches covered states.
#ifndef SRC_MK_ANALYSIS_EXPLORE_EXPLORER_H_
#define SRC_MK_ANALYSIS_EXPLORE_EXPLORER_H_

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "src/mk/analysis/explore/monitor.h"
#include "src/mk/analysis/explore/schedule.h"
#include "src/mk/scheduler.h"

namespace mk {
class Kernel;
}

namespace mk::analysis::explore {

struct Options {
  // Max forced preemptions per schedule; -1 = unbounded (exhaustive over
  // preemption points too). 0 explores only voluntary interleavings.
  int preemption_bound = -1;
  uint64_t max_schedules = 200000;
  // Hard cap on dispatch decisions in one run; hitting it means the workload
  // livelocks under some schedule and aborts the process with context.
  uint64_t max_steps_per_run = 100000;
  bool partial_order_reduction = true;
  bool check_invariants = true;
  bool race_detection = true;
  // Treat a detected data race as a failure (stops the search). Off by
  // default: races are always reported in Result::races either way.
  bool fail_on_race = false;
  std::string name = "explore";
  // When set, schedule traces are written here: <name>.current.schedule at
  // every run start (so an abort mid-run leaves a reproduction recipe),
  // <name>.failing.schedule plus a <name>.failing.trace.json Chrome trace on
  // failure. Empty = no files.
  std::string trace_dir;
};

struct Failure {
  std::string kind;  // "invariant" | "deadlock" | "verify" | "race"
  std::string message;
  uint64_t schedule_index = 0;  // which run (0-based) failed
  ScheduleTrace schedule;
  std::string schedule_file;  // empty when trace_dir unset
};

struct Result {
  uint64_t schedules = 0;          // schedules actually executed
  uint64_t decisions = 0;          // dispatch decisions across all runs
  uint64_t pruned = 0;             // alternatives skipped by the POR
  bool hit_schedule_cap = false;   // stopped at max_schedules, not exhausted
  std::vector<Failure> failures;   // search stops at the first failure
  std::vector<RaceReport> races;   // deduplicated across runs
  std::vector<std::string> lock_order_cycles;  // potential deadlocks
  bool ok() const { return failures.empty(); }
};

class ScheduleExplorer {
 public:
  // Builds the workload on a fresh kernel (tasks, threads, ports); called
  // once per schedule. Thread creation order must be deterministic — thread
  // ids are how schedules stay portable between runs.
  using Setup = std::function<void(Kernel&)>;
  // Optional post-run oracle: return false (with a message) to fail the
  // schedule even though nothing crashed — e.g. a lost update.
  using Verify = std::function<bool(Kernel&, std::string*)>;

  ScheduleExplorer(Options options, Setup setup, Verify verify = nullptr);

  // Runs the search. Deterministic: the same workload and options always
  // produce the same Result (schedule counts included).
  Result Explore();

  // Re-executes one recorded schedule. Returns true when the schedule
  // reproduces a failure (message filled with its description); false for a
  // clean run. With `chrome_trace_out` set, the replay runs with the tracer
  // enabled and writes a Chrome trace of the failing interleaving.
  static bool Replay(const std::string& schedule_file, const Setup& setup, const Verify& verify,
                     std::string* message, const std::string& chrome_trace_out = "");

 private:
  // One DFS frame: a dispatch decision and the alternatives still to try.
  struct Frame {
    std::vector<uint64_t> candidates;  // thread ids, scan order, this run
    std::vector<uint64_t> alts;        // try order; alts[0] is the default
    size_t alt = 0;                    // alternative currently being tried
    bool preempt_point = false;
    uint64_t chosen = 0;               // id dispatched in the latest run
    int preempts_before = 0;           // preemptions consumed on the prefix
  };
  // Snapshot of the last completed run, used by the POR admissibility test
  // after deeper frames have been popped.
  struct StepRecord {
    uint64_t chosen = 0;
    std::vector<uint64_t> candidates;
    std::set<uint64_t> footprint;
  };

  class DfsPolicy : public SchedulePolicy {
   public:
    explicit DfsPolicy(ScheduleExplorer* owner) : owner_(owner) {}
    size_t PickIndex(const std::vector<Thread*>& candidates, size_t natural, Thread* previous,
                     SwitchReason reason) override;
    Thread* OnPreemptPoint(Thread* current, const std::vector<Thread*>& candidates) override;
    void ResetRun() {
      depth_ = 0;
      preempts_used_ = 0;
      pending_forced_ = false;
    }

   private:
    size_t Decide(const std::vector<Thread*>& candidates, size_t natural, bool preempt);
    ScheduleExplorer* owner_;
    size_t depth_ = 0;
    int preempts_used_ = 0;
    bool pending_forced_ = false;
    uint64_t forced_id_ = 0;
  };

  void RunOnce(Result* result);
  // Advances the DFS to the next unexplored prefix; false = space exhausted.
  bool NextPrefix(Result* result);
  bool AdmissibleAlternative(const Frame& frame, size_t frame_depth, size_t alt_index,
                             Result* result) const;
  bool PrunableByPor(size_t depth, uint64_t alt_id) const;
  ScheduleTrace CurrentTrace() const;
  void RecordFailure(Result* result, const std::string& kind, const std::string& message);

  Options options_;
  Setup setup_;
  Verify verify_;
  ConcurrencyMonitor monitor_;
  std::vector<Frame> frames_;
  std::vector<StepRecord> last_run_;
  std::set<std::string> race_keys_;  // cross-run race dedup
  Kernel* kernel_ = nullptr;         // the kernel of the run in progress
  bool invariant_failed_ = false;
  std::string invariant_message_;
};

}  // namespace mk::analysis::explore

#endif  // SRC_MK_ANALYSIS_EXPLORE_EXPLORER_H_
