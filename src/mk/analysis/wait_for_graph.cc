#include "src/mk/analysis/wait_for_graph.h"

#include <algorithm>
#include <functional>
#include <set>
#include <sstream>
#include <unordered_set>

#include "src/mk/analysis/introspect.h"

namespace mk::analysis {

namespace {

std::string ThreadLabel(const Thread* t) {
  std::ostringstream os;
  os << "thread '" << t->name() << "' (task '" << t->task()->name() << "')";
  return os.str();
}

std::string PortLabel(const Port* p) {
  std::ostringstream os;
  os << (p->is_port_set ? "port set " : "port ") << p->id();
  return os.str();
}

// Live threads of `task`, excluding `self`: the candidates that could act on
// the task's behalf (receive, reply, drain a queue).
std::vector<const Thread*> TaskThreads(const Task* task, const Thread* self) {
  std::vector<const Thread*> out;
  if (task == nullptr) {
    return out;
  }
  for (const Thread* t : task->threads()) {
    if (t != self && t->state() != Thread::State::kTerminated) {
      out.push_back(t);
    }
  }
  return out;
}

}  // namespace

const char* WaitKindName(WaitKind kind) {
  switch (kind) {
    case WaitKind::kNotBlocked:
      return "not-blocked";
    case WaitKind::kRpcAwaitingServer:
      return "rpc-awaiting-server";
    case WaitKind::kRpcAwaitingReply:
      return "rpc-awaiting-reply";
    case WaitKind::kRpcReceive:
      return "rpc-receive";
    case WaitKind::kIpcSendFull:
      return "ipc-send-full";
    case WaitKind::kIpcReceiveEmpty:
      return "ipc-receive-empty";
    case WaitKind::kJoin:
      return "join";
    case WaitKind::kSemaphore:
      return "semaphore";
    case WaitKind::kMemSync:
      return "memsync";
    case WaitKind::kSleepOrExternal:
      return "sleep-or-external";
  }
  return "unknown";
}

WaitForGraph WaitForGraph::Build(const Kernel& kernel) {
  WaitForGraph g;

  // Which tasks hold a right (of any kind — LookupSendable accepts them all)
  // to each port, i.e. who could initiate a send or RPC to it.
  std::unordered_map<const Port*, std::vector<const Task*>> holders;
  for (const auto& task : Introspector::tasks(kernel)) {
    task->port_space().ForEachRight([&](PortName, const PortRight& right) {
      if (right.port != nullptr) {
        auto& held = holders[right.port];
        if (held.empty() || held.back() != task.get()) {
          held.push_back(task.get());
        }
      }
    });
  }

  // Classify the wait queues so waiting_on resolves to a reason.
  enum class QueueRole { kIpcSend, kIpcReceive, kSemaphore, kMemSync, kJoin };
  struct QueueInfo {
    QueueRole role;
    const Port* port = nullptr;
    const Thread* joinee = nullptr;
    uint64_t id = 0;  // semaphore id / memsync word address
  };
  std::unordered_map<const WaitQueue*, QueueInfo> queue_info;
  for (const auto& p : Introspector::ports(kernel)) {
    queue_info[&p->blocked_senders] = {QueueRole::kIpcSend, p.get(), nullptr, 0};
    queue_info[&p->blocked_receivers] = {QueueRole::kIpcReceive, p.get(), nullptr, 0};
  }
  // unordered-ok: builds a keyed lookup table; order does not escape.
  for (const auto& [id, sem] : Introspector::semaphores(kernel)) {
    queue_info[&sem.waiters] = {QueueRole::kSemaphore, nullptr, nullptr, id};
  }
  // unordered-ok: builds a keyed lookup table; order does not escape.
  for (const auto& [addr, q] : Introspector::memsync_waiters(kernel)) {
    queue_info[&q] = {QueueRole::kMemSync, nullptr, nullptr, addr};
  }
  for (const auto& t : Introspector::threads(kernel)) {
    queue_info[&t->exit_waiters] = {QueueRole::kJoin, nullptr, t.get(), 0};
  }

  // RPC rendezvous membership and in-flight calls.
  std::unordered_map<const Thread*, const Port*> client_parked_on;
  std::unordered_map<const Thread*, const Port*> server_parked_on;
  for (const auto& p : Introspector::ports(kernel)) {
    for (const Thread* t : p->waiting_clients) {
      client_parked_on[t] = p.get();
    }
    for (const Thread* t : p->waiting_servers) {
      server_parked_on[t] = p.get();
    }
  }
  struct InFlight {
    uint64_t token;
    const Thread* server;
  };
  std::unordered_map<const Thread*, InFlight> awaiting_reply;
  // unordered-ok: builds a keyed lookup table; order does not escape.
  for (const auto& [token, rpc] : Introspector::rpc_waiters(kernel)) {
    awaiting_reply[rpc.client] = {token, rpc.server};
  }

  // The member ports a receive on `port` can take work from.
  auto sources_of = [](const Port* port) {
    std::vector<const Port*> sources;
    if (port->is_port_set) {
      sources.assign(port->set_members.begin(), port->set_members.end());
    } else {
      sources.push_back(port);
    }
    return sources;
  };
  auto holder_threads = [&](const std::vector<const Port*>& sources, const Thread* self) {
    std::vector<const Thread*> out;
    std::unordered_set<const Thread*> seen;
    for (const Port* s : sources) {
      auto it = holders.find(s);
      if (it == holders.end()) {
        continue;
      }
      for (const Task* task : it->second) {
        for (const Thread* t : TaskThreads(task, self)) {
          if (seen.insert(t).second) {
            out.push_back(t);
          }
        }
      }
    }
    return out;
  };
  auto external_sender = [&](const std::vector<const Port*>& sources) {
    // unordered-ok: existence check only; order does not escape.
    for (const auto& [id, timer] : Introspector::timers(kernel)) {
      if (!timer.cancelled &&
          std::find(sources.begin(), sources.end(), timer.port) != sources.end()) {
        return true;
      }
    }
    // unordered-ok: existence check only; order does not escape.
    for (const auto& [line, binding] : Introspector::interrupt_bindings(kernel)) {
      if (binding.reflect_port != nullptr &&
          std::find(sources.begin(), sources.end(), binding.reflect_port) != sources.end()) {
        return true;
      }
    }
    return false;
  };

  for (const auto& t : Introspector::threads(kernel)) {
    const Thread* thread = t.get();
    if (thread->state() != Thread::State::kBlocked) {
      continue;
    }
    WaitEdge e;
    e.thread = thread;
    std::ostringstream detail;

    if (auto rpc = awaiting_reply.find(thread); rpc != awaiting_reply.end()) {
      e.kind = WaitKind::kRpcAwaitingReply;
      e.port = thread->rpc.port;
      const Thread* server = rpc->second.server;
      // Any live thread of the server task may complete the call (deferred
      // replies go by token, not by thread).
      e.wakers = TaskThreads(server != nullptr ? server->task() : nullptr, thread);
      detail << "awaiting RPC reply";
      if (e.port != nullptr) {
        detail << " via " << PortLabel(e.port);
      }
      if (server != nullptr) {
        detail << " from task '" << server->task()->name() << "'";
      }
      detail << " (token " << rpc->second.token << ")";
    } else if (auto client = client_parked_on.find(thread); client != client_parked_on.end()) {
      e.kind = WaitKind::kRpcAwaitingServer;
      e.port = client->second;
      e.wakers = TaskThreads(e.port->receiver(), thread);
      detail << "in RpcCall on " << PortLabel(e.port) << " waiting for a server";
      if (e.port->receiver() != nullptr) {
        detail << " (receiver task '" << e.port->receiver()->name() << "')";
      }
    } else if (auto server = server_parked_on.find(thread); server != server_parked_on.end()) {
      e.kind = WaitKind::kRpcReceive;
      e.port = server->second;
      e.wakers = holder_threads(sources_of(e.port), thread);
      detail << "in RpcReceive on " << PortLabel(e.port) << " waiting for a caller";
    } else if (thread->waiting_on != nullptr) {
      const auto info = queue_info.find(thread->waiting_on);
      if (info == queue_info.end()) {
        // A queue the kernel did not register — treat conservatively as
        // externally wakeable so it never fabricates a deadlock.
        e.kind = WaitKind::kSleepOrExternal;
        e.external_wake = true;
        detail << "blocked on an unregistered wait queue";
      } else {
        switch (info->second.role) {
          case QueueRole::kIpcSend:
            e.kind = WaitKind::kIpcSendFull;
            e.port = info->second.port;
            e.wakers = TaskThreads(e.port->receiver(), thread);
            detail << "in MachMsgSend on " << PortLabel(e.port) << " (queue full, "
                   << e.port->queue.size() << "/" << e.port->queue_limit << ")";
            break;
          case QueueRole::kIpcReceive: {
            e.kind = WaitKind::kIpcReceiveEmpty;
            e.port = info->second.port;
            const auto sources = sources_of(e.port);
            e.wakers = holder_threads(sources, thread);
            e.external_wake = external_sender(sources);
            detail << "in MachMsgReceive on " << PortLabel(e.port) << " (queue empty)";
            break;
          }
          case QueueRole::kSemaphore:
            e.kind = WaitKind::kSemaphore;
            // Any live thread can signal a kernel semaphore.
            for (const auto& other : Introspector::threads(kernel)) {
              if (other.get() != thread && other->state() != Thread::State::kTerminated) {
                e.wakers.push_back(other.get());
              }
            }
            detail << "waiting on semaphore " << info->second.id;
            break;
          case QueueRole::kMemSync:
            e.kind = WaitKind::kMemSync;
            for (const auto& other : Introspector::threads(kernel)) {
              if (other.get() != thread && other->state() != Thread::State::kTerminated) {
                e.wakers.push_back(other.get());
              }
            }
            detail << "waiting on memory word @" << std::hex << info->second.id << std::dec;
            break;
          case QueueRole::kJoin:
            e.kind = WaitKind::kJoin;
            e.wakers.push_back(info->second.joinee);
            detail << "joining " << ThreadLabel(info->second.joinee);
            break;
        }
      }
    } else {
      // Blocked with no queue and no RPC record: a timed sleep (the machine
      // event that wakes it lives outside the thread graph).
      e.kind = WaitKind::kSleepOrExternal;
      e.external_wake = true;
      detail << "sleeping or awaiting an external wake";
    }

    e.detail = detail.str();
    g.index_[thread] = g.edges_.size();
    g.edges_.push_back(std::move(e));
  }
  return g;
}

const WaitEdge* WaitForGraph::EdgeFor(const Thread* t) const {
  const auto it = index_.find(t);
  return it == index_.end() ? nullptr : &edges_[it->second];
}

std::string WaitForGraph::DescribeBlocked(const Thread* t) const {
  const WaitEdge* e = EdgeFor(t);
  if (e == nullptr) {
    return ThreadLabel(t) + ": not blocked";
  }
  return ThreadLabel(t) + ": " + e->detail;
}

std::vector<const Thread*> WaitForGraph::DeadlockedThreads() const {
  // Fixpoint of "can make progress": a blocked thread progresses if an
  // external source can wake it or any of its wakers can progress. Runnable
  // threads seed the set; what never joins it is deadlocked.
  std::unordered_set<const Thread*> can_progress;
  for (const WaitEdge& e : edges_) {
    for (const Thread* w : e.wakers) {
      if (index_.find(w) == index_.end() && w->state() != Thread::State::kTerminated) {
        can_progress.insert(w);  // runnable (not blocked) waker
      }
    }
    if (e.external_wake) {
      can_progress.insert(e.thread);
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const WaitEdge& e : edges_) {
      if (can_progress.count(e.thread) != 0) {
        continue;
      }
      for (const Thread* w : e.wakers) {
        if (can_progress.count(w) != 0) {
          can_progress.insert(e.thread);
          changed = true;
          break;
        }
      }
    }
  }
  std::vector<const Thread*> deadlocked;
  for (const WaitEdge& e : edges_) {
    if (can_progress.count(e.thread) == 0) {
      deadlocked.push_back(e.thread);
    }
  }
  return deadlocked;
}

std::vector<std::vector<const Thread*>> WaitForGraph::FindCycles() const {
  const std::vector<const Thread*> deadlocked = DeadlockedThreads();
  const std::unordered_set<const Thread*> dead_set(deadlocked.begin(), deadlocked.end());

  // DFS over wait edges restricted to the deadlocked set; a path hitting a
  // thread already on the stack closes a cycle. Cycles are canonicalized
  // (rotated so the lowest-id thread leads) and de-duplicated.
  std::set<std::vector<const Thread*>> canonical;
  std::vector<const Thread*> path;
  std::unordered_set<const Thread*> on_path;

  auto waiters_of = [&](const Thread* t) {
    std::vector<const Thread*> next;
    const WaitEdge* e = EdgeFor(t);
    if (e != nullptr) {
      for (const Thread* w : e->wakers) {
        if (dead_set.count(w) != 0) {
          next.push_back(w);
        }
      }
    }
    return next;
  };

  std::function<void(const Thread*)> dfs = [&](const Thread* t) {
    path.push_back(t);
    on_path.insert(t);
    for (const Thread* next : waiters_of(t)) {
      if (on_path.count(next) != 0) {
        const auto start = std::find(path.begin(), path.end(), next);
        std::vector<const Thread*> cycle(start, path.end());
        auto lowest = std::min_element(cycle.begin(), cycle.end(),
                                       [](const Thread* a, const Thread* b) {
                                         return a->id() < b->id();
                                       });
        std::rotate(cycle.begin(), lowest, cycle.end());
        canonical.insert(std::move(cycle));
      } else {
        dfs(next);
      }
    }
    on_path.erase(t);
    path.pop_back();
  };
  for (const Thread* t : deadlocked) {
    dfs(t);
  }
  return {canonical.begin(), canonical.end()};
}

std::vector<std::string> WaitForGraph::FindCycleReports() const {
  std::vector<std::string> reports;
  for (const std::vector<const Thread*>& cycle : FindCycles()) {
    std::ostringstream os;
    for (size_t i = 0; i < cycle.size(); ++i) {
      const WaitEdge* e = EdgeFor(cycle[i]);
      os << ThreadLabel(cycle[i]) << " --[" << (e != nullptr ? e->detail : "?") << "]--> ";
    }
    os << ThreadLabel(cycle.front());
    reports.push_back(os.str());
  }
  return reports;
}

}  // namespace mk::analysis
