// Wait-for-graph deadlock detector.
//
// Build() classifies every blocked thread (why is it blocked, on which
// object) and records which threads could wake it — OR semantics: an edge's
// wakers is a set and any one of them making progress suffices, so a
// multi-threaded server task never looks deadlocked just because one of its
// threads is. DeadlockedThreads() is the fixpoint of "can make progress"
// (runnable threads and external wake sources — timers, reflected
// interrupts — seed the set); FindCycleReports() renders each wait cycle in
// the deadlocked set as a human-readable thread -> port -> task chain.
#ifndef SRC_MK_ANALYSIS_WAIT_FOR_GRAPH_H_
#define SRC_MK_ANALYSIS_WAIT_FOR_GRAPH_H_

#include <string>
#include <unordered_map>
#include <vector>

namespace mk {
class Kernel;
class Port;
class Thread;
}  // namespace mk

namespace mk::analysis {

enum class WaitKind {
  kNotBlocked,
  kRpcAwaitingServer,  // parked in Port::waiting_clients, no server available
  kRpcAwaitingReply,   // request delivered; awaiting RpcReply (rpc_waiters_)
  kRpcReceive,         // parked in Port::waiting_servers, no caller
  kIpcSendFull,        // legacy send blocked on a full queue
  kIpcReceiveEmpty,    // legacy receive blocked on an empty queue
  kJoin,               // waiting for a thread to terminate
  kSemaphore,
  kMemSync,
  kSleepOrExternal,  // timed sleep or an unrecognized external wait
};

const char* WaitKindName(WaitKind kind);

struct WaitEdge {
  const Thread* thread = nullptr;
  WaitKind kind = WaitKind::kNotBlocked;
  const Port* port = nullptr;  // the port involved, when there is one
  // Threads whose progress could unblock this one; any single waker making
  // progress suffices. Empty with external_wake false means nothing in the
  // system can ever wake the thread.
  std::vector<const Thread*> wakers;
  bool external_wake = false;  // a timer or reflected interrupt can wake it
  std::string detail;          // human-readable description of the wait
};

class WaitForGraph {
 public:
  static WaitForGraph Build(const Kernel& kernel);

  // Null for threads that are not blocked.
  const WaitEdge* EdgeFor(const Thread* t) const;
  // "thread 'x' (task 'a'): <why it is blocked>"
  std::string DescribeBlocked(const Thread* t) const;

  // Blocked threads no chain of wakes can ever reach.
  std::vector<const Thread*> DeadlockedThreads() const;
  // Distinct wait cycles within the deadlocked set.
  std::vector<std::vector<const Thread*>> FindCycles() const;
  // One rendered report per cycle, e.g.
  //   thread 'a' (task 'A') --[awaiting RPC reply via port 2]--> thread 'b'
  //   (task 'B') --[waiting for a server on port 1]--> thread 'a' (task 'A')
  std::vector<std::string> FindCycleReports() const;

 private:
  std::vector<WaitEdge> edges_;
  std::unordered_map<const Thread*, size_t> index_;
};

}  // namespace mk::analysis

#endif  // SRC_MK_ANALYSIS_WAIT_FOR_GRAPH_H_
