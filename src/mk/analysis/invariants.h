// Kernel object-graph invariant checker.
//
// Walks every task, thread, port, port space, wait queue and in-flight RPC
// and verifies the structural invariants the kernel relies on but never
// re-checks on its hot paths (those are WPOS_DCHECKs). Run from
// Kernel::CheckInvariants(): after every test via the fixture, on Halt, and
// optionally every N kernel entries (KernelConfig::invariant_check_interval).
#ifndef SRC_MK_ANALYSIS_INVARIANTS_H_
#define SRC_MK_ANALYSIS_INVARIANTS_H_

#include <string>
#include <vector>

namespace mk {
class Kernel;
}

namespace mk::analysis {

// Returns one human-readable description per violated invariant; empty means
// the object graph is consistent. Checked invariants:
//   - every port right names a port the kernel owns, with refs >= 1
//   - dead ports are fully detached: empty message queue, no blocked or
//     rendezvous waiters, no port-set membership in either direction
//   - port-set links are consistent both ways (member_of <-> set_members),
//     sets do not nest and never carry traffic themselves
//   - every port honours queue.size() <= queue_limit
//   - a kBlocked thread sits on exactly the wait queue named by waiting_on
//     (or none for RPC/sleep blocks); no other state appears on any queue,
//     and no thread appears on two queues at once
//   - rpc_waiters_ entries name a live blocked client whose token matches,
//     and a distinct server thread
//   - task <-> thread membership is consistent both ways
//   - kernel-wide and per-port message counters are monotone between checks
std::vector<std::string> CollectViolations(const Kernel& kernel);

}  // namespace mk::analysis

#endif  // SRC_MK_ANALYSIS_INVARIANTS_H_
