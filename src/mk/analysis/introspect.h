// Read-only access to the kernel's private object graph for the state
// analyzer (src/mk/analysis/). Kernel befriends exactly one class —
// Introspector — and the invariant checker and wait-for-graph builder go
// through it, so the surface the analyzer depends on is explicit and the
// kernel's own encapsulation stays intact everywhere else.
#ifndef SRC_MK_ANALYSIS_INTROSPECT_H_
#define SRC_MK_ANALYSIS_INTROSPECT_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/mk/kernel.h"

namespace mk::analysis {

class Introspector {
 public:
  static const std::vector<std::unique_ptr<Task>>& tasks(const Kernel& k) { return k.tasks_; }
  static const std::vector<std::unique_ptr<Thread>>& threads(const Kernel& k) {
    return k.threads_;
  }
  static const std::vector<std::unique_ptr<Port>>& ports(const Kernel& k) { return k.ports_; }

  using RpcInFlight = Kernel::RpcInFlight;
  static const std::unordered_map<uint64_t, RpcInFlight>& rpc_waiters(const Kernel& k) {
    return k.rpc_waiters_;
  }

  using Semaphore = Kernel::Semaphore;
  static const std::unordered_map<uint32_t, Semaphore>& semaphores(const Kernel& k) {
    return k.semaphores_;
  }
  static const std::unordered_map<uint64_t, WaitQueue>& memsync_waiters(const Kernel& k) {
    return k.memsync_waiters_;
  }

  using PeriodicTimer = Kernel::PeriodicTimer;
  static const std::unordered_map<uint32_t, PeriodicTimer>& timers(const Kernel& k) {
    return k.timers_;
  }
  using InterruptBinding = Kernel::InterruptBinding;
  static const std::unordered_map<uint32_t, InterruptBinding>& interrupt_bindings(
      const Kernel& k) {
    return k.interrupt_bindings_;
  }

  static uint64_t rpc_calls(const Kernel& k) { return k.rpc_calls_; }
  static uint64_t mach_msgs(const Kernel& k) { return k.mach_msgs_; }

  // Mutable counter snapshots for the monotonicity invariant (the checker is
  // const; the snapshots are mutable members of Kernel).
  static uint64_t& last_rpc_calls(const Kernel& k) { return k.last_rpc_calls_; }
  static uint64_t& last_mach_msgs(const Kernel& k) { return k.last_mach_msgs_; }
  static std::unordered_map<uint64_t, std::pair<uint64_t, uint64_t>>& last_port_counters(
      const Kernel& k) {
    return k.last_port_counters_;
  }
};

}  // namespace mk::analysis

#endif  // SRC_MK_ANALYSIS_INTROSPECT_H_
