#include "src/mk/analysis/invariants.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/mk/analysis/introspect.h"

namespace mk::analysis {

namespace {

// Hash-map iteration order is unspecified; checks that can emit violations
// iterate key-sorted so reports are deterministic run to run.
template <typename Map>
std::vector<typename Map::key_type> SortedKeys(const Map& map) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(map.size());
  for (const auto& entry : map) {  // unordered-ok: sorted below
    keys.push_back(entry.first);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::string ThreadLabel(const Thread* t) {
  std::ostringstream os;
  os << "thread '" << t->name() << "' (task '" << t->task()->name() << "')";
  return os.str();
}

std::string PortLabel(const Port* p) {
  std::ostringstream os;
  os << (p->is_port_set ? "port set " : "port ") << p->id();
  return os.str();
}

// Accumulates violations; each Check* appends to `out`.
class Checker {
 public:
  explicit Checker(const Kernel& kernel) : kernel_(kernel) {}

  std::vector<std::string> Run() {
    IndexObjects();
    CheckPortRights();
    CheckPorts();
    CheckTaskThreadMembership();
    CheckThreadWaitState();
    CheckRpcWaiters();
    CheckCounters();
    return std::move(out_);
  }

 private:
  template <typename... Parts>
  void Violation(const Parts&... parts) {
    std::ostringstream os;
    (os << ... << parts);
    out_.push_back(os.str());
  }

  void IndexObjects() {
    for (const auto& p : Introspector::ports(kernel_)) {
      known_ports_.insert(p.get());
    }
    for (const auto& t : Introspector::tasks(kernel_)) {
      known_tasks_.insert(t.get());
    }
    for (const auto& t : Introspector::threads(kernel_)) {
      known_threads_.insert(t.get());
    }
    // Census of every wait queue in the system, so thread-state checks can
    // ask "where does this thread appear?".
    auto add_queue = [this](const WaitQueue& q, const std::string& label) {
      std::unordered_set<const Thread*> seen;
      for (const Thread* t : q.waiters()) {
        if (!seen.insert(t).second) {
          Violation(ThreadLabel(t), " enqueued twice on ", label);
        }
        queue_of_[t].push_back({&q, label});
      }
    };
    for (const auto& p : Introspector::ports(kernel_)) {
      add_queue(p->blocked_senders, PortLabel(p.get()) + " blocked_senders");
      add_queue(p->blocked_receivers, PortLabel(p.get()) + " blocked_receivers");
    }
    const auto& sems = Introspector::semaphores(kernel_);
    for (uint32_t id : SortedKeys(sems)) {
      add_queue(sems.at(id).waiters, "semaphore " + std::to_string(id));
    }
    const auto& memsync = Introspector::memsync_waiters(kernel_);
    for (uint64_t addr : SortedKeys(memsync)) {
      add_queue(memsync.at(addr), "memsync@" + std::to_string(addr));
    }
    for (const auto& t : Introspector::threads(kernel_)) {
      add_queue(t->exit_waiters, "exit_waiters of '" + t->name() + "'");
    }
  }

  void CheckPortRights() {
    for (const auto& task : Introspector::tasks(kernel_)) {
      task->port_space().ForEachRight([&](PortName name, const PortRight& right) {
        if (right.port == nullptr) {
          Violation("task '", task->name(), "' right ", name, " names a null port");
          return;
        }
        if (known_ports_.count(right.port) == 0) {
          Violation("task '", task->name(), "' right ", name,
                    " names a port the kernel does not own");
        }
        if (right.refs == 0) {
          Violation("task '", task->name(), "' right ", name, " (", PortLabel(right.port),
                    ") has zero refs but is still in the space");
        }
      });
    }
  }

  void CheckPorts() {
    for (const auto& p : Introspector::ports(kernel_)) {
      const Port* port = p.get();
      if (port->queue.size() > port->queue_limit) {
        Violation(PortLabel(port), " queue ", port->queue.size(), " exceeds limit ",
                  port->queue_limit);
      }
      if (port->dead()) {
        if (!port->queue.empty()) {
          Violation(PortLabel(port), " is dead but holds ", port->queue.size(),
                    " queued message(s)");
        }
        if (!port->blocked_senders.empty() || !port->blocked_receivers.empty()) {
          Violation(PortLabel(port), " is dead but has blocked senders/receivers");
        }
        if (!port->waiting_servers.empty() || !port->waiting_clients.empty()) {
          Violation(PortLabel(port), " is dead but has RPC rendezvous waiters");
        }
        if (port->member_of != nullptr || !port->set_members.empty()) {
          Violation(PortLabel(port), " is dead but still linked to a port set");
        }
        if (port->receiver() != nullptr) {
          Violation(PortLabel(port), " is dead but still names a receiver task");
        }
      }
      if (port->receiver() != nullptr && known_tasks_.count(port->receiver()) == 0) {
        Violation(PortLabel(port), " receiver is not a task the kernel owns");
      }
      // Port-set shape: links consistent both ways, no nesting, no traffic
      // through the set object itself (messages and callers land on members).
      if (port->member_of != nullptr) {
        const Port* set = port->member_of;
        if (!set->is_port_set) {
          Violation(PortLabel(port), " member_of ", PortLabel(set), " which is not a port set");
        }
        bool linked = false;
        for (const Port* m : set->set_members) {
          linked |= m == port;
        }
        if (!linked) {
          Violation(PortLabel(port), " points at ", PortLabel(set),
                    " but is missing from its member list");
        }
      }
      if (port->is_port_set) {
        if (!port->queue.empty() || !port->waiting_clients.empty() ||
            !port->blocked_senders.empty()) {
          Violation(PortLabel(port), " carries traffic directly (queue/clients/senders)");
        }
        for (const Port* m : port->set_members) {
          if (m->is_port_set) {
            Violation(PortLabel(port), " contains nested ", PortLabel(m));
          }
          if (m->member_of != port) {
            Violation(PortLabel(port), " lists ", PortLabel(m),
                      " whose back-pointer names a different set");
          }
        }
      } else if (!port->set_members.empty()) {
        Violation(PortLabel(port), " is not a set but has set members");
      }
    }
  }

  void CheckTaskThreadMembership() {
    for (const auto& t : Introspector::threads(kernel_)) {
      if (t->task() == nullptr || known_tasks_.count(t->task()) == 0) {
        Violation("thread '", t->name(), "' has no valid owning task");
        continue;
      }
      bool listed = false;
      for (const Thread* member : t->task()->threads()) {
        listed |= member == t.get();
      }
      if (!listed) {
        Violation(ThreadLabel(t.get()), " missing from its task's thread list");
      }
    }
    for (const auto& task : Introspector::tasks(kernel_)) {
      for (const Thread* member : task->threads()) {
        if (known_threads_.count(member) == 0) {
          Violation("task '", task->name(), "' lists a thread the kernel does not own");
        } else if (member->task() != task.get()) {
          Violation(ThreadLabel(member), " listed by task '", task->name(),
                    "' but points at a different task");
        }
      }
    }
  }

  void CheckThreadWaitState() {
    // RPC rendezvous deques are not WaitQueues; census them separately.
    std::unordered_map<const Thread*, std::string> rendezvous;
    for (const auto& p : Introspector::ports(kernel_)) {
      for (const Thread* t : p->waiting_servers) {
        rendezvous.emplace(t, PortLabel(p.get()) + " waiting_servers");
      }
      for (const Thread* t : p->waiting_clients) {
        rendezvous.emplace(t, PortLabel(p.get()) + " waiting_clients");
      }
    }
    for (const auto& t : Introspector::threads(kernel_)) {
      const Thread* thread = t.get();
      const auto queues = queue_of_.find(thread);
      const size_t appearances = queues == queue_of_.end() ? 0 : queues->second.size();
      if (thread->state() == Thread::State::kBlocked) {
        if (thread->waiting_on != nullptr) {
          if (appearances != 1) {
            Violation(ThreadLabel(thread), " is blocked with waiting_on set but appears on ",
                      appearances, " wait queue(s)");
          } else if (queues->second.front().queue != thread->waiting_on) {
            Violation(ThreadLabel(thread), " waiting_on disagrees with the queue holding it (",
                      queues->second.front().label, ")");
          }
        } else if (appearances != 0) {
          Violation(ThreadLabel(thread), " is blocked with waiting_on unset but sits on ",
                    queues->second.front().label);
        }
      } else {
        if (thread->waiting_on != nullptr) {
          Violation(ThreadLabel(thread), " is not blocked but waiting_on is set");
        }
        if (appearances != 0) {
          Violation(ThreadLabel(thread), " is not blocked but sits on ",
                    queues->second.front().label);
        }
        const auto rv = rendezvous.find(thread);
        if (rv != rendezvous.end()) {
          Violation(ThreadLabel(thread), " is not blocked but parked in ", rv->second);
        }
      }
    }
  }

  void CheckRpcWaiters() {
    const auto& waiters = Introspector::rpc_waiters(kernel_);
    for (uint64_t token : SortedKeys(waiters)) {
      const auto& in_flight = waiters.at(token);
      if (in_flight.client == nullptr || in_flight.server == nullptr) {
        Violation("rpc token ", token, " has a null client or server");
        continue;
      }
      if (in_flight.client == in_flight.server) {
        Violation("rpc token ", token, " names the same thread as client and server");
      }
      if (known_threads_.count(in_flight.client) == 0 ||
          known_threads_.count(in_flight.server) == 0) {
        Violation("rpc token ", token, " names a thread the kernel does not own");
        continue;
      }
      if (in_flight.client->state() == Thread::State::kTerminated) {
        Violation("rpc token ", token, " client ", ThreadLabel(in_flight.client),
                  " already terminated");
      }
      if (in_flight.client->rpc.token != token) {
        Violation("rpc token ", token, " client ", ThreadLabel(in_flight.client),
                  " carries mismatched token ", in_flight.client->rpc.token);
      }
    }
  }

  void CheckCounters() {
    const uint64_t rpc = Introspector::rpc_calls(kernel_);
    const uint64_t ipc = Introspector::mach_msgs(kernel_);
    if (rpc < Introspector::last_rpc_calls(kernel_)) {
      Violation("kernel rpc_calls regressed: ", rpc, " < ",
                Introspector::last_rpc_calls(kernel_));
    }
    if (ipc < Introspector::last_mach_msgs(kernel_)) {
      Violation("kernel mach_msgs regressed: ", ipc, " < ",
                Introspector::last_mach_msgs(kernel_));
    }
    Introspector::last_rpc_calls(kernel_) = rpc;
    Introspector::last_mach_msgs(kernel_) = ipc;
    auto& snapshots = Introspector::last_port_counters(kernel_);
    for (const auto& p : Introspector::ports(kernel_)) {
      auto& snap = snapshots[p->id()];
      if (p->send_count < snap.first || p->rpc_count < snap.second) {
        Violation(PortLabel(p.get()), " message counters regressed (send ", p->send_count, "/",
                  snap.first, ", rpc ", p->rpc_count, "/", snap.second, ")");
      }
      snap = {p->send_count, p->rpc_count};
    }
  }

  struct QueueRef {
    const WaitQueue* queue;
    std::string label;
  };

  const Kernel& kernel_;
  std::vector<std::string> out_;
  std::unordered_set<const Port*> known_ports_;
  std::unordered_set<const Task*> known_tasks_;
  std::unordered_set<const Thread*> known_threads_;
  std::unordered_map<const Thread*, std::vector<QueueRef>> queue_of_;
};

}  // namespace

std::vector<std::string> CollectViolations(const Kernel& kernel) {
  return Checker(kernel).Run();
}

}  // namespace mk::analysis
