// VmMap: a task's address space — an ordered list of entries mapping virtual
// ranges to VM objects, as in Mach. Entry manipulation here is pure
// bookkeeping; the fault path and cost charging live in the kernel.
#ifndef SRC_MK_VM_MAP_H_
#define SRC_MK_VM_MAP_H_

#include <cstdint>
#include <map>
#include <memory>

#include "src/base/status.h"
#include "src/hw/types.h"
#include "src/mk/ids.h"
#include "src/mk/vm_object.h"

namespace mk {

struct VmMapEntry {
  hw::VirtAddr start = 0;
  uint64_t size = 0;
  std::shared_ptr<VmObject> object;
  uint64_t offset = 0;  // offset of `start` within the object
  Prot prot = Prot::kReadWrite;
  Prot max_prot = Prot::kAll;
  Inherit inherit = Inherit::kCopy;
  bool coerced = false;  // same-address shared region (the IBM extension)
  bool needs_copy = false;  // entry must shadow its object before first write

  hw::VirtAddr end() const { return start + size; }
  uint64_t PageIndexOf(hw::VirtAddr vaddr) const {
    return (offset + (vaddr - start)) >> hw::kPageShift;
  }
};

class VmMap {
 public:
  // User address space layout. The coerced range is reserved: ordinary
  // anywhere-allocations never land there, so every task can map coerced
  // regions at their fixed addresses.
  static constexpr hw::VirtAddr kUserMin = 0x0000'1000;
  static constexpr hw::VirtAddr kUserMax = 0x7000'0000;
  static constexpr hw::VirtAddr kCoercedMin = 0x7000'0000;
  static constexpr hw::VirtAddr kCoercedMax = 0x8000'0000;

  // Finds the entry containing `vaddr`, or null.
  VmMapEntry* Lookup(hw::VirtAddr vaddr);
  const VmMapEntry* Lookup(hw::VirtAddr vaddr) const;

  // Inserts a mapping of `object` at a caller-fixed address. Fails with
  // kNoSpace if the range overlaps an existing entry or exceeds the space.
  base::Status InsertAt(const VmMapEntry& entry);

  // Chooses an address in [kUserMin, kUserMax) for `size` bytes, inserts, and
  // returns the address.
  base::Result<hw::VirtAddr> InsertAnywhere(VmMapEntry entry);

  // Removes [start, start+size); only whole-entry deallocation is supported
  // (entries are split on demand by Protect but not by Deallocate).
  base::Status Remove(hw::VirtAddr start, uint64_t size);

  base::Status Protect(hw::VirtAddr start, uint64_t size, Prot prot);

  std::map<hw::VirtAddr, VmMapEntry>& entries() { return entries_; }
  const std::map<hw::VirtAddr, VmMapEntry>& entries() const { return entries_; }
  size_t entry_count() const { return entries_.size(); }

  // Total mapped bytes (virtual size, not resident).
  uint64_t mapped_bytes() const;

 private:
  bool RangeFree(hw::VirtAddr start, uint64_t size) const;
  std::map<hw::VirtAddr, VmMapEntry> entries_;  // keyed by start
};

}  // namespace mk

#endif  // SRC_MK_VM_MAP_H_
