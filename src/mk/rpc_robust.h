// Client-side RPC recovery: deadline, bounded retry, re-resolution.
//
// RpcCallRobust wraps Env::RpcCall with the recovery loop every client of a
// supervised server wants: a per-attempt simulated-time deadline (kTimedOut
// instead of hanging on a dropped reply), bounded retry with exponential
// backoff on transient failures (kBusy), and re-lookup of the destination
// through a caller-supplied resolver when the port is dead or the call timed
// out — which is how a client finds the respawned instance the restart
// manager registered under the same name. When the name cannot be resolved
// or the attempts are exhausted on a dead port, the call returns
// kUnavailable: the service is in degraded mode.
//
// Bulk data rides along unchanged: the RpcRef descriptor (including the
// out-of-line transfer the kernel picks for large payloads) is reset at the
// start of every attempt, so retries never observe a previous attempt's
// partial results.
#ifndef SRC_MK_RPC_ROBUST_H_
#define SRC_MK_RPC_ROBUST_H_

#include <cstdint>
#include <functional>

#include "src/base/status.h"
#include "src/mk/kernel.h"

namespace mk {

// Resolves the service port, e.g. via mks::NameClient::Resolve. Called on
// the first attempt when `*cached_port` is kNullPort and again after any
// failure that invalidates the cached right.
using PortResolver = std::function<base::Result<PortName>(Env&)>;

struct BreakerOptions {
  // Consecutive kBusy completions that trip the breaker open.
  uint32_t busy_threshold = 3;
  // How long the breaker stays open before admitting a half-open probe.
  // Repeated trips widen this: cooldown << trip_shift, shift capped below.
  uint64_t cooldown_ns = 2'000'000;
  uint32_t max_cooldown_shift = 6;
};

// Per-destination overload breaker for RpcCallRobust (attach one via
// RobustCallOptions::breaker; clients of the same service share it).
//
// State machine: kClosed counts consecutive kBusy completions and trips to
// kOpen at the threshold; while kOpen every attempt is refused (the robust
// call fast-fails with kUnavailable, no RPC issued) until the cooldown
// expires; the first admission after that is the half-open probe — if it
// completes kBusy the breaker re-opens with a doubled cooldown, anything
// else closes it and resets. The breaker only tracks overload (kBusy):
// dead-port and timeout failures are the restart/re-resolve machinery's
// job and leave it untouched.
//
// Single-threaded by construction, like everything on the simulated
// machine: green threads never preempt inside a host-side method.
class CircuitBreaker {
 public:
  enum class State : uint8_t { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(const BreakerOptions& opts = BreakerOptions()) : opts_(opts) {}

  // True if an attempt may be issued at simulated time `now_ns`. While open,
  // false until the cooldown passes; the admission that ends the open window
  // is the half-open probe, and further attempts are refused until its
  // outcome arrives.
  bool Admit(uint64_t now_ns) {
    switch (state_) {
      case State::kClosed:
        return true;
      case State::kOpen:
        if (now_ns < open_until_ns_) {
          return false;
        }
        state_ = State::kHalfOpen;
        return true;
      case State::kHalfOpen:
        return false;  // one probe at a time
    }
    return true;
  }

  // Feed the outcome of an admitted attempt.
  void OnBusy(uint64_t now_ns) {
    ++consecutive_busy_;
    if (state_ == State::kHalfOpen || consecutive_busy_ >= opts_.busy_threshold) {
      Trip(now_ns);
    }
  }
  void OnSuccess() {
    consecutive_busy_ = 0;
    trip_shift_ = 0;
    state_ = State::kClosed;
  }

  State state() const { return state_; }
  uint32_t consecutive_busy() const { return consecutive_busy_; }
  uint64_t trips() const { return trips_; }

 private:
  void Trip(uint64_t now_ns) {
    state_ = State::kOpen;
    open_until_ns_ = now_ns + (opts_.cooldown_ns << trip_shift_);
    if (trip_shift_ < opts_.max_cooldown_shift) {
      ++trip_shift_;
    }
    ++trips_;
  }

  BreakerOptions opts_;
  State state_ = State::kClosed;
  uint32_t consecutive_busy_ = 0;
  uint32_t trip_shift_ = 0;
  uint64_t open_until_ns_ = 0;
  uint64_t trips_ = 0;
};

struct RobustCallOptions {
  // Per-attempt deadline in simulated ns; kForever disables the deadline
  // (then a dropped reply blocks forever, as plain RpcCall would).
  uint64_t attempt_timeout_ns = 2'000'000'000;
  uint32_t max_attempts = 4;
  // Backoff before the 2nd, 3rd, ... attempt; doubles every retry. Gives a
  // restart manager's backoff window time to pass in simulated time.
  uint64_t retry_backoff_ns = 500'000;
  // Deterministic per-thread backoff jitter: each retry sleeps a uniform
  // draw from [backoff/2, backoff] out of a stream seeded by the calling
  // thread's id, so clients of a restarted server fan out instead of
  // re-resolving in lockstep (thundering herd). Same seed, same schedule.
  bool jitter = true;
  // Optional shared overload breaker. When attached, consecutive kBusy
  // completions widen the backoff (retry_backoff_ns << consecutive_busy)
  // and a tripped breaker fast-fails the whole call with kUnavailable
  // before any RPC is issued. nullptr = breaker disabled.
  CircuitBreaker* breaker = nullptr;
};

// Calls `port` (resolving it first if `*cached_port` is kNullPort) and
// retries per `opts`. On success `*cached_port` holds a usable send right
// for subsequent calls. Retryable failures: kPortDead / kInvalidName /
// kTimedOut (cached right invalidated, resolver consulted again) and kBusy
// (same right retried). Everything else — including application-level reply
// payloads — is returned as-is.
base::Status RpcCallRobust(Env& env, const PortResolver& resolve, PortName* cached_port,
                           const void* req, uint32_t req_len, void* reply, uint32_t reply_cap,
                           const RobustCallOptions& opts = RobustCallOptions(),
                           uint32_t* reply_len = nullptr, RpcRef* ref = nullptr,
                           PortName* granted = nullptr);

}  // namespace mk

#endif  // SRC_MK_RPC_ROBUST_H_
