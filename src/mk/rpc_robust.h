// Client-side RPC recovery: deadline, bounded retry, re-resolution.
//
// RpcCallRobust wraps Env::RpcCall with the recovery loop every client of a
// supervised server wants: a per-attempt simulated-time deadline (kTimedOut
// instead of hanging on a dropped reply), bounded retry with exponential
// backoff on transient failures (kBusy), and re-lookup of the destination
// through a caller-supplied resolver when the port is dead or the call timed
// out — which is how a client finds the respawned instance the restart
// manager registered under the same name. When the name cannot be resolved
// or the attempts are exhausted on a dead port, the call returns
// kUnavailable: the service is in degraded mode.
//
// Bulk data rides along unchanged: the RpcRef descriptor (including the
// out-of-line transfer the kernel picks for large payloads) is reset at the
// start of every attempt, so retries never observe a previous attempt's
// partial results.
#ifndef SRC_MK_RPC_ROBUST_H_
#define SRC_MK_RPC_ROBUST_H_

#include <cstdint>
#include <functional>

#include "src/base/status.h"
#include "src/mk/kernel.h"

namespace mk {

// Resolves the service port, e.g. via mks::NameClient::Resolve. Called on
// the first attempt when `*cached_port` is kNullPort and again after any
// failure that invalidates the cached right.
using PortResolver = std::function<base::Result<PortName>(Env&)>;

struct RobustCallOptions {
  // Per-attempt deadline in simulated ns; kForever disables the deadline
  // (then a dropped reply blocks forever, as plain RpcCall would).
  uint64_t attempt_timeout_ns = 2'000'000'000;
  uint32_t max_attempts = 4;
  // Backoff before the 2nd, 3rd, ... attempt; doubles every retry. Gives a
  // restart manager's backoff window time to pass in simulated time.
  uint64_t retry_backoff_ns = 500'000;
};

// Calls `port` (resolving it first if `*cached_port` is kNullPort) and
// retries per `opts`. On success `*cached_port` holds a usable send right
// for subsequent calls. Retryable failures: kPortDead / kInvalidName /
// kTimedOut (cached right invalidated, resolver consulted again) and kBusy
// (same right retried). Everything else — including application-level reply
// payloads — is returned as-is.
base::Status RpcCallRobust(Env& env, const PortResolver& resolve, PortName* cached_port,
                           const void* req, uint32_t req_len, void* reply, uint32_t reply_cap,
                           const RobustCallOptions& opts = RobustCallOptions(),
                           uint32_t* reply_len = nullptr, RpcRef* ref = nullptr,
                           PortName* granted = nullptr);

}  // namespace mk

#endif  // SRC_MK_RPC_ROBUST_H_
