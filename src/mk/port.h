// Ports and port spaces.
//
// A port is a kernel message/RPC endpoint. Rights to ports are capabilities:
// they live in a task's port space and are named by small task-local
// integers, exactly as in Mach 3.0. The same Port object backs both the
// legacy queued IPC (mach_msg) and the reworked synchronous RPC.
#ifndef SRC_MK_PORT_H_
#define SRC_MK_PORT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/hw/types.h"
#include "src/mk/ids.h"
#include "src/mk/message.h"
#include "src/mk/wait_queue.h"

namespace mk {

class Task;
class Thread;

class Port {
 public:
  Port(uint64_t id, hw::PhysAddr sim_addr) : id_(id), sim_addr_(sim_addr) {}

  uint64_t id() const { return id_; }
  hw::PhysAddr sim_addr() const { return sim_addr_; }

  Task* receiver() const { return receiver_; }
  void set_receiver(Task* task) { receiver_ = task; }
  bool dead() const { return dead_; }
  void MarkDead() {
    dead_ = true;
    receiver_ = nullptr;
  }

  // --- Legacy IPC queue -------------------------------------------------------
  static constexpr size_t kDefaultQueueLimit = 5;
  std::deque<std::unique_ptr<QueuedMessage>> queue;
  size_t queue_limit = kDefaultQueueLimit;
  WaitQueue blocked_senders;    // threads waiting for queue space
  WaitQueue blocked_receivers;  // threads waiting for a message

  // --- RPC rendezvous -----------------------------------------------------------
  std::deque<Thread*> waiting_servers;  // threads parked in RpcReceive
  std::deque<Thread*> waiting_clients;  // callers with no server available
  // Admission bound on waiting_clients: callers past the limit are shed with
  // kBusy instead of parking. 0 (the default) keeps the queue unbounded, so
  // existing workloads and the committed bench references are untouched.
  uint32_t rpc_queue_limit = 0;

  uint64_t send_count = 0;
  uint64_t rpc_count = 0;

  // --- Port sets ---------------------------------------------------------------
  // A port set is itself a Port object that cannot carry traffic; receive
  // operations on it service whichever member has work. Members hold a back
  // pointer so senders can wake a receiver parked on the set.
  bool is_port_set = false;
  std::vector<Port*> set_members;
  Port* member_of = nullptr;

 private:
  uint64_t id_;
  hw::PhysAddr sim_addr_;
  Task* receiver_ = nullptr;
  bool dead_ = false;
};

struct PortRight {
  Port* port = nullptr;
  RightType type = RightType::kSend;
  uint32_t refs = 1;
};

// Per-task capability table: name -> right.
class PortSpace {
 public:
  explicit PortSpace(hw::PhysAddr sim_addr) : sim_addr_(sim_addr) {}

  hw::PhysAddr sim_addr() const { return sim_addr_; }
  size_t size() const { return rights_.size(); }

  // Inserts a right, coalescing send rights to the same port under one name
  // (Mach semantics). Receive and send-once rights always get fresh names.
  PortName Insert(Port* port, RightType type);

  base::Result<PortRight*> Lookup(PortName name);
  // Lookup requiring the right to permit sending (send or send-once).
  base::Result<Port*> LookupSendable(PortName name);
  base::Result<Port*> LookupReceive(PortName name);

  // Drops one reference; removes the entry when it reaches zero.
  base::Status Release(PortName name);
  void RemoveAll();

  // The name by which this space holds a send right to `port`, or kNullPort.
  PortName SendNameOf(Port* port) const;

  // Iterates every right in the space (kernel state analyzer, diagnostics).
  void ForEachRight(const std::function<void(PortName, const PortRight&)>& fn) const;

 private:
  hw::PhysAddr sim_addr_;
  std::unordered_map<PortName, PortRight> rights_;
  std::unordered_map<Port*, PortName> send_names_;
  PortName next_name_ = 1;
};

}  // namespace mk

#endif  // SRC_MK_PORT_H_
