// FIFO wait queue of blocked threads. The scheduler owns the block/wake
// mechanics; this is just the bookkeeping container.
#ifndef SRC_MK_WAIT_QUEUE_H_
#define SRC_MK_WAIT_QUEUE_H_

#include <deque>

namespace mk {

class Thread;

class WaitQueue {
 public:
  bool empty() const { return waiters_.empty(); }
  size_t size() const { return waiters_.size(); }
  // Read-only view for the kernel state analyzer and diagnostics.
  const std::deque<Thread*>& waiters() const { return waiters_; }

  void Enqueue(Thread* t) { waiters_.push_back(t); }
  Thread* DequeueFront() {
    if (waiters_.empty()) {
      return nullptr;
    }
    Thread* t = waiters_.front();
    waiters_.pop_front();
    return t;
  }
  bool Remove(Thread* t) {
    for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
      if (*it == t) {
        waiters_.erase(it);
        return true;
      }
    }
    return false;
  }

 private:
  std::deque<Thread*> waiters_;
};

}  // namespace mk

#endif  // SRC_MK_WAIT_QUEUE_H_
