#include "src/mk/port.h"

#include <algorithm>
#include <vector>

#include "src/base/log.h"
#include "src/mk/message.h"

namespace mk {

PortName PortSpace::Insert(Port* port, RightType type) {
  if (type == RightType::kSend) {
    auto it = send_names_.find(port);
    if (it != send_names_.end()) {
      ++rights_[it->second].refs;
      return it->second;
    }
  }
  const PortName name = next_name_++;
  rights_.emplace(name, PortRight{.port = port, .type = type, .refs = 1});
  if (type == RightType::kSend) {
    send_names_.emplace(port, name);
  }
  return name;
}

base::Result<PortRight*> PortSpace::Lookup(PortName name) {
  auto it = rights_.find(name);
  if (it == rights_.end()) {
    return base::Status::kInvalidName;
  }
  return &it->second;
}

base::Result<Port*> PortSpace::LookupSendable(PortName name) {
  auto r = Lookup(name);
  if (!r.ok()) {
    return r.status();
  }
  PortRight* right = *r;
  // A receive right also allows sending to self (Mach permits this via the
  // implicit make-send on the name); it keeps server bootstrap simple.
  if (right->port->dead()) {
    return base::Status::kPortDead;
  }
  return right->port;
}

base::Result<Port*> PortSpace::LookupReceive(PortName name) {
  auto r = Lookup(name);
  if (!r.ok()) {
    return r.status();
  }
  PortRight* right = *r;
  if (right->type != RightType::kReceive) {
    return base::Status::kInvalidRight;
  }
  return right->port;
}

base::Status PortSpace::Release(PortName name) {
  auto it = rights_.find(name);
  if (it == rights_.end()) {
    return base::Status::kInvalidName;
  }
  if (--it->second.refs == 0) {
    if (it->second.type == RightType::kSend) {
      send_names_.erase(it->second.port);
    }
    rights_.erase(it);
  }
  return base::Status::kOk;
}

void PortSpace::RemoveAll() {
  rights_.clear();
  send_names_.clear();
}

PortName PortSpace::SendNameOf(Port* port) const {
  auto it = send_names_.find(port);
  return it == send_names_.end() ? kNullPort : it->second;
}

void PortSpace::ForEachRight(const std::function<void(PortName, const PortRight&)>& fn) const {
  // Visit in name order: callers build diagnostic structures whose layout
  // must not depend on hash-table iteration order.
  std::vector<PortName> names;
  names.reserve(rights_.size());
  for (const auto& [name, right] : rights_) {  // unordered-ok: sorted below
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  for (PortName name : names) {
    fn(name, rights_.at(name));
  }
}

}  // namespace mk
