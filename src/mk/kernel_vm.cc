// Virtual memory: allocation, mapping, the page-fault path (zero fill, COW
// shadow chains, external-pager fill), coerced memory, fork-style address
// space copy, and user-memory access with full cost modelling.
#include <cstring>
#include <vector>

#include "src/base/log.h"
#include "src/mk/kernel.h"
#include "src/mk/pager_protocol.h"
#include "src/mk/vm_object.h"

namespace mk {

namespace {
const hw::CodeRegion& FaultEntryRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.vm.fault_entry", Costs::kFaultEntry);
  return r;
}
const hw::CodeRegion& FaultResolveRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.vm.fault_resolve", Costs::kFaultResolve);
  return r;
}
const hw::CodeRegion& ZeroFillRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.vm.zero_fill", Costs::kFaultZeroFill);
  return r;
}
const hw::CodeRegion& CowCopyRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.vm.cow_copy", Costs::kFaultCowCopy);
  return r;
}
const hw::CodeRegion& PmapEnterRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.vm.pmap_enter", Costs::kPmapEnter);
  return r;
}
const hw::CodeRegion& AllocateRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.vm.allocate", Costs::kVmAllocate);
  return r;
}
const hw::CodeRegion& DeallocateRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.vm.deallocate", Costs::kVmDeallocate);
  return r;
}
const hw::CodeRegion& ProtectRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.vm.protect", Costs::kVmProtect);
  return r;
}
const hw::CodeRegion& MapObjectRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.vm.map_object", Costs::kVmMapObject);
  return r;
}
const hw::CodeRegion& UserAccessRegion() {
  // The inline access sequence around each user-memory touch.
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.vm.user_access", 24);
  return r;
}
}  // namespace

// --- Allocation / mapping -------------------------------------------------------

base::Result<hw::VirtAddr> Kernel::VmAllocate(Task& task, uint64_t size) {
  cpu().Execute(AllocateRegion());
  cpu().AccessData(task.sim_addr(), 32, /*write=*/true);
  size = hw::PageRound(size);
  VmMapEntry entry;
  entry.size = size;
  entry.object = std::make_shared<VmObject>(size);
  return task.vm_map().InsertAnywhere(entry);
}

base::Status Kernel::VmAllocateAt(Task& task, hw::VirtAddr addr, uint64_t size) {
  cpu().Execute(AllocateRegion());
  size = hw::PageRound(size);
  VmMapEntry entry;
  entry.start = addr;
  entry.size = size;
  entry.object = std::make_shared<VmObject>(size);
  return task.vm_map().InsertAt(entry);
}

base::Status Kernel::VmDeallocate(Task& task, hw::VirtAddr addr, uint64_t size) {
  cpu().Execute(DeallocateRegion());
  const base::Status st = task.vm_map().Remove(addr, hw::PageRound(size));
  if (st != base::Status::kOk) {
    return st;
  }
  task.pmap().RemoveRange(hw::PageIndex(addr), hw::PageRound(size) >> hw::kPageShift);
  cpu().FlushTlb();  // no selective invalidate on the modelled MMU
  return base::Status::kOk;
}

base::Status Kernel::VmProtect(Task& task, hw::VirtAddr addr, uint64_t size, Prot prot) {
  cpu().Execute(ProtectRegion());
  const base::Status st = task.vm_map().Protect(addr, hw::PageRound(size), prot);
  if (st != base::Status::kOk) {
    return st;
  }
  task.pmap().ProtectRange(hw::PageIndex(addr), hw::PageRound(size) >> hw::kPageShift, prot);
  cpu().FlushTlb();
  return base::Status::kOk;
}

base::Result<hw::VirtAddr> Kernel::VmMapObject(Task& task, std::shared_ptr<VmObject> object,
                                               uint64_t offset, uint64_t size, Prot prot,
                                               bool anywhere, hw::VirtAddr fixed,
                                               Inherit inherit) {
  cpu().Execute(MapObjectRegion());
  VmMapEntry entry;
  entry.size = hw::PageRound(size);
  entry.object = std::move(object);
  entry.offset = offset;
  entry.prot = prot;
  entry.inherit = inherit;
  if (anywhere) {
    return task.vm_map().InsertAnywhere(entry);
  }
  entry.start = fixed;
  const base::Status st = task.vm_map().InsertAt(entry);
  if (st != base::Status::kOk) {
    return st;
  }
  return fixed;
}

// --- Coerced memory (IBM extension) -------------------------------------------------

base::Result<hw::VirtAddr> Kernel::VmAllocateCoerced(Task& first, uint64_t size) {
  cpu().Execute(AllocateRegion());
  size = hw::PageRound(size);
  if (next_coerced_ + size > VmMap::kCoercedMax) {
    return base::Status::kNoSpace;
  }
  const hw::VirtAddr addr = next_coerced_;
  next_coerced_ += size;
  CoercedRegion region;
  region.addr = addr;
  region.size = size;
  region.object = std::make_shared<VmObject>(size);
  coerced_.push_back(region);

  VmMapEntry entry;
  entry.start = addr;
  entry.size = size;
  entry.object = region.object;
  entry.inherit = Inherit::kShare;
  entry.coerced = true;
  const base::Status st = first.vm_map().InsertAt(entry);
  if (st != base::Status::kOk) {
    return st;
  }
  return addr;
}

base::Status Kernel::VmMapCoerced(Task& task, hw::VirtAddr coerced_addr) {
  cpu().Execute(MapObjectRegion());
  for (const CoercedRegion& region : coerced_) {
    if (region.addr == coerced_addr) {
      VmMapEntry entry;
      entry.start = region.addr;
      entry.size = region.size;
      entry.object = region.object;
      entry.inherit = Inherit::kShare;
      entry.coerced = true;
      return task.vm_map().InsertAt(entry);
    }
  }
  return base::Status::kNotFound;
}

// --- Fork-style copy ------------------------------------------------------------------

Task* Kernel::TaskForkVm(Task& parent, const std::string& name) {
  Task* child = CreateTask(name);
  for (auto& [start, entry] : parent.vm_map().entries()) {
    switch (entry.inherit) {
      case Inherit::kNone:
        break;
      case Inherit::kShare: {
        VmMapEntry copy = entry;
        WPOS_CHECK(child->vm_map().InsertAt(copy) == base::Status::kOk);
        break;
      }
      case Inherit::kCopy: {
        // Symmetric COW: both sides shadow the old object.
        auto original = entry.object;
        auto parent_shadow = std::make_shared<VmObject>(original->size());
        parent_shadow->SetShadow(original);
        auto child_shadow = std::make_shared<VmObject>(original->size());
        child_shadow->SetShadow(original);
        entry.object = parent_shadow;
        VmMapEntry copy = entry;
        copy.object = child_shadow;
        WPOS_CHECK(child->vm_map().InsertAt(copy) == base::Status::kOk);
        // Downgrade the parent's live mappings so writes fault and copy.
        parent.pmap().ProtectRange(hw::PageIndex(entry.start), entry.size >> hw::kPageShift,
                                   Prot::kRead);
        break;
      }
    }
  }
  cpu().FlushTlb();
  return child;
}

// --- Legacy OOL snapshot -----------------------------------------------------------------

base::Result<std::shared_ptr<VmObject>> Kernel::SnapshotForOol(Task& task, hw::VirtAddr addr,
                                                               uint64_t size) {
  VmMapEntry* entry = task.vm_map().Lookup(addr);
  if (entry == nullptr || addr + size > entry->end()) {
    return base::Status::kInvalidAddress;
  }
  auto original = entry->object;
  auto sender_shadow = std::make_shared<VmObject>(original->size());
  sender_shadow->SetShadow(original);
  auto snapshot = std::make_shared<VmObject>(original->size());
  snapshot->SetShadow(original);
  entry->object = sender_shadow;
  task.pmap().ProtectRange(hw::PageIndex(entry->start), entry->size >> hw::kPageShift,
                           Prot::kRead);
  cpu().FlushTlb();
  return snapshot;
}

// --- Fault path ----------------------------------------------------------------------------

base::Status Kernel::PagerFill(Task& task, VmObject* object, uint64_t page_index,
                               hw::PhysAddr frame) {
  Port* pager = object->pager_port();
  if (pager == nullptr || pager->dead()) {
    return base::Status::kPortDead;
  }
  ++task.pageins;
  // The faulting thread RPCs to the pager and waits for the data, as in the
  // external-memory-object protocol.
  PagerRequest req;
  req.op = PagerOp::kDataRequest;
  req.object_id = object->pager_object_id();
  req.page_index = page_index + (object->pager_offset() >> hw::kPageShift);
  PagerReply reply{};
  std::vector<uint8_t> page(hw::kPageSize);
  RpcRef ref;
  ref.recv_buf = page.data();
  ref.recv_cap = static_cast<uint32_t>(page.size());
  uint32_t reply_len = 0;
  const base::Status st = RpcCallOnPort(pager, &req, sizeof(req), &reply, sizeof(reply),
                                        &reply_len, &ref, nullptr, 0, nullptr, kForever);
  if (st != base::Status::kOk) {
    return st;
  }
  if (reply.status != 0) {
    return static_cast<base::Status>(reply.status);
  }
  machine_->mem().Write(frame, page.data(), hw::kPageSize);
  ChargeCopy(heap_->base(), frame, hw::kPageSize);
  return base::Status::kOk;
}

base::Status Kernel::FaultIn(Task& task, VmMapEntry* entry, hw::VirtAddr vaddr, bool write,
                             hw::PhysAddr* out_pa) {
  trace::ScopedSpan span(*tracer_, trace::SpanKind::kVmFault, trace::EventType::kVmFault,
                         trace::EventType::kVmFaultDone, vaddr);
  span.set_end_payload(write ? 1 : 0);
  ++tracer_->metrics().Counter("mk.vm.faults");
  cpu().Execute(FaultEntryRegion());
  cpu().Execute(FaultResolveRegion());
  cpu().AccessData(task.sim_addr(), 64, /*write=*/false);
  ++task.faults_taken;

  if (write && !ProtIncludes(entry->prot, Prot::kWrite)) {
    return base::Status::kProtectionFailure;
  }
  VmObject* object = entry->object.get();
  const uint64_t index = entry->PageIndexOf(vaddr);

  const VmObject* owner = nullptr;
  auto resident = object->LookupThroughShadow(index, &owner);
  hw::PhysAddr frame = 0;
  Prot map_prot = entry->prot;

  if (resident.ok()) {
    if (owner == object || !write) {
      frame = *resident;
      if (owner != object) {
        // Page belongs to a shadow parent; keep it read-only so a later
        // write faults and copies.
        map_prot = Prot::kRead;
      }
    } else {
      // COW: copy the parent's page into this object.
      cpu().Execute(CowCopyRegion());
      auto new_frame = machine_->mem().AllocFrame();
      if (!new_frame.ok()) {
        return base::Status::kResourceShortage;
      }
      std::vector<uint8_t> buf(hw::kPageSize);
      machine_->mem().Read(*resident, buf.data(), buf.size());
      machine_->mem().Write(*new_frame, buf.data(), buf.size());
      ChargeCopy(*resident, *new_frame, hw::kPageSize);
      object->InstallPage(index, *new_frame);
      ++task.cow_copies;
      frame = *new_frame;
    }
  } else {
    // Not resident anywhere in the chain: ask the base object.
    VmObject* base_obj = object;
    while (base_obj->shadow_parent() != nullptr) {
      base_obj = base_obj->shadow_parent().get();
    }
    switch (base_obj->backing()) {
      case VmObject::Backing::kDevice:
        frame = base_obj->device_base() + (index << hw::kPageShift);
        break;
      case VmObject::Backing::kPager: {
        auto new_frame = machine_->mem().AllocFrame();
        if (!new_frame.ok()) {
          return base::Status::kResourceShortage;
        }
        const base::Status st = PagerFill(task, base_obj, index, *new_frame);
        if (st != base::Status::kOk) {
          machine_->mem().FreeFrame(*new_frame);
          return st;
        }
        base_obj->InstallPage(index, *new_frame);
        frame = *new_frame;
        if (base_obj != object) {
          map_prot = Prot::kRead;  // COW away from the pager-backed base
        }
        break;
      }
      case VmObject::Backing::kAnonymous: {
        cpu().Execute(ZeroFillRegion());
        auto new_frame = machine_->mem().AllocFrame();
        if (!new_frame.ok()) {
          return base::Status::kResourceShortage;
        }
        machine_->mem().Fill(*new_frame, 0, hw::kPageSize);
        ChargeCopy(*new_frame, *new_frame, hw::kPageSize / 2);  // zeroing traffic
        // Private zero-fill pages land in the faulting object itself so COW
        // chains stay consistent.
        object->InstallPage(index, *new_frame);
        ++task.zero_fills;
        frame = *new_frame;
        break;
      }
    }
  }

  cpu().Execute(PmapEnterRegion());
  const uint64_t vpn = hw::PageIndex(vaddr);
  cpu().AccessData(task.pmap().PteAddr(vpn), 4, /*write=*/true);
  task.pmap().Enter(vpn, frame, map_prot);
  *out_pa = frame + (vaddr & hw::kPageMask);
  return base::Status::kOk;
}

base::Result<hw::PhysAddr> Kernel::ResolveForAccess(Task& task, hw::VirtAddr vaddr, bool write) {
  const uint64_t vpn = hw::PageIndex(vaddr);
  const Pmap::Mapping* m = task.pmap().Lookup(vpn);
  if (m != nullptr && (!write || ProtIncludes(m->prot, Prot::kWrite))) {
    return m->frame + (vaddr & hw::kPageMask);
  }
  VmMapEntry* entry = task.vm_map().Lookup(vaddr);
  if (entry == nullptr) {
    return base::Status::kInvalidAddress;
  }
  hw::PhysAddr pa = 0;
  const base::Status st = FaultIn(task, entry, vaddr, write, &pa);
  if (st != base::Status::kOk) {
    return st;
  }
  return pa;
}

// --- User memory access -----------------------------------------------------------------------

void Kernel::AccessUser(Task& task, hw::VirtAddr vaddr, hw::PhysAddr pa, uint32_t size,
                        bool write) {
  cpu().AccessTranslated(vaddr, pa, task.pmap().PteAddr(hw::PageIndex(vaddr)), size, write);
}

namespace {
// Iterates [addr, addr+len) in chunks that never cross a page boundary.
template <typename Fn>
base::Status ForEachPageChunk(hw::VirtAddr addr, uint64_t len, Fn&& fn) {
  uint64_t done = 0;
  while (done < len) {
    const hw::VirtAddr va = addr + done;
    const uint64_t in_page = hw::kPageSize - (va & hw::kPageMask);
    const uint64_t chunk = len - done < in_page ? len - done : in_page;
    const base::Status st = fn(va, done, chunk);
    if (st != base::Status::kOk) {
      return st;
    }
    done += chunk;
  }
  return base::Status::kOk;
}
}  // namespace

base::Status Kernel::CopyOut(Task& task, hw::VirtAddr dst, const void* src, uint64_t len) {
  const uint8_t* bytes = static_cast<const uint8_t*>(src);
  return ForEachPageChunk(dst, len, [&](hw::VirtAddr va, uint64_t off, uint64_t chunk) {
    auto pa = ResolveForAccess(task, va, /*write=*/true);
    if (!pa.ok()) {
      return pa.status();
    }
    machine_->mem().Write(*pa, bytes + off, chunk);
    cpu().ExecuteInstructions(UserAccessRegion(),
                              Costs::kCopyLoopOverhead / 2 + chunk / Costs::kCopyBytesPerInstr);
    const uint32_t line = cpu().config().dcache.line_bytes;
    for (uint64_t o = 0; o < chunk; o += line) {
      const uint32_t n = static_cast<uint32_t>(chunk - o < line ? chunk - o : line);
      AccessUser(task, va + o, *pa + o, n, /*write=*/true);
    }
    return base::Status::kOk;
  });
}

base::Status Kernel::CopyIn(Task& task, hw::VirtAddr src, void* dst, uint64_t len) {
  uint8_t* bytes = static_cast<uint8_t*>(dst);
  return ForEachPageChunk(src, len, [&](hw::VirtAddr va, uint64_t off, uint64_t chunk) {
    auto pa = ResolveForAccess(task, va, /*write=*/false);
    if (!pa.ok()) {
      return pa.status();
    }
    machine_->mem().Read(*pa, bytes + off, chunk);
    cpu().ExecuteInstructions(UserAccessRegion(),
                              Costs::kCopyLoopOverhead / 2 + chunk / Costs::kCopyBytesPerInstr);
    const uint32_t line = cpu().config().dcache.line_bytes;
    for (uint64_t o = 0; o < chunk; o += line) {
      const uint32_t n = static_cast<uint32_t>(chunk - o < line ? chunk - o : line);
      AccessUser(task, va + o, *pa + o, n, /*write=*/false);
    }
    return base::Status::kOk;
  });
}

base::Status Kernel::UserFill(Task& task, hw::VirtAddr dst, uint8_t byte, uint64_t len) {
  return ForEachPageChunk(dst, len, [&](hw::VirtAddr va, uint64_t off, uint64_t chunk) {
    auto pa = ResolveForAccess(task, va, /*write=*/true);
    if (!pa.ok()) {
      return pa.status();
    }
    machine_->mem().Fill(*pa, byte, chunk);
    cpu().ExecuteInstructions(UserAccessRegion(), chunk / Costs::kCopyBytesPerInstr);
    const uint32_t line = cpu().config().dcache.line_bytes;
    for (uint64_t o = 0; o < chunk; o += line) {
      const uint32_t n = static_cast<uint32_t>(chunk - o < line ? chunk - o : line);
      AccessUser(task, va + o, *pa + o, n, /*write=*/true);
    }
    return base::Status::kOk;
  });
}

base::Status Kernel::UserTouch(Task& task, hw::VirtAddr addr, uint64_t len, bool write) {
  return ForEachPageChunk(addr, len, [&](hw::VirtAddr va, uint64_t off, uint64_t chunk) {
    auto pa = ResolveForAccess(task, va, write);
    if (!pa.ok()) {
      return pa.status();
    }
    cpu().ExecuteInstructions(UserAccessRegion(), chunk / Costs::kCopyBytesPerInstr);
    const uint32_t line = cpu().config().dcache.line_bytes;
    for (uint64_t o = 0; o < chunk; o += line) {
      const uint32_t n = static_cast<uint32_t>(chunk - o < line ? chunk - o : line);
      AccessUser(task, va + o, *pa + o, n, write);
    }
    return base::Status::kOk;
  });
}

base::Status Kernel::CopyUserToUser(Task& src_task, hw::VirtAddr src, Task& dst_task,
                                    hw::VirtAddr dst, uint64_t len) {
  std::vector<uint8_t> bounce(4096);
  uint64_t done = 0;
  while (done < len) {
    const uint64_t chunk = len - done < bounce.size() ? len - done : bounce.size();
    base::Status st = CopyIn(src_task, src + done, bounce.data(), chunk);
    if (st != base::Status::kOk) {
      return st;
    }
    st = CopyOut(dst_task, dst + done, bounce.data(), chunk);
    if (st != base::Status::kOk) {
      return st;
    }
    done += chunk;
  }
  return base::Status::kOk;
}

// --- External memory objects --------------------------------------------------------------------

uint64_t Kernel::RegisterPagedObject(std::shared_ptr<VmObject> object, Port* pager_port,
                                     uint64_t pager_offset) {
  const uint64_t id = next_object_id_++;
  object->SetPager(pager_port, pager_offset, id);
  paged_objects_.emplace(id, std::move(object));
  return id;
}

std::shared_ptr<VmObject> Kernel::LookupPagedObject(uint64_t object_id) {
  auto it = paged_objects_.find(object_id);
  return it == paged_objects_.end() ? nullptr : it->second;
}

}  // namespace mk
