// Virtual memory: allocation, mapping, the page-fault path (zero fill, COW
// shadow chains, external-pager fill), coerced memory, fork-style address
// space copy, and user-memory access with full cost modelling.
#include <cstring>
#include <vector>

#include "src/base/log.h"
#include "src/mk/kernel.h"
#include "src/mk/pager_protocol.h"
#include "src/mk/vm_object.h"

namespace mk {

namespace {
// Concurrency-monitor channel namespace for page-install release/acquire
// edges (FaultIn / ResolveForAccess). High bit keeps frame page numbers
// clear of port ids and memsync word addresses used as channel ids.
constexpr uint64_t kPageInstallChannel = 1ull << 60;

const hw::CodeRegion& FaultEntryRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.vm.fault_entry", Costs::kFaultEntry);
  return r;
}
const hw::CodeRegion& FaultResolveRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.vm.fault_resolve", Costs::kFaultResolve);
  return r;
}
const hw::CodeRegion& ZeroFillRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.vm.zero_fill", Costs::kFaultZeroFill);
  return r;
}
const hw::CodeRegion& CowCopyRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.vm.cow_copy", Costs::kFaultCowCopy);
  return r;
}
const hw::CodeRegion& PmapEnterRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.vm.pmap_enter", Costs::kPmapEnter);
  return r;
}
const hw::CodeRegion& AllocateRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.vm.allocate", Costs::kVmAllocate);
  return r;
}
const hw::CodeRegion& DeallocateRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.vm.deallocate", Costs::kVmDeallocate);
  return r;
}
const hw::CodeRegion& ProtectRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.vm.protect", Costs::kVmProtect);
  return r;
}
const hw::CodeRegion& MapObjectRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.vm.map_object", Costs::kVmMapObject);
  return r;
}
const hw::CodeRegion& UserAccessRegion() {
  // The inline access sequence around each user-memory touch.
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.vm.user_access", 24);
  return r;
}
const hw::CodeRegion& PagerWritebackRegion() {
  static const hw::CodeRegion r =
      hw::DefineKernelCode("mk.vm.pager_writeback", Costs::kPagerWritebackPage);
  return r;
}
const hw::CodeRegion& ObjectInvalidateRegion() {
  static const hw::CodeRegion r =
      hw::DefineKernelCode("mk.vm.object_invalidate", Costs::kVmObjectInvalidatePage);
  return r;
}
}  // namespace

// --- Allocation / mapping -------------------------------------------------------

base::Result<hw::VirtAddr> Kernel::VmAllocate(Task& task, uint64_t size) {
  cpu().Execute(AllocateRegion());
  cpu().AccessData(task.sim_addr(), 32, /*write=*/true);
  size = hw::PageRound(size);
  VmMapEntry entry;
  entry.size = size;
  entry.object = std::make_shared<VmObject>(size);
  return task.vm_map().InsertAnywhere(entry);
}

base::Status Kernel::VmAllocateAt(Task& task, hw::VirtAddr addr, uint64_t size) {
  cpu().Execute(AllocateRegion());
  size = hw::PageRound(size);
  VmMapEntry entry;
  entry.start = addr;
  entry.size = size;
  entry.object = std::make_shared<VmObject>(size);
  return task.vm_map().InsertAt(entry);
}

base::Status Kernel::VmDeallocate(Task& task, hw::VirtAddr addr, uint64_t size) {
  cpu().Execute(DeallocateRegion());
  const base::Status st = task.vm_map().Remove(addr, hw::PageRound(size));
  if (st != base::Status::kOk) {
    return st;
  }
  task.pmap().RemoveRange(hw::PageIndex(addr), hw::PageRound(size) >> hw::kPageShift);
  cpu().FlushTlb();  // no selective invalidate on the modelled MMU
  return base::Status::kOk;
}

base::Status Kernel::VmProtect(Task& task, hw::VirtAddr addr, uint64_t size, Prot prot) {
  cpu().Execute(ProtectRegion());
  const base::Status st = task.vm_map().Protect(addr, hw::PageRound(size), prot);
  if (st != base::Status::kOk) {
    return st;
  }
  task.pmap().ProtectRange(hw::PageIndex(addr), hw::PageRound(size) >> hw::kPageShift, prot);
  cpu().FlushTlb();
  return base::Status::kOk;
}

base::Result<hw::VirtAddr> Kernel::VmMapObject(Task& task, std::shared_ptr<VmObject> object,
                                               uint64_t offset, uint64_t size, Prot prot,
                                               bool anywhere, hw::VirtAddr fixed,
                                               Inherit inherit) {
  cpu().Execute(MapObjectRegion());
  VmMapEntry entry;
  entry.size = hw::PageRound(size);
  entry.object = std::move(object);
  entry.offset = offset;
  entry.prot = prot;
  entry.inherit = inherit;
  // Managed file-backed object going live for the first time: tell its pager
  // (the memory_object_init handshake). The chain base matters — a private
  // mapping maps an anonymous shadow over the managed object.
  VmObject* base_obj = entry.object.get();
  while (base_obj->shadow_parent() != nullptr) {
    base_obj = base_obj->shadow_parent().get();
  }
  if (base_obj->backing() == VmObject::Backing::kPager && base_obj->dirty_tracking() &&
      !base_obj->pager_initialized() && scheduler_.current() != nullptr &&
      base_obj->pager_port() != nullptr && !base_obj->pager_port()->dead()) {
    PagerRequest req;
    req.op = PagerOp::kObjectSetup;
    req.object_id = base_obj->pager_object_id();
    req.page_index = base_obj->size() >> hw::kPageShift;
    PagerReply reply{};
    uint32_t reply_len = 0;
    // Best effort: a pager that ignores setup still serves data requests.
    (void)RpcCallOnPort(base_obj->pager_port(), &req, sizeof(req), &reply, sizeof(reply),
                        &reply_len, nullptr, nullptr, 0, nullptr, kForever);
    base_obj->set_pager_initialized(true);
  }
  if (anywhere) {
    return task.vm_map().InsertAnywhere(entry);
  }
  entry.start = fixed;
  const base::Status st = task.vm_map().InsertAt(entry);
  if (st != base::Status::kOk) {
    return st;
  }
  return fixed;
}

// --- Coerced memory (IBM extension) -------------------------------------------------

base::Result<hw::VirtAddr> Kernel::VmAllocateCoerced(Task& first, uint64_t size) {
  cpu().Execute(AllocateRegion());
  size = hw::PageRound(size);
  if (next_coerced_ + size > VmMap::kCoercedMax) {
    return base::Status::kNoSpace;
  }
  const hw::VirtAddr addr = next_coerced_;
  next_coerced_ += size;
  CoercedRegion region;
  region.addr = addr;
  region.size = size;
  region.object = std::make_shared<VmObject>(size);
  coerced_.push_back(region);

  VmMapEntry entry;
  entry.start = addr;
  entry.size = size;
  entry.object = region.object;
  entry.inherit = Inherit::kShare;
  entry.coerced = true;
  const base::Status st = first.vm_map().InsertAt(entry);
  if (st != base::Status::kOk) {
    return st;
  }
  return addr;
}

base::Status Kernel::VmMapCoerced(Task& task, hw::VirtAddr coerced_addr) {
  cpu().Execute(MapObjectRegion());
  for (const CoercedRegion& region : coerced_) {
    if (region.addr == coerced_addr) {
      VmMapEntry entry;
      entry.start = region.addr;
      entry.size = region.size;
      entry.object = region.object;
      entry.inherit = Inherit::kShare;
      entry.coerced = true;
      return task.vm_map().InsertAt(entry);
    }
  }
  return base::Status::kNotFound;
}

// --- Fork-style copy ------------------------------------------------------------------

Task* Kernel::TaskForkVm(Task& parent, const std::string& name) {
  Task* child = CreateTask(name);
  for (auto& [start, entry] : parent.vm_map().entries()) {
    switch (entry.inherit) {
      case Inherit::kNone:
        break;
      case Inherit::kShare: {
        VmMapEntry copy = entry;
        WPOS_CHECK(child->vm_map().InsertAt(copy) == base::Status::kOk);
        break;
      }
      case Inherit::kCopy: {
        // Symmetric COW: both sides shadow the old object.
        auto original = entry.object;
        auto parent_shadow = std::make_shared<VmObject>(original->size());
        parent_shadow->SetShadow(original);
        auto child_shadow = std::make_shared<VmObject>(original->size());
        child_shadow->SetShadow(original);
        entry.object = parent_shadow;
        VmMapEntry copy = entry;
        copy.object = child_shadow;
        WPOS_CHECK(child->vm_map().InsertAt(copy) == base::Status::kOk);
        // Downgrade the parent's live mappings so writes fault and copy.
        parent.pmap().ProtectRange(hw::PageIndex(entry.start), entry.size >> hw::kPageShift,
                                   Prot::kRead);
        break;
      }
    }
  }
  cpu().FlushTlb();
  return child;
}

// --- Legacy OOL snapshot -----------------------------------------------------------------

base::Result<std::shared_ptr<VmObject>> Kernel::SnapshotForOol(Task& task, hw::VirtAddr addr,
                                                               uint64_t size) {
  VmMapEntry* entry = task.vm_map().Lookup(addr);
  if (entry == nullptr || addr + size > entry->end()) {
    return base::Status::kInvalidAddress;
  }
  auto original = entry->object;
  auto sender_shadow = std::make_shared<VmObject>(original->size());
  sender_shadow->SetShadow(original);
  auto snapshot = std::make_shared<VmObject>(original->size());
  snapshot->SetShadow(original);
  entry->object = sender_shadow;
  task.pmap().ProtectRange(hw::PageIndex(entry->start), entry->size >> hw::kPageShift,
                           Prot::kRead);
  cpu().FlushTlb();
  return snapshot;
}

// --- Fault path ----------------------------------------------------------------------------

base::Status Kernel::PagerFill(Task& task, VmObject* object, uint64_t page_index,
                               hw::PhysAddr frame) {
  Port* pager = object->pager_port();
  if (pager == nullptr || pager->dead()) {
    return base::Status::kPortDead;
  }
  ++task.pageins;
  // Managed (dirty-tracked) objects ask for a run of sequential pages per
  // RPC; the pager replies with as many as it can supply from `page_index`
  // on, and the extras are installed so the following faults resolve
  // resident. Unmanaged objects keep the original one-page protocol.
  uint32_t want = 1;
  if (object->dirty_tracking()) {
    const uint64_t object_pages = hw::PageRound(object->size()) >> hw::kPageShift;
    const uint64_t to_end = object_pages > page_index ? object_pages - page_index : 1;
    want = static_cast<uint32_t>(
        to_end < Costs::kMmapReadaheadPages ? to_end : Costs::kMmapReadaheadPages);
  }
  // The faulting thread RPCs to the pager and waits for the data, as in the
  // external-memory-object protocol.
  PagerRequest req;
  req.op = PagerOp::kDataRequest;
  req.object_id = object->pager_object_id();
  req.page_index = page_index + (object->pager_offset() >> hw::kPageShift);
  PagerReply reply{};
  std::vector<uint8_t> page(static_cast<size_t>(want) * hw::kPageSize);
  RpcRef ref;
  ref.recv_buf = page.data();
  ref.recv_cap = static_cast<uint32_t>(page.size());
  uint32_t reply_len = 0;
  const base::Status st = RpcCallOnPort(pager, &req, sizeof(req), &reply, sizeof(reply),
                                        &reply_len, &ref, nullptr, 0, nullptr, kForever);
  if (st != base::Status::kOk) {
    return st;
  }
  if (reply.status != 0) {
    return static_cast<base::Status>(reply.status);
  }
  machine_->mem().Write(frame, page.data(), hw::kPageSize);
  ChargeCopy(heap_->base(), frame, hw::kPageSize);
  const uint32_t got = ref.recv_len / hw::kPageSize;
  for (uint32_t i = 1; i < got && i < want; ++i) {
    const uint64_t index = page_index + i;
    if (object->HasPage(index)) {
      continue;  // never clobber a page that faulted in (or dirtied) meanwhile
    }
    auto extra = machine_->mem().AllocFrame();
    if (!extra.ok()) {
      break;  // readahead is opportunistic; the demand page already succeeded
    }
    machine_->mem().Write(*extra, page.data() + static_cast<size_t>(i) * hw::kPageSize,
                          hw::kPageSize);
    ChargeCopy(heap_->base(), *extra, hw::kPageSize);
    object->InstallPage(index, *extra);
  }
  return base::Status::kOk;
}

base::Status Kernel::FaultIn(Task& task, VmMapEntry* entry, hw::VirtAddr vaddr, bool write,
                             hw::PhysAddr* out_pa) {
  // A page fault executes in kernel mode: bracket it for the concurrency
  // monitor so the fault-resolution traffic (zero-fill, COW page copy,
  // pager fill) holds the implicit kernel lock instead of racing as user
  // accesses. Observer-only — no simulated cycles — so the cost model and
  // the committed benchmark tables are untouched.
  struct FaultBracket {
    Kernel* kernel;
    Thread* thread;
    FaultBracket(Kernel* k) : kernel(k), thread(k->scheduler_.current()) {
      if (kernel->sync_observer_ != nullptr && thread != nullptr) {
        kernel->sync_observer_->OnKernelEnter(thread);
      }
    }
    ~FaultBracket() {
      if (kernel->sync_observer_ != nullptr && thread != nullptr) {
        kernel->sync_observer_->OnKernelLeave(thread);
      }
    }
  } fault_bracket(this);
  trace::ScopedSpan span(*tracer_, trace::SpanKind::kVmFault, trace::EventType::kVmFault,
                         trace::EventType::kVmFaultDone, vaddr);
  span.set_end_payload(write ? 1 : 0);
  ++tracer_->metrics().Counter("mk.vm.faults");
  cpu().Execute(FaultEntryRegion());
  cpu().Execute(FaultResolveRegion());
  cpu().AccessData(task.sim_addr(), 64, /*write=*/false);
  ++task.faults_taken;

  if (write && !ProtIncludes(entry->prot, Prot::kWrite)) {
    return base::Status::kProtectionFailure;
  }
  VmObject* object = entry->object.get();
  const uint64_t index = entry->PageIndexOf(vaddr);

  const VmObject* owner = nullptr;
  auto resident = object->LookupThroughShadow(index, &owner);
  hw::PhysAddr frame = 0;
  Prot map_prot = entry->prot;

  if (resident.ok()) {
    if (owner == object || !write) {
      frame = *resident;
      if (owner != object) {
        // Page belongs to a shadow parent; keep it read-only so a later
        // write faults and copies.
        map_prot = Prot::kRead;
      } else if (object->dirty_tracking()) {
        // Managed file-backed page: a write fault records the page dirty
        // (and maps it writable); a clean page stays read-only so the first
        // store faults back in here.
        if (write) {
          object->MarkDirty(index);
        } else if (!object->IsDirty(index)) {
          map_prot = Prot::kRead;
        }
      }
    } else {
      // COW: copy the parent's page into this object.
      cpu().Execute(CowCopyRegion());
      auto new_frame = machine_->mem().AllocFrame();
      if (!new_frame.ok()) {
        return base::Status::kResourceShortage;
      }
      std::vector<uint8_t> buf(hw::kPageSize);
      machine_->mem().Read(*resident, buf.data(), buf.size());
      machine_->mem().Write(*new_frame, buf.data(), buf.size());
      ChargeCopy(*resident, *new_frame, hw::kPageSize);
      object->InstallPage(index, *new_frame);
      ++task.cow_copies;
      frame = *new_frame;
    }
  } else {
    // Not resident anywhere in the chain: ask the base object.
    VmObject* base_obj = object;
    while (base_obj->shadow_parent() != nullptr) {
      base_obj = base_obj->shadow_parent().get();
    }
    switch (base_obj->backing()) {
      case VmObject::Backing::kDevice:
        frame = base_obj->device_base() + (index << hw::kPageShift);
        break;
      case VmObject::Backing::kPager: {
        auto new_frame = machine_->mem().AllocFrame();
        if (!new_frame.ok()) {
          return base::Status::kResourceShortage;
        }
        const base::Status st = PagerFill(task, base_obj, index, *new_frame);
        if (st != base::Status::kOk) {
          machine_->mem().FreeFrame(*new_frame);
          return st;
        }
        base_obj->InstallPage(index, *new_frame);
        frame = *new_frame;
        if (base_obj != object) {
          map_prot = Prot::kRead;  // COW away from the pager-backed base
        } else if (base_obj->dirty_tracking()) {
          if (write) {
            base_obj->MarkDirty(index);
          } else {
            map_prot = Prot::kRead;  // clean until the first store faults
          }
        }
        break;
      }
      case VmObject::Backing::kAnonymous: {
        cpu().Execute(ZeroFillRegion());
        auto new_frame = machine_->mem().AllocFrame();
        if (!new_frame.ok()) {
          return base::Status::kResourceShortage;
        }
        machine_->mem().Fill(*new_frame, 0, hw::kPageSize);
        ChargeCopy(*new_frame, *new_frame, hw::kPageSize / 2);  // zeroing traffic
        // Private zero-fill pages land in the faulting object itself so COW
        // chains stay consistent.
        object->InstallPage(index, *new_frame);
        ++task.zero_fills;
        frame = *new_frame;
        break;
      }
    }
  }

  cpu().Execute(PmapEnterRegion());
  const uint64_t vpn = hw::PageIndex(vaddr);
  cpu().AccessData(task.pmap().PteAddr(vpn), 4, /*write=*/true);
  task.pmap().Enter(vpn, frame, map_prot);
  // Installing a translation is a release edge: a later access through this
  // frame (the acquire half, in ResolveForAccess) is ordered after the
  // fault's resolution traffic, just as real page-table install barriers
  // order an MMU walk after the kernel's page copy.
  if (sync_observer_ != nullptr && scheduler_.current() != nullptr) {
    sync_observer_->OnChannelSend(kPageInstallChannel | hw::PageIndex(frame),
                                  scheduler_.current());
  }
  *out_pa = frame + (vaddr & hw::kPageMask);
  return base::Status::kOk;
}

base::Result<hw::PhysAddr> Kernel::ResolveForAccess(Task& task, hw::VirtAddr vaddr, bool write) {
  // Acquire half of the page-install edge (see FaultIn): any resolved user
  // access is ordered after the fault that installed the frame it reaches.
  auto acquire_install = [&](hw::PhysAddr pa) {
    if (sync_observer_ != nullptr && scheduler_.current() != nullptr) {
      sync_observer_->OnChannelRecv(kPageInstallChannel | hw::PageIndex(pa),
                                    scheduler_.current());
    }
  };
  const uint64_t vpn = hw::PageIndex(vaddr);
  const Pmap::Mapping* m = task.pmap().Lookup(vpn);
  if (m != nullptr && (!write || ProtIncludes(m->prot, Prot::kWrite))) {
    const hw::PhysAddr pa = m->frame + (vaddr & hw::kPageMask);
    acquire_install(pa);
    return pa;
  }
  VmMapEntry* entry = task.vm_map().Lookup(vaddr);
  if (entry == nullptr) {
    return base::Status::kInvalidAddress;
  }
  hw::PhysAddr pa = 0;
  const base::Status st = FaultIn(task, entry, vaddr, write, &pa);
  if (st != base::Status::kOk) {
    return st;
  }
  acquire_install(pa);
  return pa;
}

// --- User memory access -----------------------------------------------------------------------

void Kernel::AccessUser(Task& task, hw::VirtAddr vaddr, hw::PhysAddr pa, uint32_t size,
                        bool write) {
  cpu().AccessTranslated(vaddr, pa, task.pmap().PteAddr(hw::PageIndex(vaddr)), size, write);
}

namespace {
// Iterates [addr, addr+len) in chunks that never cross a page boundary.
template <typename Fn>
base::Status ForEachPageChunk(hw::VirtAddr addr, uint64_t len, Fn&& fn) {
  uint64_t done = 0;
  while (done < len) {
    const hw::VirtAddr va = addr + done;
    const uint64_t in_page = hw::kPageSize - (va & hw::kPageMask);
    const uint64_t chunk = len - done < in_page ? len - done : in_page;
    const base::Status st = fn(va, done, chunk);
    if (st != base::Status::kOk) {
      return st;
    }
    done += chunk;
  }
  return base::Status::kOk;
}
}  // namespace

base::Status Kernel::CopyOut(Task& task, hw::VirtAddr dst, const void* src, uint64_t len) {
  const uint8_t* bytes = static_cast<const uint8_t*>(src);
  return ForEachPageChunk(dst, len, [&](hw::VirtAddr va, uint64_t off, uint64_t chunk) {
    auto pa = ResolveForAccess(task, va, /*write=*/true);
    if (!pa.ok()) {
      return pa.status();
    }
    machine_->mem().Write(*pa, bytes + off, chunk);
    cpu().ExecuteInstructions(UserAccessRegion(),
                              Costs::kCopyLoopOverhead / 2 + chunk / Costs::kCopyBytesPerInstr);
    const uint32_t line = cpu().config().dcache.line_bytes;
    for (uint64_t o = 0; o < chunk; o += line) {
      const uint32_t n = static_cast<uint32_t>(chunk - o < line ? chunk - o : line);
      AccessUser(task, va + o, *pa + o, n, /*write=*/true);
    }
    return base::Status::kOk;
  });
}

base::Status Kernel::CopyIn(Task& task, hw::VirtAddr src, void* dst, uint64_t len) {
  uint8_t* bytes = static_cast<uint8_t*>(dst);
  return ForEachPageChunk(src, len, [&](hw::VirtAddr va, uint64_t off, uint64_t chunk) {
    auto pa = ResolveForAccess(task, va, /*write=*/false);
    if (!pa.ok()) {
      return pa.status();
    }
    machine_->mem().Read(*pa, bytes + off, chunk);
    cpu().ExecuteInstructions(UserAccessRegion(),
                              Costs::kCopyLoopOverhead / 2 + chunk / Costs::kCopyBytesPerInstr);
    const uint32_t line = cpu().config().dcache.line_bytes;
    for (uint64_t o = 0; o < chunk; o += line) {
      const uint32_t n = static_cast<uint32_t>(chunk - o < line ? chunk - o : line);
      AccessUser(task, va + o, *pa + o, n, /*write=*/false);
    }
    return base::Status::kOk;
  });
}

base::Status Kernel::UserFill(Task& task, hw::VirtAddr dst, uint8_t byte, uint64_t len) {
  return ForEachPageChunk(dst, len, [&](hw::VirtAddr va, uint64_t off, uint64_t chunk) {
    auto pa = ResolveForAccess(task, va, /*write=*/true);
    if (!pa.ok()) {
      return pa.status();
    }
    machine_->mem().Fill(*pa, byte, chunk);
    cpu().ExecuteInstructions(UserAccessRegion(), chunk / Costs::kCopyBytesPerInstr);
    const uint32_t line = cpu().config().dcache.line_bytes;
    for (uint64_t o = 0; o < chunk; o += line) {
      const uint32_t n = static_cast<uint32_t>(chunk - o < line ? chunk - o : line);
      AccessUser(task, va + o, *pa + o, n, /*write=*/true);
    }
    return base::Status::kOk;
  });
}

base::Status Kernel::UserTouch(Task& task, hw::VirtAddr addr, uint64_t len, bool write) {
  return ForEachPageChunk(addr, len, [&](hw::VirtAddr va, uint64_t off, uint64_t chunk) {
    auto pa = ResolveForAccess(task, va, write);
    if (!pa.ok()) {
      return pa.status();
    }
    cpu().ExecuteInstructions(UserAccessRegion(), chunk / Costs::kCopyBytesPerInstr);
    const uint32_t line = cpu().config().dcache.line_bytes;
    for (uint64_t o = 0; o < chunk; o += line) {
      const uint32_t n = static_cast<uint32_t>(chunk - o < line ? chunk - o : line);
      AccessUser(task, va + o, *pa + o, n, write);
    }
    return base::Status::kOk;
  });
}

base::Status Kernel::CopyUserToUser(Task& src_task, hw::VirtAddr src, Task& dst_task,
                                    hw::VirtAddr dst, uint64_t len) {
  std::vector<uint8_t> bounce(4096);
  uint64_t done = 0;
  while (done < len) {
    const uint64_t chunk = len - done < bounce.size() ? len - done : bounce.size();
    base::Status st = CopyIn(src_task, src + done, bounce.data(), chunk);
    if (st != base::Status::kOk) {
      return st;
    }
    st = CopyOut(dst_task, dst + done, bounce.data(), chunk);
    if (st != base::Status::kOk) {
      return st;
    }
    done += chunk;
  }
  return base::Status::kOk;
}

// --- External memory objects --------------------------------------------------------------------

uint64_t Kernel::RegisterPagedObject(std::shared_ptr<VmObject> object, Port* pager_port,
                                     uint64_t pager_offset) {
  const uint64_t id = next_object_id_++;
  object->SetPager(pager_port, pager_offset, id);
  paged_objects_.emplace(id, std::move(object));
  return id;
}

std::shared_ptr<VmObject> Kernel::LookupPagedObject(uint64_t object_id) {
  auto it = paged_objects_.find(object_id);
  return it == paged_objects_.end() ? nullptr : it->second;
}

// --- Managed file-backed objects (mmap support) -------------------------------------------------

namespace {
// True if `entry`'s object is `object` or shadows it (directly or deeper).
bool EntryReaches(const VmMapEntry& entry, const VmObject* object) {
  const VmObject* obj = entry.object.get();
  while (obj != nullptr) {
    if (obj == object) {
      return true;
    }
    obj = obj->shadow_parent().get();
  }
  return false;
}
}  // namespace

base::Status Kernel::PagerWriteback(Task& task, VmObject* object, uint64_t page_index) {
  Port* pager = object->pager_port();
  if (pager == nullptr || pager->dead()) {
    return base::Status::kPortDead;
  }
  auto frame = object->GetPage(page_index);
  if (!frame.ok()) {
    return base::Status::kNotFound;
  }
  cpu().Execute(PagerWritebackRegion());
  cpu().AccessData(task.sim_addr(), 32, /*write=*/false);
  PagerRequest req;
  req.op = PagerOp::kDataWrite;
  req.object_id = object->pager_object_id();
  req.page_index = page_index + (object->pager_offset() >> hw::kPageShift);
  PagerReply reply{};
  std::vector<uint8_t> page(hw::kPageSize);
  machine_->mem().Read(*frame, page.data(), hw::kPageSize);
  ChargeCopy(*frame, heap_->base(), hw::kPageSize);
  RpcRef ref;
  ref.send_data = page.data();
  ref.send_len = hw::kPageSize;
  uint32_t reply_len = 0;
  const base::Status st = RpcCallOnPort(pager, &req, sizeof(req), &reply, sizeof(reply),
                                        &reply_len, &ref, nullptr, 0, nullptr, kForever);
  if (st != base::Status::kOk) {
    return st;
  }
  if (reply.status != 0) {
    return static_cast<base::Status>(reply.status);
  }
  tracer_->Emit(trace::EventType::kPagerWriteback, object->pager_object_id(), page_index);
  return base::Status::kOk;
}

uint64_t Kernel::VmObjectInvalidate(VmObject* object, uint64_t first_page, uint64_t count,
                                    bool clean_only) {
  const uint64_t limit =
      first_page + count < first_page ? ~0ull : first_page + count;  // clamp overflow
  uint64_t dropped = 0;
  for (uint64_t index : object->ResidentPagesSorted()) {
    if (index < first_page || index >= limit) {
      continue;
    }
    if (clean_only && object->IsDirty(index)) {
      continue;
    }
    cpu().Execute(ObjectInvalidateRegion());
    auto frame = object->GetPage(index);
    object->RemovePage(index);
    if (frame.ok()) {
      machine_->mem().FreeFrame(*frame);
    }
    ++dropped;
  }
  // Every mapping that can reach the object loses its translations for the
  // whole entry, so surviving (dirty/shadow) pages refault resident and
  // dropped ones refault through the pager.
  bool flushed_any = false;
  for (const auto& task : tasks_) {
    for (auto& [start, entry] : task->vm_map().entries()) {
      if (!EntryReaches(entry, object)) {
        continue;
      }
      task->pmap().RemoveRange(hw::PageIndex(entry.start), entry.size >> hw::kPageShift);
      flushed_any = true;
    }
  }
  if (flushed_any) {
    cpu().FlushTlb();
  }
  tracer_->Emit(trace::EventType::kVmObjectInvalidate, object->pager_object_id(), dropped);
  return dropped;
}

void Kernel::VmObjectMarkClean(VmObject* object, uint64_t first_page, uint64_t count) {
  for (uint64_t index : object->DirtyPages(first_page, count)) {
    object->ClearDirty(index);
  }
  // Write-protect live translations of direct (shared) mappings so the next
  // store faults and re-marks its page dirty. Shadow (private) mappings never
  // put dirty pages in the managed object, so they are unaffected.
  bool flushed_any = false;
  for (const auto& task : tasks_) {
    for (auto& [start, entry] : task->vm_map().entries()) {
      if (entry.object.get() != object) {
        continue;
      }
      task->pmap().ProtectRange(hw::PageIndex(entry.start), entry.size >> hw::kPageShift,
                                Prot::kRead);
      flushed_any = true;
    }
  }
  if (flushed_any) {
    cpu().FlushTlb();
  }
}

base::Status Kernel::AdoptPagerBacking(std::shared_ptr<VmObject> object,
                                       uint64_t fresh_object_id) {
  auto it = paged_objects_.find(fresh_object_id);
  if (it == paged_objects_.end()) {
    return base::Status::kNotFound;
  }
  VmObject* fresh = it->second.get();
  if (fresh == object.get()) {
    return base::Status::kOk;  // already adopted
  }
  const uint64_t old_id = object->pager_object_id();
  object->SetPager(fresh->pager_port(), fresh->pager_offset(), fresh_object_id);
  object->set_pager_initialized(fresh->pager_initialized());
  it->second = std::move(object);
  if (old_id != fresh_object_id) {
    paged_objects_.erase(old_id);  // the dead server's registration
  }
  return base::Status::kOk;
}

base::Status Kernel::VmMsync(Task& task, hw::VirtAddr addr, uint64_t len) {
  if (len == 0) {
    return base::Status::kOk;
  }
  VmMapEntry* entry = task.vm_map().Lookup(addr);
  if (entry == nullptr || addr + len > entry->end()) {
    return base::Status::kInvalidAddress;
  }
  VmObject* object = entry->object.get();
  if (object->backing() != VmObject::Backing::kPager || !object->dirty_tracking()) {
    // Anonymous/private mappings have nothing to push to a pager.
    return base::Status::kOk;
  }
  const uint64_t first = entry->PageIndexOf(addr);
  const uint64_t pages = entry->PageIndexOf(addr + len - 1) - first + 1;
  for (uint64_t index : object->DirtyPages(first, pages)) {
    const base::Status st = PagerWriteback(task, object, index);
    if (st != base::Status::kOk) {
      return st;
    }
  }
  VmObjectMarkClean(object, first, pages);
  return base::Status::kOk;
}

base::Status Kernel::ReleasePagedObject(uint64_t object_id) {
  auto it = paged_objects_.find(object_id);
  if (it == paged_objects_.end()) {
    return base::Status::kNotFound;
  }
  std::shared_ptr<VmObject> object = it->second;
  Port* pager = object->pager_port();
  if (object->dirty_tracking() && object->pager_initialized() && pager != nullptr &&
      !pager->dead() && scheduler_.current() != nullptr) {
    PagerRequest req;
    req.op = PagerOp::kObjectTerminate;
    req.object_id = object_id;
    PagerReply reply{};
    uint32_t reply_len = 0;
    // Best effort: the pager may already be gone.
    (void)RpcCallOnPort(pager, &req, sizeof(req), &reply, sizeof(reply), &reply_len, nullptr,
                        nullptr, 0, nullptr, kForever);
  }
  // Unwritten dirty pages are discarded, as with munmap without msync.
  VmObjectInvalidate(object.get(), 0, hw::PageRound(object->size()) >> hw::kPageShift,
                     /*clean_only=*/false);
  object->set_pager_initialized(false);
  paged_objects_.erase(object_id);
  return base::Status::kOk;
}

}  // namespace mk
