// Identifier types shared across the microkernel.
#ifndef SRC_MK_IDS_H_
#define SRC_MK_IDS_H_

#include <cstdint>

namespace mk {

using TaskId = uint32_t;
using ThreadId = uint32_t;

// A port name is a task-local capability index, as in Mach: it has meaning
// only within one task's port space. 0 is the null name.
using PortName = uint32_t;
inline constexpr PortName kNullPort = 0;

enum class Prot : uint8_t {
  kNone = 0,
  kRead = 1,
  kWrite = 2,
  kReadWrite = 3,
  kExecute = 4,
  kAll = 7,
};

inline Prot operator|(Prot a, Prot b) {
  return static_cast<Prot>(static_cast<uint8_t>(a) | static_cast<uint8_t>(b));
}
inline bool ProtIncludes(Prot have, Prot want) {
  return (static_cast<uint8_t>(have) & static_cast<uint8_t>(want)) ==
         static_cast<uint8_t>(want);
}

enum class RightType : uint8_t { kReceive, kSend, kSendOnce };

enum class Inherit : uint8_t { kNone, kShare, kCopy };

}  // namespace mk

#endif  // SRC_MK_IDS_H_
