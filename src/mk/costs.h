// Central table of modelled path lengths (simulated instruction counts) for
// the instrumented microkernel, stub and server-loop code paths.
//
// These are the calibration knobs of the reproduction. The *absolute* counts
// are informed by the paper's Table 2 (a thread_self trap ran 465
// instructions end to end; a 32-byte RPC ran 1317) and by the path
// decompositions in Liedtke'93 for Mach-derived IPC. The *ratios* between
// trap and RPC, and the cache behaviour, then emerge from the CPU model —
// they are not set here.
#ifndef SRC_MK_COSTS_H_
#define SRC_MK_COSTS_H_

#include <cstdint>

namespace mk {

struct Costs {
  // --- Privilege switching ---------------------------------------------------
  // Fixed pipeline/microcode stall for entering and leaving kernel mode.
  static constexpr uint32_t kTrapStallCycles = 360;
  static constexpr uint32_t kTrapEntry = 95;    // save state, demux trap number
  static constexpr uint32_t kTrapExit = 55;     // restore state, return to user

  // Bus transactions inherent to a privilege switch (trap frame push, IDT and
  // TSS references on the Pentium) — visible in Table 2's bus-cycle column.
  static constexpr uint32_t kTrapEntryBus = 22;
  static constexpr uint32_t kTrapExitBus = 8;

  // --- Simple traps ----------------------------------------------------------
  static constexpr uint32_t kUserTrapStub = 45;     // user-level stub for a trap
  static constexpr uint32_t kThreadSelfBody = 130;  // lookup current thread, name
  static constexpr uint32_t kPortNameLookup = 140;  // hash the port name space

  // --- RPC (the IBM rework) --------------------------------------------------
  static constexpr uint32_t kRpcClientStub = 105;   // marshal args, trap
  static constexpr uint32_t kRpcServerStub = 120;   // demux id, unmarshal
  static constexpr uint32_t kRpcSendPath = 185;     // rights check, rendezvous
  static constexpr uint32_t kRpcReceivePath = 125;  // server-side receive path
  static constexpr uint32_t kRpcReplyPath = 135;    // reply + resume client
  static constexpr uint32_t kRpcServerLoop = 110;   // server demultiplex loop
  // Copy loop: modelled instructions per 8 copied bytes.
  static constexpr uint32_t kCopyBytesPerInstr = 8;
  static constexpr uint32_t kCopyLoopOverhead = 30;
  // By-reference bulk data above this size moves as whole pages (remap into
  // the receiver's window) instead of through the per-byte copy loop — the
  // paper's "large data passed by reference". Per-page costs are far below
  // the legacy vm_map_copyin/copyout pair because the rework carries no
  // shadow-object churn: the sender's pages are referenced and mapped
  // read-only into the receiver for the duration of the call.
  static constexpr uint32_t kRpcOolThresholdBytes = 2048;
  static constexpr uint32_t kRpcOolPreparePerPage = 220;  // reference + wire-down
  static constexpr uint32_t kRpcOolMapPerPage = 180;      // PTE setup in receiver

  // --- Legacy Mach 3.0 IPC (mach_msg) ----------------------------------------
  static constexpr uint32_t kMachMsgUserStub = 210;    // MIG stub, header setup
  static constexpr uint32_t kMachMsgSendPath = 480;    // option demux, queueing
  static constexpr uint32_t kMachMsgReceivePath = 420; // dequeue, copyout
  static constexpr uint32_t kMachMsgKernelBuffer = 90; // kmsg alloc/free
  static constexpr uint32_t kReplyPortManage = 150;    // send-once right churn
  static constexpr uint32_t kOolPreparePerPage = 1600;  // vm_map_copyin: entry
                                                       // clipping, shadow-object
                                                       // churn, wiring checks
  static constexpr uint32_t kOolReceivePerPage = 1200;  // vm_map_copyout per page

  // --- Scheduling ------------------------------------------------------------
  static constexpr uint32_t kSchedPickThread = 55;
  static constexpr uint32_t kSchedContextSwitch = 105;  // register state, stacks
  static constexpr uint32_t kSchedHandoff = 45;         // direct handoff path
  static constexpr uint32_t kPmapActivate = 80;         // address-space switch
  static constexpr uint32_t kContextSwitchStallCycles = 220;
  // Aggregate refill penalty after an address-space switch: the TLB is
  // flushed (no ASIDs on the Pentium/604) and the incoming context's working
  // translations and write buffers rebuild over the next few dozen accesses.
  // Charged once per pmap activation; the per-page TLB walks of subsequent
  // user accesses are modelled separately by the TLB model.
  static constexpr uint32_t kSpaceSwitchRefillCycles = 700;
  static constexpr uint32_t kSpaceSwitchRefillBus = 80;

  // --- VM --------------------------------------------------------------------
  static constexpr uint32_t kFaultEntry = 450;   // Mach vm_fault entry/lookup
  static constexpr uint32_t kFaultResolve = 850;     // object chain, pager checks
  static constexpr uint32_t kFaultZeroFill = 120;    // + copy loop for the page
  static constexpr uint32_t kFaultCowCopy = 150;     // + copy loop for the page
  static constexpr uint32_t kPmapEnter = 70;
  static constexpr uint32_t kVmAllocate = 240;
  static constexpr uint32_t kVmDeallocate = 200;
  static constexpr uint32_t kVmProtect = 160;
  static constexpr uint32_t kVmMapObject = 280;
  // Managed file-backed objects (mmap): pages the kernel requests from the
  // pager per kDataRequest when the faulting object tracks dirty pages —
  // sequential faults amortize one pager RPC over this many pages.
  static constexpr uint32_t kMmapReadaheadPages = 8;
  static constexpr uint32_t kPagerWritebackPage = 260;     // msync dirty-page RPC setup
  static constexpr uint32_t kVmObjectInvalidatePage = 90;  // drop resident page + PTEs

  // --- Synchronizers ----------------------------------------------------------
  static constexpr uint32_t kSemaphoreFast = 110;    // kernel semaphore, no block
  static constexpr uint32_t kSemaphoreBlock = 140;   // extra when blocking
  static constexpr uint32_t kMemSyncUserFast = 18;   // user-level atomic path
  static constexpr uint32_t kMemSyncKernelWait = 180;

  // --- Clocks and timers -------------------------------------------------------
  static constexpr uint32_t kClockGetTime = 70;
  static constexpr uint32_t kTimerArm = 130;
  static constexpr uint32_t kTimerFire = 110;

  // --- I/O support -------------------------------------------------------------
  static constexpr uint32_t kIoRegAccess = 40;       // kernel-mediated reg access
  static constexpr uint32_t kInterruptDeliver = 170; // vector to handler
  static constexpr uint32_t kInterruptReflect = 210; // reflect to user level
  static constexpr uint32_t kDmaSetup = 190;

  // --- Port management ----------------------------------------------------------
  static constexpr uint32_t kPortAllocate = 220;
  static constexpr uint32_t kPortRightTransfer = 160;
  static constexpr uint32_t kPortDeallocate = 180;

  // --- Task/thread management -----------------------------------------------
  static constexpr uint32_t kTaskCreate = 900;
  static constexpr uint32_t kThreadCreate = 600;
  static constexpr uint32_t kThreadTerminate = 400;
};

}  // namespace mk

#endif  // SRC_MK_COSTS_H_
