// Wire protocol between the kernel's fault path and external memory objects
// (pagers), in the spirit of the OSF RI RPC-based external memory management
// interface. The faulting thread performs an RPC to the pager port; page
// contents travel as by-reference bulk data.
#ifndef SRC_MK_PAGER_PROTOCOL_H_
#define SRC_MK_PAGER_PROTOCOL_H_

#include <cstdint>

namespace mk {

enum class PagerOp : uint32_t {
  kDataRequest = 1,  // kernel -> pager: supply page `page_index` (and, for
                     // managed objects, up to readahead-many sequential
                     // successors — the reply ref length says how many came)
  kDataWrite = 2,    // kernel -> pager: page out (bulk data in request ref);
                     // also the dirty-page writeback op for managed objects
  kObjectSetup = 3,  // kernel -> pager: first mapping of the object went live
                     // (memory_object_init analogue); page_index carries the
                     // object size in pages as a hint
  kObjectTerminate = 4,  // client -> pager: last mapping is gone, the pager
                         // may drop per-object state (memory_object_terminate)
};

struct PagerRequest {
  PagerOp op = PagerOp::kDataRequest;
  uint64_t object_id = 0;
  uint64_t page_index = 0;
};

struct PagerReply {
  int32_t status = 0;  // 0 = ok, else a base::Status value
};

}  // namespace mk

#endif  // SRC_MK_PAGER_PROTOCOL_H_
