// Wire protocol between the kernel's fault path and external memory objects
// (pagers), in the spirit of the OSF RI RPC-based external memory management
// interface. The faulting thread performs an RPC to the pager port; page
// contents travel as by-reference bulk data.
#ifndef SRC_MK_PAGER_PROTOCOL_H_
#define SRC_MK_PAGER_PROTOCOL_H_

#include <cstdint>

namespace mk {

enum class PagerOp : uint32_t {
  kDataRequest = 1,  // kernel -> pager: supply page `page_index`
  kDataWrite = 2,    // kernel -> pager: page out (bulk data in request ref)
};

struct PagerRequest {
  PagerOp op = PagerOp::kDataRequest;
  uint64_t object_id = 0;
  uint64_t page_index = 0;
};

struct PagerReply {
  int32_t status = 0;  // 0 = ok, else a base::Status value
};

}  // namespace mk

#endif  // SRC_MK_PAGER_PROTOCOL_H_
