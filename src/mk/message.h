// Message formats for the two IPC systems.
//
// MachMessage is the legacy Mach 3.0 format: queued, asynchronous, with reply
// ports, inline data, port-right descriptors and out-of-line regions moved by
// virtual (copy-on-write) copy.
//
// The reworked RPC (see rpc declarations in kernel.h) has no message object
// at all on the wire: requests and replies are plain byte buffers physically
// copied between the parties, plus optional right transfers and by-reference
// bulk-data descriptors — the paper's "passed data too large for the message
// body by reference, copying it across from sender to receiver".
#ifndef SRC_MK_MESSAGE_H_
#define SRC_MK_MESSAGE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/hw/types.h"
#include "src/mk/ids.h"

namespace mk {

class VmObject;
class Port;

// A port right carried in a message, named in the sender's (on send) or the
// receiver's (after receive) port space.
struct RightDescriptor {
  PortName name = kNullPort;
  // Disposition: what the receiver gets. kReceive moves the receive right;
  // kSend copies/creates a send right; kSendOnce moves a send-once right.
  RightType disposition = RightType::kSend;
};

struct OolDescriptor {
  hw::VirtAddr address = 0;  // sender space on send; receiver space on receive
  uint64_t size = 0;
  bool deallocate_sender = false;
};

struct MachMessage {
  uint32_t msg_id = 0;
  PortName dest = kNullPort;        // send-time destination
  PortName reply_port = kNullPort;  // right carried to the receiver
  std::vector<uint8_t> inline_data;
  std::vector<RightDescriptor> rights;
  std::vector<OolDescriptor> ool;
};

// Kernel-internal representation of a queued message: rights are resolved to
// ports, OOL regions snapshotted as VM objects, inline data copied into a
// kernel buffer (which is what makes the legacy path a two-copy path).
struct QueuedMessage {
  uint32_t msg_id = 0;
  std::vector<uint8_t> inline_data;
  hw::PhysAddr kernel_buffer = 0;  // simulated address of the kmsg copy

  struct ResolvedRight {
    Port* port = nullptr;
    RightType disposition = RightType::kSend;
  };
  ResolvedRight reply;  // null port if none
  std::vector<ResolvedRight> rights;

  struct OolRegion {
    std::shared_ptr<VmObject> object;
    uint64_t size = 0;
  };
  std::vector<OolRegion> ool;

  uint64_t send_cycle = 0;
};

}  // namespace mk

#endif  // SRC_MK_MESSAGE_H_
