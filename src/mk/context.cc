#include "src/mk/context.h"

#include "src/base/log.h"

// ASan cannot follow a hand-rolled stack switch on its own: it tracks one
// shadow/fake stack per OS thread, so swapping %rsp under it produces false
// stack-buffer-overflow and use-after-return reports. The
// __sanitizer_*_switch_fiber hooks tell it when execution migrates between
// the scheduler stack and a green-thread stack (build with -DWPOS_ASAN=ON).
#if defined(__SANITIZE_ADDRESS__)
#define WPOS_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define WPOS_ASAN_FIBERS 1
#endif
#endif

#ifdef WPOS_ASAN_FIBERS
#include <sanitizer/asan_interface.h>
#include <sanitizer/common_interface_defs.h>
#endif

// x86-64 SysV: rbx, rbp, r12-r15 are callee-saved; everything else is dead
// across an ordinary function call, which is exactly what WposCtxSwitch is.
asm(R"(
.text
.globl WposCtxSwitch
.type WposCtxSwitch,@function
.align 16
WposCtxSwitch:
  pushq %rbp
  pushq %rbx
  pushq %r12
  pushq %r13
  pushq %r14
  pushq %r15
  movq %rsp, (%rdi)
  movq %rsi, %rsp
  popq %r15
  popq %r14
  popq %r13
  popq %r12
  popq %rbx
  popq %rbp
  ret
.size WposCtxSwitch,.-WposCtxSwitch
)");

namespace mk {

void* WposCtxMake(void* stack_top, void (*entry)()) {
  // Find the highest 16-byte-aligned slot and place the entry address there:
  // the trailing `ret` of WposCtxSwitch pops it, leaving rsp ≡ 8 (mod 16) at
  // entry — the normal post-call alignment the ABI promises a function.
  uintptr_t top = reinterpret_cast<uintptr_t>(stack_top);
  top &= ~uintptr_t{15};
  uint64_t* slot = reinterpret_cast<uint64_t*>(top) - 1;
  // Keep the return slot itself 16-aligned.
  if ((reinterpret_cast<uintptr_t>(slot) & 15) != 0) {
    --slot;
  }
  WPOS_CHECK((reinterpret_cast<uintptr_t>(slot) & 15) == 0);
  *slot = reinterpret_cast<uint64_t>(entry);
  // Six callee-saved register slots below the return address, all zero.
  uint64_t* sp = slot - 6;
  for (int i = 0; i < 6; ++i) {
    sp[i] = 0;
  }
  return sp;
}

#ifdef WPOS_ASAN_FIBERS
namespace {
// Bounds of the scheduler (host) stack, learned from ASan the first time a
// fiber completes a switch away from it. The simulation is single-OS-threaded
// but keep these thread_local in case two machines run on different threads.
thread_local const void* g_main_stack_bottom = nullptr;
thread_local size_t g_main_stack_size = 0;
}  // namespace

void WposCtxSwitchToFiber(void** save_sp, void* load_sp, const void* stack_bottom,
                          size_t stack_size) {
  void* fake_stack = nullptr;
  __sanitizer_start_switch_fiber(&fake_stack, stack_bottom, stack_size);
  WposCtxSwitch(save_sp, load_sp);
  // Resumed on the scheduler stack, arriving from some fiber.
  __sanitizer_finish_switch_fiber(fake_stack, nullptr, nullptr);
}

void WposCtxSwitchToMain(void** save_sp, void* load_sp, bool abandon) {
  void* fake_stack = nullptr;
  __sanitizer_start_switch_fiber(abandon ? nullptr : &fake_stack, g_main_stack_bottom,
                                 g_main_stack_size);
  WposCtxSwitch(save_sp, load_sp);
  // Resumed on this fiber's stack; the switch into us always comes from the
  // scheduler, so the reported old stack refreshes the main-stack bounds.
  __sanitizer_finish_switch_fiber(fake_stack, &g_main_stack_bottom, &g_main_stack_size);
}

void WposCtxFiberEntry() {
  __sanitizer_finish_switch_fiber(nullptr, &g_main_stack_bottom, &g_main_stack_size);
}

void WposCtxReleaseStack(const void* stack_bottom, size_t stack_size) {
  __asan_unpoison_memory_region(stack_bottom, stack_size);
}
#else
void WposCtxSwitchToFiber(void** save_sp, void* load_sp, const void*, size_t) {
  WposCtxSwitch(save_sp, load_sp);
}

void WposCtxSwitchToMain(void** save_sp, void* load_sp, bool) {
  WposCtxSwitch(save_sp, load_sp);
}

void WposCtxFiberEntry() {}

void WposCtxReleaseStack(const void*, size_t) {}
#endif

}  // namespace mk
