#include "src/mk/context.h"

#include "src/base/log.h"

// x86-64 SysV: rbx, rbp, r12-r15 are callee-saved; everything else is dead
// across an ordinary function call, which is exactly what WposCtxSwitch is.
asm(R"(
.text
.globl WposCtxSwitch
.type WposCtxSwitch,@function
.align 16
WposCtxSwitch:
  pushq %rbp
  pushq %rbx
  pushq %r12
  pushq %r13
  pushq %r14
  pushq %r15
  movq %rsp, (%rdi)
  movq %rsi, %rsp
  popq %r15
  popq %r14
  popq %r13
  popq %r12
  popq %rbx
  popq %rbp
  ret
.size WposCtxSwitch,.-WposCtxSwitch
)");

namespace mk {

void* WposCtxMake(void* stack_top, void (*entry)()) {
  // Find the highest 16-byte-aligned slot and place the entry address there:
  // the trailing `ret` of WposCtxSwitch pops it, leaving rsp ≡ 8 (mod 16) at
  // entry — the normal post-call alignment the ABI promises a function.
  uintptr_t top = reinterpret_cast<uintptr_t>(stack_top);
  top &= ~uintptr_t{15};
  uint64_t* slot = reinterpret_cast<uint64_t*>(top) - 1;
  // Keep the return slot itself 16-aligned.
  if ((reinterpret_cast<uintptr_t>(slot) & 15) != 0) {
    --slot;
  }
  WPOS_CHECK((reinterpret_cast<uintptr_t>(slot) & 15) == 0);
  *slot = reinterpret_cast<uint64_t>(entry);
  // Six callee-saved register slots below the return address, all zero.
  uint64_t* sp = slot - 6;
  for (int i = 0; i < 6; ++i) {
    sp[i] = 0;
  }
  return sp;
}

}  // namespace mk
