#include "src/mk/task.h"

#include "src/mk/thread.h"

namespace mk {

Task::Task(TaskId id, std::string name, hw::PhysAddr sim_addr, hw::PhysAddr pt_base)
    : id_(id),
      name_(std::move(name)),
      sim_addr_(sim_addr),
      pmap_(pt_base),
      port_space_(sim_addr + 0x100) {}

Task::~Task() = default;

}  // namespace mk
