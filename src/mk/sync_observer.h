// Host-side observer of kernel synchronization events, the instrumentation
// surface the concurrency checker (src/mk/analysis/explore/) builds its
// happens-before order, locksets and lock-order graph from.
//
// The kernel and scheduler invoke the observer at synchronization points:
// thread lifecycle, context switches, wakes, semaphore acquire/signal, and
// message-channel send/receive edges (RPC rendezvous, legacy IPC queues,
// memory synchronizers). All callbacks are pure host-side bookkeeping — an
// observer charges no simulated cycles, so installing one does not perturb
// the cost model (the same counter-equality guarantee the tracer gives).
// With no observer installed every hook is a single null-pointer test.
#ifndef SRC_MK_SYNC_OBSERVER_H_
#define SRC_MK_SYNC_OBSERVER_H_

#include <cstdint>

#include "src/hw/types.h"

namespace mk {

class Thread;

// Why the previous thread gave up the CPU; passed to schedule policies and
// observers so a CHESS-style explorer can tell voluntary scheduling points
// (block/yield/exit) from forced preemptions, which consume preemption
// budget under iterative context bounding.
enum class SwitchReason : uint8_t {
  kFirst = 0,  // initial dispatch, nobody ran before
  kBlock,      // previous thread blocked
  kYield,      // previous thread yielded or handed off, still runnable
  kPreempt,    // previous thread was preempted at a kernel entry
  kExit,       // previous thread terminated
};

class SyncObserver {
 public:
  virtual ~SyncObserver() = default;

  // --- Thread lifecycle ------------------------------------------------------
  // `creator` is the thread that created `t` (nullptr when created from the
  // test harness before the scheduler runs).
  virtual void OnThreadStart(Thread* t, Thread* creator) = 0;
  virtual void OnThreadExit(Thread* t) = 0;

  // --- Scheduling ------------------------------------------------------------
  // The scheduler dispatched `incoming`; `reason` is why the previous thread
  // stopped running.
  virtual void OnSwitch(Thread* incoming, SwitchReason reason) = 0;
  // `waker` made `woken` runnable (nullptr waker = machine event, e.g. a
  // timer). A wake is a happens-before edge: everything the waker did is
  // ordered before everything the woken thread does next.
  virtual void OnWake(Thread* waker, Thread* woken) = 0;

  // --- Kernel entry bracketing ----------------------------------------------
  // Execution between EnterKernel/LeaveKernel is atomic with respect to the
  // cooperative scheduler except at explicit preemption points; the race
  // detector models it as holding an implicit global kernel lock.
  virtual void OnKernelEnter(Thread* t) = 0;
  virtual void OnKernelLeave(Thread* t) = 0;

  // --- Semaphores (locks + condition channels) -------------------------------
  // `t` successfully acquired a unit of `sem_id` (SemWait returned kOk).
  virtual void OnSemAcquired(uint32_t sem_id, Thread* t) = 0;
  // `t` signalled `sem_id` (a release edge into the semaphore's channel).
  virtual void OnSemSignal(uint32_t sem_id, Thread* t) = 0;

  // --- Message channels ------------------------------------------------------
  // Queued-channel edges: the sender's clock joins the channel on send, the
  // receiver's clock absorbs the channel on receive. `chan` is a stable id
  // for the channel (port id, memsync word address, ...).
  virtual void OnChannelSend(uint64_t chan, Thread* sender) = 0;
  virtual void OnChannelRecv(uint64_t chan, Thread* receiver) = 0;
  // Direct rendezvous edges (RPC request delivery and reply): `from`'s clock
  // is released straight into `to` (who is blocked, so its clock is stable).
  virtual void OnRendezvous(Thread* from, Thread* to) = 0;

  // --- Operation labels ------------------------------------------------------
  // Human-readable context for race reports: `t` is now inside `op` (a
  // static string) on object `arg`. Cleared by the next label.
  virtual void OnOpLabel(Thread* t, const char* op, uint64_t arg) = 0;

  // --- Global-effect operations ----------------------------------------------
  // `t` is executing a lifecycle operation whose effects can reach arbitrary
  // other threads (task termination, port/semaphore destruction): waiters
  // wake with errors, rights die. Reordering such a step is never a no-op,
  // so schedule-space pruning must treat it as conflicting with every other
  // step. Default no-op: only the exploration monitor cares.
  virtual void OnGlobalOp(Thread* t) { (void)t; }
};

}  // namespace mk

#endif  // SRC_MK_SYNC_OBSERVER_H_
