#include "src/mk/rpc_robust.h"

#include "src/base/log.h"
#include "src/mk/trace/tracer.h"

namespace mk {

base::Status RpcCallRobust(Env& env, const PortResolver& resolve, PortName* cached_port,
                           const void* req, uint32_t req_len, void* reply, uint32_t reply_cap,
                           const RobustCallOptions& opts, uint32_t* reply_len, RpcRef* ref,
                           PortName* granted) {
  // Umbrella span covering the whole robust call: every attempt's kRpc span
  // (and any re-resolve RPC to the name server) becomes a child of this one,
  // so retries share a single trace_id instead of starting fresh traces.
  trace::ScopedSpan robust(env.kernel().tracer(), trace::SpanKind::kRpcRobust,
                           trace::EventType::kRpcRobustCall, trace::EventType::kRpcRobustReturn,
                           *cached_port);
  base::Status last = base::Status::kUnavailable;
  uint64_t backoff = opts.retry_backoff_ns;
  for (uint32_t attempt = 0; attempt < opts.max_attempts; ++attempt) {
    if (attempt > 0) {
      (void)env.SleepNs(backoff);
      backoff *= 2;
    }
    if (ref != nullptr) {
      // A failed attempt (kBusy, timeout, dead port) must not leave partial
      // transfer results behind: the next attempt — possibly against a
      // respawned instance — starts from a clean bulk descriptor.
      ref->recv_len = 0;
      ref->sent_ool = false;
      ref->recv_ool = false;
    }
    if (*cached_port == kNullPort) {
      auto resolved = resolve(env);
      if (!resolved.ok()) {
        // Name not (re-)registered yet: the server may still be restarting,
        // or the restart manager gave up and unregistered it.
        last = resolved.status();
        continue;
      }
      *cached_port = *resolved;
    }
    const base::Status st = env.RpcCall(*cached_port, req, req_len, reply, reply_cap, reply_len,
                                        ref, nullptr, 0, granted, opts.attempt_timeout_ns);
    switch (st) {
      case base::Status::kPortDead:
      case base::Status::kInvalidName:
        // The server died (or our cached right went stale); look it up again.
        *cached_port = kNullPort;
        last = st;
        continue;
      case base::Status::kTimedOut:
        // A dropped reply is indistinguishable from a dead server; the old
        // right may still name a wedged instance, so re-resolve too.
        *cached_port = kNullPort;
        last = st;
        continue;
      case base::Status::kBusy:
        last = st;
        continue;
      default:
        robust.set_end_payload(static_cast<uint64_t>(st));
        return st;
    }
  }
  // Exhausted. A dead/unresolvable destination means the service is gone or
  // degraded; report that uniformly as kUnavailable. Timeouts keep their
  // own status so callers can distinguish "slow" from "gone".
  if (last == base::Status::kPortDead || last == base::Status::kInvalidName ||
      last == base::Status::kNotFound) {
    last = base::Status::kUnavailable;
  }
  robust.set_end_payload(static_cast<uint64_t>(last));
  return last;
}

}  // namespace mk
