#include "src/mk/rpc_robust.h"

#include "src/base/log.h"
#include "src/base/rng.h"
#include "src/mk/trace/tracer.h"

namespace mk {

namespace {
// Per-thread deterministic jitter stream: distinct threads draw distinct
// sequences (so a respawned server's clients fan out), while the same run
// with the same thread ids replays exactly. Simulated time never feeds the
// seed — the stream depends only on who is retrying.
base::Rng JitterRng(Thread* thread) {
  const uint64_t tid = thread == nullptr ? 0 : thread->id();
  return base::Rng((tid + 1) * 0x9E3779B97F4A7C15ull);
}
}  // namespace

base::Status RpcCallRobust(Env& env, const PortResolver& resolve, PortName* cached_port,
                           const void* req, uint32_t req_len, void* reply, uint32_t reply_cap,
                           const RobustCallOptions& opts, uint32_t* reply_len, RpcRef* ref,
                           PortName* granted) {
  // Umbrella span covering the whole robust call: every attempt's kRpc span
  // (and any re-resolve RPC to the name server) becomes a child of this one,
  // so retries share a single trace_id instead of starting fresh traces.
  trace::ScopedSpan robust(env.kernel().tracer(), trace::SpanKind::kRpcRobust,
                           trace::EventType::kRpcRobustCall, trace::EventType::kRpcRobustReturn,
                           *cached_port);
  base::Status last = base::Status::kUnavailable;
  uint64_t backoff = opts.retry_backoff_ns;
  base::Rng jitter = JitterRng(env.thread());
  for (uint32_t attempt = 0; attempt < opts.max_attempts; ++attempt) {
    if (attempt > 0) {
      uint64_t sleep_ns = backoff;
      if (opts.breaker != nullptr) {
        // Consecutive kBusy completions seen by the shared breaker widen
        // the backoff beyond this call's own doubling: the whole client
        // population slows down together under sustained overload.
        const uint32_t shift =
            opts.breaker->consecutive_busy() < 10 ? opts.breaker->consecutive_busy() : 10;
        const uint64_t widened = opts.retry_backoff_ns << shift;
        if (widened > sleep_ns) {
          sleep_ns = widened;
        }
      }
      if (opts.jitter && sleep_ns > 1) {
        // Uniform in [sleep/2, sleep]: desynchronizes retries across
        // threads without shrinking the mean wait below half.
        sleep_ns = sleep_ns / 2 + jitter.NextBelow(sleep_ns / 2 + 1);
      }
      (void)env.SleepNs(sleep_ns);
      backoff *= 2;
    }
    if (opts.breaker != nullptr && !opts.breaker->Admit(env.NowNs())) {
      // Breaker open: the destination is shedding — fail fast instead of
      // adding another caller to its queue. Degraded, not hung.
      ++env.kernel().tracer().metrics().Counter("mk.rpc.breaker_fast_fail");
      robust.set_end_payload(static_cast<uint64_t>(base::Status::kUnavailable));
      return base::Status::kUnavailable;
    }
    if (ref != nullptr) {
      // A failed attempt (kBusy, timeout, dead port) must not leave partial
      // transfer results behind: the next attempt — possibly against a
      // respawned instance — starts from a clean bulk descriptor.
      ref->recv_len = 0;
      ref->sent_ool = false;
      ref->recv_ool = false;
    }
    if (*cached_port == kNullPort) {
      auto resolved = resolve(env);
      if (!resolved.ok()) {
        // Name not (re-)registered yet: the server may still be restarting,
        // or the restart manager gave up and unregistered it.
        last = resolved.status();
        continue;
      }
      *cached_port = *resolved;
    }
    const base::Status st = env.RpcCall(*cached_port, req, req_len, reply, reply_cap, reply_len,
                                        ref, nullptr, 0, granted, opts.attempt_timeout_ns);
    switch (st) {
      case base::Status::kPortDead:
      case base::Status::kInvalidName:
        // The server died (or our cached right went stale); look it up again.
        // Not an overload signal: the breaker is left untouched.
        *cached_port = kNullPort;
        last = st;
        continue;
      case base::Status::kTimedOut:
        // A dropped reply is indistinguishable from a dead server; the old
        // right may still name a wedged instance, so re-resolve too.
        *cached_port = kNullPort;
        last = st;
        continue;
      case base::Status::kBusy:
        if (opts.breaker != nullptr) {
          opts.breaker->OnBusy(env.NowNs());
        }
        last = st;
        continue;
      default:
        if (opts.breaker != nullptr) {
          opts.breaker->OnSuccess();
        }
        robust.set_end_payload(static_cast<uint64_t>(st));
        return st;
    }
  }
  // Exhausted. A dead/unresolvable destination means the service is gone or
  // degraded; report that uniformly as kUnavailable. Timeouts keep their
  // own status so callers can distinguish "slow" from "gone".
  if (last == base::Status::kPortDead || last == base::Status::kInvalidName ||
      last == base::Status::kNotFound) {
    last = base::Status::kUnavailable;
  }
  robust.set_end_payload(static_cast<uint64_t>(last));
  return last;
}

}  // namespace mk
