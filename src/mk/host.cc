#include "src/mk/host.h"

#include "src/mk/task.h"

namespace mk {

base::Status Host::AssignTask(Task& task, ProcessorSet* pset) {
  if (pset == nullptr) {
    return base::Status::kInvalidArgument;
  }
  if (!pset->enabled()) {
    return base::Status::kPermissionDenied;
  }
  if (task.processor_set() != nullptr) {
    --task.processor_set()->tasks_assigned;
  }
  task.set_processor_set(pset);
  ++pset->tasks_assigned;
  return base::Status::kOk;
}

}  // namespace mk
