// Synchronizers, clocks and timers (paper: "Mach 3.0 also had no notion of
// synchronization other than that which can be constructed using the IPC
// system. Since this was too expensive ... we implemented a comprehensive set
// of synchronizers including both memory- and kernel-based locks and
// semaphores", plus "a much more extensive time management component").
#include "src/base/log.h"
#include "src/mk/kernel.h"

namespace mk {

namespace {
const hw::CodeRegion& TrapEntry() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.trap.entry", Costs::kTrapEntry);
  return r;
}
const hw::CodeRegion& SemFastRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.sync.sem_fast", Costs::kSemaphoreFast);
  return r;
}
const hw::CodeRegion& SemBlockRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.sync.sem_block", Costs::kSemaphoreBlock);
  return r;
}
const hw::CodeRegion& MemSyncUserRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("ustub.memsync_fast", Costs::kMemSyncUserFast);
  return r;
}
const hw::CodeRegion& MemSyncKernelRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.sync.memsync_wait", Costs::kMemSyncKernelWait);
  return r;
}
const hw::CodeRegion& ClockRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.clock.get_time", Costs::kClockGetTime);
  return r;
}
const hw::CodeRegion& TimerArmRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.clock.timer_arm", Costs::kTimerArm);
  return r;
}
const hw::CodeRegion& TimerFireRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.clock.timer_fire", Costs::kTimerFire);
  return r;
}
}  // namespace

// --- Timed wakes ------------------------------------------------------------------

void Kernel::StartTimedWake(Thread* t, uint64_t timeout_ns) {
  if (timeout_ns == kForever) {
    return;
  }
  const uint64_t generation = t->wake_generation;
  const hw::Cycles deadline = cpu().cycles() + cpu().NsToCycles(timeout_ns);
  machine_->ScheduleAt(deadline, [this, t, generation] {
    if (t->wake_generation == generation && t->state() == Thread::State::kBlocked) {
      scheduler_.Wake(t, base::Status::kTimedOut);
    }
  });
}

void Kernel::ClearTimedWake(Thread* t) { ++t->wake_generation; }

// --- Kernel semaphores ----------------------------------------------------------------

base::Result<uint32_t> Kernel::SemCreate(uint32_t initial) {
  const uint32_t id = next_sem_id_++;
  Semaphore sem;
  sem.count = initial;
  sem.sim_addr = heap_->Allocate(64);
  semaphores_.emplace(id, std::move(sem));
  return id;
}

base::Status Kernel::SemWait(uint32_t sem_id, uint64_t timeout_ns) {
  Thread* t = scheduler_.current();
  WPOS_CHECK(t != nullptr) << "SemWait outside thread context";
  if (sync_observer_ != nullptr) {
    sync_observer_->OnOpLabel(t, "SemWait", sem_id);
  }
  EnterKernel(TrapEntry());
  cpu().Execute(SemFastRegion());
  auto it = semaphores_.find(sem_id);
  if (it == semaphores_.end() || !it->second.alive) {
    LeaveKernel();
    return base::Status::kNotFound;
  }
  // The reference stays valid across the blocking points below (unordered_map
  // elements survive rehash); the iterator would not — a concurrent SemCreate
  // while this thread is blocked can rehash the table — so everything after
  // the first Block goes through `sem`, never back through `it`.
  Semaphore& sem = it->second;
  cpu().AccessData(sem.sim_addr, 8, /*write=*/true);
  while (sem.count == 0) {
    cpu().Execute(SemBlockRegion());
    StartTimedWake(t, timeout_ns);
    const base::Status st = scheduler_.Block(Thread::State::kBlocked, &sem.waiters);
    if (st != base::Status::kOk) {
      LeaveKernel();
      return st;
    }
    if (!sem.alive) {
      LeaveKernel();
      return base::Status::kAborted;
    }
  }
  --sem.count;
  if (sync_observer_ != nullptr) {
    sync_observer_->OnSemAcquired(sem_id, t);
  }
  LeaveKernel();
  return base::Status::kOk;
}

base::Status Kernel::SemSignal(uint32_t sem_id) {
  if (sync_observer_ != nullptr) {
    sync_observer_->OnOpLabel(scheduler_.current(), "SemSignal", sem_id);
  }
  EnterKernel(TrapEntry());
  cpu().Execute(SemFastRegion());
  auto it = semaphores_.find(sem_id);
  if (it == semaphores_.end() || !it->second.alive) {
    LeaveKernel();
    return base::Status::kNotFound;
  }
  Semaphore& sem = it->second;
  cpu().AccessData(sem.sim_addr, 8, /*write=*/true);
  ++sem.count;
  if (sync_observer_ != nullptr) {
    sync_observer_->OnSemSignal(sem_id, scheduler_.current());
  }
  if (Thread* waiter = sem.waiters.DequeueFront()) {
    waiter->waiting_on = nullptr;
    scheduler_.Wake(waiter, base::Status::kOk);
  }
  LeaveKernel();
  return base::Status::kOk;
}

base::Status Kernel::SemDestroy(uint32_t sem_id) {
  auto it = semaphores_.find(sem_id);
  if (it == semaphores_.end() || !it->second.alive) {
    return base::Status::kNotFound;
  }
  if (sync_observer_ != nullptr) {
    sync_observer_->OnGlobalOp(scheduler_.current());
  }
  it->second.alive = false;
  while (Thread* waiter = it->second.waiters.DequeueFront()) {
    waiter->waiting_on = nullptr;
    scheduler_.Wake(waiter, base::Status::kAborted);
  }
  return base::Status::kOk;
}

// --- Memory-based synchronizers ------------------------------------------------------------

base::Status Kernel::MemSyncWait(hw::VirtAddr addr, uint32_t expected, uint64_t timeout_ns) {
  Thread* t = scheduler_.current();
  WPOS_CHECK(t != nullptr) << "MemSyncWait outside thread context";
  Task& task = *t->task();
  // User-level fast path: an atomic compare in shared memory.
  cpu().Execute(MemSyncUserRegion());
  auto pa = ResolveForAccess(task, addr, /*write=*/false);
  if (!pa.ok()) {
    return pa.status();
  }
  AccessUser(task, addr, *pa, 4, /*write=*/false);
  const uint32_t value = machine_->mem().ReadU32(*pa);
  if (value != expected) {
    return base::Status::kOk;  // condition already changed; no kernel entry
  }
  // Slow path: park in the kernel keyed by the physical word, so waiters in
  // different address spaces sharing the page (coerced memory) rendezvous.
  if (sync_observer_ != nullptr) {
    sync_observer_->OnOpLabel(t, "MemSyncWait", *pa & ~3ull);
  }
  EnterKernel(TrapEntry());
  cpu().Execute(MemSyncKernelRegion());
  WaitQueue& queue = memsync_waiters_[*pa & ~3ull];
  StartTimedWake(t, timeout_ns);
  const base::Status st = scheduler_.Block(Thread::State::kBlocked, &queue);
  if (st == base::Status::kOk && sync_observer_ != nullptr) {
    sync_observer_->OnChannelRecv(*pa & ~3ull, t);
  }
  LeaveKernel();
  return st;
}

uint32_t Kernel::MemSyncWake(hw::VirtAddr addr, uint32_t count) {
  Thread* t = scheduler_.current();
  WPOS_CHECK(t != nullptr) << "MemSyncWake outside thread context";
  cpu().Execute(MemSyncUserRegion());
  auto pa = ResolveForAccess(*t->task(), addr, /*write=*/false);
  if (!pa.ok()) {
    return 0;
  }
  auto it = memsync_waiters_.find(*pa & ~3ull);
  if (it == memsync_waiters_.end() || it->second.empty()) {
    return 0;  // nobody parked: pure user-level operation
  }
  // EnterKernel is a scheduling point under exploration: another thread may
  // run MemSyncWait and rehash the table before we resume, invalidating the
  // iterator. The element reference is stable, so hold that instead.
  WaitQueue* queue = &it->second;
  if (sync_observer_ != nullptr) {
    sync_observer_->OnOpLabel(t, "MemSyncWake", *pa & ~3ull);
  }
  EnterKernel(TrapEntry());
  cpu().Execute(MemSyncKernelRegion());
  if (sync_observer_ != nullptr) {
    sync_observer_->OnChannelSend(*pa & ~3ull, t);
  }
  uint32_t woken = 0;
  while (woken < count) {
    Thread* waiter = queue->DequeueFront();
    if (waiter == nullptr) {
      break;
    }
    waiter->waiting_on = nullptr;
    scheduler_.Wake(waiter, base::Status::kOk);
    ++woken;
  }
  LeaveKernel();
  return woken;
}

// --- Clocks and timers --------------------------------------------------------------------------

uint64_t Kernel::NowNs() {
  cpu().Execute(ClockRegion());
  return cpu().CyclesToNs(cpu().cycles());
}

base::Status Kernel::SleepNs(uint64_t ns) {
  Thread* t = scheduler_.current();
  WPOS_CHECK(t != nullptr) << "SleepNs outside thread context";
  EnterKernel(TrapEntry());
  cpu().Execute(TimerArmRegion());
  StartTimedWake(t, ns);
  const base::Status st = scheduler_.Block(Thread::State::kBlocked, nullptr);
  LeaveKernel();
  return st == base::Status::kTimedOut ? base::Status::kOk : st;
}

base::Status Kernel::StallForever() {
  Thread* t = scheduler_.current();
  WPOS_CHECK(t != nullptr) << "StallForever outside thread context";
  // No timed wake: nothing in the simulation ever wakes this thread except
  // an abort (TerminateTask). This is the kStallTask fault mode's wedge —
  // the thread holds whatever it holds and stops making progress.
  return scheduler_.Block(Thread::State::kBlocked, nullptr);
}

base::Result<uint32_t> Kernel::TimerArmPeriodic(Task& task, PortName port, uint64_t period_ns) {
  cpu().Execute(TimerArmRegion());
  auto p = task.port_space().LookupReceive(port);
  if (!p.ok()) {
    return p.status();
  }
  const uint32_t id = next_timer_id_++;
  PeriodicTimer timer;
  timer.task = &task;
  timer.port = *p;
  timer.period_cycles = cpu().NsToCycles(period_ns);
  if (timer.period_cycles == 0) {
    return base::Status::kInvalidArgument;
  }
  timers_.emplace(id, timer);
  ArmTimer(id);
  return id;
}

base::Status Kernel::TimerCancel(uint32_t timer_id) {
  auto it = timers_.find(timer_id);
  if (it == timers_.end() || it->second.cancelled) {
    return base::Status::kNotFound;
  }
  it->second.cancelled = true;
  return base::Status::kOk;
}

void Kernel::ArmTimer(uint32_t timer_id) {
  auto it = timers_.find(timer_id);
  if (it == timers_.end() || it->second.cancelled) {
    return;
  }
  machine_->ScheduleAfter(it->second.period_cycles, [this, timer_id] {
    auto timer_it = timers_.find(timer_id);
    if (timer_it == timers_.end() || timer_it->second.cancelled) {
      return;
    }
    PeriodicTimer& timer = timer_it->second;
    cpu().Execute(TimerFireRegion());
    if (!timer.port->dead() && timer.port->queue.size() < timer.port->queue_limit) {
      auto qm = std::make_unique<QueuedMessage>();
      qm->msg_id = 0x2000 + timer_id;
      qm->kernel_buffer = heap_->Allocate(64);
      qm->send_cycle = cpu().cycles();
      timer.port->queue.push_back(std::move(qm));
      WakeOneReceiver(timer.port);
    }
    ArmTimer(timer_id);
  });
}

uint64_t Kernel::TrapClockGetTimeNs() {
  Thread* t = scheduler_.current();
  WPOS_CHECK(t != nullptr);
  EnterKernel(TrapEntry());
  const uint64_t now = NowNs();
  LeaveKernel();
  return now;
}

}  // namespace mk
