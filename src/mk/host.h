// Hosts and processor sets — the Mach abstraction of the machine itself.
// The simulated machine is a uniprocessor, so processor sets act as
// scheduling-admission groups rather than real partitions; the API shape is
// what WPOS's personality-neutral code programmed against.
#ifndef SRC_MK_HOST_H_
#define SRC_MK_HOST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/status.h"

namespace mk {

class Task;

struct HostInfo {
  std::string name;
  uint32_t cpu_count = 1;
  uint64_t cpu_mhz = 0;
  uint64_t memory_bytes = 0;
  uint64_t page_size = 4096;
};

class ProcessorSet {
 public:
  ProcessorSet(uint32_t id, std::string name, bool enabled)
      : id_(id), name_(std::move(name)), enabled_(enabled) {}

  uint32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  bool enabled() const { return enabled_; }
  void set_enabled(bool e) { enabled_ = e; }

  uint64_t tasks_assigned = 0;

 private:
  uint32_t id_;
  std::string name_;
  bool enabled_;
};

class Host {
 public:
  explicit Host(HostInfo info = HostInfo()) : info_(std::move(info)) {
    // The default pset always exists and is always enabled.
    psets_.push_back(std::make_unique<ProcessorSet>(0, "default", true));
  }

  const HostInfo& info() const { return info_; }
  void set_info(HostInfo info) { info_ = std::move(info); }

  ProcessorSet* default_pset() { return psets_.front().get(); }
  ProcessorSet* CreateProcessorSet(const std::string& name) {
    psets_.push_back(std::make_unique<ProcessorSet>(next_id_++, name, true));
    return psets_.back().get();
  }
  ProcessorSet* FindProcessorSet(uint32_t id) {
    for (auto& ps : psets_) {
      if (ps->id() == id) {
        return ps.get();
      }
    }
    return nullptr;
  }
  const std::vector<std::unique_ptr<ProcessorSet>>& psets() const { return psets_; }

  base::Status AssignTask(Task& task, ProcessorSet* pset);

 private:
  HostInfo info_;
  std::vector<std::unique_ptr<ProcessorSet>> psets_;
  uint32_t next_id_ = 1;
};

}  // namespace mk

#endif  // SRC_MK_HOST_H_
