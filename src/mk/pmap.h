// pmap: the machine-dependent translation layer (Tevanian's architecture),
// one per task. Holds the virtual-to-physical mappings currently installed
// for the task and supplies PTE addresses so the CPU model can charge
// hardware page walks realistically.
#ifndef SRC_MK_PMAP_H_
#define SRC_MK_PMAP_H_

#include <cstdint>
#include <unordered_map>

#include "src/hw/types.h"
#include "src/mk/ids.h"

namespace mk {

class Pmap {
 public:
  // `pt_base` is the simulated physical address of this task's page tables;
  // the page-walk cost model reads PTEs there.
  explicit Pmap(hw::PhysAddr pt_base) : pt_base_(pt_base) {}

  struct Mapping {
    hw::PhysAddr frame = 0;
    Prot prot = Prot::kNone;
  };

  void Enter(uint64_t vpn, hw::PhysAddr frame, Prot prot) {
    mappings_[vpn] = Mapping{frame, prot};
  }
  void Remove(uint64_t vpn) { mappings_.erase(vpn); }
  void RemoveRange(uint64_t first_vpn, uint64_t count) {
    for (uint64_t i = 0; i < count; ++i) {
      mappings_.erase(first_vpn + i);
    }
  }
  void ProtectRange(uint64_t first_vpn, uint64_t count, Prot prot) {
    for (uint64_t i = 0; i < count; ++i) {
      auto it = mappings_.find(first_vpn + i);
      if (it != mappings_.end()) {
        it->second.prot = prot;
      }
    }
  }

  const Mapping* Lookup(uint64_t vpn) const {
    auto it = mappings_.find(vpn);
    return it == mappings_.end() ? nullptr : &it->second;
  }

  // Simulated address of the PTE for `vpn`. The table is modelled as a 64 KB
  // window (16 K entries of 4 bytes) per task; sparse address spaces hash
  // into it, which is adequate for the cache model.
  static constexpr uint64_t kPteWindowEntries = 16 * 1024;
  hw::PhysAddr PteAddr(uint64_t vpn) const {
    return pt_base_ + (vpn & (kPteWindowEntries - 1)) * 4;
  }

  size_t resident() const { return mappings_.size(); }

 private:
  hw::PhysAddr pt_base_;
  std::unordered_map<uint64_t, Mapping> mappings_;
};

}  // namespace mk

#endif  // SRC_MK_PMAP_H_
