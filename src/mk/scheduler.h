// Priority scheduler over ucontext green threads.
//
// The scheduler runs in the "kernel main" context; threads swap back to it
// whenever they block, yield, or are preempted at a kernel entry. Direct
// handoff (SwitchTo) transfers the CPU straight to a named thread — the
// optimization the reworked RPC relies on.
//
// Every dispatch charges the modelled context-switch cost, including the
// pmap activation and TLB flush when the incoming thread belongs to a
// different task.
#ifndef SRC_MK_SCHEDULER_H_
#define SRC_MK_SCHEDULER_H_

#include <array>
#include <deque>
#include <vector>

#include "src/mk/context.h"

#include "src/mk/sync_observer.h"
#include "src/mk/thread.h"

namespace mk {

class Kernel;
class Task;

// Hook by which the schedule-space explorer (src/mk/analysis/explore/) takes
// control of dispatch decisions. With no policy installed the scheduler's
// behaviour is exactly the stock priority scan — the policy path is never
// entered, so the disabled case is byte-identical.
class SchedulePolicy {
 public:
  virtual ~SchedulePolicy() = default;

  // Dispatch decision. `candidates` lists every runnable thread in the stock
  // scheduler's scan order (priority high to low, FIFO within a priority,
  // disabled processor sets skipped); `natural` is the index the stock
  // scheduler would pick (the handoff hint when one is pending, else the
  // front of the scan). `previous` ran before this decision (nullptr at
  // boot); `reason` is why it stopped. Returns the index to dispatch.
  virtual size_t PickIndex(const std::vector<Thread*>& candidates, size_t natural,
                           Thread* previous, SwitchReason reason) = 0;

  // Kernel-entry preemption point. `candidates` is `current` followed by all
  // runnable threads in scan order. Returning `current` means no preemption
  // — the thread continues with no context switch and no cost charged;
  // returning another candidate forces a preemptive switch to it.
  virtual Thread* OnPreemptPoint(Thread* current, const std::vector<Thread*>& candidates) = 0;
};

class Scheduler {
 public:
  explicit Scheduler(Kernel* kernel) : kernel_(kernel) {}

  Thread* current() const { return current_; }
  Task* current_task() const;

  // Main loop: dispatches ready threads until none are ready and no machine
  // event can make one ready. Called once by Kernel::Run.
  void Run();

  // --- Called from inside a running thread -----------------------------------
  // Give up the CPU but stay ready.
  void Yield();
  // Block the current thread on `queue` (optional) until woken.
  // Returns the thread's wait_status (kOk, kTimedOut, kAborted).
  base::Status Block(Thread::State reason_unused, WaitQueue* queue);
  // Block, then hand the CPU directly to `next` (which must be ready).
  base::Status BlockAndHandoff(WaitQueue* queue, Thread* next);
  // Stay runnable but hand the CPU directly to `next`.
  void HandoffTo(Thread* next);
  // Terminate the current thread; does not return.
  [[noreturn]] void ExitCurrent();

  // --- Called from anywhere ----------------------------------------------------
  void MakeReady(Thread* t);
  void Wake(Thread* t, base::Status wait_status);
  void StartThread(Thread* t);  // embryo -> ready

  // --- Schedule-space exploration ----------------------------------------------
  // Installs (or clears, with nullptr) the dispatch policy. Host-side only;
  // with no policy every dispatch runs the stock scan unchanged.
  void set_policy(SchedulePolicy* policy) { policy_ = policy; }
  SchedulePolicy* policy() const { return policy_; }
  // Kernel-entry preemption point (called by Kernel::EnterKernel): consults
  // the policy, which may force a preemptive switch to another runnable
  // thread. A single null test when no policy is installed.
  void PreemptPoint();

  uint64_t context_switches() const { return context_switches_; }
  uint64_t address_space_switches() const { return space_switches_; }

  // Timeslice in cycles; a thread that has been on-CPU longer than this is
  // preempted at its next kernel entry.
  uint64_t quantum_cycles = 1'000'000;

  // Ablation knob: with direct handoff disabled, RPC rendezvous go through
  // the ordinary ready queue (wake + full dispatch) instead of switching
  // straight to the peer.
  bool handoff_enabled = true;

 private:
  friend class Kernel;

  Thread* PickNext();
  Thread* PickNextWithPolicy();
  SyncObserver* observer() const;
  void DispatchLoop();
  // Switch from the scheduler context into `t`.
  void SwitchInto(Thread* t);
  // Called in thread context: swap back to the scheduler context. `final`
  // marks the thread as never resuming (termination path).
  void SwapOut(bool final = false);
  static void Trampoline();

  Kernel* kernel_;
  SchedulePolicy* policy_ = nullptr;
  Thread* last_running_ = nullptr;  // thread that most recently gave up the CPU
  SwitchReason last_reason_ = SwitchReason::kFirst;
  Thread* current_ = nullptr;
  Thread* handoff_hint_ = nullptr;
  bool handoff_was_hint_ = false;
  Task* last_task_ = nullptr;  // address space currently "live" on the CPU
  std::array<std::deque<Thread*>, Thread::kNumPriorities> ready_;
  size_t ready_count_ = 0;
  void* main_ctx_sp_ = nullptr;
  uint64_t context_switches_ = 0;
  uint64_t space_switches_ = 0;
  bool running_ = false;
};

}  // namespace mk

#endif  // SRC_MK_SCHEDULER_H_
