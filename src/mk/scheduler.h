// Priority scheduler over ucontext green threads.
//
// The scheduler runs in the "kernel main" context; threads swap back to it
// whenever they block, yield, or are preempted at a kernel entry. Direct
// handoff (SwitchTo) transfers the CPU straight to a named thread — the
// optimization the reworked RPC relies on.
//
// Every dispatch charges the modelled context-switch cost, including the
// pmap activation and TLB flush when the incoming thread belongs to a
// different task.
#ifndef SRC_MK_SCHEDULER_H_
#define SRC_MK_SCHEDULER_H_

#include <array>
#include <deque>

#include "src/mk/context.h"

#include "src/mk/thread.h"

namespace mk {

class Kernel;
class Task;

class Scheduler {
 public:
  explicit Scheduler(Kernel* kernel) : kernel_(kernel) {}

  Thread* current() const { return current_; }
  Task* current_task() const;

  // Main loop: dispatches ready threads until none are ready and no machine
  // event can make one ready. Called once by Kernel::Run.
  void Run();

  // --- Called from inside a running thread -----------------------------------
  // Give up the CPU but stay ready.
  void Yield();
  // Block the current thread on `queue` (optional) until woken.
  // Returns the thread's wait_status (kOk, kTimedOut, kAborted).
  base::Status Block(Thread::State reason_unused, WaitQueue* queue);
  // Block, then hand the CPU directly to `next` (which must be ready).
  base::Status BlockAndHandoff(WaitQueue* queue, Thread* next);
  // Stay runnable but hand the CPU directly to `next`.
  void HandoffTo(Thread* next);
  // Terminate the current thread; does not return.
  [[noreturn]] void ExitCurrent();

  // --- Called from anywhere ----------------------------------------------------
  void MakeReady(Thread* t);
  void Wake(Thread* t, base::Status wait_status);
  void StartThread(Thread* t);  // embryo -> ready

  uint64_t context_switches() const { return context_switches_; }
  uint64_t address_space_switches() const { return space_switches_; }

  // Timeslice in cycles; a thread that has been on-CPU longer than this is
  // preempted at its next kernel entry.
  uint64_t quantum_cycles = 1'000'000;

  // Ablation knob: with direct handoff disabled, RPC rendezvous go through
  // the ordinary ready queue (wake + full dispatch) instead of switching
  // straight to the peer.
  bool handoff_enabled = true;

 private:
  friend class Kernel;

  Thread* PickNext();
  void DispatchLoop();
  // Switch from the scheduler context into `t`.
  void SwitchInto(Thread* t);
  // Called in thread context: swap back to the scheduler context. `final`
  // marks the thread as never resuming (termination path).
  void SwapOut(bool final = false);
  static void Trampoline();

  Kernel* kernel_;
  Thread* current_ = nullptr;
  Thread* handoff_hint_ = nullptr;
  bool handoff_was_hint_ = false;
  Task* last_task_ = nullptr;  // address space currently "live" on the CPU
  std::array<std::deque<Thread*>, Thread::kNumPriorities> ready_;
  size_t ready_count_ = 0;
  void* main_ctx_sp_ = nullptr;
  uint64_t context_switches_ = 0;
  uint64_t space_switches_ = 0;
  bool running_ = false;
};

}  // namespace mk

#endif  // SRC_MK_SCHEDULER_H_
