// Kernel observability: event tracer, span profiler and metric registry.
//
// Everything here is host-side bookkeeping over the simulated machine — the
// tracer never executes simulated instructions, touches the modelled caches
// or advances the cycle clock, so enabling it cannot perturb measured
// numbers (tested by trace_test.cc's zero-perturbation case). Three layers:
//
//   1. Event ring: a fixed-capacity ring buffer of typed events (see
//      events.h) stamped with the simulated cycle clock and the current
//      thread/task. On overflow the oldest events are dropped.
//   2. Span profiler: per-operation spans (a trap, an RPC from client entry
//      through server dispatch to reply, a fault, a server-loop handler)
//      that capture hw::CpuCounters deltas per phase. Aggregated per span
//      kind, they reproduce the paper's Table 2 decomposition for every
//      operation of a workload; a CPU execute-observer additionally builds a
//      flat profile of code regions by cycles and I-cache misses.
//   3. Metrics: named counters / high-water gauges / log-scaled histograms
//      (per-server RPC latency, port queue depths) in a MetricRegistry.
//
// Exporters for Chrome trace-event JSON, a human-readable flat profile and
// a JSON metrics dump live in exporters.h.
#ifndef SRC_MK_TRACE_TRACER_H_
#define SRC_MK_TRACE_TRACER_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/hw/cpu.h"
#include "src/mk/ids.h"
#include "src/mk/trace/events.h"
#include "src/mk/trace/metrics.h"

namespace mk {

class Scheduler;
class Thread;

namespace trace {

struct TraceEvent {
  EventType type = EventType::kCount;
  uint64_t cycle = 0;
  ThreadId thread = 0;  // 0 = scheduler / no thread context
  TaskId task = 0;
  uint64_t a = 0;
  uint64_t b = 0;
};

class Tracer {
 public:
  Tracer(hw::Cpu* cpu, Scheduler* scheduler, size_t capacity);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Tracing starts disabled; while disabled every hook is a cheap no-op.
  // Enabling installs the CPU execute-observer that feeds the flat profile.
  void Enable();
  void Disable();
  bool enabled() const { return enabled_; }

  // --- Event ring ------------------------------------------------------------
  void Emit(EventType type, uint64_t a = 0, uint64_t b = 0);
  // Buffered events, oldest first.
  std::vector<TraceEvent> Events() const;
  uint64_t total_emitted() const { return total_emitted_; }
  uint64_t dropped() const { return total_emitted_ > ring_.size() ? total_emitted_ - ring_.size() : 0; }
  size_t capacity() const { return ring_.size(); }

  // --- Span profiler ---------------------------------------------------------
  // Begins a span, emitting `begin_event` (payload a = span id, b = `b`).
  // Returns 0 when disabled; 0 is a valid no-op span id everywhere below.
  //
  // Causal linkage: the new span joins the current thread's TraceContext —
  // it becomes a child of the context's open span (parent 0 = a root span,
  // which also starts a fresh trace_id) — and the context then points at it
  // until the matching EndSpan restores the parent. The kernel's RPC paths
  // carry the context across rendezvous (see Kernel::DeliverRpcToServer),
  // so spans opened inside a server handler chain onto the caller's trace.
  uint64_t BeginSpan(SpanKind kind, EventType begin_event, uint64_t b = 0);
  // Closes the current phase and starts the next one. An RPC span's
  // kRpcDispatch boundary additionally closes any pending queue wait (see
  // MarkQueued) into the mk.rpc.queue_wait_cycles histograms.
  void MarkPhase(uint64_t span, EventType phase_event, uint64_t b = 0);
  // Records that the operation behind `span` was parked in a port's
  // waiting_clients queue at the current cycle, emitting `event`. The wait
  // ends at the span's next MarkPhase (the dispatch boundary).
  void MarkQueued(uint64_t span, EventType event, uint64_t b = 0);
  // Attaches a label (e.g. the server task name); selects the latency
  // histogram the span's total cycles are recorded into at EndSpan.
  void LabelSpan(uint64_t span, const std::string& label);
  void EndSpan(uint64_t span, EventType end_event, uint64_t b = 0);

  struct SpanStats {
    uint64_t count = 0;
    hw::CpuCounters total;
    std::array<hw::CpuCounters, kMaxSpanPhases> phases;
  };
  const SpanStats& stats(SpanKind kind) const { return stats_[static_cast<int>(kind)]; }

  // --- Causal span registry ---------------------------------------------------
  // Everything the request-tree / flow exporters need about a span, kept for
  // the tracer's whole lifetime (unlike the event ring, which drops oldest).
  struct SpanMeta {
    SpanKind kind = SpanKind::kCount;
    uint64_t trace_id = 0;
    uint64_t parent = 0;       // parent span id, 0 = root of its trace
    ThreadId thread = 0;       // thread that opened the span
    TaskId task = 0;
    std::string label;
    uint64_t arg = 0;          // begin-event payload (port id, op code, fd)
    uint64_t end_arg = 0;      // end-event payload (completion status)
    uint64_t begin_cycle = 0;
    uint64_t end_cycle = 0;    // 0 while the span is still open
    bool ended = false;
    // RPC hop boundaries: 0 = never reached. queued/dispatch/reply bracket
    // the three latency buckets (client send, port queue wait, handler).
    uint64_t queued_cycle = 0;
    uint64_t dispatch_cycle = 0;
    uint64_t reply_cycle = 0;
  };
  // Spans by id (begin order). Includes still-open spans (ended == false).
  const std::map<uint64_t, SpanMeta>& spans() const { return span_meta_; }
  // Trace id a span belongs to; 0 for unknown/no-op spans.
  uint64_t SpanTraceId(uint64_t span_id) const;

  // --- Flat profile ----------------------------------------------------------
  struct RegionProfile {
    std::string name;
    uint64_t calls = 0;
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    uint64_t icache_misses = 0;
  };
  // Per-code-region execution totals, sorted by cycles (descending; ties by
  // name so the order is deterministic).
  std::vector<RegionProfile> FlatProfile() const;

  // --- Metrics ---------------------------------------------------------------
  MetricRegistry& metrics() { return metrics_; }
  const MetricRegistry& metrics() const { return metrics_; }

 private:
  struct ActiveSpan {
    SpanKind kind = SpanKind::kCount;
    int phase = 0;
    hw::CpuCounters begin;
    hw::CpuCounters phase_begin;
    std::string label;
    ThreadId owner = 0;  // thread whose TraceContext EndSpan restores
    uint64_t parent = 0;
    uint64_t trace_id = 0;
  };
  struct RegionTotals {
    uint64_t calls = 0;
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    uint64_t icache_misses = 0;
  };

  void Push(EventType type, uint64_t a, uint64_t b);

  hw::Cpu* cpu_;
  Scheduler* scheduler_;
  bool enabled_ = false;

  std::vector<TraceEvent> ring_;
  size_t ring_next_ = 0;        // next slot to overwrite
  uint64_t total_emitted_ = 0;  // events ever emitted (>= buffered)

  uint64_t next_span_id_ = 1;
  uint64_t next_trace_id_ = 1;
  std::unordered_map<uint64_t, ActiveSpan> active_spans_;
  std::map<uint64_t, SpanMeta> span_meta_;
  std::array<SpanStats, static_cast<int>(SpanKind::kCount)> stats_{};

  // Keyed by region base address (stable: the code layout is append-only
  // and process-global); names resolved at FlatProfile() time.
  std::map<hw::PhysAddr, RegionTotals> profile_;

  MetricRegistry metrics_;
};

// RAII span for functions with many exit paths: begins on construction,
// ends (emitting `end_event`) when the scope unwinds. Declare it first in
// the function so the span closes after every other local — the counter
// delta then covers the whole call.
class ScopedSpan {
 public:
  ScopedSpan(Tracer& tracer, SpanKind kind, EventType begin_event, EventType end_event,
             uint64_t b = 0)
      : tracer_(tracer), end_event_(end_event), id_(tracer.BeginSpan(kind, begin_event, b)) {}
  ~ScopedSpan() { tracer_.EndSpan(id_, end_event_, end_b_); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  uint64_t id() const { return id_; }
  // Payload for the end event (e.g. a status), set before returning.
  void set_end_payload(uint64_t b) { end_b_ = b; }

 private:
  Tracer& tracer_;
  EventType end_event_;
  uint64_t id_;
  uint64_t end_b_ = 0;
};

}  // namespace trace
}  // namespace mk

#endif  // SRC_MK_TRACE_TRACER_H_
