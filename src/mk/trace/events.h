// Central registry of kernel trace events and span kinds.
//
// Every event the tracer can record is declared here, once, with its
// exported name. Emit sites refer to events only through these enums —
// tools/lint.py rejects string-literal event names at emit sites — so the
// set of event names in a trace is auditable in one place and traces from
// different builds stay comparable.
#ifndef SRC_MK_TRACE_EVENTS_H_
#define SRC_MK_TRACE_EVENTS_H_

#include <cstdint>

namespace mk {
namespace trace {

// Instant events recorded into the ring buffer. The `a`/`b` payload fields
// are event-specific (documented per entry).
enum class EventType : uint8_t {
  kThreadSwitch = 0,   // a = incoming thread id, b = 1 if direct handoff
  kThreadExit,         // a = thread id
  kTrapEnter,          // instant at every kernel entry; a = entry ordinal
  kTrapExit,           // instant at every kernel exit
  kTrapCall,           // trap span begin (user stub onward); a = span id
  kTrapReturn,         // trap span end; a = span id
  kRpcCall,            // RPC span begin; a = span id, b = port id
  kRpcQueued,          // instant: caller parked in waiting_clients; a = span id, b = port id
  kRpcDispatch,        // RPC span phase; a = span id, b = server thread id
  kRpcReply,           // RPC span phase; a = span id, b = reply length
  kRpcReturn,          // RPC span end; a = span id, b = completion status
  kRpcRobustCall,      // robust-call span begin (covers all attempts); a = span id
  kRpcRobustReturn,    // robust-call span end; a = span id, b = final status
  kApiCall,            // personality API span begin; a = span id, b = handle/fd
  kApiReturn,          // personality API span end; a = span id, b = status
  kIpcSend,            // legacy-send span begin; a = span id, b = msg id
  kIpcSendDone,        // legacy-send span end; a = span id
  kIpcReceive,         // legacy-receive span begin; a = span id
  kIpcReceiveDone,     // legacy-receive span end; a = span id, b = msg id
  kVmFault,            // fault span begin; a = span id, b = faulting vaddr
  kVmFaultDone,        // fault span end; a = span id, b = 1 if write fault
  kInterrupt,          // a = interrupt line
  kServerDispatch,     // server-op span begin; a = span id, b = op code
  kServerDone,         // server-op span end; a = span id, b = op code
  kFaultInjected,      // a = fault point ordinal, b = fault mode ordinal
  kTaskDeath,          // a = task id, b = number of ports destroyed with it
  kServerRestart,      // a = respawned task id, b = restart count for name
  kSchedPreempt,       // explorer-forced preemption; a = heir thread id, b = preempted id
  kRpcShed,            // caller shed by admission control; a = span id, b = port id
  kWatchdogKill,       // watchdog force-terminated a wedged server; a = task id, b = missed ns
  kFsCacheHit,         // client FS cache served without an RPC; a = handle, b = offset
  kFsCacheInvalidate,  // client FS cache dropped state; a = handle (0 = all), b = generation
  kPagerWriteback,     // dirty mapped page pushed to its pager; a = object id, b = page index
  kVmObjectInvalidate, // mapped-file pages dropped for refault; a = object id, b = pages dropped
  kCount,
};

const char* EventName(EventType type);

// Span kinds: operations the span profiler attributes CpuCounters deltas to,
// phase by phase. Phase boundaries are marked by the events noted above.
enum class SpanKind : uint8_t {
  kTrap = 0,    // one phase: kernel
  kRpc,         // three phases: client entry, server, reply return
  kIpcSend,     // one phase
  kIpcReceive,  // one phase
  kVmFault,     // one phase
  kServerOp,    // one phase: server-loop handler body
  kRpcRobust,   // one phase: a whole RpcCallRobust, all attempts included
  kApi,         // one phase: a personality API operation (read(), DosRead, ...)
  kCount,
};

// Upper bound on phases any span kind uses (the RPC span's three).
inline constexpr int kMaxSpanPhases = 3;

const char* SpanName(SpanKind kind);
// Name of phase `phase` (0-based) of `kind`; nullptr past the last phase.
const char* SpanPhaseName(SpanKind kind, int phase);
// How many phases `kind` has.
int SpanPhaseCount(SpanKind kind);

}  // namespace trace
}  // namespace mk

#endif  // SRC_MK_TRACE_EVENTS_H_
