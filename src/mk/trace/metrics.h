// Metric registry: named counters, high-water gauges and log-scaled cycle
// histograms, recorded host-side only (no simulated cost). Names are ordered
// (std::map) so every export is deterministic.
#ifndef SRC_MK_TRACE_METRICS_H_
#define SRC_MK_TRACE_METRICS_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>

namespace mk {
namespace trace {

// Power-of-two bucketed histogram: bucket i counts values in [2^(i-1), 2^i)
// (bucket 0 counts zero). 64 buckets cover the full uint64 range, which is
// plenty for cycle latencies.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(uint64_t value);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const { return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_; }
  const std::array<uint64_t, kBuckets>& buckets() const { return buckets_; }
  // Upper bound of the bucket containing the p-th percentile (p in [0,100]).
  uint64_t PercentileBound(double p) const;

 private:
  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = ~0ull;
  uint64_t max_ = 0;
};

class MetricRegistry {
 public:
  // Monotonic counter; creates it at zero on first use.
  uint64_t& Counter(const std::string& name);
  // Gauge that remembers the highest value observed (queue depth HWMs).
  void GaugeMax(const std::string& name, uint64_t value);
  void GaugeSet(const std::string& name, uint64_t value);
  Histogram& Hist(const std::string& name);

  const std::map<std::string, uint64_t>& counters() const { return counters_; }
  const std::map<std::string, uint64_t>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& hists() const { return hists_; }

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, uint64_t> gauges_;
  std::map<std::string, Histogram> hists_;
};

}  // namespace trace
}  // namespace mk

#endif  // SRC_MK_TRACE_METRICS_H_
