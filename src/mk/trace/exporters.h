// Sinks for the tracer's data sets:
//   WriteChromeTrace  — Chrome trace-event JSON (chrome://tracing, Perfetto):
//                       span slices with per-phase sub-slices, instant
//                       events, thread-name metadata, and flow arrows
//                       linking cross-thread parent/child spans of a trace.
//   WriteFlatProfile  — human-readable top-N code regions by cycles plus the
//                       per-span-kind phase breakdown (the Table 2 shape).
//   WriteMetricsJson  — machine-readable dump of counters, gauges,
//                       histograms, span aggregates and the CPU counters.
//   WriteRequestTrees — deterministic text report of every causal request
//                       tree: one indented tree per trace id with per-hop
//                       cycle attribution (client send / port queue wait /
//                       server handler / reply return) and the critical
//                       path marked.
// All sinks are read-only over the kernel and charge no simulated cycles.
#ifndef SRC_MK_TRACE_EXPORTERS_H_
#define SRC_MK_TRACE_EXPORTERS_H_

#include <cstddef>
#include <ostream>

namespace mk {

class Kernel;

namespace trace {

void WriteChromeTrace(std::ostream& os, Kernel& kernel);
void WriteFlatProfile(std::ostream& os, Kernel& kernel, size_t top_n = 25);
void WriteMetricsJson(std::ostream& os, Kernel& kernel);
void WriteRequestTrees(std::ostream& os, Kernel& kernel);

}  // namespace trace
}  // namespace mk

#endif  // SRC_MK_TRACE_EXPORTERS_H_
