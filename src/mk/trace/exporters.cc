#include "src/mk/trace/exporters.h"

#include <cinttypes>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/mk/kernel.h"
#include "src/mk/trace/tracer.h"

namespace mk {
namespace trace {

namespace {

// Microseconds (the trace-event "ts" unit) from simulated cycles, printed
// with fixed precision so exports are byte-stable.
std::string TsUs(uint64_t cycles, uint64_t mhz) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(cycles) / static_cast<double>(mhz));
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// Classification of ring events into span roles for slice reconstruction.
bool SpanBeginKind(EventType t, SpanKind* kind) {
  switch (t) {
    case EventType::kTrapCall:
      *kind = SpanKind::kTrap;
      return true;
    case EventType::kRpcCall:
      *kind = SpanKind::kRpc;
      return true;
    case EventType::kIpcSend:
      *kind = SpanKind::kIpcSend;
      return true;
    case EventType::kIpcReceive:
      *kind = SpanKind::kIpcReceive;
      return true;
    case EventType::kVmFault:
      *kind = SpanKind::kVmFault;
      return true;
    case EventType::kServerDispatch:
      *kind = SpanKind::kServerOp;
      return true;
    case EventType::kRpcRobustCall:
      *kind = SpanKind::kRpcRobust;
      return true;
    case EventType::kApiCall:
      *kind = SpanKind::kApi;
      return true;
    default:
      return false;
  }
}

bool IsSpanPhase(EventType t) { return t == EventType::kRpcDispatch || t == EventType::kRpcReply; }

bool IsSpanEnd(EventType t) {
  switch (t) {
    case EventType::kTrapReturn:
    case EventType::kRpcReturn:
    case EventType::kIpcSendDone:
    case EventType::kIpcReceiveDone:
    case EventType::kVmFaultDone:
    case EventType::kServerDone:
    case EventType::kRpcRobustReturn:
    case EventType::kApiReturn:
      return true;
    default:
      return false;
  }
}

void WriteCounters(std::ostream& os, const hw::CpuCounters& c) {
  os << "{\"instructions\":" << c.instructions << ",\"cycles\":" << c.cycles
     << ",\"bus_cycles\":" << c.bus_cycles << ",\"icache_misses\":" << c.icache_misses
     << ",\"dcache_misses\":" << c.dcache_misses << ",\"tlb_misses\":" << c.tlb_misses
     << ",\"data_accesses\":" << c.data_accesses << ",\"uncached_accesses\":" << c.uncached_accesses
     << "}";
}

}  // namespace

void WriteChromeTrace(std::ostream& os, Kernel& kernel) {
  Tracer& tracer = kernel.tracer();
  const uint64_t mhz = kernel.cpu().config().mhz;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& json) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "\n" << json;
  };

  // Process/thread naming metadata so Perfetto shows task and thread names.
  for (const auto& task : kernel.tasks()) {
    emit("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" + std::to_string(task->id()) +
         ",\"args\":{\"name\":\"" + JsonEscape(task->name()) + "\"}}");
    for (const Thread* t : task->threads()) {
      emit("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" + std::to_string(task->id()) +
           ",\"tid\":" + std::to_string(t->id()) + ",\"args\":{\"name\":\"" +
           JsonEscape(t->name()) + "\"}}");
    }
  }

  struct OpenSpan {
    SpanKind kind;
    uint64_t begin_cycle = 0;
    ThreadId tid = 0;
    TaskId pid = 0;
    uint64_t b = 0;
    // Phase boundary cycles (phase i spans boundary[i] .. boundary[i+1]).
    std::vector<uint64_t> boundaries;
  };
  std::map<uint64_t, OpenSpan> open;

  for (const TraceEvent& e : tracer.Events()) {
    SpanKind kind;
    if (SpanBeginKind(e.type, &kind)) {
      OpenSpan span;
      span.kind = kind;
      span.begin_cycle = e.cycle;
      span.tid = e.thread;
      span.pid = e.task;
      span.b = e.b;
      span.boundaries.push_back(e.cycle);
      open[e.a] = span;
    } else if (IsSpanPhase(e.type)) {
      auto it = open.find(e.a);
      if (it != open.end()) {
        it->second.boundaries.push_back(e.cycle);
      }
    } else if (IsSpanEnd(e.type)) {
      auto it = open.find(e.a);
      if (it == open.end()) {
        continue;  // begin fell off the ring
      }
      OpenSpan& span = it->second;
      span.boundaries.push_back(e.cycle);
      const std::string ids =
          ",\"pid\":" + std::to_string(span.pid) + ",\"tid\":" + std::to_string(span.tid);
      emit("{\"ph\":\"X\",\"cat\":\"span\",\"name\":\"" + std::string(SpanName(span.kind)) +
           "\",\"ts\":" + TsUs(span.begin_cycle, mhz) +
           ",\"dur\":" + TsUs(e.cycle - span.begin_cycle, mhz) + ids +
           ",\"args\":{\"span\":" + std::to_string(e.a) + ",\"arg\":" + std::to_string(span.b) +
           "}}");
      for (size_t i = 0; i + 1 < span.boundaries.size(); ++i) {
        const char* phase = SpanPhaseName(span.kind, static_cast<int>(i));
        if (phase == nullptr || span.boundaries.size() <= 2) {
          break;  // single-phase spans need no sub-slice
        }
        emit("{\"ph\":\"X\",\"cat\":\"phase\",\"name\":\"" + std::string(phase) +
             "\",\"ts\":" + TsUs(span.boundaries[i], mhz) +
             ",\"dur\":" + TsUs(span.boundaries[i + 1] - span.boundaries[i], mhz) + ids +
             ",\"args\":{\"span\":" + std::to_string(e.a) + "}}");
      }
      open.erase(it);
    } else {
      // Instant event.
      emit("{\"ph\":\"i\",\"s\":\"t\",\"cat\":\"event\",\"name\":\"" +
           std::string(EventName(e.type)) + "\",\"ts\":" + TsUs(e.cycle, mhz) +
           ",\"pid\":" + std::to_string(e.task) + ",\"tid\":" + std::to_string(e.thread) +
           ",\"args\":{\"a\":" + std::to_string(e.a) + ",\"b\":" + std::to_string(e.b) + "}}");
    }
  }

  // Flow arrows: one "s" -> "f" pair per span whose parent lives on another
  // thread, drawn from the span registry (which, unlike the ring, never
  // drops), so Perfetto connects a client's call slice to the server's
  // handler slice and renders each trace as one causal chain.
  const std::map<uint64_t, Tracer::SpanMeta>& metas = tracer.spans();
  for (const auto& [id, meta] : metas) {
    if (meta.parent == 0) {
      continue;
    }
    auto pit = metas.find(meta.parent);
    if (pit == metas.end() || pit->second.thread == meta.thread) {
      continue;
    }
    const std::string common = ",\"cat\":\"causal\",\"name\":\"trace_" +
                               std::to_string(meta.trace_id) +
                               "\",\"id\":" + std::to_string(id) +
                               ",\"ts\":" + TsUs(meta.begin_cycle, mhz);
    emit("{\"ph\":\"s\"" + common + ",\"pid\":" + std::to_string(pit->second.task) +
         ",\"tid\":" + std::to_string(pit->second.thread) + "}");
    emit("{\"ph\":\"f\",\"bp\":\"e\"" + common + ",\"pid\":" + std::to_string(meta.task) +
         ",\"tid\":" + std::to_string(meta.thread) + "}");
  }
  os << "\n]}\n";
}

void WriteFlatProfile(std::ostream& os, Kernel& kernel, size_t top_n) {
  Tracer& tracer = kernel.tracer();
  char line[256];
  os << "=== span profile (CpuCounters deltas per operation phase) ===\n";
  std::snprintf(line, sizeof(line), "%-12s %10s %-14s %12s %12s %10s %8s %8s %8s\n", "kind",
                "count", "phase", "instr", "cycles", "bus", "icache", "dcache", "tlb");
  os << line;
  for (int k = 0; k < static_cast<int>(SpanKind::kCount); ++k) {
    const SpanKind kind = static_cast<SpanKind>(k);
    const Tracer::SpanStats& st = tracer.stats(kind);
    if (st.count == 0) {
      continue;
    }
    for (int p = 0; p < SpanPhaseCount(kind); ++p) {
      const hw::CpuCounters& c = st.phases[p];
      std::snprintf(line, sizeof(line),
                    "%-12s %10" PRIu64 " %-14s %12" PRIu64 " %12" PRIu64 " %10" PRIu64
                    " %8" PRIu64 " %8" PRIu64 " %8" PRIu64 "\n",
                    p == 0 ? SpanName(kind) : "", p == 0 ? st.count : 0, SpanPhaseName(kind, p),
                    c.instructions, c.cycles, c.bus_cycles, c.icache_misses, c.dcache_misses,
                    c.tlb_misses);
      os << line;
    }
    std::snprintf(line, sizeof(line),
                  "%-12s %10s %-14s %12" PRIu64 " %12" PRIu64 " %10" PRIu64 " %8" PRIu64
                  " %8" PRIu64 " %8" PRIu64 "\n",
                  "", "", "total", st.total.instructions, st.total.cycles, st.total.bus_cycles,
                  st.total.icache_misses, st.total.dcache_misses, st.total.tlb_misses);
    os << line;
  }
  os << "=== top code regions by cycles ===\n";
  std::snprintf(line, sizeof(line), "%-28s %10s %14s %14s %10s\n", "region", "calls", "instr",
                "cycles", "imiss");
  os << line;
  size_t shown = 0;
  for (const Tracer::RegionProfile& r : tracer.FlatProfile()) {
    if (shown++ >= top_n) {
      break;
    }
    std::snprintf(line, sizeof(line),
                  "%-28s %10" PRIu64 " %14" PRIu64 " %14" PRIu64 " %10" PRIu64 "\n",
                  r.name.c_str(), r.calls, r.instructions, r.cycles, r.icache_misses);
    os << line;
  }
}

void WriteMetricsJson(std::ostream& os, Kernel& kernel) {
  Tracer& tracer = kernel.tracer();
  const MetricRegistry& m = tracer.metrics();
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : m.counters()) {
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(name) << "\": " << value;
    first = false;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : m.gauges()) {
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(name) << "\": " << value;
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : m.hists()) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"count\": %" PRIu64 ", \"sum\": %" PRIu64 ", \"min\": %" PRIu64
                  ", \"max\": %" PRIu64 ", \"mean\": %.2f, \"p50\": %" PRIu64 ", \"p99\": %" PRIu64
                  "}",
                  hist.count(), hist.sum(), hist.min(), hist.max(), hist.mean(),
                  hist.PercentileBound(50), hist.PercentileBound(99));
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(name) << "\": " << buf;
    first = false;
  }
  os << "\n  },\n  \"spans\": {";
  first = true;
  for (int k = 0; k < static_cast<int>(SpanKind::kCount); ++k) {
    const SpanKind kind = static_cast<SpanKind>(k);
    const Tracer::SpanStats& st = tracer.stats(kind);
    if (st.count == 0) {
      continue;
    }
    os << (first ? "" : ",") << "\n    \"" << SpanName(kind) << "\": {\"count\": " << st.count
       << ", \"total\": ";
    WriteCounters(os, st.total);
    os << ", \"phases\": {";
    for (int p = 0; p < SpanPhaseCount(kind); ++p) {
      os << (p == 0 ? "" : ", ") << "\"" << SpanPhaseName(kind, p) << "\": ";
      WriteCounters(os, st.phases[p]);
    }
    os << "}}";
    first = false;
  }
  os << "\n  },\n  \"cpu\": ";
  WriteCounters(os, kernel.Counters());
  os << ",\n  \"trace\": {\"emitted\": " << tracer.total_emitted()
     << ", \"dropped\": " << tracer.dropped() << "}\n}\n";
}

void WriteRequestTrees(std::ostream& os, Kernel& kernel) {
  Tracer& tracer = kernel.tracer();
  const std::map<uint64_t, Tracer::SpanMeta>& metas = tracer.spans();

  std::map<TaskId, std::string> task_names;
  for (const auto& task : kernel.tasks()) {
    task_names[task->id()] = task->name();
  }

  // Tree shape: children in span-id (begin) order; roots grouped per trace.
  // Everything iterated here is an ordered map keyed by ids the tracer
  // assigns deterministically, so the report is byte-stable across runs.
  std::map<uint64_t, std::vector<uint64_t>> children;
  std::map<uint64_t, std::vector<uint64_t>> trace_roots;
  for (const auto& [id, meta] : metas) {
    if (meta.parent != 0 && metas.find(meta.parent) != metas.end()) {
      children[meta.parent].push_back(id);
    } else {
      trace_roots[meta.trace_id].push_back(id);
    }
  }

  const auto total_cycles = [&](const Tracer::SpanMeta& m) {
    return m.ended ? m.end_cycle - m.begin_cycle : uint64_t{0};
  };

  // Subtree span count, for the per-trace header line.
  const std::function<size_t(uint64_t)> count_subtree = [&](uint64_t id) {
    size_t n = 1;
    auto cit = children.find(id);
    if (cit != children.end()) {
      for (uint64_t c : cit->second) {
        n += count_subtree(c);
      }
    }
    return n;
  };

  // `critical` marks the hop chain that bounds the request's latency: from
  // every critical node, the child with the largest total is critical too.
  const std::function<void(uint64_t, int, bool)> print_span = [&](uint64_t id, int depth,
                                                                  bool critical) {
    const Tracer::SpanMeta& meta = metas.at(id);
    for (int i = 0; i < depth; ++i) {
      os << "  ";
    }
    os << (critical ? "* " : "- ") << SpanName(meta.kind);
    if (!meta.label.empty()) {
      os << " [" << meta.label << "]";
    }
    os << " span=" << id;
    auto tn = task_names.find(meta.task);
    os << " task=" << (tn != task_names.end() ? tn->second : std::to_string(meta.task));
    if (!meta.ended) {
      os << " OPEN";
    } else {
      os << " total=" << total_cycles(meta);
    }
    // Per-hop latency buckets of an RPC span, from its boundary cycles:
    // begin -> (queued) -> dispatch -> reply -> end. Error calls may never
    // reach a boundary; print only the buckets that exist.
    if (meta.kind == SpanKind::kRpc && meta.dispatch_cycle != 0) {
      const uint64_t send_end = meta.queued_cycle != 0 ? meta.queued_cycle : meta.dispatch_cycle;
      os << " client_send=" << send_end - meta.begin_cycle;
      os << " queue_wait="
       << (meta.queued_cycle != 0 ? meta.dispatch_cycle - meta.queued_cycle : 0);
      if (meta.reply_cycle != 0) {
        os << " server=" << meta.reply_cycle - meta.dispatch_cycle;
        if (meta.ended) {
          os << " reply_return=" << meta.end_cycle - meta.reply_cycle;
        }
      }
    }
    if (meta.ended && meta.end_arg != 0) {
      os << " status=" << meta.end_arg;
    }
    os << "\n";
    auto cit = children.find(id);
    if (cit == children.end()) {
      return;
    }
    // The critical child: largest total, earliest span id breaking ties.
    uint64_t crit_child = 0;
    uint64_t crit_total = 0;
    for (uint64_t c : cit->second) {
      const uint64_t t = total_cycles(metas.at(c));
      if (crit_child == 0 || t > crit_total) {
        crit_child = c;
        crit_total = t;
      }
    }
    for (uint64_t c : cit->second) {
      print_span(c, depth + 1, critical && c == crit_child);
    }
  };

  os << "=== causal request trees (cycles; * = critical path) ===\n";
  for (const auto& [trace_id, roots] : trace_roots) {
    size_t spans = 0;
    uint64_t cycles = 0;
    for (uint64_t r : roots) {
      spans += count_subtree(r);
      cycles += total_cycles(metas.at(r));
    }
    os << "trace " << trace_id << ": " << spans << " span" << (spans == 1 ? "" : "s") << ", "
       << cycles << " cycles\n";
    for (uint64_t r : roots) {
      print_span(r, 1, true);
    }
  }
}

}  // namespace trace
}  // namespace mk
