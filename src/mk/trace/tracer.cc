#include "src/mk/trace/tracer.h"

#include <algorithm>

#include "src/hw/code_layout.h"
#include "src/mk/scheduler.h"
#include "src/mk/task.h"
#include "src/mk/thread.h"

namespace mk {
namespace trace {

const char* EventName(EventType type) {
  switch (type) {
    case EventType::kThreadSwitch:
      return "thread_switch";
    case EventType::kThreadExit:
      return "thread_exit";
    case EventType::kTrapEnter:
      return "trap_enter";
    case EventType::kTrapExit:
      return "trap_exit";
    case EventType::kTrapCall:
      return "trap_call";
    case EventType::kTrapReturn:
      return "trap_return";
    case EventType::kRpcCall:
      return "rpc_call";
    case EventType::kRpcQueued:
      return "rpc_queued";
    case EventType::kRpcDispatch:
      return "rpc_dispatch";
    case EventType::kRpcReply:
      return "rpc_reply";
    case EventType::kRpcReturn:
      return "rpc_return";
    case EventType::kRpcRobustCall:
      return "rpc_robust_call";
    case EventType::kRpcRobustReturn:
      return "rpc_robust_return";
    case EventType::kApiCall:
      return "api_call";
    case EventType::kApiReturn:
      return "api_return";
    case EventType::kIpcSend:
      return "ipc_send";
    case EventType::kIpcSendDone:
      return "ipc_send_done";
    case EventType::kIpcReceive:
      return "ipc_receive";
    case EventType::kIpcReceiveDone:
      return "ipc_receive_done";
    case EventType::kVmFault:
      return "vm_fault";
    case EventType::kVmFaultDone:
      return "vm_fault_done";
    case EventType::kInterrupt:
      return "interrupt";
    case EventType::kServerDispatch:
      return "server_dispatch";
    case EventType::kServerDone:
      return "server_done";
    case EventType::kFaultInjected:
      return "fault_injected";
    case EventType::kTaskDeath:
      return "task_death";
    case EventType::kServerRestart:
      return "server_restart";
    case EventType::kSchedPreempt:
      return "sched_preempt";
    case EventType::kRpcShed:
      return "rpc_shed";
    case EventType::kWatchdogKill:
      return "watchdog_kill";
    case EventType::kFsCacheHit:
      return "fs_cache_hit";
    case EventType::kFsCacheInvalidate:
      return "fs_cache_invalidate";
    case EventType::kPagerWriteback:
      return "pager_writeback";
    case EventType::kVmObjectInvalidate:
      return "vm_object_invalidate";
    case EventType::kCount:
      break;
  }
  return "unknown";
}

const char* SpanName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kTrap:
      return "trap";
    case SpanKind::kRpc:
      return "rpc";
    case SpanKind::kIpcSend:
      return "ipc_send";
    case SpanKind::kIpcReceive:
      return "ipc_receive";
    case SpanKind::kVmFault:
      return "vm_fault";
    case SpanKind::kServerOp:
      return "server_op";
    case SpanKind::kRpcRobust:
      return "rpc_robust";
    case SpanKind::kApi:
      return "api";
    case SpanKind::kCount:
      break;
  }
  return "unknown";
}

int SpanPhaseCount(SpanKind kind) { return kind == SpanKind::kRpc ? 3 : 1; }

const char* SpanPhaseName(SpanKind kind, int phase) {
  if (kind == SpanKind::kRpc) {
    switch (phase) {
      case 0:
        return "client_entry";
      case 1:
        return "server";
      case 2:
        return "reply_return";
      default:
        return nullptr;
    }
  }
  return phase == 0 ? SpanName(kind) : nullptr;
}

Tracer::Tracer(hw::Cpu* cpu, Scheduler* scheduler, size_t capacity)
    : cpu_(cpu), scheduler_(scheduler), ring_(capacity == 0 ? 1 : capacity) {}

Tracer::~Tracer() {
  if (enabled_) {
    cpu_->set_execute_observer(nullptr);
  }
}

void Tracer::Enable() {
  if (enabled_) {
    return;
  }
  enabled_ = true;
  cpu_->set_execute_observer(
      [this](const hw::CodeRegion& region, uint64_t instructions, uint64_t cycles,
             uint64_t icache_misses) {
        RegionTotals& t = profile_[region.base];
        ++t.calls;
        t.instructions += instructions;
        t.cycles += cycles;
        t.icache_misses += icache_misses;
      });
}

void Tracer::Disable() {
  if (!enabled_) {
    return;
  }
  enabled_ = false;
  cpu_->set_execute_observer(nullptr);
}

void Tracer::Push(EventType type, uint64_t a, uint64_t b) {
  TraceEvent& e = ring_[ring_next_];
  ring_next_ = (ring_next_ + 1) % ring_.size();
  ++total_emitted_;
  e.type = type;
  e.cycle = cpu_->cycles();
  Thread* t = scheduler_->current();
  e.thread = t == nullptr ? 0 : t->id();
  e.task = t == nullptr ? 0 : t->task()->id();
  e.a = a;
  e.b = b;
}

void Tracer::Emit(EventType type, uint64_t a, uint64_t b) {
  if (!enabled_) {
    return;
  }
  Push(type, a, b);
}

std::vector<TraceEvent> Tracer::Events() const {
  std::vector<TraceEvent> out;
  const size_t buffered =
      total_emitted_ < ring_.size() ? static_cast<size_t>(total_emitted_) : ring_.size();
  out.reserve(buffered);
  // Oldest event sits at ring_next_ once the ring has wrapped.
  const size_t start = total_emitted_ < ring_.size() ? 0 : ring_next_;
  for (size_t i = 0; i < buffered; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

uint64_t Tracer::BeginSpan(SpanKind kind, EventType begin_event, uint64_t b) {
  if (!enabled_) {
    return 0;
  }
  const uint64_t id = next_span_id_++;
  ActiveSpan& span = active_spans_[id];
  span.kind = kind;
  span.begin = cpu_->counters();
  span.phase_begin = span.begin;
  // Join the current thread's trace: parent = the innermost open span, a
  // fresh trace_id if the thread isn't working for any request yet. The
  // context then names this span so children (including spans opened by a
  // server this thread RPCs to) chain onto it.
  Thread* t = scheduler_->current();
  if (t != nullptr) {
    span.owner = t->id();
    span.parent = t->trace_ctx.span_id;
    span.trace_id = t->trace_ctx.trace_id != 0 ? t->trace_ctx.trace_id : next_trace_id_++;
    t->trace_ctx = TraceContext{span.trace_id, id};
  } else {
    span.trace_id = next_trace_id_++;
  }
  SpanMeta& meta = span_meta_[id];
  meta.kind = kind;
  meta.trace_id = span.trace_id;
  meta.parent = span.parent;
  meta.thread = t == nullptr ? 0 : t->id();
  meta.task = t == nullptr ? 0 : t->task()->id();
  meta.arg = b;
  meta.begin_cycle = cpu_->cycles();
  Push(begin_event, id, b);
  return id;
}

void Tracer::MarkPhase(uint64_t span_id, EventType phase_event, uint64_t b) {
  if (span_id == 0) {
    return;
  }
  auto it = active_spans_.find(span_id);
  if (it == active_spans_.end()) {
    return;
  }
  ActiveSpan& span = it->second;
  const hw::CpuCounters now = cpu_->counters();
  SpanStats& st = stats_[static_cast<int>(span.kind)];
  if (span.phase < kMaxSpanPhases) {
    st.phases[span.phase] += now - span.phase_begin;
  }
  ++span.phase;
  span.phase_begin = now;
  auto mit = span_meta_.find(span_id);
  if (mit != span_meta_.end()) {
    SpanMeta& meta = mit->second;
    if (phase_event == EventType::kRpcDispatch) {
      meta.dispatch_cycle = now.cycles;
      // Close the pending queue wait (0 when the rendezvous was direct —
      // the server was already parked in RpcReceive, so nothing queued).
      const uint64_t wait = meta.queued_cycle != 0 ? now.cycles - meta.queued_cycle : 0;
      metrics_.Hist("mk.rpc.queue_wait_cycles").Record(wait);
      if (!span.label.empty()) {
        metrics_.Hist("mk.rpc.queue_wait_cycles." + span.label).Record(wait);
      }
    } else if (phase_event == EventType::kRpcReply) {
      meta.reply_cycle = now.cycles;
    }
  }
  Push(phase_event, span_id, b);
}

void Tracer::MarkQueued(uint64_t span_id, EventType event, uint64_t b) {
  if (span_id == 0) {
    return;
  }
  auto it = span_meta_.find(span_id);
  if (it == span_meta_.end()) {
    return;
  }
  it->second.queued_cycle = cpu_->cycles();
  Push(event, span_id, b);
}

void Tracer::LabelSpan(uint64_t span_id, const std::string& label) {
  if (span_id == 0) {
    return;
  }
  auto it = active_spans_.find(span_id);
  if (it != active_spans_.end()) {
    it->second.label = label;
  }
  auto mit = span_meta_.find(span_id);
  if (mit != span_meta_.end()) {
    mit->second.label = label;
  }
}

void Tracer::EndSpan(uint64_t span_id, EventType end_event, uint64_t b) {
  if (span_id == 0) {
    return;
  }
  auto it = active_spans_.find(span_id);
  if (it == active_spans_.end()) {
    return;
  }
  ActiveSpan& span = it->second;
  const hw::CpuCounters now = cpu_->counters();
  SpanStats& st = stats_[static_cast<int>(span.kind)];
  if (span.phase < kMaxSpanPhases) {
    st.phases[span.phase] += now - span.phase_begin;
  }
  st.total += now - span.begin;
  ++st.count;
  const uint64_t total_cycles = now.cycles - span.begin.cycles;
  if (!span.label.empty()) {
    metrics_.Hist(std::string(SpanName(span.kind)) + ".cycles." + span.label).Record(total_cycles);
  } else {
    metrics_.Hist(std::string(SpanName(span.kind)) + ".cycles").Record(total_cycles);
  }
  auto mit = span_meta_.find(span_id);
  if (mit != span_meta_.end()) {
    SpanMeta& meta = mit->second;
    meta.end_cycle = now.cycles;
    meta.end_arg = b;
    meta.ended = true;
  }
  // Pop this span off its owner thread's context — but only if that thread
  // is still inside it (a server's context is rebound by the kernel between
  // requests, so a stale restore must not clobber the new binding).
  Thread* t = scheduler_->current();
  if (t != nullptr && t->id() == span.owner && t->trace_ctx.span_id == span_id) {
    t->trace_ctx = TraceContext{span.parent == 0 ? 0 : span.trace_id, span.parent};
  }
  active_spans_.erase(it);
  Push(end_event, span_id, b);
}

uint64_t Tracer::SpanTraceId(uint64_t span_id) const {
  auto it = span_meta_.find(span_id);
  return it == span_meta_.end() ? 0 : it->second.trace_id;
}

std::vector<Tracer::RegionProfile> Tracer::FlatProfile() const {
  std::vector<RegionProfile> out;
  out.reserve(profile_.size());
  for (const auto& [base, totals] : profile_) {
    RegionProfile p;
    p.name = hw::CodeLayout::Global().NameOf(base);
    p.calls = totals.calls;
    p.instructions = totals.instructions;
    p.cycles = totals.cycles;
    p.icache_misses = totals.icache_misses;
    out.push_back(std::move(p));
  }
  std::sort(out.begin(), out.end(), [](const RegionProfile& a, const RegionProfile& b) {
    if (a.cycles != b.cycles) {
      return a.cycles > b.cycles;
    }
    return a.name < b.name;
  });
  return out;
}

}  // namespace trace
}  // namespace mk
