#include "src/mk/trace/metrics.h"

namespace mk {
namespace trace {

namespace {
int BucketOf(uint64_t value) {
  if (value == 0) {
    return 0;
  }
  return 64 - __builtin_clzll(value);
}
}  // namespace

void Histogram::Record(uint64_t value) {
  const int b = BucketOf(value);
  ++buckets_[b >= kBuckets ? kBuckets - 1 : b];
  ++count_;
  sum_ += value;
  if (value < min_) {
    min_ = value;
  }
  if (value > max_) {
    max_ = value;
  }
}

uint64_t Histogram::PercentileBound(double p) const {
  if (count_ == 0) {
    return 0;
  }
  const double target = static_cast<double>(count_) * p / 100.0;
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target) {
      return i == 0 ? 0 : (1ull << i) - 1;
    }
  }
  return max_;
}

uint64_t& MetricRegistry::Counter(const std::string& name) { return counters_[name]; }

void MetricRegistry::GaugeMax(const std::string& name, uint64_t value) {
  uint64_t& g = gauges_[name];
  if (value > g) {
    g = value;
  }
}

void MetricRegistry::GaugeSet(const std::string& name, uint64_t value) { gauges_[name] = value; }

Histogram& MetricRegistry::Hist(const std::string& name) { return hists_[name]; }

}  // namespace trace
}  // namespace mk
