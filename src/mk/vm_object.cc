#include "src/mk/vm_object.h"

namespace mk {

base::Result<hw::PhysAddr> VmObject::LookupThroughShadow(uint64_t index,
                                                         const VmObject** owner) const {
  const VmObject* obj = this;
  while (obj != nullptr) {
    auto it = obj->pages_.find(index);
    if (it != obj->pages_.end()) {
      if (owner != nullptr) {
        *owner = obj;
      }
      return it->second;
    }
    obj = obj->shadow_parent_.get();
  }
  if (owner != nullptr) {
    *owner = nullptr;
  }
  return base::Status::kNotFound;
}

}  // namespace mk
