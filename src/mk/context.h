// Minimal stack-switching primitive for the green threads (x86-64 SysV).
//
// This replaces <ucontext.h>: it saves exactly the callee-saved registers on
// the outgoing stack, records the stack pointer, and resumes the incoming
// stack symmetrically. No signal masks, no floating-point environment — the
// simulation never changes either — and the semantics are small enough to
// audit in one screen.
#ifndef SRC_MK_CONTEXT_H_
#define SRC_MK_CONTEXT_H_

#include <cstddef>
#include <cstdint>

namespace mk {

extern "C" {
// Saves the current context's callee-saved registers and stack pointer into
// *save_sp, then resumes the context whose stack pointer is load_sp.
void WposCtxSwitch(void** save_sp, void* load_sp);
}

// Prepares a fresh stack so that the first WposCtxSwitch into it enters
// `entry` with a 16-byte-aligned stack. `stack_top` is the high end of the
// stack region (exclusive). Returns the initial saved stack pointer.
void* WposCtxMake(void* stack_top, void (*entry)());

// Fiber-aware switch wrappers for the scheduler. Under AddressSanitizer
// these bracket the raw switch with __sanitizer_start_switch_fiber /
// __sanitizer_finish_switch_fiber so ASan's shadow-stack bookkeeping follows
// the green threads; in other builds they are exactly WposCtxSwitch.
//
// Switch from the scheduler (host) stack into a green thread whose stack is
// [stack_bottom, stack_bottom + stack_size).
void WposCtxSwitchToFiber(void** save_sp, void* load_sp, const void* stack_bottom,
                          size_t stack_size);
// Switch from a green thread back to the scheduler (host) stack. `abandon`
// marks the current fiber as never resuming (thread exit) so ASan releases
// its fake-stack state instead of keeping it for a resume.
void WposCtxSwitchToMain(void** save_sp, void* load_sp, bool abandon = false);
// Must be the first thing a fresh fiber runs: completes the ASan switch that
// entered it (and records the scheduler stack for later switches back).
void WposCtxFiberEntry();
// Clears ASan shadow for a fiber stack about to be released. Frame redzones
// poisoned by instrumented code on the fiber survive munmap (ASan does not
// intercept it), so without this a later stack mapped at the same address
// starts life poisoned. No-op in non-ASan builds.
void WposCtxReleaseStack(const void* stack_bottom, size_t stack_size);

}  // namespace mk

#endif  // SRC_MK_CONTEXT_H_
