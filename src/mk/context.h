// Minimal stack-switching primitive for the green threads (x86-64 SysV).
//
// This replaces <ucontext.h>: it saves exactly the callee-saved registers on
// the outgoing stack, records the stack pointer, and resumes the incoming
// stack symmetrically. No signal masks, no floating-point environment — the
// simulation never changes either — and the semantics are small enough to
// audit in one screen.
#ifndef SRC_MK_CONTEXT_H_
#define SRC_MK_CONTEXT_H_

#include <cstdint>

namespace mk {

extern "C" {
// Saves the current context's callee-saved registers and stack pointer into
// *save_sp, then resumes the context whose stack pointer is load_sp.
void WposCtxSwitch(void** save_sp, void* load_sp);
}

// Prepares a fresh stack so that the first WposCtxSwitch into it enters
// `entry` with a 16-byte-aligned stack. `stack_top` is the high end of the
// stack region (exclusive). Returns the initial saved stack pointer.
void* WposCtxMake(void* stack_top, void (*entry)());

}  // namespace mk

#endif  // SRC_MK_CONTEXT_H_
