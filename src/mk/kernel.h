// The IBM Microkernel: the central kernel object.
//
// Facilities (paper, "The IBM Microkernel" section): IPC/RPC, tasks and
// threads, virtual memory management, I/O support, hosts and processor sets,
// clocks and timers, synchronizers. IPC is present in both forms: the
// inherited Mach 3.0 mach_msg (queued, asynchronous, reply ports, virtual
// copy) and the reworked RPC (synchronous, no reply ports, no queuing,
// blocked send/receive, physical copy, by-reference bulk data) whose 2-10x
// advantage the paper reports.
//
// All kernel paths are instrumented against the hw::Cpu cost model; see
// src/mk/costs.h for the path-length table.
#ifndef SRC_MK_KERNEL_H_
#define SRC_MK_KERNEL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/log.h"
#include "src/base/status.h"
#include "src/hw/machine.h"
#include "src/mk/costs.h"
#include "src/mk/fault/injector.h"
#include "src/mk/host.h"
#include "src/mk/ids.h"
#include "src/mk/kernel_heap.h"
#include "src/mk/message.h"
#include "src/mk/port.h"
#include "src/mk/scheduler.h"
#include "src/mk/sync_observer.h"
#include "src/mk/task.h"
#include "src/mk/thread.h"
#include "src/mk/trace/tracer.h"
#include "src/mk/vm_map.h"
#include "src/mk/vm_object.h"

namespace mk {

class Env;

namespace analysis {
class Introspector;  // read-only access for the kernel state analyzer
}

using ThreadBody = std::function<void(Env&)>;

struct KernelConfig {
  uint64_t kernel_heap_bytes = 8 * 1024 * 1024;
  uint64_t quantum_cycles = 1'000'000;
  // Instruction-footprint of the generic application region used when a task
  // doesn't specify one.
  uint32_t default_app_footprint = 2048;
  // Debug aid: when non-zero, CheckInvariants() runs on every N-th kernel
  // entry and aborts on the first violation. The analyzer charges no
  // simulated cycles, so enabling it does not perturb measurements — it only
  // costs host time.
  uint64_t invariant_check_interval = 0;
  // Event-ring capacity of the tracer (events kept once tracing is enabled
  // via Kernel::tracer().Enable(); older events drop on overflow). The
  // tracer is host-side bookkeeping and charges no simulated cycles.
  size_t trace_capacity = 64 * 1024;
  // When tracing is enabled, Halt() prints the flat profile to stderr.
  bool profile_at_halt = false;
};

// Result of a server-side RpcReceive.
struct RpcRequest {
  uint64_t token = 0;
  uint64_t arrived_port = 0;  // Port::id() the call arrived on (set receives)
  uint32_t req_len = 0;
  uint32_t ref_len = 0;               // bulk data copied into the posted ref buffer
  std::vector<PortName> rights;       // rights transferred to the server
  TaskId client_task = 0;
};

constexpr uint64_t kForever = ~0ull;

// Kernel-generated legacy messages delivered to death watchers (the Mach
// dead-name notification flavour, broadcast instead of per-name). The
// notice struct is the message's inline data.
constexpr uint32_t kTaskDeathMsgId = 0x4D00;
constexpr uint32_t kPortDeathMsgId = 0x4D01;
// Heartbeat ping a supervised server loop sends to its restart manager's
// health port (see mks::RestartManager watchdog). The ping struct is the
// message's inline data.
constexpr uint32_t kHeartbeatMsgId = 0x4D10;

struct TaskDeathNotice {
  TaskId task = 0;
};

struct PortDeathNotice {
  uint64_t port_id = 0;  // Port::id() of the port that died
};

struct HeartbeatPing {
  TaskId task = 0;
};

class Kernel {
 public:
  explicit Kernel(hw::Machine* machine, const KernelConfig& config = KernelConfig());
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  hw::Machine& machine() { return *machine_; }
  hw::Cpu& cpu() { return machine_->cpu(); }
  Scheduler& scheduler() { return scheduler_; }
  KernelHeap& heap() { return *heap_; }
  Host& host() { return host_; }
  trace::Tracer& tracer() { return *tracer_; }
  fault::Injector& faults() { return *faults_; }
  Thread* current() const { return scheduler_.current(); }
  Task* current_task() const { return scheduler_.current_task(); }

  // Runs the machine until no thread is runnable and no device event is
  // pending. Returns the number of threads still blocked (0 = clean halt).
  size_t Run();

  // Final accounting once the scheduler is idle (called by Run): checks the
  // kernel object-graph invariants, and if threads are still blocked builds
  // a wait-for graph to report *why* each one is blocked — and any deadlock
  // cycle — instead of just how many. Returns the blocked count.
  size_t Halt();

  // Walks the kernel object graph (port rights, queues and wait queues,
  // port-set back-pointers, thread states, in-flight RPCs, counters)
  // checking structural invariants; logs each violation at kError and
  // returns the number found (0 = consistent). See src/mk/analysis/.
  size_t CheckInvariants() const;

  // --- Tasks and threads -------------------------------------------------------
  Task* CreateTask(const std::string& name, uint32_t app_footprint_instr = 0);
  Thread* CreateThread(Task* task, const std::string& name, ThreadBody body,
                       int priority = Thread::kDefaultPriority);
  // Waits (current thread) until `target` terminates.
  base::Status ThreadJoin(Thread* target);
  // Terminates a task: destroys the ports it holds the receive right for
  // (queued and in-flight callers get kPortDead, as with ServerLoop::Stop),
  // fails RPCs the task's threads were serving, aborts its blocked threads,
  // and enqueues a TaskDeathNotice to every registered death watcher.
  // Idempotent.
  void TerminateTask(Task* task);
  const std::vector<std::unique_ptr<Task>>& tasks() const { return tasks_; }

  // --- Ports ---------------------------------------------------------------------
  base::Result<PortName> PortAllocate(Task& task);  // fresh port + receive right
  base::Status PortDestroy(Task& task, PortName name);
  // Creates a send right in `to` for the port named by a *receive* right
  // `receive_name` held by `from`.
  base::Result<PortName> MakeSendRight(Task& from, PortName receive_name, Task& to);
  // Creates a receive right in `to` for the same port. The port's receiver
  // task (teardown ownership) stays with the original allocator; the extra
  // right only lets `to` dequeue — how a forked child inherits a pipe's
  // read end.
  base::Result<PortName> MakeReceiveRight(Task& from, PortName receive_name, Task& to);
  // Bounds the synchronous-RPC rendezvous queue of the port named by a
  // receive right: once `limit` callers are parked in waiting_clients, new
  // callers are shed with kBusy instead of parking (admission control).
  // 0 restores the default unbounded queue.
  base::Status PortSetQueueLimit(Task& task, PortName receive_name, uint32_t limit);
  // Test/diagnostic access.
  base::Result<Port*> ResolvePort(Task& task, PortName name);

  // --- Death notifications --------------------------------------------------------
  // Registers a receive right held by `task` as a death-notification port:
  // every subsequent task death (TerminateTask) enqueues a TaskDeathNotice
  // legacy message to it, and every port death (DestroyPort / MarkDead) a
  // PortDeathNotice. Watchers with full queues drop notices (logged), like
  // interrupt reflection. A watcher port that itself dies is pruned.
  base::Status RegisterDeathWatcher(Task& task, PortName receive_name);
  base::Status UnregisterDeathWatcher(Task& task, PortName receive_name);

  // --- Port sets -----------------------------------------------------------------
  // A port set groups receive rights so one thread can serve many ports
  // (as in Mach). Receiving on the set takes work from any member.
  base::Result<PortName> PortSetAllocate(Task& task);
  base::Status PortSetAdd(Task& task, PortName set, PortName member_receive);
  base::Status PortSetRemove(Task& task, PortName set, PortName member_receive);

  // --- Traps (the Table 2 comparison point) -------------------------------------
  // Returns the current thread's self port name, creating it on first use.
  PortName TrapThreadSelf();
  TaskId TrapTaskSelf();
  uint64_t TrapClockGetTimeNs();

  // --- Reworked RPC ----------------------------------------------------------------
  // Synchronous call on the current thread. Blocks until the server replies.
  // Rights in `rights` are transferred to the server; a right granted back by
  // the server (e.g. an open-file port) is returned in `*granted`.
  // `timeout_ns` bounds the whole call in simulated time (kForever = no
  // deadline, the default — no timer event is scheduled). On expiry the call
  // returns kTimedOut; a reply the server delivers later is dropped safely.
  base::Status RpcCall(PortName port, const void* req, uint32_t req_len, void* reply,
                       uint32_t reply_cap, uint32_t* reply_len = nullptr, RpcRef* ref = nullptr,
                       const RightDescriptor* rights = nullptr, uint32_t rights_count = 0,
                       PortName* granted = nullptr, uint64_t timeout_ns = kForever);
  // Server side: blocks until a request arrives. Request bytes are copied into
  // `buf`; bulk by-reference data into `ref->recv_buf` if posted. `timeout_ns`
  // bounds the park in simulated time (kForever = wait indefinitely); on
  // expiry the receive returns kTimedOut with no request consumed — used by
  // heartbeat-enabled server loops so an idle server still wakes to beat.
  base::Result<RpcRequest> RpcReceive(PortName receive_name, void* buf, uint32_t cap,
                                      RpcRef* ref = nullptr, uint64_t timeout_ns = kForever);
  // Server side: completes the call identified by `token`. `ref_data` is bulk
  // data physically copied into the client's posted receive-ref buffer;
  // `grant` (a name in the server's space) transfers a right to the client.
  base::Status RpcReply(uint64_t token, const void* reply, uint32_t len,
                        const void* ref_data = nullptr, uint32_t ref_len = 0,
                        PortName grant = kNullPort, base::Status completion = base::Status::kOk);
  // Combined reply-and-receive (the classic server-loop fast path): delivers
  // the reply and atomically re-enters receive on `receive_name`, so the
  // server is already parked when the client's next call arrives and the
  // rendezvous can hand off directly in both directions.
  base::Result<RpcRequest> RpcReplyAndReceive(uint64_t token, const void* reply, uint32_t len,
                                              PortName receive_name, void* buf, uint32_t cap,
                                              RpcRef* ref = nullptr,
                                              const void* reply_ref_data = nullptr,
                                              uint32_t reply_ref_len = 0,
                                              PortName grant = kNullPort);

  // --- Legacy Mach 3.0 IPC ------------------------------------------------------------
  base::Status MachMsgSend(MachMessage&& msg, uint64_t timeout_ns = kForever);
  base::Status MachMsgReceive(PortName name, MachMessage* out, uint64_t timeout_ns = kForever);

  // --- Virtual memory -----------------------------------------------------------------
  base::Result<hw::VirtAddr> VmAllocate(Task& task, uint64_t size);
  base::Status VmAllocateAt(Task& task, hw::VirtAddr addr, uint64_t size);
  base::Status VmDeallocate(Task& task, hw::VirtAddr addr, uint64_t size);
  base::Status VmProtect(Task& task, hw::VirtAddr addr, uint64_t size, Prot prot);
  base::Result<hw::VirtAddr> VmMapObject(Task& task, std::shared_ptr<VmObject> object,
                                         uint64_t offset, uint64_t size, Prot prot,
                                         bool anywhere, hw::VirtAddr fixed = 0,
                                         Inherit inherit = Inherit::kShare);
  // Coerced memory (IBM extension): shared memory mapped at the same address
  // range in every participating address space.
  base::Result<hw::VirtAddr> VmAllocateCoerced(Task& first, uint64_t size);
  base::Status VmMapCoerced(Task& task, hw::VirtAddr coerced_addr);
  // Fork-style address-space copy honouring entry inheritance; used by the
  // UNIX personality.
  Task* TaskForkVm(Task& parent, const std::string& name);

  // External memory objects (OSF RI flavour): associate the object with a
  // pager port. Faults on absent pages RPC to the pager with the object id.
  uint64_t RegisterPagedObject(std::shared_ptr<VmObject> object, Port* pager_port,
                               uint64_t pager_offset);
  std::shared_ptr<VmObject> LookupPagedObject(uint64_t object_id);

  // --- Managed file-backed objects (mmap support) ------------------------------
  // These only apply to pager-backed objects with dirty tracking enabled
  // (see VmObject::EnableDirtyTracking); the anonymous/default-pager fault
  // paths are untouched.
  //
  // Pushes one dirty page to the object's pager (PagerOp::kDataWrite) from
  // the current thread. Does not clear the dirty bit; pair with
  // VmObjectMarkClean once a range is safely written back.
  base::Status PagerWriteback(Task& task, VmObject* object, uint64_t page_index);
  // Drops resident pages of [first_page, first_page+count) — only clean ones
  // when `clean_only` — and removes every task's translations for mappings
  // backed by `object` (directly or through a shadow chain) so the next
  // touch refaults against the pager's current generation. Returns the
  // number of pages dropped.
  uint64_t VmObjectInvalidate(VmObject* object, uint64_t first_page, uint64_t count,
                              bool clean_only);
  // Clears dirty bits in [first_page, first_page+count) and write-protects
  // live translations of mappings backed directly by `object`, so the next
  // store faults and re-marks the page dirty.
  void VmObjectMarkClean(VmObject* object, uint64_t first_page, uint64_t count);
  // Re-points `object` at the pager backing registered under
  // `fresh_object_id` (a new registration by a restarted server). Resident
  // pages — in particular dirty ones — survive; the registry entry for the
  // fresh id is re-pointed at `object` so later lookups and releases see the
  // surviving object.
  base::Status AdoptPagerBacking(std::shared_ptr<VmObject> object, uint64_t fresh_object_id);
  // Writes back every dirty page of the entry containing `addr` (clipped to
  // [addr, addr+len)) through the pager and marks the range clean. The
  // kernel-level msync; personalities that need crash-consistent replay
  // write through their file session instead and then call
  // VmObjectMarkClean.
  base::Status VmMsync(Task& task, hw::VirtAddr addr, uint64_t len);
  // Sends PagerOp::kObjectTerminate for the object (current thread), drops
  // all of its resident pages and translations, and unregisters it.
  base::Status ReleasePagedObject(uint64_t object_id);

  // --- User memory access (with full fault + cost modelling) ---------------------------
  base::Status CopyOut(Task& task, hw::VirtAddr dst, const void* src, uint64_t len);
  base::Status CopyIn(Task& task, hw::VirtAddr src, void* dst, uint64_t len);
  base::Status UserFill(Task& task, hw::VirtAddr dst, uint8_t byte, uint64_t len);
  base::Status CopyUserToUser(Task& src_task, hw::VirtAddr src, Task& dst_task, hw::VirtAddr dst,
                              uint64_t len);
  // Touch (read or write) a range, faulting pages in; models the access costs
  // without host-visible data movement. Used by synthetic workloads.
  base::Status UserTouch(Task& task, hw::VirtAddr addr, uint64_t len, bool write);
  // Resolve a virtual address for access, running the page-fault path as
  // needed. Returns the physical address.
  base::Result<hw::PhysAddr> ResolveForAccess(Task& task, hw::VirtAddr vaddr, bool write);

  // --- Synchronizers ---------------------------------------------------------------------
  base::Result<uint32_t> SemCreate(uint32_t initial);
  base::Status SemWait(uint32_t sem, uint64_t timeout_ns = kForever);
  base::Status SemSignal(uint32_t sem);
  base::Status SemDestroy(uint32_t sem);
  // Memory-based synchronizers (futex style). The address is resolved in the
  // current task; waiters on the same physical word rendezvous even across
  // address spaces (coerced shared memory).
  base::Status MemSyncWait(hw::VirtAddr addr, uint32_t expected, uint64_t timeout_ns = kForever);
  uint32_t MemSyncWake(hw::VirtAddr addr, uint32_t count);

  // --- Clocks and timers -------------------------------------------------------------------
  uint64_t NowNs();
  uint64_t NowCycles() { return cpu().cycles(); }
  base::Status SleepNs(uint64_t ns);
  // Parks the current thread with no wake scheduled: it stays blocked until
  // something external aborts it (TerminateTask). Models a wedged thread for
  // the kStallTask fault mode; returns the abort status when woken.
  base::Status StallForever();
  // Periodic timer posting an (empty) legacy message to `port` every period.
  base::Result<uint32_t> TimerArmPeriodic(Task& task, PortName port, uint64_t period_ns);
  base::Status TimerCancel(uint32_t timer_id);

  // --- I/O support ----------------------------------------------------------------------------
  // In-kernel interrupt handler (BSD-style drivers).
  void RegisterKernelInterrupt(uint32_t line, std::function<void()> handler);
  // Reflect interrupts on `line` as legacy messages to a user-level driver.
  base::Status ReflectInterrupt(Task& task, uint32_t line, PortName port);
  // Kernel-mediated device register access (charges the uncached access).
  uint32_t IoRead(hw::Device* device, uint32_t reg);
  void IoWrite(hw::Device* device, uint32_t reg, uint32_t value);
  // Process any pending device events/interrupts now (kernel entry point).
  void PollHardware();

  // --- Instrumentation helpers (used by services too) ---------------------------------------
  void ChargeCode(const hw::CodeRegion& region) { cpu().Execute(region); }
  void ChargeCodePartial(const hw::CodeRegion& region, uint64_t instr) {
    cpu().ExecuteInstructions(region, instr);
  }
  // Models a tight copy loop moving `len` bytes between two simulated
  // physical buffers (instructions + D-cache traffic on both).
  void ChargeCopy(hw::PhysAddr src, hw::PhysAddr dst, uint64_t len);
  // Touch kernel data (object headers etc.) through the D-cache.
  void ChargeKernelData(hw::PhysAddr addr, uint32_t size, bool write) {
    cpu().AccessData(addr, size, write);
  }
  hw::CpuCounters Counters() const { return machine_->cpu().counters(); }

  // Trap-side cost bracketing, public so personality fast paths can model
  // system-call-like entries of their own.
  void EnterKernel(const hw::CodeRegion& trap_entry_region);
  void LeaveKernel();

  // Installs (or clears, with nullptr) the concurrency checker's observer of
  // synchronization events. Host-side bookkeeping only: no simulated cycles
  // are charged on its behalf, and with none installed every hook site is a
  // single null test. See src/mk/sync_observer.h.
  void set_sync_observer(SyncObserver* observer) { sync_observer_ = observer; }
  SyncObserver* sync_observer() const { return sync_observer_; }

  uint64_t rpc_calls() const { return rpc_calls_; }
  uint64_t mach_msgs() const { return mach_msgs_; }
  uint64_t interrupts_delivered() const { return interrupts_delivered_; }

 private:
  friend class Scheduler;
  friend class analysis::Introspector;

  struct Semaphore {
    uint32_t count = 0;
    WaitQueue waiters;
    hw::PhysAddr sim_addr = 0;
    bool alive = true;
  };

  struct PeriodicTimer {
    Task* task = nullptr;
    Port* port = nullptr;
    uint64_t period_cycles = 0;
    bool cancelled = false;
  };

  Port* NewPort();
  void DestroyPort(Port* port);
  // Wakes one thread blocked receiving on `port` or on its port set.
  void WakeOneReceiver(Port* port);
  base::Status RpcCallOnPort(Port* port, const void* req, uint32_t req_len, void* reply,
                             uint32_t reply_cap, uint32_t* reply_len, RpcRef* ref,
                             const RightDescriptor* rights, uint32_t rights_count,
                             PortName* granted, uint64_t timeout_ns);
  // Charge a translated user-memory access (TLB + D-cache) for `task`.
  void AccessUser(Task& task, hw::VirtAddr vaddr, hw::PhysAddr pa, uint32_t size, bool write);
  // Virtual-copy snapshot of [addr, addr+size) for legacy OOL transfer:
  // returns an object that sees the current contents; later writes by the
  // sender COW away from it.
  base::Result<std::shared_ptr<VmObject>> SnapshotForOol(Task& task, hw::VirtAddr addr,
                                                         uint64_t size);
  // Copies `len` bytes between host buffers while charging simulated costs
  // against the two threads' message windows.
  void CopyMessageBytes(const void* src, void* dst, uint64_t len, Thread* from, Thread* to);
  // Charges the out-of-line transfer of `len` bulk bytes from `from` to
  // `to`: per-page reference/map work plus page-table traffic, no per-byte
  // copy loop. Used by the RPC ref paths above the OOL threshold.
  void ChargeOolTransfer(Thread* from, Thread* to, uint64_t len);
  base::Status TransferRights(Task& from, Task& to, const RightDescriptor* rights, uint32_t count,
                              std::vector<PortName>* out_names);
  void DeliverRpcToServer(Thread* client, Thread* server);
  base::Status DeliverReply(Thread* server, Thread* client, const void* reply, uint32_t len,
                            const void* ref_data, uint32_t ref_len, PortName grant,
                            base::Status completion);
  base::Status FaultIn(Task& task, VmMapEntry* entry, hw::VirtAddr vaddr, bool write,
                       hw::PhysAddr* out_pa);
  base::Status PagerFill(Task& task, VmObject* object, uint64_t page_index, hw::PhysAddr frame);
  void ArmTimer(uint32_t timer_id);
  void StartTimedWake(Thread* t, uint64_t timeout_ns);
  void ClearTimedWake(Thread* t);
  void DispatchInterrupt(uint32_t line);
  // Enqueues a death notice (msg_id + notice payload bytes) to every live
  // registered watcher port; prunes watchers whose port has died.
  void NotifyDeathWatchers(uint32_t msg_id, const void* notice, uint32_t len);

  hw::Machine* machine_;
  KernelConfig config_;
  std::unique_ptr<KernelHeap> heap_;
  SyncObserver* sync_observer_ = nullptr;
  Scheduler scheduler_;
  std::unique_ptr<trace::Tracer> tracer_;
  std::unique_ptr<fault::Injector> faults_;
  Host host_;

  std::vector<std::unique_ptr<Task>> tasks_;
  std::vector<std::unique_ptr<Thread>> threads_;
  std::vector<std::unique_ptr<Port>> ports_;
  TaskId next_task_id_ = 1;
  ThreadId next_thread_id_ = 1;
  uint64_t next_port_id_ = 1;
  uint64_t next_rpc_token_ = 1;
  // In-flight RPCs by token; lets any thread of the server task reply
  // (deferred replies, e.g. a driver ISR completing a queued receive). The
  // thread that received the request is recorded so the wait-for-graph
  // analyzer can resolve client -> server edges exactly.
  struct RpcInFlight {
    Thread* client = nullptr;
    Thread* server = nullptr;
  };
  std::unordered_map<uint64_t, RpcInFlight> rpc_waiters_;

  // Ports registered via RegisterDeathWatcher, in registration order.
  std::vector<Port*> death_watchers_;

  std::unordered_map<uint32_t, Semaphore> semaphores_;
  uint32_t next_sem_id_ = 1;
  // Memory synchronizer wait queues keyed by physical word address.
  std::unordered_map<uint64_t, WaitQueue> memsync_waiters_;

  std::unordered_map<uint32_t, PeriodicTimer> timers_;
  uint32_t next_timer_id_ = 1;

  std::unordered_map<uint64_t, std::shared_ptr<VmObject>> paged_objects_;
  uint64_t next_object_id_ = 1;

  struct CoercedRegion {
    hw::VirtAddr addr = 0;
    uint64_t size = 0;
    std::shared_ptr<VmObject> object;
  };
  std::vector<CoercedRegion> coerced_;
  hw::VirtAddr next_coerced_ = VmMap::kCoercedMin;

  struct InterruptBinding {
    std::function<void()> kernel_handler;
    Task* reflect_task = nullptr;
    Port* reflect_port = nullptr;
  };
  std::unordered_map<uint32_t, InterruptBinding> interrupt_bindings_;

  uint64_t rpc_calls_ = 0;
  uint64_t mach_msgs_ = 0;
  uint64_t interrupts_delivered_ = 0;

  // Kernel entries since boot; drives the invariant-check cadence.
  uint64_t kernel_entries_ = 0;
  // Cycle source active before this kernel registered its clock with the
  // logger; restored on destruction. Same for the causal-trace-id source.
  base::LogCycleSource prev_log_cycle_source_;
  base::LogTraceSource prev_log_trace_source_;
  // Monotonicity snapshot for CheckInvariants: counters must never regress
  // between two successive checks. Mutable because checking is const.
  mutable uint64_t last_rpc_calls_ = 0;
  mutable uint64_t last_mach_msgs_ = 0;
  mutable std::unordered_map<uint64_t, std::pair<uint64_t, uint64_t>> last_port_counters_;
};

// Per-thread user-level view of the system: what "user code" (workloads,
// servers, personality libraries) programs against. Wrappers charge the
// user-level stub costs before entering the kernel.
class Env {
 public:
  Env(Kernel& kernel, Thread* thread) : kernel_(kernel), thread_(thread) {}

  Kernel& kernel() { return kernel_; }
  Thread* thread() { return thread_; }
  Task& task() { return *thread_->task(); }

  // Model application-level computation: `instructions` executed from this
  // task's application code region (wrapping around its footprint).
  void Compute(uint64_t instructions);

  // Convenience wrappers on the kernel interface for the current thread/task.
  base::Result<PortName> PortAllocate() { return kernel_.PortAllocate(task()); }
  PortName ThreadSelf();
  base::Status RpcCall(PortName port, const void* req, uint32_t req_len, void* reply,
                       uint32_t reply_cap, uint32_t* reply_len = nullptr, RpcRef* ref = nullptr,
                       const RightDescriptor* rights = nullptr, uint32_t rights_count = 0,
                       PortName* granted = nullptr, uint64_t timeout_ns = kForever) {
    return kernel_.RpcCall(port, req, req_len, reply, reply_cap, reply_len, ref, rights,
                           rights_count, granted, timeout_ns);
  }
  base::Result<RpcRequest> RpcReceive(PortName port, void* buf, uint32_t cap,
                                      RpcRef* ref = nullptr, uint64_t timeout_ns = kForever) {
    return kernel_.RpcReceive(port, buf, cap, ref, timeout_ns);
  }
  base::Status RpcReply(uint64_t token, const void* reply, uint32_t len,
                        const void* ref_data = nullptr, uint32_t ref_len = 0,
                        PortName grant = kNullPort,
                        base::Status completion = base::Status::kOk) {
    return kernel_.RpcReply(token, reply, len, ref_data, ref_len, grant, completion);
  }
  base::Status MachMsgReceive(PortName port, MachMessage* out, uint64_t timeout_ns = kForever) {
    return kernel_.MachMsgReceive(port, out, timeout_ns);
  }
  base::Result<hw::VirtAddr> VmAllocate(uint64_t size) { return kernel_.VmAllocate(task(), size); }
  base::Status CopyOut(hw::VirtAddr dst, const void* src, uint64_t len) {
    return kernel_.CopyOut(task(), dst, src, len);
  }
  base::Status CopyIn(hw::VirtAddr src, void* dst, uint64_t len) {
    return kernel_.CopyIn(task(), src, dst, len);
  }
  base::Status Touch(hw::VirtAddr addr, uint64_t len, bool write) {
    return kernel_.UserTouch(task(), addr, len, write);
  }
  base::Status SleepNs(uint64_t ns) { return kernel_.SleepNs(ns); }
  uint64_t NowNs() { return kernel_.NowNs(); }
  void Yield() { kernel_.scheduler().Yield(); }

 private:
  Kernel& kernel_;
  Thread* thread_;
};

}  // namespace mk

#endif  // SRC_MK_KERNEL_H_
