// Kernel core: boot, tasks/threads, ports, traps, interrupts, instrumentation.
// VM lives in kernel_vm.cc, RPC in kernel_rpc.cc, legacy IPC in kernel_ipc.cc,
// synchronizers/clocks/timers/IO in kernel_sync.cc.
#include "src/mk/kernel.h"

#include <algorithm>
#include <iostream>

#include "src/base/log.h"
#include "src/mk/analysis/invariants.h"
#include "src/mk/analysis/wait_for_graph.h"
#include "src/mk/trace/exporters.h"
#include "src/mk/vm_object.h"

namespace mk {

namespace {
// Kernel data structures live in their own simulated address range. The
// addresses are never backed by PhysMem storage — only the cache model sees
// them — so the range can sit above RAM.
constexpr hw::PhysAddr kKernelHeapBase = 0x8000'0000ull;

const hw::CodeRegion& TrapEntryRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.trap.entry", Costs::kTrapEntry);
  return r;
}
const hw::CodeRegion& TrapExitRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.trap.exit", Costs::kTrapExit);
  return r;
}
const hw::CodeRegion& CopyLoopRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.lib.copy_loop", 48);
  return r;
}
const hw::CodeRegion& ThreadSelfRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.trap.thread_self", Costs::kThreadSelfBody);
  return r;
}
const hw::CodeRegion& TaskSelfRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.trap.task_self", Costs::kThreadSelfBody);
  return r;
}
const hw::CodeRegion& PortLookupRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.port.lookup", Costs::kPortNameLookup);
  return r;
}
const hw::CodeRegion& PortAllocRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.port.allocate", Costs::kPortAllocate);
  return r;
}
const hw::CodeRegion& PortTransferRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.port.transfer", Costs::kPortRightTransfer);
  return r;
}
const hw::CodeRegion& PortDestroyRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.port.destroy", Costs::kPortDeallocate);
  return r;
}
const hw::CodeRegion& TaskCreateRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.task.create", Costs::kTaskCreate);
  return r;
}
const hw::CodeRegion& ThreadCreateRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.thread.create", Costs::kThreadCreate);
  return r;
}
const hw::CodeRegion& InterruptRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.io.intr_deliver", Costs::kInterruptDeliver);
  return r;
}
const hw::CodeRegion& InterruptReflectRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.io.intr_reflect", Costs::kInterruptReflect);
  return r;
}
}  // namespace

Kernel::Kernel(hw::Machine* machine, const KernelConfig& config)
    : machine_(machine), config_(config), scheduler_(this) {
  heap_ = std::make_unique<KernelHeap>(kKernelHeapBase, config.kernel_heap_bytes);
  scheduler_.quantum_cycles = config.quantum_cycles;
  tracer_ = std::make_unique<trace::Tracer>(&machine->cpu(), &scheduler_, config.trace_capacity);
  faults_ = std::make_unique<fault::Injector>(tracer_.get());
  prev_log_cycle_source_ = base::SetLogCycleSource([this] { return cpu().cycles(); });
  prev_log_trace_source_ = base::SetLogTraceSource([this] {
    Thread* t = scheduler_.current();
    return t == nullptr ? uint64_t{0} : t->trace_ctx.trace_id;
  });
  HostInfo info;
  info.name = "wpos-sim";
  info.cpu_mhz = machine->cpu().config().mhz;
  info.memory_bytes = machine->mem().size();
  host_.set_info(info);
}

Kernel::~Kernel() {
  base::SetLogCycleSource(std::move(prev_log_cycle_source_));
  base::SetLogTraceSource(std::move(prev_log_trace_source_));
}

size_t Kernel::Run() {
  scheduler_.Run();
  return Halt();
}

size_t Kernel::Halt() {
  const size_t violations = CheckInvariants();
  if (violations != 0) {
    WPOS_LOG(kError) << "halt: " << violations << " kernel invariant violation(s)";
  }
  analysis::WaitForGraph graph = analysis::WaitForGraph::Build(*this);
  size_t blocked = 0;
  for (const auto& t : threads_) {
    if (t->state() == Thread::State::kBlocked) {
      ++blocked;
      WPOS_LOG(kWarn) << "thread still blocked at halt: " << graph.DescribeBlocked(t.get());
    }
  }
  for (const std::string& cycle : graph.FindCycleReports()) {
    WPOS_LOG(kError) << "deadlock cycle: " << cycle;
  }
  if (config_.profile_at_halt && tracer_->enabled()) {
    trace::WriteFlatProfile(std::cerr, *this);
  }
  return blocked;
}

size_t Kernel::CheckInvariants() const {
  const std::vector<std::string> violations = analysis::CollectViolations(*this);
  for (const std::string& v : violations) {
    WPOS_LOG(kError) << "invariant violation: " << v;
  }
  return violations.size();
}

void Kernel::EnterKernel(const hw::CodeRegion& trap_entry_region) {
  // Explorer preemption point: under a schedule policy, the moment just
  // before a thread traps is where a bounded-preemption search may force a
  // switch (the racy window is before the kernel operation takes effect).
  // A single null test when no policy is installed.
  scheduler_.PreemptPoint();
  ++kernel_entries_;
  if (config_.invariant_check_interval != 0 &&
      kernel_entries_ % config_.invariant_check_interval == 0) {
    WPOS_CHECK(CheckInvariants() == 0)
        << "kernel invariants violated at entry " << kernel_entries_;
  }
  PollHardware();
  tracer_->Emit(trace::EventType::kTrapEnter, kernel_entries_);
  if (sync_observer_ != nullptr) {
    sync_observer_->OnKernelEnter(scheduler_.current());
  }
  cpu().Stall(Costs::kTrapStallCycles);
  cpu().BusTransactions(Costs::kTrapEntryBus);
  cpu().Execute(trap_entry_region);
}

void Kernel::LeaveKernel() {
  cpu().Execute(TrapExitRegion());
  cpu().BusTransactions(Costs::kTrapExitBus);
  tracer_->Emit(trace::EventType::kTrapExit);
  if (sync_observer_ != nullptr) {
    sync_observer_->OnKernelLeave(scheduler_.current());
  }
  Thread* t = scheduler_.current();
  if (t != nullptr && cpu().cycles() - t->dispatch_cycle > scheduler_.quantum_cycles) {
    scheduler_.Yield();
  }
}

void Kernel::PollHardware() {
  machine_->PollEvents();
  hw::InterruptController& pic = machine_->pic();
  int line;
  while ((line = pic.NextPending()) >= 0) {
    pic.Ack(static_cast<uint32_t>(line));
    DispatchInterrupt(static_cast<uint32_t>(line));
  }
}

void Kernel::DispatchInterrupt(uint32_t line) {
  ++interrupts_delivered_;
  tracer_->Emit(trace::EventType::kInterrupt, line);
  ++tracer_->metrics().Counter("mk.interrupts");
  cpu().Stall(Costs::kContextSwitchStallCycles);  // pipeline drain
  cpu().Execute(InterruptRegion());
  auto it = interrupt_bindings_.find(line);
  if (it == interrupt_bindings_.end()) {
    WPOS_LOG(kDebug) << "unclaimed interrupt line " << line;
    return;
  }
  InterruptBinding& binding = it->second;
  if (binding.kernel_handler) {
    binding.kernel_handler();
  }
  if (binding.reflect_port != nullptr && !binding.reflect_port->dead()) {
    cpu().Execute(InterruptReflectRegion());
    auto qm = std::make_unique<QueuedMessage>();
    qm->msg_id = 0x1000 + line;
    qm->kernel_buffer = heap_->Allocate(64);
    qm->send_cycle = cpu().cycles();
    Port* port = binding.reflect_port;
    if (port->queue.size() >= port->queue_limit) {
      WPOS_LOG(kDebug) << "dropping interrupt notification, queue full, line " << line;
      return;
    }
    port->queue.push_back(std::move(qm));
    WakeOneReceiver(port);
  }
}

void Kernel::RegisterKernelInterrupt(uint32_t line, std::function<void()> handler) {
  interrupt_bindings_[line].kernel_handler = std::move(handler);
}

base::Status Kernel::ReflectInterrupt(Task& task, uint32_t line, PortName port) {
  auto p = task.port_space().LookupReceive(port);
  if (!p.ok()) {
    return p.status();
  }
  interrupt_bindings_[line].reflect_task = &task;
  interrupt_bindings_[line].reflect_port = *p;
  return base::Status::kOk;
}

uint32_t Kernel::IoRead(hw::Device* device, uint32_t reg) {
  static const hw::CodeRegion kRegion = hw::DefineKernelCode("mk.io.reg_access", Costs::kIoRegAccess);
  cpu().Execute(kRegion);
  cpu().AccessUncached(device->reg_base() + reg, 4, /*write=*/false);
  return machine_->DeviceRead(device->reg_base() + reg);
}

void Kernel::IoWrite(hw::Device* device, uint32_t reg, uint32_t value) {
  static const hw::CodeRegion kRegion = hw::DefineKernelCode("mk.io.reg_access", Costs::kIoRegAccess);
  cpu().Execute(kRegion);
  cpu().AccessUncached(device->reg_base() + reg, 4, /*write=*/true);
  machine_->DeviceWrite(device->reg_base() + reg, value);
}

// --- Tasks and threads ---------------------------------------------------------

Task* Kernel::CreateTask(const std::string& name, uint32_t app_footprint_instr) {
  cpu().Execute(TaskCreateRegion());
  const hw::PhysAddr sim_addr = heap_->Allocate(512);
  const hw::PhysAddr pt_base = heap_->Allocate(Pmap::kPteWindowEntries * 4, hw::kPageSize);
  auto task = std::make_unique<Task>(next_task_id_++, name, sim_addr, pt_base);
  if (app_footprint_instr == 0) {
    app_footprint_instr = config_.default_app_footprint;
  }
  task->app_code = hw::DefineKernelCode("app." + name, app_footprint_instr);
  task->set_processor_set(host_.default_pset());
  ++host_.default_pset()->tasks_assigned;
  Port* self = NewPort();
  self->set_receiver(task.get());
  task->set_self_port(self);
  tasks_.push_back(std::move(task));
  return tasks_.back().get();
}

Thread* Kernel::CreateThread(Task* task, const std::string& name, ThreadBody body, int priority) {
  WPOS_CHECK(task != nullptr);
  WPOS_CHECK(priority >= 0 && priority < Thread::kNumPriorities);
  cpu().Execute(ThreadCreateRegion());
  const hw::PhysAddr sim_addr = heap_->Allocate(512);
  const hw::PhysAddr window = heap_->Allocate(Thread::kMsgWindowSize, 64);
  auto thread = std::make_unique<Thread>(next_thread_id_++, task, name, priority, sim_addr, window);
  Thread* t = thread.get();
  t->entry_ = [this, t, body = std::move(body)] {
    Env env(*this, t);
    body(env);
  };
  task->threads().push_back(t);
  threads_.push_back(std::move(thread));
  if (sync_observer_ != nullptr) {
    sync_observer_->OnThreadStart(t, scheduler_.current());
  }
  scheduler_.StartThread(t);
  return t;
}

base::Status Kernel::ThreadJoin(Thread* target) {
  WPOS_CHECK(scheduler_.current() != nullptr) << "ThreadJoin outside thread context";
  if (target->state() == Thread::State::kTerminated) {
    return base::Status::kOk;
  }
  return scheduler_.Block(Thread::State::kBlocked, &target->exit_waiters);
}

void Kernel::TerminateTask(Task* task) {
  if (task->terminated()) {
    return;
  }
  if (sync_observer_ != nullptr) {
    sync_observer_->OnGlobalOp(scheduler_.current());
  }
  task->set_terminated();
  // Notify watchers before tearing the task down so the TaskDeathNotice is
  // first in their queue, ahead of the PortDeathNotices the teardown emits
  // (watcher queues are bounded; the task notice is the one that must land).
  size_t owned_ports = 0;
  for (const auto& port : ports_) {
    if (!port->dead() && port->receiver() == task) {
      ++owned_ports;
    }
  }
  tracer_->Emit(trace::EventType::kTaskDeath, task->id(), owned_ports);
  ++tracer_->metrics().Counter("mk.task_deaths");
  TaskDeathNotice notice{task->id()};
  NotifyDeathWatchers(kTaskDeathMsgId, &notice, sizeof(notice));
  // Destroy every port the task holds the receive right for: queued legacy
  // messages drop, queued RPC callers wake with kPortDead — the same
  // semantics ServerLoop::Stop gives a clean shutdown.
  for (const auto& port : ports_) {
    if (!port->dead() && port->receiver() == task) {
      DestroyPort(port.get());
    }
  }
  // In-flight RPCs served by this task's threads can never be replied to;
  // fail their clients with kPortDead now. Entries whose client belongs to
  // the dying task are dropped — a late reply finds no waiter and returns
  // kInvalidArgument to the server, which is the safe outcome.
  for (auto it = rpc_waiters_.begin(); it != rpc_waiters_.end();) {
    Thread* client = it->second.client;
    Thread* server = it->second.server;
    const bool server_dying = server != nullptr && server->task() == task;
    const bool client_dying = client != nullptr && client->task() == task;
    if (server_dying || client_dying) {
      it = rpc_waiters_.erase(it);
      if (server_dying && !client_dying && client != nullptr &&
          client->state() == Thread::State::kBlocked) {
        client->rpc.completion = base::Status::kPortDead;
        scheduler_.Wake(client, base::Status::kPortDead);
      }
    } else {
      ++it;
    }
  }
  // The task's own threads: pull them out of any rendezvous deque they are
  // parked in (a foreign server's waiting_clients/waiting_servers are raw
  // deques Wake() doesn't know about — left in place, a later rendezvous
  // would hand work to a terminated thread and trip the scheduler's
  // "waking dead thread" check), then abort them. None are kTerminated yet,
  // and Wake() only acts on kBlocked threads, so threads already woken by
  // the port teardown above are skipped safely.
  for (Thread* t : task->threads()) {
    for (const auto& port : ports_) {
      auto& wc = port->waiting_clients;
      wc.erase(std::remove(wc.begin(), wc.end(), t), wc.end());
      auto& ws = port->waiting_servers;
      ws.erase(std::remove(ws.begin(), ws.end(), t), ws.end());
    }
    if (t->state() == Thread::State::kBlocked) {
      scheduler_.Wake(t, base::Status::kAborted);
    }
  }
}

// --- Death notifications ---------------------------------------------------------

base::Status Kernel::RegisterDeathWatcher(Task& task, PortName receive_name) {
  auto port = task.port_space().LookupReceive(receive_name);
  if (!port.ok()) {
    return port.status();
  }
  if (std::find(death_watchers_.begin(), death_watchers_.end(), *port) !=
      death_watchers_.end()) {
    return base::Status::kAlreadyExists;
  }
  death_watchers_.push_back(*port);
  return base::Status::kOk;
}

base::Status Kernel::UnregisterDeathWatcher(Task& task, PortName receive_name) {
  auto port = task.port_space().LookupReceive(receive_name);
  if (!port.ok()) {
    return port.status();
  }
  auto it = std::find(death_watchers_.begin(), death_watchers_.end(), *port);
  if (it == death_watchers_.end()) {
    return base::Status::kNotFound;
  }
  death_watchers_.erase(it);
  return base::Status::kOk;
}

void Kernel::NotifyDeathWatchers(uint32_t msg_id, const void* notice, uint32_t len) {
  if (death_watchers_.empty()) {
    return;
  }
  death_watchers_.erase(std::remove_if(death_watchers_.begin(), death_watchers_.end(),
                                       [](Port* p) { return p->dead(); }),
                        death_watchers_.end());
  for (Port* watcher : death_watchers_) {
    if (watcher->queue.size() >= watcher->queue_limit) {
      WPOS_LOG(kDebug) << "dropping death notice " << msg_id << ", watcher queue full (port "
                       << watcher->id() << ")";
      continue;
    }
    auto qm = std::make_unique<QueuedMessage>();
    qm->msg_id = msg_id;
    qm->inline_data.assign(static_cast<const uint8_t*>(notice),
                           static_cast<const uint8_t*>(notice) + len);
    qm->kernel_buffer = heap_->Allocate(64);
    qm->send_cycle = cpu().cycles();
    watcher->queue.push_back(std::move(qm));
    WakeOneReceiver(watcher);
  }
}

// --- Ports ------------------------------------------------------------------------

void Kernel::WakeOneReceiver(Port* port) {
  if (Thread* receiver = port->blocked_receivers.DequeueFront()) {
    receiver->waiting_on = nullptr;
    scheduler_.Wake(receiver, base::Status::kOk);
    return;
  }
  // Nobody on the port: a receiver may be parked on its port set.
  if (port->member_of != nullptr) {
    if (Thread* receiver = port->member_of->blocked_receivers.DequeueFront()) {
      receiver->waiting_on = nullptr;
      scheduler_.Wake(receiver, base::Status::kOk);
    }
  }
}

Port* Kernel::NewPort() {
  ports_.push_back(std::make_unique<Port>(next_port_id_++, heap_->Allocate(128)));
  return ports_.back().get();
}

void Kernel::DestroyPort(Port* port) {
  port->MarkDead();
  // A dead port keeps no messages and no set linkage; drop them now so the
  // object graph stays consistent (checked by CheckInvariants).
  port->queue.clear();
  if (port->member_of != nullptr) {
    auto& members = port->member_of->set_members;
    members.erase(std::remove(members.begin(), members.end(), port), members.end());
    port->member_of = nullptr;
  }
  for (Port* member : port->set_members) {
    member->member_of = nullptr;
  }
  port->set_members.clear();
  while (Thread* t = port->blocked_receivers.DequeueFront()) {
    t->waiting_on = nullptr;
    scheduler_.Wake(t, base::Status::kPortDead);
  }
  while (Thread* t = port->blocked_senders.DequeueFront()) {
    t->waiting_on = nullptr;
    scheduler_.Wake(t, base::Status::kPortDead);
  }
  for (Thread* t : port->waiting_servers) {
    scheduler_.Wake(t, base::Status::kPortDead);
  }
  port->waiting_servers.clear();
  for (Thread* t : port->waiting_clients) {
    t->rpc.completion = base::Status::kPortDead;
    scheduler_.Wake(t, base::Status::kPortDead);
  }
  port->waiting_clients.clear();
  if (!death_watchers_.empty()) {
    PortDeathNotice notice{port->id()};
    NotifyDeathWatchers(kPortDeathMsgId, &notice, sizeof(notice));
  }
}

base::Result<PortName> Kernel::PortAllocate(Task& task) {
  cpu().Execute(PortAllocRegion());
  Port* port = NewPort();
  port->set_receiver(&task);
  cpu().AccessData(port->sim_addr(), 64, /*write=*/true);
  cpu().AccessData(task.port_space().sim_addr(), 32, /*write=*/true);
  return task.port_space().Insert(port, RightType::kReceive);
}

base::Status Kernel::PortDestroy(Task& task, PortName name) {
  cpu().Execute(PortDestroyRegion());
  auto port = task.port_space().LookupReceive(name);
  if (!port.ok()) {
    return port.status();
  }
  if (sync_observer_ != nullptr) {
    sync_observer_->OnGlobalOp(scheduler_.current());
  }
  DestroyPort(*port);
  return task.port_space().Release(name);
}

base::Status Kernel::PortSetQueueLimit(Task& task, PortName receive_name, uint32_t limit) {
  cpu().Execute(PortLookupRegion());
  auto port = task.port_space().LookupReceive(receive_name);
  if (!port.ok()) {
    return port.status();
  }
  if ((*port)->is_port_set) {
    return base::Status::kInvalidRight;  // sets carry no traffic of their own
  }
  cpu().AccessData((*port)->sim_addr(), 64, /*write=*/true);
  (*port)->rpc_queue_limit = limit;
  return base::Status::kOk;
}

base::Result<PortName> Kernel::MakeSendRight(Task& from, PortName receive_name, Task& to) {
  cpu().Execute(PortTransferRegion());
  auto port = from.port_space().LookupReceive(receive_name);
  if (!port.ok()) {
    return port.status();
  }
  cpu().AccessData(to.port_space().sim_addr(), 32, /*write=*/true);
  return to.port_space().Insert(*port, RightType::kSend);
}

base::Result<PortName> Kernel::MakeReceiveRight(Task& from, PortName receive_name, Task& to) {
  cpu().Execute(PortTransferRegion());
  auto port = from.port_space().LookupReceive(receive_name);
  if (!port.ok()) {
    return port.status();
  }
  cpu().AccessData(to.port_space().sim_addr(), 32, /*write=*/true);
  return to.port_space().Insert(*port, RightType::kReceive);
}

base::Result<PortName> Kernel::PortSetAllocate(Task& task) {
  cpu().Execute(PortAllocRegion());
  Port* set = NewPort();
  set->is_port_set = true;
  set->set_receiver(&task);
  cpu().AccessData(set->sim_addr(), 64, /*write=*/true);
  return task.port_space().Insert(set, RightType::kReceive);
}

base::Status Kernel::PortSetAdd(Task& task, PortName set_name, PortName member_receive) {
  cpu().Execute(PortTransferRegion());
  auto set = task.port_space().LookupReceive(set_name);
  if (!set.ok()) {
    return set.status();
  }
  if (!(*set)->is_port_set) {
    return base::Status::kInvalidRight;
  }
  auto member = task.port_space().LookupReceive(member_receive);
  if (!member.ok()) {
    return member.status();
  }
  if ((*member)->is_port_set) {
    return base::Status::kInvalidArgument;  // sets do not nest
  }
  if ((*member)->member_of != nullptr) {
    return base::Status::kAlreadyExists;
  }
  (*member)->member_of = *set;
  (*set)->set_members.push_back(*member);
  return base::Status::kOk;
}

base::Status Kernel::PortSetRemove(Task& task, PortName set_name, PortName member_receive) {
  auto set = task.port_space().LookupReceive(set_name);
  if (!set.ok()) {
    return set.status();
  }
  auto member = task.port_space().LookupReceive(member_receive);
  if (!member.ok()) {
    return member.status();
  }
  if ((*member)->member_of != *set) {
    return base::Status::kNotFound;
  }
  (*member)->member_of = nullptr;
  auto& members = (*set)->set_members;
  members.erase(std::find(members.begin(), members.end(), *member));
  return base::Status::kOk;
}

base::Result<Port*> Kernel::ResolvePort(Task& task, PortName name) {
  auto right = task.port_space().Lookup(name);
  if (!right.ok()) {
    return right.status();
  }
  return (*right)->port;
}

// --- Traps -------------------------------------------------------------------------

PortName Kernel::TrapThreadSelf() {
  Thread* t = scheduler_.current();
  WPOS_DCHECK(t != nullptr) << "TrapThreadSelf outside thread context";
  EnterKernel(TrapEntryRegion());
  cpu().Execute(ThreadSelfRegion());
  cpu().AccessData(t->sim_addr(), 32, /*write=*/false);
  if (t->self_port() == nullptr) {
    Port* port = NewPort();
    port->set_receiver(t->task());
    t->set_self_port(port);
    cpu().Execute(PortAllocRegion());
    cpu().Execute(PortLookupRegion());
    cpu().AccessData(t->task()->port_space().sim_addr(), 32, /*write=*/true);
    t->set_self_port_name(t->task()->port_space().Insert(port, RightType::kSend));
  } else {
    cpu().Execute(PortLookupRegion());
    cpu().AccessData(t->task()->port_space().sim_addr(), 16, /*write=*/false);
  }
  const PortName name = t->self_port_name();
  LeaveKernel();
  return name;
}

TaskId Kernel::TrapTaskSelf() {
  Thread* t = scheduler_.current();
  WPOS_DCHECK(t != nullptr);
  EnterKernel(TrapEntryRegion());
  cpu().Execute(TaskSelfRegion());
  cpu().AccessData(t->task()->sim_addr(), 16, /*write=*/false);
  const TaskId id = t->task()->id();
  LeaveKernel();
  return id;
}

// --- Instrumentation ------------------------------------------------------------------

void Kernel::ChargeCopy(hw::PhysAddr src, hw::PhysAddr dst, uint64_t len) {
  if (len == 0) {
    return;
  }
  cpu().ExecuteInstructions(CopyLoopRegion(),
                            Costs::kCopyLoopOverhead + len / Costs::kCopyBytesPerInstr);
  const uint32_t line = cpu().config().dcache.line_bytes;
  for (uint64_t off = 0; off < len; off += line) {
    const uint32_t chunk = static_cast<uint32_t>(len - off < line ? len - off : line);
    cpu().AccessData(src + off, chunk, /*write=*/false);
    cpu().AccessData(dst + off, chunk, /*write=*/true);
  }
}

// --- Env ---------------------------------------------------------------------------------

void Env::Compute(uint64_t instructions) {
  kernel_.cpu().ExecuteInstructions(thread_->task()->app_code, instructions);
}

PortName Env::ThreadSelf() {
  static const hw::CodeRegion kStub =
      hw::DefineKernelCode("ustub.thread_self", Costs::kUserTrapStub);
  // The span opens before the user-level stub so its counter delta covers
  // the complete trap as the paper measured it: stub, kernel entry, body,
  // kernel exit.
  const uint64_t span = kernel_.tracer().BeginSpan(trace::SpanKind::kTrap,
                                                   trace::EventType::kTrapCall);
  kernel_.cpu().Execute(kStub);
  const PortName name = kernel_.TrapThreadSelf();
  kernel_.tracer().EndSpan(span, trace::EventType::kTrapReturn);
  return name;
}

}  // namespace mk
