// Deterministic, seeded fault injector.
//
// Host-side instrumentation in the same spirit as the tracer: disabled by
// default, and when disabled every Fire() call is a branch on one bool —
// no RNG draw, no allocation, and zero simulated cycles ever (the injector
// never touches hw::Cpu). When enabled, each armed fault point draws from
// one xorshift64* stream seeded by Enable(seed), so a campaign is replayed
// exactly by re-running with the same seed: same fire sequence, same trace.
//
// The injector only *decides*; each call site implements the returned mode
// (crash the task, drop the reply, kill the port, return kBusy) with the
// kernel state it has in hand. Every fired fault is recorded host-side and
// emitted as EventType::kFaultInjected so campaigns are auditable from the
// trace alone.
#ifndef SRC_MK_FAULT_INJECTOR_H_
#define SRC_MK_FAULT_INJECTOR_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/base/rng.h"
#include "src/mk/fault/points.h"

namespace mk {

namespace trace {
class Tracer;
}  // namespace trace

namespace fault {

// One fired fault, in firing order.
struct FiredFault {
  FaultPoint point = FaultPoint::kCount;
  FaultMode mode = FaultMode::kNone;
  uint64_t seq = 0;  // 0-based index in the campaign's firing order
};

class Injector {
 public:
  explicit Injector(trace::Tracer* tracer) : tracer_(tracer) {}

  // Arms the RNG stream. Clears any previous campaign state (log, counters,
  // per-point arming survive only until the next Enable).
  void Enable(uint64_t seed);
  void Disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }
  uint64_t seed() const { return seed_; }

  // Arms `point` to fire `mode` with probability `percent` (0..100) per
  // visit, for at most `max_fires` total fires. Re-arming replaces the
  // previous configuration for that point.
  void Arm(FaultPoint point, FaultMode mode, uint32_t percent = 100,
           uint64_t max_fires = ~0ull);
  // Arms kDelayReply at `point` with an explicit simulated-ns delay range
  // [min_ns, max_ns]; plain Arm(point, kDelayReply) uses the default range
  // below. Each fire's delay is drawn from the campaign's RNG stream, so it
  // replays with the seed like every other decision.
  void ArmDelay(FaultPoint point, uint64_t min_delay_ns, uint64_t max_delay_ns,
                uint32_t percent = 100, uint64_t max_fires = ~0ull);
  void DisarmAll();

  // Default kDelayReply range: long enough to trip queue build-up, short
  // enough that a robust client's per-attempt deadline survives it.
  static constexpr uint64_t kDefaultDelayMinNs = 500'000;
  static constexpr uint64_t kDefaultDelayMaxNs = 2'000'000;

  // Draws the simulated delay for a kDelayReply fire at `point` (call after
  // Fire() returned kDelayReply).
  uint64_t DrawDelayNs(FaultPoint point);

  // Called at each fault point. Returns the mode to apply, or kNone.
  // When the injector is disabled this is a single predictable branch.
  FaultMode Fire(FaultPoint point) {
    if (!enabled_) {
      return FaultMode::kNone;
    }
    return FireSlow(point);
  }

  // Campaign results (host-side, zero simulated cost).
  const std::vector<FiredFault>& log() const { return log_; }
  uint64_t fires(FaultPoint point) const {
    return points_[static_cast<size_t>(point)].fired;
  }
  uint64_t total_fires() const { return log_.size(); }

 private:
  struct PointState {
    FaultMode mode = FaultMode::kNone;
    uint32_t percent = 0;
    uint64_t max_fires = 0;
    uint64_t fired = 0;
    uint64_t delay_min_ns = kDefaultDelayMinNs;
    uint64_t delay_max_ns = kDefaultDelayMaxNs;
  };

  FaultMode FireSlow(FaultPoint point);

  trace::Tracer* tracer_;
  bool enabled_ = false;
  uint64_t seed_ = 0;
  base::Rng rng_{1};
  std::array<PointState, static_cast<size_t>(FaultPoint::kCount)> points_{};
  std::vector<FiredFault> log_;
};

}  // namespace fault
}  // namespace mk

#endif  // SRC_MK_FAULT_INJECTOR_H_
