#include "src/mk/fault/injector.h"

#include "src/base/log.h"
#include "src/mk/trace/tracer.h"

namespace mk {
namespace fault {

const char* FaultPointName(FaultPoint point) {
  switch (point) {
    case FaultPoint::kServerHandlerEntry:
      return "server_handler_entry";
    case FaultPoint::kRpcReply:
      return "rpc_reply";
    case FaultPoint::kMessageCopy:
      return "message_copy";
    case FaultPoint::kCount:
      break;
  }
  return "unknown";
}

const char* FaultModeName(FaultMode mode) {
  switch (mode) {
    case FaultMode::kNone:
      return "none";
    case FaultMode::kCrashTask:
      return "crash_task";
    case FaultMode::kDropReply:
      return "drop_reply";
    case FaultMode::kKillPort:
      return "kill_port";
    case FaultMode::kTransientError:
      return "transient_error";
    case FaultMode::kStallTask:
      return "stall_task";
    case FaultMode::kDelayReply:
      return "delay_reply";
    case FaultMode::kCount:
      break;
  }
  return "unknown";
}

void Injector::Enable(uint64_t seed) {
  enabled_ = true;
  seed_ = seed;
  rng_ = base::Rng(seed);
  points_ = {};
  log_.clear();
}

void Injector::Arm(FaultPoint point, FaultMode mode, uint32_t percent,
                   uint64_t max_fires) {
  PointState& state = points_[static_cast<size_t>(point)];
  state.mode = mode;
  state.percent = percent > 100 ? 100 : percent;
  state.max_fires = max_fires;
  state.fired = 0;
}

void Injector::ArmDelay(FaultPoint point, uint64_t min_delay_ns, uint64_t max_delay_ns,
                        uint32_t percent, uint64_t max_fires) {
  Arm(point, FaultMode::kDelayReply, percent, max_fires);
  PointState& state = points_[static_cast<size_t>(point)];
  state.delay_min_ns = min_delay_ns;
  state.delay_max_ns = max_delay_ns < min_delay_ns ? min_delay_ns : max_delay_ns;
}

uint64_t Injector::DrawDelayNs(FaultPoint point) {
  const PointState& state = points_[static_cast<size_t>(point)];
  const uint64_t span = state.delay_max_ns - state.delay_min_ns;
  return state.delay_min_ns + (span == 0 ? 0 : rng_.NextBelow(span + 1));
}

void Injector::DisarmAll() {
  // Disarm but keep the per-point fire counts: disarming ends a campaign
  // (e.g. before orderly shutdown), it does not erase its results.
  for (PointState& state : points_) {
    state.mode = FaultMode::kNone;
    state.percent = 0;
    state.max_fires = 0;
  }
}

FaultMode Injector::FireSlow(FaultPoint point) {
  PointState& state = points_[static_cast<size_t>(point)];
  if (state.mode == FaultMode::kNone || state.fired >= state.max_fires) {
    return FaultMode::kNone;
  }
  // Draw even at 100% so the schedule depends only on the seed and the
  // sequence of visits, not on the arming percentages.
  const uint64_t draw = rng_.NextBelow(100);
  if (draw >= state.percent) {
    return FaultMode::kNone;
  }
  ++state.fired;
  log_.push_back(FiredFault{point, state.mode, log_.size()});
  if (tracer_ != nullptr) {
    tracer_->Emit(trace::EventType::kFaultInjected,
                  static_cast<uint64_t>(point),
                  static_cast<uint64_t>(state.mode));
    ++tracer_->metrics().Counter("fault.fired");
  }
  WPOS_LOG(kInfo) << "fault: fired " << FaultPointName(point) << "/"
                  << FaultModeName(state.mode) << " (seq " << log_.size() - 1
                  << ")";
  return state.mode;
}

}  // namespace fault
}  // namespace mk
