// Central registry of fault-injection points and modes.
//
// Like the trace-event registry (src/mk/trace/events.h), every named fault
// point and fault mode is declared here, once — tools/lint.py rejects
// FaultPoint/FaultMode references that are not members of these enums, so
// fault campaigns run against an auditable, stable set of names and a seed
// recorded against one build replays against another.
#ifndef SRC_MK_FAULT_POINTS_H_
#define SRC_MK_FAULT_POINTS_H_

#include <cstdint>

namespace mk {
namespace fault {

// Where a fault can fire. Each point documents which modes make sense there;
// Injector::Fire returns the armed mode and the call site implements it.
enum class FaultPoint : uint8_t {
  // ServerLoop::Run, after the op code is parsed and before the handler is
  // dispatched. Supports every mode: kCrashTask (terminate the serving
  // task), kDropReply (swallow the request; the client needs a deadline),
  // kKillPort (destroy the service port), kTransientError (reply kBusy),
  // kStallTask (park the serving thread forever — a wedged-but-alive server
  // only a watchdog can recover), kDelayReply (sleep a seeded simulated
  // delay before handling — an overloaded-but-correct server).
  kServerHandlerEntry = 0,
  // Kernel::RpcReply / RpcReplyAndReceive, after the in-flight waiter is
  // found. Supports kCrashTask, kDropReply (waiter erased, client never
  // woken), kKillPort (request port destroyed), kTransientError (client
  // completes with kBusy).
  kRpcReply,
  // Kernel::RpcCallOnPort, before the request bytes are handed to a server.
  // Supports kTransientError only (the call fails with kBusy before any
  // state transfer, so the server stays cleanly parked).
  kMessageCopy,
  kCount,
};

const char* FaultPointName(FaultPoint point);

// What happens when a fault fires.
enum class FaultMode : uint8_t {
  kNone = 0,        // nothing fired (injector disabled / point not armed)
  kCrashTask,       // terminate the serving task (death notification path)
  kDropReply,       // swallow the reply; the caller sees only its deadline
  kKillPort,        // mark the request port dead
  kTransientError,  // fail the operation with kBusy, leave state intact
  kStallTask,       // park the serving thread forever (wedged, not dead)
  kDelayReply,      // delay the operation by a seeded simulated-time amount
  kCount,
};

const char* FaultModeName(FaultMode mode);

}  // namespace fault
}  // namespace mk

#endif  // SRC_MK_FAULT_POINTS_H_
