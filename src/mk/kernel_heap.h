// Kernel "heap" of simulated physical addresses.
//
// Kernel objects (threads, ports, message buffers, page tables) are ordinary
// C++ objects, but the D-cache model needs physical addresses for them so
// that walking a port space or touching a thread control block has realistic
// cache behaviour. Each kernel object asks this allocator for a simulated
// address range at construction. The range is carved from machine RAM so the
// kernel's data competes for the same cache sets as user data, as it did on
// the real machines.
#ifndef SRC_MK_KERNEL_HEAP_H_
#define SRC_MK_KERNEL_HEAP_H_

#include <cstdint>

#include "src/base/log.h"
#include "src/hw/types.h"

namespace mk {

class KernelHeap {
 public:
  KernelHeap(hw::PhysAddr base, uint64_t size) : base_(base), next_(base), end_(base + size) {}

  hw::PhysAddr Allocate(uint64_t size, uint64_t align = 16) {
    hw::PhysAddr addr = (next_ + align - 1) & ~(align - 1);
    WPOS_CHECK(addr + size <= end_) << "kernel heap exhausted";
    next_ = addr + size;
    bytes_allocated_ += size;
    return addr;
  }

  uint64_t bytes_allocated() const { return bytes_allocated_; }
  hw::PhysAddr base() const { return base_; }

 private:
  hw::PhysAddr base_;
  hw::PhysAddr next_;
  hw::PhysAddr end_;
  uint64_t bytes_allocated_ = 0;
};

}  // namespace mk

#endif  // SRC_MK_KERNEL_HEAP_H_
