// Server-loop helper shared by every RPC server in the system: receives
// requests on a port, demultiplexes on a 32-bit operation code at the start
// of the request, and charges the modelled server-stub and loop costs.
// Requests are POD structs whose first field is the op code.
#ifndef SRC_MK_SERVER_LOOP_H_
#define SRC_MK_SERVER_LOOP_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/mk/kernel.h"

namespace mk {

class ServerLoop {
 public:
  // A handler receives the raw request and must end with env.RpcReply(token,
  // ...). `ref_data`/`ref_len` is by-reference bulk data the client attached.
  using Handler = std::function<void(Env& env, const RpcRequest& request, const uint8_t* req,
                                     const uint8_t* ref_data, uint32_t ref_len)>;

  // `interface` names the server's stub image for the I-cache model (each
  // server's stubs are distinct linked code, as they were in WPOS).
  ServerLoop(PortName receive_port, const std::string& interface, uint32_t max_request = 512,
             uint32_t max_ref = 64 * 1024)
      : port_(receive_port),
        interface_(interface),
        stub_region_(hw::DefineKernelCode("stub." + interface, Costs::kRpcServerStub)),
        loop_region_(hw::DefineKernelCode("loop." + interface, Costs::kRpcServerLoop)),
        request_buf_(max_request),
        ref_buf_(max_ref) {}

  void Register(uint32_t op, Handler handler) { handlers_[op] = std::move(handler); }

  // Arms watchdog heartbeats: the loop sends a HeartbeatPing to
  // `health_right` (a send right in the serving task's space, minted by
  // RestartManager::HealthRightFor) after every `every_requests` requests
  // and whenever `every_ns` of simulated time passed since the last beat.
  // Pings are sent with a zero timeout so a full or dead health port can
  // never block the server; a wedged thread stops beating — which is the
  // signal. Call before Run().
  void EnableHeartbeat(PortName health_right, uint64_t every_requests, uint64_t every_ns) {
    health_right_ = health_right;
    heartbeat_every_requests_ = every_requests == 0 ? 1 : every_requests;
    heartbeat_every_ns_ = every_ns;
  }

  // Shuts the loop down deterministically: the receive port is destroyed
  // immediately, so a server parked between receives wakes with kPortDead
  // and exits, and every caller — queued or future — observes kPortDead
  // rather than a request that may or may not still be served. Callable from
  // any thread (including a handler) once Run() has started; calling it
  // before Run() makes Run() destroy the port and return at once.
  void Stop() {
    stop_requested_ = true;
    running_ = false;
    if (env_ != nullptr) {
      DestroyReceivePort(*env_);
    }
  }
  bool running() const { return running_; }

  // Runs until Stop() or the port dies. Unknown ops get an empty error reply.
  void Run(Env& env) {
    env_ = &env;
    if (stop_requested_) {
      DestroyReceivePort(env);
      env_ = nullptr;
      return;
    }
    running_ = true;
    if (health_right_ != kNullPort) {
      SendHeartbeat(env);  // first beat arms the watchdog deadline
    }
    while (running_) {
      RpcRef ref;
      ref.recv_buf = ref_buf_.data();
      ref.recv_cap = static_cast<uint32_t>(ref_buf_.size());
      // With heartbeats armed the park is bounded so an idle server still
      // wakes to beat; without them this is the plain blocking receive.
      const uint64_t receive_timeout =
          health_right_ != kNullPort && heartbeat_every_ns_ != 0 ? heartbeat_every_ns_ : kForever;
      auto request = env.RpcReceive(port_, request_buf_.data(),
                                    static_cast<uint32_t>(request_buf_.size()), &ref,
                                    receive_timeout);
      if (!request.ok()) {
        if (request.status() == base::Status::kTooLarge) {
          // An oversized queued request was already failed back to its
          // client; the loop itself is healthy — keep serving. Breaking here
          // would tear down the port under every other queued caller.
          continue;
        }
        if (request.status() == base::Status::kTimedOut) {
          // Idle heartbeat tick: nothing arrived within the beat interval.
          SendHeartbeat(env);
          continue;
        }
        break;  // port destroyed or task aborted
      }
      if (health_right_ != kNullPort) {
        // Beat on arrival (before the handler runs) so a request that wedges
        // the handler starts the watchdog clock at its own dispatch.
        ++requests_since_beat_;
        if (requests_since_beat_ >= heartbeat_every_requests_ ||
            (heartbeat_every_ns_ != 0 && env.NowNs() - last_beat_ns_ >= heartbeat_every_ns_)) {
          SendHeartbeat(env);
        }
      }
      env.kernel().cpu().Execute(loop_region_);
      env.kernel().cpu().Execute(stub_region_);
      uint32_t op = 0;
      if (request->req_len >= sizeof(uint32_t)) {
        std::memcpy(&op, request_buf_.data(), sizeof(uint32_t));
      }
      // Fault point: the handler entry, after demultiplexing and before any
      // handler state changes — the injected failure is indistinguishable
      // from the server crashing at the top of the operation.
      switch (env.kernel().faults().Fire(fault::FaultPoint::kServerHandlerEntry)) {
        case fault::FaultMode::kNone:
          break;
        case fault::FaultMode::kCrashTask:
          // The task teardown destroys the receive port and fails this
          // request's client (and every queued one) with kPortDead.
          port_destroyed_ = true;
          running_ = false;
          env_ = nullptr;
          env.kernel().TerminateTask(&env.task());
          return;
        case fault::FaultMode::kDropReply:
          continue;  // swallow: the client waits out its deadline
        case fault::FaultMode::kKillPort:
          DestroyReceivePort(env);
          running_ = false;
          env_ = nullptr;
          return;
        case fault::FaultMode::kTransientError:
          env.RpcReply(request->token, nullptr, 0, nullptr, 0, kNullPort, base::Status::kBusy);
          continue;
        case fault::FaultMode::kStallTask: {
          // Wedged, not dead: the thread parks forever mid-request and stops
          // heartbeating. Only a watchdog TerminateTask recovers it — the
          // teardown fails this client and every queued one with kPortDead.
          running_ = false;
          env_ = nullptr;
          (void)env.kernel().StallForever();
          // Only reached once the stall is aborted by task teardown.
          port_destroyed_ = true;
          return;
        }
        case fault::FaultMode::kDelayReply:
          // Overloaded, not broken: sleep a seeded simulated delay, then
          // serve the request normally. Queued callers see the added wait.
          (void)env.SleepNs(
              env.kernel().faults().DrawDelayNs(fault::FaultPoint::kServerHandlerEntry));
          break;
        case fault::FaultMode::kCount:
          break;
      }
      trace::Tracer& tracer = env.kernel().tracer();
      trace::ScopedSpan op_span(tracer, trace::SpanKind::kServerOp,
                                trace::EventType::kServerDispatch, trace::EventType::kServerDone,
                                op);
      op_span.set_end_payload(op);
      tracer.LabelSpan(op_span.id(), interface_);
      ++tracer.metrics().Counter("server." + interface_ + ".ops");
      auto it = handlers_.find(op);
      if (it == handlers_.end()) {
        env.RpcReply(request->token, nullptr, 0, nullptr, 0, kNullPort,
                     base::Status::kNotSupported);
      } else {
        it->second(env, *request, request_buf_.data(), ref_buf_.data(), ref.recv_len);
      }
    }
    DestroyReceivePort(env);
    running_ = false;
    env_ = nullptr;
  }

 private:
  void DestroyReceivePort(Env& env) {
    if (!port_destroyed_) {
      port_destroyed_ = true;
      (void)env.kernel().PortDestroy(env.task(), port_);
    }
  }

  void SendHeartbeat(Env& env) {
    HeartbeatPing ping{env.task().id()};
    MachMessage msg;
    msg.msg_id = kHeartbeatMsgId;
    msg.dest = health_right_;
    msg.inline_data.assign(reinterpret_cast<const uint8_t*>(&ping),
                           reinterpret_cast<const uint8_t*>(&ping) + sizeof(ping));
    // Zero timeout: a full or dead health port must never block the server.
    // A dropped beat only advances the watchdog clock, it cannot wedge us.
    (void)env.kernel().MachMsgSend(std::move(msg), /*timeout_ns=*/0);
    last_beat_ns_ = env.NowNs();
    requests_since_beat_ = 0;
  }

  PortName port_;
  std::string interface_;
  hw::CodeRegion stub_region_;
  hw::CodeRegion loop_region_;
  std::vector<uint8_t> request_buf_;
  std::vector<uint8_t> ref_buf_;
  std::unordered_map<uint32_t, Handler> handlers_;
  Env* env_ = nullptr;  // set while Run() is active; lets Stop() act at once
  bool running_ = false;
  bool stop_requested_ = false;
  bool port_destroyed_ = false;
  PortName health_right_ = kNullPort;  // kNullPort = heartbeats disabled
  uint64_t heartbeat_every_requests_ = 1;
  uint64_t heartbeat_every_ns_ = 0;  // 0 = beat only on requests
  uint64_t requests_since_beat_ = 0;
  uint64_t last_beat_ns_ = 0;
};

// Client-side stub helper: charges a per-interface stub region around a
// typed call. REQ/REP are POD structs.
class ClientStub {
 public:
  ClientStub(const std::string& interface, PortName port)
      : region_(hw::DefineKernelCode("cstub." + interface, Costs::kRpcClientStub)), port_(port) {}

  PortName port() const { return port_; }

  // Deadline applied when a call site passes kForever (the common case):
  // lets a client library bound every call against a possibly-wedged server
  // without touching each call site. kForever (default) = unbounded.
  void set_default_timeout_ns(uint64_t ns) { default_timeout_ns_ = ns; }

  template <typename Req, typename Rep>
  base::Status Call(Env& env, const Req& req, Rep* rep, RpcRef* ref = nullptr,
                    const RightDescriptor* rights = nullptr, uint32_t rights_count = 0,
                    PortName* granted = nullptr, uint64_t timeout_ns = kForever) {
    env.kernel().cpu().Execute(region_);
    uint32_t reply_len = 0;
    if (timeout_ns == kForever) {
      timeout_ns = default_timeout_ns_;
    }
    return env.RpcCall(port_, &req, sizeof(Req), rep, sizeof(Rep), &reply_len, ref, rights,
                       rights_count, granted, timeout_ns);
  }

 private:
  hw::CodeRegion region_;
  PortName port_;
  uint64_t default_timeout_ns_ = kForever;
};

}  // namespace mk

#endif  // SRC_MK_SERVER_LOOP_H_
