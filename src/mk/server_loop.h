// Server-loop helper shared by every RPC server in the system: receives
// requests on a port, demultiplexes on a 32-bit operation code at the start
// of the request, and charges the modelled server-stub and loop costs.
// Requests are POD structs whose first field is the op code.
#ifndef SRC_MK_SERVER_LOOP_H_
#define SRC_MK_SERVER_LOOP_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/mk/kernel.h"

namespace mk {

class ServerLoop {
 public:
  // A handler receives the raw request and must end with env.RpcReply(token,
  // ...). `ref_data`/`ref_len` is by-reference bulk data the client attached.
  using Handler = std::function<void(Env& env, const RpcRequest& request, const uint8_t* req,
                                     const uint8_t* ref_data, uint32_t ref_len)>;

  // `interface` names the server's stub image for the I-cache model (each
  // server's stubs are distinct linked code, as they were in WPOS).
  ServerLoop(PortName receive_port, const std::string& interface, uint32_t max_request = 512,
             uint32_t max_ref = 64 * 1024)
      : port_(receive_port),
        interface_(interface),
        stub_region_(hw::DefineKernelCode("stub." + interface, Costs::kRpcServerStub)),
        loop_region_(hw::DefineKernelCode("loop." + interface, Costs::kRpcServerLoop)),
        request_buf_(max_request),
        ref_buf_(max_ref) {}

  void Register(uint32_t op, Handler handler) { handlers_[op] = std::move(handler); }

  // Shuts the loop down deterministically: the receive port is destroyed
  // immediately, so a server parked between receives wakes with kPortDead
  // and exits, and every caller — queued or future — observes kPortDead
  // rather than a request that may or may not still be served. Callable from
  // any thread (including a handler) once Run() has started; calling it
  // before Run() makes Run() destroy the port and return at once.
  void Stop() {
    stop_requested_ = true;
    running_ = false;
    if (env_ != nullptr) {
      DestroyReceivePort(*env_);
    }
  }
  bool running() const { return running_; }

  // Runs until Stop() or the port dies. Unknown ops get an empty error reply.
  void Run(Env& env) {
    env_ = &env;
    if (stop_requested_) {
      DestroyReceivePort(env);
      env_ = nullptr;
      return;
    }
    running_ = true;
    while (running_) {
      RpcRef ref;
      ref.recv_buf = ref_buf_.data();
      ref.recv_cap = static_cast<uint32_t>(ref_buf_.size());
      auto request = env.RpcReceive(port_, request_buf_.data(),
                                    static_cast<uint32_t>(request_buf_.size()), &ref);
      if (!request.ok()) {
        if (request.status() == base::Status::kTooLarge) {
          // An oversized queued request was already failed back to its
          // client; the loop itself is healthy — keep serving. Breaking here
          // would tear down the port under every other queued caller.
          continue;
        }
        break;  // port destroyed or task aborted
      }
      env.kernel().cpu().Execute(loop_region_);
      env.kernel().cpu().Execute(stub_region_);
      uint32_t op = 0;
      if (request->req_len >= sizeof(uint32_t)) {
        std::memcpy(&op, request_buf_.data(), sizeof(uint32_t));
      }
      // Fault point: the handler entry, after demultiplexing and before any
      // handler state changes — the injected failure is indistinguishable
      // from the server crashing at the top of the operation.
      switch (env.kernel().faults().Fire(fault::FaultPoint::kServerHandlerEntry)) {
        case fault::FaultMode::kNone:
          break;
        case fault::FaultMode::kCrashTask:
          // The task teardown destroys the receive port and fails this
          // request's client (and every queued one) with kPortDead.
          port_destroyed_ = true;
          running_ = false;
          env_ = nullptr;
          env.kernel().TerminateTask(&env.task());
          return;
        case fault::FaultMode::kDropReply:
          continue;  // swallow: the client waits out its deadline
        case fault::FaultMode::kKillPort:
          DestroyReceivePort(env);
          running_ = false;
          env_ = nullptr;
          return;
        case fault::FaultMode::kTransientError:
          env.RpcReply(request->token, nullptr, 0, nullptr, 0, kNullPort, base::Status::kBusy);
          continue;
        case fault::FaultMode::kCount:
          break;
      }
      trace::Tracer& tracer = env.kernel().tracer();
      trace::ScopedSpan op_span(tracer, trace::SpanKind::kServerOp,
                                trace::EventType::kServerDispatch, trace::EventType::kServerDone,
                                op);
      op_span.set_end_payload(op);
      tracer.LabelSpan(op_span.id(), interface_);
      ++tracer.metrics().Counter("server." + interface_ + ".ops");
      auto it = handlers_.find(op);
      if (it == handlers_.end()) {
        env.RpcReply(request->token, nullptr, 0, nullptr, 0, kNullPort,
                     base::Status::kNotSupported);
      } else {
        it->second(env, *request, request_buf_.data(), ref_buf_.data(), ref.recv_len);
      }
    }
    DestroyReceivePort(env);
    running_ = false;
    env_ = nullptr;
  }

 private:
  void DestroyReceivePort(Env& env) {
    if (!port_destroyed_) {
      port_destroyed_ = true;
      (void)env.kernel().PortDestroy(env.task(), port_);
    }
  }

  PortName port_;
  std::string interface_;
  hw::CodeRegion stub_region_;
  hw::CodeRegion loop_region_;
  std::vector<uint8_t> request_buf_;
  std::vector<uint8_t> ref_buf_;
  std::unordered_map<uint32_t, Handler> handlers_;
  Env* env_ = nullptr;  // set while Run() is active; lets Stop() act at once
  bool running_ = false;
  bool stop_requested_ = false;
  bool port_destroyed_ = false;
};

// Client-side stub helper: charges a per-interface stub region around a
// typed call. REQ/REP are POD structs.
class ClientStub {
 public:
  ClientStub(const std::string& interface, PortName port)
      : region_(hw::DefineKernelCode("cstub." + interface, Costs::kRpcClientStub)), port_(port) {}

  PortName port() const { return port_; }

  template <typename Req, typename Rep>
  base::Status Call(Env& env, const Req& req, Rep* rep, RpcRef* ref = nullptr,
                    const RightDescriptor* rights = nullptr, uint32_t rights_count = 0,
                    PortName* granted = nullptr, uint64_t timeout_ns = kForever) {
    env.kernel().cpu().Execute(region_);
    uint32_t reply_len = 0;
    return env.RpcCall(port_, &req, sizeof(Req), rep, sizeof(Rep), &reply_len, ref, rights,
                       rights_count, granted, timeout_ns);
  }

 private:
  hw::CodeRegion region_;
  PortName port_;
};

}  // namespace mk

#endif  // SRC_MK_SERVER_LOOP_H_
