// VM objects: the unit of memory backing, as in Mach. An object holds pages
// (physical frames), may shadow another object (copy-on-write chains), and
// may be backed by an external memory object (a pager port) in the style of
// the OSF RI external memory-management interface.
#ifndef SRC_MK_VM_OBJECT_H_
#define SRC_MK_VM_OBJECT_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/hw/types.h"
#include "src/mk/ids.h"

namespace mk {

class Port;

class VmObject {
 public:
  enum class Backing : uint8_t {
    kAnonymous,  // zero-fill on first touch
    kPager,      // pages supplied by an external memory object
    kDevice,     // fixed physical window (framebuffer, DMA buffers)
  };

  explicit VmObject(uint64_t size, Backing backing = Backing::kAnonymous)
      : size_(size), backing_(backing) {}

  uint64_t size() const { return size_; }
  Backing backing() const { return backing_; }

  // --- Resident pages ---------------------------------------------------------
  // page index (within this object) -> frame base physical address
  bool HasPage(uint64_t index) const { return pages_.contains(index); }
  base::Result<hw::PhysAddr> GetPage(uint64_t index) const {
    auto it = pages_.find(index);
    if (it == pages_.end()) {
      return base::Status::kNotFound;
    }
    return it->second;
  }
  void InstallPage(uint64_t index, hw::PhysAddr frame) { pages_[index] = frame; }
  void RemovePage(uint64_t index) { pages_.erase(index); }
  const std::unordered_map<uint64_t, hw::PhysAddr>& pages() const { return pages_; }
  size_t resident_pages() const { return pages_.size(); }

  // --- Shadowing (COW) ----------------------------------------------------------
  const std::shared_ptr<VmObject>& shadow_parent() const { return shadow_parent_; }
  void SetShadow(std::shared_ptr<VmObject> parent) { shadow_parent_ = std::move(parent); }

  // Finds the frame backing `index`, walking the shadow chain. Returns the
  // object that owns it via `owner` (null if not resident anywhere).
  base::Result<hw::PhysAddr> LookupThroughShadow(uint64_t index, const VmObject** owner) const;

  // --- Pager backing -------------------------------------------------------------
  Port* pager_port() const { return pager_port_; }
  uint64_t pager_offset() const { return pager_offset_; }
  uint64_t pager_object_id() const { return pager_object_id_; }
  void SetPager(Port* port, uint64_t offset, uint64_t object_id) {
    backing_ = Backing::kPager;
    pager_port_ = port;
    pager_offset_ = offset;
    pager_object_id_ = object_id;
  }

  // --- Dirty tracking (managed file-backed objects) -------------------------------
  // Opt-in: a managed object maps clean pages read-only so the first write
  // faults and records the page as dirty (the external-memory-manager
  // precious-page discipline). Only file-backed objects created by a mapping
  // file server enable this; anonymous and default-pager objects keep the
  // original fault behaviour bit for bit.
  bool dirty_tracking() const { return dirty_tracking_; }
  void EnableDirtyTracking() { dirty_tracking_ = true; }
  bool IsDirty(uint64_t index) const { return dirty_.contains(index); }
  void MarkDirty(uint64_t index) { dirty_.insert(index); }
  void ClearDirty(uint64_t index) { dirty_.erase(index); }
  size_t dirty_pages() const { return dirty_.size(); }
  // Dirty page indices within [first, first+count), ascending.
  std::vector<uint64_t> DirtyPages(uint64_t first, uint64_t count) const {
    std::vector<uint64_t> out;
    for (auto it = dirty_.lower_bound(first); it != dirty_.end() && *it < first + count; ++it) {
      out.push_back(*it);
    }
    return out;
  }
  // Resident page indices, ascending — for deterministic iteration over the
  // unordered resident-page map.
  std::vector<uint64_t> ResidentPagesSorted() const {
    std::vector<uint64_t> out;
    out.reserve(pages_.size());
    for (const auto& [index, frame] : pages_) {  // unordered-ok: sorted below
      out.push_back(index);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  // Set once the kernel has sent kObjectSetup for the first live mapping.
  bool pager_initialized() const { return pager_initialized_; }
  void set_pager_initialized(bool v) { pager_initialized_ = v; }

  // --- Device backing -------------------------------------------------------------
  void SetDeviceWindow(hw::PhysAddr base) {
    backing_ = Backing::kDevice;
    device_base_ = base;
  }
  hw::PhysAddr device_base() const { return device_base_; }

 private:
  uint64_t size_;
  Backing backing_;
  std::unordered_map<uint64_t, hw::PhysAddr> pages_;
  std::shared_ptr<VmObject> shadow_parent_;
  Port* pager_port_ = nullptr;
  uint64_t pager_offset_ = 0;
  uint64_t pager_object_id_ = 0;
  hw::PhysAddr device_base_ = 0;
  bool dirty_tracking_ = false;
  bool pager_initialized_ = false;
  std::set<uint64_t> dirty_;  // ordered: writeback scans must be deterministic
};

}  // namespace mk

#endif  // SRC_MK_VM_OBJECT_H_
