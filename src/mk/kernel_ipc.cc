// Legacy Mach 3.0 IPC: mach_msg with queued asynchronous delivery, reply
// ports, kernel message buffers (two-copy), and virtual (COW) copy of
// out-of-line data. Retained as the baseline against which the paper's RPC
// rework reports its 2-10x improvement.
#include <cstring>

#include "src/base/log.h"
#include "src/mk/kernel.h"
#include "src/mk/vm_object.h"

namespace mk {

namespace {
const hw::CodeRegion& UserStubRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("ustub.mach_msg", Costs::kMachMsgUserStub);
  return r;
}
const hw::CodeRegion& SendPathRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.ipc.msg_send", Costs::kMachMsgSendPath);
  return r;
}
const hw::CodeRegion& ReceivePathRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.ipc.msg_receive", Costs::kMachMsgReceivePath);
  return r;
}
const hw::CodeRegion& KmsgRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.ipc.kmsg", Costs::kMachMsgKernelBuffer);
  return r;
}
const hw::CodeRegion& ReplyPortRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.ipc.reply_port", Costs::kReplyPortManage);
  return r;
}
const hw::CodeRegion& OolPrepareRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.ipc.ool_prepare", Costs::kOolPreparePerPage);
  return r;
}
const hw::CodeRegion& OolReceiveRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.ipc.ool_receive", Costs::kOolReceivePerPage);
  return r;
}
const hw::CodeRegion& TrapEntry() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.trap.entry", Costs::kTrapEntry);
  return r;
}
}  // namespace

base::Status Kernel::MachMsgSend(MachMessage&& msg, uint64_t timeout_ns) {
  Thread* sender = scheduler_.current();
  WPOS_DCHECK(sender != nullptr) << "MachMsgSend outside thread context";
  if (sync_observer_ != nullptr) {
    sync_observer_->OnOpLabel(sender, "MachMsgSend", msg.msg_id);
  }
  Task& task = *sender->task();
  trace::ScopedSpan span(*tracer_, trace::SpanKind::kIpcSend, trace::EventType::kIpcSend,
                         trace::EventType::kIpcSendDone, msg.msg_id);
  ++tracer_->metrics().Counter("mk.ipc.sends");
  cpu().Execute(UserStubRegion());
  EnterKernel(TrapEntry());
  cpu().Execute(SendPathRegion());
  cpu().Execute(KmsgRegion());
  cpu().AccessData(task.port_space().sim_addr(), 32, /*write=*/false);

  auto dest = task.port_space().LookupSendable(msg.dest);
  if (!dest.ok()) {
    LeaveKernel();
    return dest.status();
  }
  Port* port = *dest;
  ++mach_msgs_;
  ++port->send_count;
  cpu().AccessData(port->sim_addr(), 64, /*write=*/true);

  auto qm = std::make_unique<QueuedMessage>();
  qm->msg_id = msg.msg_id;
  qm->send_cycle = cpu().cycles();
  // Copy #1: user data into the kernel message buffer.
  qm->kernel_buffer = heap_->Allocate(msg.inline_data.size() + 64);
  qm->inline_data = std::move(msg.inline_data);
  if (!qm->inline_data.empty()) {
    const uint64_t span = qm->inline_data.size() < Thread::kMsgWindowSize ? qm->inline_data.size()
                                                                          : Thread::kMsgWindowSize;
    ChargeCopy(sender->msg_window(), qm->kernel_buffer, span);
  }
  // Reply port: the per-RPC send-once right churn of the old system.
  if (msg.reply_port != kNullPort) {
    cpu().Execute(ReplyPortRegion());
    auto reply = task.port_space().Lookup(msg.reply_port);
    if (!reply.ok()) {
      LeaveKernel();
      return reply.status();
    }
    qm->reply = {.port = (*reply)->port, .disposition = RightType::kSendOnce};
  }
  for (const RightDescriptor& rd : msg.rights) {
    auto right = task.port_space().LookupSendable(rd.name);
    if (!right.ok()) {
      LeaveKernel();
      return right.status();
    }
    qm->rights.push_back({.port = *right, .disposition = rd.disposition});
  }
  // OOL regions: virtual copy — COW snapshot of the sender pages.
  for (const OolDescriptor& ool : msg.ool) {
    const uint64_t pages = hw::PageRound(ool.size) >> hw::kPageShift;
    for (uint64_t i = 0; i < pages; ++i) {
      cpu().Execute(OolPrepareRegion());
    }
    auto snap = SnapshotForOol(task, ool.address, ool.size);
    if (!snap.ok()) {
      LeaveKernel();
      return snap.status();
    }
    qm->ool.push_back({.object = *snap, .size = ool.size});
    if (ool.deallocate_sender) {
      (void)VmDeallocate(task, hw::PageTrunc(ool.address), hw::PageRound(ool.size));
    }
  }

  // Queue, blocking while full (the queuing/blocking behaviour RPC removed).
  while (port->queue.size() >= port->queue_limit) {
    if (port->dead()) {
      LeaveKernel();
      return base::Status::kPortDead;
    }
    StartTimedWake(sender, timeout_ns);
    const base::Status st = scheduler_.Block(Thread::State::kBlocked, &port->blocked_senders);
    if (st != base::Status::kOk) {
      LeaveKernel();
      return st;
    }
  }
  if (port->dead()) {
    LeaveKernel();
    return base::Status::kPortDead;
  }
  port->queue.push_back(std::move(qm));
  tracer_->metrics().GaugeMax("mk.ipc.queue_depth_hwm", port->queue.size());
  if (sync_observer_ != nullptr) {
    // Queued channel edge: the sender's clock joins the port; the eventual
    // receiver absorbs it at dequeue even if it was never blocked here.
    sync_observer_->OnChannelSend(port->id(), sender);
  }
  WakeOneReceiver(port);
  LeaveKernel();
  return base::Status::kOk;
}

base::Status Kernel::MachMsgReceive(PortName name, MachMessage* out, uint64_t timeout_ns) {
  Thread* receiver = scheduler_.current();
  WPOS_DCHECK(receiver != nullptr) << "MachMsgReceive outside thread context";
  if (sync_observer_ != nullptr) {
    sync_observer_->OnOpLabel(receiver, "MachMsgReceive", name);
  }
  Task& task = *receiver->task();
  trace::ScopedSpan span(*tracer_, trace::SpanKind::kIpcReceive, trace::EventType::kIpcReceive,
                         trace::EventType::kIpcReceiveDone);
  ++tracer_->metrics().Counter("mk.ipc.receives");
  cpu().Execute(UserStubRegion());
  EnterKernel(TrapEntry());
  cpu().Execute(ReceivePathRegion());
  cpu().AccessData(task.port_space().sim_addr(), 32, /*write=*/false);

  auto port_r = task.port_space().LookupReceive(name);
  if (!port_r.ok()) {
    LeaveKernel();
    return port_r.status();
  }
  Port* port = *port_r;
  // On a port set, receive from whichever member has a queued message.
  auto pick_source = [&]() -> Port* {
    if (!port->is_port_set) {
      return port->queue.empty() ? nullptr : port;
    }
    for (Port* member : port->set_members) {
      if (!member->queue.empty()) {
        return member;
      }
    }
    return nullptr;
  };
  Port* source = pick_source();
  while (source == nullptr) {
    if (port->dead()) {
      LeaveKernel();
      return base::Status::kPortDead;
    }
    StartTimedWake(receiver, timeout_ns);
    const base::Status st = scheduler_.Block(Thread::State::kBlocked, &port->blocked_receivers);
    if (st != base::Status::kOk) {
      LeaveKernel();
      return st;
    }
    source = pick_source();
  }
  std::unique_ptr<QueuedMessage> qm = std::move(source->queue.front());
  source->queue.pop_front();
  if (sync_observer_ != nullptr) {
    sync_observer_->OnChannelRecv(source->id(), receiver);
  }
  span.set_end_payload(qm->msg_id);
  cpu().Execute(KmsgRegion());
  cpu().AccessData(source->sim_addr(), 64, /*write=*/true);

  out->msg_id = qm->msg_id;
  out->dest = name;
  // Copy #2: kernel buffer out to the receiver.
  out->inline_data = std::move(qm->inline_data);
  if (!out->inline_data.empty()) {
    const uint64_t span = out->inline_data.size() < Thread::kMsgWindowSize
                              ? out->inline_data.size()
                              : Thread::kMsgWindowSize;
    ChargeCopy(qm->kernel_buffer, receiver->msg_window(), span);
  }
  out->reply_port = kNullPort;
  if (qm->reply.port != nullptr) {
    cpu().Execute(ReplyPortRegion());
    out->reply_port = task.port_space().Insert(qm->reply.port, qm->reply.disposition);
  }
  out->rights.clear();
  for (const QueuedMessage::ResolvedRight& rr : qm->rights) {
    const PortName n = task.port_space().Insert(rr.port, rr.disposition);
    if (rr.disposition == RightType::kReceive) {
      rr.port->set_receiver(&task);
    }
    out->rights.push_back({.name = n, .disposition = rr.disposition});
  }
  out->ool.clear();
  for (QueuedMessage::OolRegion& region : qm->ool) {
    const uint64_t pages = hw::PageRound(region.size) >> hw::kPageShift;
    for (uint64_t i = 0; i < pages; ++i) {
      cpu().Execute(OolReceiveRegion());
    }
    auto addr = VmMapObject(task, region.object, 0, hw::PageRound(region.size), Prot::kReadWrite,
                            /*anywhere=*/true);
    if (!addr.ok()) {
      LeaveKernel();
      return addr.status();
    }
    out->ool.push_back({.address = *addr, .size = region.size, .deallocate_sender = false});
  }
  if (Thread* blocked = source->blocked_senders.DequeueFront()) {
    blocked->waiting_on = nullptr;
    scheduler_.Wake(blocked, base::Status::kOk);
  }
  LeaveKernel();
  return base::Status::kOk;
}

}  // namespace mk
