#include "src/mk/scheduler.h"

#include "src/base/log.h"
#include "src/mk/kernel.h"
#include "src/mk/task.h"

namespace mk {

namespace {
// The scheduler currently executing Run(); the trampoline needs it because
// makecontext cannot carry a pointer portably.
Scheduler* g_active_scheduler = nullptr;

const hw::CodeRegion& PickRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.sched.pick", Costs::kSchedPickThread);
  return r;
}
const hw::CodeRegion& SwitchRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.sched.switch", Costs::kSchedContextSwitch);
  return r;
}
const hw::CodeRegion& HandoffRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.sched.handoff", Costs::kSchedHandoff);
  return r;
}
const hw::CodeRegion& PmapRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.sched.pmap_activate", Costs::kPmapActivate);
  return r;
}
}  // namespace

Task* Scheduler::current_task() const {
  return current_ == nullptr ? nullptr : current_->task();
}

SyncObserver* Scheduler::observer() const { return kernel_->sync_observer_; }

void Scheduler::MakeReady(Thread* t) {
  WPOS_DCHECK(t != nullptr);
  if (t->state() == Thread::State::kReady || t->state() == Thread::State::kRunning) {
    return;
  }
  WPOS_CHECK(t->state() != Thread::State::kTerminated) << "waking dead thread " << t->name();
  t->set_state(Thread::State::kReady);
  t->waiting_on = nullptr;
  ready_[t->priority()].push_back(t);
  ++ready_count_;
}

void Scheduler::Wake(Thread* t, base::Status wait_status) {
  if (t->state() != Thread::State::kBlocked) {
    return;
  }
  if (t->waiting_on != nullptr) {
    t->waiting_on->Remove(t);
    t->waiting_on = nullptr;
  }
  ++t->wake_generation;  // invalidate any pending timed wake
  t->wait_status = wait_status;
  if (SyncObserver* obs = observer()) {
    obs->OnWake(current_, t);
  }
  MakeReady(t);
}

void Scheduler::StartThread(Thread* t) {
  WPOS_CHECK(t->state() == Thread::State::kEmbryo);
  MakeReady(t);
}

Thread* Scheduler::PickNext() {
  if (policy_ != nullptr) {
    return PickNextWithPolicy();
  }
  // Direct handoff takes precedence; the hint must still be runnable.
  if (handoff_hint_ != nullptr) {
    Thread* hint = handoff_hint_;
    handoff_hint_ = nullptr;
    if (hint->state() == Thread::State::kReady) {
      auto& q = ready_[hint->priority()];
      for (auto it = q.begin(); it != q.end(); ++it) {
        if (*it == hint) {
          q.erase(it);
          --ready_count_;
          return hint;
        }
      }
    }
  }
  for (int prio = Thread::kNumPriorities - 1; prio >= 0; --prio) {
    auto& q = ready_[prio];
    for (auto it = q.begin(); it != q.end(); ++it) {
      Thread* t = *it;
      ProcessorSet* ps = t->task()->processor_set();
      if (ps != nullptr && !ps->enabled()) {
        continue;  // task's processor set is disabled; skip but keep queued
      }
      q.erase(it);
      --ready_count_;
      return t;
    }
  }
  return nullptr;
}

// Policy-driven dispatch: enumerate every runnable thread in the stock scan
// order and let the policy choose. The stock scheduler's decision — handoff
// hint if pending and runnable, else the scan front — is passed through as
// the `natural` index so a policy can reproduce default behaviour exactly.
Thread* Scheduler::PickNextWithPolicy() {
  Thread* hint = handoff_hint_;
  handoff_hint_ = nullptr;
  std::vector<Thread*> candidates;
  candidates.reserve(ready_count_);
  for (int prio = Thread::kNumPriorities - 1; prio >= 0; --prio) {
    for (Thread* t : ready_[prio]) {
      ProcessorSet* ps = t->task()->processor_set();
      if (ps != nullptr && !ps->enabled()) {
        continue;
      }
      candidates.push_back(t);
    }
  }
  if (candidates.empty()) {
    handoff_was_hint_ = false;
    return nullptr;
  }
  size_t natural = 0;
  if (hint != nullptr && hint->state() == Thread::State::kReady) {
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (candidates[i] == hint) {
        natural = i;
        break;
      }
    }
  }
  const size_t idx = policy_->PickIndex(candidates, natural, last_running_, last_reason_);
  WPOS_CHECK(idx < candidates.size()) << "schedule policy picked candidate " << idx << " of "
                                      << candidates.size();
  Thread* chosen = candidates[idx];
  handoff_was_hint_ = hint != nullptr && chosen == hint;
  auto& q = ready_[chosen->priority()];
  for (auto it = q.begin(); it != q.end(); ++it) {
    if (*it == chosen) {
      q.erase(it);
      break;
    }
  }
  --ready_count_;
  return chosen;
}

void Scheduler::PreemptPoint() {
  if (policy_ == nullptr || current_ == nullptr || ready_count_ == 0) {
    return;
  }
  std::vector<Thread*> candidates;
  candidates.reserve(ready_count_ + 1);
  candidates.push_back(current_);
  for (int prio = Thread::kNumPriorities - 1; prio >= 0; --prio) {
    for (Thread* t : ready_[prio]) {
      ProcessorSet* ps = t->task()->processor_set();
      if (ps != nullptr && !ps->enabled()) {
        continue;
      }
      candidates.push_back(t);
    }
  }
  if (candidates.size() < 2) {
    return;
  }
  Thread* next = policy_->OnPreemptPoint(current_, candidates);
  if (next == current_) {
    return;  // no preemption: continue with no switch and no cost
  }
  // Forced preemption: like quantum expiry, but the policy names the heir.
  Thread* self = current_;
  kernel_->tracer().Emit(trace::EventType::kSchedPreempt, next->id(), self->id());
  last_reason_ = SwitchReason::kPreempt;
  last_running_ = self;
  handoff_hint_ = next;
  self->set_state(Thread::State::kReady);
  ready_[self->priority()].push_back(self);
  ++ready_count_;
  SwapOut();
}

void Scheduler::Trampoline() {
  WposCtxFiberEntry();
  Scheduler* sched = g_active_scheduler;
  Thread* self = sched->current_;
  self->entry_();
  sched->ExitCurrent();
}

void Scheduler::SwitchInto(Thread* t) {
  WPOS_CHECK(current_ == nullptr) << "SwitchInto from a thread context (into " << t->name()
                                  << ")";
  hw::Cpu& cpu = kernel_->cpu();
  const bool handoff = handoff_was_hint_;
  handoff_was_hint_ = false;
  cpu.Execute(handoff ? HandoffRegion() : SwitchRegion());
  cpu.Stall(Costs::kContextSwitchStallCycles);
  // Touch the incoming thread control block and its stack-save area.
  cpu.AccessData(t->sim_addr(), 64, /*write=*/true);
  ++context_switches_;

  if (t->task() != last_task_) {
    ++space_switches_;
    cpu.Execute(PmapRegion());
    cpu.AccessData(t->task()->sim_addr(), 32, /*write=*/false);
    cpu.FlushTlb();
    cpu.Stall(Costs::kSpaceSwitchRefillCycles);
    cpu.BusTransactions(Costs::kSpaceSwitchRefillBus);
    last_task_ = t->task();
  }

  current_ = t;
  t->set_state(Thread::State::kRunning);
  t->dispatch_cycle = cpu.cycles();
  // Emitted with current_ already switched so the event carries the incoming
  // thread's identity.
  kernel_->tracer().Emit(trace::EventType::kThreadSwitch, t->id(), handoff ? 1 : 0);
  if (SyncObserver* obs = observer()) {
    obs->OnSwitch(t, last_reason_);
  }

  if (!t->started_) {
    t->started_ = true;
    t->ctx_sp_ = WposCtxMake(t->stack_ + t->stack_bytes_, &Scheduler::Trampoline);
  }
  WposCtxSwitchToFiber(&main_ctx_sp_, t->ctx_sp_, t->stack_, t->stack_bytes_);
  // Back in the scheduler: account the slice.
  Thread* was = current_;
  current_ = nullptr;
  was->cpu_cycles_used += cpu.cycles() - was->dispatch_cycle;
}

void Scheduler::SwapOut(bool final) {
  Thread* self = current_;
  WPOS_CHECK(self != nullptr) << "SwapOut outside thread context";
  WposCtxSwitchToMain(&self->ctx_sp_, main_ctx_sp_, final);
  WPOS_CHECK(current_ == self) << "context resumed under wrong current thread";
}

void Scheduler::Run() {
  WPOS_CHECK(!running_) << "scheduler re-entered";
  WPOS_CHECK(current_ == nullptr) << "Run called from a thread context";
  running_ = true;
  Scheduler* prev_active = g_active_scheduler;
  g_active_scheduler = this;
  while (true) {
    kernel_->PollHardware();
    kernel_->cpu().Execute(PickRegion());
    Thread* next = PickNext();
    if (next == nullptr) {
      if (kernel_->machine().IdleAdvance()) {
        continue;  // a device event may have readied someone
      }
      break;
    }
    SwitchInto(next);
  }
  g_active_scheduler = prev_active;
  running_ = false;
}

void Scheduler::Yield() {
  Thread* self = current_;
  WPOS_CHECK(self != nullptr) << "Yield outside thread context";
  last_reason_ = SwitchReason::kYield;
  last_running_ = self;
  self->set_state(Thread::State::kReady);
  ready_[self->priority()].push_back(self);
  ++ready_count_;
  SwapOut();
}

base::Status Scheduler::Block(Thread::State, WaitQueue* queue) {
  Thread* self = current_;
  WPOS_DCHECK(self != nullptr) << "Block outside thread context";
  last_reason_ = SwitchReason::kBlock;
  last_running_ = self;
  self->set_state(Thread::State::kBlocked);
  self->wait_status = base::Status::kOk;
  if (queue != nullptr) {
    queue->Enqueue(self);
    self->waiting_on = queue;
  }
  SwapOut();
  return self->wait_status;
}

base::Status Scheduler::BlockAndHandoff(WaitQueue* queue, Thread* next) {
  WPOS_DCHECK(next == nullptr || next->state() == Thread::State::kReady);
  if (handoff_enabled) {
    handoff_hint_ = next;
    handoff_was_hint_ = next != nullptr;
  }
  return Block(Thread::State::kBlocked, queue);
}

void Scheduler::HandoffTo(Thread* next) {
  Thread* self = current_;
  WPOS_CHECK(self != nullptr);
  WPOS_CHECK(next->state() == Thread::State::kReady);
  if (handoff_enabled) {
    handoff_hint_ = next;
    handoff_was_hint_ = true;
  }
  last_reason_ = SwitchReason::kYield;
  last_running_ = self;
  self->set_state(Thread::State::kReady);
  ready_[self->priority()].push_back(self);
  ++ready_count_;
  SwapOut();
}

void Scheduler::ExitCurrent() {
  Thread* self = current_;
  WPOS_CHECK(self != nullptr);
  kernel_->tracer().Emit(trace::EventType::kThreadExit, self->id());
  if (SyncObserver* obs = observer()) {
    obs->OnThreadExit(self);
  }
  last_reason_ = SwitchReason::kExit;
  last_running_ = self;
  self->set_state(Thread::State::kTerminated);
  while (Thread* waiter = self->exit_waiters.DequeueFront()) {
    waiter->waiting_on = nullptr;
    Wake(waiter, base::Status::kOk);
  }
  SwapOut(/*final=*/true);
  WPOS_CHECK(false) << "terminated thread resumed";
  __builtin_unreachable();
}

}  // namespace mk
