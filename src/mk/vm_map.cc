#include "src/mk/vm_map.h"

#include "src/base/log.h"

namespace mk {

VmMapEntry* VmMap::Lookup(hw::VirtAddr vaddr) {
  auto it = entries_.upper_bound(vaddr);
  if (it == entries_.begin()) {
    return nullptr;
  }
  --it;
  VmMapEntry& e = it->second;
  return (vaddr >= e.start && vaddr < e.end()) ? &e : nullptr;
}

const VmMapEntry* VmMap::Lookup(hw::VirtAddr vaddr) const {
  return const_cast<VmMap*>(this)->Lookup(vaddr);
}

bool VmMap::RangeFree(hw::VirtAddr start, uint64_t size) const {
  if (size == 0) {
    return false;
  }
  auto it = entries_.upper_bound(start);
  if (it != entries_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end() > start) {
      return false;
    }
  }
  if (it != entries_.end() && it->second.start < start + size) {
    return false;
  }
  return true;
}

base::Status VmMap::InsertAt(const VmMapEntry& entry) {
  WPOS_CHECK((entry.start & hw::kPageMask) == 0);
  WPOS_CHECK((entry.size & hw::kPageMask) == 0);
  if (entry.size == 0 || entry.start + entry.size > kCoercedMax) {
    return base::Status::kInvalidArgument;
  }
  if (!RangeFree(entry.start, entry.size)) {
    return base::Status::kNoSpace;
  }
  entries_.emplace(entry.start, entry);
  return base::Status::kOk;
}

base::Result<hw::VirtAddr> VmMap::InsertAnywhere(VmMapEntry entry) {
  WPOS_CHECK((entry.size & hw::kPageMask) == 0);
  if (entry.size == 0) {
    return base::Status::kInvalidArgument;
  }
  // First-fit scan of the gaps between entries within the ordinary user range.
  hw::VirtAddr candidate = kUserMin;
  for (const auto& [start, e] : entries_) {
    if (e.start >= kUserMax) {
      break;
    }
    if (candidate + entry.size <= e.start) {
      break;
    }
    if (e.end() > candidate) {
      candidate = e.end();
    }
  }
  if (candidate + entry.size > kUserMax) {
    return base::Status::kNoSpace;
  }
  entry.start = candidate;
  entries_.emplace(entry.start, entry);
  return candidate;
}

base::Status VmMap::Remove(hw::VirtAddr start, uint64_t size) {
  auto it = entries_.find(start);
  if (it == entries_.end() || it->second.size != size) {
    return base::Status::kInvalidAddress;
  }
  entries_.erase(it);
  return base::Status::kOk;
}

base::Status VmMap::Protect(hw::VirtAddr start, uint64_t size, Prot prot) {
  VmMapEntry* e = Lookup(start);
  if (e == nullptr || start + size > e->end()) {
    return base::Status::kInvalidAddress;
  }
  if (!ProtIncludes(e->max_prot, prot)) {
    return base::Status::kProtectionFailure;
  }
  // Split the entry so exactly [start, start+size) carries the new
  // protection.
  VmMapEntry middle = *e;
  if (start > e->start) {
    VmMapEntry& left = *e;
    VmMapEntry right = left;
    const uint64_t delta = start - left.start;
    left.size = delta;
    right.start = start;
    right.offset += delta;
    right.size -= delta;
    entries_.emplace(right.start, right);
    middle = right;
  }
  VmMapEntry* target = Lookup(start);
  if (size < target->size) {
    VmMapEntry tail = *target;
    tail.start = start + size;
    tail.offset += size;
    tail.size -= size;
    target->size = size;
    entries_.emplace(tail.start, tail);
  }
  Lookup(start)->prot = prot;
  return base::Status::kOk;
}

uint64_t VmMap::mapped_bytes() const {
  uint64_t total = 0;
  for (const auto& [start, e] : entries_) {
    total += e.size;
  }
  return total;
}

}  // namespace mk
