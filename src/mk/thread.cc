#include "src/mk/thread.h"

#include <sys/mman.h>

#include "src/base/log.h"
#include "src/mk/context.h"
#include "src/mk/task.h"

namespace mk {

namespace {
constexpr size_t kStackBytes = 512 * 1024;
constexpr size_t kGuardBytes = 4096;
}  // namespace

Thread::Thread(ThreadId id, Task* task, std::string name, int priority, hw::PhysAddr sim_addr,
               hw::PhysAddr msg_window)
    : id_(id),
      task_(task),
      name_(std::move(name)),
      priority_(priority),
      sim_addr_(sim_addr),
      msg_window_(msg_window) {
  stack_bytes_ = kStackBytes;
  void* mapping = mmap(nullptr, kGuardBytes + stack_bytes_, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  WPOS_CHECK(mapping != MAP_FAILED) << "cannot allocate thread stack";
  // Guard page at the low end (stacks grow down).
  WPOS_CHECK(mprotect(mapping, kGuardBytes, PROT_NONE) == 0);
  stack_ = static_cast<uint8_t*>(mapping) + kGuardBytes;
}

Thread::~Thread() {
  if (stack_ != nullptr) {
    WposCtxReleaseStack(stack_, stack_bytes_);
    munmap(stack_ - kGuardBytes, kGuardBytes + stack_bytes_);
  }
}

}  // namespace mk
