// The reworked RPC (paper, "The IBM Microkernel" / IPC section):
//   - synchronous call, receive and reply; no reply ports, no queuing
//   - threads block waiting to send or receive
//   - physical copy replaces virtual copy; large data passed by reference and
//     copied directly from sender to receiver
//   - direct thread handoff between client and server.
#include "src/base/log.h"
#include "src/mk/kernel.h"

namespace mk {

namespace {
const hw::CodeRegion& ClientStubRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("ustub.rpc_call", Costs::kRpcClientStub);
  return r;
}
const hw::CodeRegion& SendPathRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.rpc.send", Costs::kRpcSendPath);
  return r;
}
const hw::CodeRegion& ReceivePathRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.rpc.receive", Costs::kRpcReceivePath);
  return r;
}
const hw::CodeRegion& ReplyPathRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.rpc.reply", Costs::kRpcReplyPath);
  return r;
}
const hw::CodeRegion& TrapEntry() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.trap.entry", Costs::kTrapEntry);
  return r;
}
const hw::CodeRegion& RightsRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.rpc.rights", Costs::kPortRightTransfer);
  return r;
}
const hw::CodeRegion& OolPrepareRegion() {
  static const hw::CodeRegion r =
      hw::DefineKernelCode("mk.rpc.ool_prepare", Costs::kRpcOolPreparePerPage);
  return r;
}
const hw::CodeRegion& OolMapRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.rpc.ool_map", Costs::kRpcOolMapPerPage);
  return r;
}
// Offset within a thread's message window where by-reference bulk data is
// modelled (separate from the inline request/reply area).
constexpr uint64_t kRefWindowOffset = 16 * 1024;

// Whether a bulk transfer of `len` bytes goes out-of-line under `mode`.
bool UseOol(RpcBulkMode mode, uint64_t len) {
  switch (mode) {
    case RpcBulkMode::kCopy:
      return false;
    case RpcBulkMode::kOol:
      return true;
    case RpcBulkMode::kAuto:
      break;
  }
  return len >= Costs::kRpcOolThresholdBytes;
}
}  // namespace

void Kernel::ChargeOolTransfer(Thread* from, Thread* to, uint64_t len) {
  const uint64_t pages = hw::PageRound(len) >> hw::kPageShift;
  // Sender side: reference and wire the source pages; receiver side: enter
  // them into the receiver's window. The data bytes themselves are never
  // touched — that is the whole point.
  cpu().ExecuteInstructions(OolPrepareRegion(), pages * Costs::kRpcOolPreparePerPage);
  cpu().ExecuteInstructions(OolMapRegion(), pages * Costs::kRpcOolMapPerPage);
  // Page-table traffic: one descriptor read on the sender's side and one PTE
  // write on the receiver's side per page.
  const hw::PhysAddr src = from != nullptr ? from->msg_window() + kRefWindowOffset : heap_->base();
  const hw::PhysAddr dst = to != nullptr ? to->msg_window() + kRefWindowOffset : heap_->base();
  for (uint64_t i = 0; i < pages; ++i) {
    cpu().AccessData(src + i * 64, 8, /*write=*/false);
    cpu().AccessData(dst + i * 64, 8, /*write=*/true);
  }
  ++tracer_->metrics().Counter("mk.rpc.ool_transfers");
  tracer_->metrics().Counter("mk.rpc.ool_bytes") += len;
}

void Kernel::CopyMessageBytes(const void* src, void* dst, uint64_t len, Thread* from, Thread* to) {
  if (len == 0) {
    return;
  }
  std::memcpy(dst, src, len);
  const hw::PhysAddr src_win = from != nullptr ? from->msg_window() : heap_->base();
  const hw::PhysAddr dst_win = to != nullptr ? to->msg_window() : heap_->base();
  // Wrap long transfers around the modelled window.
  const uint64_t span = len < Thread::kMsgWindowSize ? len : Thread::kMsgWindowSize;
  ChargeCopy(src_win, dst_win, span);
}

base::Status Kernel::TransferRights(Task& from, Task& to, const RightDescriptor* rights,
                                    uint32_t count, std::vector<PortName>* out_names) {
  for (uint32_t i = 0; i < count; ++i) {
    cpu().Execute(RightsRegion());
    auto port = from.port_space().LookupSendable(rights[i].name);
    if (!port.ok()) {
      return port.status();
    }
    cpu().AccessData(to.port_space().sim_addr(), 32, /*write=*/true);
    const PortName name = to.port_space().Insert(*port, rights[i].disposition);
    if (out_names != nullptr) {
      out_names->push_back(name);
    }
    if (rights[i].disposition == RightType::kReceive) {
      (*port)->set_receiver(&to);
    }
  }
  return base::Status::kOk;
}

// Moves the client's request (inline bytes, by-reference data, rights) into
// the waiting server's posted buffers. Returns false and completes the
// client's call with an error if the request does not fit.
void Kernel::DeliverRpcToServer(Thread* client, Thread* server) {
  Thread::RpcState& c = client->rpc;
  Thread::RpcState& s = server->rpc;
  if (c.req_len > s.srv_cap) {
    c.completion = base::Status::kTooLarge;
    return;
  }
  CopyMessageBytes(c.req_data, s.srv_buf, c.req_len, client, server);
  s.srv_req_len = c.req_len;
  s.srv_ref_len = 0;
  if (c.ref != nullptr && c.ref->send_len > 0) {
    if (s.srv_ref == nullptr || c.ref->send_len > s.srv_ref->recv_cap) {
      c.completion = base::Status::kTooLarge;
      return;
    }
    std::memcpy(s.srv_ref->recv_buf, c.ref->send_data, c.ref->send_len);
    const bool ool = UseOol(c.ref->send_mode, c.ref->send_len);
    if (ool) {
      ChargeOolTransfer(client, server, c.ref->send_len);
    } else {
      const uint64_t span = c.ref->send_len < Thread::kMsgWindowSize - kRefWindowOffset
                                ? c.ref->send_len
                                : Thread::kMsgWindowSize - kRefWindowOffset;
      ChargeCopy(client->msg_window() + kRefWindowOffset, server->msg_window() + kRefWindowOffset,
                 span);
    }
    c.ref->sent_ool = ool;
    s.srv_ref->recv_ool = ool;
    s.srv_ref->recv_len = c.ref->send_len;
    s.srv_ref_len = c.ref->send_len;
  }
  s.srv_rights.clear();
  if (c.req_rights != nullptr && c.req_rights_count > 0) {
    const base::Status st = TransferRights(*client->task(), *server->task(), c.req_rights,
                                           c.req_rights_count, &s.srv_rights);
    if (st != base::Status::kOk) {
      c.completion = st;
      return;
    }
  }
  s.client = client;
  s.token = next_rpc_token_++;
  c.token = s.token;
  rpc_waiters_[s.token] = RpcInFlight{client, server};
  s.srv_client_task = client->task()->id();
  c.completion = base::Status::kOk;
  if (sync_observer_ != nullptr) {
    // Request delivery is a happens-before edge from the (blocked or about to
    // block) client into the server.
    sync_observer_->OnRendezvous(client, server);
  }
  // The client's call span enters its server phase; the label must land
  // before the dispatch mark so the per-server queue-wait histogram splits.
  tracer_->LabelSpan(c.span_id, server->task()->name());
  tracer_->MarkPhase(c.span_id, trace::EventType::kRpcDispatch, server->id());
  // Bind the server thread to the caller's trace: every span the handler
  // opens (server op, nested RPCs to other servers) now chains onto this
  // call span. The reply paths unbind it.
  if (c.span_id != 0) {
    server->trace_ctx = TraceContext{tracer_->SpanTraceId(c.span_id), c.span_id};
  }
}

base::Status Kernel::RpcCall(PortName port_name, const void* req, uint32_t req_len, void* reply,
                             uint32_t reply_cap, uint32_t* reply_len, RpcRef* ref,
                             const RightDescriptor* rights, uint32_t rights_count,
                             PortName* granted, uint64_t timeout_ns) {
  Thread* client = scheduler_.current();
  WPOS_DCHECK(client != nullptr) << "RpcCall outside thread context";
  // The span opens before the client stub executes so its counter delta
  // covers the complete call: stub, kernel entry, server work, reply return.
  client->rpc.span_id =
      tracer_->BeginSpan(trace::SpanKind::kRpc, trace::EventType::kRpcCall, port_name);
  cpu().Execute(ClientStubRegion());
  EnterKernel(TrapEntry());
  cpu().Execute(SendPathRegion());
  cpu().AccessData(client->task()->port_space().sim_addr(), 32, /*write=*/false);
  auto port_r = client->task()->port_space().LookupSendable(port_name);
  if (!port_r.ok()) {
    LeaveKernel();
    tracer_->EndSpan(client->rpc.span_id, trace::EventType::kRpcReturn,
                     static_cast<uint64_t>(port_r.status()));
    return port_r.status();
  }
  LeaveKernel();  // cost bracketing only; the call continues below
  const base::Status st =
      RpcCallOnPort(*port_r, req, req_len, reply, reply_cap, reply_len, ref, rights, rights_count,
                    granted, timeout_ns);
  tracer_->EndSpan(client->rpc.span_id, trace::EventType::kRpcReturn, static_cast<uint64_t>(st));
  return st;
}

base::Status Kernel::RpcCallOnPort(Port* port, const void* req, uint32_t req_len, void* reply,
                                   uint32_t reply_cap, uint32_t* reply_len, RpcRef* ref,
                                   const RightDescriptor* rights, uint32_t rights_count,
                                   PortName* granted, uint64_t timeout_ns) {
  Thread* client = scheduler_.current();
  WPOS_DCHECK(client != nullptr);
  if (sync_observer_ != nullptr) {
    sync_observer_->OnOpLabel(client, "RpcCall", port->id());
  }
  if (port->dead()) {
    return base::Status::kPortDead;
  }
  // Fault point: the request copy. Fails the call before any state transfer,
  // so the server (parked or not) is untouched.
  if (faults_->Fire(fault::FaultPoint::kMessageCopy) != fault::FaultMode::kNone) {
    return base::Status::kBusy;
  }
  ++rpc_calls_;
  ++port->rpc_count;
  ++tracer_->metrics().Counter("mk.rpc.calls");
  cpu().AccessData(port->sim_addr(), 64, /*write=*/true);

  Thread::RpcState& c = client->rpc;
  // A fresh call must not inherit the previous call's token: the error paths
  // below erase rpc_waiters_[c.token], and a stale token from a completed
  // call must erase nothing.
  c.token = 0;
  c.req_data = req;
  c.req_len = req_len;
  c.reply_buf = reply;
  c.reply_cap = reply_cap;
  c.reply_len = 0;
  c.ref = ref;
  if (ref != nullptr) {
    // Stale results from a previous attempt on the same descriptor (robust
    // retries) must not survive into this call's outcome.
    ref->recv_len = 0;
    ref->sent_ool = false;
    ref->recv_ool = false;
  }
  c.req_rights = rights;
  c.req_rights_count = rights_count;
  c.granted_right = kNullPort;
  c.completion = base::Status::kOk;
  c.port = port;

  // A server may be parked on the port itself or on the set it belongs to.
  std::deque<Thread*>* server_queue = nullptr;
  if (!port->waiting_servers.empty()) {
    server_queue = &port->waiting_servers;
  } else if (port->member_of != nullptr && !port->member_of->waiting_servers.empty()) {
    server_queue = &port->member_of->waiting_servers;
  }
  if (server_queue != nullptr) {
    Thread* server = server_queue->front();
    server_queue->pop_front();
    server->rpc.arrived_port = port->id();
    DeliverRpcToServer(client, server);
    if (c.completion != base::Status::kOk) {
      // Delivery failed; re-park the server, fail the call.
      server_queue->push_front(server);
      return c.completion;
    }
    scheduler_.Wake(server, base::Status::kOk);
    StartTimedWake(client, timeout_ns);
    const base::Status block_status = scheduler_.BlockAndHandoff(nullptr, server);
    if (block_status != base::Status::kOk) {
      // Timed out or aborted while in flight: drop the waiter entry so a
      // late reply by the server finds nothing and returns kInvalidArgument.
      rpc_waiters_.erase(c.token);
      return block_status;
    }
  } else {
    // Admission control: past the configured bound the caller is shed with
    // kBusy instead of parking behind a queue the server may never drain.
    if (port->rpc_queue_limit != 0 && port->waiting_clients.size() >= port->rpc_queue_limit) {
      ++tracer_->metrics().Counter("mk.rpc.shed");
      tracer_->metrics().Hist("mk.rpc.queue_depth").Record(port->waiting_clients.size());
      tracer_->Emit(trace::EventType::kRpcShed, c.span_id, port->id());
      return base::Status::kBusy;
    }
    port->waiting_clients.push_back(client);
    tracer_->MarkQueued(c.span_id, trace::EventType::kRpcQueued, port->id());
    tracer_->metrics().GaugeMax("mk.rpc.waiting_clients_hwm", port->waiting_clients.size());
    tracer_->metrics().Hist("mk.rpc.queue_depth").Record(port->waiting_clients.size());
    StartTimedWake(client, timeout_ns);
    const base::Status block_status = scheduler_.Block(Thread::State::kBlocked, nullptr);
    if (block_status != base::Status::kOk) {
      // Aborted or port died while queued; make sure we are off the list.
      for (auto it = port->waiting_clients.begin(); it != port->waiting_clients.end(); ++it) {
        if (*it == client) {
          port->waiting_clients.erase(it);
          break;
        }
      }
      rpc_waiters_.erase(c.token);
      return block_status;
    }
    // A server received our request and will reply; if the reply already
    // happened (it must have — we were woken by RpcReply or an error), fall
    // through.
  }
  if (reply_len != nullptr) {
    *reply_len = c.reply_len;
  }
  if (granted != nullptr) {
    *granted = c.granted_right;
  }
  return c.completion;
}

base::Result<RpcRequest> Kernel::RpcReceive(PortName receive_name, void* buf, uint32_t cap,
                                            RpcRef* ref, uint64_t timeout_ns) {
  Thread* server = scheduler_.current();
  WPOS_DCHECK(server != nullptr) << "RpcReceive outside thread context";
  if (sync_observer_ != nullptr) {
    sync_observer_->OnOpLabel(server, "RpcReceive", receive_name);
  }
  EnterKernel(TrapEntry());
  cpu().Execute(ReceivePathRegion());
  cpu().AccessData(server->task()->port_space().sim_addr(), 32, /*write=*/false);
  auto port_r = server->task()->port_space().LookupReceive(receive_name);
  if (!port_r.ok()) {
    LeaveKernel();
    return port_r.status();
  }
  Port* port = *port_r;
  Thread::RpcState& s = server->rpc;
  // Between requests the server works for nobody: drop any stale trace
  // binding (DeliverRpcToServer rebinds it for the request received here).
  server->trace_ctx = TraceContext{};
  s.srv_buf = buf;
  s.srv_cap = cap;
  s.srv_ref = ref;
  if (ref != nullptr) {
    ref->recv_len = 0;
    ref->recv_ool = false;
  }

  // Receiving on a port set services whichever member has a caller waiting.
  Port* source = port;
  if (port->is_port_set) {
    source = nullptr;
    for (Port* member : port->set_members) {
      if (!member->waiting_clients.empty()) {
        source = member;
        break;
      }
    }
  } else if (!port->waiting_clients.empty()) {
    source = port;
  } else {
    source = nullptr;
  }
  if (source != nullptr) {
    Thread* client = source->waiting_clients.front();
    source->waiting_clients.pop_front();
    server->rpc.arrived_port = source->id();
    DeliverRpcToServer(client, server);
    if (client->rpc.completion != base::Status::kOk) {
      // The queued request didn't fit; fail the client, keep receiving.
      scheduler_.Wake(client, client->rpc.completion);
      LeaveKernel();
      return base::Status::kTooLarge;
    }
  } else {
    // Never park on a dead port (TerminateTask already failed its callers) or
    // from a terminated task: a READY thread of a dying task can reach here
    // after the teardown ran, and parking would wedge it forever.
    if (port->dead() || server->task()->terminated()) {
      LeaveKernel();
      return port->dead() ? base::Status::kPortDead : base::Status::kAborted;
    }
    port->waiting_servers.push_back(server);
    StartTimedWake(server, timeout_ns);
    const base::Status st = scheduler_.Block(Thread::State::kBlocked, nullptr);
    if (st != base::Status::kOk) {
      // Timed out or aborted: leave the rendezvous deque before returning.
      for (auto it = port->waiting_servers.begin(); it != port->waiting_servers.end(); ++it) {
        if (*it == server) {
          port->waiting_servers.erase(it);
          break;
        }
      }
      LeaveKernel();
      return st;
    }
  }
  RpcRequest out;
  out.token = s.token;
  out.arrived_port = s.arrived_port;
  out.req_len = s.srv_req_len;
  out.ref_len = s.srv_ref_len;
  out.rights = std::move(s.srv_rights);
  out.client_task = s.srv_client_task;
  LeaveKernel();
  return out;
}

// Copies the reply (inline, bulk, granted right) into the blocked client's
// posted buffers. Shared by RpcReply and RpcReplyAndReceive.
base::Status Kernel::DeliverReply(Thread* server, Thread* client, const void* reply,
                                  uint32_t len, const void* ref_data, uint32_t ref_len,
                                  PortName grant, base::Status completion) {
  Thread::RpcState& c = client->rpc;
  // Server phase of the client's span ends here: what follows is reply copy
  // and the return to user mode on the client side.
  tracer_->MarkPhase(c.span_id, trace::EventType::kRpcReply, len);
  if (sync_observer_ != nullptr) {
    // The reply is the matching happens-before edge back from the server
    // into the blocked client.
    sync_observer_->OnRendezvous(server, client);
  }
  c.completion = completion;
  if (len > c.reply_cap) {
    c.completion = base::Status::kTooLarge;
  } else {
    CopyMessageBytes(reply, c.reply_buf, len, server, client);
    c.reply_len = len;
  }
  if (ref_data != nullptr && ref_len > 0 && c.completion == base::Status::kOk) {
    if (c.ref == nullptr || ref_len > c.ref->recv_cap) {
      c.completion = base::Status::kTooLarge;
    } else {
      std::memcpy(c.ref->recv_buf, ref_data, ref_len);
      const bool ool = UseOol(c.ref->recv_mode, ref_len);
      if (ool) {
        ChargeOolTransfer(server, client, ref_len);
      } else {
        const uint64_t span = ref_len < Thread::kMsgWindowSize - kRefWindowOffset
                                  ? ref_len
                                  : Thread::kMsgWindowSize - kRefWindowOffset;
        ChargeCopy(server->msg_window() + kRefWindowOffset,
                   client->msg_window() + kRefWindowOffset, span);
      }
      c.ref->recv_ool = ool;
      c.ref->recv_len = ref_len;
    }
  }
  if (grant != kNullPort && c.completion == base::Status::kOk) {
    RightDescriptor rd{.name = grant, .disposition = RightType::kSend};
    std::vector<PortName> names;
    const base::Status st = TransferRights(*server->task(), *client->task(), &rd, 1, &names);
    if (st == base::Status::kOk) {
      c.granted_right = names.front();
    } else {
      c.completion = st;
    }
  }
  return c.completion;
}

base::Result<RpcRequest> Kernel::RpcReplyAndReceive(uint64_t token, const void* reply,
                                                    uint32_t len, PortName receive_name,
                                                    void* buf, uint32_t cap, RpcRef* ref,
                                                    const void* reply_ref_data,
                                                    uint32_t reply_ref_len, PortName grant) {
  Thread* server = scheduler_.current();
  WPOS_DCHECK(server != nullptr) << "RpcReplyAndReceive outside thread context";
  if (sync_observer_ != nullptr) {
    sync_observer_->OnOpLabel(server, "RpcReplyAndReceive", token);
  }
  EnterKernel(TrapEntry());
  cpu().Execute(ReplyPathRegion());
  cpu().Execute(ReceivePathRegion());

  auto port_r = server->task()->port_space().LookupReceive(receive_name);
  if (!port_r.ok()) {
    LeaveKernel();
    return port_r.status();
  }
  Port* port = *port_r;

  auto waiter = rpc_waiters_.find(token);
  if (waiter == rpc_waiters_.end()) {
    LeaveKernel();
    return base::Status::kInvalidArgument;
  }
  Thread* client = waiter->second.client;
  rpc_waiters_.erase(waiter);
  if (client->rpc.token != token || client->state() != Thread::State::kBlocked) {
    LeaveKernel();
    return base::Status::kInvalidArgument;
  }
  server->rpc.client = nullptr;
  // The reply ends this server's work for the caller; unbind its trace
  // context before the receive half picks up (or waits for) the next one.
  server->trace_ctx = TraceContext{};
  // Fault point: the reply (see RpcReply). kDropReply swallows the reply but
  // still enters the receive, so the server keeps serving.
  switch (faults_->Fire(fault::FaultPoint::kRpcReply)) {
    case fault::FaultMode::kNone:
      (void)DeliverReply(server, client, reply, len, reply_ref_data, reply_ref_len, grant,
                         base::Status::kOk);
      break;
    case fault::FaultMode::kDropReply:
      client = nullptr;  // stays blocked until its deadline
      break;
    case fault::FaultMode::kCrashTask:
      client->rpc.completion = base::Status::kPortDead;
      scheduler_.Wake(client, base::Status::kPortDead);
      LeaveKernel();
      TerminateTask(server->task());
      return base::Status::kAborted;
    case fault::FaultMode::kKillPort: {
      Port* request_port = client->rpc.port;
      client->rpc.completion = base::Status::kPortDead;
      scheduler_.Wake(client, base::Status::kPortDead);
      LeaveKernel();
      if (request_port != nullptr && !request_port->dead()) {
        DestroyPort(request_port);
      }
      return base::Status::kPortDead;
    }
    case fault::FaultMode::kTransientError:
      (void)DeliverReply(server, client, reply, 0, nullptr, 0, kNullPort, base::Status::kBusy);
      break;
    case fault::FaultMode::kStallTask:
    case fault::FaultMode::kDelayReply:
      // Server-loop-only modes (see points.h); deliver normally here.
      (void)DeliverReply(server, client, reply, len, reply_ref_data, reply_ref_len, grant,
                         base::Status::kOk);
      break;
    case fault::FaultMode::kCount:
      break;
  }

  // Post the receive buffers BEFORE resuming the replied client, so its next
  // call finds this server already parked (reply_and_wait).
  Thread::RpcState& s = server->rpc;
  s.srv_buf = buf;
  s.srv_cap = cap;
  s.srv_ref = ref;
  if (ref != nullptr) {
    ref->recv_len = 0;
    ref->recv_ool = false;
  }

  // Serve any caller already queued on a member/port.
  Port* source = nullptr;
  if (port->is_port_set) {
    for (Port* member : port->set_members) {
      if (!member->waiting_clients.empty()) {
        source = member;
        break;
      }
    }
  } else if (!port->waiting_clients.empty()) {
    source = port;
  }
  if (source != nullptr) {
    Thread* next_client = source->waiting_clients.front();
    source->waiting_clients.pop_front();
    server->rpc.arrived_port = source->id();
    DeliverRpcToServer(next_client, server);
    if (next_client->rpc.completion != base::Status::kOk) {
      // The queued request didn't fit the posted buffers. Fail that client —
      // found by schedule exploration: leaving it unwoken here blocked it
      // forever, and the RpcRequest below would have carried a stale token.
      // Same contract as RpcReceive: wake the loser, report kTooLarge.
      scheduler_.Wake(next_client, next_client->rpc.completion);
      if (client != nullptr) {
        scheduler_.Wake(client, base::Status::kOk);
      }
      LeaveKernel();
      return base::Status::kTooLarge;
    }
    if (client != nullptr) {
      scheduler_.Wake(client, base::Status::kOk);
    }
    RpcRequest out;
    out.token = s.token;
    out.arrived_port = s.arrived_port;
    out.req_len = s.srv_req_len;
    out.ref_len = s.srv_ref_len;
    out.rights = std::move(s.srv_rights);
    out.client_task = s.srv_client_task;
    LeaveKernel();
    return out;
  }

  // Same guard as RpcReceive: the reply above still lands, but a dead port
  // or terminated task must not park.
  if (port->dead() || server->task()->terminated()) {
    if (client != nullptr) {
      scheduler_.Wake(client, base::Status::kOk);
    }
    LeaveKernel();
    return port->dead() ? base::Status::kPortDead : base::Status::kAborted;
  }
  port->waiting_servers.push_back(server);
  base::Status st;
  if (client != nullptr) {
    scheduler_.Wake(client, base::Status::kOk);
    st = scheduler_.BlockAndHandoff(nullptr, client);
  } else {
    st = scheduler_.Block(Thread::State::kBlocked, nullptr);
  }
  if (st != base::Status::kOk) {
    for (auto it = port->waiting_servers.begin(); it != port->waiting_servers.end(); ++it) {
      if (*it == server) {
        port->waiting_servers.erase(it);
        break;
      }
    }
    LeaveKernel();
    return st;
  }
  RpcRequest out;
  out.token = s.token;
  out.arrived_port = s.arrived_port;
  out.req_len = s.srv_req_len;
  out.ref_len = s.srv_ref_len;
  out.rights = std::move(s.srv_rights);
  out.client_task = s.srv_client_task;
  LeaveKernel();
  return out;
}

base::Status Kernel::RpcReply(uint64_t token, const void* reply, uint32_t len,
                              const void* ref_data, uint32_t ref_len, PortName grant,
                              base::Status completion) {
  Thread* server = scheduler_.current();
  WPOS_DCHECK(server != nullptr) << "RpcReply outside thread context";
  if (sync_observer_ != nullptr) {
    sync_observer_->OnOpLabel(server, "RpcReply", token);
  }
  EnterKernel(TrapEntry());
  cpu().Execute(ReplyPathRegion());
  auto waiter = rpc_waiters_.find(token);
  if (waiter == rpc_waiters_.end()) {
    LeaveKernel();
    return base::Status::kInvalidArgument;
  }
  Thread* client = waiter->second.client;
  rpc_waiters_.erase(waiter);
  if (client->rpc.token != token || client->state() != Thread::State::kBlocked) {
    LeaveKernel();
    return base::Status::kInvalidArgument;
  }
  server->rpc.client = nullptr;
  // The reply ends this server's work for the caller: unbind its trace.
  server->trace_ctx = TraceContext{};
  // Fault point: the reply. The waiter is already erased, so every mode
  // leaves the token unreplayable — exactly once per request.
  switch (faults_->Fire(fault::FaultPoint::kRpcReply)) {
    case fault::FaultMode::kNone:
      break;
    case fault::FaultMode::kDropReply:
      // Swallow the reply; the client stays blocked until its deadline.
      LeaveKernel();
      return base::Status::kOk;
    case fault::FaultMode::kCrashTask:
      client->rpc.completion = base::Status::kPortDead;
      scheduler_.Wake(client, base::Status::kPortDead);
      LeaveKernel();
      TerminateTask(server->task());
      return base::Status::kAborted;
    case fault::FaultMode::kKillPort: {
      Port* request_port = client->rpc.port;
      client->rpc.completion = base::Status::kPortDead;
      scheduler_.Wake(client, base::Status::kPortDead);
      LeaveKernel();
      if (request_port != nullptr && !request_port->dead()) {
        DestroyPort(request_port);
      }
      return base::Status::kPortDead;
    }
    case fault::FaultMode::kTransientError:
      completion = base::Status::kBusy;
      len = 0;
      ref_data = nullptr;
      ref_len = 0;
      grant = kNullPort;
      break;
    case fault::FaultMode::kStallTask:
    case fault::FaultMode::kDelayReply:
      break;  // server-loop-only modes (see points.h); reply normally
    case fault::FaultMode::kCount:
      break;
  }
  (void)DeliverReply(server, client, reply, len, ref_data, ref_len, grant, completion);
  scheduler_.Wake(client, base::Status::kOk);
  // Direct handoff back to the client: the paper's synchronous reply path.
  scheduler_.HandoffTo(client);
  LeaveKernel();
  return base::Status::kOk;
}

}  // namespace mk
