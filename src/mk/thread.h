// Kernel threads. Each simulated thread is a ucontext green thread with its
// own host stack; the scheduler switches between them and the kernel's main
// context. All scheduling is deterministic.
#ifndef SRC_MK_THREAD_H_
#define SRC_MK_THREAD_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/hw/types.h"
#include "src/mk/ids.h"
#include "src/mk/port.h"
#include "src/mk/wait_queue.h"

namespace mk {

class Task;

// How by-reference bulk data crosses address spaces at rendezvous time.
// kAuto lets the kernel pick: transfers of at least
// Costs::kRpcOolThresholdBytes move out-of-line (page reference + remap, no
// per-byte copy loop); smaller ones go through the physical copy loop whose
// constant cost beats page bookkeeping. kCopy / kOol force one path — the
// benches use kCopy to measure what zero-copy saves.
enum class RpcBulkMode : uint8_t {
  kAuto = 0,
  kCopy,
  kOol,
};

// Bulk-data descriptor for the reworked RPC: data too large for the message
// body is passed by reference and either physically copied or remapped
// out-of-line across address spaces by the kernel at rendezvous time.
struct RpcRef {
  const void* send_data = nullptr;  // client -> server bulk data
  uint32_t send_len = 0;
  void* recv_buf = nullptr;  // buffer for server -> client bulk data
  uint32_t recv_cap = 0;
  uint32_t recv_len = 0;  // filled by the kernel on reply
  RpcBulkMode send_mode = RpcBulkMode::kAuto;  // request-direction transfer
  RpcBulkMode recv_mode = RpcBulkMode::kAuto;  // reply-direction transfer
  // Filled by the kernel: whether the last transfer in each direction went
  // out-of-line. On a server-posted ref, recv_ool describes the request
  // data; on a client ref, sent_ool the request and recv_ool the reply.
  bool sent_ool = false;
  bool recv_ool = false;
};

struct RightDescriptor;  // message.h

// Causal-tracing context carried by every thread: which request (trace_id)
// the thread is currently working for, and the innermost open span of that
// request (span_id — the parent of any span the thread opens next). The
// kernel propagates it across RPC rendezvous so one user-visible operation
// renders as a single tree no matter how many servers it hops through.
// Both fields stay 0 while tracing is detached; all maintenance is
// host-side bookkeeping that charges no simulated cycles.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
};

class Thread {
 public:
  enum class State : uint8_t {
    kEmbryo,      // created, not yet started
    kReady,       // on a run queue
    kRunning,     // the current thread
    kBlocked,     // waiting (IPC, sync, sleep, page-in)
    kTerminated,  // body returned or killed
  };

  static constexpr int kNumPriorities = 32;
  static constexpr int kDefaultPriority = 16;

  Thread(ThreadId id, Task* task, std::string name, int priority, hw::PhysAddr sim_addr,
         hw::PhysAddr msg_window);
  ~Thread();

  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  ThreadId id() const { return id_; }
  Task* task() const { return task_; }
  const std::string& name() const { return name_; }
  int priority() const { return priority_; }
  void set_priority(int p) { priority_ = p; }
  State state() const { return state_; }
  hw::PhysAddr sim_addr() const { return sim_addr_; }
  // Simulated address window standing in for this thread's user-level message
  // buffers (stack/heap) in the cache model.
  hw::PhysAddr msg_window() const { return msg_window_; }
  static constexpr uint64_t kMsgWindowSize = 64 * 1024;

  Port* self_port() const { return self_port_; }
  void set_self_port(Port* p) { self_port_ = p; }
  PortName self_port_name() const { return self_port_name_; }
  void set_self_port_name(PortName n) { self_port_name_ = n; }

  // --- Wait bookkeeping -------------------------------------------------------
  // Why the last block ended: kOk (woken normally), kTimedOut, kAborted.
  base::Status wait_status = base::Status::kOk;
  WaitQueue* waiting_on = nullptr;
  uint64_t wake_deadline = 0;  // cycle of a pending timed wake, 0 = none
  uint64_t wake_generation = 0;

  // Threads waiting for this thread to terminate (join).
  WaitQueue exit_waiters;

  // --- RPC rendezvous state ------------------------------------------------------
  struct RpcState {
    // Client side (valid while blocked in RpcCall):
    const void* req_data = nullptr;
    uint32_t req_len = 0;
    void* reply_buf = nullptr;
    uint32_t reply_cap = 0;
    uint32_t reply_len = 0;
    RpcRef* ref = nullptr;
    const RightDescriptor* req_rights = nullptr;
    uint32_t req_rights_count = 0;
    PortName granted_right = kNullPort;  // right received with the reply
    base::Status completion = base::Status::kOk;
    Port* port = nullptr;
    // Tracer span covering this call (0 when tracing is disabled). Server-
    // side delivery/reply code marks phase boundaries on the client's span.
    uint64_t span_id = 0;

    // Server side (valid between RpcReceive and RpcReply):
    Thread* client = nullptr;
    uint64_t token = 0;
    uint64_t arrived_port = 0;
    void* srv_buf = nullptr;
    uint32_t srv_cap = 0;
    RpcRef* srv_ref = nullptr;
    uint32_t srv_req_len = 0;
    uint32_t srv_ref_len = 0;
    std::vector<PortName> srv_rights;
    TaskId srv_client_task = 0;
  };
  RpcState rpc;

  // --- Causal-tracing context ----------------------------------------------------
  // Maintained by trace::Tracer (span begin/end on this thread) and by the
  // kernel RPC paths (request delivery binds the server thread to the
  // client's context; the reply unbinds it). Zero while tracing is off.
  TraceContext trace_ctx;

  // --- Legacy IPC state --------------------------------------------------------
  Port* ipc_receiving_from = nullptr;

  // --- Scheduling --------------------------------------------------------------
  uint64_t dispatch_cycle = 0;   // when this thread last went on-CPU
  uint64_t cpu_cycles_used = 0;  // accumulated on-CPU cycles

 private:
  friend class Scheduler;
  friend class Kernel;

  ThreadId id_;
  Task* task_;
  std::string name_;
  int priority_;
  State state_ = State::kEmbryo;
  hw::PhysAddr sim_addr_;
  hw::PhysAddr msg_window_;
  Port* self_port_ = nullptr;
  PortName self_port_name_ = kNullPort;

  // Host execution context (see src/mk/context.h). The stack is
  // mmap-allocated with a PROT_NONE guard page below it so an overflow
  // faults immediately instead of corrupting the heap.
  void* ctx_sp_ = nullptr;
  uint8_t* stack_ = nullptr;
  size_t stack_bytes_ = 0;
  std::function<void()> entry_;
  bool started_ = false;

  void set_state(State s) { state_ = s; }
};

}  // namespace mk

#endif  // SRC_MK_THREAD_H_
