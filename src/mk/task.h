// Tasks: the unit of resource ownership — an address space (VmMap + pmap),
// a port space, and a set of threads, exactly Mach's decomposition.
#ifndef SRC_MK_TASK_H_
#define SRC_MK_TASK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/hw/code_layout.h"
#include "src/hw/types.h"
#include "src/mk/ids.h"
#include "src/mk/pmap.h"
#include "src/mk/port.h"
#include "src/mk/vm_map.h"

namespace mk {

class Thread;
class ProcessorSet;

class Task {
 public:
  Task(TaskId id, std::string name, hw::PhysAddr sim_addr, hw::PhysAddr pt_base);
  ~Task();

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  TaskId id() const { return id_; }
  const std::string& name() const { return name_; }
  hw::PhysAddr sim_addr() const { return sim_addr_; }

  VmMap& vm_map() { return vm_map_; }
  const VmMap& vm_map() const { return vm_map_; }
  Pmap& pmap() { return pmap_; }
  const Pmap& pmap() const { return pmap_; }
  PortSpace& port_space() { return port_space_; }
  const PortSpace& port_space() const { return port_space_; }

  Port* self_port() const { return self_port_; }
  void set_self_port(Port* p) { self_port_ = p; }

  std::vector<Thread*>& threads() { return threads_; }
  const std::vector<Thread*>& threads() const { return threads_; }

  bool terminated() const { return terminated_; }
  void set_terminated() { terminated_ = true; }

  ProcessorSet* processor_set() const { return processor_set_; }
  void set_processor_set(ProcessorSet* ps) { processor_set_ = ps; }

  // The application code region used by Env::Compute for this task; sized at
  // task creation to model the task's instruction working set.
  hw::CodeRegion app_code;

  // Accounting used by footprint experiments.
  uint64_t faults_taken = 0;
  uint64_t zero_fills = 0;
  uint64_t cow_copies = 0;
  uint64_t pageins = 0;

 private:
  TaskId id_;
  std::string name_;
  hw::PhysAddr sim_addr_;
  VmMap vm_map_;
  Pmap pmap_;
  PortSpace port_space_;
  Port* self_port_ = nullptr;
  std::vector<Thread*> threads_;
  bool terminated_ = false;
  ProcessorSet* processor_set_ = nullptr;
};

}  // namespace mk

#endif  // SRC_MK_TASK_H_
