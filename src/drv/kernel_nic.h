// BSD-style in-kernel NIC driver: the paper notes "some continuing use of
// drivers in the kernel with a BSD-like structure, especially for
// networking". Frames are sent/received by direct kernel calls with an
// in-kernel interrupt handler — no driver task, no RPC — which is what the
// user-level driver model is measured against.
#ifndef SRC_DRV_KERNEL_NIC_H_
#define SRC_DRV_KERNEL_NIC_H_

#include <deque>
#include <vector>

#include "src/hw/nic.h"
#include "src/mk/kernel.h"

namespace drv {

class KernelNicDriver {
 public:
  KernelNicDriver(mk::Kernel& kernel, hw::Nic* nic);

  // Direct kernel-call interface (trap + in-kernel function).
  base::Status Send(mk::Env& env, const void* frame, uint32_t len);
  // Blocks until a frame arrives.
  base::Result<uint32_t> Receive(mk::Env& env, void* buffer, uint32_t cap);

  uint64_t frames_tx() const { return frames_tx_; }
  uint64_t frames_rx() const { return frames_rx_; }

 private:
  void DrainRx();

  mk::Kernel& kernel_;
  hw::Nic* nic_;
  hw::PhysAddr tx_buffer_ = 0;
  hw::PhysAddr rx_buffer_ = 0;
  uint32_t rx_sem_ = 0;
  std::deque<std::vector<uint8_t>> rx_queue_;
  uint64_t frames_tx_ = 0;
  uint64_t frames_rx_ = 0;
};

}  // namespace drv

#endif  // SRC_DRV_KERNEL_NIC_H_
