// Framebuffer driver. Its essential job in WPOS terms: hand the VRAM
// aperture to user-level graphics code (the Presentation-Manager-style
// library) as a device-backed memory object so applications can "directly
// drive the screen buffer" without any server round trips.
#ifndef SRC_DRV_FB_DRIVER_H_
#define SRC_DRV_FB_DRIVER_H_

#include <memory>

#include "src/hw/framebuffer.h"
#include "src/mk/kernel.h"
#include "src/mk/vm_object.h"

namespace drv {

class FbDriver {
 public:
  FbDriver(mk::Kernel& kernel, hw::Framebuffer* fb) : kernel_(kernel), fb_(fb) {
    vram_object_ = std::make_shared<mk::VmObject>(hw::PageRound(fb_->vram_size()));
    vram_object_->SetDeviceWindow(fb_->vram_base());
  }

  uint32_t width() const { return fb_->width(); }
  uint32_t height() const { return fb_->height(); }

  // Maps the aperture into `task`; returns the client-visible base address.
  base::Result<hw::VirtAddr> MapInto(mk::Task& task) {
    ++mappings_;
    return kernel_.VmMapObject(task, vram_object_, 0, hw::PageRound(fb_->vram_size()),
                               mk::Prot::kReadWrite, /*anywhere=*/true);
  }

  // Signal end-of-frame (models a vsync wait register write).
  void Vsync(mk::Env& env) {
    kernel_.IoWrite(fb_, hw::Framebuffer::kRegVsyncCount, 1);
  }

  uint64_t mappings() const { return mappings_; }

 private:
  mk::Kernel& kernel_;
  hw::Framebuffer* fb_;
  std::shared_ptr<mk::VmObject> vram_object_;
  uint64_t mappings_ = 0;
};

}  // namespace drv

#endif  // SRC_DRV_FB_DRIVER_H_
