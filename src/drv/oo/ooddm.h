// OODDM — Taligent's Object-Oriented Device Driver Management, reproduced
// with the paper's structure: a deep class hierarchy where "the
// implementation of a new driver [is] no more than the creation of a subclass
// with a few lines of unique code", in-kernel, with an internal C++ runtime
// (modelled by the fine-grained dispatch costs and per-class state).
//
// Hierarchy: TService -> TInterruptCapable -> TDevice -> TBusAttachedDevice
//            -> TBlockDevice -> TDiskDrive (the "few lines" subclass).
//
// A coarse-object equivalent (CoarseDiskDriver) performs the identical
// device programming in one flat function, for the fine-vs-coarse ablation.
#ifndef SRC_DRV_OO_OODDM_H_
#define SRC_DRV_OO_OODDM_H_

#include "src/drv/oo/fine_grained.h"
#include "src/hw/disk.h"
#include "src/mk/kernel.h"

namespace drv {

class TService : public OoObject {
 public:
  TService(mk::Kernel& kernel, const std::string& cls) : OoObject(kernel, cls) {}

  virtual void Open() { Method("Open", 16); }
  virtual void Close() { Method("Close", 12); }
  virtual void Audit() { Method("Audit", 10); }
  virtual void Log() { Method("Log", 8); }
};

class TInterruptCapable : public TService {
 public:
  TInterruptCapable(mk::Kernel& kernel, const std::string& cls) : TService(kernel, cls) {}

  virtual void EnableInterrupts() { Method("EnableInterrupts", 12); }
  virtual void DisableInterrupts() { Method("DisableInterrupts", 12); }
  virtual void HandleInterrupt() { Method("HandleInterrupt", 22); }
};

class TDevice : public TInterruptCapable {
 public:
  TDevice(mk::Kernel& kernel, const std::string& cls) : TInterruptCapable(kernel, cls) {}

  virtual void Probe() { Method("Probe", 20); }
  virtual void Reset() { Method("Reset", 18); }
  virtual bool ValidateState() {
    Method("ValidateState", 14);
    return true;
  }
  virtual void PowerUp() { Method("PowerUp", 10); }
  virtual void PowerDown() { Method("PowerDown", 10); }
};

class TBusAttachedDevice : public TDevice {
 public:
  TBusAttachedDevice(mk::Kernel& kernel, const std::string& cls) : TDevice(kernel, cls) {}

  virtual void AcquireBus() { Method("AcquireBus", 12); }
  virtual void ReleaseBus() { Method("ReleaseBus", 10); }
  virtual uint32_t TranslateAddress(uint32_t addr) {
    Method("TranslateAddress", 14);
    return addr;
  }
};

class TBlockDevice : public TBusAttachedDevice {
 public:
  TBlockDevice(mk::Kernel& kernel, const std::string& cls) : TBusAttachedDevice(kernel, cls) {}

  // The framework's template method: a block request decomposes into many
  // small overridable steps.
  base::Status ReadBlocks(mk::Env& env, uint64_t lba, uint32_t count, void* out) {
    if (!ValidateState()) {
      return base::Status::kIoError;
    }
    ValidateRange(lba, count);
    AcquireBus();
    PrepareRequest(lba, count);
    const uint32_t dma = TranslateAddress(StageBuffer());
    SubmitRequest(dma, /*write=*/false);
    AwaitCompletion(env);
    CompleteRequest(out, count);
    ReleaseBus();
    Audit();
    Log();
    return base::Status::kOk;
  }

  virtual void ValidateRange(uint64_t lba, uint32_t count) { Method("ValidateRange", 12); }
  virtual void PrepareRequest(uint64_t lba, uint32_t count) { Method("PrepareRequest", 16); }
  virtual uint32_t StageBuffer() {
    Method("StageBuffer", 14);
    return 0;
  }
  virtual void SubmitRequest(uint32_t dma, bool write) { Method("SubmitRequest", 18); }
  virtual void AwaitCompletion(mk::Env& env) { Method("AwaitCompletion", 16); }
  virtual void CompleteRequest(void* out, uint32_t count) { Method("CompleteRequest", 14); }
};

// The actual driver: "a subclass with a few lines of unique code".
class TDiskDrive : public TBlockDevice {
 public:
  TDiskDrive(mk::Kernel& kernel, hw::Disk* disk, hw::PhysAddr dma_buffer)
      : TBlockDevice(kernel, "TDiskDrive"), disk_(disk), dma_buffer_(dma_buffer) {}

  void PrepareRequest(uint64_t lba, uint32_t count) override {
    Method("PrepareRequest", 8);
    lba_ = lba;
    count_ = count;
  }
  uint32_t StageBuffer() override {
    Method("StageBuffer", 6);
    return static_cast<uint32_t>(dma_buffer_);
  }
  void SubmitRequest(uint32_t dma, bool write) override {
    Method("SubmitRequest", 10);
    kernel_.IoWrite(disk_, hw::Disk::kRegLba, static_cast<uint32_t>(lba_));
    kernel_.IoWrite(disk_, hw::Disk::kRegCount, count_);
    kernel_.IoWrite(disk_, hw::Disk::kRegDmaLo, dma);
    kernel_.IoWrite(disk_, hw::Disk::kRegCommand,
                    write ? hw::Disk::kCmdWrite : hw::Disk::kCmdRead);
  }
  void AwaitCompletion(mk::Env& env) override {
    Method("AwaitCompletion", 8);
    HandleInterrupt();
    while ((kernel_.IoRead(disk_, hw::Disk::kRegStatus) & hw::Disk::kStatusDone) == 0) {
      env.SleepNs(50'000);
    }
    kernel_.IoWrite(disk_, hw::Disk::kRegStatus, 0);
  }
  void CompleteRequest(void* out, uint32_t count) override {
    Method("CompleteRequest", 8);
    kernel_.machine().mem().Read(dma_buffer_, out,
                                 static_cast<uint64_t>(count) * hw::Disk::kSectorSize);
    kernel_.ChargeCopy(dma_buffer_, kernel_.heap().base(),
                       static_cast<uint64_t>(count) * hw::Disk::kSectorSize);
  }

 private:
  hw::Disk* disk_;
  hw::PhysAddr dma_buffer_;
  uint64_t lba_ = 0;
  uint32_t count_ = 0;
};

// The coarse-object comparator: same device programming, one flat function,
// one code region, one state block (the MK++-style "simpler, coarser
// objects" the paper recommends).
class CoarseDiskDriver {
 public:
  CoarseDiskDriver(mk::Kernel& kernel, hw::Disk* disk, hw::PhysAddr dma_buffer)
      : kernel_(kernel),
        disk_(disk),
        dma_buffer_(dma_buffer),
        state_sim_(kernel.heap().Allocate(128)) {}

  base::Status ReadBlocks(mk::Env& env, uint64_t lba, uint32_t count, void* out) {
    static const hw::CodeRegion kRegion = hw::DefineCode("drv.coarse_disk.read", 150);
    kernel_.cpu().Execute(kRegion);
    kernel_.cpu().AccessData(state_sim_, 64, /*write=*/true);
    kernel_.IoWrite(disk_, hw::Disk::kRegLba, static_cast<uint32_t>(lba));
    kernel_.IoWrite(disk_, hw::Disk::kRegCount, count);
    kernel_.IoWrite(disk_, hw::Disk::kRegDmaLo, static_cast<uint32_t>(dma_buffer_));
    kernel_.IoWrite(disk_, hw::Disk::kRegCommand, hw::Disk::kCmdRead);
    while ((kernel_.IoRead(disk_, hw::Disk::kRegStatus) & hw::Disk::kStatusDone) == 0) {
      env.SleepNs(50'000);
    }
    kernel_.IoWrite(disk_, hw::Disk::kRegStatus, 0);
    kernel_.machine().mem().Read(dma_buffer_, out,
                                 static_cast<uint64_t>(count) * hw::Disk::kSectorSize);
    kernel_.ChargeCopy(dma_buffer_, kernel_.heap().base(),
                       static_cast<uint64_t>(count) * hw::Disk::kSectorSize);
    return base::Status::kOk;
  }

 private:
  mk::Kernel& kernel_;
  hw::Disk* disk_;
  hw::PhysAddr dma_buffer_;
  hw::PhysAddr state_sim_;
};

}  // namespace drv

#endif  // SRC_DRV_OO_OODDM_H_
