// Fine-grained-object machinery, reproduced the way the paper criticises it.
//
// Taligent's OODDM and networking frameworks used "complex class hierarchies
// and extensive subclassing to maximize code reuse", yielding "a very large
// number of very short virtual methods". This header gives that style a cost
// model: every virtual method of every class is its own small code region (so
// a deep call chain touches many distinct I-cache lines, exactly like real
// out-of-line virtual functions), and every dispatch touches the object and
// its vtable through the D-cache.
//
// The framework is used by drv::oo (OODDM drivers) and svc::net (the
// fine-grained network stack); the coarse-object counterparts implement the
// same function with a handful of larger functions.
#ifndef SRC_DRV_OO_FINE_GRAINED_H_
#define SRC_DRV_OO_FINE_GRAINED_H_

#include <string>

#include "src/mk/kernel.h"

namespace drv {

// Base of every fine-grained object. Subclasses call Method() at the top of
// each virtual method to model the dispatch + the method's body.
class OoObject {
 public:
  OoObject(mk::Kernel& kernel, const std::string& class_name)
      : kernel_(kernel),
        class_name_(class_name),
        self_sim_(kernel.heap().Allocate(96)),
        vtable_sim_(kernel.heap().Allocate(64)) {}
  virtual ~OoObject() = default;

  const std::string& class_name() const { return class_name_; }
  uint64_t virtual_calls() const { return virtual_calls_; }

 protected:
  // Models one virtual method invocation: vtable load, object state touch,
  // and `body_instructions` executed from a region unique to
  // (class, method).
  void Method(const char* method, uint32_t body_instructions) {
    ++virtual_calls_;
    hw::Cpu& cpu = kernel_.cpu();
    cpu.AccessData(vtable_sim_, 8, /*write=*/false);   // vtable pointer load
    cpu.AccessData(self_sim_, 16, /*write=*/true);     // member state
    const hw::CodeRegion region =
        hw::DefineCode("oo." + class_name_ + "." + method, body_instructions + kDispatchInstr);
    cpu.Execute(region);
  }

  mk::Kernel& kernel_;

 private:
  static constexpr uint32_t kDispatchInstr = 6;  // call through vtable + frame
  std::string class_name_;
  hw::PhysAddr self_sim_;
  hw::PhysAddr vtable_sim_;
  uint64_t virtual_calls_ = 0;
};

// Stateful C++ wrappers for the kernel interfaces (the Taligent wrappers the
// paper complains about: "rather than being a simple, stateless
// representation of the kernel interfaces, [they] exported a significantly
// different set of interfaces that forced them to maintain state").
class TPortSenderWrapper : public OoObject {
 public:
  TPortSenderWrapper(mk::Kernel& kernel, mk::PortName port)
      : OoObject(kernel, "TPortSender"), port_(port) {}

  base::Status SendRequest(mk::Env& env, const void* req, uint32_t req_len, void* reply,
                           uint32_t reply_cap, mk::RpcRef* ref = nullptr) {
    // The wrapper's "value-added" interface: validation, statistics,
    // default-policy state — each its own short virtual method.
    Method("ValidateTarget", 14);
    Method("CheckQuota", 12);
    Method("RecordAttempt", 10);
    Method("MarshalHeader", 18);
    const base::Status st =
        env.RpcCall(port_, req, req_len, reply, reply_cap, nullptr, ref);
    Method("RecordOutcome", 12);
    Method("UpdateLatencyStats", 16);
    ++requests_;
    if (st != base::Status::kOk) {
      ++failures_;
      Method("HandleFailure", 20);
    }
    return st;
  }

  uint64_t requests() const { return requests_; }

 private:
  mk::PortName port_;
  uint64_t requests_ = 0;
  uint64_t failures_ = 0;
};

}  // namespace drv

#endif  // SRC_DRV_OO_FINE_GRAINED_H_
