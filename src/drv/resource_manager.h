// Hardware resource manager (Golub/Sotomayor/Rawson '93): assigns hardware
// resources — device register windows, interrupt lines, DMA channels — to
// drivers using a request/yield/grant scheme. A resource has at most one
// owner; when a second driver requests it, the current owner is asked to
// yield, and the grant happens when (and only when) it does.
#ifndef SRC_DRV_RESOURCE_MANAGER_H_
#define SRC_DRV_RESOURCE_MANAGER_H_

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/mk/kernel.h"

namespace drv {

enum class ResourceKind : uint8_t { kIoWindow, kIrqLine, kDmaChannel };

struct ResourceId {
  ResourceKind kind = ResourceKind::kIoWindow;
  uint64_t id = 0;  // device reg base / IRQ number / channel number
  auto operator<=>(const ResourceId&) const = default;
};

using DriverId = uint32_t;

class ResourceManager {
 public:
  explicit ResourceManager(mk::Kernel& kernel) : kernel_(kernel) {}

  // A driver registers once; `yield_request` is invoked (in the requester's
  // thread context) when another driver wants a resource this driver owns.
  // Returning true means the driver yields immediately; false keeps the
  // requester pending until the owner calls Yield().
  DriverId RegisterDriver(const std::string& name,
                          std::function<bool(const ResourceId&)> yield_request = {});

  // Declares a resource as existing (unowned).
  base::Status DeclareResource(const ResourceId& resource, const std::string& description);

  // Requests ownership. Returns kOk if granted now, kBusy if the owner was
  // asked and declined (request stays queued), kNotFound if undeclared.
  base::Status Request(DriverId driver, const ResourceId& resource);

  // Gives up a resource; the head queued requester (if any) is granted.
  base::Status Yield(DriverId driver, const ResourceId& resource);

  base::Result<DriverId> OwnerOf(const ResourceId& resource) const;
  bool Owns(DriverId driver, const ResourceId& resource) const;
  std::vector<ResourceId> ResourcesOf(DriverId driver) const;

  uint64_t grants() const { return grants_; }
  uint64_t yields() const { return yields_; }

 private:
  struct Driver {
    std::string name;
    std::function<bool(const ResourceId&)> yield_request;
  };
  struct Resource {
    std::string description;
    DriverId owner = 0;  // 0 = unowned
    std::deque<DriverId> pending;
  };

  mk::Kernel& kernel_;
  std::map<DriverId, Driver> drivers_;
  std::map<ResourceId, Resource> resources_;
  DriverId next_driver_ = 1;
  uint64_t grants_ = 0;
  uint64_t yields_ = 0;
};

}  // namespace drv

#endif  // SRC_DRV_RESOURCE_MANAGER_H_
