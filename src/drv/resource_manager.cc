#include "src/drv/resource_manager.h"

#include "src/base/log.h"

namespace drv {

namespace {
const hw::CodeRegion& RequestRegion() {
  static const hw::CodeRegion r = hw::DefineCode("drv.rm.request", 190);
  return r;
}
const hw::CodeRegion& GrantRegion() {
  static const hw::CodeRegion r = hw::DefineCode("drv.rm.grant", 110);
  return r;
}
}  // namespace

DriverId ResourceManager::RegisterDriver(const std::string& name,
                                         std::function<bool(const ResourceId&)> yield_request) {
  const DriverId id = next_driver_++;
  drivers_.emplace(id, Driver{name, std::move(yield_request)});
  return id;
}

base::Status ResourceManager::DeclareResource(const ResourceId& resource,
                                              const std::string& description) {
  if (resources_.contains(resource)) {
    return base::Status::kAlreadyExists;
  }
  resources_.emplace(resource, Resource{.description = description});
  return base::Status::kOk;
}

base::Status ResourceManager::Request(DriverId driver, const ResourceId& resource) {
  kernel_.cpu().Execute(RequestRegion());
  if (!drivers_.contains(driver)) {
    return base::Status::kInvalidArgument;
  }
  auto it = resources_.find(resource);
  if (it == resources_.end()) {
    return base::Status::kNotFound;
  }
  Resource& r = it->second;
  if (r.owner == driver) {
    return base::Status::kOk;
  }
  if (r.owner == 0) {
    r.owner = driver;
    ++grants_;
    kernel_.cpu().Execute(GrantRegion());
    return base::Status::kOk;
  }
  // Ask the owner to yield.
  Driver& owner = drivers_.at(r.owner);
  if (owner.yield_request && owner.yield_request(resource)) {
    ++yields_;
    r.owner = driver;
    ++grants_;
    kernel_.cpu().Execute(GrantRegion());
    return base::Status::kOk;
  }
  r.pending.push_back(driver);
  return base::Status::kBusy;
}

base::Status ResourceManager::Yield(DriverId driver, const ResourceId& resource) {
  auto it = resources_.find(resource);
  if (it == resources_.end()) {
    return base::Status::kNotFound;
  }
  Resource& r = it->second;
  if (r.owner != driver) {
    return base::Status::kPermissionDenied;
  }
  ++yields_;
  r.owner = 0;
  if (!r.pending.empty()) {
    r.owner = r.pending.front();
    r.pending.pop_front();
    ++grants_;
    kernel_.cpu().Execute(GrantRegion());
  }
  return base::Status::kOk;
}

base::Result<DriverId> ResourceManager::OwnerOf(const ResourceId& resource) const {
  auto it = resources_.find(resource);
  if (it == resources_.end()) {
    return base::Status::kNotFound;
  }
  if (it->second.owner == 0) {
    return base::Status::kNotFound;
  }
  return it->second.owner;
}

bool ResourceManager::Owns(DriverId driver, const ResourceId& resource) const {
  auto it = resources_.find(resource);
  return it != resources_.end() && it->second.owner == driver;
}

std::vector<ResourceId> ResourceManager::ResourcesOf(DriverId driver) const {
  std::vector<ResourceId> out;
  for (const auto& [id, r] : resources_) {
    if (r.owner == driver) {
      out.push_back(id);
    }
  }
  return out;
}

}  // namespace drv
