#include "src/drv/kernel_nic.h"

#include "src/base/log.h"

namespace drv {

namespace {
const hw::CodeRegion& TrapEntryRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.trap.entry", mk::Costs::kTrapEntry);
  return r;
}
const hw::CodeRegion& KTxRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.drv.nic_tx", 200);
  return r;
}
const hw::CodeRegion& KRxRegion() {
  static const hw::CodeRegion r = hw::DefineKernelCode("mk.drv.nic_rx", 220);
  return r;
}
}  // namespace

KernelNicDriver::KernelNicDriver(mk::Kernel& kernel, hw::Nic* nic)
    : kernel_(kernel), nic_(nic) {
  auto tx = kernel_.machine().mem().AllocContiguous(1);
  auto rx = kernel_.machine().mem().AllocContiguous(1);
  WPOS_CHECK(tx.ok() && rx.ok());
  tx_buffer_ = *tx;
  rx_buffer_ = *rx;
  auto sem = kernel_.SemCreate(0);
  WPOS_CHECK(sem.ok());
  rx_sem_ = *sem;
  kernel_.IoWrite(nic_, hw::Nic::kRegRxAddr, static_cast<uint32_t>(rx_buffer_));
  kernel_.IoWrite(nic_, hw::Nic::kRegRxCap, hw::kPageSize);
  // The BSD structure: the interrupt handler runs in the kernel and drains
  // the device directly.
  kernel_.RegisterKernelInterrupt(static_cast<uint32_t>(nic_->irq_line()),
                                  [this] { DrainRx(); });
}

void KernelNicDriver::DrainRx() {
  while ((kernel_.IoRead(nic_, hw::Nic::kRegStatus) & hw::Nic::kStatusRxReady) != 0) {
    kernel_.cpu().Execute(KRxRegion());
    const uint32_t len = kernel_.IoRead(nic_, hw::Nic::kRegRxLen);
    std::vector<uint8_t> frame(len);
    kernel_.machine().mem().Read(rx_buffer_, frame.data(), len);
    kernel_.ChargeCopy(rx_buffer_, kernel_.heap().base(), len);
    rx_queue_.push_back(std::move(frame));
    ++frames_rx_;
    kernel_.IoWrite(nic_, hw::Nic::kRegCommand, hw::Nic::kCmdRxAck);
    (void)kernel_.SemSignal(rx_sem_);
  }
}

base::Status KernelNicDriver::Send(mk::Env& env, const void* frame, uint32_t len) {
  if (len == 0 || len > hw::Nic::kMaxFrame) {
    return base::Status::kInvalidArgument;
  }
  kernel_.EnterKernel(TrapEntryRegion());
  kernel_.cpu().Execute(KTxRegion());
  kernel_.machine().mem().Write(tx_buffer_, frame, len);
  kernel_.ChargeCopy(kernel_.current()->msg_window(), tx_buffer_, len);
  kernel_.IoWrite(nic_, hw::Nic::kRegTxAddr, static_cast<uint32_t>(tx_buffer_));
  kernel_.IoWrite(nic_, hw::Nic::kRegTxLen, len);
  kernel_.IoWrite(nic_, hw::Nic::kRegCommand, hw::Nic::kCmdSend);
  ++frames_tx_;
  kernel_.LeaveKernel();
  return base::Status::kOk;
}

base::Result<uint32_t> KernelNicDriver::Receive(mk::Env& env, void* buffer, uint32_t cap) {
  kernel_.EnterKernel(TrapEntryRegion());
  kernel_.cpu().Execute(KRxRegion());
  while (rx_queue_.empty()) {
    const base::Status st = kernel_.SemWait(rx_sem_);
    if (st != base::Status::kOk) {
      kernel_.LeaveKernel();
      return st;
    }
  }
  std::vector<uint8_t> frame = std::move(rx_queue_.front());
  rx_queue_.pop_front();
  if (frame.size() > cap) {
    kernel_.LeaveKernel();
    return base::Status::kTooLarge;
  }
  std::memcpy(buffer, frame.data(), frame.size());
  kernel_.ChargeCopy(kernel_.heap().base(), kernel_.current()->msg_window(), frame.size());
  kernel_.LeaveKernel();
  return static_cast<uint32_t>(frame.size());
}

}  // namespace drv
