// User-level disk driver in the style of [Golub'93]: the driver is an
// ordinary task that maps the device's registers, takes its interrupts as
// reflected messages, and serves block I/O to clients over RPC. A DMA bounce
// buffer of physically contiguous frames carries the data to/from the device.
#ifndef SRC_DRV_DISK_DRIVER_H_
#define SRC_DRV_DISK_DRIVER_H_

#include <memory>

#include "src/drv/resource_manager.h"
#include "src/hw/disk.h"
#include "src/mk/kernel.h"
#include "src/mk/server_loop.h"
#include "src/mks/pager/default_pager.h"

namespace drv {

enum class DiskOp : uint32_t { kRead = 1, kWrite = 2, kInfo = 3 };

struct DiskRequest {
  DiskOp op = DiskOp::kRead;
  uint64_t lba = 0;
  uint32_t count = 0;  // sectors
};

struct DiskReply {
  int32_t status = 0;
  uint64_t sectors = 0;  // kInfo: disk size
};

class DiskDriver {
 public:
  // Max sectors per request, bounded by the DMA bounce buffer (64 KB).
  static constexpr uint32_t kMaxSectors = 128;

  DiskDriver(mk::Kernel& kernel, mk::Task* task, hw::Disk* disk, ResourceManager* rm);

  mk::Task* task() const { return task_; }
  mk::PortName service_port() const { return service_port_; }
  mk::PortName GrantTo(mk::Task& client);
  void Stop() { running_ = false; }

  uint64_t requests_served() const { return requests_served_; }
  uint64_t interrupts_taken() const { return interrupts_taken_; }

 private:
  void Serve(mk::Env& env);
  base::Status DoIo(mk::Env& env, const DiskRequest& req, uint8_t* data);
  void AwaitCompletion(mk::Env& env);

  mk::Kernel& kernel_;
  mk::Task* task_;
  hw::Disk* disk_;
  DriverId driver_id_ = 0;
  mk::PortName service_port_ = mk::kNullPort;
  mk::PortName irq_port_ = mk::kNullPort;
  hw::PhysAddr dma_buffer_ = 0;
  uint64_t requests_served_ = 0;
  uint64_t interrupts_taken_ = 0;
  bool running_ = true;
};

// Client-side block access over the driver's RPC service; plugs into the
// default pager and the file server.
class RpcBlockStore : public mks::BlockStore {
 public:
  RpcBlockStore(mk::PortName service, uint64_t num_sectors)
      : stub_("drv.disk.client", service), num_sectors_(num_sectors) {}

  base::Status Read(mk::Env& env, uint64_t lba, uint32_t count, void* out) override;
  base::Status Write(mk::Env& env, uint64_t lba, uint32_t count, const void* src) override;
  uint64_t num_sectors() const override { return num_sectors_; }

 private:
  mk::ClientStub stub_;
  uint64_t num_sectors_;
};

}  // namespace drv

#endif  // SRC_DRV_DISK_DRIVER_H_
