#include "src/drv/disk_driver.h"

#include <cstring>
#include <vector>

#include "src/base/log.h"

namespace drv {

namespace {
const hw::CodeRegion& IoPathRegion() {
  static const hw::CodeRegion r = hw::DefineCode("drv.disk.io_path", 340);
  return r;
}
const hw::CodeRegion& IsrRegion() {
  static const hw::CodeRegion r = hw::DefineCode("drv.disk.isr", 150);
  return r;
}
}  // namespace

DiskDriver::DiskDriver(mk::Kernel& kernel, mk::Task* task, hw::Disk* disk, ResourceManager* rm)
    : kernel_(kernel), task_(task), disk_(disk) {
  // Claim the hardware through the resource manager.
  if (rm != nullptr) {
    driver_id_ = rm->RegisterDriver("disk-driver");
    (void)rm->DeclareResource({ResourceKind::kIoWindow, disk_->reg_base()}, "disk registers");
    (void)rm->DeclareResource({ResourceKind::kIrqLine, static_cast<uint64_t>(disk_->irq_line())},
                              "disk irq");
    WPOS_CHECK(rm->Request(driver_id_, {ResourceKind::kIoWindow, disk_->reg_base()}) ==
               base::Status::kOk);
    WPOS_CHECK(rm->Request(driver_id_,
                           {ResourceKind::kIrqLine, static_cast<uint64_t>(disk_->irq_line())}) ==
               base::Status::kOk);
  }
  auto service = kernel_.PortAllocate(*task_);
  WPOS_CHECK(service.ok());
  service_port_ = *service;
  auto irq = kernel_.PortAllocate(*task_);
  WPOS_CHECK(irq.ok());
  irq_port_ = *irq;
  WPOS_CHECK(kernel_.ReflectInterrupt(*task_, static_cast<uint32_t>(disk_->irq_line()),
                                      irq_port_) == base::Status::kOk);
  auto dma = kernel_.machine().mem().AllocContiguous(kMaxSectors * hw::Disk::kSectorSize /
                                                     hw::kPageSize);
  WPOS_CHECK(dma.ok()) << "no contiguous memory for disk DMA buffer";
  dma_buffer_ = *dma;
  kernel_.CreateThread(task_, "disk-driver", [this](mk::Env& env) { Serve(env); },
                       mk::Thread::kDefaultPriority + 4);
}

mk::PortName DiskDriver::GrantTo(mk::Task& client) {
  auto name = kernel_.MakeSendRight(*task_, service_port_, client);
  WPOS_CHECK(name.ok());
  return *name;
}

void DiskDriver::AwaitCompletion(mk::Env& env) {
  while ((kernel_.IoRead(disk_, hw::Disk::kRegStatus) & hw::Disk::kStatusDone) == 0) {
    mk::MachMessage msg;
    const base::Status st = kernel_.MachMsgReceive(irq_port_, &msg);
    if (st != base::Status::kOk) {
      return;
    }
    ++interrupts_taken_;
    kernel_.cpu().Execute(IsrRegion());
  }
  kernel_.IoWrite(disk_, hw::Disk::kRegStatus, 0);  // ack done/error bits
}

base::Status DiskDriver::DoIo(mk::Env& env, const DiskRequest& req, uint8_t* data) {
  if (req.count == 0 || req.count > kMaxSectors ||
      req.lba + req.count > disk_->num_sectors()) {
    return base::Status::kInvalidArgument;
  }
  kernel_.cpu().Execute(IoPathRegion());
  const uint64_t bytes = static_cast<uint64_t>(req.count) * hw::Disk::kSectorSize;
  if (req.op == DiskOp::kWrite) {
    // Stage data into the DMA buffer.
    kernel_.machine().mem().Write(dma_buffer_, data, bytes);
    kernel_.ChargeCopy(kernel_.current()->msg_window(), dma_buffer_, bytes);
  }
  kernel_.IoWrite(disk_, hw::Disk::kRegLba, static_cast<uint32_t>(req.lba));
  kernel_.IoWrite(disk_, hw::Disk::kRegCount, req.count);
  kernel_.IoWrite(disk_, hw::Disk::kRegDmaLo, static_cast<uint32_t>(dma_buffer_));
  kernel_.IoWrite(disk_, hw::Disk::kRegCommand,
                  req.op == DiskOp::kRead ? hw::Disk::kCmdRead : hw::Disk::kCmdWrite);
  AwaitCompletion(env);
  if (req.op == DiskOp::kRead) {
    kernel_.machine().mem().Read(dma_buffer_, data, bytes);
    kernel_.ChargeCopy(dma_buffer_, kernel_.current()->msg_window(), bytes);
  }
  return base::Status::kOk;
}

void DiskDriver::Serve(mk::Env& env) {
  DiskRequest req;
  std::vector<uint8_t> data(kMaxSectors * hw::Disk::kSectorSize);
  while (true) {
    mk::RpcRef ref;
    ref.recv_buf = data.data();
    ref.recv_cap = static_cast<uint32_t>(data.size());
    auto r = env.RpcReceive(service_port_, &req, sizeof(req), &ref);
    if (!r.ok()) {
      return;
    }
    ++requests_served_;
    mk::trace::Tracer& tracer = kernel_.tracer();
    mk::trace::ScopedSpan op_span(tracer, mk::trace::SpanKind::kServerOp,
                                  mk::trace::EventType::kServerDispatch,
                                  mk::trace::EventType::kServerDone,
                                  static_cast<uint64_t>(req.op));
    op_span.set_end_payload(static_cast<uint64_t>(req.op));
    tracer.LabelSpan(op_span.id(), "disk");
    ++tracer.metrics().Counter("server.disk.ops");
    DiskReply reply;
    switch (req.op) {
      case DiskOp::kInfo:
        reply.sectors = disk_->num_sectors();
        env.RpcReply(r->token, &reply, sizeof(reply));
        break;
      case DiskOp::kRead: {
        reply.status = static_cast<int32_t>(DoIo(env, req, data.data()));
        const uint32_t bytes =
            reply.status == 0 ? req.count * hw::Disk::kSectorSize : 0;
        env.RpcReply(r->token, &reply, sizeof(reply), data.data(), bytes);
        break;
      }
      case DiskOp::kWrite: {
        if (ref.recv_len != req.count * hw::Disk::kSectorSize) {
          reply.status = static_cast<int32_t>(base::Status::kInvalidArgument);
        } else {
          reply.status = static_cast<int32_t>(DoIo(env, req, data.data()));
        }
        env.RpcReply(r->token, &reply, sizeof(reply));
        break;
      }
      default:
        reply.status = static_cast<int32_t>(base::Status::kNotSupported);
        env.RpcReply(r->token, &reply, sizeof(reply));
    }
  
    if (!running_) {
      // Server shutdown: kill the service port so queued and future
      // callers fail with kPortDead instead of blocking forever.
      (void)kernel_.PortDestroy(*task_, service_port_);
      return;
    }
  }
}

base::Status RpcBlockStore::Read(mk::Env& env, uint64_t lba, uint32_t count, void* out) {
  uint64_t done = 0;
  while (done < count) {
    const uint32_t chunk =
        static_cast<uint32_t>(std::min<uint64_t>(count - done, DiskDriver::kMaxSectors));
    DiskRequest req{DiskOp::kRead, lba + done, chunk};
    DiskReply reply;
    mk::RpcRef ref;
    ref.recv_buf = static_cast<uint8_t*>(out) + done * hw::Disk::kSectorSize;
    ref.recv_cap = chunk * hw::Disk::kSectorSize;
    const base::Status st = stub_.Call(env, req, &reply, &ref);
    if (st != base::Status::kOk) {
      return st;
    }
    if (reply.status != 0) {
      return static_cast<base::Status>(reply.status);
    }
    done += chunk;
  }
  return base::Status::kOk;
}

base::Status RpcBlockStore::Write(mk::Env& env, uint64_t lba, uint32_t count, const void* src) {
  uint64_t done = 0;
  while (done < count) {
    const uint32_t chunk =
        static_cast<uint32_t>(std::min<uint64_t>(count - done, DiskDriver::kMaxSectors));
    DiskRequest req{DiskOp::kWrite, lba + done, chunk};
    DiskReply reply;
    mk::RpcRef ref;
    ref.send_data = static_cast<const uint8_t*>(src) + done * hw::Disk::kSectorSize;
    ref.send_len = chunk * hw::Disk::kSectorSize;
    const base::Status st = stub_.Call(env, req, &reply, &ref);
    if (st != base::Status::kOk) {
      return st;
    }
    if (reply.status != 0) {
      return static_cast<base::Status>(reply.status);
    }
    done += chunk;
  }
  return base::Status::kOk;
}

}  // namespace drv
