// User-level network interface driver: a receive thread takes reflected
// interrupts and drains frames into a queue; a service thread serves
// send/receive RPCs to the networking service.
#ifndef SRC_DRV_NIC_DRIVER_H_
#define SRC_DRV_NIC_DRIVER_H_

#include <deque>
#include <vector>

#include "src/drv/resource_manager.h"
#include "src/hw/nic.h"
#include "src/mk/kernel.h"
#include "src/mk/server_loop.h"

namespace drv {

enum class NicOp : uint32_t { kSend = 1, kRecv = 2 };

struct NicRequest {
  NicOp op = NicOp::kSend;
  uint32_t len = 0;
};

struct NicReply {
  int32_t status = 0;
  uint32_t len = 0;
};

class NicDriver {
 public:
  NicDriver(mk::Kernel& kernel, mk::Task* task, hw::Nic* nic, ResourceManager* rm);

  mk::PortName service_port() const { return service_port_; }
  mk::PortName GrantTo(mk::Task& client);
  void Stop() { running_ = false; }

  uint64_t frames_tx() const { return frames_tx_; }
  uint64_t frames_rx() const { return frames_rx_; }

 private:
  void IsrLoop(mk::Env& env);
  void Serve(mk::Env& env);

  mk::Kernel& kernel_;
  mk::Task* task_;
  hw::Nic* nic_;
  mk::PortName service_port_ = mk::kNullPort;
  mk::PortName irq_port_ = mk::kNullPort;
  hw::PhysAddr tx_buffer_ = 0;
  hw::PhysAddr rx_buffer_ = 0;
  std::deque<std::vector<uint8_t>> rx_queue_;
  std::deque<uint64_t> pending_recvs_;  // tokens of queued kRecv requests
  uint64_t frames_tx_ = 0;
  uint64_t frames_rx_ = 0;
  bool running_ = true;
};

// Client-side frame interface for the networking service.
class NicClient {
 public:
  explicit NicClient(mk::PortName service) : stub_("drv.nic.client", service) {}

  base::Status Send(mk::Env& env, const void* frame, uint32_t len);
  // Blocks until a frame arrives; returns its length.
  base::Result<uint32_t> Receive(mk::Env& env, void* buffer, uint32_t cap);

 private:
  mk::ClientStub stub_;
};

}  // namespace drv

#endif  // SRC_DRV_NIC_DRIVER_H_
