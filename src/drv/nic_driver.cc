#include "src/drv/nic_driver.h"

#include <cstring>

#include "src/base/log.h"

namespace drv {

namespace {
const hw::CodeRegion& TxRegion() {
  static const hw::CodeRegion r = hw::DefineCode("drv.nic.tx_path", 220);
  return r;
}
const hw::CodeRegion& RxRegion() {
  static const hw::CodeRegion r = hw::DefineCode("drv.nic.rx_path", 240);
  return r;
}
}  // namespace

NicDriver::NicDriver(mk::Kernel& kernel, mk::Task* task, hw::Nic* nic, ResourceManager* rm)
    : kernel_(kernel), task_(task), nic_(nic) {
  if (rm != nullptr) {
    const DriverId id = rm->RegisterDriver("nic-driver");
    (void)rm->DeclareResource({ResourceKind::kIoWindow, nic_->reg_base()}, "nic registers");
    (void)rm->DeclareResource({ResourceKind::kIrqLine, static_cast<uint64_t>(nic_->irq_line())},
                              "nic irq");
    WPOS_CHECK(rm->Request(id, {ResourceKind::kIoWindow, nic_->reg_base()}) == base::Status::kOk);
    WPOS_CHECK(rm->Request(id, {ResourceKind::kIrqLine,
                                static_cast<uint64_t>(nic_->irq_line())}) == base::Status::kOk);
  }
  auto service = kernel_.PortAllocate(*task_);
  WPOS_CHECK(service.ok());
  service_port_ = *service;
  auto irq = kernel_.PortAllocate(*task_);
  WPOS_CHECK(irq.ok());
  irq_port_ = *irq;
  WPOS_CHECK(kernel_.ReflectInterrupt(*task_, static_cast<uint32_t>(nic_->irq_line()),
                                      irq_port_) == base::Status::kOk);
  auto tx = kernel_.machine().mem().AllocContiguous(1);
  auto rx = kernel_.machine().mem().AllocContiguous(1);
  WPOS_CHECK(tx.ok() && rx.ok());
  tx_buffer_ = *tx;
  rx_buffer_ = *rx;
  // Post the receive buffer.
  kernel_.IoWrite(nic_, hw::Nic::kRegRxAddr, static_cast<uint32_t>(rx_buffer_));
  kernel_.IoWrite(nic_, hw::Nic::kRegRxCap, hw::kPageSize);
  kernel_.CreateThread(task_, "nic-isr", [this](mk::Env& env) { IsrLoop(env); },
                       mk::Thread::kDefaultPriority + 5);
  kernel_.CreateThread(task_, "nic-driver", [this](mk::Env& env) { Serve(env); },
                       mk::Thread::kDefaultPriority + 4);
}

mk::PortName NicDriver::GrantTo(mk::Task& client) {
  auto name = kernel_.MakeSendRight(*task_, service_port_, client);
  WPOS_CHECK(name.ok());
  return *name;
}

void NicDriver::IsrLoop(mk::Env& env) {
  while (running_) {
    mk::MachMessage msg;
    if (kernel_.MachMsgReceive(irq_port_, &msg) != base::Status::kOk) {
      return;
    }
    while ((kernel_.IoRead(nic_, hw::Nic::kRegStatus) & hw::Nic::kStatusRxReady) != 0) {
      kernel_.cpu().Execute(RxRegion());
      const uint32_t len = kernel_.IoRead(nic_, hw::Nic::kRegRxLen);
      std::vector<uint8_t> frame(len);
      kernel_.machine().mem().Read(rx_buffer_, frame.data(), len);
      kernel_.ChargeCopy(rx_buffer_, kernel_.current()->msg_window(), len);
      rx_queue_.push_back(std::move(frame));
      ++frames_rx_;
      kernel_.IoWrite(nic_, hw::Nic::kRegCommand, hw::Nic::kCmdRxAck);
      // Complete a queued receive directly from the interrupt thread
      // (deferred RPC reply).
      while (!pending_recvs_.empty() && !rx_queue_.empty()) {
        const uint64_t token = pending_recvs_.front();
        pending_recvs_.pop_front();
        std::vector<uint8_t> out = std::move(rx_queue_.front());
        rx_queue_.pop_front();
        NicReply reply;
        reply.len = static_cast<uint32_t>(out.size());
        (void)kernel_.RpcReply(token, &reply, sizeof(reply), out.data(), reply.len);
      }
    }
  }
}

void NicDriver::Serve(mk::Env& env) {
  NicRequest req;
  std::vector<uint8_t> data(hw::Nic::kMaxFrame);
  while (true) {
    mk::RpcRef ref;
    ref.recv_buf = data.data();
    ref.recv_cap = static_cast<uint32_t>(data.size());
    auto r = env.RpcReceive(service_port_, &req, sizeof(req), &ref);
    if (!r.ok()) {
      return;
    }
    mk::trace::Tracer& tracer = kernel_.tracer();
    mk::trace::ScopedSpan op_span(tracer, mk::trace::SpanKind::kServerOp,
                                  mk::trace::EventType::kServerDispatch,
                                  mk::trace::EventType::kServerDone,
                                  static_cast<uint64_t>(req.op));
    op_span.set_end_payload(static_cast<uint64_t>(req.op));
    tracer.LabelSpan(op_span.id(), "nic");
    ++tracer.metrics().Counter("server.nic.ops");
    NicReply reply;
    if (req.op == NicOp::kSend) {
      if (ref.recv_len == 0 || ref.recv_len > hw::Nic::kMaxFrame) {
        reply.status = static_cast<int32_t>(base::Status::kInvalidArgument);
        env.RpcReply(r->token, &reply, sizeof(reply));
      } else {
        kernel_.cpu().Execute(TxRegion());
        kernel_.machine().mem().Write(tx_buffer_, data.data(), ref.recv_len);
        kernel_.ChargeCopy(kernel_.current()->msg_window(), tx_buffer_, ref.recv_len);
        kernel_.IoWrite(nic_, hw::Nic::kRegTxAddr, static_cast<uint32_t>(tx_buffer_));
        kernel_.IoWrite(nic_, hw::Nic::kRegTxLen, ref.recv_len);
        kernel_.IoWrite(nic_, hw::Nic::kRegCommand, hw::Nic::kCmdSend);
        ++frames_tx_;
        env.RpcReply(r->token, &reply, sizeof(reply));
      }
    } else if (req.op == NicOp::kRecv) {
      if (!rx_queue_.empty()) {
        std::vector<uint8_t> frame = std::move(rx_queue_.front());
        rx_queue_.pop_front();
        reply.len = static_cast<uint32_t>(frame.size());
        env.RpcReply(r->token, &reply, sizeof(reply), frame.data(), reply.len);
      } else {
        // No frame yet: defer; the ISR thread replies when one arrives, and
        // the serve loop stays available for sends.
        pending_recvs_.push_back(r->token);
      }
    } else {
      reply.status = static_cast<int32_t>(base::Status::kNotSupported);
      env.RpcReply(r->token, &reply, sizeof(reply));
    }
  
    if (!running_) {
      // Server shutdown: kill the service port so queued and future
      // callers fail with kPortDead instead of blocking forever.
      (void)kernel_.PortDestroy(*task_, service_port_);
      return;
    }
  }
}

base::Status NicClient::Send(mk::Env& env, const void* frame, uint32_t len) {
  NicRequest req{NicOp::kSend, len};
  NicReply reply;
  mk::RpcRef ref;
  ref.send_data = frame;
  ref.send_len = len;
  const base::Status st = stub_.Call(env, req, &reply, &ref);
  return st != base::Status::kOk ? st : static_cast<base::Status>(reply.status);
}

base::Result<uint32_t> NicClient::Receive(mk::Env& env, void* buffer, uint32_t cap) {
  NicRequest req{NicOp::kRecv, 0};
  NicReply reply;
  mk::RpcRef ref;
  ref.recv_buf = buffer;
  ref.recv_cap = cap;
  const base::Status st = stub_.Call(env, req, &reply, &ref);
  if (st != base::Status::kOk) {
    return st;
  }
  if (reply.status != 0) {
    return static_cast<base::Status>(reply.status);
  }
  return reply.len;
}

}  // namespace drv
