// UNIX personality (the AIX-compatible multi-server implementation the
// project planned): POSIX-flavoured processes and file descriptors built
// entirely from personality-neutral pieces — fork is the microkernel's
// COW address-space copy, the file table fronts the shared file server,
// pipes are port-based.
#ifndef SRC_PERS_UNIXP_UNIX_H_
#define SRC_PERS_UNIXP_UNIX_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/mk/kernel.h"
#include "src/svc/fs/file_server.h"

namespace pers {

enum UnixOpenFlags : uint32_t {
  kORdOnly = 0,
  kOWrOnly = 1u << 0,
  kORdWr = 1u << 1,
  kOCreat = 1u << 2,
  kOTrunc = 1u << 3,
  kOAppend = 1u << 4,
  kOExcl = 1u << 5,
};

// readv/writev scatter-gather element (struct iovec).
struct UnixIoVec {
  void* base = nullptr;
  uint32_t len = 0;
};

// The errno subset this personality can produce (POSIX values).
enum UnixErrno : int {
  kEOk = 0,
  kENOENT = 2,
  kEIO = 5,
  kEBADF = 9,
  kEAGAIN = 11,
  kEACCES = 13,
  kEBUSY = 16,
  kEEXIST = 17,
  kEINVAL = 22,
  kENOSPC = 28,
  kETIMEDOUT = 110,
};

// Maps a service status to errno. The graceful-degradation statuses —
// kBusy (admission-control shed), kUnavailable (breaker fast-fail or a
// degraded server) and kTimedOut (bounded call deadline expired) — all
// surface as EAGAIN: the POSIX contract for "back off and retry", instead
// of a hang inside the C library.
int UnixErrnoOf(base::Status st);

class UnixPersonality;

class UnixProcess {
 public:
  mk::Task* task() { return task_; }
  uint32_t pid() const { return pid_; }
  int32_t exit_code() const { return exit_code_; }
  bool exited() const { return exited_; }

  // --- POSIX-ish API -----------------------------------------------------------
  base::Result<int> Open(mk::Env& env, const std::string& path, uint32_t flags);
  base::Result<uint32_t> Read(mk::Env& env, int fd, void* buf, uint32_t len);
  base::Result<uint32_t> Write(mk::Env& env, int fd, const void* buf, uint32_t len);
  // readv/writev: one file-server RPC moves every iovec (consecutive file
  // positions starting at the fd's offset). Pipes are not supported.
  base::Result<uint32_t> Readv(mk::Env& env, int fd, const UnixIoVec* iov, uint32_t iovcnt);
  base::Result<uint32_t> Writev(mk::Env& env, int fd, const UnixIoVec* iov, uint32_t iovcnt);
  base::Result<uint64_t> Lseek(mk::Env& env, int fd, int64_t offset, int whence);
  // mmap family. Mmap maps the open file from offset 0 at a kernel-chosen
  // address (the server must have FileServer::EnableMapping). `shared` maps
  // the server-exported memory object directly (MAP_SHARED: stores are seen
  // by every mapper and reach the file via Msync); otherwise a private COW
  // shadow is mapped (MAP_PRIVATE: stores stay process-local, fork gives the
  // child its own copy-on-write view). Mapped stores become visible to
  // read() only after Msync, which writes dirty pages through the file
  // session clipped to the current file size — mmap never extends a file.
  base::Result<hw::VirtAddr> Mmap(mk::Env& env, int fd, uint64_t len, bool shared);
  base::Status Munmap(mk::Env& env, hw::VirtAddr addr);
  base::Status Msync(mk::Env& env, hw::VirtAddr addr, uint64_t len);
  base::Status Close(mk::Env& env, int fd);
  base::Status Unlink(mk::Env& env, const std::string& path);
  base::Status Mkdir(mk::Env& env, const std::string& path);
  base::Result<std::pair<int, int>> Pipe(mk::Env& env);  // {read_fd, write_fd}

  // fork: COW-copies the address space and the descriptor table, then runs
  // `child_main` as the child's initial thread. Returns the child.
  base::Result<UnixProcess*> Fork(mk::Env& env, mk::ThreadBody child_main);
  // waitpid: blocks until the child's main thread exits; returns exit code.
  base::Result<int32_t> WaitPid(mk::Env& env, UnixProcess* child);
  void Exit(mk::Env& env, int32_t code);

 private:
  friend class UnixPersonality;
  UnixProcess(UnixPersonality* pers, mk::Task* task, uint32_t pid);

  struct FileDesc {
    enum class Kind : uint8_t { kFile, kPipeRead, kPipeWrite } kind = Kind::kFile;
    uint64_t handle = 0;       // file-server handle
    uint64_t offset = 0;       // implicit POSIX file offset
    uint32_t flags = 0;
    mk::PortName pipe = mk::kNullPort;  // pipe port right
    // Tail of a pipe message a short read could not consume: POSIX pipes
    // are byte streams, so these bytes come back on the next read instead
    // of vanishing with the message.
    std::vector<uint8_t> pipe_rest;
  };

  // One live mmap region. `object` is the managed (server-exported) memory
  // object even for private mappings, whose vm entry holds a shadow over it.
  struct Mapping {
    hw::VirtAddr addr = 0;
    uint64_t len = 0;      // page-rounded mapping length
    uint64_t handle = 0;   // file-server handle the mapping was made from
    uint64_t object_id = 0;
    std::shared_ptr<mk::VmObject> object;
    bool shared = false;
  };

  UnixPersonality* pers_;
  mk::Task* task_;
  uint32_t pid_;
  std::unique_ptr<svc::FsClient> fs_;
  std::map<int, FileDesc> fds_;
  std::vector<Mapping> mappings_;
  int next_fd_ = 3;  // 0-2 reserved, as tradition demands
  mk::Thread* main_thread_ = nullptr;
  int32_t exit_code_ = 0;
  bool exited_ = false;
};

class UnixPersonality {
 public:
  UnixPersonality(mk::Kernel& kernel, svc::FileServer& fs) : kernel_(kernel), fs_(fs) {}

  // Bounds every subsequent file-server RPC, for live processes and ones
  // spawned later (kForever = unbounded, the default; in-flight calls keep
  // their old deadline). With a bound, a wedged file server surfaces to the
  // process as EAGAIN — via UnixErrnoOf(kTimedOut) — while the watchdog
  // restarts it, instead of hanging the process inside libc.
  void set_io_timeout_ns(uint64_t ns) {
    io_timeout_ns_ = ns;
    for (auto& proc : processes_) {
      proc->fs_->set_call_timeout_ns(ns);
    }
  }

  // Turns on client-side FS caching (svc::FsCache) for live processes and
  // ones spawned later. Default-off: without it every file operation is a
  // straight RPC to the file server.
  void EnableFsCache(const svc::FsCacheOptions& opts = svc::FsCacheOptions()) {
    fs_cache_on_ = true;
    fs_cache_opts_ = opts;
    for (auto& proc : processes_) {
      proc->fs_->EnableCache(opts);
    }
  }

  // Creates the initial process; its main thread runs `main`.
  UnixProcess* Spawn(const std::string& name, mk::ThreadBody main);

  size_t process_count() const { return processes_.size(); }

 private:
  friend class UnixProcess;
  UnixProcess* AdoptTask(mk::Task* task);

  mk::Kernel& kernel_;
  svc::FileServer& fs_;
  std::vector<std::unique_ptr<UnixProcess>> processes_;
  // Live mmap regions across all processes. Non-zero turns on write-through
  // coherence: a cached fd write is flushed to the server so its mapped-page
  // invalidation runs while mappings exist. Zero (no mmap in use) keeps the
  // existing write-behind behaviour bit-for-bit.
  uint64_t live_mappings_ = 0;
  uint32_t next_pid_ = 1;
  uint64_t io_timeout_ns_ = mk::kForever;
  bool fs_cache_on_ = false;
  svc::FsCacheOptions fs_cache_opts_;
};

}  // namespace pers

#endif  // SRC_PERS_UNIXP_UNIX_H_
