#include "src/pers/unixp/unix.h"

#include <algorithm>
#include <cstring>

#include "src/base/log.h"
#include "src/mk/trace/tracer.h"

namespace pers {

namespace {
const hw::CodeRegion& LibcRegion() {
  // The POSIX-ish libc stub layer over the personality-neutral services.
  static const hw::CodeRegion r = hw::DefineCode("unix.lib.libc_stub", 80);
  return r;
}
const hw::CodeRegion& ForkRegion() {
  static const hw::CodeRegion r = hw::DefineCode("unix.proc.fork", 420);
  return r;
}
}  // namespace

int UnixErrnoOf(base::Status st) {
  switch (st) {
    case base::Status::kOk:
      return kEOk;
    case base::Status::kNotFound:
      return kENOENT;
    case base::Status::kBusy:          // admission-control shed
    case base::Status::kUnavailable:   // breaker fast-fail / degraded server
    case base::Status::kTimedOut:      // bounded-call deadline expired
    case base::Status::kQueueFull:     // legacy IPC queue limit
    case base::Status::kWouldBlock:
      return kEAGAIN;
    case base::Status::kPermissionDenied:
      return kEACCES;
    case base::Status::kAlreadyExists:
      return kEEXIST;
    case base::Status::kNoSpace:
      return kENOSPC;
    case base::Status::kInvalidArgument:
    case base::Status::kNotSupported:
      return kEINVAL;
    default:
      return kEIO;
  }
}

UnixProcess::UnixProcess(UnixPersonality* pers, mk::Task* task, uint32_t pid)
    : pers_(pers), task_(task), pid_(pid) {
  fs_ = std::make_unique<svc::FsClient>(pers->fs_.GrantTo(*task), pers->io_timeout_ns_);
  if (pers->fs_cache_on_) {
    fs_->EnableCache(pers->fs_cache_opts_);
  }
}

UnixProcess* UnixPersonality::Spawn(const std::string& name, mk::ThreadBody main) {
  mk::Task* task = kernel_.CreateTask("unix." + name, 4096);
  processes_.push_back(
      std::unique_ptr<UnixProcess>(new UnixProcess(this, task, next_pid_++)));
  UnixProcess* proc = processes_.back().get();
  proc->main_thread_ = kernel_.CreateThread(task, name, std::move(main));
  return proc;
}

UnixProcess* UnixPersonality::AdoptTask(mk::Task* task) {
  processes_.push_back(
      std::unique_ptr<UnixProcess>(new UnixProcess(this, task, next_pid_++)));
  return processes_.back().get();
}

base::Result<int> UnixProcess::Open(mk::Env& env, const std::string& path, uint32_t flags) {
  // API root span: everything the call does — the personality's own work and
  // each RPC hop below it — hangs off this span in the causal request tree.
  mk::trace::ScopedSpan api(pers_->kernel_.tracer(), mk::trace::SpanKind::kApi,
                            mk::trace::EventType::kApiCall, mk::trace::EventType::kApiReturn,
                            flags);
  pers_->kernel_.tracer().LabelSpan(api.id(), "unix.open");
  pers_->kernel_.cpu().Execute(LibcRegion());
  uint32_t fs_flags = 0;
  if ((flags & kOCreat) != 0) {
    fs_flags |= svc::kFsCreate;
  }
  if ((flags & kOExcl) != 0) {
    fs_flags |= svc::kFsExclusive;
  }
  if ((flags & kOTrunc) != 0) {
    fs_flags |= svc::kFsTruncate;
  }
  if ((flags & kOAppend) != 0) {
    fs_flags |= svc::kFsAppend;
  }
  if ((flags & (kOWrOnly | kORdWr)) != 0) {
    fs_flags |= svc::kFsWrite;
  }
  auto handle = fs_->Open(env, path, fs_flags);
  if (!handle.ok()) {
    return handle.status();
  }
  const int fd = next_fd_++;
  fds_.emplace(fd, FileDesc{FileDesc::Kind::kFile, *handle, 0, flags, mk::kNullPort});
  return fd;
}

base::Result<uint32_t> UnixProcess::Read(mk::Env& env, int fd, void* buf, uint32_t len) {
  mk::trace::ScopedSpan api(pers_->kernel_.tracer(), mk::trace::SpanKind::kApi,
                            mk::trace::EventType::kApiCall, mk::trace::EventType::kApiReturn,
                            static_cast<uint64_t>(fd));
  pers_->kernel_.tracer().LabelSpan(api.id(), "unix.read");
  pers_->kernel_.cpu().Execute(LibcRegion());
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return base::Status::kInvalidArgument;
  }
  FileDesc& desc = it->second;
  if (desc.kind == FileDesc::Kind::kPipeRead) {
    // Bytes a previous short read left behind come first — before the next
    // message, and without touching the port.
    if (!desc.pipe_rest.empty()) {
      const uint32_t n = static_cast<uint32_t>(std::min<size_t>(len, desc.pipe_rest.size()));
      std::memcpy(buf, desc.pipe_rest.data(), n);
      desc.pipe_rest.erase(desc.pipe_rest.begin(), desc.pipe_rest.begin() + n);
      return n;
    }
    mk::MachMessage msg;
    const base::Status st = pers_->kernel_.MachMsgReceive(desc.pipe, &msg);
    if (st != base::Status::kOk) {
      return st == base::Status::kPortDead ? base::Result<uint32_t>(0u)
                                           : base::Result<uint32_t>(st);
    }
    const uint32_t n = static_cast<uint32_t>(std::min<size_t>(len, msg.inline_data.size()));
    std::memcpy(buf, msg.inline_data.data(), n);
    if (n < msg.inline_data.size()) {
      // Pipes are byte streams: a read shorter than the message must keep
      // the tail for the next read, not discard it with the message.
      desc.pipe_rest.assign(msg.inline_data.begin() + n, msg.inline_data.end());
    }
    return n;
  }
  auto got = fs_->Read(env, desc.handle, desc.offset, buf, len);
  if (!got.ok()) {
    return got;
  }
  desc.offset += *got;  // the implicit POSIX offset
  return got;
}

base::Result<uint32_t> UnixProcess::Write(mk::Env& env, int fd, const void* buf, uint32_t len) {
  mk::trace::ScopedSpan api(pers_->kernel_.tracer(), mk::trace::SpanKind::kApi,
                            mk::trace::EventType::kApiCall, mk::trace::EventType::kApiReturn,
                            static_cast<uint64_t>(fd));
  pers_->kernel_.tracer().LabelSpan(api.id(), "unix.write");
  pers_->kernel_.cpu().Execute(LibcRegion());
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return base::Status::kInvalidArgument;
  }
  FileDesc& desc = it->second;
  if (desc.kind == FileDesc::Kind::kPipeWrite) {
    mk::MachMessage msg;
    msg.dest = desc.pipe;
    msg.inline_data.assign(static_cast<const uint8_t*>(buf),
                           static_cast<const uint8_t*>(buf) + len);
    const base::Status st = pers_->kernel_.MachMsgSend(std::move(msg));
    if (st != base::Status::kOk) {
      return st;
    }
    return len;
  }
  if ((desc.flags & kOAppend) != 0) {
    // O_APPEND: the write lands at the *current* end of file. The per-fd
    // offset can be stale — another descriptor (or a forked twin) may have
    // grown the file since this fd last wrote.
    auto attr = fs_->Stat(env, desc.handle);
    if (!attr.ok()) {
      return attr.status();
    }
    desc.offset = attr->size;
  }
  auto wrote = fs_->Write(env, desc.handle, desc.offset, buf, len);
  if (!wrote.ok()) {
    return wrote;
  }
  if (pers_->live_mappings_ != 0) {
    // Mapped views refault from the server, so a cached write must reach it
    // (and trigger its mapped-page invalidation) now, not at flush time.
    const base::Status fl = fs_->Flush(env, desc.handle);
    if (fl != base::Status::kOk) {
      return fl;
    }
  }
  desc.offset += *wrote;
  return wrote;
}

base::Result<uint32_t> UnixProcess::Readv(mk::Env& env, int fd, const UnixIoVec* iov,
                                          uint32_t iovcnt) {
  mk::trace::ScopedSpan api(pers_->kernel_.tracer(), mk::trace::SpanKind::kApi,
                            mk::trace::EventType::kApiCall, mk::trace::EventType::kApiReturn,
                            static_cast<uint64_t>(fd));
  pers_->kernel_.tracer().LabelSpan(api.id(), "unix.readv");
  pers_->kernel_.cpu().Execute(LibcRegion());
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return base::Status::kInvalidArgument;
  }
  FileDesc& desc = it->second;
  if (desc.kind != FileDesc::Kind::kFile) {
    return base::Status::kNotSupported;  // pipes have no scatter path
  }
  if (iovcnt == 0 || iovcnt > svc::kFsMaxExtents) {
    return base::Status::kInvalidArgument;
  }
  // iovecs map to consecutive file extents from the implicit offset.
  svc::FsReadExtent extents[svc::kFsMaxExtents];
  uint64_t pos = desc.offset;
  for (uint32_t i = 0; i < iovcnt; ++i) {
    extents[i] = svc::FsReadExtent{pos, iov[i].base, iov[i].len};
    pos += iov[i].len;
  }
  auto got = fs_->ReadV(env, desc.handle, extents, iovcnt);
  if (!got.ok()) {
    return got;
  }
  desc.offset += *got;
  return got;
}

base::Result<uint32_t> UnixProcess::Writev(mk::Env& env, int fd, const UnixIoVec* iov,
                                           uint32_t iovcnt) {
  mk::trace::ScopedSpan api(pers_->kernel_.tracer(), mk::trace::SpanKind::kApi,
                            mk::trace::EventType::kApiCall, mk::trace::EventType::kApiReturn,
                            static_cast<uint64_t>(fd));
  pers_->kernel_.tracer().LabelSpan(api.id(), "unix.writev");
  pers_->kernel_.cpu().Execute(LibcRegion());
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return base::Status::kInvalidArgument;
  }
  FileDesc& desc = it->second;
  if (desc.kind != FileDesc::Kind::kFile) {
    return base::Status::kNotSupported;
  }
  if (iovcnt == 0 || iovcnt > svc::kFsMaxExtents) {
    return base::Status::kInvalidArgument;
  }
  if ((desc.flags & kOAppend) != 0) {
    // Same O_APPEND repositioning as Write. The server's gather-write path
    // honours explicit extent offsets only, so the client must aim at EOF.
    auto attr = fs_->Stat(env, desc.handle);
    if (!attr.ok()) {
      return attr.status();
    }
    desc.offset = attr->size;
  }
  svc::FsWriteExtent extents[svc::kFsMaxExtents];
  uint64_t pos = desc.offset;
  for (uint32_t i = 0; i < iovcnt; ++i) {
    extents[i] = svc::FsWriteExtent{pos, iov[i].base, iov[i].len};
    pos += iov[i].len;
  }
  auto wrote = fs_->WriteV(env, desc.handle, extents, iovcnt);
  if (!wrote.ok()) {
    return wrote;
  }
  desc.offset += *wrote;
  return wrote;
}

base::Result<uint64_t> UnixProcess::Lseek(mk::Env& env, int fd, int64_t offset, int whence) {
  pers_->kernel_.cpu().Execute(LibcRegion());
  auto it = fds_.find(fd);
  if (it == fds_.end() || it->second.kind != FileDesc::Kind::kFile) {
    return base::Status::kInvalidArgument;
  }
  FileDesc& desc = it->second;
  int64_t base_pos = 0;
  switch (whence) {
    case 0:  // SEEK_SET
      break;
    case 1:  // SEEK_CUR
      base_pos = static_cast<int64_t>(desc.offset);
      break;
    case 2: {  // SEEK_END — size via the handle-based stat (no path walk)
      auto attr = fs_->Stat(env, desc.handle);
      if (!attr.ok()) {
        return attr.status();
      }
      base_pos = static_cast<int64_t>(attr->size);
      break;
    }
    default:
      return base::Status::kInvalidArgument;
  }
  if (base_pos + offset < 0) {
    return base::Status::kInvalidArgument;
  }
  desc.offset = static_cast<uint64_t>(base_pos + offset);
  return desc.offset;
}

base::Result<hw::VirtAddr> UnixProcess::Mmap(mk::Env& env, int fd, uint64_t len, bool shared) {
  mk::trace::ScopedSpan api(pers_->kernel_.tracer(), mk::trace::SpanKind::kApi,
                            mk::trace::EventType::kApiCall, mk::trace::EventType::kApiReturn,
                            static_cast<uint64_t>(fd));
  pers_->kernel_.tracer().LabelSpan(api.id(), "unix.mmap");
  pers_->kernel_.cpu().Execute(LibcRegion());
  if (len == 0) {
    return base::Status::kInvalidArgument;
  }
  auto it = fds_.find(fd);
  if (it == fds_.end() || it->second.kind != FileDesc::Kind::kFile) {
    return base::Status::kInvalidArgument;
  }
  auto mapping = fs_->MapObject(env, it->second.handle, len);
  if (!mapping.ok()) {
    return mapping.status();
  }
  auto object = pers_->kernel_.LookupPagedObject(mapping->object_id);
  if (object == nullptr) {
    return base::Status::kInternal;
  }
  const uint64_t map_len = std::min(hw::PageRound(len), object->size());
  base::Result<hw::VirtAddr> addr = base::Status::kInternal;
  if (shared) {
    addr = pers_->kernel_.VmMapObject(*task_, object, 0, map_len, mk::Prot::kReadWrite,
                                      /*anywhere=*/true, 0, mk::Inherit::kShare);
  } else {
    // MAP_PRIVATE: an anonymous shadow over the managed object. Stores COW
    // into the shadow and never reach the file object, so msync correctly
    // writes back only shared-mapping dirt.
    auto shadow = std::make_shared<mk::VmObject>(object->size());
    shadow->SetShadow(object);
    addr = pers_->kernel_.VmMapObject(*task_, std::move(shadow), 0, map_len,
                                      mk::Prot::kReadWrite, /*anywhere=*/true, 0,
                                      mk::Inherit::kCopy);
  }
  if (!addr.ok()) {
    (void)fs_->UnmapObject(env, mapping->object_id);
    return addr.status();
  }
  mappings_.push_back(
      Mapping{*addr, map_len, it->second.handle, mapping->object_id, std::move(object), shared});
  ++pers_->live_mappings_;
  return addr;
}

base::Status UnixProcess::Munmap(mk::Env& env, hw::VirtAddr addr) {
  mk::trace::ScopedSpan api(pers_->kernel_.tracer(), mk::trace::SpanKind::kApi,
                            mk::trace::EventType::kApiCall, mk::trace::EventType::kApiReturn,
                            addr);
  pers_->kernel_.tracer().LabelSpan(api.id(), "unix.munmap");
  pers_->kernel_.cpu().Execute(LibcRegion());
  auto it = std::find_if(mappings_.begin(), mappings_.end(),
                         [&](const Mapping& m) { return m.addr == addr; });
  if (it == mappings_.end()) {
    return base::Status::kInvalidArgument;
  }
  const base::Status st = pers_->kernel_.VmDeallocate(*task_, it->addr, it->len);
  auto remaining = fs_->UnmapObject(env, it->object_id);
  if (remaining.ok() && *remaining == 0) {
    // Last mapping anywhere: terminate the object. Dirty pages that were
    // never msync'd are discarded, as POSIX promises for munmap.
    (void)pers_->kernel_.ReleasePagedObject(it->object_id);
  }
  mappings_.erase(it);
  if (pers_->live_mappings_ > 0) {
    --pers_->live_mappings_;
  }
  return st;
}

base::Status UnixProcess::Msync(mk::Env& env, hw::VirtAddr addr, uint64_t len) {
  mk::trace::ScopedSpan api(pers_->kernel_.tracer(), mk::trace::SpanKind::kApi,
                            mk::trace::EventType::kApiCall, mk::trace::EventType::kApiReturn,
                            addr);
  pers_->kernel_.tracer().LabelSpan(api.id(), "unix.msync");
  pers_->kernel_.cpu().Execute(LibcRegion());
  auto it = std::find_if(mappings_.begin(), mappings_.end(), [&](const Mapping& m) {
    return addr >= m.addr && addr < m.addr + m.len;
  });
  if (it == mappings_.end()) {
    return base::Status::kInvalidArgument;
  }
  if (!it->shared) {
    return base::Status::kOk;  // private dirt never reaches the file
  }
  const uint64_t start = addr - it->addr;
  if (len == 0 || len > it->len - start) {
    len = it->len - start;
  }
  const uint64_t first = start >> hw::kPageShift;
  const uint64_t count = ((start + len - 1) >> hw::kPageShift) - first + 1;
  auto attr = fs_->Stat(env, it->handle);
  if (!attr.ok()) {
    return attr.status();
  }
  // Dirty pages go back through the file session — not the raw pager port —
  // so a crashed server's restart replays them via the same robust write
  // path every other file write takes.
  std::vector<uint8_t> page(hw::kPageSize);
  for (uint64_t index : it->object->DirtyPages(first, count)) {
    const uint64_t offset = index << hw::kPageShift;
    if (offset >= attr->size) {
      continue;  // a mapped store wholly past EOF is not durable
    }
    const base::Status cp =
        pers_->kernel_.CopyIn(*task_, it->addr + offset, page.data(), hw::kPageSize);
    if (cp != base::Status::kOk) {
      return cp;
    }
    const uint32_t n =
        static_cast<uint32_t>(std::min<uint64_t>(hw::kPageSize, attr->size - offset));
    auto wrote = fs_->Write(env, it->handle, offset, page.data(), n);
    if (!wrote.ok()) {
      return wrote.status();
    }
  }
  // Publish before re-protecting: once pages are clean the server is the
  // source of truth for them, so buffered write-behind must not lag behind
  // a future invalidate-and-refault.
  const base::Status fl = fs_->Flush(env, it->handle);
  if (fl != base::Status::kOk) {
    return fl;
  }
  pers_->kernel_.VmObjectMarkClean(it->object.get(), first, count);
  return base::Status::kOk;
}

base::Status UnixProcess::Close(mk::Env& env, int fd) {
  mk::trace::ScopedSpan api(pers_->kernel_.tracer(), mk::trace::SpanKind::kApi,
                            mk::trace::EventType::kApiCall, mk::trace::EventType::kApiReturn,
                            static_cast<uint64_t>(fd));
  pers_->kernel_.tracer().LabelSpan(api.id(), "unix.close");
  pers_->kernel_.cpu().Execute(LibcRegion());
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return base::Status::kInvalidArgument;
  }
  base::Status st = base::Status::kOk;
  if (it->second.kind == FileDesc::Kind::kFile) {
    st = fs_->Close(env, it->second.handle);
  } else if (it->second.kind == FileDesc::Kind::kPipeWrite) {
    // Closing the write end kills the port: readers see EOF (kPortDead).
    st = pers_->kernel_.PortDestroy(*task_, it->second.pipe);
    if (st == base::Status::kInvalidRight) {
      // A forked child's write end is a send right, not the receive right:
      // dropping it must not tear the pipe out from under the parent.
      st = task_->port_space().Release(it->second.pipe);
    }
  }
  fds_.erase(it);
  return st;
}

base::Status UnixProcess::Unlink(mk::Env& env, const std::string& path) {
  pers_->kernel_.cpu().Execute(LibcRegion());
  return fs_->Unlink(env, path);
}

base::Status UnixProcess::Mkdir(mk::Env& env, const std::string& path) {
  pers_->kernel_.cpu().Execute(LibcRegion());
  return fs_->Mkdir(env, path);
}

base::Result<std::pair<int, int>> UnixProcess::Pipe(mk::Env& env) {
  pers_->kernel_.cpu().Execute(LibcRegion());
  auto port = pers_->kernel_.PortAllocate(*task_);
  if (!port.ok()) {
    return port.status();
  }
  const int rfd = next_fd_++;
  const int wfd = next_fd_++;
  fds_.emplace(rfd, FileDesc{FileDesc::Kind::kPipeRead, 0, 0, 0, *port});
  fds_.emplace(wfd, FileDesc{FileDesc::Kind::kPipeWrite, 0, 0, 0, *port});
  return std::make_pair(rfd, wfd);
}

base::Result<UnixProcess*> UnixProcess::Fork(mk::Env& env, mk::ThreadBody child_main) {
  mk::Kernel& kernel = pers_->kernel_;
  kernel.cpu().Execute(ForkRegion());
  mk::Task* child_task = kernel.TaskForkVm(*task_, task_->name() + ".child");
  UnixProcess* child = pers_->AdoptTask(child_task);
  // POSIX: descriptors are inherited. File offsets are duplicated (a
  // simplification of shared open-file descriptions, recorded in DESIGN.md).
  child->fds_ = fds_;
  child->next_fd_ = next_fd_;
  // Port rights do not travel with the address-space copy — the fd table is
  // personality state but the port space is kernel state. Grant each
  // inherited pipe end into the child's space and rewrite the child's names;
  // without this the child's first pipe read/write fails on a name the
  // kernel never issued to its task.
  for (auto& [fd, desc] : child->fds_) {
    if (desc.kind == FileDesc::Kind::kPipeRead) {
      auto right = kernel.MakeReceiveRight(*task_, desc.pipe, *child_task);
      if (!right.ok()) {
        return right.status();
      }
      desc.pipe = *right;
    } else if (desc.kind == FileDesc::Kind::kPipeWrite) {
      auto right = kernel.MakeSendRight(*task_, desc.pipe, *child_task);
      if (!right.ok()) {
        return right.status();
      }
      desc.pipe = *right;
    }
  }
  // Mappings are inherited: TaskForkVm already duplicated the vm entries
  // (shared regions stay shared, private ones grow fork shadows), so only
  // the personality records and the server's map counts need to follow.
  child->mappings_ = mappings_;
  for (const Mapping& m : child->mappings_) {
    (void)fs_->MapObject(env, m.handle, m.len);  // same node → same object id
    ++pers_->live_mappings_;
  }
  child->main_thread_ = kernel.CreateThread(child_task, "forked-main", std::move(child_main));
  return child;
}

base::Result<int32_t> UnixProcess::WaitPid(mk::Env& env, UnixProcess* child) {
  pers_->kernel_.cpu().Execute(LibcRegion());
  if (child->main_thread_ == nullptr) {
    return base::Status::kInvalidArgument;
  }
  const base::Status st = pers_->kernel_.ThreadJoin(child->main_thread_);
  if (st != base::Status::kOk) {
    return st;
  }
  // Reap the dead child's mappings: its address space is gone, so its
  // mapping references must not keep the memory object alive — otherwise
  // "the last munmap discards un-synced dirty pages" would never trigger
  // for files a forked child once mapped. The release RPC rides the
  // PARENT's session (UnmapObject is keyed by object id, not handle), since
  // the child's port rights die with its task.
  for (const Mapping& m : child->mappings_) {
    (void)pers_->kernel_.VmDeallocate(*child->task_, m.addr, m.len);
    auto remaining = fs_->UnmapObject(env, m.object_id);
    if (remaining.ok() && *remaining == 0) {
      (void)pers_->kernel_.ReleasePagedObject(m.object_id);
    }
    if (pers_->live_mappings_ > 0) {
      --pers_->live_mappings_;
    }
  }
  child->mappings_.clear();
  return child->exit_code_;
}

void UnixProcess::Exit(mk::Env& env, int32_t code) {
  pers_->kernel_.cpu().Execute(LibcRegion());
  exit_code_ = code;
  exited_ = true;
}

}  // namespace pers
