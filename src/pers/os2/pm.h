// Presentation-Manager-style window system, WPOS configuration: "the
// Presentation Manager [and] the desktop were user-space programs implemented
// as shared libraries ... converted to 32-bit C code". Drawing writes the
// mapped framebuffer aperture directly; window messages travel through a
// coerced shared-memory region with memory-synchronizer wakeups — all at user
// level, no server round trips. This is exactly why the paper's graphics
// workloads broke even on the microkernel system.
#ifndef SRC_PERS_OS2_PM_H_
#define SRC_PERS_OS2_PM_H_

#include <deque>
#include <map>
#include <memory>
#include <string>

#include "src/drv/fb_driver.h"
#include "src/mk/kernel.h"

namespace pers {

using Hwnd = uint32_t;

struct PmMsg {
  Hwnd hwnd = 0;
  uint32_t msg = 0;
  uint32_t param1 = 0;
  uint32_t param2 = 0;
};

class PmDesktop;

// Per-process view of the desktop (the PM shared library instance loaded
// into the process).
class PmSession {
 public:
  base::Result<Hwnd> CreateWindow(mk::Env& env, const std::string& title, uint32_t x, uint32_t y,
                                  uint32_t w, uint32_t h);
  base::Status DestroyWindow(mk::Env& env, Hwnd hwnd);
  // Posts to any window on the desktop, including other processes'.
  base::Status PostMsg(mk::Env& env, Hwnd hwnd, uint32_t msg, uint32_t p1, uint32_t p2);
  // Blocks (memory synchronizer) until a message for `hwnd` arrives.
  base::Result<PmMsg> GetMsg(mk::Env& env, Hwnd hwnd);
  base::Result<PmMsg> PeekMsg(mk::Env& env, Hwnd hwnd);  // non-blocking

  // Drawing: direct stores into the mapped aperture.
  base::Status FillRect(mk::Env& env, Hwnd hwnd, uint32_t x, uint32_t y, uint32_t w, uint32_t h,
                        uint8_t color);
  base::Status DrawText(mk::Env& env, Hwnd hwnd, uint32_t x, uint32_t y,
                        const std::string& text);
  base::Status BitBlt(mk::Env& env, Hwnd hwnd, uint32_t x, uint32_t y, uint32_t w, uint32_t h);

  // Bring a window to the front (window switching, the PM Tasking workload).
  base::Status SwitchTo(mk::Env& env, Hwnd hwnd);

  uint64_t draw_calls() const { return draw_calls_; }

 private:
  friend class PmDesktop;
  PmSession(PmDesktop* desktop, mk::Task* task, hw::VirtAddr vram_base)
      : desktop_(desktop), task_(task), vram_base_(vram_base) {}

  PmDesktop* desktop_;
  mk::Task* task_;
  hw::VirtAddr vram_base_;  // aperture address in this task
  uint64_t draw_calls_ = 0;
};

class PmDesktop {
 public:
  PmDesktop(mk::Kernel& kernel, drv::FbDriver* fb);

  // Loads the PM library into `task`: maps the aperture and the shared
  // message region (coerced, so it sits at the same address everywhere).
  base::Result<std::unique_ptr<PmSession>> Attach(mk::Task& task);

  uint32_t width() const { return fb_->width(); }
  uint32_t height() const { return fb_->height(); }
  size_t window_count() const { return windows_.size(); }
  uint64_t messages_posted() const { return messages_posted_; }
  uint64_t window_switches() const { return window_switches_; }

 private:
  friend class PmSession;

  struct Window {
    std::string title;
    mk::Task* owner = nullptr;
    uint32_t x = 0, y = 0, w = 0, h = 0;
    uint32_t z = 0;  // larger = closer to the front
    std::deque<PmMsg> queue;
    hw::VirtAddr wait_word = 0;  // in the coerced region; GetMsg parks here
  };

  mk::Kernel& kernel_;
  drv::FbDriver* fb_;
  hw::VirtAddr shared_region_ = 0;  // coerced; message words live here
  uint64_t next_word_ = 0;
  std::map<Hwnd, Window> windows_;
  Hwnd next_hwnd_ = 1;
  uint32_t next_z_ = 1;
  uint64_t messages_posted_ = 0;
  uint64_t window_switches_ = 0;
};

}  // namespace pers

#endif  // SRC_PERS_OS2_PM_H_
