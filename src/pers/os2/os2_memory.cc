#include "src/pers/os2/os2_memory.h"

#include "src/base/log.h"

namespace pers {

namespace {
const hw::CodeRegion& AllocRegion() {
  static const hw::CodeRegion r = hw::DefineCode("os2.mem.alloc", 240);
  return r;
}
const hw::CodeRegion& CommitRegion() {
  static const hw::CodeRegion r = hw::DefineCode("os2.mem.commit", 180);
  return r;
}
const hw::CodeRegion& SubAllocRegion() {
  static const hw::CodeRegion r = hw::DefineCode("os2.mem.suballoc", 150);
  return r;
}
constexpr uint64_t kPerAllocationMetadata = 96;  // server-side bookkeeping
constexpr uint64_t kPerSubBlockMetadata = 32;
}  // namespace

base::Status Os2Memory::CommitRange(mk::Env& env, hw::VirtAddr addr, uint64_t pages) {
  kernel_.cpu().Execute(CommitRegion());
  // Eager allocation: touch every page now so frames exist before first use
  // (the opposite of the microkernel's lazy zero-fill).
  for (uint64_t i = 0; i < pages; ++i) {
    auto pa = kernel_.ResolveForAccess(task_, addr + i * hw::kPageSize, /*write=*/true);
    if (!pa.ok()) {
      return pa.status();
    }
  }
  return base::Status::kOk;
}

base::Result<hw::VirtAddr> Os2Memory::AllocMem(mk::Env& env, uint64_t bytes, uint32_t flags) {
  kernel_.cpu().Execute(AllocRegion());
  if (bytes == 0) {
    return base::Status::kInvalidArgument;
  }
  const uint64_t pages = hw::PageRound(bytes) >> hw::kPageShift;
  auto addr = kernel_.VmAllocate(task_, pages << hw::kPageShift);
  if (!addr.ok()) {
    return addr.status();
  }
  Allocation alloc;
  alloc.bytes = bytes;
  alloc.pages = pages;
  if ((flags & kPagCommit) != 0) {
    const base::Status st = CommitRange(env, *addr, pages);
    if (st != base::Status::kOk) {
      return st;
    }
    alloc.committed = pages;
    committed_pages_ += pages;
  }
  metadata_bytes_ += kPerAllocationMetadata;
  allocations_.emplace(*addr, std::move(alloc));
  return *addr;
}

base::Status Os2Memory::SetMem(mk::Env& env, hw::VirtAddr addr, uint64_t bytes, bool commit) {
  auto it = allocations_.upper_bound(addr);
  if (it == allocations_.begin()) {
    return base::Status::kInvalidAddress;
  }
  --it;
  Allocation& alloc = it->second;
  if (addr + bytes > it->first + alloc.pages * hw::kPageSize) {
    return base::Status::kInvalidAddress;
  }
  const uint64_t first_page = (addr - it->first) >> hw::kPageShift;
  const uint64_t page_count = hw::PageRound(bytes + (addr & hw::kPageMask)) >> hw::kPageShift;
  if (commit) {
    const base::Status st =
        CommitRange(env, it->first + first_page * hw::kPageSize, page_count);
    if (st != base::Status::kOk) {
      return st;
    }
    alloc.committed += page_count;
    committed_pages_ += page_count;
  } else {
    // Decommit: pages go back, but the allocation size is retained.
    const uint64_t dec = page_count < alloc.committed ? page_count : alloc.committed;
    alloc.committed -= dec;
    committed_pages_ -= dec;
  }
  return base::Status::kOk;
}

base::Status Os2Memory::FreeMem(mk::Env& env, hw::VirtAddr addr) {
  auto it = allocations_.find(addr);
  if (it == allocations_.end()) {
    return base::Status::kInvalidAddress;
  }
  committed_pages_ -= it->second.committed;
  metadata_bytes_ -= kPerAllocationMetadata + it->second.sub_blocks.size() * kPerSubBlockMetadata;
  const base::Status st =
      kernel_.VmDeallocate(task_, addr, it->second.pages << hw::kPageShift);
  allocations_.erase(it);
  return st;
}

base::Result<hw::VirtAddr> Os2Memory::SubAlloc(mk::Env& env, hw::VirtAddr pool, uint64_t bytes) {
  kernel_.cpu().Execute(SubAllocRegion());
  auto it = allocations_.find(pool);
  if (it == allocations_.end()) {
    return base::Status::kInvalidAddress;
  }
  Allocation& alloc = it->second;
  bytes = (bytes + 7) & ~7ull;
  // First-fit within the pool, byte granular.
  hw::VirtAddr cursor = pool;
  const hw::VirtAddr end = pool + alloc.bytes;
  auto sub = alloc.sub_blocks.begin();
  while (cursor + bytes <= end) {
    if (sub == alloc.sub_blocks.end() || cursor + bytes <= sub->first) {
      alloc.sub_blocks.emplace(cursor, SubBlock{bytes, true});
      metadata_bytes_ += kPerSubBlockMetadata;
      return cursor;
    }
    cursor = sub->first + sub->second.size;
    ++sub;
  }
  return base::Status::kNoSpace;
}

base::Status Os2Memory::SubFree(mk::Env& env, hw::VirtAddr pool, hw::VirtAddr addr) {
  auto it = allocations_.find(pool);
  if (it == allocations_.end()) {
    return base::Status::kInvalidAddress;
  }
  auto sub = it->second.sub_blocks.find(addr);
  if (sub == it->second.sub_blocks.end()) {
    return base::Status::kInvalidAddress;
  }
  it->second.sub_blocks.erase(sub);
  metadata_bytes_ -= kPerSubBlockMetadata;
  return base::Status::kOk;
}

base::Result<uint64_t> Os2Memory::QueryMemSize(hw::VirtAddr addr) const {
  auto it = allocations_.find(addr);
  if (it == allocations_.end()) {
    return base::Status::kInvalidAddress;
  }
  return it->second.bytes;
}

}  // namespace pers
