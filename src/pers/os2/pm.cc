#include "src/pers/os2/pm.h"

#include "src/base/log.h"

namespace pers {

namespace {
// All 32-bit user-level library code (the WPOS conversion).
const hw::CodeRegion& WinMgrRegion() {
  static const hw::CodeRegion r = hw::DefineCode("os2.pm.window_mgr", 200);
  return r;
}
const hw::CodeRegion& MsgRegion() {
  static const hw::CodeRegion r = hw::DefineCode("os2.pm.msg", 380);
  return r;
}
const hw::CodeRegion& DrawSetupRegion() {
  static const hw::CodeRegion r = hw::DefineCode("os2.pm.draw_setup", 140);
  return r;
}
const hw::CodeRegion& DrawLoopRegion() {
  static const hw::CodeRegion r = hw::DefineCode("os2.pm.draw_loop", 40);
  return r;
}
}  // namespace

PmDesktop::PmDesktop(mk::Kernel& kernel, drv::FbDriver* fb) : kernel_(kernel), fb_(fb) {}

base::Result<std::unique_ptr<PmSession>> PmDesktop::Attach(mk::Task& task) {
  if (shared_region_ == 0) {
    auto region = kernel_.VmAllocateCoerced(task, hw::kPageSize);
    if (!region.ok()) {
      return region.status();
    }
    shared_region_ = *region;
  } else {
    const base::Status st = kernel_.VmMapCoerced(task, shared_region_);
    if (st != base::Status::kOk && st != base::Status::kNoSpace) {
      return st;
    }
  }
  auto vram = fb_->MapInto(task);
  if (!vram.ok()) {
    return vram.status();
  }
  return std::unique_ptr<PmSession>(new PmSession(this, &task, *vram));
}

base::Result<Hwnd> PmSession::CreateWindow(mk::Env& env, const std::string& title, uint32_t x,
                                           uint32_t y, uint32_t w, uint32_t h) {
  PmDesktop& d = *desktop_;
  d.kernel_.cpu().Execute(WinMgrRegion());
  if (x + w > d.width() || y + h > d.height()) {
    return base::Status::kInvalidArgument;
  }
  PmDesktop::Window win;
  win.title = title;
  win.owner = task_;
  win.x = x;
  win.y = y;
  win.w = w;
  win.h = h;
  win.z = d.next_z_++;
  win.wait_word = d.shared_region_ + 4 * d.next_word_++;
  WPOS_CHECK(d.next_word_ <= hw::kPageSize / 4) << "desktop shared region full";
  const Hwnd hwnd = d.next_hwnd_++;
  d.windows_.emplace(hwnd, std::move(win));
  return hwnd;
}

base::Status PmSession::DestroyWindow(mk::Env& env, Hwnd hwnd) {
  desktop_->kernel_.cpu().Execute(WinMgrRegion());
  return desktop_->windows_.erase(hwnd) != 0 ? base::Status::kOk : base::Status::kNotFound;
}

base::Status PmSession::PostMsg(mk::Env& env, Hwnd hwnd, uint32_t msg, uint32_t p1,
                                uint32_t p2) {
  PmDesktop& d = *desktop_;
  d.kernel_.cpu().Execute(MsgRegion());
  auto it = d.windows_.find(hwnd);
  if (it == d.windows_.end()) {
    return base::Status::kNotFound;
  }
  it->second.queue.push_back({hwnd, msg, p1, p2});
  ++d.messages_posted_;
  // Bump the shared word and wake any parked receiver — all user level plus
  // the memory-synchronizer wake.
  uint32_t seq = 0;
  (void)env.CopyIn(it->second.wait_word, &seq, 4);
  ++seq;
  (void)env.CopyOut(it->second.wait_word, &seq, 4);
  d.kernel_.MemSyncWake(it->second.wait_word, 1);
  return base::Status::kOk;
}

base::Result<PmMsg> PmSession::PeekMsg(mk::Env& env, Hwnd hwnd) {
  PmDesktop& d = *desktop_;
  d.kernel_.cpu().Execute(MsgRegion());
  auto it = d.windows_.find(hwnd);
  if (it == d.windows_.end()) {
    return base::Status::kNotFound;
  }
  if (it->second.queue.empty()) {
    return base::Status::kWouldBlock;
  }
  PmMsg msg = it->second.queue.front();
  it->second.queue.pop_front();
  return msg;
}

base::Result<PmMsg> PmSession::GetMsg(mk::Env& env, Hwnd hwnd) {
  PmDesktop& d = *desktop_;
  while (true) {
    auto msg = PeekMsg(env, hwnd);
    if (msg.ok() || msg.status() != base::Status::kWouldBlock) {
      return msg;
    }
    auto it = d.windows_.find(hwnd);
    uint32_t seq = 0;
    const base::Status st = env.CopyIn(it->second.wait_word, &seq, 4);
    if (st != base::Status::kOk) {
      return st;
    }
    if (!it->second.queue.empty()) {
      continue;
    }
    (void)d.kernel_.MemSyncWait(it->second.wait_word, seq);
  }
}

base::Status PmSession::FillRect(mk::Env& env, Hwnd hwnd, uint32_t x, uint32_t y, uint32_t w,
                                 uint32_t h, uint8_t color) {
  PmDesktop& d = *desktop_;
  ++draw_calls_;
  d.kernel_.cpu().Execute(DrawSetupRegion());
  auto it = d.windows_.find(hwnd);
  if (it == d.windows_.end()) {
    return base::Status::kNotFound;
  }
  const PmDesktop::Window& win = it->second;
  if (x + w > win.w || y + h > win.h) {
    return base::Status::kInvalidArgument;
  }
  // Direct aperture stores, one scanline at a time.
  for (uint32_t row = 0; row < h; ++row) {
    d.kernel_.cpu().ExecuteInstructions(DrawLoopRegion(), 8 + w / 8);
    const uint64_t offset =
        static_cast<uint64_t>(win.y + y + row) * d.width() + win.x + x;
    const base::Status st = d.kernel_.UserFill(*task_, vram_base_ + offset, color, w);
    if (st != base::Status::kOk) {
      return st;
    }
  }
  return base::Status::kOk;
}

base::Status PmSession::DrawText(mk::Env& env, Hwnd hwnd, uint32_t x, uint32_t y,
                                 const std::string& text) {
  // 8x8 glyph cells; each glyph is a small fill.
  for (size_t i = 0; i < text.size(); ++i) {
    const base::Status st = FillRect(env, hwnd, x + static_cast<uint32_t>(i) * 8, y, 8, 8,
                                     static_cast<uint8_t>(text[i]));
    if (st != base::Status::kOk) {
      return st;
    }
  }
  return base::Status::kOk;
}

base::Status PmSession::BitBlt(mk::Env& env, Hwnd hwnd, uint32_t x, uint32_t y, uint32_t w,
                               uint32_t h) {
  PmDesktop& d = *desktop_;
  ++draw_calls_;
  d.kernel_.cpu().Execute(DrawSetupRegion());
  auto it = d.windows_.find(hwnd);
  if (it == d.windows_.end()) {
    return base::Status::kNotFound;
  }
  const PmDesktop::Window& win = it->second;
  if (x + w > win.w || y + h > win.h) {
    return base::Status::kInvalidArgument;
  }
  // Read-modify-write of the aperture (a blit touches source and target).
  for (uint32_t row = 0; row < h; ++row) {
    d.kernel_.cpu().ExecuteInstructions(DrawLoopRegion(), 8 + w / 4);
    const uint64_t offset =
        static_cast<uint64_t>(win.y + y + row) * d.width() + win.x + x;
    base::Status st = d.kernel_.UserTouch(*task_, vram_base_ + offset, w, /*write=*/false);
    if (st != base::Status::kOk) {
      return st;
    }
    st = d.kernel_.UserTouch(*task_, vram_base_ + offset, w, /*write=*/true);
    if (st != base::Status::kOk) {
      return st;
    }
  }
  return base::Status::kOk;
}

base::Status PmSession::SwitchTo(mk::Env& env, Hwnd hwnd) {
  PmDesktop& d = *desktop_;
  d.kernel_.cpu().Execute(WinMgrRegion());
  auto it = d.windows_.find(hwnd);
  if (it == d.windows_.end()) {
    return base::Status::kNotFound;
  }
  it->second.z = d.next_z_++;
  ++d.window_switches_;
  // Activation broadcast: every other window learns about the focus change
  // (WM_ACTIVATE in real PM), through the shared-memory queues.
  for (auto& [other_hwnd, other] : d.windows_) {
    if (other_hwnd != hwnd) {
      (void)PostMsg(env, other_hwnd, /*msg=*/0x0d, hwnd, 0);
    }
  }
  // Bringing a window forward repaints it.
  return BitBlt(env, hwnd, 0, 0, it->second.w, it->second.h);
}

}  // namespace pers
