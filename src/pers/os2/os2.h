// The OS/2 personality.
//
// Per the paper: each OS/2 process gets a microkernel task, each OS/2 thread
// a microkernel thread; programs link shared libraries containing RPC stubs
// for the microkernel, Microkernel Services, shared services and the OS/2
// server, with as much function as possible implemented in the libraries
// themselves to reduce server interaction. The OS/2 server holds the truly
// shared state (process table, system semaphores); file function forwards to
// the personality-neutral file server with OS/2 semantics flags; memory
// function is the commitment-oriented layer in os2_memory.h.
#ifndef SRC_PERS_OS2_OS2_H_
#define SRC_PERS_OS2_OS2_H_

#include <deque>
#include <map>
#include <memory>
#include <string>

#include "src/mk/kernel.h"
#include "src/mk/server_loop.h"
#include "src/pers/os2/os2_memory.h"
#include "src/svc/fs/file_server.h"

namespace pers {

enum class Os2Op : uint32_t {
  kExitProcess = 1,
  kQueryProcess = 2,
  kCreateSem = 3,
  kRequestSem = 4,
  kReleaseSem = 5,
};

struct Os2Request {
  Os2Op op = Os2Op::kQueryProcess;
  uint32_t pid = 0;
  uint32_t value = 0;
  char name[64] = {};
};

struct Os2Reply {
  int32_t status = 0;
  uint32_t value = 0;
};

class Os2Server {
 public:
  Os2Server(mk::Kernel& kernel, mk::Task* task);

  mk::PortName GrantTo(mk::Task& client);
  void Stop() { running_ = false; }

  uint32_t RegisterProcess(const std::string& name);
  void UnregisterProcess(uint32_t pid);
  size_t process_count() const { return processes_.size(); }

 private:
  void Serve(mk::Env& env);

  mk::Kernel& kernel_;
  mk::Task* task_;
  mk::PortName receive_port_ = mk::kNullPort;
  struct Process {
    std::string name;
    int32_t exit_code = -1;
    bool alive = true;
  };
  std::map<uint32_t, Process> processes_;
  struct SystemSem {
    uint32_t count = 1;
    std::deque<uint64_t> waiters;  // RPC tokens awaiting the semaphore
  };
  std::map<std::string, uint32_t> sem_ids_;
  std::map<uint32_t, SystemSem> system_sems_;
  uint32_t next_sem_ = 1;
  uint32_t next_pid_ = 2;  // pid 1 is the server itself, OS/2 style
  bool running_ = true;
};

// One OS/2 process: a microkernel task plus the client-side libraries.
class Os2Process {
 public:
  Os2Process(mk::Kernel& kernel, Os2Server& server, svc::FileServer& fs,
             const std::string& name);

  mk::Task* task() { return task_; }
  uint32_t pid() const { return pid_; }
  Os2Memory& memory() { return memory_; }

  // --- Dos* API (client library; charges OS/2 stub code) ----------------------
  base::Result<uint64_t> DosOpen(mk::Env& env, const std::string& path, uint32_t fs_flags,
                                 svc::FsShare share = svc::FsShare::kDenyNone);
  base::Result<uint32_t> DosRead(mk::Env& env, uint64_t handle, uint64_t offset, void* out,
                                 uint32_t len);
  base::Result<uint32_t> DosWrite(mk::Env& env, uint64_t handle, uint64_t offset,
                                  const void* data, uint32_t len);
  base::Status DosClose(mk::Env& env, uint64_t handle);
  base::Status DosDelete(mk::Env& env, const std::string& path);
  base::Status DosMkdir(mk::Env& env, const std::string& path);
  base::Result<std::vector<svc::DirEntry>> DosFindAll(mk::Env& env, const std::string& dir);

  base::Result<hw::VirtAddr> DosAllocMem(mk::Env& env, uint64_t bytes, uint32_t flags) {
    return memory_.AllocMem(env, bytes, flags);
  }
  base::Status DosFreeMem(mk::Env& env, hw::VirtAddr addr) { return memory_.FreeMem(env, addr); }

  mk::Thread* DosCreateThread(const std::string& name, mk::ThreadBody body);
  base::Status DosSleep(mk::Env& env, uint64_t ms) { return env.SleepNs(ms * 1'000'000); }

  // System semaphores via the OS/2 server.
  base::Result<uint32_t> DosCreateSem(mk::Env& env, const std::string& name);
  base::Status DosRequestSem(mk::Env& env, uint32_t sem);
  base::Status DosReleaseSem(mk::Env& env, uint32_t sem);
  base::Status DosExit(mk::Env& env, int32_t code);

  uint64_t api_calls() const { return api_calls_; }

 private:
  void ChargeStub();

  mk::Kernel& kernel_;
  Os2Server& server_;
  mk::Task* task_;
  uint32_t pid_;
  Os2Memory memory_;
  svc::FsClient fs_;
  mk::ClientStub os2_stub_;
  uint64_t api_calls_ = 0;
};

}  // namespace pers

#endif  // SRC_PERS_OS2_OS2_H_
