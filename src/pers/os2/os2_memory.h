// OS/2 memory management layered on the microkernel — the paper's "two
// memory management systems" problem.
//
// OS/2 semantics: commitment-oriented, eager allocation, byte-granular
// (DosAllocMem/DosSetMem/DosSubAllocMem), with the operating system
// *retaining allocation sizes*. The microkernel's VM is page-oriented, lazy,
// and forgets sizes. The result, reproduced here, is a second allocator
// stacked on the first: every OS/2 object costs its pages (committed eagerly,
// not on fault) plus server-side metadata — which is what "greatly increased
// the memory footprint" in the paper's evaluation. The footprint counters
// feed bench_os2_memory.
#ifndef SRC_PERS_OS2_OS2_MEMORY_H_
#define SRC_PERS_OS2_OS2_MEMORY_H_

#include <map>

#include "src/mk/kernel.h"

namespace pers {

enum Os2MemFlags : uint32_t {
  kPagCommit = 1u << 0,  // commit at allocation (the common OS/2 case)
  kObjTile = 1u << 1,    // historical; accepted, ignored
};

class Os2Memory {
 public:
  Os2Memory(mk::Kernel& kernel, mk::Task& task) : kernel_(kernel), task_(task) {}

  // DosAllocMem: reserves `bytes` (byte-granular size retained) and, with
  // kPagCommit, eagerly commits every page through the fault path.
  base::Result<hw::VirtAddr> AllocMem(mk::Env& env, uint64_t bytes, uint32_t flags);
  // DosSetMem: commit or decommit a byte range within an allocation.
  base::Status SetMem(mk::Env& env, hw::VirtAddr addr, uint64_t bytes, bool commit);
  base::Status FreeMem(mk::Env& env, hw::VirtAddr addr);
  // DosSubAllocMem-style byte-granular suballocation within an allocation.
  base::Result<hw::VirtAddr> SubAlloc(mk::Env& env, hw::VirtAddr pool, uint64_t bytes);
  base::Status SubFree(mk::Env& env, hw::VirtAddr pool, hw::VirtAddr addr);
  // DosQueryMem: OS/2 retains the allocation size; the microkernel does not.
  base::Result<uint64_t> QueryMemSize(hw::VirtAddr addr) const;

  // --- Footprint accounting (bench_os2_memory / claim C5) ---------------------
  // Pages committed eagerly that have never been touched by the program.
  uint64_t committed_pages() const { return committed_pages_; }
  // Host metadata the OS/2 layer keeps because the microkernel cannot.
  uint64_t metadata_bytes() const { return metadata_bytes_; }
  uint64_t allocations() const { return allocations_.size(); }

 private:
  struct SubBlock {
    uint64_t size = 0;
    bool used = false;
  };
  struct Allocation {
    uint64_t bytes = 0;  // byte-granular size (OS/2 retains this)
    uint64_t pages = 0;
    uint64_t committed = 0;  // committed page count
    std::map<hw::VirtAddr, SubBlock> sub_blocks;
  };

  base::Status CommitRange(mk::Env& env, hw::VirtAddr addr, uint64_t pages);

  mk::Kernel& kernel_;
  mk::Task& task_;
  std::map<hw::VirtAddr, Allocation> allocations_;
  uint64_t committed_pages_ = 0;
  uint64_t metadata_bytes_ = 0;
};

}  // namespace pers

#endif  // SRC_PERS_OS2_OS2_MEMORY_H_
