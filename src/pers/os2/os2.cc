#include "src/pers/os2/os2.h"

#include <algorithm>
#include <cstring>

#include "src/base/log.h"
#include "src/mk/trace/tracer.h"

namespace pers {

namespace {
const hw::CodeRegion& DosStubRegion() {
  // The OS/2 client library entry sequence (doscalls.dll analogue).
  static const hw::CodeRegion r = hw::DefineCode("os2.lib.dos_stub", 90);
  return r;
}
}  // namespace

Os2Server::Os2Server(mk::Kernel& kernel, mk::Task* task) : kernel_(kernel), task_(task) {
  auto port = kernel_.PortAllocate(*task_);
  WPOS_CHECK(port.ok());
  receive_port_ = *port;
  kernel_.CreateThread(task_, "os2-server", [this](mk::Env& env) { Serve(env); },
                       mk::Thread::kDefaultPriority + 2);
}

mk::PortName Os2Server::GrantTo(mk::Task& client) {
  auto name = kernel_.MakeSendRight(*task_, receive_port_, client);
  WPOS_CHECK(name.ok());
  return *name;
}

uint32_t Os2Server::RegisterProcess(const std::string& name) {
  const uint32_t pid = next_pid_++;
  processes_.emplace(pid, Process{name, -1, true});
  return pid;
}

void Os2Server::UnregisterProcess(uint32_t pid) { processes_.erase(pid); }

void Os2Server::Serve(mk::Env& env) {
  static const hw::CodeRegion kLoop = hw::DefineCode("loop.os2", mk::Costs::kRpcServerLoop);
  Os2Request r;
  while (true) {
    auto rpc = env.RpcReceive(receive_port_, &r, sizeof(r));
    if (!rpc.ok()) {
      return;
    }
    kernel_.cpu().Execute(kLoop);
    Os2Reply reply;
    switch (r.op) {
      case Os2Op::kExitProcess: {
        auto it = processes_.find(r.pid);
        if (it == processes_.end()) {
          reply.status = static_cast<int32_t>(base::Status::kNotFound);
        } else {
          it->second.alive = false;
          it->second.exit_code = static_cast<int32_t>(r.value);
        }
        break;
      }
      case Os2Op::kQueryProcess: {
        auto it = processes_.find(r.pid);
        if (it == processes_.end()) {
          reply.status = static_cast<int32_t>(base::Status::kNotFound);
        } else {
          reply.value = it->second.alive ? 1 : 0;
        }
        break;
      }
      case Os2Op::kCreateSem: {
        if (sem_ids_.contains(r.name)) {
          reply.status = static_cast<int32_t>(base::Status::kAlreadyExists);
        } else {
          const uint32_t id = next_sem_++;
          sem_ids_.emplace(r.name, id);
          system_sems_.emplace(id, SystemSem{});
          reply.value = id;
        }
        break;
      }
      case Os2Op::kRequestSem: {
        auto it = system_sems_.find(r.value);
        if (it == system_sems_.end()) {
          reply.status = static_cast<int32_t>(base::Status::kNotFound);
        } else if (it->second.count > 0) {
          --it->second.count;
        } else {
          // Owner holds it: defer the reply; the release completes it. The
          // server thread stays free to serve other processes meanwhile.
          it->second.waiters.push_back(rpc->token);
          continue;
        }
        break;
      }
      case Os2Op::kReleaseSem: {
        auto it = system_sems_.find(r.value);
        if (it == system_sems_.end()) {
          reply.status = static_cast<int32_t>(base::Status::kNotFound);
        } else if (!it->second.waiters.empty()) {
          const uint64_t waiter = it->second.waiters.front();
          it->second.waiters.pop_front();
          Os2Reply granted;
          (void)kernel_.RpcReply(waiter, &granted, sizeof(granted));
        } else {
          ++it->second.count;
        }
        break;
      }
      default:
        reply.status = static_cast<int32_t>(base::Status::kNotSupported);
    }
    env.RpcReply(rpc->token, &reply, sizeof(reply));
    if (!running_) {
      (void)kernel_.PortDestroy(*task_, receive_port_);
      return;
    }
  }
}

Os2Process::Os2Process(mk::Kernel& kernel, Os2Server& server, svc::FileServer& fs,
                       const std::string& name)
    : kernel_(kernel),
      server_(server),
      task_(kernel.CreateTask("os2." + name, /*app_footprint_instr=*/4096)),
      pid_(server.RegisterProcess(name)),
      memory_(kernel, *task_),
      fs_(fs.GrantTo(*task_)),
      os2_stub_("os2.client", server.GrantTo(*task_)) {}

void Os2Process::ChargeStub() {
  ++api_calls_;
  kernel_.cpu().Execute(DosStubRegion());
}

base::Result<uint64_t> Os2Process::DosOpen(mk::Env& env, const std::string& path,
                                           uint32_t fs_flags, svc::FsShare share) {
  // API root span for the causal request tree (see the UNIX personality).
  mk::trace::ScopedSpan api(kernel_.tracer(), mk::trace::SpanKind::kApi,
                            mk::trace::EventType::kApiCall, mk::trace::EventType::kApiReturn,
                            fs_flags);
  kernel_.tracer().LabelSpan(api.id(), "os2.DosOpen");
  ChargeStub();
  // OS/2 file names are case-insensitive regardless of the store.
  return fs_.Open(env, path, fs_flags | svc::kFsCaseInsensitive, share);
}

base::Result<uint32_t> Os2Process::DosRead(mk::Env& env, uint64_t handle, uint64_t offset,
                                           void* out, uint32_t len) {
  mk::trace::ScopedSpan api(kernel_.tracer(), mk::trace::SpanKind::kApi,
                            mk::trace::EventType::kApiCall, mk::trace::EventType::kApiReturn,
                            handle);
  kernel_.tracer().LabelSpan(api.id(), "os2.DosRead");
  ChargeStub();
  // DosRead has no size limit; loop in server-sized chunks (each chunk large
  // enough to move out-of-line) and stop at EOF.
  uint32_t total = 0;
  while (total < len) {
    const uint32_t chunk = std::min(len - total, svc::kFsMaxIo);
    auto got = fs_.Read(env, handle, offset + total, static_cast<uint8_t*>(out) + total, chunk);
    if (!got.ok()) {
      return total > 0 ? base::Result<uint32_t>(total) : got;
    }
    total += *got;
    if (*got < chunk) {
      break;  // EOF
    }
  }
  return total;
}

base::Result<uint32_t> Os2Process::DosWrite(mk::Env& env, uint64_t handle, uint64_t offset,
                                            const void* data, uint32_t len) {
  mk::trace::ScopedSpan api(kernel_.tracer(), mk::trace::SpanKind::kApi,
                            mk::trace::EventType::kApiCall, mk::trace::EventType::kApiReturn,
                            handle);
  kernel_.tracer().LabelSpan(api.id(), "os2.DosWrite");
  ChargeStub();
  uint32_t total = 0;
  while (total < len) {
    const uint32_t chunk = std::min(len - total, svc::kFsMaxIo);
    auto wrote =
        fs_.Write(env, handle, offset + total, static_cast<const uint8_t*>(data) + total, chunk);
    if (!wrote.ok()) {
      return total > 0 ? base::Result<uint32_t>(total) : wrote;
    }
    total += *wrote;
    if (*wrote < chunk) {
      break;  // short write (e.g. lock conflict mid-stream)
    }
  }
  return total;
}

base::Status Os2Process::DosClose(mk::Env& env, uint64_t handle) {
  ChargeStub();
  return fs_.Close(env, handle);
}

base::Status Os2Process::DosDelete(mk::Env& env, const std::string& path) {
  ChargeStub();
  return fs_.Unlink(env, path);
}

base::Status Os2Process::DosMkdir(mk::Env& env, const std::string& path) {
  ChargeStub();
  return fs_.Mkdir(env, path);
}

base::Result<std::vector<svc::DirEntry>> Os2Process::DosFindAll(mk::Env& env,
                                                                const std::string& dir) {
  ChargeStub();
  return fs_.ReadDir(env, dir);
}

mk::Thread* Os2Process::DosCreateThread(const std::string& name, mk::ThreadBody body) {
  return kernel_.CreateThread(task_, name, std::move(body));
}

base::Result<uint32_t> Os2Process::DosCreateSem(mk::Env& env, const std::string& name) {
  ChargeStub();
  Os2Request r;
  r.op = Os2Op::kCreateSem;
  std::strncpy(r.name, name.c_str(), sizeof(r.name) - 1);
  Os2Reply reply;
  const base::Status st = os2_stub_.Call(env, r, &reply);
  if (st != base::Status::kOk) {
    return st;
  }
  if (reply.status != 0) {
    return static_cast<base::Status>(reply.status);
  }
  return reply.value;
}

base::Status Os2Process::DosRequestSem(mk::Env& env, uint32_t sem) {
  ChargeStub();
  Os2Request r;
  r.op = Os2Op::kRequestSem;
  r.value = sem;
  Os2Reply reply;
  const base::Status st = os2_stub_.Call(env, r, &reply);
  return st != base::Status::kOk ? st : static_cast<base::Status>(reply.status);
}

base::Status Os2Process::DosReleaseSem(mk::Env& env, uint32_t sem) {
  ChargeStub();
  Os2Request r;
  r.op = Os2Op::kReleaseSem;
  r.value = sem;
  Os2Reply reply;
  const base::Status st = os2_stub_.Call(env, r, &reply);
  return st != base::Status::kOk ? st : static_cast<base::Status>(reply.status);
}

base::Status Os2Process::DosExit(mk::Env& env, int32_t code) {
  ChargeStub();
  Os2Request r;
  r.op = Os2Op::kExitProcess;
  r.pid = pid_;
  r.value = static_cast<uint32_t>(code);
  Os2Reply reply;
  const base::Status st = os2_stub_.Call(env, r, &reply);
  return st != base::Status::kOk ? st : static_cast<base::Status>(reply.status);
}

}  // namespace pers
