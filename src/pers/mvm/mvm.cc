#include "src/pers/mvm/mvm.h"

#include "src/base/log.h"

namespace pers {

namespace {
const hw::CodeRegion& TrapReflectRegion() {
  // The MVM shared libraries "handled the traps generated" by the guest.
  static const hw::CodeRegion r = hw::DefineCode("mvm.lib.trap_reflect", 120);
  return r;
}
const hw::CodeRegion& VddRegion() {
  // Virtual device driver bridging a DOS call to the real services.
  static const hw::CodeRegion r = hw::DefineCode("mvm.lib.vdd", 160);
  return r;
}
}  // namespace

DosBox::DosBox(mk::Kernel& kernel, svc::FileServer& fs, const std::string& name)
    : kernel_(kernel), task_(kernel.CreateTask("mvm." + name, 4096)) {
  fs_ = std::make_unique<svc::FsClient>(fs.GrantTo(*task_));
  vm_ = std::make_unique<Vm86>(kernel, task_, [this](mk::Env& env, uint8_t vector,
                                                     Vm86State& state) {
    HandleInt(env, vector, state);
  });
}

base::Result<uint64_t> DosBox::Run(mk::Env& env, bool translated, uint64_t budget) {
  return translated ? vm_->RunTranslated(env, budget) : vm_->RunInterpreted(env, budget);
}

void DosBox::HandleInt(mk::Env& env, uint8_t vector, Vm86State& state) {
  kernel_.cpu().Execute(TrapReflectRegion());
  switch (vector) {
    case 0x21:
      HandleDos(env, state);
      break;
    case 0x10: {  // video teletype: AL = character
      console_.push_back(static_cast<char>(state.reg(Vm86Reg::kAx) & 0xff));
      break;
    }
    default:
      // Unknown interrupt: real MVM would reflect to the DOS image; we halt.
      state.halted = true;
  }
}

void DosBox::HandleDos(mk::Env& env, Vm86State& state) {
  ++dos_calls_;
  const uint8_t ah = static_cast<uint8_t>(state.reg(Vm86Reg::kAx) >> 8);
  switch (ah) {
    case kDosPrintChar:
      console_.push_back(static_cast<char>(state.reg(Vm86Reg::kDx) & 0xff));
      break;
    case kDosCreate:
    case kDosOpen: {
      kernel_.cpu().Execute(VddRegion());
      // DX = guest address of NUL-terminated filename.
      char name[64] = {};
      if (vm_->ReadGuest(env, state.reg(Vm86Reg::kDx), name, sizeof(name) - 1) !=
          base::Status::kOk) {
        state.reg(Vm86Reg::kAx) = 0xffff;
        return;
      }
      name[sizeof(name) - 1] = '\0';
      const uint32_t flags =
          ah == kDosCreate ? (svc::kFsCreate | svc::kFsWrite | svc::kFsTruncate)
                           : svc::kFsWrite;
      auto handle = fs_->Open(env, std::string("/") + name, flags | svc::kFsCaseInsensitive);
      if (!handle.ok()) {
        state.reg(Vm86Reg::kAx) = 0xffff;
        return;
      }
      const uint16_t dos_handle = next_handle_++;
      dos_handles_[dos_handle] = *handle;
      state.reg(Vm86Reg::kAx) = dos_handle;
      break;
    }
    case kDosClose: {
      kernel_.cpu().Execute(VddRegion());
      auto it = dos_handles_.find(state.reg(Vm86Reg::kBx));
      if (it == dos_handles_.end()) {
        state.reg(Vm86Reg::kAx) = 0xffff;
        return;
      }
      (void)fs_->Close(env, it->second);
      dos_handles_.erase(it);
      state.reg(Vm86Reg::kAx) = 0;
      break;
    }
    case kDosRead:
    case kDosWrite: {
      kernel_.cpu().Execute(VddRegion());
      auto it = dos_handles_.find(state.reg(Vm86Reg::kBx));
      if (it == dos_handles_.end()) {
        state.reg(Vm86Reg::kAx) = 0xffff;
        return;
      }
      const uint16_t len = state.reg(Vm86Reg::kCx);
      const uint16_t buf = state.reg(Vm86Reg::kDx);
      const uint16_t pos = state.reg(Vm86Reg::kSi);  // simplification: SI = offset
      std::vector<uint8_t> data(len);
      if (ah == kDosWrite) {
        if (vm_->ReadGuest(env, buf, data.data(), len) != base::Status::kOk) {
          state.reg(Vm86Reg::kAx) = 0xffff;
          return;
        }
        auto wrote = fs_->Write(env, it->second, pos, data.data(), len);
        state.reg(Vm86Reg::kAx) = wrote.ok() ? static_cast<uint16_t>(*wrote) : 0xffff;
      } else {
        auto got = fs_->Read(env, it->second, pos, data.data(), len);
        if (!got.ok() ||
            vm_->WriteGuest(env, buf, data.data(), *got) != base::Status::kOk) {
          state.reg(Vm86Reg::kAx) = 0xffff;
          return;
        }
        state.reg(Vm86Reg::kAx) = static_cast<uint16_t>(*got);
      }
      break;
    }
    case kDosExit:
      exit_code_ = static_cast<int32_t>(state.reg(Vm86Reg::kAx) & 0xff);
      state.halted = true;
      break;
    default:
      state.reg(Vm86Reg::kAx) = 0xffff;  // unsupported function
  }
}

}  // namespace pers
