// MVM — the multiple-DOS environment [Golub'93 MVM]: each DOS box is a
// microkernel task whose shared libraries handle the traps the guest
// generates and use *virtual device drivers* to reach the real services.
// INT 21h (DOS API) file calls bridge to the personality-neutral file
// server; INT 10h teletype output drives a console buffer. On PowerPC the
// real MVM also carried the x86 instruction translator — vm86.h implements
// both the interpreter and the block-translating engine.
#ifndef SRC_PERS_MVM_MVM_H_
#define SRC_PERS_MVM_MVM_H_

#include <map>
#include <memory>
#include <string>

#include "src/mk/kernel.h"
#include "src/pers/mvm/vm86.h"
#include "src/svc/fs/file_server.h"

namespace pers {

class DosBox {
 public:
  DosBox(mk::Kernel& kernel, svc::FileServer& fs, const std::string& name);

  mk::Task* task() { return task_; }
  Vm86& vm() { return *vm_; }

  base::Status LoadProgram(mk::Env& env, const std::vector<uint8_t>& image) {
    return vm_->LoadProgram(env, image);
  }
  // Runs until HLT (or the instruction budget runs out).
  base::Result<uint64_t> Run(mk::Env& env, bool translated, uint64_t budget = 1'000'000);

  const std::string& console() const { return console_; }
  uint64_t dos_calls() const { return dos_calls_; }
  int32_t exit_code() const { return exit_code_; }

  // DOS INT 21h function numbers (AH).
  static constexpr uint8_t kDosPrintChar = 0x02;
  static constexpr uint8_t kDosCreate = 0x3c;
  static constexpr uint8_t kDosOpen = 0x3d;
  static constexpr uint8_t kDosClose = 0x3e;
  static constexpr uint8_t kDosRead = 0x3f;
  static constexpr uint8_t kDosWrite = 0x40;
  static constexpr uint8_t kDosExit = 0x4c;

 private:
  void HandleInt(mk::Env& env, uint8_t vector, Vm86State& state);
  void HandleDos(mk::Env& env, Vm86State& state);

  mk::Kernel& kernel_;
  mk::Task* task_;
  std::unique_ptr<svc::FsClient> fs_;  // the virtual device driver's far end
  std::unique_ptr<Vm86> vm_;
  std::string console_;
  std::map<uint16_t, uint64_t> dos_handles_;  // DOS handle -> fs handle
  uint16_t next_handle_ = 5;
  uint64_t dos_calls_ = 0;
  int32_t exit_code_ = -1;
};

}  // namespace pers

#endif  // SRC_PERS_MVM_MVM_H_
