// Toy 16-bit x86-flavoured virtual machine for MVM DOS boxes.
//
// Two execution engines share identical architectural semantics:
//   - the interpreter (every guest instruction decoded each time), and
//   - the block translator (the PowerPC WPOS "instruction set translator
//     that translated blocks of Intel instructions for execution"):
//     basic blocks are translated once at a high one-time cost, then run at
//     a much lower per-instruction cost from the translation cache.
// Guest memory is a 64 KB region of the DOS box task's simulated address
// space, so guest loads/stores go through the real VM and cache model.
#ifndef SRC_PERS_MVM_VM86_H_
#define SRC_PERS_MVM_VM86_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "src/mk/kernel.h"

namespace pers {

enum class Vm86Reg : uint8_t { kAx = 0, kBx, kCx, kDx, kSi, kDi, kSp, kNumRegs };

// Opcodes (1-byte, fixed-ish encodings; see vm86.cc for operand layout).
enum Vm86Op : uint8_t {
  kOpHlt = 0x00,
  kOpMovImm = 0x01,   // r, imm16
  kOpMovReg = 0x02,   // r, r
  kOpAdd = 0x03,      // r, r
  kOpSub = 0x04,      // r, r
  kOpCmp = 0x05,      // r, r (sets ZF)
  kOpInc = 0x06,      // r
  kOpDec = 0x07,      // r
  kOpJmp = 0x08,      // addr16
  kOpJz = 0x09,       // addr16
  kOpJnz = 0x0a,      // addr16
  kOpLoad = 0x0b,     // r, [addr16]
  kOpStore = 0x0c,    // [addr16], r
  kOpInt = 0x0d,      // imm8 software interrupt
  kOpLoop = 0x0e,     // addr16 (dec CX, jump if != 0)
  kOpLoadIdx = 0x0f,  // r, [SI]
  kOpStoreIdx = 0x10, // [DI], r
  kOpAddImm = 0x11,   // r, imm16
};

struct Vm86State {
  uint16_t regs[static_cast<int>(Vm86Reg::kNumRegs)] = {};
  uint16_t ip = 0;
  bool zf = false;
  bool halted = false;

  uint16_t& reg(Vm86Reg r) { return regs[static_cast<int>(r)]; }
  uint16_t reg(Vm86Reg r) const { return regs[static_cast<int>(r)]; }
};

class Vm86 {
 public:
  static constexpr uint32_t kMemBytes = 64 * 1024;

  // `int_handler` implements software interrupts (the DPMI-ish reflection
  // into MVM); it may touch state and guest memory.
  using IntHandler = std::function<void(mk::Env&, uint8_t vector, Vm86State&)>;

  Vm86(mk::Kernel& kernel, mk::Task* task, IntHandler int_handler);

  // Loads a program image at guest address 0 and resets the machine.
  base::Status LoadProgram(mk::Env& env, const std::vector<uint8_t>& image);

  // Runs up to `max_instructions` guest instructions with the interpreter.
  base::Result<uint64_t> RunInterpreted(mk::Env& env, uint64_t max_instructions);
  // Same, via the block translator + translation cache.
  base::Result<uint64_t> RunTranslated(mk::Env& env, uint64_t max_instructions);

  Vm86State& state() { return state_; }
  hw::VirtAddr guest_base() const { return guest_base_; }
  uint64_t blocks_translated() const { return blocks_translated_; }
  uint64_t translation_cache_hits() const { return cache_hits_; }

  // Guest memory helpers (also used by interrupt handlers).
  base::Result<uint8_t> ReadByte(mk::Env& env, uint16_t addr);
  base::Result<uint16_t> ReadWord(mk::Env& env, uint16_t addr);
  base::Status WriteWord(mk::Env& env, uint16_t addr, uint16_t value);
  base::Status ReadGuest(mk::Env& env, uint16_t addr, void* out, uint32_t len);
  base::Status WriteGuest(mk::Env& env, uint16_t addr, const void* src, uint32_t len);

 private:
  struct TranslatedBlock {
    uint16_t start = 0;
    uint32_t guest_instructions = 0;
  };

  // Executes exactly one instruction (shared semantics for both engines).
  // Returns false when the machine halts or faults.
  base::Result<bool> Step(mk::Env& env);
  // Scans the basic block starting at `ip` (ends at control transfer/HLT).
  base::Result<TranslatedBlock> TranslateBlock(mk::Env& env, uint16_t ip);

  mk::Kernel& kernel_;
  mk::Task* task_;
  IntHandler int_handler_;
  hw::VirtAddr guest_base_ = 0;
  Vm86State state_;
  std::unordered_map<uint16_t, TranslatedBlock> translation_cache_;
  uint64_t blocks_translated_ = 0;
  uint64_t cache_hits_ = 0;
};

// Small assembler for tests/examples.
class Vm86Assembler {
 public:
  Vm86Assembler& MovImm(Vm86Reg r, uint16_t v);
  Vm86Assembler& MovReg(Vm86Reg dst, Vm86Reg src);
  Vm86Assembler& Add(Vm86Reg dst, Vm86Reg src);
  Vm86Assembler& AddImm(Vm86Reg dst, uint16_t v);
  Vm86Assembler& Sub(Vm86Reg dst, Vm86Reg src);
  Vm86Assembler& Cmp(Vm86Reg a, Vm86Reg b);
  Vm86Assembler& Inc(Vm86Reg r);
  Vm86Assembler& Dec(Vm86Reg r);
  Vm86Assembler& Jmp(uint16_t addr);
  Vm86Assembler& Jz(uint16_t addr);
  Vm86Assembler& Jnz(uint16_t addr);
  Vm86Assembler& Load(Vm86Reg r, uint16_t addr);
  Vm86Assembler& Store(uint16_t addr, Vm86Reg r);
  Vm86Assembler& LoadIdx(Vm86Reg r);
  Vm86Assembler& StoreIdx(Vm86Reg r);
  Vm86Assembler& Int(uint8_t vector);
  Vm86Assembler& Loop(uint16_t addr);
  Vm86Assembler& Hlt();
  // Raw data bytes (e.g. strings for INT 21h filenames).
  Vm86Assembler& Bytes(const std::vector<uint8_t>& data);

  uint16_t here() const { return static_cast<uint16_t>(code_.size()); }
  const std::vector<uint8_t>& code() const { return code_; }

 private:
  std::vector<uint8_t> code_;
};

}  // namespace pers

#endif  // SRC_PERS_MVM_VM86_H_
