#include "src/pers/mvm/vm86.h"

#include "src/base/log.h"

namespace pers {

namespace {
const hw::CodeRegion& InterpDispatchRegion() {
  // Fetch/decode/dispatch of the interpreter: the per-instruction tax the
  // translator exists to remove.
  static const hw::CodeRegion r = hw::DefineCode("mvm.interp.dispatch", 14);
  return r;
}
const hw::CodeRegion& InterpExecRegion() {
  static const hw::CodeRegion r = hw::DefineCode("mvm.interp.exec", 10);
  return r;
}
const hw::CodeRegion& TranslateRegion() {
  static const hw::CodeRegion r = hw::DefineCode("mvm.xlate.translate", 48);
  return r;
}
const hw::CodeRegion& TranslatedExecRegion() {
  static const hw::CodeRegion r = hw::DefineCode("mvm.xlate.exec", 4);
  return r;
}
const hw::CodeRegion& CacheLookupRegion() {
  static const hw::CodeRegion r = hw::DefineCode("mvm.xlate.cache_lookup", 12);
  return r;
}

uint32_t InstructionLength(uint8_t op) {
  switch (op) {
    case kOpHlt:
      return 1;
    case kOpInc:
    case kOpDec:
      return 2;
    case kOpLoadIdx:
    case kOpStoreIdx:
      return 2;
    case kOpInt:
      return 2;
    case kOpMovReg:
    case kOpAdd:
    case kOpSub:
    case kOpCmp:
      return 3;
    case kOpJmp:
    case kOpJz:
    case kOpJnz:
    case kOpLoop:
      return 3;
    case kOpMovImm:
    case kOpAddImm:
      return 4;
    case kOpLoad:
    case kOpStore:
      return 4;
    default:
      return 0;  // illegal
  }
}

bool IsBlockEnd(uint8_t op) {
  switch (op) {
    case kOpHlt:
    case kOpJmp:
    case kOpJz:
    case kOpJnz:
    case kOpLoop:
    case kOpInt:
      return true;
    default:
      return false;
  }
}
}  // namespace

Vm86::Vm86(mk::Kernel& kernel, mk::Task* task, IntHandler int_handler)
    : kernel_(kernel), task_(task), int_handler_(std::move(int_handler)) {
  auto base = kernel_.VmAllocate(*task_, kMemBytes);
  WPOS_CHECK(base.ok()) << "cannot allocate DOS box memory";
  guest_base_ = *base;
}

base::Status Vm86::LoadProgram(mk::Env& env, const std::vector<uint8_t>& image) {
  if (image.size() > kMemBytes) {
    return base::Status::kTooLarge;
  }
  state_ = Vm86State{};
  translation_cache_.clear();
  return kernel_.CopyOut(*task_, guest_base_, image.data(), image.size());
}

base::Result<uint8_t> Vm86::ReadByte(mk::Env& env, uint16_t addr) {
  uint8_t b = 0;
  const base::Status st = kernel_.CopyIn(*task_, guest_base_ + addr, &b, 1);
  if (st != base::Status::kOk) {
    return st;
  }
  return b;
}

base::Result<uint16_t> Vm86::ReadWord(mk::Env& env, uint16_t addr) {
  uint16_t w = 0;
  const base::Status st = kernel_.CopyIn(*task_, guest_base_ + addr, &w, 2);
  if (st != base::Status::kOk) {
    return st;
  }
  return w;
}

base::Status Vm86::WriteWord(mk::Env& env, uint16_t addr, uint16_t value) {
  return kernel_.CopyOut(*task_, guest_base_ + addr, &value, 2);
}

base::Status Vm86::ReadGuest(mk::Env& env, uint16_t addr, void* out, uint32_t len) {
  return kernel_.CopyIn(*task_, guest_base_ + addr, out, len);
}

base::Status Vm86::WriteGuest(mk::Env& env, uint16_t addr, const void* src, uint32_t len) {
  return kernel_.CopyOut(*task_, guest_base_ + addr, src, len);
}

base::Result<bool> Vm86::Step(mk::Env& env) {
  auto op_r = ReadByte(env, state_.ip);
  if (!op_r.ok()) {
    return op_r.status();
  }
  const uint8_t op = *op_r;
  const uint32_t len = InstructionLength(op);
  if (len == 0) {
    return base::Status::kNotSupported;  // illegal opcode
  }
  uint8_t operand_r = 0;
  uint8_t operand_r2 = 0;
  uint16_t operand_imm = 0;
  if (len >= 2) {
    auto b = ReadByte(env, state_.ip + 1);
    if (!b.ok()) {
      return b.status();
    }
    operand_r = *b;
  }
  if (len == 3 && (op == kOpMovReg || op == kOpAdd || op == kOpSub || op == kOpCmp)) {
    auto b = ReadByte(env, state_.ip + 2);
    if (!b.ok()) {
      return b.status();
    }
    operand_r2 = *b;
  } else if (len == 3) {  // jumps: imm16 at +1
    auto w = ReadWord(env, state_.ip + 1);
    if (!w.ok()) {
      return w.status();
    }
    operand_imm = *w;
  } else if (len == 4) {  // r + imm16
    auto w = ReadWord(env, state_.ip + 2);
    if (!w.ok()) {
      return w.status();
    }
    operand_imm = *w;
  }
  auto reg_of = [&](uint8_t index) -> uint16_t& {
    return state_.regs[index % static_cast<int>(Vm86Reg::kNumRegs)];
  };
  uint16_t next_ip = static_cast<uint16_t>(state_.ip + len);
  switch (op) {
    case kOpHlt:
      state_.halted = true;
      return false;
    case kOpMovImm:
      reg_of(operand_r) = operand_imm;
      break;
    case kOpMovReg:
      reg_of(operand_r) = reg_of(operand_r2);
      break;
    case kOpAdd:
      reg_of(operand_r) = static_cast<uint16_t>(reg_of(operand_r) + reg_of(operand_r2));
      state_.zf = reg_of(operand_r) == 0;
      break;
    case kOpAddImm:
      reg_of(operand_r) = static_cast<uint16_t>(reg_of(operand_r) + operand_imm);
      state_.zf = reg_of(operand_r) == 0;
      break;
    case kOpSub:
      reg_of(operand_r) = static_cast<uint16_t>(reg_of(operand_r) - reg_of(operand_r2));
      state_.zf = reg_of(operand_r) == 0;
      break;
    case kOpCmp:
      state_.zf = reg_of(operand_r) == reg_of(operand_r2);
      break;
    case kOpInc:
      ++reg_of(operand_r);
      state_.zf = reg_of(operand_r) == 0;
      break;
    case kOpDec:
      --reg_of(operand_r);
      state_.zf = reg_of(operand_r) == 0;
      break;
    case kOpJmp:
      next_ip = operand_imm;
      break;
    case kOpJz:
      if (state_.zf) {
        next_ip = operand_imm;
      }
      break;
    case kOpJnz:
      if (!state_.zf) {
        next_ip = operand_imm;
      }
      break;
    case kOpLoop: {
      uint16_t& cx = state_.reg(Vm86Reg::kCx);
      --cx;
      if (cx != 0) {
        next_ip = operand_imm;
      }
      break;
    }
    case kOpLoad: {
      auto w = ReadWord(env, operand_imm);
      if (!w.ok()) {
        return w.status();
      }
      reg_of(operand_r) = *w;
      break;
    }
    case kOpStore: {
      // Encoding: [addr16 at +2], register index at +1.
      const base::Status st = WriteWord(env, operand_imm, reg_of(operand_r));
      if (st != base::Status::kOk) {
        return st;
      }
      break;
    }
    case kOpLoadIdx: {
      auto w = ReadWord(env, state_.reg(Vm86Reg::kSi));
      if (!w.ok()) {
        return w.status();
      }
      reg_of(operand_r) = *w;
      break;
    }
    case kOpStoreIdx: {
      const base::Status st = WriteWord(env, state_.reg(Vm86Reg::kDi), reg_of(operand_r));
      if (st != base::Status::kOk) {
        return st;
      }
      break;
    }
    case kOpInt: {
      state_.ip = next_ip;  // the handler sees the post-INT ip
      if (int_handler_) {
        int_handler_(env, operand_r, state_);
      }
      return !state_.halted;
    }
    default:
      return base::Status::kNotSupported;
  }
  state_.ip = next_ip;
  return true;
}

base::Result<uint64_t> Vm86::RunInterpreted(mk::Env& env, uint64_t max_instructions) {
  uint64_t executed = 0;
  while (!state_.halted && executed < max_instructions) {
    kernel_.cpu().Execute(InterpDispatchRegion());
    kernel_.cpu().Execute(InterpExecRegion());
    auto cont = Step(env);
    if (!cont.ok()) {
      return cont.status();
    }
    ++executed;
    if (!*cont) {
      break;
    }
  }
  return executed;
}

base::Result<Vm86::TranslatedBlock> Vm86::TranslateBlock(mk::Env& env, uint16_t ip) {
  TranslatedBlock block;
  block.start = ip;
  uint16_t cursor = ip;
  while (true) {
    auto op = ReadByte(env, cursor);
    if (!op.ok()) {
      return op.status();
    }
    const uint32_t len = InstructionLength(*op);
    if (len == 0) {
      return base::Status::kNotSupported;
    }
    ++block.guest_instructions;
    // Per-guest-instruction translation cost (decode, emit, fix up).
    kernel_.cpu().ExecuteInstructions(TranslateRegion(), 40);
    cursor = static_cast<uint16_t>(cursor + len);
    if (IsBlockEnd(*op)) {
      break;
    }
  }
  return block;
}

base::Result<uint64_t> Vm86::RunTranslated(mk::Env& env, uint64_t max_instructions) {
  uint64_t executed = 0;
  while (!state_.halted && executed < max_instructions) {
    kernel_.cpu().Execute(CacheLookupRegion());
    auto cached = translation_cache_.find(state_.ip);
    if (cached == translation_cache_.end()) {
      auto block = TranslateBlock(env, state_.ip);
      if (!block.ok()) {
        return block.status();
      }
      ++blocks_translated_;
      cached = translation_cache_.emplace(state_.ip, *block).first;
    } else {
      ++cache_hits_;
    }
    // Execute the block: same semantics as the interpreter, but the
    // per-instruction cost is the translated-code cost, not decode+dispatch.
    const uint32_t block_len = cached->second.guest_instructions;
    for (uint32_t i = 0; i < block_len && !state_.halted && executed < max_instructions; ++i) {
      kernel_.cpu().Execute(TranslatedExecRegion());
      auto cont = Step(env);
      if (!cont.ok()) {
        return cont.status();
      }
      ++executed;
      if (!*cont) {
        return executed;
      }
    }
  }
  return executed;
}

// --- Assembler -----------------------------------------------------------------

Vm86Assembler& Vm86Assembler::MovImm(Vm86Reg r, uint16_t v) {
  code_.push_back(kOpMovImm);
  code_.push_back(static_cast<uint8_t>(r));
  code_.push_back(static_cast<uint8_t>(v));
  code_.push_back(static_cast<uint8_t>(v >> 8));
  return *this;
}
Vm86Assembler& Vm86Assembler::MovReg(Vm86Reg dst, Vm86Reg src) {
  code_.insert(code_.end(),
               {kOpMovReg, static_cast<uint8_t>(dst), static_cast<uint8_t>(src)});
  return *this;
}
Vm86Assembler& Vm86Assembler::Add(Vm86Reg dst, Vm86Reg src) {
  code_.insert(code_.end(), {kOpAdd, static_cast<uint8_t>(dst), static_cast<uint8_t>(src)});
  return *this;
}
Vm86Assembler& Vm86Assembler::AddImm(Vm86Reg dst, uint16_t v) {
  code_.push_back(kOpAddImm);
  code_.push_back(static_cast<uint8_t>(dst));
  code_.push_back(static_cast<uint8_t>(v));
  code_.push_back(static_cast<uint8_t>(v >> 8));
  return *this;
}
Vm86Assembler& Vm86Assembler::Sub(Vm86Reg dst, Vm86Reg src) {
  code_.insert(code_.end(), {kOpSub, static_cast<uint8_t>(dst), static_cast<uint8_t>(src)});
  return *this;
}
Vm86Assembler& Vm86Assembler::Cmp(Vm86Reg a, Vm86Reg b) {
  code_.insert(code_.end(), {kOpCmp, static_cast<uint8_t>(a), static_cast<uint8_t>(b)});
  return *this;
}
Vm86Assembler& Vm86Assembler::Inc(Vm86Reg r) {
  code_.insert(code_.end(), {kOpInc, static_cast<uint8_t>(r)});
  return *this;
}
Vm86Assembler& Vm86Assembler::Dec(Vm86Reg r) {
  code_.insert(code_.end(), {kOpDec, static_cast<uint8_t>(r)});
  return *this;
}
Vm86Assembler& Vm86Assembler::Jmp(uint16_t addr) {
  code_.insert(code_.end(),
               {kOpJmp, static_cast<uint8_t>(addr), static_cast<uint8_t>(addr >> 8)});
  return *this;
}
Vm86Assembler& Vm86Assembler::Jz(uint16_t addr) {
  code_.insert(code_.end(),
               {kOpJz, static_cast<uint8_t>(addr), static_cast<uint8_t>(addr >> 8)});
  return *this;
}
Vm86Assembler& Vm86Assembler::Jnz(uint16_t addr) {
  code_.insert(code_.end(),
               {kOpJnz, static_cast<uint8_t>(addr), static_cast<uint8_t>(addr >> 8)});
  return *this;
}
Vm86Assembler& Vm86Assembler::Load(Vm86Reg r, uint16_t addr) {
  code_.push_back(kOpLoad);
  code_.push_back(static_cast<uint8_t>(r));
  code_.push_back(static_cast<uint8_t>(addr));
  code_.push_back(static_cast<uint8_t>(addr >> 8));
  return *this;
}
Vm86Assembler& Vm86Assembler::Store(uint16_t addr, Vm86Reg r) {
  code_.push_back(kOpStore);
  code_.push_back(static_cast<uint8_t>(r));
  code_.push_back(static_cast<uint8_t>(addr));
  code_.push_back(static_cast<uint8_t>(addr >> 8));
  return *this;
}
Vm86Assembler& Vm86Assembler::LoadIdx(Vm86Reg r) {
  code_.insert(code_.end(), {kOpLoadIdx, static_cast<uint8_t>(r)});
  return *this;
}
Vm86Assembler& Vm86Assembler::StoreIdx(Vm86Reg r) {
  code_.insert(code_.end(), {kOpStoreIdx, static_cast<uint8_t>(r)});
  return *this;
}
Vm86Assembler& Vm86Assembler::Int(uint8_t vector) {
  code_.insert(code_.end(), {kOpInt, vector});
  return *this;
}
Vm86Assembler& Vm86Assembler::Loop(uint16_t addr) {
  code_.insert(code_.end(),
               {kOpLoop, static_cast<uint8_t>(addr), static_cast<uint8_t>(addr >> 8)});
  return *this;
}
Vm86Assembler& Vm86Assembler::Hlt() {
  code_.push_back(kOpHlt);
  return *this;
}
Vm86Assembler& Vm86Assembler::Bytes(const std::vector<uint8_t>& data) {
  code_.insert(code_.end(), data.begin(), data.end());
  return *this;
}

}  // namespace pers
