#include "src/svc/fs/fs_robust.h"

#include <utility>

namespace svc {

RobustFsSession::RobustFsSession(mk::PortName name_service, std::string fs_name,
                                 const mk::RobustCallOptions& opts)
    : names_(name_service), fs_name_(std::move(fs_name)), opts_(opts) {}

void RobustFsSession::EnableCache(const FsCacheOptions& opts) {
  cache_ = std::make_unique<FsCache>(opts);
}

base::Status RobustFsSession::Transport(mk::Env& env, const FsRequest& req, FsReply* reply,
                                        mk::RpcRef* ref) {
  const auto resolver = [this](mk::Env& e) -> base::Result<mk::PortName> {
    // Name cache first. One-shot (TakeName): the robust loop re-invokes the
    // resolver precisely when the right it last handed out failed, so a name
    // is never served twice — the retry always reaches the name server,
    // which knows the respawned instance.
    if (cache_ != nullptr) {
      mk::PortName cached = mk::kNullPort;
      if (cache_->TakeName(fs_name_, &cached)) {
        return cached;
      }
    }
    auto right = names_.Resolve(e, fs_name_);
    if (right.ok() && cache_ != nullptr) {
      cache_->StoreName(fs_name_, *right);
    }
    return right;
  };
  return mk::RpcCallRobust(env, resolver, &cached_port_, &req, sizeof(req), reply, sizeof(*reply),
                           opts_, nullptr, ref);
}

base::Status RobustFsSession::Reopen(mk::Env& env, OpenState& state) {
  // The server we cached against is gone: everything clean is suspect.
  if (cache_ != nullptr) {
    cache_->BumpGeneration();
  }
  FsRequest r;
  r.op = FsOp::kOpen;
  // The file exists and holds data we must keep.
  r.flags = state.flags & ~(kFsExclusive | kFsTruncate);
  r.share = state.share;
  r.SetPath(state.path.c_str());
  FsReply reply;
  const base::Status st = Transport(env, r, &reply, nullptr);
  if (st != base::Status::kOk) {
    return st;
  }
  const auto app = static_cast<base::Status>(reply.status);
  if (app != base::Status::kOk) {
    return app;
  }
  state.server_handle = reply.handle;
  ++reopens_;
  return base::Status::kOk;
}

base::Result<uint64_t> RobustFsSession::Open(mk::Env& env, const std::string& path,
                                             uint32_t flags, FsShare share) {
  FsRequest r;
  r.op = FsOp::kOpen;
  r.flags = flags;
  r.share = share;
  r.SetPath(path.c_str());
  FsReply reply;
  const base::Status st = Transport(env, r, &reply, nullptr);
  if (st != base::Status::kOk) {
    return st;
  }
  if (reply.status != 0) {
    return static_cast<base::Status>(reply.status);
  }
  const uint64_t local = next_local_++;
  handles_[local] = OpenState{path, flags, share, reply.handle};
  if (cache_ != nullptr) {
    cache_->PrimeAttr(local,
                      FileAttr{.size = reply.attr.size, .directory = reply.attr.directory != 0});
  }
  return local;
}

base::Result<uint32_t> RobustFsSession::Read(mk::Env& env, uint64_t handle, uint64_t offset,
                                             void* out, uint32_t len) {
  if (cache_ != nullptr) {
    return cache_->Read(env, *this, handle, offset, out, len);
  }
  return CacheRead(env, handle, offset, out, len);
}

base::Result<uint32_t> RobustFsSession::CacheRead(mk::Env& env, uint64_t handle, uint64_t offset,
                                                  void* out, uint32_t len) {
  auto it = handles_.find(handle);
  if (it == handles_.end()) {
    return base::Status::kInvalidArgument;
  }
  for (int attempt = 0; attempt < 2; ++attempt) {
    FsRequest r;
    r.op = FsOp::kRead;
    r.handle = it->second.server_handle;
    r.offset = offset;
    r.len = len;
    FsReply reply;
    mk::RpcRef ref;
    ref.recv_buf = out;
    ref.recv_cap = len;
    const base::Status st = Transport(env, r, &reply, &ref);
    if (st != base::Status::kOk) {
      return st;
    }
    const auto app = static_cast<base::Status>(reply.status);
    if (app == base::Status::kOk) {
      return reply.len;
    }
    // A respawned server doesn't know our handle: re-open by path and retry.
    if (attempt == 0 && app == base::Status::kInvalidArgument) {
      const base::Status ro = Reopen(env, it->second);
      if (ro != base::Status::kOk) {
        return ro;
      }
      continue;
    }
    return app;
  }
  return base::Status::kInternal;
}

base::Result<uint32_t> RobustFsSession::Write(mk::Env& env, uint64_t handle, uint64_t offset,
                                              const void* data, uint32_t len) {
  if (cache_ != nullptr) {
    return cache_->Write(env, *this, handle, offset, data, len);
  }
  return CacheWrite(env, handle, offset, data, len);
}

base::Result<uint32_t> RobustFsSession::CacheWrite(mk::Env& env, uint64_t handle, uint64_t offset,
                                                   const void* data, uint32_t len) {
  auto it = handles_.find(handle);
  if (it == handles_.end()) {
    return base::Status::kInvalidArgument;
  }
  for (int attempt = 0; attempt < 2; ++attempt) {
    FsRequest r;
    r.op = FsOp::kWrite;
    r.handle = it->second.server_handle;
    r.offset = offset;
    r.len = len;
    FsReply reply;
    mk::RpcRef ref;
    ref.send_data = data;
    ref.send_len = len;
    const base::Status st = Transport(env, r, &reply, &ref);
    if (st != base::Status::kOk) {
      return st;
    }
    const auto app = static_cast<base::Status>(reply.status);
    if (app == base::Status::kOk) {
      return reply.len;
    }
    if (attempt == 0 && app == base::Status::kInvalidArgument) {
      const base::Status ro = Reopen(env, it->second);
      if (ro != base::Status::kOk) {
        return ro;
      }
      continue;
    }
    return app;
  }
  return base::Status::kInternal;
}

base::Result<FileAttr> RobustFsSession::Stat(mk::Env& env, uint64_t handle) {
  if (cache_ != nullptr) {
    return cache_->Stat(env, *this, handle);
  }
  return CacheStat(env, handle);
}

base::Result<FileAttr> RobustFsSession::CacheStat(mk::Env& env, uint64_t handle) {
  auto it = handles_.find(handle);
  if (it == handles_.end()) {
    return base::Status::kInvalidArgument;
  }
  for (int attempt = 0; attempt < 2; ++attempt) {
    FsRequest r;
    r.op = FsOp::kFsStat;
    r.handle = it->second.server_handle;
    FsReply reply;
    const base::Status st = Transport(env, r, &reply, nullptr);
    if (st != base::Status::kOk) {
      return st;
    }
    const auto app = static_cast<base::Status>(reply.status);
    if (app == base::Status::kOk) {
      return FileAttr{.size = reply.attr.size, .directory = reply.attr.directory != 0};
    }
    if (attempt == 0 && app == base::Status::kInvalidArgument) {
      const base::Status ro = Reopen(env, it->second);
      if (ro != base::Status::kOk) {
        return ro;
      }
      continue;
    }
    return app;
  }
  return base::Status::kInternal;
}

base::Result<FsMapping> RobustFsSession::MapObject(mk::Env& env, uint64_t handle,
                                                   uint64_t min_len) {
  auto it = handles_.find(handle);
  if (it == handles_.end()) {
    return base::Status::kInvalidArgument;
  }
  if (cache_ != nullptr) {
    // Mapped pages fault in from the server: publish write-behind first.
    const base::Status fl = cache_->FlushHandle(env, *this, handle);
    if (fl != base::Status::kOk) {
      return fl;
    }
  }
  for (int attempt = 0; attempt < 2; ++attempt) {
    FsRequest r;
    r.op = FsOp::kMapObject;
    r.handle = it->second.server_handle;
    r.len = static_cast<uint32_t>(min_len);
    FsReply reply;
    const base::Status st = Transport(env, r, &reply, nullptr);
    if (st != base::Status::kOk) {
      return st;
    }
    const auto app = static_cast<base::Status>(reply.status);
    if (app == base::Status::kOk) {
      return FsMapping{reply.handle, reply.attr.size};
    }
    if (attempt == 0 && app == base::Status::kInvalidArgument) {
      const base::Status ro = Reopen(env, it->second);
      if (ro != base::Status::kOk) {
        return ro;
      }
      continue;
    }
    return app;
  }
  return base::Status::kInternal;
}

base::Result<uint32_t> RobustFsSession::UnmapObject(mk::Env& env, uint64_t object_id) {
  FsRequest r;
  r.op = FsOp::kMapRelease;
  r.handle = object_id;
  FsReply reply;
  const base::Status st = Transport(env, r, &reply, nullptr);
  if (st != base::Status::kOk) {
    return st;
  }
  const auto app = static_cast<base::Status>(reply.status);
  if (app == base::Status::kInvalidArgument) {
    // The instance that exported the object died, and its map counts with
    // it: the object has no mappings the respawn knows about.
    return 0u;
  }
  if (app != base::Status::kOk) {
    return app;
  }
  return reply.len;
}

base::Status RobustFsSession::Close(mk::Env& env, uint64_t handle) {
  auto it = handles_.find(handle);
  if (it == handles_.end()) {
    return base::Status::kNotFound;
  }
  if (cache_ != nullptr) {
    // Flush write-behind through the robust path while the session still
    // remembers the open (a crash mid-flush re-opens transparently).
    const base::Status fl = cache_->CloseHandle(env, *this, handle);
    if (fl != base::Status::kOk) {
      return fl;
    }
  }
  FsRequest r;
  r.op = FsOp::kClose;
  r.handle = it->second.server_handle;
  FsReply reply;
  const base::Status st = Transport(env, r, &reply, nullptr);
  handles_.erase(it);
  if (st != base::Status::kOk) {
    return st;
  }
  const auto app = static_cast<base::Status>(reply.status);
  if (app == base::Status::kNotFound) {
    // The respawned server never saw this open; nothing to close.
    return base::Status::kOk;
  }
  return app;
}

}  // namespace svc
