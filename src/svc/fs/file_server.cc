#include "src/svc/fs/file_server.h"

#include <algorithm>
#include <cctype>
#include <cstring>

#include "src/base/log.h"
#include "src/mk/pager_protocol.h"

namespace svc {

namespace {
const hw::CodeRegion& WalkRegion() {
  static const hw::CodeRegion r = hw::DefineCode("svc.fs.walk", 150);
  return r;
}
const hw::CodeRegion& UnionSemRegion() {
  // The union-of-personalities semantic checks around every operation.
  static const hw::CodeRegion r = hw::DefineCode("svc.fs.union_sem", 190);
  return r;
}
const hw::CodeRegion& CaseScanRegion() {
  static const hw::CodeRegion r = hw::DefineCode("svc.fs.case_scan", 120);
  return r;
}

std::string LowerCase(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}
}  // namespace

FileServer::FileServer(mk::Kernel& kernel, mk::Task* task, uint64_t handle_base)
    : kernel_(kernel), task_(task), next_handle_(handle_base == 0 ? 1 : handle_base) {
  auto port = kernel_.PortAllocate(*task_);
  WPOS_CHECK(port.ok());
  receive_port_ = *port;
  kernel_.CreateThread(task_, "file-server", [this](mk::Env& env) { Serve(env); },
                       mk::Thread::kDefaultPriority + 2);
}

base::Status FileServer::AddMount(const std::string& prefix, Pfs* pfs) {
  std::string canon = prefix;
  while (canon.size() > 1 && canon.back() == '/') {
    canon.pop_back();
  }
  if (canon.empty() || canon.front() != '/') {
    return base::Status::kInvalidArgument;
  }
  for (const auto& m : mounts_) {
    if (m->prefix == canon) {
      return base::Status::kAlreadyExists;
    }
  }
  auto mount = std::make_unique<Mount>();
  mount->prefix = canon;
  mount->pfs = pfs;
  mounts_.push_back(std::move(mount));
  // Longest prefix first.
  std::sort(mounts_.begin(), mounts_.end(),
            [](const auto& a, const auto& b) { return a->prefix.size() > b->prefix.size(); });
  return base::Status::kOk;
}

mk::PortName FileServer::GrantTo(mk::Task& client) {
  auto name = kernel_.MakeSendRight(*task_, receive_port_, client);
  WPOS_CHECK(name.ok());
  return *name;
}

void FileServer::EnableMapping() {
  if (pager_receive_port_ != mk::kNullPort) {
    return;
  }
  auto port = kernel_.PortAllocate(*task_);
  WPOS_CHECK(port.ok());
  pager_receive_port_ = *port;
  pager_port_raw_ = *kernel_.ResolvePort(*task_, pager_receive_port_);
  kernel_.CreateThread(task_, "fs-pager", [this](mk::Env& env) { ServePager(env); },
                       mk::Thread::kDefaultPriority + 3);
}

void FileServer::TeardownPagerPort() {
  // Every main-loop exit must kill the pager port too, or the fs-pager
  // thread would park in RpcReceive forever and the system never halts
  // cleanly. (Crash teardown needs no help: TerminateTask destroys every
  // port of the task, which aborts the pager thread's receive the same way.)
  if (pager_receive_port_ != mk::kNullPort) {
    (void)kernel_.PortDestroy(*task_, pager_receive_port_);
    pager_receive_port_ = mk::kNullPort;
    pager_port_raw_ = nullptr;
  }
}

void FileServer::InvalidateMappedRange(Mount* mount, NodeId node, uint64_t offset, uint64_t len) {
  if (node_map_.empty() || len == 0) {
    return;
  }
  auto it = node_map_.find(NodeKey(mount, node));
  if (it == node_map_.end()) {
    return;
  }
  MapObjectState& st = map_objects_[it->second];
  const uint64_t end = len > ~0ull - offset ? ~0ull : offset + len;
  const uint64_t first = offset >> hw::kPageShift;
  const uint64_t count = ((end - 1) >> hw::kPageShift) - first + 1;
  // Invalidate through the registry, not our captured reference: after a
  // server crash a client can re-point (adopt) its surviving object under
  // this id, and the invalidation must reach the object clients actually map.
  auto current = kernel_.LookupPagedObject(st.object_id);
  mk::VmObject* target = current != nullptr ? current.get() : st.object.get();
  // Only clean pages are dropped: a dirty mapped page is newer than (or
  // concurrent with) this file write, and msync decides its fate.
  (void)kernel_.VmObjectInvalidate(target, first, count, /*clean_only=*/true);
}

FileServer::Mount* FileServer::MountFor(const std::string& path, std::string* rest) {
  for (const auto& m : mounts_) {
    const std::string& p = m->prefix;
    if (p == "/") {
      *rest = path.substr(1);
      return m.get();
    }
    if (path.compare(0, p.size(), p) == 0 &&
        (path.size() == p.size() || path[p.size()] == '/')) {
      *rest = path.size() == p.size() ? "" : path.substr(p.size() + 1);
      return m.get();
    }
  }
  return nullptr;
}

base::Result<NodeId> FileServer::LookupChild(mk::Env& env, Mount* mount, NodeId dir,
                                             const std::string& name, bool case_insensitive) {
  auto direct = mount->pfs->Lookup(env, dir, name);
  if (direct.ok() || !case_insensitive || mount->pfs->capabilities().case_sensitive == false) {
    return direct;
  }
  // Union-semantics fallback: a case-insensitive personality looking at a
  // case-sensitive store must scan the directory — slow and ambiguous, one
  // of the compromises the paper describes.
  kernel_.cpu().Execute(CaseScanRegion());
  auto entries = mount->pfs->ReadDir(env, dir);
  if (!entries.ok()) {
    return entries.status();
  }
  const std::string wanted = LowerCase(name);
  for (const DirEntry& e : *entries) {
    kernel_.cpu().Execute(CaseScanRegion());
    if (LowerCase(e.name) == wanted) {
      return e.node;
    }
  }
  return base::Status::kNotFound;
}

base::Result<NodeId> FileServer::Walk(mk::Env& env, Mount* mount, const std::string& rest,
                                      bool case_insensitive, NodeId* parent, std::string* leaf,
                                      bool stop_at_parent) {
  kernel_.cpu().Execute(WalkRegion());
  NodeId dir = mount->pfs->root();
  if (parent != nullptr) {
    *parent = dir;
  }
  if (rest.empty()) {
    if (leaf != nullptr) {
      leaf->clear();
    }
    return dir;
  }
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= rest.size()) {
    const size_t slash = rest.find('/', start);
    const std::string part =
        slash == std::string::npos ? rest.substr(start) : rest.substr(start, slash - start);
    if (!part.empty()) {
      parts.push_back(part);
    }
    if (slash == std::string::npos) {
      break;
    }
    start = slash + 1;
  }
  if (parts.empty()) {
    return dir;
  }
  for (size_t i = 0; i + 1 < parts.size(); ++i) {
    auto next = LookupChild(env, mount, dir, parts[i], case_insensitive);
    if (!next.ok()) {
      return next.status();
    }
    dir = *next;
  }
  if (parent != nullptr) {
    *parent = dir;
  }
  if (leaf != nullptr) {
    *leaf = parts.back();
  }
  if (stop_at_parent) {
    return dir;
  }
  return LookupChild(env, mount, dir, parts.back(), case_insensitive);
}

bool FileServer::LockConflicts(const NodeState& state, uint64_t start, uint64_t len,
                               bool exclusive, uint64_t handle) const {
  for (const LockRange& l : state.locks) {
    if (l.handle == handle) {
      continue;  // a handle never conflicts with its own locks
    }
    const bool overlap = start < l.start + l.len && l.start < start + len;
    if (overlap && (exclusive || l.exclusive)) {
      return true;
    }
  }
  return false;
}

void FileServer::HandleOpen(mk::Env& env, const mk::RpcRequest& rpc, const FsRequest& r) {
  FsReply reply;
  kernel_.cpu().Execute(UnionSemRegion());
  std::string rest;
  Mount* mount = MountFor(r.path, &rest);
  if (mount == nullptr) {
    reply.status = static_cast<int32_t>(base::Status::kNotFound);
    env.RpcReply(rpc.token, &reply, sizeof(reply));
    return;
  }
  const bool ci = (r.flags & kFsCaseInsensitive) != 0;
  NodeId parent = 0;
  std::string leaf;
  auto node = Walk(env, mount, rest, ci, &parent, &leaf, /*stop_at_parent=*/false);
  if (!node.ok() && node.status() == base::Status::kNotFound && (r.flags & kFsCreate) != 0 &&
      !leaf.empty()) {
    node = mount->pfs->Create(env, parent, leaf, /*directory=*/false);
  } else if (node.ok() && (r.flags & kFsExclusive) != 0 && (r.flags & kFsCreate) != 0) {
    reply.status = static_cast<int32_t>(base::Status::kAlreadyExists);
    env.RpcReply(rpc.token, &reply, sizeof(reply));
    return;
  }
  if (!node.ok()) {
    reply.status = static_cast<int32_t>(node.status());
    env.RpcReply(rpc.token, &reply, sizeof(reply));
    return;
  }
  // Sharing-mode admission (OS/2 deny modes).
  NodeState& state = node_states_[NodeKey(mount, *node)];
  const bool wants_write = (r.flags & (kFsWrite | kFsTruncate | kFsAppend)) != 0;
  if (state.deny_all > 0 || (wants_write && state.deny_write > 0) ||
      (r.share == FsShare::kDenyAll && state.open_count > 0) ||
      (r.share == FsShare::kDenyWrite && state.writers > 0)) {
    reply.status = static_cast<int32_t>(base::Status::kBusy);
    env.RpcReply(rpc.token, &reply, sizeof(reply));
    return;
  }
  if ((r.flags & kFsTruncate) != 0) {
    const base::Status st = mount->pfs->SetSize(env, *node, 0);
    if (st != base::Status::kOk && st != base::Status::kNotSupported) {
      reply.status = static_cast<int32_t>(st);
      env.RpcReply(rpc.token, &reply, sizeof(reply));
      return;
    }
    InvalidateMappedRange(mount, *node, 0, ~0ull);
  }
  ++state.open_count;
  if (wants_write) {
    ++state.writers;
  }
  if (r.share == FsShare::kDenyWrite) {
    ++state.deny_write;
  } else if (r.share == FsShare::kDenyAll) {
    ++state.deny_all;
  }
  if ((r.flags & kFsDeleteOnClose) != 0) {
    state.delete_on_close = true;
    state.parent = parent;
    state.name = leaf;
  }
  OpenFile of;
  of.mount = mount;
  of.node = *node;
  of.flags = r.flags;
  of.share = r.share;
  of.sim_addr = kernel_.heap().Allocate(96);
  // The open file is represented by a port granted to the client.
  auto file_port_name = kernel_.PortAllocate(*task_);
  WPOS_CHECK(file_port_name.ok());
  of.file_port = *file_port_name;
  const uint64_t handle = next_handle_++;
  open_files_.emplace(handle, of);
  ++opens_;
  reply.handle = handle;
  auto attr = mount->pfs->GetAttr(env, *node);
  if (attr.ok()) {
    reply.attr = {attr->size, attr->directory ? uint8_t{1} : uint8_t{0}};
  }
  env.RpcReply(rpc.token, &reply, sizeof(reply), nullptr, 0, /*grant=*/*file_port_name);
}

void FileServer::HandleClose(mk::Env& env, const mk::RpcRequest& rpc, const FsRequest& r) {
  FsReply reply;
  kernel_.cpu().Execute(UnionSemRegion());
  auto it = open_files_.find(r.handle);
  if (it == open_files_.end()) {
    reply.status = static_cast<int32_t>(base::Status::kNotFound);
    env.RpcReply(rpc.token, &reply, sizeof(reply));
    return;
  }
  OpenFile& of = it->second;
  auto key = NodeKey(of.mount, of.node);
  NodeState& state = node_states_[key];
  // Drop this handle's locks.
  std::erase_if(state.locks, [&](const LockRange& l) { return l.handle == r.handle; });
  --state.open_count;
  if ((of.flags & (kFsWrite | kFsTruncate | kFsAppend)) != 0) {
    --state.writers;
  }
  if (of.share == FsShare::kDenyWrite) {
    --state.deny_write;
  } else if (of.share == FsShare::kDenyAll) {
    --state.deny_all;
  }
  if (state.open_count == 0 && state.delete_on_close && !state.name.empty()) {
    (void)of.mount->pfs->Remove(env, state.parent, state.name);
  }
  if (state.open_count == 0) {
    node_states_.erase(key);
  }
  (void)kernel_.PortDestroy(*task_, of.file_port);
  open_files_.erase(it);
  env.RpcReply(rpc.token, &reply, sizeof(reply));
}

void FileServer::HandleRead(mk::Env& env, const mk::RpcRequest& rpc, const FsRequest& r) {
  FsReply reply;
  static std::vector<uint8_t> buffer(kFsMaxIo);
  auto it = open_files_.find(r.handle);
  if (it == open_files_.end() || r.len > kFsMaxIo) {
    reply.status = static_cast<int32_t>(base::Status::kInvalidArgument);
    env.RpcReply(rpc.token, &reply, sizeof(reply));
    return;
  }
  OpenFile& of = it->second;
  kernel_.cpu().AccessData(of.sim_addr, 48, /*write=*/true);
  auto got = of.mount->pfs->Read(env, of.node, r.offset, buffer.data(), r.len);
  if (!got.ok()) {
    reply.status = static_cast<int32_t>(got.status());
    env.RpcReply(rpc.token, &reply, sizeof(reply));
    return;
  }
  ++reads_;
  reply.len = *got;
  env.RpcReply(rpc.token, &reply, sizeof(reply), buffer.data(), *got);
}

void FileServer::HandleWrite(mk::Env& env, const mk::RpcRequest& rpc, const FsRequest& r,
                             const uint8_t* data, uint32_t data_len) {
  FsReply reply;
  auto it = open_files_.find(r.handle);
  if (it == open_files_.end() || data_len != r.len || r.len > kFsMaxIo) {
    reply.status = static_cast<int32_t>(base::Status::kInvalidArgument);
    env.RpcReply(rpc.token, &reply, sizeof(reply));
    return;
  }
  OpenFile& of = it->second;
  kernel_.cpu().AccessData(of.sim_addr, 48, /*write=*/true);
  uint64_t offset = r.offset;
  if ((of.flags & kFsAppend) != 0) {
    auto attr = of.mount->pfs->GetAttr(env, of.node);
    if (attr.ok()) {
      offset = attr->size;  // UNIX O_APPEND semantics
    }
  }
  // Byte-range lock enforcement.
  NodeState& state = node_states_[NodeKey(of.mount, of.node)];
  if (LockConflicts(state, offset, r.len, /*exclusive=*/true, r.handle)) {
    reply.status = static_cast<int32_t>(base::Status::kBusy);
    env.RpcReply(rpc.token, &reply, sizeof(reply));
    return;
  }
  auto wrote = of.mount->pfs->Write(env, of.node, offset, data, r.len);
  if (!wrote.ok()) {
    reply.status = static_cast<int32_t>(wrote.status());
    env.RpcReply(rpc.token, &reply, sizeof(reply));
    return;
  }
  ++writes_;
  InvalidateMappedRange(of.mount, of.node, offset, *wrote);
  reply.len = *wrote;
  env.RpcReply(rpc.token, &reply, sizeof(reply));
}

void FileServer::HandleReadV(mk::Env& env, const mk::RpcRequest& rpc, const FsRequest& r,
                             const uint8_t* ref_data, uint32_t ref_len) {
  FsReply reply;
  static std::vector<uint8_t> buffer(kFsMaxIo);
  auto it = open_files_.find(r.handle);
  const uint32_t count = r.extent_count;
  if (it == open_files_.end() || count == 0 || count > kFsMaxExtents ||
      ref_len < count * sizeof(FsExtent)) {
    reply.status = static_cast<int32_t>(base::Status::kInvalidArgument);
    env.RpcReply(rpc.token, &reply, sizeof(reply));
    return;
  }
  FsExtent extents[kFsMaxExtents];
  std::memcpy(extents, ref_data, count * sizeof(FsExtent));
  uint64_t total = 0;
  for (uint32_t i = 0; i < count; ++i) {
    total += extents[i].len;
  }
  if (total > kFsMaxIo) {
    reply.status = static_cast<int32_t>(base::Status::kInvalidArgument);
    env.RpcReply(rpc.token, &reply, sizeof(reply));
    return;
  }
  OpenFile& of = it->second;
  kernel_.cpu().AccessData(of.sim_addr, 48, /*write=*/true);
  uint32_t filled = 0;
  for (uint32_t i = 0; i < count; ++i) {
    auto got = of.mount->pfs->Read(env, of.node, extents[i].offset, buffer.data() + filled,
                                   extents[i].len);
    if (!got.ok()) {
      reply.status = static_cast<int32_t>(got.status());
      env.RpcReply(rpc.token, &reply, sizeof(reply));
      return;
    }
    ++reads_;
    filled += *got;
    if (*got < extents[i].len) {
      break;  // short extent (EOF): later extents are not attempted
    }
  }
  reply.len = filled;
  env.RpcReply(rpc.token, &reply, sizeof(reply), buffer.data(), filled);
}

void FileServer::HandleWriteV(mk::Env& env, const mk::RpcRequest& rpc, const FsRequest& r,
                              const uint8_t* ref_data, uint32_t ref_len) {
  FsReply reply;
  auto it = open_files_.find(r.handle);
  const uint32_t count = r.extent_count;
  if (it == open_files_.end() || count == 0 || count > kFsMaxExtents ||
      ref_len < count * sizeof(FsExtent)) {
    reply.status = static_cast<int32_t>(base::Status::kInvalidArgument);
    env.RpcReply(rpc.token, &reply, sizeof(reply));
    return;
  }
  FsExtent extents[kFsMaxExtents];
  std::memcpy(extents, ref_data, count * sizeof(FsExtent));
  uint64_t total = 0;
  for (uint32_t i = 0; i < count; ++i) {
    total += extents[i].len;
  }
  const uint64_t table_bytes = count * sizeof(FsExtent);
  if (total > kFsMaxIo || total != r.len || ref_len != table_bytes + total) {
    reply.status = static_cast<int32_t>(base::Status::kInvalidArgument);
    env.RpcReply(rpc.token, &reply, sizeof(reply));
    return;
  }
  OpenFile& of = it->second;
  kernel_.cpu().AccessData(of.sim_addr, 48, /*write=*/true);
  NodeState& state = node_states_[NodeKey(of.mount, of.node)];
  for (uint32_t i = 0; i < count; ++i) {
    if (LockConflicts(state, extents[i].offset, extents[i].len, /*exclusive=*/true, r.handle)) {
      reply.status = static_cast<int32_t>(base::Status::kBusy);
      env.RpcReply(rpc.token, &reply, sizeof(reply));
      return;
    }
  }
  const uint8_t* data = ref_data + table_bytes;
  uint32_t written = 0;
  for (uint32_t i = 0; i < count; ++i) {
    auto wrote = of.mount->pfs->Write(env, of.node, extents[i].offset, data + written,
                                      extents[i].len);
    if (!wrote.ok()) {
      reply.status = static_cast<int32_t>(wrote.status());
      env.RpcReply(rpc.token, &reply, sizeof(reply));
      return;
    }
    ++writes_;
    InvalidateMappedRange(of.mount, of.node, extents[i].offset, *wrote);
    written += *wrote;
    if (*wrote < extents[i].len) {
      break;
    }
  }
  reply.len = written;
  env.RpcReply(rpc.token, &reply, sizeof(reply));
}

void FileServer::HandleLock(mk::Env& env, const mk::RpcRequest& rpc, const FsRequest& r) {
  FsReply reply;
  kernel_.cpu().Execute(UnionSemRegion());
  auto it = open_files_.find(r.handle);
  if (it == open_files_.end()) {
    reply.status = static_cast<int32_t>(base::Status::kNotFound);
    env.RpcReply(rpc.token, &reply, sizeof(reply));
    return;
  }
  OpenFile& of = it->second;
  NodeState& state = node_states_[NodeKey(of.mount, of.node)];
  if (r.op == FsOp::kLock) {
    if (LockConflicts(state, r.offset, r.len, r.lock_exclusive != 0, r.handle)) {
      reply.status = static_cast<int32_t>(base::Status::kBusy);
    } else {
      state.locks.push_back({r.offset, r.len, r.lock_exclusive != 0, r.handle});
    }
  } else {
    const size_t before = state.locks.size();
    std::erase_if(state.locks, [&](const LockRange& l) {
      return l.handle == r.handle && l.start == r.offset && l.len == r.len;
    });
    if (state.locks.size() == before) {
      reply.status = static_cast<int32_t>(base::Status::kNotFound);
    }
  }
  env.RpcReply(rpc.token, &reply, sizeof(reply));
}

void FileServer::HandleStat(mk::Env& env, const mk::RpcRequest& rpc, const FsRequest& r) {
  // Handle-based GetAttr: no path walk, so a hot stat (fstat, SEEK_END,
  // O_APPEND positioning) costs one table lookup instead of a name walk.
  // A stale handle answers kInvalidArgument, the same signal the robust
  // session already re-opens on.
  FsReply reply;
  kernel_.cpu().Execute(UnionSemRegion());
  auto it = open_files_.find(r.handle);
  if (it == open_files_.end()) {
    reply.status = static_cast<int32_t>(base::Status::kInvalidArgument);
    env.RpcReply(rpc.token, &reply, sizeof(reply));
    return;
  }
  OpenFile& of = it->second;
  kernel_.cpu().AccessData(of.sim_addr, 48, /*write=*/false);
  auto attr = of.mount->pfs->GetAttr(env, of.node);
  if (!attr.ok()) {
    reply.status = static_cast<int32_t>(attr.status());
  } else {
    reply.attr = {attr->size, attr->directory ? uint8_t{1} : uint8_t{0}};
  }
  env.RpcReply(rpc.token, &reply, sizeof(reply));
}

void FileServer::HandleMapObject(mk::Env& env, const mk::RpcRequest& rpc, const FsRequest& r) {
  FsReply reply;
  kernel_.cpu().Execute(UnionSemRegion());
  if (pager_port_raw_ == nullptr) {
    reply.status = static_cast<int32_t>(base::Status::kNotSupported);
    env.RpcReply(rpc.token, &reply, sizeof(reply));
    return;
  }
  auto it = open_files_.find(r.handle);
  if (it == open_files_.end()) {
    reply.status = static_cast<int32_t>(base::Status::kInvalidArgument);
    env.RpcReply(rpc.token, &reply, sizeof(reply));
    return;
  }
  OpenFile& of = it->second;
  auto attr = of.mount->pfs->GetAttr(env, of.node);
  if (!attr.ok()) {
    reply.status = static_cast<int32_t>(attr.status());
    env.RpcReply(rpc.token, &reply, sizeof(reply));
    return;
  }
  const auto key = NodeKey(of.mount, of.node);
  auto existing = node_map_.find(key);
  if (existing != node_map_.end()) {
    // All mappings of one node share one memory object: that sharing IS the
    // coherence between two clients mapping the same file.
    MapObjectState& st = map_objects_[existing->second];
    ++st.map_count;
    reply.handle = st.object_id;
  } else {
    const uint64_t want = std::max<uint64_t>(std::max<uint64_t>(r.len, attr->size), 1);
    auto object = std::make_shared<mk::VmObject>(hw::PageRound(want));
    object->EnableDirtyTracking();
    const uint64_t id = kernel_.RegisterPagedObject(object, pager_port_raw_, 0);
    MapObjectState st;
    st.object = std::move(object);
    st.object_id = id;
    st.map_count = 1;
    st.mount = of.mount;
    st.node = of.node;
    node_map_.emplace(key, id);
    map_objects_.emplace(id, std::move(st));
    reply.handle = id;
  }
  reply.attr = {attr->size, attr->directory ? uint8_t{1} : uint8_t{0}};
  env.RpcReply(rpc.token, &reply, sizeof(reply));
}

void FileServer::HandleMapRelease(mk::Env& env, const mk::RpcRequest& rpc, const FsRequest& r) {
  FsReply reply;
  kernel_.cpu().Execute(UnionSemRegion());
  auto it = map_objects_.find(r.handle);
  if (it == map_objects_.end()) {
    reply.status = static_cast<int32_t>(base::Status::kInvalidArgument);
  } else {
    if (it->second.map_count > 0) {
      --it->second.map_count;
    }
    // State lives until the kernel's kObjectTerminate reaches the pager port;
    // the count only tells the caller whether it was the last mapper.
    reply.len = it->second.map_count;
  }
  env.RpcReply(rpc.token, &reply, sizeof(reply));
}

void FileServer::ServePager(mk::Env& env) {
  static const hw::CodeRegion kPagerLoop = hw::DefineCode("svc.fs.pager", 230);
  mk::PagerRequest req;
  // Out: a full readahead batch. In: one page (a kDataWrite's payload).
  std::vector<uint8_t> io(static_cast<size_t>(mk::Costs::kMmapReadaheadPages) * hw::kPageSize);
  std::vector<uint8_t> page(hw::kPageSize);
  while (true) {
    mk::RpcRef ref;
    ref.recv_buf = page.data();
    ref.recv_cap = static_cast<uint32_t>(page.size());
    auto rpc = env.RpcReceive(pager_receive_port_, &req, sizeof(req), &ref);
    if (!rpc.ok()) {
      return;  // port torn down with the server
    }
    mk::trace::Tracer& tracer = kernel_.tracer();
    mk::trace::ScopedSpan op_span(tracer, mk::trace::SpanKind::kServerOp,
                                  mk::trace::EventType::kServerDispatch,
                                  mk::trace::EventType::kServerDone,
                                  static_cast<uint64_t>(req.op));
    op_span.set_end_payload(static_cast<uint64_t>(req.op));
    tracer.LabelSpan(op_span.id(), "fs_pager");
    ++tracer.metrics().Counter("server.fs.pager_ops");
    kernel_.cpu().Execute(kPagerLoop);
    mk::PagerReply reply{};
    auto it = map_objects_.find(req.object_id);
    switch (req.op) {
      case mk::PagerOp::kDataRequest: {
        if (it == map_objects_.end()) {
          reply.status = static_cast<int32_t>(base::Status::kInvalidArgument);
          env.RpcReply(rpc->token, &reply, sizeof(reply));
          break;
        }
        MapObjectState& st = it->second;
        const uint64_t object_pages = st.object->size() >> hw::kPageShift;
        uint64_t want = 1;
        if (st.object->dirty_tracking() && req.page_index < object_pages) {
          want = std::min<uint64_t>(mk::Costs::kMmapReadaheadPages, object_pages - req.page_index);
        }
        const uint32_t bytes = static_cast<uint32_t>(want * hw::kPageSize);
        std::memset(io.data(), 0, bytes);
        // A short (or failed) read leaves zeros: pages at and past EOF map
        // in as zeros, the same bytes read() can never return.
        (void)st.mount->pfs->Read(env, st.node, req.page_index << hw::kPageShift, io.data(),
                                  bytes);
        ++pageins_;
        env.RpcReply(rpc->token, &reply, sizeof(reply), io.data(), bytes);
        break;
      }
      case mk::PagerOp::kDataWrite: {
        if (it == map_objects_.end() || ref.recv_len != hw::kPageSize) {
          reply.status = static_cast<int32_t>(base::Status::kInvalidArgument);
          env.RpcReply(rpc->token, &reply, sizeof(reply));
          break;
        }
        MapObjectState& st = it->second;
        const uint64_t offset = req.page_index << hw::kPageShift;
        auto attr = st.mount->pfs->GetAttr(env, st.node);
        const uint64_t limit = attr.ok() ? attr->size : 0;
        if (offset < limit) {
          // Writeback never extends the file: a mapped store past EOF is
          // only durable up to the current size (msync through a session
          // that also grows the file is the personality's business).
          const uint32_t n =
              static_cast<uint32_t>(std::min<uint64_t>(hw::kPageSize, limit - offset));
          auto wrote = st.mount->pfs->Write(env, st.node, offset, page.data(), n);
          if (!wrote.ok()) {
            reply.status = static_cast<int32_t>(wrote.status());
          }
        }
        ++pageouts_;
        env.RpcReply(rpc->token, &reply, sizeof(reply));
        break;
      }
      case mk::PagerOp::kObjectSetup: {
        if (it == map_objects_.end()) {
          reply.status = static_cast<int32_t>(base::Status::kInvalidArgument);
        }
        env.RpcReply(rpc->token, &reply, sizeof(reply));
        break;
      }
      case mk::PagerOp::kObjectTerminate: {
        if (it != map_objects_.end()) {
          node_map_.erase(NodeKey(it->second.mount, it->second.node));
          map_objects_.erase(it);
        }
        env.RpcReply(rpc->token, &reply, sizeof(reply));
        break;
      }
      default:
        reply.status = static_cast<int32_t>(base::Status::kNotSupported);
        env.RpcReply(rpc->token, &reply, sizeof(reply));
    }
  }
}

void FileServer::HandlePathOp(mk::Env& env, const mk::RpcRequest& rpc, const FsRequest& r) {
  FsReply reply;
  kernel_.cpu().Execute(UnionSemRegion());
  std::string rest;
  Mount* mount = MountFor(r.path, &rest);
  if (mount == nullptr) {
    reply.status = static_cast<int32_t>(base::Status::kNotFound);
    env.RpcReply(rpc.token, &reply, sizeof(reply));
    return;
  }
  const bool ci = (r.flags & kFsCaseInsensitive) != 0;
  switch (r.op) {
    case FsOp::kGetAttr: {
      auto node = Walk(env, mount, rest, ci, nullptr, nullptr, false);
      if (!node.ok()) {
        reply.status = static_cast<int32_t>(node.status());
        break;
      }
      auto attr = mount->pfs->GetAttr(env, *node);
      if (!attr.ok()) {
        reply.status = static_cast<int32_t>(attr.status());
        break;
      }
      reply.attr = {attr->size, attr->directory ? uint8_t{1} : uint8_t{0}};
      break;
    }
    case FsOp::kMkdir: {
      NodeId parent = 0;
      std::string leaf;
      auto st = Walk(env, mount, rest, ci, &parent, &leaf, /*stop_at_parent=*/true);
      if (!st.ok()) {
        reply.status = static_cast<int32_t>(st.status());
        break;
      }
      if (leaf.empty()) {
        reply.status = static_cast<int32_t>(base::Status::kInvalidArgument);
        break;
      }
      auto node = mount->pfs->Create(env, parent, leaf, /*directory=*/true);
      reply.status = static_cast<int32_t>(node.status());
      break;
    }
    case FsOp::kUnlink: {
      NodeId parent = 0;
      std::string leaf;
      auto node = Walk(env, mount, rest, ci, &parent, &leaf, false);
      if (!node.ok()) {
        reply.status = static_cast<int32_t>(node.status());
        break;
      }
      // Union rule: an open file cannot be unlinked by path on OS/2; UNIX
      // would allow it. The server takes the restrictive intersection and
      // reports busy (one of the inevitable compromises).
      if (node_states_.contains(NodeKey(mount, *node))) {
        reply.status = static_cast<int32_t>(base::Status::kBusy);
        break;
      }
      reply.status = static_cast<int32_t>(mount->pfs->Remove(env, parent, leaf));
      break;
    }
    case FsOp::kRename: {
      NodeId from_parent = 0;
      std::string from_leaf;
      auto node = Walk(env, mount, rest, ci, &from_parent, &from_leaf, false);
      if (!node.ok()) {
        reply.status = static_cast<int32_t>(node.status());
        break;
      }
      std::string rest2;
      Mount* mount2 = MountFor(r.path2, &rest2);
      if (mount2 != mount) {
        reply.status = static_cast<int32_t>(base::Status::kNotSupported);  // cross-FS rename
        break;
      }
      NodeId to_parent = 0;
      std::string to_leaf;
      auto tst = Walk(env, mount, rest2, ci, &to_parent, &to_leaf, /*stop_at_parent=*/true);
      if (!tst.ok()) {
        reply.status = static_cast<int32_t>(tst.status());
        break;
      }
      reply.status = static_cast<int32_t>(
          mount->pfs->Rename(env, from_parent, from_leaf, to_parent, to_leaf));
      break;
    }
    case FsOp::kReadDir: {
      auto node = Walk(env, mount, rest, ci, nullptr, nullptr, false);
      if (!node.ok()) {
        reply.status = static_cast<int32_t>(node.status());
        break;
      }
      auto entries = mount->pfs->ReadDir(env, *node);
      if (!entries.ok()) {
        reply.status = static_cast<int32_t>(entries.status());
        break;
      }
      std::vector<FsDirEntryWire> wire;
      for (const DirEntry& e : *entries) {
        FsDirEntryWire w;
        std::strncpy(w.name, e.name.c_str(), sizeof(w.name) - 1);
        w.directory = e.directory ? 1 : 0;
        wire.push_back(w);
        if (wire.size() * sizeof(FsDirEntryWire) + sizeof(FsDirEntryWire) > kFsMaxIo) {
          break;
        }
      }
      reply.len = static_cast<uint32_t>(wire.size());
      env.RpcReply(rpc.token, &reply, sizeof(reply), wire.data(),
                   static_cast<uint32_t>(wire.size() * sizeof(FsDirEntryWire)));
      return;
    }
    case FsOp::kSetEa: {
      auto node = Walk(env, mount, rest, ci, nullptr, nullptr, false);
      if (!node.ok()) {
        reply.status = static_cast<int32_t>(node.status());
        break;
      }
      // Value travels in path2 after the key's NUL: "key\0value\0". A raw
      // request is untrusted: both strings must terminate inside the fixed
      // buffer or the parse would run off the end of the request struct.
      const void* key_nul = std::memchr(r.path2, '\0', kFsMaxPath);
      if (key_nul == nullptr) {
        reply.status = static_cast<int32_t>(base::Status::kInvalidArgument);
        break;
      }
      const std::string key(r.path2);
      const size_t value_off = key.size() + 1;
      if (value_off >= kFsMaxPath ||
          std::memchr(r.path2 + value_off, '\0', kFsMaxPath - value_off) == nullptr) {
        reply.status = static_cast<int32_t>(base::Status::kInvalidArgument);
        break;
      }
      const char* value = r.path2 + value_off;
      reply.status = static_cast<int32_t>(mount->pfs->SetEa(env, *node, key, value));
      break;
    }
    case FsOp::kGetEa: {
      auto node = Walk(env, mount, rest, ci, nullptr, nullptr, false);
      if (!node.ok()) {
        reply.status = static_cast<int32_t>(node.status());
        break;
      }
      auto value = mount->pfs->GetEa(env, *node, r.path2);
      if (!value.ok()) {
        reply.status = static_cast<int32_t>(value.status());
        break;
      }
      reply.len = static_cast<uint32_t>(value->size());
      env.RpcReply(rpc.token, &reply, sizeof(reply), value->data(),
                   static_cast<uint32_t>(value->size()));
      return;
    }
    case FsOp::kSync: {
      for (const auto& m : mounts_) {
        (void)m->pfs->Sync(env);
      }
      break;
    }
    case FsOp::kSetSize: {
      auto it = open_files_.find(r.handle);
      if (it == open_files_.end()) {
        reply.status = static_cast<int32_t>(base::Status::kNotFound);
        break;
      }
      reply.status = static_cast<int32_t>(
          it->second.mount->pfs->SetSize(env, it->second.node, r.offset));
      if (reply.status == 0) {
        // Resizing moves EOF under every mapped view: drop all clean pages.
        InvalidateMappedRange(it->second.mount, it->second.node, 0, ~0ull);
      }
      break;
    }
    default:
      reply.status = static_cast<int32_t>(base::Status::kNotSupported);
  }
  env.RpcReply(rpc.token, &reply, sizeof(reply));
}

void FileServer::Serve(mk::Env& env) {
  static const hw::CodeRegion kLoop = hw::DefineCode("loop.fs", mk::Costs::kRpcServerLoop);
  static const hw::CodeRegion kStub = hw::DefineCode("stub.fs", mk::Costs::kRpcServerStub);
  FsRequest r;
  // kWriteV carries its extent table in front of the payload bytes.
  std::vector<uint8_t> ref_buf(kFsMaxIo + kFsMaxExtents * sizeof(FsExtent));
  if (health_right_ != mk::kNullPort) {
    SendHeartbeat(env);  // first beat arms the watchdog deadline
  }
  while (true) {
    mk::RpcRef ref;
    ref.recv_buf = ref_buf.data();
    ref.recv_cap = static_cast<uint32_t>(ref_buf.size());
    const uint64_t receive_timeout = health_right_ != mk::kNullPort && heartbeat_every_ns_ != 0
                                         ? heartbeat_every_ns_
                                         : mk::kForever;
    auto rpc = env.RpcReceive(receive_port_, &r, sizeof(r), &ref, receive_timeout);
    if (!rpc.ok()) {
      if (rpc.status() == base::Status::kTimedOut) {
        if (!running_) {
          // Stopped while idle: the timed receive doubles as the shutdown
          // poll. Same teardown as the post-handler exit below.
          (void)kernel_.PortDestroy(*task_, receive_port_);
          TeardownPagerPort();
          return;
        }
        SendHeartbeat(env);  // idle tick: nothing arrived within the interval
        continue;
      }
      TeardownPagerPort();
      return;
    }
    if (health_right_ != mk::kNullPort) {
      ++requests_since_beat_;
      if (requests_since_beat_ >= heartbeat_every_requests_ ||
          (heartbeat_every_ns_ != 0 && env.NowNs() - last_beat_ns_ >= heartbeat_every_ns_)) {
        SendHeartbeat(env);
      }
    }
    // Fault point: handler entry, matching mk::ServerLoop's placement.
    switch (kernel_.faults().Fire(mk::fault::FaultPoint::kServerHandlerEntry)) {
      case mk::fault::FaultMode::kNone:
        break;
      case mk::fault::FaultMode::kCrashTask:
        // Teardown destroys the receive port; queued and in-flight callers
        // observe kPortDead and the restart manager (if any) takes over.
        kernel_.TerminateTask(task_);
        return;
      case mk::fault::FaultMode::kDropReply:
        continue;  // the client waits out its deadline
      case mk::fault::FaultMode::kKillPort:
        (void)kernel_.PortDestroy(*task_, receive_port_);
        TeardownPagerPort();
        return;
      case mk::fault::FaultMode::kTransientError:
        env.RpcReply(rpc->token, nullptr, 0, nullptr, 0, mk::kNullPort, base::Status::kBusy);
        continue;
      case mk::fault::FaultMode::kStallTask:
        // Wedged mid-request: stop heartbeating and park forever. Only the
        // watchdog's TerminateTask recovers this — the teardown fails this
        // client and every queued caller with kPortDead.
        (void)kernel_.StallForever();
        return;  // reached only once task teardown aborts the stall
      case mk::fault::FaultMode::kDelayReply:
        (void)env.SleepNs(
            kernel_.faults().DrawDelayNs(mk::fault::FaultPoint::kServerHandlerEntry));
        break;
      case mk::fault::FaultMode::kCount:
        break;
    }
    mk::trace::Tracer& tracer = kernel_.tracer();
    mk::trace::ScopedSpan op_span(tracer, mk::trace::SpanKind::kServerOp,
                                  mk::trace::EventType::kServerDispatch,
                                  mk::trace::EventType::kServerDone,
                                  static_cast<uint64_t>(r.op));
    op_span.set_end_payload(static_cast<uint64_t>(r.op));
    tracer.LabelSpan(op_span.id(), "fs");
    ++tracer.metrics().Counter("server.fs.ops");
    kernel_.cpu().Execute(kLoop);
    kernel_.cpu().Execute(kStub);
    switch (r.op) {
      case FsOp::kOpen:
        HandleOpen(env, *rpc, r);
        break;
      case FsOp::kClose:
        HandleClose(env, *rpc, r);
        break;
      case FsOp::kRead:
        HandleRead(env, *rpc, r);
        break;
      case FsOp::kWrite:
        HandleWrite(env, *rpc, r, ref_buf.data(), ref.recv_len);
        break;
      case FsOp::kReadV:
        HandleReadV(env, *rpc, r, ref_buf.data(), ref.recv_len);
        break;
      case FsOp::kWriteV:
        HandleWriteV(env, *rpc, r, ref_buf.data(), ref.recv_len);
        break;
      case FsOp::kLock:
      case FsOp::kUnlock:
        HandleLock(env, *rpc, r);
        break;
      case FsOp::kFsStat:
        HandleStat(env, *rpc, r);
        break;
      case FsOp::kMapObject:
        HandleMapObject(env, *rpc, r);
        break;
      case FsOp::kMapRelease:
        HandleMapRelease(env, *rpc, r);
        break;
      default:
        HandlePathOp(env, *rpc, r);
    }

    if (!running_) {
      // Server shutdown: kill the service port so queued and future
      // callers fail with kPortDead instead of blocking forever.
      (void)kernel_.PortDestroy(*task_, receive_port_);
      TeardownPagerPort();
      return;
    }
  }
}

void FileServer::SendHeartbeat(mk::Env& env) {
  mk::HeartbeatPing ping{env.task().id()};
  mk::MachMessage msg;
  msg.msg_id = mk::kHeartbeatMsgId;
  msg.dest = health_right_;
  msg.inline_data.assign(reinterpret_cast<const uint8_t*>(&ping),
                         reinterpret_cast<const uint8_t*>(&ping) + sizeof(ping));
  // Zero timeout: a full or dead health port must never block the server.
  (void)kernel_.MachMsgSend(std::move(msg), /*timeout_ns=*/0);
  last_beat_ns_ = env.NowNs();
  requests_since_beat_ = 0;
}

// --- Client ------------------------------------------------------------------------------

void FsClient::EnableCache(const FsCacheOptions& opts) {
  cache_ = std::make_unique<FsCache>(opts);
}

base::Result<uint64_t> FsClient::Open(mk::Env& env, const std::string& path, uint32_t flags,
                                      FsShare share) {
  FsRequest r;
  r.op = FsOp::kOpen;
  r.flags = flags;
  r.share = share;
  r.SetPath(path.c_str());
  FsReply reply;
  mk::PortName granted = mk::kNullPort;
  const base::Status st = stub_.Call(env, r, &reply, nullptr, nullptr, 0, &granted);
  if (st != base::Status::kOk) {
    return st;
  }
  if (reply.status != 0) {
    return static_cast<base::Status>(reply.status);
  }
  if (cache_ != nullptr) {
    // The open reply already carries the attributes: the first Stat is free.
    cache_->PrimeAttr(reply.handle,
                      FileAttr{.size = reply.attr.size, .directory = reply.attr.directory != 0});
  }
  return reply.handle;
}

base::Status FsClient::Close(mk::Env& env, uint64_t handle) {
  if (cache_ != nullptr) {
    // Flush the handle's write-behind run while the handle is still open.
    const base::Status fl = cache_->CloseHandle(env, *this, handle);
    if (fl != base::Status::kOk) {
      return fl;
    }
  }
  FsRequest r;
  r.op = FsOp::kClose;
  r.handle = handle;
  FsReply reply;
  const base::Status st = stub_.Call(env, r, &reply);
  return st != base::Status::kOk ? st : static_cast<base::Status>(reply.status);
}

base::Result<uint32_t> FsClient::Read(mk::Env& env, uint64_t handle, uint64_t offset, void* out,
                                      uint32_t len) {
  if (cache_ != nullptr) {
    return cache_->Read(env, *this, handle, offset, out, len);
  }
  return CacheRead(env, handle, offset, out, len);
}

base::Result<uint32_t> FsClient::CacheRead(mk::Env& env, uint64_t handle, uint64_t offset,
                                           void* out, uint32_t len) {
  FsRequest r;
  r.op = FsOp::kRead;
  r.handle = handle;
  r.offset = offset;
  r.len = std::min(len, kFsMaxIo);
  FsReply reply;
  mk::RpcRef ref;
  ref.recv_buf = out;
  ref.recv_cap = len;
  const base::Status st = stub_.Call(env, r, &reply, &ref);
  if (st != base::Status::kOk) {
    return st;
  }
  if (reply.status != 0) {
    return static_cast<base::Status>(reply.status);
  }
  return reply.len;
}

base::Result<uint32_t> FsClient::Write(mk::Env& env, uint64_t handle, uint64_t offset,
                                       const void* data, uint32_t len) {
  if (cache_ != nullptr) {
    return cache_->Write(env, *this, handle, offset, data, len);
  }
  return CacheWrite(env, handle, offset, data, len);
}

base::Result<uint32_t> FsClient::CacheWrite(mk::Env& env, uint64_t handle, uint64_t offset,
                                            const void* data, uint32_t len) {
  FsRequest r;
  r.op = FsOp::kWrite;
  r.handle = handle;
  r.offset = offset;
  r.len = std::min(len, kFsMaxIo);  // short write past the cap, like Read
  FsReply reply;
  mk::RpcRef ref;
  ref.send_data = data;
  ref.send_len = r.len;
  const base::Status st = stub_.Call(env, r, &reply, &ref);
  if (st != base::Status::kOk) {
    return st;
  }
  if (reply.status != 0) {
    return static_cast<base::Status>(reply.status);
  }
  return reply.len;
}

base::Result<uint32_t> FsClient::ReadV(mk::Env& env, uint64_t handle,
                                       const FsReadExtent* extents, uint32_t count) {
  if (count == 0 || count > kFsMaxExtents) {
    return base::Status::kInvalidArgument;
  }
  if (cache_ != nullptr) {
    // The scatter read goes to the server; pending write-behind must land
    // first so it observes them.
    const base::Status fl = cache_->FlushHandle(env, *this, handle);
    if (fl != base::Status::kOk) {
      return fl;
    }
  }
  FsExtent wire[kFsMaxExtents];
  uint64_t total = 0;
  for (uint32_t i = 0; i < count; ++i) {
    wire[i].offset = extents[i].offset;
    wire[i].len = extents[i].len;
    total += extents[i].len;
  }
  if (total > kFsMaxIo) {
    return base::Status::kInvalidArgument;
  }
  FsRequest r;
  r.op = FsOp::kReadV;
  r.handle = handle;
  r.extent_count = count;
  r.len = static_cast<uint32_t>(total);
  // The extent table rides out in the ref's send direction; the concatenated
  // extent data comes back in its receive direction — one RPC each way.
  std::vector<uint8_t> data(total);
  FsReply reply;
  mk::RpcRef ref;
  ref.send_data = wire;
  ref.send_len = static_cast<uint32_t>(count * sizeof(FsExtent));
  ref.recv_buf = data.data();
  ref.recv_cap = static_cast<uint32_t>(data.size());
  const base::Status st = stub_.Call(env, r, &reply, &ref);
  if (st != base::Status::kOk) {
    return st;
  }
  if (reply.status != 0) {
    return static_cast<base::Status>(reply.status);
  }
  // Scatter the concatenated payload back into the caller's buffers.
  uint32_t consumed = 0;
  for (uint32_t i = 0; i < count && consumed < reply.len; ++i) {
    const uint32_t n = std::min(extents[i].len, reply.len - consumed);
    std::memcpy(extents[i].buf, data.data() + consumed, n);
    consumed += n;
  }
  return reply.len;
}

base::Result<uint32_t> FsClient::WriteV(mk::Env& env, uint64_t handle,
                                        const FsWriteExtent* extents, uint32_t count) {
  if (count == 0 || count > kFsMaxExtents) {
    return base::Status::kInvalidArgument;
  }
  if (cache_ != nullptr) {
    // Side door past the write-behind run: keep ordering (flush first), then
    // drop cached read/attr state the gather write may supersede.
    const base::Status fl = cache_->FlushHandle(env, *this, handle);
    if (fl != base::Status::kOk) {
      return fl;
    }
    cache_->InvalidateHandle(handle);
  }
  uint64_t total = 0;
  for (uint32_t i = 0; i < count; ++i) {
    total += extents[i].len;
  }
  if (total > kFsMaxIo) {
    return base::Status::kInvalidArgument;
  }
  // Gather [extent table][payload bytes] into one bulk buffer.
  const uint32_t table_bytes = static_cast<uint32_t>(count * sizeof(FsExtent));
  std::vector<uint8_t> bulk(table_bytes + total);
  FsExtent* wire = reinterpret_cast<FsExtent*>(bulk.data());
  uint32_t filled = 0;
  for (uint32_t i = 0; i < count; ++i) {
    wire[i] = FsExtent{extents[i].offset, extents[i].len, 0};
    std::memcpy(bulk.data() + table_bytes + filled, extents[i].buf, extents[i].len);
    filled += extents[i].len;
  }
  FsRequest r;
  r.op = FsOp::kWriteV;
  r.handle = handle;
  r.extent_count = count;
  r.len = static_cast<uint32_t>(total);
  FsReply reply;
  mk::RpcRef ref;
  ref.send_data = bulk.data();
  ref.send_len = static_cast<uint32_t>(bulk.size());
  const base::Status st = stub_.Call(env, r, &reply, &ref);
  if (st != base::Status::kOk) {
    return st;
  }
  if (reply.status != 0) {
    return static_cast<base::Status>(reply.status);
  }
  return reply.len;
}

base::Result<FileAttr> FsClient::GetAttr(mk::Env& env, const std::string& path) {
  FsRequest r;
  r.op = FsOp::kGetAttr;
  r.SetPath(path.c_str());
  FsReply reply;
  const base::Status st = stub_.Call(env, r, &reply);
  if (st != base::Status::kOk) {
    return st;
  }
  if (reply.status != 0) {
    return static_cast<base::Status>(reply.status);
  }
  return FileAttr{.size = reply.attr.size, .directory = reply.attr.directory != 0};
}

base::Result<FileAttr> FsClient::Stat(mk::Env& env, uint64_t handle) {
  if (cache_ != nullptr) {
    return cache_->Stat(env, *this, handle);
  }
  return CacheStat(env, handle);
}

base::Result<FileAttr> FsClient::CacheStat(mk::Env& env, uint64_t handle) {
  FsRequest r;
  r.op = FsOp::kFsStat;
  r.handle = handle;
  FsReply reply;
  const base::Status st = stub_.Call(env, r, &reply);
  if (st != base::Status::kOk) {
    return st;
  }
  if (reply.status != 0) {
    return static_cast<base::Status>(reply.status);
  }
  return FileAttr{.size = reply.attr.size, .directory = reply.attr.directory != 0};
}

base::Status FsClient::SetSize(mk::Env& env, uint64_t handle, uint64_t size) {
  if (cache_ != nullptr) {
    // Truncation past buffered bytes must not resurrect them: flush, call,
    // then drop every cached view of the handle.
    const base::Status fl = cache_->FlushHandle(env, *this, handle);
    if (fl != base::Status::kOk) {
      return fl;
    }
    cache_->InvalidateHandle(handle);
  }
  FsRequest r;
  r.op = FsOp::kSetSize;
  r.handle = handle;
  r.offset = size;
  FsReply reply;
  const base::Status st = stub_.Call(env, r, &reply);
  return st != base::Status::kOk ? st : static_cast<base::Status>(reply.status);
}

base::Status FsClient::Mkdir(mk::Env& env, const std::string& path) {
  FsRequest r;
  r.op = FsOp::kMkdir;
  r.SetPath(path.c_str());
  FsReply reply;
  const base::Status st = stub_.Call(env, r, &reply);
  return st != base::Status::kOk ? st : static_cast<base::Status>(reply.status);
}

base::Result<std::vector<DirEntry>> FsClient::ReadDir(mk::Env& env, const std::string& path) {
  FsRequest r;
  r.op = FsOp::kReadDir;
  r.SetPath(path.c_str());
  FsReply reply;
  std::vector<FsDirEntryWire> wire(kFsMaxIo / sizeof(FsDirEntryWire));
  mk::RpcRef ref;
  ref.recv_buf = wire.data();
  ref.recv_cap = static_cast<uint32_t>(wire.size() * sizeof(FsDirEntryWire));
  const base::Status st = stub_.Call(env, r, &reply, &ref);
  if (st != base::Status::kOk) {
    return st;
  }
  if (reply.status != 0) {
    return static_cast<base::Status>(reply.status);
  }
  std::vector<DirEntry> out;
  for (uint32_t i = 0; i < reply.len; ++i) {
    out.push_back({wire[i].name, 0, wire[i].directory != 0});
  }
  return out;
}

base::Status FsClient::Unlink(mk::Env& env, const std::string& path) {
  FsRequest r;
  r.op = FsOp::kUnlink;
  r.SetPath(path.c_str());
  FsReply reply;
  const base::Status st = stub_.Call(env, r, &reply);
  return st != base::Status::kOk ? st : static_cast<base::Status>(reply.status);
}

base::Status FsClient::Rename(mk::Env& env, const std::string& from, const std::string& to) {
  FsRequest r;
  r.op = FsOp::kRename;
  r.SetPath(from.c_str());
  r.SetPath2(to.c_str());
  FsReply reply;
  const base::Status st = stub_.Call(env, r, &reply);
  return st != base::Status::kOk ? st : static_cast<base::Status>(reply.status);
}

base::Status FsClient::Lock(mk::Env& env, uint64_t handle, uint64_t start, uint64_t len,
                            bool exclusive) {
  if (cache_ != nullptr) {
    // Lock acquisition is a coherence point: another client may have written
    // the range since we cached it. Publish our pending bytes, drop ours.
    const base::Status fl = cache_->FlushHandle(env, *this, handle);
    if (fl != base::Status::kOk) {
      return fl;
    }
    cache_->InvalidateHandle(handle);
  }
  FsRequest r;
  r.op = FsOp::kLock;
  r.handle = handle;
  r.offset = start;
  r.len = static_cast<uint32_t>(len);
  r.lock_exclusive = exclusive ? 1 : 0;
  FsReply reply;
  const base::Status st = stub_.Call(env, r, &reply);
  return st != base::Status::kOk ? st : static_cast<base::Status>(reply.status);
}

base::Status FsClient::Unlock(mk::Env& env, uint64_t handle, uint64_t start, uint64_t len) {
  if (cache_ != nullptr) {
    // Writes made under the lock must be visible before the lock drops.
    const base::Status fl = cache_->FlushHandle(env, *this, handle);
    if (fl != base::Status::kOk) {
      return fl;
    }
  }
  FsRequest r;
  r.op = FsOp::kUnlock;
  r.handle = handle;
  r.offset = start;
  r.len = static_cast<uint32_t>(len);
  FsReply reply;
  const base::Status st = stub_.Call(env, r, &reply);
  return st != base::Status::kOk ? st : static_cast<base::Status>(reply.status);
}

base::Status FsClient::SetEa(mk::Env& env, const std::string& path, const std::string& key,
                             const std::string& value) {
  FsRequest r;
  r.op = FsOp::kSetEa;
  r.SetPath(path.c_str());
  // Key + value + both NULs must fit the fixed path2 buffer; anything larger
  // would overflow the request struct.
  if (key.size() + value.size() + 2 > kFsMaxPath) {
    return base::Status::kInvalidArgument;
  }
  std::memcpy(r.path2, key.c_str(), key.size() + 1);
  std::memcpy(r.path2 + key.size() + 1, value.c_str(), value.size() + 1);
  FsReply reply;
  const base::Status st = stub_.Call(env, r, &reply);
  return st != base::Status::kOk ? st : static_cast<base::Status>(reply.status);
}

base::Result<std::string> FsClient::GetEa(mk::Env& env, const std::string& path,
                                          const std::string& key) {
  FsRequest r;
  r.op = FsOp::kGetEa;
  r.SetPath(path.c_str());
  r.SetPath2(key.c_str());
  FsReply reply;
  char value[256] = {};
  mk::RpcRef ref;
  ref.recv_buf = value;
  ref.recv_cap = sizeof(value) - 1;
  const base::Status st = stub_.Call(env, r, &reply, &ref);
  if (st != base::Status::kOk) {
    return st;
  }
  if (reply.status != 0) {
    return static_cast<base::Status>(reply.status);
  }
  return std::string(value, reply.len);
}

base::Result<FsMapping> FsClient::MapObject(mk::Env& env, uint64_t handle, uint64_t min_len) {
  if (cache_ != nullptr) {
    // Mapped pages fault in from the server: pending write-behind must land
    // there first or the mapping would read stale bytes.
    const base::Status fl = cache_->FlushHandle(env, *this, handle);
    if (fl != base::Status::kOk) {
      return fl;
    }
  }
  FsRequest r;
  r.op = FsOp::kMapObject;
  r.handle = handle;
  r.len = static_cast<uint32_t>(min_len);
  FsReply reply;
  const base::Status st = stub_.Call(env, r, &reply);
  if (st != base::Status::kOk) {
    return st;
  }
  if (reply.status != 0) {
    return static_cast<base::Status>(reply.status);
  }
  return FsMapping{reply.handle, reply.attr.size};
}

base::Result<uint32_t> FsClient::UnmapObject(mk::Env& env, uint64_t object_id) {
  FsRequest r;
  r.op = FsOp::kMapRelease;
  r.handle = object_id;
  FsReply reply;
  const base::Status st = stub_.Call(env, r, &reply);
  if (st != base::Status::kOk) {
    return st;
  }
  if (reply.status != 0) {
    return static_cast<base::Status>(reply.status);
  }
  return reply.len;
}

base::Status FsClient::Flush(mk::Env& env, uint64_t handle) {
  if (cache_ == nullptr) {
    return base::Status::kOk;
  }
  return cache_->FlushHandle(env, *this, handle);
}

base::Status FsClient::Sync(mk::Env& env) {
  if (cache_ != nullptr) {
    const base::Status fl = cache_->FlushAll(env, *this);
    if (fl != base::Status::kOk) {
      return fl;
    }
  }
  FsRequest r;
  r.op = FsOp::kSync;
  r.SetPath("/");
  FsReply reply;
  const base::Status st = stub_.Call(env, r, &reply);
  return st != base::Status::kOk ? st : static_cast<base::Status>(reply.status);
}

}  // namespace svc
