// Write-back LRU sector cache between the physical file systems and the
// block store (which is usually the disk driver's RPC service). This is the
// file server's buffering, whose cost structure drives the file-intensive
// results in Table 1: hits stay inside the server, misses pay a full RPC to
// the driver plus the device time.
#ifndef SRC_SVC_FS_BLOCK_CACHE_H_
#define SRC_SVC_FS_BLOCK_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "src/mk/kernel.h"
#include "src/mks/pager/default_pager.h"

namespace svc {

class BlockCache {
 public:
  static constexpr uint32_t kSectorSize = 512;

  BlockCache(mk::Kernel& kernel, mks::BlockStore* store, uint32_t capacity_sectors = 256);

  base::Status ReadSector(mk::Env& env, uint64_t lba, void* out);
  base::Status WriteSector(mk::Env& env, uint64_t lba, const void* data);
  base::Status Read(mk::Env& env, uint64_t lba, uint32_t count, void* out);
  base::Status Write(mk::Env& env, uint64_t lba, uint32_t count, const void* data);
  base::Status Flush(mk::Env& env);

  uint64_t num_sectors() const { return store_->num_sectors(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t writebacks() const { return writebacks_; }
  size_t free_list_size() const { return free_sim_addrs_.size(); }

 private:
  struct Entry {
    std::vector<uint8_t> data;
    bool dirty = false;
    std::list<uint64_t>::iterator lru_pos;
    hw::PhysAddr sim_addr = 0;
  };

  base::Result<Entry*> GetSector(mk::Env& env, uint64_t lba, bool load);
  base::Status Evict(mk::Env& env);

  mk::Kernel& kernel_;
  mks::BlockStore* store_;
  uint32_t capacity_;
  std::unordered_map<uint64_t, Entry> entries_;
  std::list<uint64_t> lru_;  // front = most recent
  // Simulated buffer addresses recycled from evicted entries. KernelHeap is
  // a bump allocator with no Free(); without recycling, every eviction
  // leaked its sector buffer and a long-running cache crawled through the
  // whole kernel heap.
  std::vector<hw::PhysAddr> free_sim_addrs_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t writebacks_ = 0;
};

}  // namespace svc

#endif  // SRC_SVC_FS_BLOCK_CACHE_H_
