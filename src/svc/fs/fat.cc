#include "src/svc/fs/fat.h"

#include <cctype>
#include <cstring>
#include <functional>

#include "src/base/log.h"

namespace svc {

namespace {
const hw::CodeRegion& PathRegion() {
  static const hw::CodeRegion r = hw::DefineCode("svc.fat.lookup", 160);
  return r;
}
const hw::CodeRegion& IoRegion() {
  static const hw::CodeRegion r = hw::DefineCode("svc.fat.rw", 200);
  return r;
}
const hw::CodeRegion& AllocRegion() {
  static const hw::CodeRegion r = hw::DefineCode("svc.fat.alloc", 120);
  return r;
}

struct BootSector {
  uint32_t magic;
  uint32_t total_sectors;
  uint32_t fat_start;
  uint32_t fat_sectors;
  uint32_t root_start;
  uint32_t data_start;
  uint32_t num_clusters;
};
}  // namespace

FatFs::FatFs(mk::Kernel& kernel, BlockCache* cache, uint64_t sectors)
    : kernel_(kernel), cache_(cache), total_sectors_(sectors) {}

base::Result<std::string> FatFs::To83(const std::string& name) {
  if (name.empty() || name == "." || name == "..") {
    return base::Status::kInvalidArgument;
  }
  std::string stem;
  std::string ext;
  const size_t dot = name.rfind('.');
  if (dot == std::string::npos) {
    stem = name;
  } else {
    stem = name.substr(0, dot);
    ext = name.substr(dot + 1);
  }
  // The long-name incompatibility: anything beyond 8.3 cannot be stored.
  if (stem.empty() || stem.size() > 8 || ext.size() > 3) {
    return base::Status::kNotSupported;
  }
  std::string out(11, ' ');
  for (size_t i = 0; i < stem.size(); ++i) {
    const char c = stem[i];
    if (c == '/' || c == '.' || c == ' ') {
      return base::Status::kInvalidArgument;
    }
    out[i] = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  for (size_t i = 0; i < ext.size(); ++i) {
    const char c = ext[i];
    if (c == '/' || c == '.' || c == ' ') {
      return base::Status::kInvalidArgument;
    }
    out[8 + i] = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

base::Status FatFs::Format(mk::Env& env) {
  // Geometry: FAT16 entries, 2 bytes each; clusters cover the data area.
  const uint64_t overhead_guess = 1 + kRootDirSectors;
  const uint64_t data_sectors = total_sectors_ - overhead_guess;
  num_clusters_ = static_cast<uint32_t>(data_sectors / kSectorsPerCluster);
  fat_sectors_ = (num_clusters_ * 2 + kSectorSize - 1) / kSectorSize;
  root_start_ = fat_start_ + fat_sectors_;
  data_start_ = root_start_ + kRootDirSectors;
  num_clusters_ = static_cast<uint32_t>((total_sectors_ - data_start_) / kSectorsPerCluster);
  free_clusters_ = num_clusters_;

  BootSector boot{kMagic, static_cast<uint32_t>(total_sectors_), fat_start_, fat_sectors_,
                  root_start_, data_start_, num_clusters_};
  uint8_t sector[kSectorSize] = {};
  std::memcpy(sector, &boot, sizeof(boot));
  base::Status st = cache_->WriteSector(env, 0, sector);
  if (st != base::Status::kOk) {
    return st;
  }
  std::memset(sector, 0, sizeof(sector));
  for (uint32_t s = 0; s < fat_sectors_ + kRootDirSectors; ++s) {
    st = cache_->WriteSector(env, fat_start_ + s, sector);
    if (st != base::Status::kOk) {
      return st;
    }
  }
  mounted_ = true;
  return cache_->Flush(env);
}

base::Status FatFs::Mount(mk::Env& env) {
  uint8_t sector[kSectorSize];
  const base::Status st = cache_->ReadSector(env, 0, sector);
  if (st != base::Status::kOk) {
    return st;
  }
  BootSector boot;
  std::memcpy(&boot, sector, sizeof(boot));
  if (boot.magic != kMagic) {
    return base::Status::kCorrupt;
  }
  fat_start_ = boot.fat_start;
  fat_sectors_ = boot.fat_sectors;
  root_start_ = boot.root_start;
  data_start_ = boot.data_start;
  num_clusters_ = boot.num_clusters;
  // Count free clusters.
  free_clusters_ = 0;
  for (uint16_t c = 2; c < num_clusters_ + 2; ++c) {
    auto v = FatGet(env, c);
    if (!v.ok()) {
      return v.status();
    }
    if (*v == kClusterFree) {
      ++free_clusters_;
    }
  }
  mounted_ = true;
  return base::Status::kOk;
}

base::Status FatFs::Sync(mk::Env& env) { return cache_->Flush(env); }

base::Result<uint16_t> FatFs::FatGet(mk::Env& env, uint16_t cluster) {
  const uint64_t lba = fat_start_ + (static_cast<uint64_t>(cluster) * 2) / kSectorSize;
  uint8_t sector[kSectorSize];
  const base::Status st = cache_->ReadSector(env, lba, sector);
  if (st != base::Status::kOk) {
    return st;
  }
  uint16_t value;
  std::memcpy(&value, sector + (cluster * 2) % kSectorSize, 2);
  return value;
}

base::Status FatFs::FatSet(mk::Env& env, uint16_t cluster, uint16_t value) {
  const uint64_t lba = fat_start_ + (static_cast<uint64_t>(cluster) * 2) / kSectorSize;
  uint8_t sector[kSectorSize];
  base::Status st = cache_->ReadSector(env, lba, sector);
  if (st != base::Status::kOk) {
    return st;
  }
  std::memcpy(sector + (cluster * 2) % kSectorSize, &value, 2);
  return cache_->WriteSector(env, lba, sector);
}

base::Result<uint16_t> FatFs::AllocCluster(mk::Env& env) {
  kernel_.cpu().Execute(AllocRegion());
  for (uint16_t c = 2; c < num_clusters_ + 2; ++c) {
    auto v = FatGet(env, c);
    if (!v.ok()) {
      return v.status();
    }
    if (*v == kClusterFree) {
      const base::Status st = FatSet(env, c, kClusterEnd);
      if (st != base::Status::kOk) {
        return st;
      }
      --free_clusters_;
      // Zero the fresh cluster.
      uint8_t zero[kSectorSize] = {};
      for (uint32_t s = 0; s < kSectorsPerCluster; ++s) {
        (void)cache_->WriteSector(env, ClusterToSector(c) + s, zero);
      }
      return c;
    }
  }
  return base::Status::kNoSpace;
}

base::Status FatFs::FreeChain(mk::Env& env, uint16_t first) {
  uint16_t c = first;
  while (c != kClusterFree && c != kClusterEnd) {
    auto next = FatGet(env, c);
    if (!next.ok()) {
      return next.status();
    }
    const base::Status st = FatSet(env, c, kClusterFree);
    if (st != base::Status::kOk) {
      return st;
    }
    ++free_clusters_;
    c = *next;
  }
  return base::Status::kOk;
}

base::Status FatFs::ReadDirent(mk::Env& env, NodeId node, Dirent* out) {
  uint8_t sector[kSectorSize];
  const base::Status st = cache_->ReadSector(env, NodeSector(node), sector);
  if (st != base::Status::kOk) {
    return st;
  }
  std::memcpy(out, sector + NodeIndex(node) * kDirentSize, kDirentSize);
  return base::Status::kOk;
}

base::Status FatFs::WriteDirent(mk::Env& env, NodeId node, const Dirent& d) {
  uint8_t sector[kSectorSize];
  base::Status st = cache_->ReadSector(env, NodeSector(node), sector);
  if (st != base::Status::kOk) {
    return st;
  }
  std::memcpy(sector + NodeIndex(node) * kDirentSize, &d, kDirentSize);
  return cache_->WriteSector(env, NodeSector(node), sector);
}

base::Result<uint16_t> FatFs::DirFirstCluster(mk::Env& env, NodeId dir) {
  if (dir == kRootNode) {
    return base::Status::kInvalidArgument;  // root is not cluster-chained
  }
  Dirent d;
  const base::Status st = ReadDirent(env, dir, &d);
  if (st != base::Status::kOk) {
    return st;
  }
  if ((d.attr & 0x10) == 0) {
    return base::Status::kInvalidArgument;
  }
  return d.first_cluster;
}

base::Status FatFs::ForEachSlot(mk::Env& env, NodeId dir,
                                const std::function<bool(NodeId, Dirent&)>& fn, bool* stopped) {
  if (stopped != nullptr) {
    *stopped = false;
  }
  auto visit_sector = [&](uint64_t lba) -> base::Result<bool> {
    uint8_t sector[kSectorSize];
    const base::Status st = cache_->ReadSector(env, lba, sector);
    if (st != base::Status::kOk) {
      return st;
    }
    for (uint32_t i = 0; i < kDirentsPerSector; ++i) {
      Dirent d;
      std::memcpy(&d, sector + i * kDirentSize, kDirentSize);
      if (fn(MakeNode(lba, i), d)) {
        return true;
      }
    }
    return false;
  };
  if (dir == kRootNode) {
    for (uint32_t s = 0; s < kRootDirSectors; ++s) {
      auto stop = visit_sector(root_start_ + s);
      if (!stop.ok()) {
        return stop.status();
      }
      if (*stop) {
        if (stopped != nullptr) {
          *stopped = true;
        }
        return base::Status::kOk;
      }
    }
    return base::Status::kOk;
  }
  auto first = DirFirstCluster(env, dir);
  if (!first.ok()) {
    return first.status();
  }
  uint16_t c = *first;
  while (c != kClusterFree && c != kClusterEnd) {
    for (uint32_t s = 0; s < kSectorsPerCluster; ++s) {
      auto stop = visit_sector(ClusterToSector(c) + s);
      if (!stop.ok()) {
        return stop.status();
      }
      if (*stop) {
        if (stopped != nullptr) {
          *stopped = true;
        }
        return base::Status::kOk;
      }
    }
    auto next = FatGet(env, c);
    if (!next.ok()) {
      return next.status();
    }
    c = *next;
  }
  return base::Status::kOk;
}

base::Result<NodeId> FatFs::Lookup(mk::Env& env, NodeId dir, const std::string& name) {
  kernel_.cpu().Execute(PathRegion());
  auto stored = To83(name);
  if (!stored.ok()) {
    return stored.status();
  }
  NodeId found = 0;
  bool stopped = false;
  const base::Status st = ForEachSlot(
      env, dir,
      [&](NodeId node, Dirent& d) {
        if (d.name[0] == '\0' || static_cast<uint8_t>(d.name[0]) == 0xe5) {
          return false;
        }
        if (std::memcmp(d.name, stored->data(), 11) == 0) {
          found = node;
          return true;
        }
        return false;
      },
      &stopped);
  if (st != base::Status::kOk) {
    return st;
  }
  if (!stopped) {
    return base::Status::kNotFound;
  }
  return found;
}

base::Result<NodeId> FatFs::FindFreeSlot(mk::Env& env, NodeId dir) {
  NodeId slot = 0;
  bool stopped = false;
  base::Status st = ForEachSlot(
      env, dir,
      [&](NodeId node, Dirent& d) {
        if (d.name[0] == '\0' || static_cast<uint8_t>(d.name[0]) == 0xe5) {
          slot = node;
          return true;
        }
        return false;
      },
      &stopped);
  if (st != base::Status::kOk) {
    return st;
  }
  if (stopped) {
    return slot;
  }
  if (dir == kRootNode) {
    return base::Status::kNoSpace;  // fixed-size root directory is full
  }
  // Extend the subdirectory with one more cluster.
  auto first = DirFirstCluster(env, dir);
  if (!first.ok()) {
    return first.status();
  }
  uint16_t c = *first;
  while (true) {
    auto next = FatGet(env, c);
    if (!next.ok()) {
      return next.status();
    }
    if (*next == kClusterEnd) {
      break;
    }
    c = *next;
  }
  auto fresh = AllocCluster(env);
  if (!fresh.ok()) {
    return fresh.status();
  }
  st = FatSet(env, c, *fresh);
  if (st != base::Status::kOk) {
    return st;
  }
  return MakeNode(ClusterToSector(*fresh), 0);
}

base::Result<NodeId> FatFs::Create(mk::Env& env, NodeId dir, const std::string& name,
                                   bool directory) {
  kernel_.cpu().Execute(PathRegion());
  auto stored = To83(name);
  if (!stored.ok()) {
    return stored.status();
  }
  auto existing = Lookup(env, dir, name);
  if (existing.ok()) {
    return base::Status::kAlreadyExists;
  }
  auto slot = FindFreeSlot(env, dir);
  if (!slot.ok()) {
    return slot.status();
  }
  Dirent d;
  std::memset(&d, 0, sizeof(d));
  std::memcpy(d.name, stored->data(), 11);
  d.attr = directory ? 0x10 : 0x00;
  if (directory) {
    auto cluster = AllocCluster(env);
    if (!cluster.ok()) {
      return cluster.status();
    }
    d.first_cluster = *cluster;
  }
  const base::Status st = WriteDirent(env, *slot, d);
  if (st != base::Status::kOk) {
    return st;
  }
  return *slot;
}

base::Status FatFs::Remove(mk::Env& env, NodeId dir, const std::string& name) {
  auto node = Lookup(env, dir, name);
  if (!node.ok()) {
    return node.status();
  }
  Dirent d;
  base::Status st = ReadDirent(env, *node, &d);
  if (st != base::Status::kOk) {
    return st;
  }
  if ((d.attr & 0x10) != 0) {
    // Directory must be empty.
    bool has_children = false;
    st = ForEachSlot(env, *node, [&](NodeId, Dirent& e) {
      if (e.name[0] != '\0' && static_cast<uint8_t>(e.name[0]) != 0xe5) {
        has_children = true;
        return true;
      }
      return false;
    });
    if (st != base::Status::kOk) {
      return st;
    }
    if (has_children) {
      return base::Status::kBusy;
    }
  }
  if (d.first_cluster != 0) {
    st = FreeChain(env, d.first_cluster);
    if (st != base::Status::kOk) {
      return st;
    }
  }
  d.name[0] = static_cast<char>(0xe5);
  return WriteDirent(env, *node, d);
}

base::Status FatFs::Rename(mk::Env& env, NodeId from_dir, const std::string& from, NodeId to_dir,
                           const std::string& to) {
  auto stored = To83(to);
  if (!stored.ok()) {
    return stored.status();
  }
  auto node = Lookup(env, from_dir, from);
  if (!node.ok()) {
    return node.status();
  }
  if (Lookup(env, to_dir, to).ok()) {
    return base::Status::kAlreadyExists;
  }
  Dirent d;
  base::Status st = ReadDirent(env, *node, &d);
  if (st != base::Status::kOk) {
    return st;
  }
  auto slot = FindFreeSlot(env, to_dir);
  if (!slot.ok()) {
    return slot.status();
  }
  Dirent moved = d;
  std::memcpy(moved.name, stored->data(), 11);
  st = WriteDirent(env, *slot, moved);
  if (st != base::Status::kOk) {
    return st;
  }
  d.name[0] = static_cast<char>(0xe5);
  return WriteDirent(env, *node, d);
}

base::Result<uint32_t> FatFs::Read(mk::Env& env, NodeId node, uint64_t offset, void* out,
                                   uint32_t len) {
  kernel_.cpu().Execute(IoRegion());
  Dirent d;
  const base::Status st = ReadDirent(env, node, &d);
  if (st != base::Status::kOk) {
    return st;
  }
  if (offset >= d.size) {
    return 0u;
  }
  len = static_cast<uint32_t>(std::min<uint64_t>(len, d.size - offset));
  uint32_t done = 0;
  // Walk to the starting cluster.
  uint16_t c = d.first_cluster;
  uint64_t skip = offset / kClusterBytes;
  while (skip-- > 0 && c != kClusterEnd && c != kClusterFree) {
    auto next = FatGet(env, c);
    if (!next.ok()) {
      return next.status();
    }
    c = *next;
  }
  uint64_t in_cluster = offset % kClusterBytes;
  uint8_t sector[kSectorSize];
  while (done < len && c != kClusterEnd && c != kClusterFree) {
    const uint64_t lba = ClusterToSector(c) + in_cluster / kSectorSize;
    const uint32_t in_sector = static_cast<uint32_t>(in_cluster % kSectorSize);
    const uint32_t chunk = std::min(len - done, kSectorSize - in_sector);
    const base::Status rst = cache_->ReadSector(env, lba, sector);
    if (rst != base::Status::kOk) {
      return rst;
    }
    std::memcpy(static_cast<uint8_t*>(out) + done, sector + in_sector, chunk);
    done += chunk;
    in_cluster += chunk;
    if (in_cluster >= kClusterBytes) {
      in_cluster = 0;
      auto next = FatGet(env, c);
      if (!next.ok()) {
        return next.status();
      }
      c = *next;
    }
  }
  return done;
}

base::Result<uint32_t> FatFs::Write(mk::Env& env, NodeId node, uint64_t offset, const void* data,
                                    uint32_t len) {
  kernel_.cpu().Execute(IoRegion());
  Dirent d;
  base::Status st = ReadDirent(env, node, &d);
  if (st != base::Status::kOk) {
    return st;
  }
  if ((d.attr & 0x10) != 0) {
    return base::Status::kInvalidArgument;
  }
  // Ensure the chain covers [0, offset+len).
  const uint64_t needed_clusters = (offset + len + kClusterBytes - 1) / kClusterBytes;
  uint16_t c = d.first_cluster;
  uint16_t last = 0;
  uint64_t have = 0;
  while (c != kClusterFree && c != kClusterEnd) {
    ++have;
    last = c;
    auto next = FatGet(env, c);
    if (!next.ok()) {
      return next.status();
    }
    c = *next;
  }
  while (have < needed_clusters) {
    auto fresh = AllocCluster(env);
    if (!fresh.ok()) {
      return fresh.status();
    }
    if (last == 0) {
      d.first_cluster = *fresh;
    } else {
      st = FatSet(env, last, *fresh);
      if (st != base::Status::kOk) {
        return st;
      }
    }
    last = *fresh;
    ++have;
  }
  // Write the data.
  uint32_t done = 0;
  c = d.first_cluster;
  uint64_t skip = offset / kClusterBytes;
  while (skip-- > 0) {
    auto next = FatGet(env, c);
    if (!next.ok()) {
      return next.status();
    }
    c = *next;
  }
  uint64_t in_cluster = offset % kClusterBytes;
  uint8_t sector[kSectorSize];
  while (done < len) {
    const uint64_t lba = ClusterToSector(c) + in_cluster / kSectorSize;
    const uint32_t in_sector = static_cast<uint32_t>(in_cluster % kSectorSize);
    const uint32_t chunk = std::min(len - done, kSectorSize - in_sector);
    if (chunk < kSectorSize) {
      st = cache_->ReadSector(env, lba, sector);
      if (st != base::Status::kOk) {
        return st;
      }
    }
    std::memcpy(sector + in_sector, static_cast<const uint8_t*>(data) + done, chunk);
    st = cache_->WriteSector(env, lba, sector);
    if (st != base::Status::kOk) {
      return st;
    }
    done += chunk;
    in_cluster += chunk;
    if (in_cluster >= kClusterBytes && done < len) {
      in_cluster = 0;
      auto next = FatGet(env, c);
      if (!next.ok()) {
        return next.status();
      }
      c = *next;
    }
  }
  if (offset + len > d.size) {
    d.size = static_cast<uint32_t>(offset + len);
    st = WriteDirent(env, node, d);
    if (st != base::Status::kOk) {
      return st;
    }
  }
  return done;
}

base::Result<FileAttr> FatFs::GetAttr(mk::Env& env, NodeId node) {
  if (node == kRootNode) {
    return FileAttr{.size = 0, .directory = true};
  }
  Dirent d;
  const base::Status st = ReadDirent(env, node, &d);
  if (st != base::Status::kOk) {
    return st;
  }
  return FileAttr{.size = d.size, .directory = (d.attr & 0x10) != 0};
}

base::Status FatFs::SetSize(mk::Env& env, NodeId node, uint64_t size) {
  Dirent d;
  base::Status st = ReadDirent(env, node, &d);
  if (st != base::Status::kOk) {
    return st;
  }
  if (size > d.size) {
    return base::Status::kNotSupported;  // growth happens through Write
  }
  // Free clusters beyond the new size.
  const uint64_t keep = (size + kClusterBytes - 1) / kClusterBytes;
  uint16_t c = d.first_cluster;
  uint16_t prev = 0;
  for (uint64_t i = 0; i < keep && c != kClusterEnd && c != kClusterFree; ++i) {
    prev = c;
    auto next = FatGet(env, c);
    if (!next.ok()) {
      return next.status();
    }
    c = *next;
  }
  if (c != kClusterEnd && c != kClusterFree) {
    st = FreeChain(env, c);
    if (st != base::Status::kOk) {
      return st;
    }
    if (prev == 0) {
      d.first_cluster = 0;
    } else {
      st = FatSet(env, prev, kClusterEnd);
      if (st != base::Status::kOk) {
        return st;
      }
    }
  }
  d.size = static_cast<uint32_t>(size);
  return WriteDirent(env, node, d);
}

base::Result<std::vector<DirEntry>> FatFs::ReadDir(mk::Env& env, NodeId dir) {
  std::vector<DirEntry> out;
  const base::Status st = ForEachSlot(env, dir, [&](NodeId node, Dirent& d) {
    if (d.name[0] == '\0' || static_cast<uint8_t>(d.name[0]) == 0xe5) {
      return false;
    }
    std::string stem(d.name, 8);
    std::string ext(d.name + 8, 3);
    while (!stem.empty() && stem.back() == ' ') {
      stem.pop_back();
    }
    while (!ext.empty() && ext.back() == ' ') {
      ext.pop_back();
    }
    DirEntry e;
    e.name = ext.empty() ? stem : stem + "." + ext;
    e.node = node;
    e.directory = (d.attr & 0x10) != 0;
    out.push_back(std::move(e));
    return false;
  });
  if (st != base::Status::kOk) {
    return st;
  }
  return out;
}

}  // namespace svc
