// FAT physical file system: a FAT16-style on-disk format with 8.3 names.
//
// This is the compatibility-burden file system of the paper: "the old FAT
// format used by OS/2 ... supports only 8 character file names followed by a
// '.' followed by 3 character extensions. There was no good way to jam long
// file names into the OS/2 FAT file format without generating an
// incompatibility." Accordingly, Create/Lookup reject names that do not fit
// 8.3, and stored names are uppercased (not case-preserving).
#ifndef SRC_SVC_FS_FAT_H_
#define SRC_SVC_FS_FAT_H_

#include <string>
#include <vector>

#include "src/svc/fs/block_cache.h"
#include "src/svc/fs/pfs.h"

namespace svc {

class FatFs : public Pfs {
 public:
  static constexpr uint32_t kMagic = 0x54414657;  // "WFAT"
  static constexpr uint32_t kSectorSize = 512;
  static constexpr uint32_t kSectorsPerCluster = 4;
  static constexpr uint32_t kClusterBytes = kSectorSize * kSectorsPerCluster;
  static constexpr uint32_t kRootDirSectors = 16;  // 256 entries
  static constexpr uint32_t kDirentSize = 32;
  static constexpr uint32_t kDirentsPerSector = kSectorSize / kDirentSize;
  static constexpr NodeId kRootNode = 1;
  static constexpr uint16_t kClusterFree = 0x0000;
  static constexpr uint16_t kClusterEnd = 0xffff;

  // The cache (and its block store) must outlive the file system. `sectors`
  // bounds the region of the device this file system occupies.
  FatFs(mk::Kernel& kernel, BlockCache* cache, uint64_t sectors);

  // Writes a fresh, empty file system.
  base::Status Format(mk::Env& env);

  std::string type() const override { return "fat"; }
  PfsCapabilities capabilities() const override {
    return {.long_names = false,
            .case_sensitive = false,
            .case_preserving = false,
            .extended_attributes = false,
            .journaled = false};
  }

  base::Status Mount(mk::Env& env) override;
  base::Status Sync(mk::Env& env) override;
  NodeId root() const override { return kRootNode; }
  base::Result<NodeId> Lookup(mk::Env& env, NodeId dir, const std::string& name) override;
  base::Result<NodeId> Create(mk::Env& env, NodeId dir, const std::string& name,
                              bool directory) override;
  base::Status Remove(mk::Env& env, NodeId dir, const std::string& name) override;
  base::Status Rename(mk::Env& env, NodeId from_dir, const std::string& from, NodeId to_dir,
                      const std::string& to) override;
  base::Result<uint32_t> Read(mk::Env& env, NodeId node, uint64_t offset, void* out,
                              uint32_t len) override;
  base::Result<uint32_t> Write(mk::Env& env, NodeId node, uint64_t offset, const void* data,
                               uint32_t len) override;
  base::Result<FileAttr> GetAttr(mk::Env& env, NodeId node) override;
  base::Status SetSize(mk::Env& env, NodeId node, uint64_t size) override;
  base::Result<std::vector<DirEntry>> ReadDir(mk::Env& env, NodeId dir) override;

  // Converts `name` to the stored 8.3 uppercase form; fails for names that
  // do not fit the format (the long-name incompatibility).
  static base::Result<std::string> To83(const std::string& name);

  uint64_t free_clusters() const { return free_clusters_; }

 private:
  struct Dirent {
    char name[11];       // 8 + 3, space padded, uppercase
    uint8_t attr;        // 0x10 = directory, 0xe5 in name[0] = deleted
    uint8_t reserved[10];
    uint16_t first_cluster;
    uint32_t size;
    uint8_t pad[4];
  };
  static_assert(sizeof(Dirent) == kDirentSize);

  static NodeId MakeNode(uint64_t sector, uint32_t index) { return (sector << 8) | index; }
  static uint64_t NodeSector(NodeId n) { return n >> 8; }
  static uint32_t NodeIndex(NodeId n) { return static_cast<uint32_t>(n & 0xff); }

  uint64_t ClusterToSector(uint16_t cluster) const {
    return data_start_ + static_cast<uint64_t>(cluster - 2) * kSectorsPerCluster;
  }

  base::Result<uint16_t> FatGet(mk::Env& env, uint16_t cluster);
  base::Status FatSet(mk::Env& env, uint16_t cluster, uint16_t value);
  base::Result<uint16_t> AllocCluster(mk::Env& env);
  base::Status FreeChain(mk::Env& env, uint16_t first);

  base::Status ReadDirent(mk::Env& env, NodeId node, Dirent* out);
  base::Status WriteDirent(mk::Env& env, NodeId node, const Dirent& d);

  // Iterates the directory's entry slots; fn returns true to stop.
  base::Status ForEachSlot(mk::Env& env, NodeId dir,
                           const std::function<bool(NodeId, Dirent&)>& fn,
                           bool* stopped = nullptr);
  base::Result<NodeId> FindFreeSlot(mk::Env& env, NodeId dir);
  base::Result<uint16_t> DirFirstCluster(mk::Env& env, NodeId dir);

  mk::Kernel& kernel_;
  BlockCache* cache_;
  uint64_t total_sectors_;
  uint32_t fat_start_ = 1;
  uint32_t fat_sectors_ = 0;
  uint32_t root_start_ = 0;
  uint32_t data_start_ = 0;
  uint32_t num_clusters_ = 0;
  uint64_t free_clusters_ = 0;
  bool mounted_ = false;
};

}  // namespace svc

#endif  // SRC_SVC_FS_FAT_H_
