#include "src/svc/fs/block_cache.h"

#include <algorithm>
#include <cstring>

#include "src/base/log.h"

namespace svc {

namespace {
const hw::CodeRegion& HitRegion() {
  static const hw::CodeRegion r = hw::DefineCode("svc.fs.bcache_hit", 60);
  return r;
}
const hw::CodeRegion& MissRegion() {
  static const hw::CodeRegion r = hw::DefineCode("svc.fs.bcache_miss", 140);
  return r;
}
}  // namespace

BlockCache::BlockCache(mk::Kernel& kernel, mks::BlockStore* store, uint32_t capacity_sectors)
    : kernel_(kernel), store_(store), capacity_(capacity_sectors) {}

base::Status BlockCache::Evict(mk::Env& env) {
  WPOS_CHECK(!lru_.empty());
  const uint64_t victim = lru_.back();
  Entry& e = entries_.at(victim);
  if (e.dirty) {
    ++writebacks_;
    const base::Status st = store_->Write(env, victim, 1, e.data.data());
    if (st != base::Status::kOk) {
      return st;
    }
  }
  lru_.pop_back();
  free_sim_addrs_.push_back(e.sim_addr);  // recycle: the heap can't free
  entries_.erase(victim);
  return base::Status::kOk;
}

base::Result<BlockCache::Entry*> BlockCache::GetSector(mk::Env& env, uint64_t lba, bool load) {
  auto it = entries_.find(lba);
  if (it != entries_.end()) {
    ++hits_;
    // Lookup cost only. The data traffic is charged once by the caller
    // (ReadSector/WriteSector) for the full sector; charging a partial
    // touch here too double-counted the D-cache on every hit.
    kernel_.cpu().Execute(HitRegion());
    lru_.erase(it->second.lru_pos);
    lru_.push_front(lba);
    it->second.lru_pos = lru_.begin();
    return &it->second;
  }
  ++misses_;
  kernel_.cpu().Execute(MissRegion());
  while (entries_.size() >= capacity_) {
    const base::Status st = Evict(env);
    if (st != base::Status::kOk) {
      return st;
    }
  }
  Entry e;
  e.data.resize(kSectorSize);
  if (!free_sim_addrs_.empty()) {
    e.sim_addr = free_sim_addrs_.back();
    free_sim_addrs_.pop_back();
  } else {
    e.sim_addr = kernel_.heap().Allocate(kSectorSize);
  }
  if (load) {
    const base::Status st = store_->Read(env, lba, 1, e.data.data());
    if (st != base::Status::kOk) {
      return st;
    }
  }
  lru_.push_front(lba);
  e.lru_pos = lru_.begin();
  auto [pos, inserted] = entries_.emplace(lba, std::move(e));
  WPOS_CHECK(inserted);
  return &pos->second;
}

base::Status BlockCache::ReadSector(mk::Env& env, uint64_t lba, void* out) {
  auto e = GetSector(env, lba, /*load=*/true);
  if (!e.ok()) {
    return e.status();
  }
  std::memcpy(out, (*e)->data.data(), kSectorSize);
  kernel_.cpu().AccessData((*e)->sim_addr, kSectorSize, /*write=*/false);
  return base::Status::kOk;
}

base::Status BlockCache::WriteSector(mk::Env& env, uint64_t lba, const void* data) {
  auto e = GetSector(env, lba, /*load=*/false);
  if (!e.ok()) {
    return e.status();
  }
  std::memcpy((*e)->data.data(), data, kSectorSize);
  (*e)->dirty = true;
  kernel_.cpu().AccessData((*e)->sim_addr, kSectorSize, /*write=*/true);
  return base::Status::kOk;
}

base::Status BlockCache::Read(mk::Env& env, uint64_t lba, uint32_t count, void* out) {
  for (uint32_t i = 0; i < count; ++i) {
    const base::Status st = ReadSector(env, lba + i, static_cast<uint8_t*>(out) + i * kSectorSize);
    if (st != base::Status::kOk) {
      return st;
    }
  }
  return base::Status::kOk;
}

base::Status BlockCache::Write(mk::Env& env, uint64_t lba, uint32_t count, const void* data) {
  for (uint32_t i = 0; i < count; ++i) {
    const base::Status st =
        WriteSector(env, lba + i, static_cast<const uint8_t*>(data) + i * kSectorSize);
    if (st != base::Status::kOk) {
      return st;
    }
  }
  return base::Status::kOk;
}

base::Status BlockCache::Flush(mk::Env& env) {
  // Write back in LBA order: the sequence of simulated I/O (and its costs)
  // must not depend on hash-table iteration order.
  std::vector<uint64_t> dirty;
  for (const auto& [lba, e] : entries_) {  // unordered-ok: sorted below
    if (e.dirty) {
      dirty.push_back(lba);
    }
  }
  std::sort(dirty.begin(), dirty.end());
  for (uint64_t lba : dirty) {
    Entry& e = entries_.at(lba);
    ++writebacks_;
    const base::Status st = store_->Write(env, lba, 1, e.data.data());
    if (st != base::Status::kOk) {
      return st;
    }
    e.dirty = false;
  }
  return base::Status::kOk;
}

}  // namespace svc
