// Physical-file-system interface: the extended vnode architecture of the
// WPOS file server. Each PFS implements these operations against a block
// device; the file server mounts PFS instances into the single rooted tree
// and layers the union of the personalities' semantics on top.
#ifndef SRC_SVC_FS_PFS_H_
#define SRC_SVC_FS_PFS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/mk/kernel.h"

namespace svc {

using NodeId = uint64_t;

struct FileAttr {
  uint64_t size = 0;
  bool directory = false;
  uint64_t mtime_ns = 0;
};

struct DirEntry {
  std::string name;
  NodeId node = 0;
  bool directory = false;
};

struct PfsCapabilities {
  bool long_names = false;       // FAT: false (8.3 only)
  bool case_sensitive = false;   // JFS: true; FAT/HPFS: false
  bool case_preserving = false;  // HPFS/JFS: true; FAT: false (uppercases)
  bool extended_attributes = false;
  bool journaled = false;
};

class Pfs {
 public:
  virtual ~Pfs() = default;

  virtual std::string type() const = 0;
  virtual PfsCapabilities capabilities() const = 0;

  virtual base::Status Mount(mk::Env& env) = 0;
  virtual base::Status Sync(mk::Env& env) = 0;

  virtual NodeId root() const = 0;
  virtual base::Result<NodeId> Lookup(mk::Env& env, NodeId dir, const std::string& name) = 0;
  virtual base::Result<NodeId> Create(mk::Env& env, NodeId dir, const std::string& name,
                                      bool directory) = 0;
  virtual base::Status Remove(mk::Env& env, NodeId dir, const std::string& name) = 0;
  virtual base::Status Rename(mk::Env& env, NodeId from_dir, const std::string& from,
                              NodeId to_dir, const std::string& to) = 0;
  virtual base::Result<uint32_t> Read(mk::Env& env, NodeId node, uint64_t offset, void* out,
                                      uint32_t len) = 0;
  virtual base::Result<uint32_t> Write(mk::Env& env, NodeId node, uint64_t offset,
                                       const void* data, uint32_t len) = 0;
  virtual base::Result<FileAttr> GetAttr(mk::Env& env, NodeId node) = 0;
  virtual base::Status SetSize(mk::Env& env, NodeId node, uint64_t size) = 0;
  virtual base::Result<std::vector<DirEntry>> ReadDir(mk::Env& env, NodeId dir) = 0;

  // Extended attributes; PFSes without EA support return kNotSupported.
  virtual base::Status SetEa(mk::Env& env, NodeId node, const std::string& key,
                             const std::string& value) {
    return base::Status::kNotSupported;
  }
  virtual base::Result<std::string> GetEa(mk::Env& env, NodeId node, const std::string& key) {
    return base::Status::kNotSupported;
  }
};

}  // namespace svc

#endif  // SRC_SVC_FS_PFS_H_
