// File server wire protocol.
#ifndef SRC_SVC_FS_PROTOCOL_H_
#define SRC_SVC_FS_PROTOCOL_H_

#include <cstdint>
#include <cstring>

namespace svc {

inline constexpr uint32_t kFsMaxPath = 160;
// Per-request byte limit. Payloads at or above the kernel's OOL threshold
// (mk::Costs::kRpcOolThresholdBytes) move as page references instead of the
// per-byte copy loop, so the cap is sized for bulk I/O rather than for what
// a copy loop can stomach.
inline constexpr uint32_t kFsMaxIo = 128 * 1024;
// Scatter/gather: one kReadV/kWriteV request carries up to this many
// extents, amortizing one RPC's trap cost across all of them.
inline constexpr uint32_t kFsMaxExtents = 16;

enum class FsOp : uint32_t {
  kOpen = 1,
  kClose,
  kRead,
  kWrite,
  kGetAttr,
  kSetSize,
  kMkdir,
  kReadDir,
  kUnlink,
  kRename,
  kLock,
  kUnlock,
  kSetEa,
  kGetEa,
  kSync,
  kReadV,   // multi-extent read; extents travel in the ref data
  kWriteV,  // multi-extent write; ref data = extents then payload
  kFsStat,  // handle-based attributes; no path walk, feeds the client cache
  kMapObject,   // export a memory object for the open file in `handle`; `len`
                // is the minimum object size wanted. reply.handle = kernel
                // object id, reply.attr = current attributes. Requires
                // FileServer::EnableMapping; kNotSupported otherwise.
  kMapRelease,  // drop one mapping reference of object id `handle`;
                // reply.len = references remaining
};

// One extent of a kReadV/kWriteV request. The extent table travels at the
// front of the request's by-reference data: for kReadV the ref carries just
// the table (data comes back in the reply ref); for kWriteV the payload
// bytes for all extents follow the table back to back.
struct FsExtent {
  uint64_t offset = 0;
  uint32_t len = 0;
  uint32_t pad = 0;
};

// Open flags: the union of what the personalities need (OS/2 delete-on-close
// and deny-mode sharing, UNIX append/truncate/exclusive, TalOS-style
// case-insensitive opens on case-sensitive stores).
enum FsOpenFlags : uint32_t {
  kFsCreate = 1u << 0,
  kFsExclusive = 1u << 1,
  kFsTruncate = 1u << 2,
  kFsDeleteOnClose = 1u << 3,  // OS/2 semantics
  kFsAppend = 1u << 4,         // UNIX semantics
  kFsCaseInsensitive = 1u << 5,
  kFsWrite = 1u << 6,
};

// OS/2 DosOpen-style sharing modes.
enum class FsShare : uint32_t {
  kDenyNone = 0,
  kDenyWrite = 1,
  kDenyAll = 2,
};

struct FsRequest {
  FsOp op = FsOp::kOpen;
  uint32_t flags = 0;
  FsShare share = FsShare::kDenyNone;
  uint64_t handle = 0;
  uint64_t offset = 0;
  uint32_t len = 0;
  uint32_t lock_exclusive = 0;
  uint32_t extent_count = 0;  // kReadV/kWriteV: extents at the ref data front
  uint32_t pad = 0;
  char path[kFsMaxPath] = {};
  char path2[kFsMaxPath] = {};  // rename target; EA key

  void SetPath(const char* p) {
    std::strncpy(path, p, kFsMaxPath - 1);
    path[kFsMaxPath - 1] = '\0';
  }
  void SetPath2(const char* p) {
    std::strncpy(path2, p, kFsMaxPath - 1);
    path2[kFsMaxPath - 1] = '\0';
  }
};

struct FsAttrWire {
  uint64_t size = 0;
  uint8_t directory = 0;
};

struct FsReply {
  int32_t status = 0;
  uint64_t handle = 0;
  uint32_t len = 0;  // bytes read/written, or entry count for kReadDir
  FsAttrWire attr;
};

// kReadDir bulk reply entry.
struct FsDirEntryWire {
  char name[56] = {};
  uint8_t directory = 0;
  uint8_t pad[7] = {};
};

}  // namespace svc

#endif  // SRC_SVC_FS_PROTOCOL_H_
