// Inode-based physical file system core, instantiated twice:
//   - HPFS-flavoured: long names, case-insensitive but case-preserving,
//     extended attributes, no journal;
//   - JFS-flavoured: long names, case-sensitive, extended attributes, and a
//     physical redo journal for metadata (write-ahead logged, replayed on
//     mount).
// Both run against the shared block cache, like the real file server's
// vnode-dispatched physical file systems.
#ifndef SRC_SVC_FS_INODE_FS_H_
#define SRC_SVC_FS_INODE_FS_H_

#include <string>
#include <vector>

#include "src/svc/fs/block_cache.h"
#include "src/svc/fs/pfs.h"

namespace svc {

struct InodeFsConfig {
  std::string type_name = "hpfs";
  bool case_sensitive = false;
  bool journaled = false;
  uint32_t num_inodes = 1024;
  uint32_t journal_sectors = 256;  // only if journaled
};

class InodeFs : public Pfs {
 public:
  static constexpr uint32_t kMagic = 0x57494e31;  // "WIN1"
  static constexpr uint32_t kSectorSize = 512;
  static constexpr uint32_t kInodeSize = 256;
  static constexpr uint32_t kInodesPerSector = kSectorSize / kInodeSize;
  static constexpr uint32_t kDirect = 12;
  static constexpr uint32_t kPtrsPerIndirect = kSectorSize / 4;
  static constexpr uint32_t kDirentSize = 64;
  static constexpr uint32_t kNameMax = 55;
  static constexpr uint32_t kEaSlots = 2;
  static constexpr NodeId kRootInode = 1;

  InodeFs(mk::Kernel& kernel, BlockCache* cache, uint64_t sectors, InodeFsConfig config);

  base::Status Format(mk::Env& env);

  std::string type() const override { return config_.type_name; }
  PfsCapabilities capabilities() const override {
    return {.long_names = true,
            .case_sensitive = config_.case_sensitive,
            .case_preserving = true,
            .extended_attributes = true,
            .journaled = config_.journaled};
  }

  base::Status Mount(mk::Env& env) override;
  base::Status Sync(mk::Env& env) override;
  NodeId root() const override { return kRootInode; }
  base::Result<NodeId> Lookup(mk::Env& env, NodeId dir, const std::string& name) override;
  base::Result<NodeId> Create(mk::Env& env, NodeId dir, const std::string& name,
                              bool directory) override;
  base::Status Remove(mk::Env& env, NodeId dir, const std::string& name) override;
  base::Status Rename(mk::Env& env, NodeId from_dir, const std::string& from, NodeId to_dir,
                      const std::string& to) override;
  base::Result<uint32_t> Read(mk::Env& env, NodeId node, uint64_t offset, void* out,
                              uint32_t len) override;
  base::Result<uint32_t> Write(mk::Env& env, NodeId node, uint64_t offset, const void* data,
                               uint32_t len) override;
  base::Result<FileAttr> GetAttr(mk::Env& env, NodeId node) override;
  base::Status SetSize(mk::Env& env, NodeId node, uint64_t size) override;
  base::Result<std::vector<DirEntry>> ReadDir(mk::Env& env, NodeId dir) override;
  base::Status SetEa(mk::Env& env, NodeId node, const std::string& key,
                     const std::string& value) override;
  base::Result<std::string> GetEa(mk::Env& env, NodeId node, const std::string& key) override;

  uint64_t journal_records() const { return journal_records_; }
  uint64_t journal_replays() const { return journal_replays_; }
  uint64_t free_blocks() const { return free_blocks_; }

  // Test hook: fail before the journal is applied to the main area, leaving
  // only the log written. A subsequent Mount must replay it.
  void CrashBeforeApply() { crash_before_apply_ = true; }

 private:
  struct DiskInode {
    uint32_t mode = 0;  // 0 free, 1 file, 2 directory
    uint32_t reserved = 0;
    uint64_t size = 0;
    uint32_t direct[kDirect] = {};
    uint32_t indirect = 0;
    char ea[kEaSlots][48] = {};  // "key\0value\0"
    uint8_t pad[kInodeSize - 4 - 4 - 8 - kDirect * 4 - 4 - kEaSlots * 48] = {};
  };
  static_assert(sizeof(DiskInode) == kInodeSize);

  struct Dirent64 {
    char name[kNameMax + 1] = {};  // NUL-terminated, case preserved
    uint32_t ino = 0;
    uint8_t used = 0;
    uint8_t pad[3] = {};
  };
  static_assert(sizeof(Dirent64) == kDirentSize);

  bool NamesEqual(const std::string& a, const char* b) const;

  // Journalled metadata write: logged (when journaling) then applied.
  base::Status MetaWrite(mk::Env& env, uint64_t lba, const void* data);
  base::Status TxnBegin(mk::Env& env);
  base::Status TxnCommit(mk::Env& env);
  base::Status ReplayJournal(mk::Env& env);

  base::Status ReadInode(mk::Env& env, NodeId ino, DiskInode* out);
  base::Status WriteInode(mk::Env& env, NodeId ino, const DiskInode& inode);
  base::Result<NodeId> AllocInode(mk::Env& env, uint32_t mode);
  base::Status FreeInode(mk::Env& env, NodeId ino);
  base::Result<uint32_t> AllocBlock(mk::Env& env);
  base::Status FreeBlock(mk::Env& env, uint32_t block);
  // Block number backing file-block `index` of `inode`; optionally allocates.
  // `fresh` (optional) reports whether the block was newly allocated — a
  // fresh block's on-disk content is whatever a previous owner left there
  // and must be zeroed before partial writes.
  base::Result<uint32_t> MapBlock(mk::Env& env, DiskInode* inode, NodeId ino, uint32_t index,
                                  bool allocate, bool* fresh = nullptr);
  base::Status FreeAllBlocks(mk::Env& env, DiskInode* inode);
  base::Result<std::pair<NodeId, uint64_t>> FindEntry(mk::Env& env, NodeId dir,
                                                      const std::string& name);
  base::Status WriteEntry(mk::Env& env, NodeId dir, uint64_t slot_offset, const Dirent64& e);

  mk::Kernel& kernel_;
  BlockCache* cache_;
  uint64_t total_sectors_;
  InodeFsConfig config_;

  uint32_t inode_table_start_ = 0;
  uint32_t inode_table_sectors_ = 0;
  uint32_t bitmap_start_ = 0;
  uint32_t bitmap_sectors_ = 0;
  uint32_t journal_start_ = 0;
  uint32_t data_start_ = 0;
  uint32_t num_blocks_ = 0;
  uint64_t free_blocks_ = 0;

  // In-flight transaction (journaled mode).
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> txn_;
  bool in_txn_ = false;
  uint64_t next_txn_seq_ = 1;
  uint32_t journal_head_ = 0;  // sector offset within the journal region
  uint64_t journal_records_ = 0;
  uint64_t journal_replays_ = 0;
  bool crash_before_apply_ = false;
  bool mounted_ = false;
};

// Convenience aliases with the paper's file-system mix.
class HpfsFs : public InodeFs {
 public:
  HpfsFs(mk::Kernel& kernel, BlockCache* cache, uint64_t sectors)
      : InodeFs(kernel, cache, sectors,
                {.type_name = "hpfs", .case_sensitive = false, .journaled = false}) {}
};

class JfsFs : public InodeFs {
 public:
  JfsFs(mk::Kernel& kernel, BlockCache* cache, uint64_t sectors)
      : InodeFs(kernel, cache, sectors,
                {.type_name = "jfs", .case_sensitive = true, .journaled = true}) {}
};

}  // namespace svc

#endif  // SRC_SVC_FS_INODE_FS_H_
