// Crash-transparent file client: FsClient semantics over RpcCallRobust.
//
// A RobustFsSession keeps everything it needs to survive a file-server crash
// and restart on the client side: the service port is resolved through the
// name service and re-resolved when it dies, and every open file remembers
// its path/flags/share so a stale server handle (the respawned instance
// never saw our open) is re-opened transparently. The file server keeps its
// state on the simulated disk, so after restart-manager respawn + re-open a
// mid-workload crash is invisible to the caller — reads return the data that
// was written.
//
// Semantics notes:
//   - Calls are at-least-once: a reply lost to a crash is retried, so an
//     Open may occasionally leave an orphaned open on a server that executed
//     the first attempt. Restrictive deny-modes can therefore refuse a
//     retried open; kDenyNone sessions are unaffected.
//   - Re-opens strip kFsExclusive and kFsTruncate — the file already exists
//     and its contents must be preserved.
//   - When the restart manager has given up on the server (degraded mode),
//     calls return kUnavailable.
#ifndef SRC_SVC_FS_FS_ROBUST_H_
#define SRC_SVC_FS_FS_ROBUST_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "src/mk/kernel.h"
#include "src/mk/rpc_robust.h"
#include "src/mks/naming/name_server.h"
#include "src/svc/fs/file_server.h"
#include "src/svc/fs/fs_cache.h"
#include "src/svc/fs/protocol.h"

namespace svc {

class RobustFsSession : private FsCacheBackend {
 public:
  // `name_service` is a send right to the name service in the caller's task;
  // `fs_name` is the name the file server (and its respawns) register under.
  RobustFsSession(mk::PortName name_service, std::string fs_name,
                  const mk::RobustCallOptions& opts = mk::RobustCallOptions());

  // Handles returned here are session-local; the server-side handle behind
  // each may change across a crash without the caller noticing.
  base::Result<uint64_t> Open(mk::Env& env, const std::string& path, uint32_t flags = 0,
                              FsShare share = FsShare::kDenyNone);
  base::Result<uint32_t> Read(mk::Env& env, uint64_t handle, uint64_t offset, void* out,
                              uint32_t len);
  base::Result<uint32_t> Write(mk::Env& env, uint64_t handle, uint64_t offset, const void* data,
                               uint32_t len);
  // Handle-based attributes with the same crash transparency as Read/Write.
  base::Result<FileAttr> Stat(mk::Env& env, uint64_t handle);
  base::Status Close(mk::Env& env, uint64_t handle);
  // Memory-object export with re-open-and-retry. After a server restart this
  // returns the NEW instance's object id: pass it to
  // mk::Kernel::AdoptPagerBacking to re-point a surviving mapped object at
  // the respawn, so clean pages refault against the current generation.
  base::Result<FsMapping> MapObject(mk::Env& env, uint64_t handle, uint64_t min_len = 0);
  // Drops one mapping reference. An id the current instance never exported
  // (it died with the mappings) answers 0 remaining rather than an error.
  base::Result<uint32_t> UnmapObject(mk::Env& env, uint64_t object_id);

  // Turns on the client-side cache over the robust transport. The cache is
  // keyed by session-local handles (stable across crashes); every re-open
  // bumps the cache generation, dropping clean state cached against the dead
  // instance while keeping unflushed write-behind data — the client's only
  // copy — to be written through the re-opened handle.
  void EnableCache(const FsCacheOptions& opts = FsCacheOptions());
  FsCache* cache() { return cache_.get(); }
  // Coherence hook for restart-manager death notices: same effect as the
  // re-open path, usable without an Env from a death listener.
  void OnServerDeath() {
    if (cache_ != nullptr) {
      cache_->BumpGeneration();
    }
  }

  // Attaches a session-owned overload breaker to every call: sustained kBusy
  // (admission-control sheds, transient overload) trips it and later calls
  // fast-fail kUnavailable until the cooldown's half-open probe succeeds.
  // Off by default — crash-recovery-only sessions keep retrying as before.
  void EnableBreaker(const mk::BreakerOptions& opts = mk::BreakerOptions()) {
    breaker_ = mk::CircuitBreaker(opts);
    opts_.breaker = &breaker_;
  }
  const mk::CircuitBreaker* breaker() const { return opts_.breaker; }

  // Recovery observability for tests and campaigns.
  uint64_t reopens() const { return reopens_; }

 private:
  struct OpenState {
    std::string path;
    uint32_t flags = 0;
    FsShare share = FsShare::kDenyNone;
    uint64_t server_handle = 0;
  };

  base::Status Transport(mk::Env& env, const FsRequest& req, FsReply* reply, mk::RpcRef* ref);
  base::Status Reopen(mk::Env& env, OpenState& state);

  // FsCacheBackend over the robust transport, keyed by session-local handle.
  base::Result<uint32_t> CacheRead(mk::Env& env, uint64_t handle, uint64_t offset, void* out,
                                   uint32_t len) override;
  base::Result<uint32_t> CacheWrite(mk::Env& env, uint64_t handle, uint64_t offset,
                                    const void* data, uint32_t len) override;
  base::Result<FileAttr> CacheStat(mk::Env& env, uint64_t handle) override;

  mks::NameClient names_;
  std::string fs_name_;
  mk::PortName cached_port_ = mk::kNullPort;
  mk::RobustCallOptions opts_;
  mk::CircuitBreaker breaker_;  // engaged only after EnableBreaker
  std::map<uint64_t, OpenState> handles_;
  uint64_t next_local_ = 1;
  uint64_t reopens_ = 0;
  std::unique_ptr<FsCache> cache_;  // null = caching off
};

}  // namespace svc

#endif  // SRC_SVC_FS_FS_ROBUST_H_
