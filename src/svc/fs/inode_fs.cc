#include "src/svc/fs/inode_fs.h"

#include <cctype>
#include <cstring>

#include "src/base/log.h"

namespace svc {

namespace {
const hw::CodeRegion& LookupRegion() {
  static const hw::CodeRegion r = hw::DefineCode("svc.inodefs.lookup", 170);
  return r;
}
const hw::CodeRegion& IoRegion() {
  static const hw::CodeRegion r = hw::DefineCode("svc.inodefs.rw", 210);
  return r;
}
const hw::CodeRegion& JournalRegion() {
  static const hw::CodeRegion r = hw::DefineCode("svc.inodefs.journal", 150);
  return r;
}

struct Superblock {
  uint32_t magic;
  uint32_t total_sectors;
  uint32_t num_inodes;
  uint32_t inode_table_start;
  uint32_t inode_table_sectors;
  uint32_t bitmap_start;
  uint32_t bitmap_sectors;
  uint32_t journal_start;
  uint32_t journal_sectors;
  uint32_t data_start;
  uint32_t num_blocks;
  uint32_t journaled;
};

// One-transaction-at-a-time journal: sector 0 of the journal region is the
// journal superblock; records follow as (header, payload) sector pairs.
struct JournalSb {
  uint32_t magic;  // 'WJRN'
  uint32_t record_count;
  uint64_t seq;
};
constexpr uint32_t kJournalMagic = 0x574a524e;

struct JournalRecHeader {
  uint32_t magic;  // 'WJRC'
  uint32_t pad;
  uint64_t lba;
};
constexpr uint32_t kJournalRecMagic = 0x574a5243;
}  // namespace

InodeFs::InodeFs(mk::Kernel& kernel, BlockCache* cache, uint64_t sectors, InodeFsConfig config)
    : kernel_(kernel), cache_(cache), total_sectors_(sectors), config_(std::move(config)) {}

bool InodeFs::NamesEqual(const std::string& a, const char* b) const {
  if (config_.case_sensitive) {
    return a == b;
  }
  size_t i = 0;
  for (; i < a.size(); ++i) {
    if (b[i] == '\0' ||
        std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return b[i] == '\0';
}

// --- Journal ----------------------------------------------------------------------

base::Status InodeFs::TxnBegin(mk::Env& env) {
  if (!config_.journaled) {
    return base::Status::kOk;
  }
  WPOS_CHECK(!in_txn_) << "nested fs transaction";
  in_txn_ = true;
  txn_.clear();
  return base::Status::kOk;
}

base::Status InodeFs::MetaWrite(mk::Env& env, uint64_t lba, const void* data) {
  if (config_.journaled && in_txn_) {
    // Stage: visible to MetaReads of this transaction via the overlay scan.
    for (auto& [staged_lba, bytes] : txn_) {
      if (staged_lba == lba) {
        std::memcpy(bytes.data(), data, kSectorSize);
        return base::Status::kOk;
      }
    }
    std::vector<uint8_t> bytes(kSectorSize);
    std::memcpy(bytes.data(), data, kSectorSize);
    txn_.emplace_back(lba, std::move(bytes));
    return base::Status::kOk;
  }
  return cache_->WriteSector(env, lba, data);
}

// Metadata read honouring the in-flight transaction overlay.
static base::Status MetaReadImpl(BlockCache* cache, mk::Env& env,
                                 const std::vector<std::pair<uint64_t, std::vector<uint8_t>>>& txn,
                                 bool in_txn, uint64_t lba, void* out) {
  if (in_txn) {
    for (auto it = txn.rbegin(); it != txn.rend(); ++it) {
      if (it->first == lba) {
        std::memcpy(out, it->second.data(), BlockCache::kSectorSize);
        return base::Status::kOk;
      }
    }
  }
  return cache->ReadSector(env, lba, out);
}

#define META_READ(env, lba, out)                                                       \
  do {                                                                                 \
    const base::Status meta_status =                                                   \
        MetaReadImpl(cache_, (env), txn_, in_txn_ && config_.journaled, (lba), (out)); \
    if (meta_status != base::Status::kOk) {                                            \
      return meta_status;                                                              \
    }                                                                                  \
  } while (0)

base::Status InodeFs::TxnCommit(mk::Env& env) {
  if (!config_.journaled) {
    return base::Status::kOk;
  }
  WPOS_CHECK(in_txn_);
  in_txn_ = false;
  if (txn_.empty()) {
    return base::Status::kOk;
  }
  kernel_.cpu().Execute(JournalRegion());
  WPOS_CHECK(1 + txn_.size() * 2 <= config_.journal_sectors) << "transaction exceeds journal";
  // 1. Write the log records.
  uint32_t sector = journal_start_ + 1;
  for (const auto& [lba, bytes] : txn_) {
    uint8_t header[kSectorSize] = {};
    JournalRecHeader rec{kJournalRecMagic, 0, lba};
    std::memcpy(header, &rec, sizeof(rec));
    base::Status st = cache_->WriteSector(env, sector++, header);
    if (st != base::Status::kOk) {
      return st;
    }
    st = cache_->WriteSector(env, sector++, bytes.data());
    if (st != base::Status::kOk) {
      return st;
    }
    ++journal_records_;
  }
  // 2. Commit record: the journal superblock with the record count.
  uint8_t sb_sector[kSectorSize] = {};
  JournalSb sb{kJournalMagic, static_cast<uint32_t>(txn_.size()), next_txn_seq_++};
  std::memcpy(sb_sector, &sb, sizeof(sb));
  base::Status st = cache_->WriteSector(env, journal_start_, sb_sector);
  if (st != base::Status::kOk) {
    return st;
  }
  st = cache_->Flush(env);  // WAL ordering: log reaches the device first
  if (st != base::Status::kOk) {
    return st;
  }
  if (crash_before_apply_) {
    // Simulated crash: the log is durable, the main area is not updated.
    txn_.clear();
    mounted_ = false;
    return base::Status::kOk;
  }
  // 3. Apply to the main area, then retire the log.
  for (const auto& [lba, bytes] : txn_) {
    st = cache_->WriteSector(env, lba, bytes.data());
    if (st != base::Status::kOk) {
      return st;
    }
  }
  txn_.clear();
  sb.record_count = 0;
  std::memset(sb_sector, 0, sizeof(sb_sector));
  std::memcpy(sb_sector, &sb, sizeof(sb));
  return cache_->WriteSector(env, journal_start_, sb_sector);
}

base::Status InodeFs::ReplayJournal(mk::Env& env) {
  uint8_t sb_sector[kSectorSize];
  base::Status st = cache_->ReadSector(env, journal_start_, sb_sector);
  if (st != base::Status::kOk) {
    return st;
  }
  JournalSb sb;
  std::memcpy(&sb, sb_sector, sizeof(sb));
  if (sb.magic != kJournalMagic || sb.record_count == 0) {
    return base::Status::kOk;  // nothing to replay
  }
  ++journal_replays_;
  kernel_.cpu().Execute(JournalRegion());
  uint32_t sector = journal_start_ + 1;
  for (uint32_t i = 0; i < sb.record_count; ++i) {
    uint8_t header[kSectorSize];
    st = cache_->ReadSector(env, sector++, header);
    if (st != base::Status::kOk) {
      return st;
    }
    JournalRecHeader rec;
    std::memcpy(&rec, header, sizeof(rec));
    if (rec.magic != kJournalRecMagic) {
      return base::Status::kCorrupt;
    }
    uint8_t payload[kSectorSize];
    st = cache_->ReadSector(env, sector++, payload);
    if (st != base::Status::kOk) {
      return st;
    }
    st = cache_->WriteSector(env, rec.lba, payload);
    if (st != base::Status::kOk) {
      return st;
    }
  }
  sb.record_count = 0;
  std::memset(sb_sector, 0, sizeof(sb_sector));
  std::memcpy(sb_sector, &sb, sizeof(sb));
  st = cache_->WriteSector(env, journal_start_, sb_sector);
  if (st != base::Status::kOk) {
    return st;
  }
  return cache_->Flush(env);
}

// --- Format / mount --------------------------------------------------------------------

base::Status InodeFs::Format(mk::Env& env) {
  inode_table_sectors_ = (config_.num_inodes + kInodesPerSector - 1) / kInodesPerSector;
  inode_table_start_ = 1;
  bitmap_start_ = inode_table_start_ + inode_table_sectors_;
  // Provisional block count to size the bitmap.
  uint32_t data_guess = static_cast<uint32_t>(total_sectors_) - bitmap_start_;
  bitmap_sectors_ = (data_guess / 8 + kSectorSize - 1) / kSectorSize;
  journal_start_ = bitmap_start_ + bitmap_sectors_;
  const uint32_t journal = config_.journaled ? config_.journal_sectors : 0;
  data_start_ = journal_start_ + journal;
  num_blocks_ = static_cast<uint32_t>(total_sectors_) - data_start_;
  free_blocks_ = num_blocks_;

  uint8_t sector[kSectorSize] = {};
  Superblock sb{kMagic,
                static_cast<uint32_t>(total_sectors_),
                config_.num_inodes,
                inode_table_start_,
                inode_table_sectors_,
                bitmap_start_,
                bitmap_sectors_,
                journal_start_,
                journal,
                data_start_,
                num_blocks_,
                config_.journaled ? 1u : 0u};
  std::memcpy(sector, &sb, sizeof(sb));
  base::Status st = cache_->WriteSector(env, 0, sector);
  if (st != base::Status::kOk) {
    return st;
  }
  std::memset(sector, 0, sizeof(sector));
  for (uint32_t s = inode_table_start_; s < data_start_; ++s) {
    st = cache_->WriteSector(env, s, sector);
    if (st != base::Status::kOk) {
      return st;
    }
  }
  mounted_ = true;
  // Root directory inode.
  DiskInode root;
  root.mode = 2;
  st = WriteInode(env, kRootInode, root);
  if (st != base::Status::kOk) {
    return st;
  }
  return cache_->Flush(env);
}

base::Status InodeFs::Mount(mk::Env& env) {
  uint8_t sector[kSectorSize];
  base::Status st = cache_->ReadSector(env, 0, sector);
  if (st != base::Status::kOk) {
    return st;
  }
  Superblock sb;
  std::memcpy(&sb, sector, sizeof(sb));
  if (sb.magic != kMagic) {
    return base::Status::kCorrupt;
  }
  inode_table_start_ = sb.inode_table_start;
  inode_table_sectors_ = sb.inode_table_sectors;
  bitmap_start_ = sb.bitmap_start;
  bitmap_sectors_ = sb.bitmap_sectors;
  journal_start_ = sb.journal_start;
  data_start_ = sb.data_start;
  num_blocks_ = sb.num_blocks;
  config_.num_inodes = sb.num_inodes;
  crash_before_apply_ = false;
  if (sb.journaled != 0) {
    st = ReplayJournal(env);
    if (st != base::Status::kOk) {
      return st;
    }
  }
  // Count free blocks from the bitmap.
  free_blocks_ = 0;
  for (uint32_t s = 0; s < bitmap_sectors_; ++s) {
    st = cache_->ReadSector(env, bitmap_start_ + s, sector);
    if (st != base::Status::kOk) {
      return st;
    }
    for (uint32_t byte = 0; byte < kSectorSize; ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        const uint32_t block = (s * kSectorSize + byte) * 8 + bit;
        if (block < num_blocks_ && (sector[byte] & (1 << bit)) == 0) {
          ++free_blocks_;
        }
      }
    }
  }
  mounted_ = true;
  return base::Status::kOk;
}

base::Status InodeFs::Sync(mk::Env& env) { return cache_->Flush(env); }

// --- Inode and block management --------------------------------------------------------

base::Status InodeFs::ReadInode(mk::Env& env, NodeId ino, DiskInode* out) {
  if (ino == 0 || ino >= config_.num_inodes) {
    return base::Status::kInvalidArgument;
  }
  const uint64_t lba = inode_table_start_ + ino / kInodesPerSector;
  uint8_t sector[kSectorSize];
  META_READ(env, lba, sector);
  std::memcpy(out, sector + (ino % kInodesPerSector) * kInodeSize, kInodeSize);
  return base::Status::kOk;
}

base::Status InodeFs::WriteInode(mk::Env& env, NodeId ino, const DiskInode& inode) {
  const uint64_t lba = inode_table_start_ + ino / kInodesPerSector;
  uint8_t sector[kSectorSize];
  META_READ(env, lba, sector);
  std::memcpy(sector + (ino % kInodesPerSector) * kInodeSize, &inode, kInodeSize);
  return MetaWrite(env, lba, sector);
}

base::Result<NodeId> InodeFs::AllocInode(mk::Env& env, uint32_t mode) {
  for (NodeId ino = 1; ino < config_.num_inodes; ++ino) {
    DiskInode inode;
    const base::Status st = ReadInode(env, ino, &inode);
    if (st != base::Status::kOk) {
      return st;
    }
    if (inode.mode == 0) {
      DiskInode fresh;
      fresh.mode = mode;
      const base::Status wst = WriteInode(env, ino, fresh);
      if (wst != base::Status::kOk) {
        return wst;
      }
      return ino;
    }
  }
  return base::Status::kNoSpace;
}

base::Status InodeFs::FreeInode(mk::Env& env, NodeId ino) {
  DiskInode empty;
  return WriteInode(env, ino, empty);
}

base::Result<uint32_t> InodeFs::AllocBlock(mk::Env& env) {
  uint8_t sector[kSectorSize];
  for (uint32_t s = 0; s < bitmap_sectors_; ++s) {
    META_READ(env, bitmap_start_ + s, sector);
    for (uint32_t byte = 0; byte < kSectorSize; ++byte) {
      if (sector[byte] == 0xff) {
        continue;
      }
      for (int bit = 0; bit < 8; ++bit) {
        const uint32_t block = (s * kSectorSize + byte) * 8 + bit;
        if (block >= num_blocks_) {
          return base::Status::kNoSpace;
        }
        if ((sector[byte] & (1 << bit)) == 0) {
          sector[byte] |= static_cast<uint8_t>(1 << bit);
          const base::Status st = MetaWrite(env, bitmap_start_ + s, sector);
          if (st != base::Status::kOk) {
            return st;
          }
          --free_blocks_;
          return block;
        }
      }
    }
  }
  return base::Status::kNoSpace;
}

base::Status InodeFs::FreeBlock(mk::Env& env, uint32_t block) {
  const uint32_t s = block / 8 / kSectorSize;
  const uint32_t byte = (block / 8) % kSectorSize;
  uint8_t sector[kSectorSize];
  META_READ(env, bitmap_start_ + s, sector);
  sector[byte] &= static_cast<uint8_t>(~(1 << (block % 8)));
  ++free_blocks_;
  return MetaWrite(env, bitmap_start_ + s, sector);
}

base::Result<uint32_t> InodeFs::MapBlock(mk::Env& env, DiskInode* inode, NodeId ino,
                                         uint32_t index, bool allocate, bool* fresh) {
  if (fresh != nullptr) {
    *fresh = false;
  }
  if (index < kDirect) {
    if (inode->direct[index] == 0) {
      if (!allocate) {
        return base::Status::kNotFound;
      }
      auto block = AllocBlock(env);
      if (!block.ok()) {
        return block.status();
      }
      inode->direct[index] = *block + 1;  // +1 so 0 means "absent"
      if (fresh != nullptr) {
        *fresh = true;
      }
      const base::Status st = WriteInode(env, ino, *inode);
      if (st != base::Status::kOk) {
        return st;
      }
    }
    return inode->direct[index] - 1;
  }
  const uint32_t ind_index = index - kDirect;
  if (ind_index >= kPtrsPerIndirect) {
    return base::Status::kTooLarge;
  }
  if (inode->indirect == 0) {
    if (!allocate) {
      return base::Status::kNotFound;
    }
    auto block = AllocBlock(env);
    if (!block.ok()) {
      return block.status();
    }
    inode->indirect = *block + 1;
    uint8_t zero[kSectorSize] = {};
    base::Status st = MetaWrite(env, data_start_ + *block, zero);
    if (st != base::Status::kOk) {
      return st;
    }
    st = WriteInode(env, ino, *inode);
    if (st != base::Status::kOk) {
      return st;
    }
  }
  uint8_t sector[kSectorSize];
  const uint64_t ind_lba = data_start_ + inode->indirect - 1;
  META_READ(env, ind_lba, sector);
  uint32_t entry;
  std::memcpy(&entry, sector + ind_index * 4, 4);
  if (entry == 0) {
    if (!allocate) {
      return base::Status::kNotFound;
    }
    auto block = AllocBlock(env);
    if (!block.ok()) {
      return block.status();
    }
    entry = *block + 1;
    if (fresh != nullptr) {
      *fresh = true;
    }
    std::memcpy(sector + ind_index * 4, &entry, 4);
    const base::Status st = MetaWrite(env, ind_lba, sector);
    if (st != base::Status::kOk) {
      return st;
    }
  }
  return entry - 1;
}

base::Status InodeFs::FreeAllBlocks(mk::Env& env, DiskInode* inode) {
  for (uint32_t i = 0; i < kDirect; ++i) {
    if (inode->direct[i] != 0) {
      const base::Status st = FreeBlock(env, inode->direct[i] - 1);
      if (st != base::Status::kOk) {
        return st;
      }
      inode->direct[i] = 0;
    }
  }
  if (inode->indirect != 0) {
    uint8_t sector[kSectorSize];
    META_READ(env, data_start_ + inode->indirect - 1, sector);
    for (uint32_t i = 0; i < kPtrsPerIndirect; ++i) {
      uint32_t entry;
      std::memcpy(&entry, sector + i * 4, 4);
      if (entry != 0) {
        const base::Status st = FreeBlock(env, entry - 1);
        if (st != base::Status::kOk) {
          return st;
        }
      }
    }
    const base::Status st = FreeBlock(env, inode->indirect - 1);
    if (st != base::Status::kOk) {
      return st;
    }
    inode->indirect = 0;
  }
  return base::Status::kOk;
}

// --- Directory entries -------------------------------------------------------------------

base::Result<std::pair<NodeId, uint64_t>> InodeFs::FindEntry(mk::Env& env, NodeId dir,
                                                             const std::string& name) {
  DiskInode inode;
  base::Status st = ReadInode(env, dir, &inode);
  if (st != base::Status::kOk) {
    return st;
  }
  if (inode.mode != 2) {
    return base::Status::kInvalidArgument;
  }
  const uint64_t entries = inode.size / kDirentSize;
  for (uint64_t i = 0; i < entries; ++i) {
    const uint32_t block_index = static_cast<uint32_t>(i * kDirentSize / kSectorSize);
    auto block = MapBlock(env, &inode, dir, block_index, /*allocate=*/false);
    if (!block.ok()) {
      return block.status();
    }
    uint8_t sector[kSectorSize];
    META_READ(env, data_start_ + *block, sector);
    Dirent64 e;
    std::memcpy(&e, sector + (i * kDirentSize) % kSectorSize, kDirentSize);
    if (e.used != 0 && NamesEqual(name, e.name)) {
      return std::make_pair(static_cast<NodeId>(e.ino), i * kDirentSize);
    }
  }
  return base::Status::kNotFound;
}

base::Status InodeFs::WriteEntry(mk::Env& env, NodeId dir, uint64_t slot_offset,
                                 const Dirent64& e) {
  DiskInode inode;
  base::Status st = ReadInode(env, dir, &inode);
  if (st != base::Status::kOk) {
    return st;
  }
  const uint32_t block_index = static_cast<uint32_t>(slot_offset / kSectorSize);
  auto block = MapBlock(env, &inode, dir, block_index, /*allocate=*/true);
  if (!block.ok()) {
    return block.status();
  }
  uint8_t sector[kSectorSize];
  META_READ(env, data_start_ + *block, sector);
  std::memcpy(sector + slot_offset % kSectorSize, &e, kDirentSize);
  st = MetaWrite(env, data_start_ + *block, sector);
  if (st != base::Status::kOk) {
    return st;
  }
  if (slot_offset + kDirentSize > inode.size) {
    // Re-read: MapBlock may have updated the inode (fresh block pointers).
    st = ReadInode(env, dir, &inode);
    if (st != base::Status::kOk) {
      return st;
    }
    inode.size = slot_offset + kDirentSize;
    return WriteInode(env, dir, inode);
  }
  return base::Status::kOk;
}

// --- Pfs operations -------------------------------------------------------------------------

base::Result<NodeId> InodeFs::Lookup(mk::Env& env, NodeId dir, const std::string& name) {
  kernel_.cpu().Execute(LookupRegion());
  auto found = FindEntry(env, dir, name);
  if (!found.ok()) {
    return found.status();
  }
  return found->first;
}

base::Result<NodeId> InodeFs::Create(mk::Env& env, NodeId dir, const std::string& name,
                                     bool directory) {
  kernel_.cpu().Execute(LookupRegion());
  if (name.empty() || name.size() > kNameMax || name.find('/') != std::string::npos) {
    return base::Status::kInvalidArgument;
  }
  if (FindEntry(env, dir, name).ok()) {
    return base::Status::kAlreadyExists;
  }
  base::Status st = TxnBegin(env);
  if (st != base::Status::kOk) {
    return st;
  }
  auto ino = AllocInode(env, directory ? 2u : 1u);
  if (!ino.ok()) {
    return ino.status();
  }
  // Find a free slot (reuse unused entries).
  DiskInode dnode;
  st = ReadInode(env, dir, &dnode);
  if (st != base::Status::kOk) {
    return st;
  }
  uint64_t slot = dnode.size;
  const uint64_t entries = dnode.size / kDirentSize;
  for (uint64_t i = 0; i < entries; ++i) {
    const uint32_t block_index = static_cast<uint32_t>(i * kDirentSize / kSectorSize);
    auto block = MapBlock(env, &dnode, dir, block_index, false);
    if (!block.ok()) {
      break;
    }
    uint8_t sector[kSectorSize];
    META_READ(env, data_start_ + *block, sector);
    Dirent64 e;
    std::memcpy(&e, sector + (i * kDirentSize) % kSectorSize, kDirentSize);
    if (e.used == 0) {
      slot = i * kDirentSize;
      break;
    }
  }
  Dirent64 e;
  std::strncpy(e.name, name.c_str(), kNameMax);
  e.ino = static_cast<uint32_t>(*ino);
  e.used = 1;
  st = WriteEntry(env, dir, slot, e);
  if (st != base::Status::kOk) {
    return st;
  }
  st = TxnCommit(env);
  if (st != base::Status::kOk) {
    return st;
  }
  return *ino;
}

base::Status InodeFs::Remove(mk::Env& env, NodeId dir, const std::string& name) {
  auto found = FindEntry(env, dir, name);
  if (!found.ok()) {
    return found.status();
  }
  DiskInode inode;
  base::Status st = ReadInode(env, found->first, &inode);
  if (st != base::Status::kOk) {
    return st;
  }
  if (inode.mode == 2) {
    // Directory: must be empty.
    const uint64_t entries = inode.size / kDirentSize;
    for (uint64_t i = 0; i < entries; ++i) {
      const uint32_t block_index = static_cast<uint32_t>(i * kDirentSize / kSectorSize);
      auto block = MapBlock(env, &inode, found->first, block_index, false);
      if (!block.ok()) {
        continue;
      }
      uint8_t sector[kSectorSize];
      META_READ(env, data_start_ + *block, sector);
      Dirent64 e;
      std::memcpy(&e, sector + (i * kDirentSize) % kSectorSize, kDirentSize);
      if (e.used != 0) {
        return base::Status::kBusy;
      }
    }
  }
  st = TxnBegin(env);
  if (st != base::Status::kOk) {
    return st;
  }
  st = FreeAllBlocks(env, &inode);
  if (st != base::Status::kOk) {
    return st;
  }
  st = FreeInode(env, found->first);
  if (st != base::Status::kOk) {
    return st;
  }
  Dirent64 empty;
  st = WriteEntry(env, dir, found->second, empty);
  if (st != base::Status::kOk) {
    return st;
  }
  return TxnCommit(env);
}

base::Status InodeFs::Rename(mk::Env& env, NodeId from_dir, const std::string& from,
                             NodeId to_dir, const std::string& to) {
  if (to.empty() || to.size() > kNameMax) {
    return base::Status::kInvalidArgument;
  }
  auto found = FindEntry(env, from_dir, from);
  if (!found.ok()) {
    return found.status();
  }
  if (FindEntry(env, to_dir, to).ok()) {
    return base::Status::kAlreadyExists;
  }
  base::Status st = TxnBegin(env);
  if (st != base::Status::kOk) {
    return st;
  }
  Dirent64 e;
  std::memset(&e, 0, sizeof(e));
  std::strncpy(e.name, to.c_str(), kNameMax);
  e.ino = static_cast<uint32_t>(found->first);
  e.used = 1;
  // Append in the destination, clear the source slot.
  DiskInode dnode;
  st = ReadInode(env, to_dir, &dnode);
  if (st != base::Status::kOk) {
    return st;
  }
  st = WriteEntry(env, to_dir, dnode.size, e);
  if (st != base::Status::kOk) {
    return st;
  }
  Dirent64 empty;
  st = WriteEntry(env, from_dir, found->second, empty);
  if (st != base::Status::kOk) {
    return st;
  }
  return TxnCommit(env);
}

base::Result<uint32_t> InodeFs::Read(mk::Env& env, NodeId node, uint64_t offset, void* out,
                                     uint32_t len) {
  kernel_.cpu().Execute(IoRegion());
  DiskInode inode;
  const base::Status st = ReadInode(env, node, &inode);
  if (st != base::Status::kOk) {
    return st;
  }
  if (inode.mode == 0) {
    return base::Status::kNotFound;
  }
  if (offset >= inode.size) {
    return 0u;
  }
  len = static_cast<uint32_t>(std::min<uint64_t>(len, inode.size - offset));
  uint32_t done = 0;
  while (done < len) {
    const uint64_t pos = offset + done;
    const uint32_t block_index = static_cast<uint32_t>(pos / kSectorSize);
    const uint32_t in_block = static_cast<uint32_t>(pos % kSectorSize);
    const uint32_t chunk = std::min(len - done, kSectorSize - in_block);
    auto block = MapBlock(env, &inode, node, block_index, /*allocate=*/false);
    if (!block.ok()) {
      // Sparse hole: zeros.
      std::memset(static_cast<uint8_t*>(out) + done, 0, chunk);
    } else {
      uint8_t sector[kSectorSize];
      const base::Status rst = cache_->ReadSector(env, data_start_ + *block, sector);
      if (rst != base::Status::kOk) {
        return rst;
      }
      std::memcpy(static_cast<uint8_t*>(out) + done, sector + in_block, chunk);
    }
    done += chunk;
  }
  return done;
}

base::Result<uint32_t> InodeFs::Write(mk::Env& env, NodeId node, uint64_t offset,
                                      const void* data, uint32_t len) {
  kernel_.cpu().Execute(IoRegion());
  DiskInode inode;
  base::Status st = ReadInode(env, node, &inode);
  if (st != base::Status::kOk) {
    return st;
  }
  if (inode.mode != 1) {
    return base::Status::kInvalidArgument;
  }
  st = TxnBegin(env);  // block-pointer/bitmap updates are metadata
  if (st != base::Status::kOk) {
    return st;
  }
  uint32_t done = 0;
  while (done < len) {
    const uint64_t pos = offset + done;
    const uint32_t block_index = static_cast<uint32_t>(pos / kSectorSize);
    const uint32_t in_block = static_cast<uint32_t>(pos % kSectorSize);
    const uint32_t chunk = std::min(len - done, kSectorSize - in_block);
    bool fresh = false;
    auto block = MapBlock(env, &inode, node, block_index, /*allocate=*/true, &fresh);
    if (!block.ok()) {
      (void)TxnCommit(env);
      return block.status();
    }
    uint8_t sector[kSectorSize] = {};
    if (chunk < kSectorSize && !fresh) {
      // Partial write into an existing block: preserve the rest. A fresh
      // block stays zeroed — reading it would resurrect a previous owner's
      // bytes.
      const base::Status rst = cache_->ReadSector(env, data_start_ + *block, sector);
      if (rst != base::Status::kOk) {
        (void)TxnCommit(env);
        return rst;
      }
    }
    std::memcpy(sector + in_block, static_cast<const uint8_t*>(data) + done, chunk);
    const base::Status wst = cache_->WriteSector(env, data_start_ + *block, sector);
    if (wst != base::Status::kOk) {
      (void)TxnCommit(env);
      return wst;
    }
    done += chunk;
  }
  // MapBlock may have rewritten the inode; reload before the size update.
  st = ReadInode(env, node, &inode);
  if (st != base::Status::kOk) {
    (void)TxnCommit(env);
    return st;
  }
  if (offset + len > inode.size) {
    inode.size = offset + len;
    st = WriteInode(env, node, inode);
    if (st != base::Status::kOk) {
      (void)TxnCommit(env);
      return st;
    }
  }
  st = TxnCommit(env);
  if (st != base::Status::kOk) {
    return st;
  }
  return done;
}

base::Result<FileAttr> InodeFs::GetAttr(mk::Env& env, NodeId node) {
  DiskInode inode;
  const base::Status st = ReadInode(env, node, &inode);
  if (st != base::Status::kOk) {
    return st;
  }
  if (inode.mode == 0) {
    return base::Status::kNotFound;
  }
  return FileAttr{.size = inode.size, .directory = inode.mode == 2};
}

base::Status InodeFs::SetSize(mk::Env& env, NodeId node, uint64_t size) {
  DiskInode inode;
  base::Status st = ReadInode(env, node, &inode);
  if (st != base::Status::kOk) {
    return st;
  }
  if (inode.mode != 1) {
    return base::Status::kInvalidArgument;
  }
  if (size > inode.size) {
    return base::Status::kNotSupported;
  }
  st = TxnBegin(env);
  if (st != base::Status::kOk) {
    return st;
  }
  // Free whole blocks beyond the new size (direct pointers only for brevity;
  // indirect blocks are freed lazily when the file is removed).
  const uint32_t keep_blocks = static_cast<uint32_t>((size + kSectorSize - 1) / kSectorSize);
  for (uint32_t i = keep_blocks; i < kDirect; ++i) {
    if (inode.direct[i] != 0) {
      st = FreeBlock(env, inode.direct[i] - 1);
      if (st != base::Status::kOk) {
        (void)TxnCommit(env);
        return st;
      }
      inode.direct[i] = 0;
    }
  }
  inode.size = size;
  st = WriteInode(env, node, inode);
  if (st != base::Status::kOk) {
    (void)TxnCommit(env);
    return st;
  }
  return TxnCommit(env);
}

base::Result<std::vector<DirEntry>> InodeFs::ReadDir(mk::Env& env, NodeId dir) {
  DiskInode inode;
  base::Status st = ReadInode(env, dir, &inode);
  if (st != base::Status::kOk) {
    return st;
  }
  if (inode.mode != 2) {
    return base::Status::kInvalidArgument;
  }
  std::vector<DirEntry> out;
  const uint64_t entries = inode.size / kDirentSize;
  for (uint64_t i = 0; i < entries; ++i) {
    const uint32_t block_index = static_cast<uint32_t>(i * kDirentSize / kSectorSize);
    auto block = MapBlock(env, &inode, dir, block_index, false);
    if (!block.ok()) {
      continue;
    }
    uint8_t sector[kSectorSize];
    META_READ(env, data_start_ + *block, sector);
    Dirent64 e;
    std::memcpy(&e, sector + (i * kDirentSize) % kSectorSize, kDirentSize);
    if (e.used != 0) {
      DiskInode child;
      const base::Status cst = ReadInode(env, e.ino, &child);
      DirEntry entry;
      entry.name = e.name;
      entry.node = e.ino;
      entry.directory = cst == base::Status::kOk && child.mode == 2;
      out.push_back(std::move(entry));
    }
  }
  return out;
}

base::Status InodeFs::SetEa(mk::Env& env, NodeId node, const std::string& key,
                            const std::string& value) {
  if (key.size() + value.size() + 2 > sizeof(DiskInode{}.ea[0])) {
    return base::Status::kTooLarge;
  }
  DiskInode inode;
  base::Status st = ReadInode(env, node, &inode);
  if (st != base::Status::kOk) {
    return st;
  }
  st = TxnBegin(env);
  if (st != base::Status::kOk) {
    return st;
  }
  int free_slot = -1;
  int match_slot = -1;
  for (uint32_t i = 0; i < kEaSlots; ++i) {
    if (inode.ea[i][0] == '\0') {
      if (free_slot < 0) {
        free_slot = static_cast<int>(i);
      }
    } else if (key == inode.ea[i]) {
      match_slot = static_cast<int>(i);
    }
  }
  const int slot = match_slot >= 0 ? match_slot : free_slot;
  if (slot < 0) {
    (void)TxnCommit(env);
    return base::Status::kNoSpace;
  }
  std::memset(inode.ea[slot], 0, sizeof(inode.ea[slot]));
  std::memcpy(inode.ea[slot], key.c_str(), key.size());
  std::memcpy(inode.ea[slot] + key.size() + 1, value.c_str(), value.size());
  st = WriteInode(env, node, inode);
  if (st != base::Status::kOk) {
    (void)TxnCommit(env);
    return st;
  }
  return TxnCommit(env);
}

base::Result<std::string> InodeFs::GetEa(mk::Env& env, NodeId node, const std::string& key) {
  DiskInode inode;
  const base::Status st = ReadInode(env, node, &inode);
  if (st != base::Status::kOk) {
    return st;
  }
  for (uint32_t i = 0; i < kEaSlots; ++i) {
    if (inode.ea[i][0] != '\0' && key == inode.ea[i]) {
      return std::string(inode.ea[i] + key.size() + 1);
    }
  }
  return base::Status::kNotFound;
}

}  // namespace svc
