// Client-side file caching: the RPCs you never send.
//
// The paper's Table 2 prices every cross-server interaction at 3-8x a kernel
// trap, so after the zero-copy work made each RPC cheaper the next lever is
// sending fewer of them. FsCache keeps four kinds of client-side state:
//
//   - a name-resolution cache in front of the name-server lookup;
//   - a per-handle attribute/size cache, fed by the handle-based kFsStat op
//     and primed from open replies;
//   - a block-granular read-ahead buffer — a sequential reader's next misses
//     are served from the over-fetch of the previous one;
//   - a bounded write-behind run that coalesces contiguous small writes into
//     one bulk RPC, flushed explicitly on Close/Sync (or when the bound or a
//     non-contiguous write forces it).
//
// Coherence is write-through invalidation locally (a write drops any cached
// read span it overlaps) plus generation stamping for the server side:
// RobustFsSession re-open and restart-manager death notices call
// BumpGeneration(), which drops every piece of *clean* cached state. Dirty
// write-behind data is deliberately kept — it is the client's only copy —
// and is flushed through the (re-resolved, re-opened) transport on the next
// write/read/flush. Caching is default-off everywhere; the committed bench
// baselines are produced with caches off and stay byte-identical.
//
// The cache holds policy and state only. The owner (FsClient or
// RobustFsSession) implements FsCacheBackend with its own transport, so the
// same engine runs over plain stub calls and over the crash-transparent
// robust path without knowing the difference.
#ifndef SRC_SVC_FS_FS_CACHE_H_
#define SRC_SVC_FS_FS_CACHE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/mk/kernel.h"
#include "src/svc/fs/pfs.h"
#include "src/svc/fs/protocol.h"

namespace svc {

struct FsCacheOptions {
  // Extra bytes fetched past a sequential read miss (capped so the fetch
  // stays within one kFsMaxIo RPC).
  uint32_t readahead_bytes = 32 * 1024;
  // Write-behind bound: a coalescing run is flushed once it reaches this.
  uint32_t writeback_max_bytes = 64 * 1024;
};

// The uncached I/O the cache falls back to on a miss or flush.
class FsCacheBackend {
 public:
  virtual ~FsCacheBackend() = default;
  virtual base::Result<uint32_t> CacheRead(mk::Env& env, uint64_t handle, uint64_t offset,
                                           void* out, uint32_t len) = 0;
  virtual base::Result<uint32_t> CacheWrite(mk::Env& env, uint64_t handle, uint64_t offset,
                                            const void* data, uint32_t len) = 0;
  virtual base::Result<FileAttr> CacheStat(mk::Env& env, uint64_t handle) = 0;
};

class FsCache {
 public:
  explicit FsCache(const FsCacheOptions& opts = FsCacheOptions());

  // Cached I/O, byte-identical to issuing the same call sequence uncached.
  base::Result<uint32_t> Read(mk::Env& env, FsCacheBackend& be, uint64_t handle, uint64_t offset,
                              void* out, uint32_t len);
  base::Result<uint32_t> Write(mk::Env& env, FsCacheBackend& be, uint64_t handle, uint64_t offset,
                               const void* data, uint32_t len);
  base::Result<FileAttr> Stat(mk::Env& env, FsCacheBackend& be, uint64_t handle);

  // Flushes the handle's write-behind run (if any).
  base::Status FlushHandle(mk::Env& env, FsCacheBackend& be, uint64_t handle);
  base::Status FlushAll(mk::Env& env, FsCacheBackend& be);
  // Close-time: flush, then forget everything about the handle.
  base::Status CloseHandle(mk::Env& env, FsCacheBackend& be, uint64_t handle);

  // Local write-through invalidation for side doors that change file state
  // without going through Read/Write (SetSize, ReadV/WriteV, locks...).
  void InvalidateHandle(uint64_t handle);

  // Seeds the attribute cache without an RPC (open replies carry the attr).
  void PrimeAttr(uint64_t handle, const FileAttr& attr);

  // Name-resolution cache fronting the name server. TakeName is the form a
  // robust resolver wants: one-shot, so a name that turns out to point at a
  // dead instance is not returned twice — the retry goes to the name server.
  bool LookupName(const std::string& name, mk::PortName* out) const;
  bool TakeName(const std::string& name, mk::PortName* out);
  void StoreName(const std::string& name, mk::PortName right);

  // Server-restart coherence: drops all clean cached state (names, attrs,
  // read-ahead) and stamps a new generation. Dirty write-behind runs are
  // kept — they still have to reach the respawned server.
  void BumpGeneration();
  uint64_t generation() const { return generation_; }

  // Observability for tests and benches (mirrored into the metric registry
  // as mk.fs.cache.{hits,misses,invalidations,writeback_bytes} once a call
  // has seen a kernel).
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t invalidations() const { return invalidations_; }
  uint64_t writeback_bytes() const { return writeback_bytes_; }

 private:
  struct HandleState {
    bool attr_valid = false;
    FileAttr attr;
    // Clean read-ahead span [ra_offset, ra_offset + ra_data.size()).
    uint64_t ra_offset = 0;
    std::vector<uint8_t> ra_data;
    // Sequential-read detector: the offset the next in-order read would use.
    uint64_t expected_next = 0;
    // Dirty write-behind run [wb_offset, wb_offset + wb_data.size()).
    uint64_t wb_offset = 0;
    std::vector<uint8_t> wb_data;
  };

  void Observe(mk::Env& env);  // latches the tracer for metrics/events
  void CountHit(uint64_t handle, uint64_t offset);
  void CountMiss();
  void CountInvalidate(uint64_t handle);
  base::Status Flush(mk::Env& env, FsCacheBackend& be, uint64_t handle, HandleState& s);

  FsCacheOptions opts_;
  std::map<uint64_t, HandleState> handles_;
  std::map<std::string, mk::PortName> names_;
  uint64_t generation_ = 0;
  mk::trace::Tracer* tracer_ = nullptr;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t invalidations_ = 0;
  uint64_t writeback_bytes_ = 0;
};

}  // namespace svc

#endif  // SRC_SVC_FS_FS_CACHE_H_
