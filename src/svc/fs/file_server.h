// The file server: the archetypal personality-neutral shared service.
//
// A separate user-level task providing generic file service over an extended
// vnode architecture (multiple physical file systems mounted into one rooted
// tree, integrated with the name service), with the *union* of the
// personalities' stateful semantics implemented server-side:
//   - OS/2: deny-mode sharing, delete-on-close, extended attributes,
//     case-insensitive lookup;
//   - UNIX: append mode, byte-range locks, case-sensitive lookup;
//   - TalOS: case-insensitive opens over case-preserving stores.
// Open files are tracked per handle with a port granted to the client (the
// paper: "heavy use of ports to manage open files").
#ifndef SRC_SVC_FS_FILE_SERVER_H_
#define SRC_SVC_FS_FILE_SERVER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/mk/kernel.h"
#include "src/mk/server_loop.h"
#include "src/svc/fs/fs_cache.h"
#include "src/svc/fs/pfs.h"
#include "src/svc/fs/protocol.h"

namespace svc {

class FileServer {
 public:
  // `handle_base` is where handle numbering starts. A restart factory passes
  // a per-generation base so a client's stale handle from the crashed
  // instance can never alias a live handle on the respawn — it fails with
  // kInvalidArgument and the robust session re-opens.
  FileServer(mk::Kernel& kernel, mk::Task* task, uint64_t handle_base = 1);

  // Mounts `pfs` at `prefix` (e.g. "/os2"). Must happen before Run serves
  // requests that touch the prefix. The PFS must already be formatted.
  base::Status AddMount(const std::string& prefix, Pfs* pfs);

  mk::Task* task() const { return task_; }
  mk::PortName receive_port() const { return receive_port_; }
  mk::PortName GrantTo(mk::Task& client);
  void Stop() { running_ = false; }

  // Turns the server into a pager: allocates a second service port, spawns a
  // "fs-pager" thread serving PagerOp requests against the mounted files, and
  // lets kMapObject export kernel memory objects for open files. Default-off:
  // without this call kMapObject answers kNotSupported and no extra thread
  // exists, so existing workloads are bit-identical. Call before Run.
  void EnableMapping();
  bool mapping_enabled() const { return pager_receive_port_ != mk::kNullPort; }

  // Arms watchdog heartbeats, same protocol as mk::ServerLoop: a ping to
  // `health_right` (send right in this server's task) on request arrival
  // (every `every_requests`) and from idle via a timed receive every
  // `every_ns`. Call before the server thread starts serving.
  void EnableHeartbeat(mk::PortName health_right, uint64_t every_requests, uint64_t every_ns) {
    health_right_ = health_right;
    heartbeat_every_requests_ = every_requests == 0 ? 1 : every_requests;
    heartbeat_every_ns_ = every_ns;
  }

  uint64_t opens() const { return opens_; }
  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }
  size_t open_files() const { return open_files_.size(); }
  uint64_t pageins() const { return pageins_; }
  uint64_t pageouts() const { return pageouts_; }
  size_t mapped_objects() const { return map_objects_.size(); }

 private:
  struct Mount {
    std::string prefix;  // "/", "/os2", ... canonical, no trailing slash
    Pfs* pfs = nullptr;
  };

  struct LockRange {
    uint64_t start = 0;
    uint64_t len = 0;
    bool exclusive = false;
    uint64_t handle = 0;
  };

  // Shared, per-file state (all opens of the same node).
  struct NodeState {
    uint32_t open_count = 0;
    uint32_t deny_write = 0;  // opens holding deny-write or deny-all
    uint32_t deny_all = 0;
    uint32_t writers = 0;
    bool delete_on_close = false;
    NodeId parent = 0;
    std::string name;  // for delete-on-close
    std::vector<LockRange> locks;
  };

  struct OpenFile {
    Mount* mount = nullptr;
    NodeId node = 0;
    uint32_t flags = 0;
    FsShare share = FsShare::kDenyNone;
    mk::PortName file_port = mk::kNullPort;  // identity object granted to the client
    hw::PhysAddr sim_addr = 0;
  };

  // One mapped file: the kernel VmObject exported for a node, shared by every
  // client mapping it. `map_count` counts kMapObject grants minus kMapRelease
  // drops; the state dies when the last mapping's kObjectTerminate arrives.
  struct MapObjectState {
    std::shared_ptr<mk::VmObject> object;
    uint64_t object_id = 0;
    uint32_t map_count = 0;
    Mount* mount = nullptr;
    NodeId node = 0;
  };

  void Serve(mk::Env& env);
  void ServePager(mk::Env& env);
  void TeardownPagerPort();
  // Drops clean resident pages of the node's mapped object overlapping
  // [offset, offset+len) so mapped readers refault and observe a write made
  // through the file API. No-op when the node isn't mapped.
  void InvalidateMappedRange(Mount* mount, NodeId node, uint64_t offset, uint64_t len);
  void SendHeartbeat(mk::Env& env);
  Mount* MountFor(const std::string& path, std::string* rest);
  // Walks `rest` within `mount`; returns the final node and (optionally) its
  // parent + leaf name. Honours kFsCaseInsensitive over case-sensitive PFSes
  // by falling back to a directory scan (one of the union-semantics costs).
  base::Result<NodeId> Walk(mk::Env& env, Mount* mount, const std::string& rest,
                            bool case_insensitive, NodeId* parent, std::string* leaf,
                            bool stop_at_parent);
  base::Result<NodeId> LookupChild(mk::Env& env, Mount* mount, NodeId dir,
                                   const std::string& name, bool case_insensitive);

  void HandleOpen(mk::Env& env, const mk::RpcRequest& rpc, const FsRequest& r);
  void HandleClose(mk::Env& env, const mk::RpcRequest& rpc, const FsRequest& r);
  void HandleRead(mk::Env& env, const mk::RpcRequest& rpc, const FsRequest& r);
  void HandleWrite(mk::Env& env, const mk::RpcRequest& rpc, const FsRequest& r,
                   const uint8_t* data, uint32_t data_len);
  void HandleReadV(mk::Env& env, const mk::RpcRequest& rpc, const FsRequest& r,
                   const uint8_t* ref_data, uint32_t ref_len);
  void HandleWriteV(mk::Env& env, const mk::RpcRequest& rpc, const FsRequest& r,
                    const uint8_t* ref_data, uint32_t ref_len);
  void HandlePathOp(mk::Env& env, const mk::RpcRequest& rpc, const FsRequest& r);
  void HandleLock(mk::Env& env, const mk::RpcRequest& rpc, const FsRequest& r);
  void HandleStat(mk::Env& env, const mk::RpcRequest& rpc, const FsRequest& r);
  void HandleMapObject(mk::Env& env, const mk::RpcRequest& rpc, const FsRequest& r);
  void HandleMapRelease(mk::Env& env, const mk::RpcRequest& rpc, const FsRequest& r);

  bool LockConflicts(const NodeState& state, uint64_t start, uint64_t len, bool exclusive,
                     uint64_t handle) const;

  std::pair<uint64_t, uint64_t> NodeKey(Mount* m, NodeId n) const {
    return {reinterpret_cast<uint64_t>(m), n};
  }

  mk::Kernel& kernel_;
  mk::Task* task_;
  mk::PortName receive_port_ = mk::kNullPort;
  std::vector<std::unique_ptr<Mount>> mounts_;  // longest prefix wins
  std::map<uint64_t, OpenFile> open_files_;
  std::map<std::pair<uint64_t, uint64_t>, NodeState> node_states_;
  uint64_t next_handle_ = 1;
  uint64_t opens_ = 0;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  bool running_ = true;
  mk::PortName health_right_ = mk::kNullPort;  // kNullPort = heartbeats off
  uint64_t heartbeat_every_requests_ = 1;
  uint64_t heartbeat_every_ns_ = 0;
  uint64_t requests_since_beat_ = 0;
  uint64_t last_beat_ns_ = 0;
  // --- Mapping/pager state (EnableMapping) ---
  mk::PortName pager_receive_port_ = mk::kNullPort;
  mk::Port* pager_port_raw_ = nullptr;
  std::map<uint64_t, MapObjectState> map_objects_;              // by object id
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> node_map_;  // NodeKey -> object id
  uint64_t pageins_ = 0;
  uint64_t pageouts_ = 0;
};

// Client-side scatter/gather descriptors for FsClient::ReadV/WriteV. Each
// extent names its own file offset and buffer; one RPC moves all of them.
struct FsReadExtent {
  uint64_t offset = 0;
  void* buf = nullptr;
  uint32_t len = 0;
};
struct FsWriteExtent {
  uint64_t offset = 0;
  const void* buf = nullptr;
  uint32_t len = 0;
};

// FsClient::MapObject result: the kernel memory-object id the server exported
// for the file, plus the file size at map time.
struct FsMapping {
  uint64_t object_id = 0;
  uint64_t size = 0;
};

// Client library: the RPC stubs a personality links against.
class FsClient : private FsCacheBackend {
 public:
  // `call_timeout_ns` bounds every RPC in simulated time (kForever = none):
  // a wedged server then surfaces as kTimedOut instead of a hung client.
  explicit FsClient(mk::PortName service, uint64_t call_timeout_ns = mk::kForever)
      : stub_("svc.fs.client", service) {
    stub_.set_default_timeout_ns(call_timeout_ns);
  }

  // Re-bounds every subsequent RPC (in-flight calls keep their deadline).
  void set_call_timeout_ns(uint64_t ns) { stub_.set_default_timeout_ns(ns); }

  // Turns on the client-side cache (attr + read-ahead + write-behind).
  // Default-off: until this call every operation is a straight RPC and the
  // committed bench baselines are reproduced bit-for-bit.
  void EnableCache(const FsCacheOptions& opts = FsCacheOptions());
  FsCache* cache() { return cache_.get(); }

  base::Result<uint64_t> Open(mk::Env& env, const std::string& path, uint32_t flags = 0,
                              FsShare share = FsShare::kDenyNone);
  base::Status Close(mk::Env& env, uint64_t handle);
  base::Result<uint32_t> Read(mk::Env& env, uint64_t handle, uint64_t offset, void* out,
                              uint32_t len);
  base::Result<uint32_t> Write(mk::Env& env, uint64_t handle, uint64_t offset, const void* data,
                               uint32_t len);
  // Scatter read / gather write: up to kFsMaxExtents extents (total bytes
  // capped at kFsMaxIo) served by a single RPC. Returns total bytes moved;
  // a short count fills extents in order and stops at the first short one.
  base::Result<uint32_t> ReadV(mk::Env& env, uint64_t handle, const FsReadExtent* extents,
                               uint32_t count);
  base::Result<uint32_t> WriteV(mk::Env& env, uint64_t handle, const FsWriteExtent* extents,
                                uint32_t count);
  base::Result<FileAttr> GetAttr(mk::Env& env, const std::string& path);
  // Handle-based attributes (kFsStat): no server-side path walk, and served
  // from the attribute cache when caching is on. What fstat/SEEK_END want.
  base::Result<FileAttr> Stat(mk::Env& env, uint64_t handle);
  base::Status SetSize(mk::Env& env, uint64_t handle, uint64_t size);
  base::Status Mkdir(mk::Env& env, const std::string& path);
  base::Result<std::vector<DirEntry>> ReadDir(mk::Env& env, const std::string& path);
  base::Status Unlink(mk::Env& env, const std::string& path);
  base::Status Rename(mk::Env& env, const std::string& from, const std::string& to);
  base::Status Lock(mk::Env& env, uint64_t handle, uint64_t start, uint64_t len, bool exclusive);
  base::Status Unlock(mk::Env& env, uint64_t handle, uint64_t start, uint64_t len);
  base::Status SetEa(mk::Env& env, const std::string& path, const std::string& key,
                     const std::string& value);
  base::Result<std::string> GetEa(mk::Env& env, const std::string& path, const std::string& key);
  base::Status Sync(mk::Env& env);
  // Exports a memory object for the open file (server must have
  // EnableMapping); `min_len` sizes the object to at least that many bytes so
  // a mapping larger than the current file is honoured. Pending write-behind
  // for the handle is flushed first so mapped pages observe it.
  base::Result<FsMapping> MapObject(mk::Env& env, uint64_t handle, uint64_t min_len = 0);
  // Drops one mapping reference; returns the references remaining server-side.
  base::Result<uint32_t> UnmapObject(mk::Env& env, uint64_t object_id);
  // Publishes the handle's write-behind run to the server (no-op without the
  // cache). Mapped readers of the same file need this after cached writes.
  base::Status Flush(mk::Env& env, uint64_t handle);

 private:
  // FsCacheBackend: the raw single-RPC path the cache misses into.
  base::Result<uint32_t> CacheRead(mk::Env& env, uint64_t handle, uint64_t offset, void* out,
                                   uint32_t len) override;
  base::Result<uint32_t> CacheWrite(mk::Env& env, uint64_t handle, uint64_t offset,
                                    const void* data, uint32_t len) override;
  base::Result<FileAttr> CacheStat(mk::Env& env, uint64_t handle) override;

  mk::ClientStub stub_;
  std::unique_ptr<FsCache> cache_;  // null = caching off
};

}  // namespace svc

#endif  // SRC_SVC_FS_FILE_SERVER_H_
