#include "src/svc/fs/fs_cache.h"

#include <algorithm>
#include <cstring>

namespace svc {

namespace {
// The cache's own lookup/copy work, charged like any other client library
// code so a hit is cheap but not free.
const hw::CodeRegion& CacheHitRegion() {
  static const hw::CodeRegion r = hw::DefineCode("svc.fs.cache_hit", 60);
  return r;
}
const hw::CodeRegion& CacheMissRegion() {
  static const hw::CodeRegion r = hw::DefineCode("svc.fs.cache_miss", 40);
  return r;
}

bool Overlaps(uint64_t a_off, uint64_t a_len, uint64_t b_off, uint64_t b_len) {
  return a_off < b_off + b_len && b_off < a_off + a_len;
}
}  // namespace

FsCache::FsCache(const FsCacheOptions& opts) : opts_(opts) {}

void FsCache::Observe(mk::Env& env) {
  if (tracer_ == nullptr) {
    tracer_ = &env.kernel().tracer();
    // Late-latch: counts accumulated before the first call with a kernel in
    // scope (there are none today, but keep the registry consistent).
    tracer_->metrics().Counter("mk.fs.cache.hits") = hits_;
    tracer_->metrics().Counter("mk.fs.cache.misses") = misses_;
    tracer_->metrics().Counter("mk.fs.cache.invalidations") = invalidations_;
    tracer_->metrics().Counter("mk.fs.cache.writeback_bytes") = writeback_bytes_;
  }
}

void FsCache::CountHit(uint64_t handle, uint64_t offset) {
  ++hits_;
  if (tracer_ != nullptr) {
    ++tracer_->metrics().Counter("mk.fs.cache.hits");
    tracer_->Emit(mk::trace::EventType::kFsCacheHit, handle, offset);
  }
}

void FsCache::CountMiss() {
  ++misses_;
  if (tracer_ != nullptr) {
    ++tracer_->metrics().Counter("mk.fs.cache.misses");
  }
}

void FsCache::CountInvalidate(uint64_t handle) {
  ++invalidations_;
  if (tracer_ != nullptr) {
    ++tracer_->metrics().Counter("mk.fs.cache.invalidations");
    tracer_->Emit(mk::trace::EventType::kFsCacheInvalidate, handle, generation_);
  }
}

base::Status FsCache::Flush(mk::Env& env, FsCacheBackend& be, uint64_t handle, HandleState& s) {
  if (s.wb_data.empty()) {
    return base::Status::kOk;
  }
  // Hand the run back before the backend call: a flush error must not leave
  // the same bytes queued forever (every later call would re-fail), and the
  // robust backend may re-enter the cache owner during a re-open.
  const uint64_t offset = s.wb_offset;
  std::vector<uint8_t> run = std::move(s.wb_data);
  s.wb_data.clear();
  uint32_t done = 0;
  while (done < run.size()) {
    const uint32_t chunk =
        static_cast<uint32_t>(std::min<uint64_t>(run.size() - done, kFsMaxIo));
    auto wrote = be.CacheWrite(env, handle, offset + done, run.data() + done, chunk);
    if (!wrote.ok()) {
      return wrote.status();
    }
    done += *wrote;
    writeback_bytes_ += *wrote;
    if (tracer_ != nullptr) {
      tracer_->metrics().Counter("mk.fs.cache.writeback_bytes") += *wrote;
    }
    if (*wrote < chunk) {
      return base::Status::kNoSpace;  // short write: the tail did not land
    }
  }
  return base::Status::kOk;
}

base::Result<uint32_t> FsCache::Read(mk::Env& env, FsCacheBackend& be, uint64_t handle,
                                     uint64_t offset, void* out, uint32_t len) {
  Observe(env);
  HandleState& s = handles_[handle];
  if (len == 0) {
    return 0u;
  }
  // Hit: the whole request inside the clean read-ahead span. Writes drop any
  // overlapping span, so cached bytes are what the server would return.
  if (!s.ra_data.empty() && offset >= s.ra_offset &&
      offset + len <= s.ra_offset + s.ra_data.size()) {
    env.kernel().cpu().Execute(CacheHitRegion());
    std::memcpy(out, s.ra_data.data() + (offset - s.ra_offset), len);
    CountHit(handle, offset);
    s.expected_next = offset + len;
    return len;
  }
  env.kernel().cpu().Execute(CacheMissRegion());
  CountMiss();
  // The fetch observes the server's file, so pending write-behind data for
  // this handle must land first — uncached, those writes already would have.
  const base::Status fl = Flush(env, be, handle, s);
  if (fl != base::Status::kOk) {
    return fl;
  }
  // Sequential reads over-fetch; random reads fetch exactly the request.
  uint32_t fetch_len = len;
  if (offset == s.expected_next) {
    fetch_len = static_cast<uint32_t>(
        std::min<uint64_t>(static_cast<uint64_t>(len) + opts_.readahead_bytes, kFsMaxIo));
  }
  if (fetch_len <= len) {
    // No read-ahead: serve straight into the caller's buffer.
    auto got = be.CacheRead(env, handle, offset, out, len);
    if (!got.ok()) {
      return got;
    }
    s.ra_data.clear();
    s.expected_next = offset + *got;
    return got;
  }
  std::vector<uint8_t> buf(fetch_len);
  auto got = be.CacheRead(env, handle, offset, buf.data(), fetch_len);
  if (!got.ok()) {
    return got;
  }
  const uint32_t user = std::min(*got, len);
  std::memcpy(out, buf.data(), user);
  buf.resize(*got);
  s.ra_offset = offset;
  s.ra_data = std::move(buf);
  s.expected_next = offset + user;
  return user;
}

base::Result<uint32_t> FsCache::Write(mk::Env& env, FsCacheBackend& be, uint64_t handle,
                                      uint64_t offset, const void* data, uint32_t len) {
  Observe(env);
  HandleState& s = handles_[handle];
  if (len == 0) {
    return 0u;
  }
  // Write-through invalidation: drop any cached read span the write touches.
  if (!s.ra_data.empty() && Overlaps(offset, len, s.ra_offset, s.ra_data.size())) {
    s.ra_data.clear();
    CountInvalidate(handle);
  }
  if (s.attr_valid && offset + len > s.attr.size) {
    s.attr.size = offset + len;  // size grows as if the write already landed
  }
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  // Oversized writes skip the buffer: flush what's pending, go straight out.
  if (len >= opts_.writeback_max_bytes) {
    const base::Status fl = Flush(env, be, handle, s);
    if (fl != base::Status::kOk) {
      return fl;
    }
    return be.CacheWrite(env, handle, offset, data, len);
  }
  if (s.wb_data.empty()) {
    s.wb_offset = offset;
    s.wb_data.assign(bytes, bytes + len);
  } else if (offset == s.wb_offset + s.wb_data.size()) {
    // Contiguous append: the common sequential-writer case coalesces.
    s.wb_data.insert(s.wb_data.end(), bytes, bytes + len);
  } else if (offset >= s.wb_offset && offset + len <= s.wb_offset + s.wb_data.size()) {
    // Rewrite entirely inside the pending run: patch in place.
    std::memcpy(s.wb_data.data() + (offset - s.wb_offset), bytes, len);
  } else {
    // Non-contiguous: the old run goes out, a new one starts here.
    const base::Status fl = Flush(env, be, handle, s);
    if (fl != base::Status::kOk) {
      return fl;
    }
    s.wb_offset = offset;
    s.wb_data.assign(bytes, bytes + len);
  }
  if (s.wb_data.size() >= opts_.writeback_max_bytes) {
    const base::Status fl = Flush(env, be, handle, s);
    if (fl != base::Status::kOk) {
      return fl;
    }
  }
  return len;
}

base::Result<FileAttr> FsCache::Stat(mk::Env& env, FsCacheBackend& be, uint64_t handle) {
  Observe(env);
  HandleState& s = handles_[handle];
  if (s.attr_valid) {
    env.kernel().cpu().Execute(CacheHitRegion());
    CountHit(handle, s.attr.size);
    return s.attr;
  }
  env.kernel().cpu().Execute(CacheMissRegion());
  CountMiss();
  // The server must see pending writes before it reports a size.
  const base::Status fl = Flush(env, be, handle, s);
  if (fl != base::Status::kOk) {
    return fl;
  }
  auto attr = be.CacheStat(env, handle);
  if (!attr.ok()) {
    return attr;
  }
  s.attr = *attr;
  s.attr_valid = true;
  return attr;
}

base::Status FsCache::FlushHandle(mk::Env& env, FsCacheBackend& be, uint64_t handle) {
  auto it = handles_.find(handle);
  if (it == handles_.end()) {
    return base::Status::kOk;
  }
  Observe(env);
  return Flush(env, be, handle, it->second);
}

base::Status FsCache::FlushAll(mk::Env& env, FsCacheBackend& be) {
  Observe(env);
  base::Status first = base::Status::kOk;
  for (auto& [handle, s] : handles_) {
    const base::Status st = Flush(env, be, handle, s);
    if (st != base::Status::kOk && first == base::Status::kOk) {
      first = st;
    }
  }
  return first;
}

base::Status FsCache::CloseHandle(mk::Env& env, FsCacheBackend& be, uint64_t handle) {
  const base::Status st = FlushHandle(env, be, handle);
  handles_.erase(handle);
  return st;
}

void FsCache::InvalidateHandle(uint64_t handle) {
  auto it = handles_.find(handle);
  if (it == handles_.end()) {
    return;
  }
  it->second.attr_valid = false;
  it->second.ra_data.clear();
  CountInvalidate(handle);
}

void FsCache::PrimeAttr(uint64_t handle, const FileAttr& attr) {
  HandleState& s = handles_[handle];
  s.attr = attr;
  s.attr_valid = true;
}

bool FsCache::LookupName(const std::string& name, mk::PortName* out) const {
  auto it = names_.find(name);
  if (it == names_.end()) {
    return false;
  }
  *out = it->second;
  return true;
}

bool FsCache::TakeName(const std::string& name, mk::PortName* out) {
  auto it = names_.find(name);
  if (it == names_.end()) {
    return false;
  }
  *out = it->second;
  names_.erase(it);
  return true;
}

void FsCache::StoreName(const std::string& name, mk::PortName right) { names_[name] = right; }

void FsCache::BumpGeneration() {
  ++generation_;
  names_.clear();
  for (auto& [handle, s] : handles_) {
    s.attr_valid = false;
    s.ra_data.clear();
    // wb_data survives: dirty bytes the respawned server has not seen yet.
  }
  CountInvalidate(0);
}

}  // namespace svc
