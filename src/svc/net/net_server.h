// The networking shared service: datagram sockets over the NIC driver,
// parameterized on the protocol-stack engine (fine-grained Taligent style or
// coarse) and optionally routed through the stateful C++ kernel wrappers —
// exactly the configuration space the paper's fine-grained-objects
// evaluation needs.
#ifndef SRC_SVC_NET_NET_SERVER_H_
#define SRC_SVC_NET_NET_SERVER_H_

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "src/drv/nic_driver.h"
#include "src/mk/kernel.h"
#include "src/mk/server_loop.h"
#include "src/svc/net/stack.h"

namespace svc {

enum class NetOp : uint32_t {
  kBind = 1,
  kSendTo = 2,
  kRecvFrom = 3,
  kSendToV = 4,  // batched send: several datagrams in one ref payload
};

// Batched-send bound: a kSendToV ref payload carries up to this many
// NetDgram headers plus their concatenated payloads. One RPC (and, above
// the kernel's OOL threshold, one page-reference transfer) amortizes the
// trap cost over the whole batch — a single frame is smaller than the OOL
// threshold, so only batching lets the net path go zero-copy.
inline constexpr uint32_t kNetMaxBatch = 32;

// Per-datagram header inside a kSendToV ref payload. Headers for the whole
// batch come first, payload bytes for all datagrams follow back to back.
struct NetDgram {
  uint32_t addr = 0;      // destination address
  uint16_t port = 0;      // destination port
  uint16_t src_port = 0;
  uint32_t len = 0;       // payload bytes for this datagram
  uint32_t pad = 0;
};

struct NetRequest {
  NetOp op = NetOp::kBind;
  uint32_t addr = 0;   // kSendTo destination address
  uint16_t port = 0;   // bind port / destination port
  uint16_t src_port = 0;
  uint32_t len = 0;    // kSendTo payload bytes; kSendToV datagram count
};

struct NetReply {
  int32_t status = 0;
  uint32_t len = 0;
  uint32_t from_addr = 0;
  uint16_t from_port = 0;
  uint16_t pad = 0;
};

class NetServer {
 public:
  // `use_wrappers` routes driver calls through the stateful TPortSender
  // wrapper, as the Taligent frameworks did.
  NetServer(mk::Kernel& kernel, mk::Task* task, mk::PortName nic_service,
            std::unique_ptr<StackEngine> engine, bool use_wrappers);

  mk::PortName service_port() const { return service_port_; }
  mk::PortName GrantTo(mk::Task& client);
  void Stop() { running_ = false; }

  // Resets every socket with clean errors: receivers blocked in a deferred
  // RecvFrom complete with kUnavailable and queued datagrams are dropped.
  // Bindings stay, so clients can retry. Used on shutdown and by restart
  // factories — after a crash the connection state is gone and clients must
  // see a definite error, not a hang.
  void ResetConnections();

  uint64_t datagrams_sent() const { return sent_; }
  uint64_t datagrams_delivered() const { return delivered_; }

 private:
  void RxPump(mk::Env& env);
  void Serve(mk::Env& env);
  base::Status DriverSend(mk::Env& env, const std::vector<uint8_t>& frame);

  mk::Kernel& kernel_;
  mk::Task* task_;
  std::unique_ptr<StackEngine> engine_;
  std::unique_ptr<drv::NicClient> nic_;
  std::unique_ptr<drv::TPortSenderWrapper> wrapper_;  // non-null if use_wrappers
  mk::PortName nic_service_;
  mk::PortName service_port_ = mk::kNullPort;

  struct Socket {
    std::deque<Datagram> queue;
    std::deque<uint64_t> pending;  // tokens of receivers awaiting data
  };
  std::map<uint16_t, Socket> sockets_;
  uint64_t sent_ = 0;
  uint64_t delivered_ = 0;
  bool running_ = true;
};

class NetClient {
 public:
  explicit NetClient(mk::PortName service) : stub_("svc.net.client", service) {}

  base::Status Bind(mk::Env& env, uint16_t port);
  base::Status SendTo(mk::Env& env, uint32_t addr, uint16_t dst_port, uint16_t src_port,
                      const void* data, uint32_t len);
  // Sends up to kNetMaxBatch datagrams with one RPC. Returns the number of
  // datagrams the server put on the wire (short on a driver error).
  base::Result<uint32_t> SendToBatch(mk::Env& env, const NetDgram* headers,
                                     const void* const* payloads, uint32_t count);
  // Blocks until a datagram for `port` arrives.
  base::Result<uint32_t> RecvFrom(mk::Env& env, uint16_t port, void* out, uint32_t cap,
                                  uint32_t* from_addr = nullptr, uint16_t* from_port = nullptr);

 private:
  mk::ClientStub stub_;
};

}  // namespace svc

#endif  // SRC_SVC_NET_NET_SERVER_H_
