#include "src/svc/net/stack.h"

#include <cstring>

namespace svc {

namespace {
void Put16(uint8_t* p, uint16_t v) { std::memcpy(p, &v, 2); }
void Put32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, 4); }
uint16_t Get16(const uint8_t* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
uint32_t Get32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
}  // namespace

// --- Coarse ---------------------------------------------------------------------

std::vector<uint8_t> CoarseStack::Encapsulate(mk::Env& env, const Datagram& dgram) {
  static const hw::CodeRegion kRegion = hw::DefineCode("svc.net.coarse_encap", 170);
  kernel_.cpu().Execute(kRegion);
  std::vector<uint8_t> frame(kStackHeaders + dgram.payload.size());
  uint8_t* p = frame.data();
  std::memset(p, 0xff, 12);  // mac addresses (loopback: don't care)
  Put16(p + 12, 0x0800);
  p += kEthHeader;
  Put32(p, dgram.src_addr);
  Put32(p + 4, dgram.dst_addr);
  p[8] = 17;  // "UDP"
  Put16(p + 9, static_cast<uint16_t>(kUdpHeader + dgram.payload.size()));
  p += kIpHeader;
  Put16(p, dgram.src_port);
  Put16(p + 2, dgram.dst_port);
  Put16(p + 4, static_cast<uint16_t>(dgram.payload.size()));
  p += kUdpHeader;
  std::memcpy(p, dgram.payload.data(), dgram.payload.size());
  return frame;
}

bool CoarseStack::Decapsulate(mk::Env& env, const uint8_t* frame, uint32_t len, Datagram* out) {
  static const hw::CodeRegion kRegion = hw::DefineCode("svc.net.coarse_decap", 150);
  kernel_.cpu().Execute(kRegion);
  if (len < kStackHeaders || Get16(frame + 12) != 0x0800) {
    return false;
  }
  const uint8_t* ip = frame + kEthHeader;
  if (ip[8] != 17) {
    return false;
  }
  const uint8_t* udp = ip + kIpHeader;
  out->src_addr = Get32(ip);
  out->dst_addr = Get32(ip + 4);
  out->src_port = Get16(udp);
  out->dst_port = Get16(udp + 2);
  const uint16_t plen = Get16(udp + 4);
  if (kStackHeaders + plen > len) {
    return false;
  }
  out->payload.assign(udp + kUdpHeader, udp + kUdpHeader + plen);
  return true;
}

// --- Fine-grained ----------------------------------------------------------------

// "Taligent's notion of fine-grained objects involved the use of complex
// class hierarchies and extensive subclassing to maximize code reuse. This
// resulted in a very large number of very short virtual methods."
class FineStack::TBufferChain : public drv::OoObject {
 public:
  explicit TBufferChain(mk::Kernel& kernel) : OoObject(kernel, "TBufferChain") {}
  void Reset(uint32_t size) {
    Method("Reset", 8);
    Method("ReserveHeadroom", 10);
    buffer_.assign(size, 0);
    offset_ = 0;
  }
  void Append(const uint8_t* data, uint32_t len) {
    Method("Append", 9);
    Method("CheckBounds", 7);
    std::memcpy(buffer_.data() + offset_, data, len);
    offset_ += len;
  }
  uint8_t* Reserve(uint32_t len) {
    Method("Reserve", 8);
    uint8_t* p = buffer_.data() + offset_;
    offset_ += len;
    return p;
  }
  std::vector<uint8_t> Take() {
    Method("Take", 6);
    return std::move(buffer_);
  }

 private:
  std::vector<uint8_t> buffer_;
  uint32_t offset_ = 0;
};

class FineStack::THeader : public drv::OoObject {
 public:
  THeader(mk::Kernel& kernel, const std::string& cls) : OoObject(kernel, cls) {}
  virtual uint32_t HeaderLength() = 0;
  virtual void Validate() { Method("Validate", 9); }
  virtual void Audit() { Method("Audit", 6); }
};

class FineStack::TEthernetHeader : public THeader {
 public:
  explicit TEthernetHeader(mk::Kernel& kernel) : THeader(kernel, "TEthernetHeader") {}
  uint32_t HeaderLength() override {
    Method("HeaderLength", 4);
    return kEthHeader;
  }
  void Emit(TBufferChain& chain) {
    Method("Emit", 12);
    Method("FormatAddresses", 10);
    uint8_t* p = chain.Reserve(kEthHeader);
    std::memset(p, 0xff, 12);
    Put16(p + 12, 0x0800);
    Audit();
  }
  bool Parse(const uint8_t*& p, uint32_t& remaining) {
    Method("Parse", 12);
    Validate();
    if (remaining < kEthHeader || Get16(p + 12) != 0x0800) {
      return false;
    }
    p += kEthHeader;
    remaining -= kEthHeader;
    return true;
  }
};

class FineStack::TIpHeader : public THeader {
 public:
  explicit TIpHeader(mk::Kernel& kernel) : THeader(kernel, "TIpHeader") {}
  uint32_t HeaderLength() override {
    Method("HeaderLength", 4);
    return kIpHeader;
  }
  void Emit(TBufferChain& chain, const Datagram& d) {
    Method("Emit", 14);
    Method("AssignAddresses", 9);
    Method("ComputeLength", 8);
    uint8_t* p = chain.Reserve(kIpHeader);
    Put32(p, d.src_addr);
    Put32(p + 4, d.dst_addr);
    p[8] = 17;
    Put16(p + 9, static_cast<uint16_t>(kUdpHeader + d.payload.size()));
    Audit();
  }
  bool Parse(const uint8_t*& p, uint32_t& remaining, Datagram* out) {
    Method("Parse", 14);
    Validate();
    if (remaining < kIpHeader || p[8] != 17) {
      return false;
    }
    out->src_addr = Get32(p);
    out->dst_addr = Get32(p + 4);
    p += kIpHeader;
    remaining -= kIpHeader;
    return true;
  }
};

class FineStack::TUdpHeader : public THeader {
 public:
  explicit TUdpHeader(mk::Kernel& kernel) : THeader(kernel, "TUdpHeader") {}
  uint32_t HeaderLength() override {
    Method("HeaderLength", 4);
    return kUdpHeader;
  }
  void Emit(TBufferChain& chain, const Datagram& d) {
    Method("Emit", 12);
    Method("AssignPorts", 7);
    uint8_t* p = chain.Reserve(kUdpHeader);
    Put16(p, d.src_port);
    Put16(p + 2, d.dst_port);
    Put16(p + 4, static_cast<uint16_t>(d.payload.size()));
    Audit();
  }
  bool Parse(const uint8_t*& p, uint32_t& remaining, Datagram* out) {
    Method("Parse", 12);
    Validate();
    if (remaining < kUdpHeader) {
      return false;
    }
    out->src_port = Get16(p);
    out->dst_port = Get16(p + 2);
    const uint16_t plen = Get16(p + 4);
    p += kUdpHeader;
    remaining -= kUdpHeader;
    if (plen > remaining) {
      return false;
    }
    out->payload.assign(p, p + plen);
    return true;
  }
};

class FineStack::TChecksumEngine : public drv::OoObject {
 public:
  explicit TChecksumEngine(mk::Kernel& kernel) : OoObject(kernel, "TChecksumEngine") {}
  void Cover(const uint8_t* data, uint32_t len) {
    Method("Cover", 10);
    Method("Fold", 8);
    // 1 instruction per 8 bytes of coverage, through a dedicated region.
    kernel_.cpu().ExecuteInstructions(hw::DefineCode("oo.TChecksumEngine.loop", 12), len / 8 + 4);
  }
};

FineStack::~FineStack() = default;

FineStack::FineStack(mk::Kernel& kernel)
    : kernel_(kernel),
      buffers_(std::make_unique<TBufferChain>(kernel)),
      eth_(std::make_unique<TEthernetHeader>(kernel)),
      ip_(std::make_unique<TIpHeader>(kernel)),
      udp_(std::make_unique<TUdpHeader>(kernel)),
      checksum_(std::make_unique<TChecksumEngine>(kernel)) {}

std::vector<uint8_t> FineStack::Encapsulate(mk::Env& env, const Datagram& dgram) {
  const uint32_t total = eth_->HeaderLength() + ip_->HeaderLength() + udp_->HeaderLength() +
                         static_cast<uint32_t>(dgram.payload.size());
  buffers_->Reset(total);
  eth_->Emit(*buffers_);
  ip_->Emit(*buffers_, dgram);
  udp_->Emit(*buffers_, dgram);
  buffers_->Append(dgram.payload.data(), static_cast<uint32_t>(dgram.payload.size()));
  checksum_->Cover(dgram.payload.data(), static_cast<uint32_t>(dgram.payload.size()));
  return buffers_->Take();
}

bool FineStack::Decapsulate(mk::Env& env, const uint8_t* frame, uint32_t len, Datagram* out) {
  const uint8_t* p = frame;
  uint32_t remaining = len;
  if (!eth_->Parse(p, remaining)) {
    return false;
  }
  if (!ip_->Parse(p, remaining, out)) {
    return false;
  }
  if (!udp_->Parse(p, remaining, out)) {
    return false;
  }
  checksum_->Cover(out->payload.data(), static_cast<uint32_t>(out->payload.size()));
  return true;
}

}  // namespace svc
