#include "src/svc/net/net_server.h"

#include <cstring>

#include "src/base/log.h"

namespace svc {

NetServer::NetServer(mk::Kernel& kernel, mk::Task* task, mk::PortName nic_service,
                     std::unique_ptr<StackEngine> engine, bool use_wrappers)
    : kernel_(kernel), task_(task), engine_(std::move(engine)), nic_service_(nic_service) {
  nic_ = std::make_unique<drv::NicClient>(nic_service);
  if (use_wrappers) {
    wrapper_ = std::make_unique<drv::TPortSenderWrapper>(kernel, nic_service);
  }
  auto port = kernel_.PortAllocate(*task_);
  WPOS_CHECK(port.ok());
  service_port_ = *port;
  kernel_.CreateThread(task_, "net-rx-pump", [this](mk::Env& env) { RxPump(env); },
                       mk::Thread::kDefaultPriority + 3);
  kernel_.CreateThread(task_, "net-server", [this](mk::Env& env) { Serve(env); },
                       mk::Thread::kDefaultPriority + 2);
}

void NetServer::ResetConnections() {
  for (auto& [port, socket] : sockets_) {
    (void)port;
    while (!socket.pending.empty()) {
      const uint64_t token = socket.pending.front();
      socket.pending.pop_front();
      NetReply reply;
      reply.status = static_cast<int32_t>(base::Status::kUnavailable);
      (void)kernel_.RpcReply(token, &reply, sizeof(reply));
    }
    socket.queue.clear();
  }
}

mk::PortName NetServer::GrantTo(mk::Task& client) {
  auto name = kernel_.MakeSendRight(*task_, service_port_, client);
  WPOS_CHECK(name.ok());
  return *name;
}

base::Status NetServer::DriverSend(mk::Env& env, const std::vector<uint8_t>& frame) {
  if (wrapper_ != nullptr) {
    // Through the stateful kernel wrapper (Taligent style).
    drv::NicRequest req{drv::NicOp::kSend, static_cast<uint32_t>(frame.size())};
    drv::NicReply reply;
    mk::RpcRef ref;
    ref.send_data = frame.data();
    ref.send_len = static_cast<uint32_t>(frame.size());
    const base::Status st =
        wrapper_->SendRequest(env, &req, sizeof(req), &reply, sizeof(reply), &ref);
    return st != base::Status::kOk ? st : static_cast<base::Status>(reply.status);
  }
  return nic_->Send(env, frame.data(), static_cast<uint32_t>(frame.size()));
}

void NetServer::RxPump(mk::Env& env) {
  std::vector<uint8_t> frame(hw::Nic::kMaxFrame);
  while (running_) {
    auto len = nic_->Receive(env, frame.data(), static_cast<uint32_t>(frame.size()));
    if (!len.ok()) {
      return;
    }
    Datagram dgram;
    if (!engine_->Decapsulate(env, frame.data(), *len, &dgram)) {
      continue;
    }
    auto it = sockets_.find(dgram.dst_port);
    if (it == sockets_.end()) {
      continue;  // no listener: drop
    }
    it->second.queue.push_back(std::move(dgram));
    ++delivered_;
    // Complete queued receives directly from the pump (deferred RPC reply).
    Socket& socket = it->second;
    while (!socket.pending.empty() && !socket.queue.empty()) {
      const uint64_t token = socket.pending.front();
      socket.pending.pop_front();
      Datagram out = std::move(socket.queue.front());
      socket.queue.pop_front();
      NetReply reply;
      reply.len = static_cast<uint32_t>(out.payload.size());
      reply.from_addr = out.src_addr;
      reply.from_port = out.src_port;
      (void)kernel_.RpcReply(token, &reply, sizeof(reply), out.payload.data(), reply.len);
    }
  }
}

void NetServer::Serve(mk::Env& env) {
  static const hw::CodeRegion kLoop = hw::DefineCode("loop.net", mk::Costs::kRpcServerLoop);
  NetRequest req;
  // Sized for a full kSendToV batch: headers up front, then every payload.
  std::vector<uint8_t> payload(kNetMaxBatch * (sizeof(NetDgram) + hw::Nic::kMaxFrame));
  while (true) {
    mk::RpcRef ref;
    ref.recv_buf = payload.data();
    ref.recv_cap = static_cast<uint32_t>(payload.size());
    auto rpc = env.RpcReceive(service_port_, &req, sizeof(req), &ref);
    if (!rpc.ok()) {
      return;
    }
    // Fault point: handler entry, matching mk::ServerLoop's placement.
    switch (kernel_.faults().Fire(mk::fault::FaultPoint::kServerHandlerEntry)) {
      case mk::fault::FaultMode::kNone:
        break;
      case mk::fault::FaultMode::kCrashTask:
        kernel_.TerminateTask(task_);
        return;
      case mk::fault::FaultMode::kDropReply:
        continue;  // the client waits out its deadline
      case mk::fault::FaultMode::kKillPort:
        (void)kernel_.PortDestroy(*task_, service_port_);
        return;
      case mk::fault::FaultMode::kTransientError:
        env.RpcReply(rpc->token, nullptr, 0, nullptr, 0, mk::kNullPort, base::Status::kBusy);
        continue;
      case mk::fault::FaultMode::kStallTask:
        // Wedged mid-request; only a watchdog TerminateTask recovers it.
        (void)kernel_.StallForever();
        return;  // reached only once task teardown aborts the stall
      case mk::fault::FaultMode::kDelayReply:
        (void)env.SleepNs(
            kernel_.faults().DrawDelayNs(mk::fault::FaultPoint::kServerHandlerEntry));
        break;
      case mk::fault::FaultMode::kCount:
        break;
    }
    mk::trace::Tracer& tracer = kernel_.tracer();
    mk::trace::ScopedSpan op_span(tracer, mk::trace::SpanKind::kServerOp,
                                  mk::trace::EventType::kServerDispatch,
                                  mk::trace::EventType::kServerDone,
                                  static_cast<uint64_t>(req.op));
    op_span.set_end_payload(static_cast<uint64_t>(req.op));
    tracer.LabelSpan(op_span.id(), "net");
    ++tracer.metrics().Counter("server.net.ops");
    kernel_.cpu().Execute(kLoop);
    NetReply reply;
    switch (req.op) {
      case NetOp::kBind: {
        if (!sockets_.try_emplace(req.port).second) {
          reply.status = static_cast<int32_t>(base::Status::kAlreadyExists);
        }
        env.RpcReply(rpc->token, &reply, sizeof(reply));
        break;
      }
      case NetOp::kSendTo: {
        Datagram dgram;
        dgram.dst_addr = req.addr;
        dgram.dst_port = req.port;
        dgram.src_port = req.src_port;
        dgram.src_addr = 0x7f000001;
        dgram.payload.assign(payload.data(), payload.data() + ref.recv_len);
        const std::vector<uint8_t> frame = engine_->Encapsulate(env, dgram);
        reply.status = static_cast<int32_t>(DriverSend(env, frame));
        if (reply.status == 0) {
          ++sent_;
        }
        env.RpcReply(rpc->token, &reply, sizeof(reply));
        break;
      }
      case NetOp::kSendToV: {
        // Ref payload layout: [NetDgram x count][payload bytes back to back].
        const uint32_t count = req.len;
        const uint32_t table_bytes = count * static_cast<uint32_t>(sizeof(NetDgram));
        if (count == 0 || count > kNetMaxBatch || ref.recv_len < table_bytes) {
          reply.status = static_cast<int32_t>(base::Status::kInvalidArgument);
          env.RpcReply(rpc->token, &reply, sizeof(reply));
          break;
        }
        NetDgram headers[kNetMaxBatch];
        std::memcpy(headers, payload.data(), table_bytes);
        uint64_t total = 0;
        bool valid = true;
        for (uint32_t i = 0; i < count; ++i) {
          if (headers[i].len > hw::Nic::kMaxFrame) {
            valid = false;
            break;
          }
          total += headers[i].len;
        }
        if (!valid || table_bytes + total != ref.recv_len) {
          reply.status = static_cast<int32_t>(base::Status::kInvalidArgument);
          env.RpcReply(rpc->token, &reply, sizeof(reply));
          break;
        }
        uint32_t consumed = table_bytes;
        uint32_t dispatched = 0;
        for (uint32_t i = 0; i < count; ++i) {
          Datagram dgram;
          dgram.dst_addr = headers[i].addr;
          dgram.dst_port = headers[i].port;
          dgram.src_port = headers[i].src_port;
          dgram.src_addr = 0x7f000001;
          dgram.payload.assign(payload.data() + consumed,
                               payload.data() + consumed + headers[i].len);
          consumed += headers[i].len;
          const std::vector<uint8_t> frame = engine_->Encapsulate(env, dgram);
          const base::Status st = DriverSend(env, frame);
          if (st != base::Status::kOk) {
            reply.status = static_cast<int32_t>(st);  // short batch
            break;
          }
          ++sent_;
          ++dispatched;
        }
        reply.len = dispatched;
        env.RpcReply(rpc->token, &reply, sizeof(reply));
        break;
      }
      case NetOp::kRecvFrom: {
        auto it = sockets_.find(req.port);
        if (it == sockets_.end()) {
          reply.status = static_cast<int32_t>(base::Status::kNotFound);
          env.RpcReply(rpc->token, &reply, sizeof(reply));
          break;
        }
        if (it->second.queue.empty()) {
          it->second.pending.push_back(rpc->token);  // deferred reply
          break;
        }
        Datagram dgram = std::move(it->second.queue.front());
        it->second.queue.pop_front();
        reply.len = static_cast<uint32_t>(dgram.payload.size());
        reply.from_addr = dgram.src_addr;
        reply.from_port = dgram.src_port;
        env.RpcReply(rpc->token, &reply, sizeof(reply), dgram.payload.data(), reply.len);
        break;
      }
      default:
        reply.status = static_cast<int32_t>(base::Status::kNotSupported);
        env.RpcReply(rpc->token, &reply, sizeof(reply));
    }
  
    if (!running_) {
      // Server shutdown: complete deferred receives with a clean error,
      // then kill the service port so queued and future callers fail with
      // kPortDead instead of blocking forever.
      ResetConnections();
      (void)kernel_.PortDestroy(*task_, service_port_);
      return;
    }
  }
}

base::Status NetClient::Bind(mk::Env& env, uint16_t port) {
  NetRequest r;
  r.op = NetOp::kBind;
  r.port = port;
  NetReply reply;
  const base::Status st = stub_.Call(env, r, &reply);
  return st != base::Status::kOk ? st : static_cast<base::Status>(reply.status);
}

base::Status NetClient::SendTo(mk::Env& env, uint32_t addr, uint16_t dst_port, uint16_t src_port,
                               const void* data, uint32_t len) {
  NetRequest r;
  r.op = NetOp::kSendTo;
  r.addr = addr;
  r.port = dst_port;
  r.src_port = src_port;
  r.len = len;
  NetReply reply;
  mk::RpcRef ref;
  ref.send_data = data;
  ref.send_len = len;
  const base::Status st = stub_.Call(env, r, &reply, &ref);
  return st != base::Status::kOk ? st : static_cast<base::Status>(reply.status);
}

base::Result<uint32_t> NetClient::SendToBatch(mk::Env& env, const NetDgram* headers,
                                              const void* const* payloads, uint32_t count) {
  if (count == 0 || count > kNetMaxBatch) {
    return base::Status::kInvalidArgument;
  }
  const uint32_t table_bytes = count * static_cast<uint32_t>(sizeof(NetDgram));
  uint64_t total = 0;
  for (uint32_t i = 0; i < count; ++i) {
    if (headers[i].len > hw::Nic::kMaxFrame) {
      return base::Status::kInvalidArgument;
    }
    total += headers[i].len;
  }
  // Gather [headers][payloads] into one bulk buffer; above the kernel's OOL
  // threshold the whole batch moves as a page reference, not a copy loop.
  std::vector<uint8_t> bulk(table_bytes + total);
  std::memcpy(bulk.data(), headers, table_bytes);
  uint32_t filled = table_bytes;
  for (uint32_t i = 0; i < count; ++i) {
    std::memcpy(bulk.data() + filled, payloads[i], headers[i].len);
    filled += headers[i].len;
  }
  NetRequest r;
  r.op = NetOp::kSendToV;
  r.len = count;
  NetReply reply;
  mk::RpcRef ref;
  ref.send_data = bulk.data();
  ref.send_len = static_cast<uint32_t>(bulk.size());
  const base::Status st = stub_.Call(env, r, &reply, &ref);
  if (st != base::Status::kOk) {
    return st;
  }
  if (reply.status != 0 && reply.len == 0) {
    return static_cast<base::Status>(reply.status);
  }
  return reply.len;  // short batch reports how many made it out
}

base::Result<uint32_t> NetClient::RecvFrom(mk::Env& env, uint16_t port, void* out, uint32_t cap,
                                           uint32_t* from_addr, uint16_t* from_port) {
  NetRequest r;
  r.op = NetOp::kRecvFrom;
  r.port = port;
  NetReply reply;
  mk::RpcRef ref;
  ref.recv_buf = out;
  ref.recv_cap = cap;
  const base::Status st = stub_.Call(env, r, &reply, &ref);
  if (st != base::Status::kOk) {
    return st;
  }
  if (reply.status != 0) {
    return static_cast<base::Status>(reply.status);
  }
  if (from_addr != nullptr) {
    *from_addr = reply.from_addr;
  }
  if (from_port != nullptr) {
    *from_port = reply.from_port;
  }
  return reply.len;
}

}  // namespace svc
