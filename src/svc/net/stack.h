// Protocol-stack engines for the networking service.
//
// The same ETH/IP/UDP-style encapsulation is implemented twice:
//   - CoarseStack: a handful of flat functions (the style the paper
//     recommends after the fact);
//   - FineStack: the Taligent style — a chain of fine-grained header and
//     buffer objects with many short virtual methods, going through the
//     stateful C++ kernel wrappers.
// The networking server is parameterized on the engine so benches can run
// identical traffic through both.
#ifndef SRC_SVC_NET_STACK_H_
#define SRC_SVC_NET_STACK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/drv/oo/fine_grained.h"
#include "src/mk/kernel.h"

namespace svc {

struct Datagram {
  uint32_t src_addr = 0;
  uint32_t dst_addr = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  std::vector<uint8_t> payload;
};

// Wire format (packed little-endian):
//   [eth: dst6 src6 type2][ip: src4 dst4 proto1 len2][udp: sport2 dport2 len2]
inline constexpr uint32_t kEthHeader = 14;
inline constexpr uint32_t kIpHeader = 11;
inline constexpr uint32_t kUdpHeader = 6;
inline constexpr uint32_t kStackHeaders = kEthHeader + kIpHeader + kUdpHeader;

class StackEngine {
 public:
  virtual ~StackEngine() = default;
  virtual const char* name() const = 0;
  // Builds a frame around `dgram`; returns the wire bytes.
  virtual std::vector<uint8_t> Encapsulate(mk::Env& env, const Datagram& dgram) = 0;
  // Parses a frame; returns false if malformed.
  virtual bool Decapsulate(mk::Env& env, const uint8_t* frame, uint32_t len, Datagram* out) = 0;
};

class CoarseStack : public StackEngine {
 public:
  explicit CoarseStack(mk::Kernel& kernel) : kernel_(kernel) {}
  const char* name() const override { return "coarse"; }
  std::vector<uint8_t> Encapsulate(mk::Env& env, const Datagram& dgram) override;
  bool Decapsulate(mk::Env& env, const uint8_t* frame, uint32_t len, Datagram* out) override;

 private:
  mk::Kernel& kernel_;
};

class FineStack : public StackEngine {
 public:
  explicit FineStack(mk::Kernel& kernel);
  ~FineStack() override;  // out of line: members are incomplete here
  const char* name() const override { return "fine"; }
  std::vector<uint8_t> Encapsulate(mk::Env& env, const Datagram& dgram) override;
  bool Decapsulate(mk::Env& env, const uint8_t* frame, uint32_t len, Datagram* out) override;

 private:
  class TBufferChain;
  class THeader;
  class TEthernetHeader;
  class TIpHeader;
  class TUdpHeader;
  class TChecksumEngine;

  mk::Kernel& kernel_;
  std::unique_ptr<TBufferChain> buffers_;
  std::unique_ptr<TEthernetHeader> eth_;
  std::unique_ptr<TIpHeader> ip_;
  std::unique_ptr<TUdpHeader> udp_;
  std::unique_ptr<TChecksumEngine> checksum_;
};

}  // namespace svc

#endif  // SRC_SVC_NET_STACK_H_
