// Registry shared service: hierarchical key/value configuration store used
// by the personalities (the OS/2 .INI replacement in Figure 1's shared
// services).
#ifndef SRC_SVC_REGISTRY_H_
#define SRC_SVC_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/mk/kernel.h"
#include "src/mk/server_loop.h"

namespace svc {

enum class RegOp : uint32_t { kSet = 1, kGet = 2, kDelete = 3, kList = 4 };

struct RegRequest {
  RegOp op = RegOp::kGet;
  char key[96] = {};
  char value[128] = {};

  void SetKey(const char* k) {
    std::strncpy(key, k, sizeof(key) - 1);
    key[sizeof(key) - 1] = '\0';
  }
};

struct RegReply {
  int32_t status = 0;
  uint32_t count = 0;
  char value[128] = {};
};

class RegistryServer {
 public:
  RegistryServer(mk::Kernel& kernel, mk::Task* task);

  mk::Task* task() const { return task_; }
  mk::PortName receive_port() const { return receive_port_; }
  mk::PortName GrantTo(mk::Task& client);
  // ServerLoop shutdown semantics: the port dies immediately, queued and
  // future callers get kPortDead.
  void Stop() { loop_->Stop(); }
  size_t size() const { return entries_.size(); }

 private:
  void HandleSet(mk::Env& env, const mk::RpcRequest& rpc, const RegRequest& r);
  void HandleGet(mk::Env& env, const mk::RpcRequest& rpc, const RegRequest& r);
  void HandleDelete(mk::Env& env, const mk::RpcRequest& rpc, const RegRequest& r);
  void HandleList(mk::Env& env, const mk::RpcRequest& rpc, const RegRequest& r);

  mk::Kernel& kernel_;
  mk::Task* task_;
  mk::PortName receive_port_ = mk::kNullPort;
  std::unique_ptr<mk::ServerLoop> loop_;
  std::map<std::string, std::string> entries_;
};

class RegistryClient {
 public:
  explicit RegistryClient(mk::PortName service) : stub_("svc.registry.client", service) {}

  base::Status Set(mk::Env& env, const std::string& key, const std::string& value);
  base::Result<std::string> Get(mk::Env& env, const std::string& key);
  base::Status Delete(mk::Env& env, const std::string& key);
  // Keys directly under `prefix/`.
  base::Result<std::vector<std::string>> List(mk::Env& env, const std::string& prefix);

 private:
  mk::ClientStub stub_;
};

}  // namespace svc

#endif  // SRC_SVC_REGISTRY_H_
