#include "src/svc/registry.h"

#include <cstring>

#include "src/base/log.h"

namespace svc {

namespace {
const hw::CodeRegion& RegRegion() {
  static const hw::CodeRegion r = hw::DefineCode("svc.registry.op", 130);
  return r;
}
}  // namespace

RegistryServer::RegistryServer(mk::Kernel& kernel, mk::Task* task)
    : kernel_(kernel), task_(task) {
  auto port = kernel_.PortAllocate(*task_);
  WPOS_CHECK(port.ok());
  receive_port_ = *port;
  kernel_.CreateThread(task_, "registry", [this](mk::Env& env) { Serve(env); },
                       mk::Thread::kDefaultPriority + 1);
}

mk::PortName RegistryServer::GrantTo(mk::Task& client) {
  auto name = kernel_.MakeSendRight(*task_, receive_port_, client);
  WPOS_CHECK(name.ok());
  return *name;
}

void RegistryServer::Serve(mk::Env& env) {
  RegRequest r;
  while (true) {
    auto rpc = env.RpcReceive(receive_port_, &r, sizeof(r));
    if (!rpc.ok()) {
      return;
    }
    kernel_.cpu().Execute(RegRegion());
    RegReply reply;
    switch (r.op) {
      case RegOp::kSet:
        entries_[r.key] = r.value;
        env.RpcReply(rpc->token, &reply, sizeof(reply));
        break;
      case RegOp::kGet: {
        auto it = entries_.find(r.key);
        if (it == entries_.end()) {
          reply.status = static_cast<int32_t>(base::Status::kNotFound);
        } else {
          std::strncpy(reply.value, it->second.c_str(), sizeof(reply.value) - 1);
        }
        env.RpcReply(rpc->token, &reply, sizeof(reply));
        break;
      }
      case RegOp::kDelete:
        if (entries_.erase(r.key) == 0) {
          reply.status = static_cast<int32_t>(base::Status::kNotFound);
        }
        env.RpcReply(rpc->token, &reply, sizeof(reply));
        break;
      case RegOp::kList: {
        std::string bulk;
        const std::string prefix = std::string(r.key) + "/";
        uint32_t count = 0;
        for (const auto& [key, value] : entries_) {
          if (key.compare(0, prefix.size(), prefix) == 0 &&
              key.find('/', prefix.size()) == std::string::npos) {
            bulk += key;
            bulk.push_back('\0');
            ++count;
          }
        }
        reply.count = count;
        env.RpcReply(rpc->token, &reply, sizeof(reply), bulk.data(),
                     static_cast<uint32_t>(bulk.size()));
        break;
      }
      default:
        reply.status = static_cast<int32_t>(base::Status::kNotSupported);
        env.RpcReply(rpc->token, &reply, sizeof(reply));
    }
  
    if (!running_) {
      // Server shutdown: kill the service port so queued and future
      // callers fail with kPortDead instead of blocking forever.
      (void)kernel_.PortDestroy(*task_, receive_port_);
      return;
    }
  }
}

base::Status RegistryClient::Set(mk::Env& env, const std::string& key, const std::string& value) {
  RegRequest r;
  r.op = RegOp::kSet;
  r.SetKey(key.c_str());
  std::strncpy(r.value, value.c_str(), sizeof(r.value) - 1);
  RegReply reply;
  const base::Status st = stub_.Call(env, r, &reply);
  return st != base::Status::kOk ? st : static_cast<base::Status>(reply.status);
}

base::Result<std::string> RegistryClient::Get(mk::Env& env, const std::string& key) {
  RegRequest r;
  r.op = RegOp::kGet;
  r.SetKey(key.c_str());
  RegReply reply;
  const base::Status st = stub_.Call(env, r, &reply);
  if (st != base::Status::kOk) {
    return st;
  }
  if (reply.status != 0) {
    return static_cast<base::Status>(reply.status);
  }
  return std::string(reply.value);
}

base::Status RegistryClient::Delete(mk::Env& env, const std::string& key) {
  RegRequest r;
  r.op = RegOp::kDelete;
  r.SetKey(key.c_str());
  RegReply reply;
  const base::Status st = stub_.Call(env, r, &reply);
  return st != base::Status::kOk ? st : static_cast<base::Status>(reply.status);
}

base::Result<std::vector<std::string>> RegistryClient::List(mk::Env& env,
                                                            const std::string& prefix) {
  RegRequest r;
  r.op = RegOp::kList;
  r.SetKey(prefix.c_str());
  RegReply reply;
  std::vector<char> bulk(8192);
  mk::RpcRef ref;
  ref.recv_buf = bulk.data();
  ref.recv_cap = static_cast<uint32_t>(bulk.size());
  const base::Status st = stub_.Call(env, r, &reply, &ref);
  if (st != base::Status::kOk) {
    return st;
  }
  std::vector<std::string> out;
  const char* p = bulk.data();
  for (uint32_t i = 0; i < reply.count; ++i) {
    out.emplace_back(p);
    p += out.back().size() + 1;
  }
  return out;
}

}  // namespace svc
