#include "src/svc/registry.h"

#include <cstring>

#include "src/base/log.h"

namespace svc {

namespace {
const hw::CodeRegion& RegRegion() {
  static const hw::CodeRegion r = hw::DefineCode("svc.registry.op", 130);
  return r;
}

RegRequest ParseRequest(const uint8_t* req, uint32_t req_len) {
  RegRequest r;
  std::memcpy(&r, req, req_len < sizeof(r) ? req_len : sizeof(r));
  r.key[sizeof(r.key) - 1] = '\0';
  r.value[sizeof(r.value) - 1] = '\0';
  return r;
}
}  // namespace

RegistryServer::RegistryServer(mk::Kernel& kernel, mk::Task* task)
    : kernel_(kernel), task_(task) {
  auto port = kernel_.PortAllocate(*task_);
  WPOS_CHECK(port.ok());
  receive_port_ = *port;
  loop_ = std::make_unique<mk::ServerLoop>(receive_port_, "svc.registry",
                                           sizeof(RegRequest));
  const auto with = [this](void (RegistryServer::*handler)(mk::Env&, const mk::RpcRequest&,
                                                           const RegRequest&)) {
    return [this, handler](mk::Env& env, const mk::RpcRequest& rpc, const uint8_t* req,
                           const uint8_t* /*ref_data*/, uint32_t /*ref_len*/) {
      kernel_.cpu().Execute(RegRegion());
      (this->*handler)(env, rpc, ParseRequest(req, rpc.req_len));
    };
  };
  loop_->Register(static_cast<uint32_t>(RegOp::kSet), with(&RegistryServer::HandleSet));
  loop_->Register(static_cast<uint32_t>(RegOp::kGet), with(&RegistryServer::HandleGet));
  loop_->Register(static_cast<uint32_t>(RegOp::kDelete), with(&RegistryServer::HandleDelete));
  loop_->Register(static_cast<uint32_t>(RegOp::kList), with(&RegistryServer::HandleList));
  kernel_.CreateThread(task_, "registry", [this](mk::Env& env) { loop_->Run(env); },
                       mk::Thread::kDefaultPriority + 1);
}

mk::PortName RegistryServer::GrantTo(mk::Task& client) {
  auto name = kernel_.MakeSendRight(*task_, receive_port_, client);
  WPOS_CHECK(name.ok());
  return *name;
}

void RegistryServer::HandleSet(mk::Env& env, const mk::RpcRequest& rpc, const RegRequest& r) {
  entries_[r.key] = r.value;
  RegReply reply;
  reply.status = static_cast<int32_t>(base::Status::kOk);
  env.RpcReply(rpc.token, &reply, sizeof(reply));
}

void RegistryServer::HandleGet(mk::Env& env, const mk::RpcRequest& rpc, const RegRequest& r) {
  RegReply reply;
  auto it = entries_.find(r.key);
  if (it == entries_.end()) {
    reply.status = static_cast<int32_t>(base::Status::kNotFound);
  } else {
    reply.status = static_cast<int32_t>(base::Status::kOk);
    std::strncpy(reply.value, it->second.c_str(), sizeof(reply.value) - 1);
  }
  env.RpcReply(rpc.token, &reply, sizeof(reply));
}

void RegistryServer::HandleDelete(mk::Env& env, const mk::RpcRequest& rpc, const RegRequest& r) {
  RegReply reply;
  reply.status = static_cast<int32_t>(entries_.erase(r.key) == 0 ? base::Status::kNotFound
                                                                 : base::Status::kOk);
  env.RpcReply(rpc.token, &reply, sizeof(reply));
}

void RegistryServer::HandleList(mk::Env& env, const mk::RpcRequest& rpc, const RegRequest& r) {
  std::string bulk;
  const std::string prefix = std::string(r.key) + "/";
  uint32_t count = 0;
  for (const auto& [key, value] : entries_) {
    if (key.compare(0, prefix.size(), prefix) == 0 &&
        key.find('/', prefix.size()) == std::string::npos) {
      bulk += key;
      bulk.push_back('\0');
      ++count;
    }
  }
  RegReply reply;
  reply.status = static_cast<int32_t>(base::Status::kOk);
  reply.count = count;
  env.RpcReply(rpc.token, &reply, sizeof(reply), bulk.data(),
               static_cast<uint32_t>(bulk.size()));
}

base::Status RegistryClient::Set(mk::Env& env, const std::string& key, const std::string& value) {
  RegRequest r;
  r.op = RegOp::kSet;
  r.SetKey(key.c_str());
  std::strncpy(r.value, value.c_str(), sizeof(r.value) - 1);
  RegReply reply;
  const base::Status st = stub_.Call(env, r, &reply);
  return st != base::Status::kOk ? st : static_cast<base::Status>(reply.status);
}

base::Result<std::string> RegistryClient::Get(mk::Env& env, const std::string& key) {
  RegRequest r;
  r.op = RegOp::kGet;
  r.SetKey(key.c_str());
  RegReply reply;
  const base::Status st = stub_.Call(env, r, &reply);
  if (st != base::Status::kOk) {
    return st;
  }
  if (reply.status != 0) {
    return static_cast<base::Status>(reply.status);
  }
  return std::string(reply.value);
}

base::Status RegistryClient::Delete(mk::Env& env, const std::string& key) {
  RegRequest r;
  r.op = RegOp::kDelete;
  r.SetKey(key.c_str());
  RegReply reply;
  const base::Status st = stub_.Call(env, r, &reply);
  return st != base::Status::kOk ? st : static_cast<base::Status>(reply.status);
}

base::Result<std::vector<std::string>> RegistryClient::List(mk::Env& env,
                                                            const std::string& prefix) {
  RegRequest r;
  r.op = RegOp::kList;
  r.SetKey(prefix.c_str());
  RegReply reply;
  std::vector<char> bulk(8192);
  mk::RpcRef ref;
  ref.recv_buf = bulk.data();
  ref.recv_cap = static_cast<uint32_t>(bulk.size());
  const base::Status st = stub_.Call(env, r, &reply, &ref);
  if (st != base::Status::kOk) {
    return st;
  }
  std::vector<std::string> out;
  const char* p = bulk.data();
  for (uint32_t i = 0; i < reply.count; ++i) {
    out.emplace_back(p);
    p += out.back().size() + 1;
  }
  return out;
}

}  // namespace svc
