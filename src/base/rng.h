// Deterministic PRNG (xorshift64*) used by workload generators and device
// models. std::mt19937 is avoided only to keep state tiny and seeding simple;
// determinism across platforms is the requirement.
#ifndef SRC_BASE_RNG_H_
#define SRC_BASE_RNG_H_

#include <cstdint>

namespace base {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed != 0 ? seed : 1) {}

  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dull;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) { return Next() % bound; }

  // Uniform in [lo, hi].
  uint64_t NextInRange(uint64_t lo, uint64_t hi) { return lo + NextBelow(hi - lo + 1); }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

  bool NextBool(double p_true) { return NextDouble() < p_true; }

 private:
  uint64_t state_;
};

}  // namespace base

#endif  // SRC_BASE_RNG_H_
