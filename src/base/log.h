// Minimal leveled logging. The kernel and servers log through this so tests
// can silence or capture output. Not thread-safe in the preemptive sense, but
// the simulation is single-OS-threaded by construction.
#ifndef SRC_BASE_LOG_H_
#define SRC_BASE_LOG_H_

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace base {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kFatal = 4 };

// Global minimum level; messages below it are dropped. Defaults to kWarn so
// tests and benches stay quiet.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// When a source is registered, every log line carries the simulated cycle
// count in its prefix ("[W kernel.cc:103 @12345] ..."), correlating log
// output with traces. A live kernel registers its cycle clock on
// construction and restores the previous source on destruction (exchange
// semantics), so nested simulations stamp with the innermost active clock.
// Returns the previously registered source (empty if none).
using LogCycleSource = std::function<uint64_t()>;
LogCycleSource SetLogCycleSource(LogCycleSource source);

// Same exchange contract for causal-trace correlation: when a source is
// registered and returns a non-zero trace id, the prefix carries it
// ("[W fs.cc:12 @12345 trace=7] ..."), tying log lines to the request tree
// the emitting thread was working for. Zero means "no active trace" and
// leaves the prefix untouched, so logs outside traced requests (and whole
// runs with tracing detached) are byte-identical to before.
using LogTraceSource = std::function<uint64_t()>;
LogTraceSource SetLogTraceSource(LogTraceSource source);

// Captures log output emitted while in scope instead of writing it to
// stderr; scopes nest (the innermost capture wins) and restore the previous
// sink on destruction. Fatal messages are still written to stderr before
// aborting. Lets tests exercise warning paths silently and assert on the
// messages.
class ScopedLogCapture {
 public:
  ScopedLogCapture();
  ~ScopedLogCapture();

  ScopedLogCapture(const ScopedLogCapture&) = delete;
  ScopedLogCapture& operator=(const ScopedLogCapture&) = delete;

  const std::string& text() const { return text_; }
  bool Contains(const std::string& needle) const {
    return text_.find(needle) != std::string::npos;
  }
  void Clear() { text_.clear(); }

  void Append(const std::string& line) { text_ += line; }

 private:
  std::string text_;
  ScopedLogCapture* prev_;
};

namespace log_internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();  // emits; aborts on kFatal
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace log_internal
}  // namespace base

#define WPOS_LOG(level)                                                     \
  (static_cast<int>(base::LogLevel::level) <                                \
   static_cast<int>(base::GetLogLevel()))                                   \
      ? (void)0                                                             \
      : base::log_internal::Voidify() &                                     \
            base::log_internal::LogMessage(base::LogLevel::level, __FILE__, \
                                           __LINE__)                        \
                .stream()

#define WPOS_CHECK(cond)                                                     \
  (cond) ? (void)0                                                          \
         : base::log_internal::Voidify() &                                  \
               base::log_internal::LogMessage(base::LogLevel::kFatal,       \
                                              __FILE__, __LINE__)           \
                   .stream() << "Check failed: " #cond " "

// Debug-only check for hot paths (per-message IPC/RPC and scheduler
// dispatch): identical to WPOS_CHECK in debug builds, compiles to nothing in
// NDEBUG builds. The `true || (cond)` keeps the condition odr-used (no
// unused-variable warnings) without evaluating it.
#ifdef NDEBUG
#define WPOS_DCHECK(cond)                                                    \
  (true || (cond)) ? (void)0                                                \
                   : base::log_internal::Voidify() &                        \
                         base::log_internal::LogMessage(                    \
                             base::LogLevel::kFatal, __FILE__, __LINE__)    \
                             .stream()
#else
#define WPOS_DCHECK(cond) WPOS_CHECK(cond)
#endif

#endif  // SRC_BASE_LOG_H_
