// Status codes and Result<T> used across the whole system.
//
// These mirror the kern_return_t convention of Mach 3.0: every kernel and
// server interface returns a Status, and interfaces that produce a value
// return Result<T>, which is either a value or a non-ok Status.
#ifndef SRC_BASE_STATUS_H_
#define SRC_BASE_STATUS_H_

#include <cstdint>
#include <string_view>
#include <utility>
#include <variant>

namespace base {

enum class Status : int32_t {
  kOk = 0,
  kInvalidArgument,
  kInvalidName,        // no such right in the port space
  kInvalidRight,       // right exists but has the wrong type
  kInvalidAddress,     // address not mapped / out of range
  kProtectionFailure,  // mapped but access not permitted
  kNoSpace,            // address space or table exhausted
  kResourceShortage,   // out of frames / kernel memory
  kNotFound,
  kAlreadyExists,
  kNotSupported,
  kPermissionDenied,
  kTimedOut,
  kAborted,            // operation interrupted (thread terminated, port died)
  kPortDead,           // destination port has no receiver
  kQueueFull,          // legacy IPC queue limit reached
  kTooLarge,           // message or request exceeds limits
  kBusy,
  kExhausted,          // iteration finished / no more data
  kIoError,
  kCorrupt,            // on-disk structure failed validation
  kWouldBlock,
  kUnavailable,        // service degraded: restart budget exhausted / gave up
  kInternal,
};

// Human-readable name for diagnostics and test failure messages.
std::string_view StatusName(Status s);

// A value-or-error type. `status()` is kOk iff a value is present.
template <typename T>
class Result {
 public:
  Result(T value) : state_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : state_(status) {}      // NOLINT: implicit by design

  bool ok() const { return std::holds_alternative<T>(state_); }
  Status status() const {
    return ok() ? Status::kOk : std::get<Status>(state_);
  }
  // Precondition: ok().
  T& value() { return std::get<T>(state_); }
  const T& value() const { return std::get<T>(state_); }
  T value_or(T fallback) const { return ok() ? std::get<T>(state_) : fallback; }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<Status, T> state_;
};

}  // namespace base

#endif  // SRC_BASE_STATUS_H_
