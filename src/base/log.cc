#include "src/base/log.h"

#include <cstdio>
#include <cstdlib>

namespace base {

namespace {
LogLevel g_level = LogLevel::kWarn;
LogCycleSource g_cycle_source;
LogTraceSource g_trace_source;
ScopedLogCapture* g_capture = nullptr;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

LogCycleSource SetLogCycleSource(LogCycleSource source) {
  LogCycleSource prev = std::move(g_cycle_source);
  g_cycle_source = std::move(source);
  return prev;
}

LogTraceSource SetLogTraceSource(LogTraceSource source) {
  LogTraceSource prev = std::move(g_trace_source);
  g_trace_source = std::move(source);
  return prev;
}

ScopedLogCapture::ScopedLogCapture() : prev_(g_capture) { g_capture = this; }

ScopedLogCapture::~ScopedLogCapture() { g_capture = prev_; }

namespace log_internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* slash = nullptr;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      slash = p;
    }
  }
  stream_ << "[" << LevelTag(level) << " " << (slash != nullptr ? slash + 1 : file) << ":" << line;
  if (g_cycle_source) {
    stream_ << " @" << g_cycle_source();
  }
  if (g_trace_source) {
    const uint64_t trace_id = g_trace_source();
    if (trace_id != 0) {
      stream_ << " trace=" << trace_id;
    }
  }
  stream_ << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  if (g_capture != nullptr) {
    g_capture->Append(stream_.str());
    if (level_ != LogLevel::kFatal) {
      return;
    }
  }
  std::fputs(stream_.str().c_str(), stderr);
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace log_internal
}  // namespace base
