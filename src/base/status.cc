#include "src/base/status.h"

namespace base {

std::string_view StatusName(Status s) {
  switch (s) {
    case Status::kOk:
      return "OK";
    case Status::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case Status::kInvalidName:
      return "INVALID_NAME";
    case Status::kInvalidRight:
      return "INVALID_RIGHT";
    case Status::kInvalidAddress:
      return "INVALID_ADDRESS";
    case Status::kProtectionFailure:
      return "PROTECTION_FAILURE";
    case Status::kNoSpace:
      return "NO_SPACE";
    case Status::kResourceShortage:
      return "RESOURCE_SHORTAGE";
    case Status::kNotFound:
      return "NOT_FOUND";
    case Status::kAlreadyExists:
      return "ALREADY_EXISTS";
    case Status::kNotSupported:
      return "NOT_SUPPORTED";
    case Status::kPermissionDenied:
      return "PERMISSION_DENIED";
    case Status::kTimedOut:
      return "TIMED_OUT";
    case Status::kAborted:
      return "ABORTED";
    case Status::kPortDead:
      return "PORT_DEAD";
    case Status::kQueueFull:
      return "QUEUE_FULL";
    case Status::kTooLarge:
      return "TOO_LARGE";
    case Status::kBusy:
      return "BUSY";
    case Status::kExhausted:
      return "EXHAUSTED";
    case Status::kIoError:
      return "IO_ERROR";
    case Status::kCorrupt:
      return "CORRUPT";
    case Status::kWouldBlock:
      return "WOULD_BLOCK";
    case Status::kUnavailable:
      return "UNAVAILABLE";
    case Status::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

}  // namespace base
