// Monolithic OS/2 comparator — the Table 1 denominator.
//
// The same function as the multi-server system (the identical physical file
// systems, the same block cache, the same simulated disk), but structured as
// a traditional kernel: services are reached by a trap and an in-kernel
// function call, the disk driver is in-kernel and interrupt-driven, and the
// window system's message queues live in the kernel. The graphics path also
// models the piece WPOS replaced: the 16-bit PM/GRE dispatch-and-thunk layer
// in front of every drawing call, which the WPOS libraries had "converted to
// 32-bit C code" (so the microkernel system draws without it — that is why
// the paper's graphics workloads favour WPOS).
#ifndef SRC_BASELINE_MONOLITHIC_H_
#define SRC_BASELINE_MONOLITHIC_H_

#include <deque>
#include <map>
#include <memory>
#include <string>

#include "src/hw/disk.h"
#include "src/hw/framebuffer.h"
#include "src/mk/kernel.h"
#include "src/mks/pager/default_pager.h"
#include "src/svc/fs/block_cache.h"
#include "src/svc/fs/pfs.h"
#include "src/svc/fs/protocol.h"

namespace baseline {

// In-kernel interrupt-driven disk driver: the block store behind the
// monolithic file system.
class KernelDiskStore : public mks::BlockStore {
 public:
  KernelDiskStore(mk::Kernel& kernel, hw::Disk* disk);

  base::Status Read(mk::Env& env, uint64_t lba, uint32_t count, void* out) override;
  base::Status Write(mk::Env& env, uint64_t lba, uint32_t count, const void* src) override;
  uint64_t num_sectors() const override { return disk_->num_sectors(); }

 private:
  base::Status DoIo(mk::Env& env, uint32_t cmd, uint64_t lba, uint32_t count, void* data);

  mk::Kernel& kernel_;
  hw::Disk* disk_;
  hw::PhysAddr dma_buffer_ = 0;
  uint32_t io_sem_ = 0;
};

class MonolithicOs {
 public:
  // The PFS (formatted by the caller) plugs in exactly as it does in the
  // file server — only the access structure differs.
  MonolithicOs(mk::Kernel& kernel, svc::Pfs* pfs, hw::Framebuffer* fb);

  // --- File API: trap + in-kernel call ----------------------------------------
  base::Result<uint64_t> Open(mk::Env& env, const std::string& path, uint32_t flags);
  base::Status Close(mk::Env& env, uint64_t handle);
  base::Result<uint32_t> Read(mk::Env& env, uint64_t handle, uint64_t offset, void* out,
                              uint32_t len);
  base::Result<uint32_t> Write(mk::Env& env, uint64_t handle, uint64_t offset, const void* data,
                               uint32_t len);
  base::Status Mkdir(mk::Env& env, const std::string& path);
  base::Status Unlink(mk::Env& env, const std::string& path);
  base::Result<std::vector<svc::DirEntry>> ReadDir(mk::Env& env, const std::string& path);

  // --- Window system: kernel queues + the 16-bit PM draw layer ----------------
  base::Result<uint32_t> WinCreate(mk::Env& env, uint32_t x, uint32_t y, uint32_t w, uint32_t h);
  base::Status WinPost(mk::Env& env, uint32_t hwnd, uint32_t msg, uint32_t p1, uint32_t p2);
  struct WinMsg {
    uint32_t msg = 0, p1 = 0, p2 = 0;
  };
  base::Result<WinMsg> WinGet(mk::Env& env, uint32_t hwnd);  // blocks
  base::Status WinFillRect(mk::Env& env, mk::Task& task, hw::VirtAddr vram, uint32_t hwnd,
                           uint32_t x, uint32_t y, uint32_t w, uint32_t h, uint8_t color);
  base::Status WinBitBlt(mk::Env& env, mk::Task& task, hw::VirtAddr vram, uint32_t hwnd,
                         uint32_t x, uint32_t y, uint32_t w, uint32_t h);
  base::Status WinSwitch(mk::Env& env, mk::Task& task, hw::VirtAddr vram, uint32_t hwnd);

  // Maps the framebuffer aperture into an application task (the app still
  // draws "directly", but through the GRE/thunk entry sequence).
  base::Result<hw::VirtAddr> MapVram(mk::Task& task);

  uint64_t syscalls() const { return syscalls_; }

 private:
  struct Node {
    svc::NodeId node = 0;
  };
  struct Window {
    uint32_t x = 0, y = 0, w = 0, h = 0, z = 0;
    std::deque<WinMsg> queue;
    uint32_t sem = 0;
  };

  // Trap + dispatch bracket around every call.
  void SyscallEnter();
  void SyscallExit();
  base::Result<svc::NodeId> Walk(mk::Env& env, const std::string& path, svc::NodeId* parent,
                                 std::string* leaf);
  // The 16-bit PM/GRE entry: selector thunk + dispatch, charged per draw call.
  void ChargeGreThunk();

  mk::Kernel& kernel_;
  svc::Pfs* pfs_;
  hw::Framebuffer* fb_;
  std::shared_ptr<mk::VmObject> vram_object_;
  std::map<uint64_t, Node> open_files_;
  uint64_t next_handle_ = 1;
  std::map<uint32_t, Window> windows_;
  uint32_t next_hwnd_ = 1;
  uint32_t next_z_ = 1;
  uint64_t syscalls_ = 0;
};

}  // namespace baseline

#endif  // SRC_BASELINE_MONOLITHIC_H_
