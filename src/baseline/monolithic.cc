#include "src/baseline/monolithic.h"

#include "src/base/log.h"

namespace baseline {

namespace {
const hw::CodeRegion& TrapEntryRegion() {
  static const hw::CodeRegion r = hw::DefineCode("monos2.trap.entry", mk::Costs::kTrapEntry);
  return r;
}
const hw::CodeRegion& DispatchRegion() {
  static const hw::CodeRegion r = hw::DefineCode("monos2.sys.dispatch", 120);
  return r;
}
const hw::CodeRegion& FsLayerRegion() {
  static const hw::CodeRegion r = hw::DefineCode("monos2.fs.layer", 160);
  return r;
}
const hw::CodeRegion& DriverRegion() {
  static const hw::CodeRegion r = hw::DefineCode("monos2.drv.disk", 260);
  return r;
}
const hw::CodeRegion& WinRegion() {
  static const hw::CodeRegion r = hw::DefineCode("monos2.win.mgr", 170);
  return r;
}
const hw::CodeRegion& GreThunkRegion() {
  // 16-bit PM/GRE: selector loads, thunk to 16-bit code, GRE dispatch — the
  // per-draw-call overhead WPOS's 32-bit conversion removed.
  static const hw::CodeRegion r = hw::DefineCode("monos2.gre.thunk16", 310);
  return r;
}
const hw::CodeRegion& DrawLoopRegion() {
  static const hw::CodeRegion r = hw::DefineCode("monos2.gre.draw_loop", 40);
  return r;
}
}  // namespace

KernelDiskStore::KernelDiskStore(mk::Kernel& kernel, hw::Disk* disk)
    : kernel_(kernel), disk_(disk) {
  auto dma = kernel_.machine().mem().AllocContiguous(128 * hw::Disk::kSectorSize / hw::kPageSize);
  WPOS_CHECK(dma.ok());
  dma_buffer_ = *dma;
  auto sem = kernel_.SemCreate(0);
  WPOS_CHECK(sem.ok());
  io_sem_ = *sem;
  kernel_.RegisterKernelInterrupt(static_cast<uint32_t>(disk_->irq_line()), [this] {
    (void)kernel_.SemSignal(io_sem_);
  });
}

base::Status KernelDiskStore::DoIo(mk::Env& env, uint32_t cmd, uint64_t lba, uint32_t count,
                                   void* data) {
  kernel_.cpu().Execute(DriverRegion());
  const uint64_t bytes = static_cast<uint64_t>(count) * hw::Disk::kSectorSize;
  if (cmd == hw::Disk::kCmdWrite) {
    kernel_.machine().mem().Write(dma_buffer_, data, bytes);
    kernel_.ChargeCopy(kernel_.heap().base(), dma_buffer_, bytes);
  }
  kernel_.IoWrite(disk_, hw::Disk::kRegLba, static_cast<uint32_t>(lba));
  kernel_.IoWrite(disk_, hw::Disk::kRegCount, count);
  kernel_.IoWrite(disk_, hw::Disk::kRegDmaLo, static_cast<uint32_t>(dma_buffer_));
  kernel_.IoWrite(disk_, hw::Disk::kRegCommand, cmd);
  while ((kernel_.IoRead(disk_, hw::Disk::kRegStatus) & hw::Disk::kStatusDone) == 0) {
    const base::Status st = kernel_.SemWait(io_sem_);
    if (st != base::Status::kOk) {
      return st;
    }
  }
  kernel_.IoWrite(disk_, hw::Disk::kRegStatus, 0);
  if (cmd == hw::Disk::kCmdRead) {
    kernel_.machine().mem().Read(dma_buffer_, data, bytes);
    kernel_.ChargeCopy(dma_buffer_, kernel_.heap().base(), bytes);
  }
  return base::Status::kOk;
}

base::Status KernelDiskStore::Read(mk::Env& env, uint64_t lba, uint32_t count, void* out) {
  uint64_t done = 0;
  while (done < count) {
    const uint32_t chunk = static_cast<uint32_t>(std::min<uint64_t>(count - done, 128));
    const base::Status st = DoIo(env, hw::Disk::kCmdRead, lba + done, chunk,
                                 static_cast<uint8_t*>(out) + done * hw::Disk::kSectorSize);
    if (st != base::Status::kOk) {
      return st;
    }
    done += chunk;
  }
  return base::Status::kOk;
}

base::Status KernelDiskStore::Write(mk::Env& env, uint64_t lba, uint32_t count, const void* src) {
  uint64_t done = 0;
  while (done < count) {
    const uint32_t chunk = static_cast<uint32_t>(std::min<uint64_t>(count - done, 128));
    const base::Status st =
        DoIo(env, hw::Disk::kCmdWrite, lba + done, chunk,
             const_cast<uint8_t*>(static_cast<const uint8_t*>(src)) +
                 done * hw::Disk::kSectorSize);
    if (st != base::Status::kOk) {
      return st;
    }
    done += chunk;
  }
  return base::Status::kOk;
}

MonolithicOs::MonolithicOs(mk::Kernel& kernel, svc::Pfs* pfs, hw::Framebuffer* fb)
    : kernel_(kernel), pfs_(pfs), fb_(fb) {
  if (fb_ != nullptr) {
    vram_object_ = std::make_shared<mk::VmObject>(hw::PageRound(fb_->vram_size()));
    vram_object_->SetDeviceWindow(fb_->vram_base());
  }
}

void MonolithicOs::SyscallEnter() {
  ++syscalls_;
  kernel_.EnterKernel(TrapEntryRegion());
  kernel_.cpu().Execute(DispatchRegion());
}

void MonolithicOs::SyscallExit() { kernel_.LeaveKernel(); }

void MonolithicOs::ChargeGreThunk() {
  kernel_.cpu().Execute(GreThunkRegion());
  kernel_.cpu().Stall(40);  // segment register reloads around the thunk
}

base::Result<svc::NodeId> MonolithicOs::Walk(mk::Env& env, const std::string& path,
                                             svc::NodeId* parent, std::string* leaf) {
  kernel_.cpu().Execute(FsLayerRegion());
  svc::NodeId dir = pfs_->root();
  std::vector<std::string> parts;
  size_t start = 1;
  while (start <= path.size()) {
    const size_t slash = path.find('/', start);
    const std::string part =
        slash == std::string::npos ? path.substr(start) : path.substr(start, slash - start);
    if (!part.empty()) {
      parts.push_back(part);
    }
    if (slash == std::string::npos) {
      break;
    }
    start = slash + 1;
  }
  if (parent != nullptr) {
    *parent = dir;
  }
  if (parts.empty()) {
    if (leaf != nullptr) {
      leaf->clear();
    }
    return dir;
  }
  for (size_t i = 0; i + 1 < parts.size(); ++i) {
    auto next = pfs_->Lookup(env, dir, parts[i]);
    if (!next.ok()) {
      return next.status();
    }
    dir = *next;
  }
  if (parent != nullptr) {
    *parent = dir;
  }
  if (leaf != nullptr) {
    *leaf = parts.back();
  }
  return pfs_->Lookup(env, dir, parts.back());
}

base::Result<uint64_t> MonolithicOs::Open(mk::Env& env, const std::string& path,
                                          uint32_t flags) {
  SyscallEnter();
  svc::NodeId parent = 0;
  std::string leaf;
  auto node = Walk(env, path, &parent, &leaf);
  if (!node.ok() && node.status() == base::Status::kNotFound && (flags & svc::kFsCreate) != 0 &&
      !leaf.empty()) {
    node = pfs_->Create(env, parent, leaf, /*directory=*/false);
  }
  if (!node.ok()) {
    SyscallExit();
    return node.status();
  }
  const uint64_t handle = next_handle_++;
  open_files_.emplace(handle, Node{*node});
  SyscallExit();
  return handle;
}

base::Status MonolithicOs::Close(mk::Env& env, uint64_t handle) {
  SyscallEnter();
  const bool ok = open_files_.erase(handle) != 0;
  SyscallExit();
  return ok ? base::Status::kOk : base::Status::kNotFound;
}

base::Result<uint32_t> MonolithicOs::Read(mk::Env& env, uint64_t handle, uint64_t offset,
                                          void* out, uint32_t len) {
  SyscallEnter();
  auto it = open_files_.find(handle);
  if (it == open_files_.end()) {
    SyscallExit();
    return base::Status::kInvalidArgument;
  }
  kernel_.cpu().Execute(FsLayerRegion());
  auto got = pfs_->Read(env, it->second.node, offset, out, len);
  SyscallExit();
  return got;
}

base::Result<uint32_t> MonolithicOs::Write(mk::Env& env, uint64_t handle, uint64_t offset,
                                           const void* data, uint32_t len) {
  SyscallEnter();
  auto it = open_files_.find(handle);
  if (it == open_files_.end()) {
    SyscallExit();
    return base::Status::kInvalidArgument;
  }
  kernel_.cpu().Execute(FsLayerRegion());
  auto wrote = pfs_->Write(env, it->second.node, offset, data, len);
  SyscallExit();
  return wrote;
}

base::Status MonolithicOs::Mkdir(mk::Env& env, const std::string& path) {
  SyscallEnter();
  svc::NodeId parent = 0;
  std::string leaf;
  (void)Walk(env, path, &parent, &leaf);
  if (leaf.empty()) {
    SyscallExit();
    return base::Status::kInvalidArgument;
  }
  auto node = pfs_->Create(env, parent, leaf, /*directory=*/true);
  SyscallExit();
  return node.status();
}

base::Status MonolithicOs::Unlink(mk::Env& env, const std::string& path) {
  SyscallEnter();
  svc::NodeId parent = 0;
  std::string leaf;
  auto node = Walk(env, path, &parent, &leaf);
  if (!node.ok()) {
    SyscallExit();
    return node.status();
  }
  const base::Status st = pfs_->Remove(env, parent, leaf);
  SyscallExit();
  return st;
}

base::Result<std::vector<svc::DirEntry>> MonolithicOs::ReadDir(mk::Env& env,
                                                               const std::string& path) {
  SyscallEnter();
  auto node = Walk(env, path, nullptr, nullptr);
  if (!node.ok()) {
    SyscallExit();
    return node.status();
  }
  auto entries = pfs_->ReadDir(env, *node);
  SyscallExit();
  return entries;
}

base::Result<hw::VirtAddr> MonolithicOs::MapVram(mk::Task& task) {
  if (vram_object_ == nullptr) {
    return base::Status::kNotSupported;
  }
  return kernel_.VmMapObject(task, vram_object_, 0, hw::PageRound(fb_->vram_size()),
                             mk::Prot::kReadWrite, /*anywhere=*/true);
}

base::Result<uint32_t> MonolithicOs::WinCreate(mk::Env& env, uint32_t x, uint32_t y, uint32_t w,
                                               uint32_t h) {
  SyscallEnter();
  kernel_.cpu().Execute(WinRegion());
  if (fb_ != nullptr && (x + w > fb_->width() || y + h > fb_->height())) {
    SyscallExit();
    return base::Status::kInvalidArgument;
  }
  auto sem = kernel_.SemCreate(0);
  if (!sem.ok()) {
    SyscallExit();
    return sem.status();
  }
  const uint32_t hwnd = next_hwnd_++;
  windows_.emplace(hwnd, Window{x, y, w, h, next_z_++, {}, *sem});
  SyscallExit();
  return hwnd;
}

base::Status MonolithicOs::WinPost(mk::Env& env, uint32_t hwnd, uint32_t msg, uint32_t p1,
                                   uint32_t p2) {
  SyscallEnter();
  kernel_.cpu().Execute(WinRegion());
  auto it = windows_.find(hwnd);
  if (it == windows_.end()) {
    SyscallExit();
    return base::Status::kNotFound;
  }
  it->second.queue.push_back({msg, p1, p2});
  (void)kernel_.SemSignal(it->second.sem);
  SyscallExit();
  return base::Status::kOk;
}

base::Result<MonolithicOs::WinMsg> MonolithicOs::WinGet(mk::Env& env, uint32_t hwnd) {
  SyscallEnter();
  kernel_.cpu().Execute(WinRegion());
  auto it = windows_.find(hwnd);
  if (it == windows_.end()) {
    SyscallExit();
    return base::Status::kNotFound;
  }
  const base::Status st = kernel_.SemWait(it->second.sem);
  if (st != base::Status::kOk) {
    SyscallExit();
    return st;
  }
  WPOS_CHECK(!it->second.queue.empty());
  WinMsg msg = it->second.queue.front();
  it->second.queue.pop_front();
  SyscallExit();
  return msg;
}

base::Status MonolithicOs::WinFillRect(mk::Env& env, mk::Task& task, hw::VirtAddr vram,
                                       uint32_t hwnd, uint32_t x, uint32_t y, uint32_t w,
                                       uint32_t h, uint8_t color) {
  ChargeGreThunk();
  auto it = windows_.find(hwnd);
  if (it == windows_.end()) {
    return base::Status::kNotFound;
  }
  const Window& win = it->second;
  if (x + w > win.w || y + h > win.h) {
    return base::Status::kInvalidArgument;
  }
  for (uint32_t row = 0; row < h; ++row) {
    kernel_.cpu().ExecuteInstructions(DrawLoopRegion(), 8 + w / 8);
    const uint64_t offset = static_cast<uint64_t>(win.y + y + row) * fb_->width() + win.x + x;
    const base::Status st = kernel_.UserFill(task, vram + offset, color, w);
    if (st != base::Status::kOk) {
      return st;
    }
  }
  return base::Status::kOk;
}

base::Status MonolithicOs::WinBitBlt(mk::Env& env, mk::Task& task, hw::VirtAddr vram,
                                     uint32_t hwnd, uint32_t x, uint32_t y, uint32_t w,
                                     uint32_t h) {
  ChargeGreThunk();
  auto it = windows_.find(hwnd);
  if (it == windows_.end()) {
    return base::Status::kNotFound;
  }
  const Window& win = it->second;
  if (x + w > win.w || y + h > win.h) {
    return base::Status::kInvalidArgument;
  }
  for (uint32_t row = 0; row < h; ++row) {
    kernel_.cpu().ExecuteInstructions(DrawLoopRegion(), 8 + w / 4);
    const uint64_t offset = static_cast<uint64_t>(win.y + y + row) * fb_->width() + win.x + x;
    base::Status st = kernel_.UserTouch(task, vram + offset, w, /*write=*/false);
    if (st != base::Status::kOk) {
      return st;
    }
    st = kernel_.UserTouch(task, vram + offset, w, /*write=*/true);
    if (st != base::Status::kOk) {
      return st;
    }
  }
  return base::Status::kOk;
}

base::Status MonolithicOs::WinSwitch(mk::Env& env, mk::Task& task, hw::VirtAddr vram,
                                     uint32_t hwnd) {
  SyscallEnter();
  kernel_.cpu().Execute(WinRegion());
  auto it = windows_.find(hwnd);
  if (it == windows_.end()) {
    SyscallExit();
    return base::Status::kNotFound;
  }
  it->second.z = next_z_++;
  // Activation broadcast (WM_ACTIVATE): in the monolithic system each post
  // is a kernel-queue operation.
  for (auto& [other_hwnd, other] : windows_) {
    if (other_hwnd != hwnd) {
      other.queue.push_back({0x0d, hwnd, 0});
      (void)kernel_.SemSignal(other.sem);
    }
  }
  SyscallExit();
  return WinBitBlt(env, task, vram, hwnd, 0, 0, it->second.w, it->second.h);
}

}  // namespace baseline
