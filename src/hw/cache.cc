#include "src/hw/cache.h"

#include "src/base/log.h"

namespace hw {

namespace {
uint32_t Log2(uint32_t v) {
  uint32_t r = 0;
  while ((1u << r) < v) {
    ++r;
  }
  return r;
}
}  // namespace

Cache::Cache(const CacheConfig& config) : config_(config) {
  WPOS_CHECK(config.size_bytes % (config.line_bytes * config.ways) == 0)
      << "cache geometry must divide evenly";
  num_sets_ = config.size_bytes / (config.line_bytes * config.ways);
  WPOS_CHECK((num_sets_ & (num_sets_ - 1)) == 0) << "set count must be a power of two";
  line_shift_ = Log2(config.line_bytes);
  lines_.resize(static_cast<size_t>(num_sets_) * config.ways);
}

Cache::AccessResult Cache::Access(PhysAddr addr, bool write) {
  ++stats_.accesses;
  ++tick_;
  const uint64_t line_addr = addr >> line_shift_;
  const uint32_t set = static_cast<uint32_t>(line_addr & (num_sets_ - 1));
  const uint64_t tag = line_addr >> Log2(num_sets_);
  Line* base = &lines_[static_cast<size_t>(set) * config_.ways];

  // Hit path.
  for (uint32_t w = 0; w < config_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.lru = tick_;
      line.dirty = line.dirty || write;
      return {.hit = true, .writeback = false};
    }
  }

  // Miss: pick invalid way, else LRU victim.
  ++stats_.misses;
  Line* victim = &base[0];
  for (uint32_t w = 0; w < config_.ways; ++w) {
    Line& line = base[w];
    if (!line.valid) {
      victim = &line;
      break;
    }
    if (line.lru < victim->lru) {
      victim = &line;
    }
  }
  const bool writeback = victim->valid && victim->dirty;
  if (writeback) {
    ++stats_.writebacks;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->dirty = write;
  victim->lru = tick_;
  return {.hit = false, .writeback = writeback};
}

void Cache::Flush() {
  for (Line& line : lines_) {
    if (line.valid && line.dirty) {
      ++stats_.writebacks;
    }
    line.valid = false;
    line.dirty = false;
  }
}

}  // namespace hw
