#include "src/hw/timer_device.h"

namespace hw {

uint32_t TimerDevice::ReadReg(uint32_t offset) {
  switch (offset) {
    case kRegPeriod:
      return period_;
    case kRegControl:
      return running_ ? 1 : 0;
    case kRegTicks:
      return static_cast<uint32_t>(ticks_);
    default:
      return 0;
  }
}

void TimerDevice::WriteReg(uint32_t offset, uint32_t value) {
  switch (offset) {
    case kRegPeriod:
      period_ = value;
      ++generation_;
      if (running_) {
        Arm(generation_);
      }
      break;
    case kRegControl:
      if (value == kCtlStart && !running_ && period_ > 0) {
        running_ = true;
        ++generation_;
        Arm(generation_);
      } else if (value == kCtlStop) {
        running_ = false;
        ++generation_;
      }
      break;
    default:
      break;
  }
}

void TimerDevice::Arm(uint64_t generation) {
  machine()->ScheduleAfter(period_, [this, generation] {
    if (!running_ || generation != generation_) {
      return;
    }
    ++ticks_;
    RaiseIrq();
    Arm(generation);
  });
}

}  // namespace hw
