// TLB model. The Pentium and 604 of the paper had no address-space tags, so
// an address-space switch flushes the whole TLB; the refill cost after a
// switch is one of the context-switch costs the paper calls out.
#ifndef SRC_HW_TLB_H_
#define SRC_HW_TLB_H_

#include <cstdint>
#include <vector>

#include "src/hw/types.h"

namespace hw {

struct TlbConfig {
  uint32_t entries = 64;  // Pentium DTLB: 64 entries
  uint32_t ways = 4;
};

struct TlbStats {
  uint64_t accesses = 0;
  uint64_t misses = 0;
  uint64_t flushes = 0;
};

class Tlb {
 public:
  explicit Tlb(const TlbConfig& config);

  // Touch the translation for virtual page `vpn`. Returns true on hit; on a
  // miss the entry is installed (the page walk itself is charged by the CPU).
  bool Access(uint64_t vpn);

  void Flush();

  const TlbStats& stats() const { return stats_; }

 private:
  struct Entry {
    uint64_t vpn = 0;
    bool valid = false;
    uint64_t lru = 0;
  };

  TlbConfig config_;
  uint32_t num_sets_;
  std::vector<Entry> entries_;
  uint64_t tick_ = 0;
  TlbStats stats_;
};

}  // namespace hw

#endif  // SRC_HW_TLB_H_
