// Simulated code layout.
//
// The cost model does not interpret real machine code. Instead, every
// instrumented function in the kernel, the servers and the user-level stubs
// registers a *code region*: a contiguous range of simulated instruction
// addresses with a fixed instruction count. Executing the function "runs"
// those instructions through the CPU model, which fetches the corresponding
// I-cache lines. Because regions from different components live at different
// simulated addresses (just as the real linker placed the microkernel, the
// stubs and each server at different addresses), a path that spans many
// components has a large unique I-cache footprint — which is precisely the
// effect Table 2 of the paper attributes the RPC slowdown to.
//
// The layout is a process-global singleton: it models the linked images of
// the system, which are shared by every simulated machine in the process.
#ifndef SRC_HW_CODE_LAYOUT_H_
#define SRC_HW_CODE_LAYOUT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/hw/types.h"

namespace hw {

// Average simulated instruction size. 4 bytes models the mostly-32-bit
// encodings of the era's targets (PowerPC exactly; x86 approximately).
inline constexpr uint32_t kBytesPerInstruction = 4;

struct CodeRegion {
  PhysAddr base = 0;
  uint32_t instructions = 0;
  // Static-to-dynamic footprint ratio: a function whose hot path executes N
  // instructions typically spans ~sparsity*N instructions of text (error
  // paths, cold branches, alignment). The I-cache footprint scales with the
  // static text; the instruction count does not.
  uint32_t sparsity = 1;

  uint64_t size_bytes() const {
    return static_cast<uint64_t>(instructions) * kBytesPerInstruction * sparsity;
  }
};

class CodeLayout {
 public:
  static CodeLayout& Global();

  // Registers (or returns the previously registered) region for `name` with
  // `instructions` simulated instructions. Regions are laid out sequentially
  // in registration order, line-aligned, within the image of their component
  // (the prefix of `name` up to the first '.'). Each component image starts
  // at its own 64 KB-aligned base, like a separately linked module.
  CodeRegion Register(const std::string& name, uint32_t instructions, uint32_t sparsity = 1);

  // Total simulated text bytes registered for a component ("mk", "svc", ...).
  uint64_t ComponentTextBytes(const std::string& component) const;

  // Reverse lookup: the registered name of the region starting at `base`
  // ("?0x..." if unknown). Used by profilers to label per-region totals.
  std::string NameOf(PhysAddr base) const;

  void Clear();  // test-only

 private:
  struct Component {
    PhysAddr next = 0;
    uint64_t bytes = 0;
  };

  std::unordered_map<std::string, CodeRegion> regions_;
  std::unordered_map<PhysAddr, std::string> names_by_base_;
  std::unordered_map<std::string, Component> components_;
  PhysAddr next_image_base_ = kImageSpaceBase;
  uint64_t image_count_ = 0;

  // Code images live far above simulated RAM so they never collide with data.
  static constexpr PhysAddr kImageSpaceBase = 0x1'0000'0000ull;
  static constexpr uint64_t kImageAlign = 64 * 1024;
};

// Convenience used by instrumented functions:
//   static const hw::CodeRegion kPath = hw::DefineCode("mk.rpc.send", 140);
inline CodeRegion DefineCode(const std::string& name, uint32_t instructions) {
  return CodeLayout::Global().Register(name, instructions);
}

// Kernel/stub text: dense hot path inside a larger function body.
inline constexpr uint32_t kKernelTextSparsity = 3;
inline CodeRegion DefineKernelCode(const std::string& name, uint32_t instructions) {
  return CodeLayout::Global().Register(name, instructions, kKernelTextSparsity);
}

}  // namespace hw

#endif  // SRC_HW_CODE_LAYOUT_H_
