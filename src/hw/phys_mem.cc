#include "src/hw/phys_mem.h"

#include "src/base/log.h"

namespace hw {

PhysMem::PhysMem(uint64_t size_bytes) {
  WPOS_CHECK(size_bytes % kPageSize == 0);
  data_.resize(size_bytes, 0);
  frame_used_.resize(size_bytes >> kPageShift, false);
}

base::Result<PhysAddr> PhysMem::AllocFrame() {
  const uint64_t n = frame_used_.size();
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t f = (next_hint_ + i) % n;
    if (!frame_used_[f]) {
      frame_used_[f] = true;
      next_hint_ = f + 1;
      ++frames_allocated_;
      return PhysAddr{f << kPageShift};
    }
  }
  return base::Status::kResourceShortage;
}

base::Result<PhysAddr> PhysMem::AllocContiguous(uint64_t count) {
  const uint64_t n = frame_used_.size();
  uint64_t run = 0;
  for (uint64_t f = 0; f < n; ++f) {
    run = frame_used_[f] ? 0 : run + 1;
    if (run == count) {
      const uint64_t start = f + 1 - count;
      for (uint64_t i = start; i <= f; ++i) {
        frame_used_[i] = true;
      }
      frames_allocated_ += count;
      return PhysAddr{start << kPageShift};
    }
  }
  return base::Status::kResourceShortage;
}

void PhysMem::FreeFrame(PhysAddr frame) {
  WPOS_CHECK((frame & kPageMask) == 0);
  const uint64_t f = frame >> kPageShift;
  WPOS_CHECK(f < frame_used_.size());
  WPOS_CHECK(frame_used_[f]) << "double free of frame " << f;
  frame_used_[f] = false;
  --frames_allocated_;
}

bool PhysMem::IsAllocated(PhysAddr frame) const {
  const uint64_t f = frame >> kPageShift;
  return f < frame_used_.size() && frame_used_[f];
}

void PhysMem::Read(PhysAddr addr, void* out, uint64_t len) const {
  WPOS_CHECK(addr + len <= data_.size()) << "physical read out of range";
  std::memcpy(out, data_.data() + addr, len);
}

void PhysMem::Write(PhysAddr addr, const void* src, uint64_t len) {
  WPOS_CHECK(addr + len <= data_.size()) << "physical write out of range";
  std::memcpy(data_.data() + addr, src, len);
}

void PhysMem::Fill(PhysAddr addr, uint8_t byte, uint64_t len) {
  WPOS_CHECK(addr + len <= data_.size());
  std::memset(data_.data() + addr, byte, len);
}

uint8_t PhysMem::ReadU8(PhysAddr addr) const {
  uint8_t v;
  Read(addr, &v, 1);
  return v;
}

uint32_t PhysMem::ReadU32(PhysAddr addr) const {
  uint32_t v;
  Read(addr, &v, 4);
  return v;
}

void PhysMem::WriteU8(PhysAddr addr, uint8_t v) { Write(addr, &v, 1); }

void PhysMem::WriteU32(PhysAddr addr, uint32_t v) { Write(addr, &v, 4); }

}  // namespace hw
