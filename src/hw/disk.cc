#include "src/hw/disk.h"

#include <cstring>

#include "src/base/log.h"

namespace hw {

Disk::Disk(std::string name, int irq_line, const Geometry& geometry)
    : Device(std::move(name), irq_line), geometry_(geometry) {
  image_.resize(geometry_.sectors * kSectorSize, 0);
}

uint32_t Disk::ReadReg(uint32_t offset) {
  switch (offset) {
    case kRegLba:
      return reg_lba_;
    case kRegCount:
      return reg_count_;
    case kRegDmaLo:
      return reg_dma_;
    case kRegStatus:
      return reg_status_;
    default:
      return 0;
  }
}

void Disk::WriteReg(uint32_t offset, uint32_t value) {
  switch (offset) {
    case kRegLba:
      reg_lba_ = value;
      break;
    case kRegCount:
      reg_count_ = value;
      break;
    case kRegDmaLo:
      reg_dma_ = value;
      break;
    case kRegCommand:
      StartCommand(value);
      break;
    case kRegStatus:
      // Writing status clears the done/error bits (interrupt ack at device).
      reg_status_ &= ~(kStatusDone | kStatusError);
      break;
    default:
      break;
  }
}

void Disk::StartCommand(uint32_t cmd) {
  if ((reg_status_ & kStatusBusy) != 0) {
    reg_status_ |= kStatusError;
    return;
  }
  if (static_cast<uint64_t>(reg_lba_) + reg_count_ > geometry_.sectors || reg_count_ == 0) {
    reg_status_ |= kStatusDone | kStatusError;
    RaiseIrq();
    return;
  }
  reg_status_ |= kStatusBusy;
  ++io_count_;

  const bool sequential = reg_lba_ == last_lba_;
  last_lba_ = reg_lba_ + reg_count_;
  const Cycles latency = (sequential ? geometry_.seek_cycles / 8 : geometry_.seek_cycles) +
                         geometry_.per_sector_cycles * reg_count_;

  const uint32_t lba = reg_lba_;
  const uint32_t count = reg_count_;
  const PhysAddr dma = reg_dma_;
  machine()->ScheduleAfter(latency, [this, cmd, lba, count, dma] {
    const uint64_t bytes = static_cast<uint64_t>(count) * kSectorSize;
    if (cmd == kCmdRead) {
      machine()->mem().Write(dma, image_.data() + static_cast<uint64_t>(lba) * kSectorSize, bytes);
    } else if (cmd == kCmdWrite) {
      machine()->mem().Read(dma, image_.data() + static_cast<uint64_t>(lba) * kSectorSize, bytes);
    } else {
      reg_status_ |= kStatusError;
    }
    reg_status_ &= ~kStatusBusy;
    reg_status_ |= kStatusDone;
    RaiseIrq();
  });
}

void Disk::ReadSectors(uint64_t lba, uint32_t count, void* out) const {
  WPOS_CHECK(lba + count <= geometry_.sectors);
  std::memcpy(out, image_.data() + lba * kSectorSize, static_cast<uint64_t>(count) * kSectorSize);
}

void Disk::WriteSectors(uint64_t lba, uint32_t count, const void* src) {
  WPOS_CHECK(lba + count <= geometry_.sectors);
  std::memcpy(image_.data() + lba * kSectorSize, src, static_cast<uint64_t>(count) * kSectorSize);
}

}  // namespace hw
