#include "src/hw/dma.h"

#include <vector>

namespace hw {

uint32_t DmaEngine::ReadReg(uint32_t offset) {
  const uint32_t channel = offset / 0x20;
  const uint32_t reg = offset % 0x20;
  if (channel >= kNumChannels) {
    return 0;
  }
  const Channel& ch = channels_[channel];
  switch (reg) {
    case kRegSrc:
      return ch.src;
    case kRegDst:
      return ch.dst;
    case kRegLen:
      return ch.len;
    case kRegStatus:
      return ch.status;
    default:
      return 0;
  }
}

void DmaEngine::WriteReg(uint32_t offset, uint32_t value) {
  const uint32_t channel = offset / 0x20;
  const uint32_t reg = offset % 0x20;
  if (channel >= kNumChannels) {
    return;
  }
  Channel& ch = channels_[channel];
  switch (reg) {
    case kRegSrc:
      ch.src = value;
      break;
    case kRegDst:
      ch.dst = value;
      break;
    case kRegLen:
      ch.len = value;
      break;
    case kRegControl:
      if (value == 1) {
        Start(channel);
      }
      break;
    case kRegStatus:
      ch.status &= ~kStatusDone;
      break;
    default:
      break;
  }
}

void DmaEngine::Start(uint32_t channel) {
  Channel& ch = channels_[channel];
  if ((ch.status & kStatusBusy) != 0 || ch.len == 0) {
    return;
  }
  ch.status |= kStatusBusy;
  ++transfers_;
  const Cycles latency = cycles_per_8_bytes_ * ((ch.len + 7) / 8) + 50;
  machine()->ScheduleAfter(latency, [this, channel] {
    Channel& done = channels_[channel];
    std::vector<uint8_t> buf(done.len);
    machine()->mem().Read(done.src, buf.data(), buf.size());
    machine()->mem().Write(done.dst, buf.data(), buf.size());
    done.status &= ~kStatusBusy;
    done.status |= kStatusDone;
    RaiseIrq();
  });
}

}  // namespace hw
