#include "src/hw/cpu.h"

namespace hw {

Cpu::Cpu(const CpuConfig& config)
    : config_(config), icache_(config.icache), dcache_(config.dcache), tlb_(config.tlb) {}

void Cpu::ChargeFetch(PhysAddr addr) {
  Cache::AccessResult r = icache_.Access(addr, /*write=*/false);
  if (!r.hit) {
    cycles_ += config_.icache_miss_cycles;
    bus_cycles_ += config_.bus_per_fill;
  }
}

void Cpu::ExecuteInstructions(const CodeRegion& region, uint64_t instructions) {
  if (instructions == 0) {
    return;
  }
  const Cycles cycles_before = cycles_;
  const uint64_t imiss_before = icache_.stats().misses;
  instructions_ += instructions;
  // Base pipeline cost with fractional accumulation so that repeated short
  // paths do not round the CPI away.
  cycle_frac_ += static_cast<double>(instructions) * config_.base_cpi;
  const Cycles whole = static_cast<Cycles>(cycle_frac_);
  cycle_frac_ -= static_cast<double>(whole);
  cycles_ += whole;

  // Fetch every I-cache line the executed range covers. For partial
  // execution beyond the region (copy loops), the same lines re-execute.
  // With sparsity > 1 the dynamic path hops through a larger static body:
  // the same number of line fetches, spread over sparsity times the span.
  const uint64_t bytes =
      (instructions > region.instructions ? region.instructions : instructions) *
      kBytesPerInstruction;
  const uint32_t line = config_.icache.line_bytes;
  const uint32_t stride = line * region.sparsity;
  const uint64_t fetches = (bytes + line - 1) / line;
  PhysAddr a = region.base & ~static_cast<PhysAddr>(line - 1);
  for (uint64_t i = 0; i < fetches; ++i) {
    ChargeFetch(a + i * stride);
  }
  if (execute_observer_) {
    execute_observer_(region, instructions, cycles_ - cycles_before,
                      icache_.stats().misses - imiss_before);
  }
}

void Cpu::AccessData(PhysAddr paddr, uint32_t size, bool write) {
  ++data_accesses_;
  if (access_observer_) {
    access_observer_(paddr, size, write);
  }
  const uint32_t line = config_.dcache.line_bytes;
  const PhysAddr first = paddr & ~static_cast<PhysAddr>(line - 1);
  const PhysAddr last = (paddr + (size == 0 ? 0 : size - 1)) & ~static_cast<PhysAddr>(line - 1);
  for (PhysAddr a = first; a <= last; a += line) {
    Cache::AccessResult r = dcache_.Access(a, write);
    if (!r.hit) {
      cycles_ += config_.dcache_miss_cycles;
      bus_cycles_ += config_.bus_per_fill;
    }
    if (r.writeback) {
      cycles_ += config_.writeback_cycles;
      bus_cycles_ += config_.bus_per_writeback;
    }
  }
}

void Cpu::AccessTranslated(VirtAddr vaddr, PhysAddr paddr, PhysAddr pte_paddr, uint32_t size,
                           bool write) {
  if (!tlb_.Access(PageIndex(vaddr))) {
    cycles_ += config_.tlb_walk_cycles;
    // The hardware walker reads the PTE through the data cache.
    AccessData(pte_paddr, 4, /*write=*/false);
  }
  AccessData(paddr, size, write);
}

void Cpu::AccessUncached(PhysAddr paddr, uint32_t size, bool write) {
  ++uncached_accesses_;
  cycles_ += config_.uncached_cycles;
  bus_cycles_ += config_.bus_per_uncached;
}

void Cpu::FlushCaches() {
  icache_.Flush();
  dcache_.Flush();
}

CpuCounters Cpu::counters() const {
  CpuCounters c;
  c.instructions = instructions_;
  c.cycles = cycles_;
  c.bus_cycles = bus_cycles_;
  c.icache_misses = icache_.stats().misses;
  c.dcache_misses = dcache_.stats().misses;
  c.tlb_misses = tlb_.stats().misses;
  c.data_accesses = data_accesses_;
  c.uncached_accesses = uncached_accesses_;
  return c;
}

}  // namespace hw
