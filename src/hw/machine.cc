#include "src/hw/machine.h"

#include "src/base/log.h"

namespace hw {

void Device::RaiseIrq() {
  WPOS_CHECK(machine_ != nullptr) << "device " << name_ << " not attached";
  WPOS_CHECK(irq_line_ >= 0) << "device " << name_ << " has no interrupt line";
  machine_->pic().Raise(static_cast<uint32_t>(irq_line_));
}

Machine::Machine(const MachineConfig& config) : cpu_(config.cpu), mem_(config.ram_bytes) {}

Device* Machine::AddDevice(std::unique_ptr<Device> device) {
  device->machine_ = this;
  device->reg_base_ = kDeviceSpaceBase + devices_.size() * kDeviceWindow;
  devices_.push_back(std::move(device));
  return devices_.back().get();
}

Device* Machine::FindDevice(const std::string& name) const {
  for (const auto& d : devices_) {
    if (d->name() == name) {
      return d.get();
    }
  }
  return nullptr;
}

uint32_t Machine::DeviceRead(PhysAddr addr) {
  WPOS_CHECK(IsDeviceAddr(addr)) << "not a device address";
  const uint64_t index = (addr - kDeviceSpaceBase) / kDeviceWindow;
  const uint32_t offset = static_cast<uint32_t>((addr - kDeviceSpaceBase) % kDeviceWindow);
  return devices_[index]->ReadReg(offset);
}

void Machine::DeviceWrite(PhysAddr addr, uint32_t value) {
  WPOS_CHECK(IsDeviceAddr(addr)) << "not a device address";
  const uint64_t index = (addr - kDeviceSpaceBase) / kDeviceWindow;
  const uint32_t offset = static_cast<uint32_t>((addr - kDeviceSpaceBase) % kDeviceWindow);
  devices_[index]->WriteReg(offset, value);
}

void Machine::ScheduleAt(Cycles when, EventFn fn) {
  events_.push(Event{.when = when, .seq = event_seq_++, .fn = std::move(fn)});
}

void Machine::PollEvents() {
  while (!events_.empty() && events_.top().when <= cpu_.cycles()) {
    EventFn fn = std::move(const_cast<Event&>(events_.top()).fn);
    events_.pop();
    fn();
  }
}

bool Machine::NextEventCycle(Cycles* when) const {
  if (events_.empty()) {
    return false;
  }
  *when = events_.top().when;
  return true;
}

bool Machine::IdleAdvance() {
  Cycles when = 0;
  if (!NextEventCycle(&when)) {
    return false;
  }
  if (when > cpu_.cycles()) {
    cpu_.AdvanceCycles(when - cpu_.cycles());
  }
  PollEvents();
  return true;
}

}  // namespace hw
