#include "src/hw/nic.h"

namespace hw {

uint32_t Nic::ReadReg(uint32_t offset) {
  switch (offset) {
    case kRegStatus:
      return reg_status_;
    case kRegRxLen:
      return reg_rx_len_;
    default:
      return 0;
  }
}

void Nic::WriteReg(uint32_t offset, uint32_t value) {
  switch (offset) {
    case kRegTxAddr:
      reg_tx_addr_ = value;
      break;
    case kRegTxLen:
      reg_tx_len_ = value;
      break;
    case kRegRxAddr:
      reg_rx_addr_ = value;
      break;
    case kRegRxCap:
      reg_rx_cap_ = value;
      break;
    case kRegCommand:
      if (value == kCmdSend) {
        Transmit();
      } else if (value == kCmdRxAck) {
        reg_status_ &= ~kStatusRxReady;
        TryDeliver();
      }
      break;
    case kRegStatus:
      reg_status_ &= ~kStatusTxDone;
      break;
    default:
      break;
  }
}

void Nic::Transmit() {
  if (reg_tx_len_ == 0 || reg_tx_len_ > kMaxFrame) {
    return;
  }
  std::vector<uint8_t> frame(reg_tx_len_);
  machine()->mem().Read(reg_tx_addr_, frame.data(), frame.size());
  ++frames_sent_;
  machine()->ScheduleAfter(wire_latency_, [this, frame = std::move(frame)]() mutable {
    in_flight_.push_back(std::move(frame));
    reg_status_ |= kStatusTxDone;
    TryDeliver();
  });
}

void Nic::TryDeliver() {
  if (in_flight_.empty() || (reg_status_ & kStatusRxReady) != 0 || reg_rx_cap_ == 0) {
    return;
  }
  std::vector<uint8_t>& frame = in_flight_.front();
  if (frame.size() > reg_rx_cap_) {
    in_flight_.pop_front();  // oversize for buffer: drop
    return;
  }
  machine()->mem().Write(reg_rx_addr_, frame.data(), frame.size());
  reg_rx_len_ = static_cast<uint32_t>(frame.size());
  reg_status_ |= kStatusRxReady;
  in_flight_.pop_front();
  ++frames_delivered_;
  RaiseIrq();
}

}  // namespace hw
