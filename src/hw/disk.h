// Simulated sector-addressed disk with DMA and completion interrupts.
//
// Register programming model (all 32-bit registers):
//   kRegLba      first sector of the transfer
//   kRegCount    sector count
//   kRegDmaLo    physical DMA address (low 32 bits)
//   kRegCommand  1 = read (disk -> memory), 2 = write (memory -> disk)
//   kRegStatus   bit0 busy, bit1 done, bit2 error
// Writing kRegCommand starts the operation; completion raises the IRQ after
// a seek-plus-transfer latency. A synchronous backdoor (ReadSectors /
// WriteSectors) exists for host-side tools such as mkfs.
#ifndef SRC_HW_DISK_H_
#define SRC_HW_DISK_H_

#include <cstdint>
#include <vector>

#include "src/hw/machine.h"
#include "src/hw/types.h"

namespace hw {

class Disk : public Device {
 public:
  static constexpr uint32_t kSectorSize = 512;

  static constexpr uint32_t kRegLba = 0x00;
  static constexpr uint32_t kRegCount = 0x04;
  static constexpr uint32_t kRegDmaLo = 0x08;
  static constexpr uint32_t kRegCommand = 0x0c;
  static constexpr uint32_t kRegStatus = 0x10;

  static constexpr uint32_t kCmdRead = 1;
  static constexpr uint32_t kCmdWrite = 2;

  static constexpr uint32_t kStatusBusy = 1u << 0;
  static constexpr uint32_t kStatusDone = 1u << 1;
  static constexpr uint32_t kStatusError = 1u << 2;

  struct Geometry {
    uint64_t sectors = 128 * 1024;   // 64 MB disk
    Cycles seek_cycles = 40000;      // ~0.3 ms at 133 MHz
    Cycles per_sector_cycles = 2000;
  };

  Disk(std::string name, int irq_line, const Geometry& geometry);
  Disk(std::string name, int irq_line) : Disk(std::move(name), irq_line, Geometry()) {}

  uint32_t ReadReg(uint32_t offset) override;
  void WriteReg(uint32_t offset, uint32_t value) override;

  // Host backdoor: direct access to the platter image (no cost, no IRQ).
  void ReadSectors(uint64_t lba, uint32_t count, void* out) const;
  void WriteSectors(uint64_t lba, uint32_t count, const void* src);

  uint64_t num_sectors() const { return geometry_.sectors; }
  uint64_t io_count() const { return io_count_; }

 private:
  void StartCommand(uint32_t cmd);

  Geometry geometry_;
  std::vector<uint8_t> image_;
  uint32_t reg_lba_ = 0;
  uint32_t reg_count_ = 0;
  uint32_t reg_dma_ = 0;
  uint32_t reg_status_ = 0;
  uint64_t last_lba_ = 0;  // rudimentary seek model: same-track follow-on is cheap
  uint64_t io_count_ = 0;
};

}  // namespace hw

#endif  // SRC_HW_DISK_H_
