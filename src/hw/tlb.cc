#include "src/hw/tlb.h"

#include "src/base/log.h"

namespace hw {

Tlb::Tlb(const TlbConfig& config) : config_(config) {
  WPOS_CHECK(config.entries % config.ways == 0);
  num_sets_ = config.entries / config.ways;
  WPOS_CHECK((num_sets_ & (num_sets_ - 1)) == 0) << "TLB set count must be a power of two";
  entries_.resize(config.entries);
}

bool Tlb::Access(uint64_t vpn) {
  ++stats_.accesses;
  ++tick_;
  const uint32_t set = static_cast<uint32_t>(vpn & (num_sets_ - 1));
  Entry* base = &entries_[static_cast<size_t>(set) * config_.ways];
  for (uint32_t w = 0; w < config_.ways; ++w) {
    Entry& e = base[w];
    if (e.valid && e.vpn == vpn) {
      e.lru = tick_;
      return true;
    }
  }
  ++stats_.misses;
  Entry* victim = &base[0];
  for (uint32_t w = 0; w < config_.ways; ++w) {
    Entry& e = base[w];
    if (!e.valid) {
      victim = &e;
      break;
    }
    if (e.lru < victim->lru) {
      victim = &e;
    }
  }
  victim->valid = true;
  victim->vpn = vpn;
  victim->lru = tick_;
  return false;
}

void Tlb::Flush() {
  ++stats_.flushes;
  for (Entry& e : entries_) {
    e.valid = false;
  }
}

}  // namespace hw
