// Simulated network interface with loopback delivery: a transmitted frame
// reappears on the receive side after a wire latency. Enough to exercise the
// networking service's full send/receive code paths.
//
// Registers:
//   kRegTxAddr/kRegTxLen + kRegCommand(kCmdSend)  transmit a frame by DMA
//   kRegRxAddr/kRegRxCap                          driver-provided RX buffer
//   kRegRxLen                                     length of received frame
//   kRegStatus                                    bit0 rx-ready, bit1 tx-done
#ifndef SRC_HW_NIC_H_
#define SRC_HW_NIC_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/hw/machine.h"

namespace hw {

class Nic : public Device {
 public:
  static constexpr uint32_t kRegTxAddr = 0x00;
  static constexpr uint32_t kRegTxLen = 0x04;
  static constexpr uint32_t kRegCommand = 0x08;
  static constexpr uint32_t kRegStatus = 0x0c;
  static constexpr uint32_t kRegRxAddr = 0x10;
  static constexpr uint32_t kRegRxCap = 0x14;
  static constexpr uint32_t kRegRxLen = 0x18;

  static constexpr uint32_t kCmdSend = 1;
  static constexpr uint32_t kCmdRxAck = 2;

  static constexpr uint32_t kStatusRxReady = 1u << 0;
  static constexpr uint32_t kStatusTxDone = 1u << 1;

  static constexpr uint32_t kMaxFrame = 1514;

  Nic(std::string name, int irq_line, Cycles wire_latency = 8000)
      : Device(std::move(name), irq_line), wire_latency_(wire_latency) {}

  uint32_t ReadReg(uint32_t offset) override;
  void WriteReg(uint32_t offset, uint32_t value) override;

  uint64_t frames_sent() const { return frames_sent_; }
  uint64_t frames_delivered() const { return frames_delivered_; }

 private:
  void Transmit();
  void TryDeliver();

  Cycles wire_latency_;
  uint32_t reg_tx_addr_ = 0;
  uint32_t reg_tx_len_ = 0;
  uint32_t reg_rx_addr_ = 0;
  uint32_t reg_rx_cap_ = 0;
  uint32_t reg_rx_len_ = 0;
  uint32_t reg_status_ = 0;
  std::deque<std::vector<uint8_t>> in_flight_;
  uint64_t frames_sent_ = 0;
  uint64_t frames_delivered_ = 0;
};

}  // namespace hw

#endif  // SRC_HW_NIC_H_
