// CPU cost model.
//
// The Cpu does not interpret instructions; it *accounts* for them. Kernel,
// server and stub code is instrumented with code regions (see code_layout.h)
// and explicit data accesses. The Cpu runs those through Pentium-like split
// I/D caches and a TLB and accumulates the counters the paper's Table 2
// reports: instructions, cycles, bus cycles (plus the miss breakdowns used in
// the paper's analysis of where the RPC overhead comes from).
//
// Defaults approximate a 133 MHz Pentium (P54C): 8 KB 2-way I-cache, 8 KB
// 2-way D-cache, 32-byte lines, 64-entry TLB, 64-bit bus.
#ifndef SRC_HW_CPU_H_
#define SRC_HW_CPU_H_

#include <cstdint>
#include <functional>
#include <utility>

#include "src/hw/cache.h"
#include "src/hw/code_layout.h"
#include "src/hw/tlb.h"
#include "src/hw/types.h"

namespace hw {

struct CpuConfig {
  uint64_t mhz = 133;
  // Cycles per instruction when everything hits; Pentium dual-issue code
  // averaged a bit above 1.
  double base_cpi = 1.15;
  uint32_t icache_miss_cycles = 12;   // line fill latency from DRAM
  uint32_t dcache_miss_cycles = 12;
  uint32_t writeback_cycles = 4;      // extra stall when evicting dirty line
  uint32_t tlb_walk_cycles = 9;       // hardware page walk latency
  uint32_t uncached_cycles = 20;      // device register access
  uint32_t bus_per_fill = 5;          // 4 transfers of 8 bytes + overhead
  uint32_t bus_per_writeback = 5;
  uint32_t bus_per_uncached = 3;
  CacheConfig icache;
  CacheConfig dcache;
  TlbConfig tlb;
};

struct CpuCounters {
  uint64_t instructions = 0;
  uint64_t cycles = 0;
  uint64_t bus_cycles = 0;
  uint64_t icache_misses = 0;
  uint64_t dcache_misses = 0;
  uint64_t tlb_misses = 0;
  uint64_t data_accesses = 0;
  uint64_t uncached_accesses = 0;

  CpuCounters& operator+=(const CpuCounters& rhs) {
    instructions += rhs.instructions;
    cycles += rhs.cycles;
    bus_cycles += rhs.bus_cycles;
    icache_misses += rhs.icache_misses;
    dcache_misses += rhs.dcache_misses;
    tlb_misses += rhs.tlb_misses;
    data_accesses += rhs.data_accesses;
    uncached_accesses += rhs.uncached_accesses;
    return *this;
  }

  CpuCounters operator-(const CpuCounters& rhs) const {
    CpuCounters d;
    d.instructions = instructions - rhs.instructions;
    d.cycles = cycles - rhs.cycles;
    d.bus_cycles = bus_cycles - rhs.bus_cycles;
    d.icache_misses = icache_misses - rhs.icache_misses;
    d.dcache_misses = dcache_misses - rhs.dcache_misses;
    d.tlb_misses = tlb_misses - rhs.tlb_misses;
    d.data_accesses = data_accesses - rhs.data_accesses;
    d.uncached_accesses = uncached_accesses - rhs.uncached_accesses;
    return d;
  }

  double cpi() const {
    return instructions == 0 ? 0.0 : static_cast<double>(cycles) / static_cast<double>(instructions);
  }
};

class Cpu {
 public:
  explicit Cpu(const CpuConfig& config = CpuConfig());

  // --- Execution ------------------------------------------------------------
  // Run all instructions of `region` (fetching its I-cache lines).
  void Execute(const CodeRegion& region) { ExecuteInstructions(region, region.instructions); }

  // Run the first `instructions` of `region`; used for data-dependent paths
  // such as copy loops, where the same few lines of code execute repeatedly.
  void ExecuteInstructions(const CodeRegion& region, uint64_t instructions);

  // --- Data access ----------------------------------------------------------
  // Cached access to physical memory (kernel structures, copies).
  void AccessData(PhysAddr paddr, uint32_t size, bool write);

  // Cached access through a virtual address: models the TLB lookup for the
  // page containing `vaddr` and, on a TLB miss, a page walk touching the PTE
  // at `pte_paddr`, then the D-cache access at `paddr`.
  void AccessTranslated(VirtAddr vaddr, PhysAddr paddr, PhysAddr pte_paddr, uint32_t size,
                        bool write);

  // Uncached device-register access.
  void AccessUncached(PhysAddr paddr, uint32_t size, bool write);

  // --- Control --------------------------------------------------------------
  void FlushTlb() { tlb_.Flush(); }
  void FlushCaches();

  // Advance time without executing (idle waiting for a device).
  void AdvanceCycles(Cycles n) { cycles_ += n; }

  // Extra stall cycles from a modelled microarchitectural event (e.g. the
  // fixed privilege-switch cost of a trap, pipeline drain on interrupts).
  void Stall(Cycles n) { cycles_ += n; }

  // Bus transactions that bypass the caches (trap frames, descriptor loads);
  // costs bus bandwidth but overlaps with the pipeline stall already charged.
  void BusTransactions(uint32_t n) { bus_cycles_ += n; }

  // --- Observation ----------------------------------------------------------
  CpuCounters counters() const;
  Cycles cycles() const { return cycles_; }
  const CpuConfig& config() const { return config_; }
  const CacheStats& icache_stats() const { return icache_.stats(); }
  const CacheStats& dcache_stats() const { return dcache_.stats(); }
  const TlbStats& tlb_stats() const { return tlb_.stats(); }

  uint64_t CyclesToNs(Cycles c) const { return c * 1000ull / config_.mhz; }
  Cycles NsToCycles(uint64_t ns) const { return ns * config_.mhz / 1000ull; }

  // Host-side observer called after each ExecuteInstructions with the
  // per-call deltas; used by the tracer's flat profiler. The observer must
  // not call back into the Cpu — it observes costs, it does not add any.
  using ExecuteObserver = std::function<void(const CodeRegion& region, uint64_t instructions,
                                             uint64_t cycles, uint64_t icache_misses)>;
  void set_execute_observer(ExecuteObserver observer) { execute_observer_ = std::move(observer); }

  // Host-side observer called on every AccessData with the access footprint
  // (address, size, direction); used by the concurrency checker's race
  // detector. Same contract as the execute observer: it observes, it never
  // adds cost or calls back into the Cpu.
  using AccessObserver = std::function<void(PhysAddr paddr, uint32_t size, bool write)>;
  void set_access_observer(AccessObserver observer) { access_observer_ = std::move(observer); }

 private:
  void ChargeFetch(PhysAddr addr);

  CpuConfig config_;
  Cache icache_;
  Cache dcache_;
  Tlb tlb_;

  uint64_t instructions_ = 0;
  Cycles cycles_ = 0;
  uint64_t bus_cycles_ = 0;
  uint64_t data_accesses_ = 0;
  uint64_t uncached_accesses_ = 0;
  double cycle_frac_ = 0.0;  // fractional-CPI accumulator

  ExecuteObserver execute_observer_;
  AccessObserver access_observer_;
};

}  // namespace hw

#endif  // SRC_HW_CPU_H_
