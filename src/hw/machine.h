// Machine: one simulated computer — CPU, physical memory, interrupt
// controller, devices, and the event queue that gives devices a notion of
// time (in CPU cycles).
#ifndef SRC_HW_MACHINE_H_
#define SRC_HW_MACHINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "src/hw/cpu.h"
#include "src/hw/interrupt_controller.h"
#include "src/hw/phys_mem.h"
#include "src/hw/types.h"

namespace hw {

class Machine;

// Base class for simulated devices. Each device gets a 4 KB register window
// in device space and (optionally) an interrupt line.
class Device {
 public:
  Device(std::string name, int irq_line) : name_(std::move(name)), irq_line_(irq_line) {}
  virtual ~Device() = default;

  virtual uint32_t ReadReg(uint32_t offset) = 0;
  virtual void WriteReg(uint32_t offset, uint32_t value) = 0;

  const std::string& name() const { return name_; }
  int irq_line() const { return irq_line_; }
  PhysAddr reg_base() const { return reg_base_; }

 protected:
  Machine* machine() const { return machine_; }
  void RaiseIrq();

 private:
  friend class Machine;
  std::string name_;
  int irq_line_;
  PhysAddr reg_base_ = 0;
  Machine* machine_ = nullptr;
};

struct MachineConfig {
  uint64_t ram_bytes = 64ull * 1024 * 1024;  // the paper's PowerPC box: 64 MB
  CpuConfig cpu;
};

class Machine {
 public:
  // Device register windows live here, far above RAM and code space.
  static constexpr PhysAddr kDeviceSpaceBase = 0x2'0000'0000ull;
  static constexpr uint64_t kDeviceWindow = 4096;

  explicit Machine(const MachineConfig& config = MachineConfig());

  Cpu& cpu() { return cpu_; }
  PhysMem& mem() { return mem_; }
  InterruptController& pic() { return pic_; }

  // --- Devices ---------------------------------------------------------------
  // Takes ownership; assigns the register window; returns the device.
  Device* AddDevice(std::unique_ptr<Device> device);
  Device* FindDevice(const std::string& name) const;
  const std::vector<std::unique_ptr<Device>>& devices() const { return devices_; }

  bool IsDeviceAddr(PhysAddr addr) const {
    return addr >= kDeviceSpaceBase && addr < kDeviceSpaceBase + devices_.size() * kDeviceWindow;
  }
  // Route a register access to the owning device (no cost charged here; the
  // caller models the uncached access on the CPU).
  uint32_t DeviceRead(PhysAddr addr);
  void DeviceWrite(PhysAddr addr, uint32_t value);

  // --- Events ----------------------------------------------------------------
  using EventFn = std::function<void()>;
  void ScheduleAt(Cycles when, EventFn fn);
  void ScheduleAfter(Cycles delta, EventFn fn) { ScheduleAt(cpu_.cycles() + delta, std::move(fn)); }

  // Run every event due at or before the current CPU cycle count.
  void PollEvents();
  // True if the event queue is non-empty; sets `when` to the earliest due time.
  bool NextEventCycle(Cycles* when) const;
  // Skip the CPU clock forward to the next event and run it. Returns false if
  // there are no pending events (the machine would idle forever).
  bool IdleAdvance();

 private:
  struct Event {
    Cycles when;
    uint64_t seq;  // tie-break to keep ordering deterministic
    EventFn fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  Cpu cpu_;
  PhysMem mem_;
  InterruptController pic_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  uint64_t event_seq_ = 0;
};

}  // namespace hw

#endif  // SRC_HW_MACHINE_H_
