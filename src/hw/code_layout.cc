#include "src/hw/code_layout.h"

#include <cstdio>

#include "src/base/log.h"

namespace hw {

CodeLayout& CodeLayout::Global() {
  static CodeLayout* layout = new CodeLayout();
  return *layout;
}

CodeRegion CodeLayout::Register(const std::string& name, uint32_t instructions,
                                uint32_t sparsity) {
  auto it = regions_.find(name);
  if (it != regions_.end()) {
    WPOS_CHECK(it->second.instructions == instructions)
        << "code region " << name << " re-registered with a different size";
    return it->second;
  }
  const std::string component = name.substr(0, name.find('.'));
  Component& comp = components_[component];
  if (comp.next == 0) {
    // Stagger image bases across cache sets: linkers do not align every
    // module's text to the same cache-set-0 boundary, and doing so here
    // would manufacture pathological conflicts.
    comp.next = next_image_base_ + (image_count_ * 1312) % 4096;
    ++image_count_;
    next_image_base_ += kImageAlign * 256;  // 16 MB of address space per image
  }
  CodeRegion region;
  region.base = comp.next;
  region.instructions = instructions;
  region.sparsity = sparsity;
  // Line-align each function start (32-byte lines) as linkers typically do.
  uint64_t bytes = (region.size_bytes() + 31) & ~31ull;
  comp.next += bytes;
  comp.bytes += bytes;
  regions_.emplace(name, region);
  names_by_base_.emplace(region.base, name);
  return region;
}

std::string CodeLayout::NameOf(PhysAddr base) const {
  auto it = names_by_base_.find(base);
  if (it != names_by_base_.end()) {
    return it->second;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "?0x%llx", static_cast<unsigned long long>(base));
  return buf;
}

uint64_t CodeLayout::ComponentTextBytes(const std::string& component) const {
  auto it = components_.find(component);
  return it == components_.end() ? 0 : it->second.bytes;
}

void CodeLayout::Clear() {
  regions_.clear();
  names_by_base_.clear();
  components_.clear();
  next_image_base_ = kImageSpaceBase;
  image_count_ = 0;
}

}  // namespace hw
