// DMA engine with a small number of channels. Transfers proceed without CPU
// cycles (the bus contention of real hardware is not modelled) and complete
// after a length-proportional delay with an interrupt.
#ifndef SRC_HW_DMA_H_
#define SRC_HW_DMA_H_

#include <cstdint>

#include "src/hw/machine.h"

namespace hw {

class DmaEngine : public Device {
 public:
  static constexpr uint32_t kNumChannels = 8;

  // Per-channel register block of 0x20 bytes, channel c at c * 0x20:
  static constexpr uint32_t kRegSrc = 0x00;
  static constexpr uint32_t kRegDst = 0x04;
  static constexpr uint32_t kRegLen = 0x08;
  static constexpr uint32_t kRegControl = 0x0c;  // write 1 to start
  static constexpr uint32_t kRegStatus = 0x10;   // bit0 busy, bit1 done

  static constexpr uint32_t kStatusBusy = 1u << 0;
  static constexpr uint32_t kStatusDone = 1u << 1;

  DmaEngine(std::string name, int irq_line, Cycles cycles_per_8_bytes = 1)
      : Device(std::move(name), irq_line), cycles_per_8_bytes_(cycles_per_8_bytes) {}

  uint32_t ReadReg(uint32_t offset) override;
  void WriteReg(uint32_t offset, uint32_t value) override;

  uint64_t transfers() const { return transfers_; }

 private:
  struct Channel {
    uint32_t src = 0;
    uint32_t dst = 0;
    uint32_t len = 0;
    uint32_t status = 0;
  };

  void Start(uint32_t channel);

  Cycles cycles_per_8_bytes_;
  Channel channels_[kNumChannels];
  uint64_t transfers_ = 0;
};

}  // namespace hw

#endif  // SRC_HW_DMA_H_
