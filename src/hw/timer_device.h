// Programmable interval timer raising periodic interrupts; the kernel's
// clock service runs off it.
#ifndef SRC_HW_TIMER_DEVICE_H_
#define SRC_HW_TIMER_DEVICE_H_

#include <cstdint>

#include "src/hw/machine.h"

namespace hw {

class TimerDevice : public Device {
 public:
  static constexpr uint32_t kRegPeriod = 0x00;  // cycles between interrupts
  static constexpr uint32_t kRegControl = 0x04;
  static constexpr uint32_t kRegTicks = 0x08;

  static constexpr uint32_t kCtlStart = 1;
  static constexpr uint32_t kCtlStop = 0;

  TimerDevice(std::string name, int irq_line) : Device(std::move(name), irq_line) {}

  uint32_t ReadReg(uint32_t offset) override;
  void WriteReg(uint32_t offset, uint32_t value) override;

  uint64_t ticks() const { return ticks_; }

 private:
  void Arm(uint64_t generation);

  uint32_t period_ = 0;
  bool running_ = false;
  uint64_t generation_ = 0;  // invalidates in-flight events on reprogram
  uint64_t ticks_ = 0;
};

}  // namespace hw

#endif  // SRC_HW_TIMER_DEVICE_H_
