// Simulated physical memory: real backing storage plus a frame allocator.
// Storage and cost are deliberately separate concerns — PhysMem moves bytes,
// the Cpu charges for them.
#ifndef SRC_HW_PHYS_MEM_H_
#define SRC_HW_PHYS_MEM_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "src/base/status.h"
#include "src/hw/types.h"

namespace hw {

class PhysMem {
 public:
  explicit PhysMem(uint64_t size_bytes);

  uint64_t size() const { return data_.size(); }
  uint64_t num_frames() const { return size() >> kPageShift; }
  uint64_t frames_allocated() const { return frames_allocated_; }
  uint64_t frames_free() const { return num_frames() - frames_allocated_; }

  // Frame allocation. Frames are identified by their base physical address.
  base::Result<PhysAddr> AllocFrame();
  // Allocate `count` physically contiguous frames (DMA buffers, framebuffer).
  base::Result<PhysAddr> AllocContiguous(uint64_t count);
  void FreeFrame(PhysAddr frame);
  bool IsAllocated(PhysAddr frame) const;

  // Raw storage access. Bounds-checked; out-of-range is a programming error
  // in the simulation and aborts.
  void Read(PhysAddr addr, void* out, uint64_t len) const;
  void Write(PhysAddr addr, const void* src, uint64_t len);
  void Fill(PhysAddr addr, uint8_t byte, uint64_t len);

  uint8_t ReadU8(PhysAddr addr) const;
  uint32_t ReadU32(PhysAddr addr) const;
  void WriteU8(PhysAddr addr, uint8_t v);
  void WriteU32(PhysAddr addr, uint32_t v);

 private:
  std::vector<uint8_t> data_;
  std::vector<bool> frame_used_;
  uint64_t next_hint_ = 0;
  uint64_t frames_allocated_ = 0;
};

}  // namespace hw

#endif  // SRC_HW_PHYS_MEM_H_
