// Fundamental simulated-hardware types.
#ifndef SRC_HW_TYPES_H_
#define SRC_HW_TYPES_H_

#include <cstdint>

namespace hw {

// Simulated processor cycles. All time in the system derives from this.
using Cycles = uint64_t;

// Simulated physical and virtual addresses. The simulation uses a 32-bit
// style address space (the machines of the paper were 32-bit), carried in
// 64-bit integers for convenience.
using PhysAddr = uint64_t;
using VirtAddr = uint64_t;

inline constexpr uint32_t kPageShift = 12;
inline constexpr uint64_t kPageSize = 1ull << kPageShift;
inline constexpr uint64_t kPageMask = kPageSize - 1;

inline constexpr uint64_t PageTrunc(uint64_t addr) { return addr & ~kPageMask; }
inline constexpr uint64_t PageRound(uint64_t addr) { return (addr + kPageMask) & ~kPageMask; }
inline constexpr uint64_t PageIndex(uint64_t addr) { return addr >> kPageShift; }

}  // namespace hw

#endif  // SRC_HW_TYPES_H_
