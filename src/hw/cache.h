// Set-associative cache model with LRU replacement and write-back policy.
// Used for both the instruction and the data cache. The model tracks only
// tags, not contents: it answers "hit or miss" and reports write-backs so the
// CPU model can account bus traffic.
#ifndef SRC_HW_CACHE_H_
#define SRC_HW_CACHE_H_

#include <cstdint>
#include <vector>

#include "src/hw/types.h"

namespace hw {

struct CacheConfig {
  uint32_t size_bytes = 8 * 1024;  // Pentium P54C: 8 KB split I/D
  uint32_t line_bytes = 32;
  uint32_t ways = 2;
};

struct CacheStats {
  uint64_t accesses = 0;
  uint64_t misses = 0;
  uint64_t writebacks = 0;
};

class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  struct AccessResult {
    bool hit = false;
    bool writeback = false;  // a dirty line was evicted
  };

  // Touch the line containing `addr`. `write` marks the line dirty on a data
  // cache; instruction caches pass write=false always.
  AccessResult Access(PhysAddr addr, bool write);

  // Invalidate everything, writing back dirty lines (counted in stats).
  void Flush();

  const CacheConfig& config() const { return config_; }
  const CacheStats& stats() const { return stats_; }
  uint32_t num_lines() const { return num_sets_ * config_.ways; }

 private:
  struct Line {
    uint64_t tag = 0;
    bool valid = false;
    bool dirty = false;
    uint64_t lru = 0;  // last-access stamp
  };

  CacheConfig config_;
  uint32_t num_sets_;
  uint32_t line_shift_;
  std::vector<Line> lines_;  // num_sets_ * ways, row-major by set
  uint64_t tick_ = 0;
  CacheStats stats_;
};

}  // namespace hw

#endif  // SRC_HW_CACHE_H_
