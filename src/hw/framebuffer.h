// Simulated framebuffer. VRAM is carved out of top-of-RAM contiguous frames
// (as on machines that map the adapter aperture into the physical address
// space), so user-level code can have the aperture mapped into its address
// space and "directly drive the screen buffer" the way the paper's graphics
// workloads did.
#ifndef SRC_HW_FRAMEBUFFER_H_
#define SRC_HW_FRAMEBUFFER_H_

#include <cstdint>

#include "src/hw/machine.h"

namespace hw {

class Framebuffer : public Device {
 public:
  static constexpr uint32_t kRegWidth = 0x00;
  static constexpr uint32_t kRegHeight = 0x04;
  static constexpr uint32_t kRegVramLo = 0x08;   // physical base of the aperture
  static constexpr uint32_t kRegVsyncCount = 0x0c;

  // 8 bits per pixel. Allocates the aperture from machine RAM; call after the
  // machine exists but before the kernel claims memory.
  Framebuffer(std::string name, Machine* machine, uint32_t width, uint32_t height);

  uint32_t ReadReg(uint32_t offset) override;
  void WriteReg(uint32_t offset, uint32_t value) override;

  PhysAddr vram_base() const { return vram_base_; }
  uint64_t vram_size() const { return static_cast<uint64_t>(width_) * height_; }
  uint32_t width() const { return width_; }
  uint32_t height() const { return height_; }

 private:
  uint32_t width_;
  uint32_t height_;
  PhysAddr vram_base_ = 0;
  uint32_t vsync_count_ = 0;
};

}  // namespace hw

#endif  // SRC_HW_FRAMEBUFFER_H_
