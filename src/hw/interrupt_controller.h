// Interrupt controller: 16 lines with enable and pending state, modelled on
// a PC-style PIC. Devices raise lines; the kernel polls, dispatches and acks
// at its interrupt points.
#ifndef SRC_HW_INTERRUPT_CONTROLLER_H_
#define SRC_HW_INTERRUPT_CONTROLLER_H_

#include <cstdint>

namespace hw {

class InterruptController {
 public:
  static constexpr uint32_t kNumLines = 16;

  void Raise(uint32_t line);
  void Ack(uint32_t line);
  void Enable(uint32_t line, bool enabled);

  bool IsPending(uint32_t line) const;
  // Lowest pending-and-enabled line, or -1 if none.
  int NextPending() const;
  bool AnyPending() const { return NextPending() >= 0; }

  uint64_t raise_count(uint32_t line) const { return raise_counts_[line]; }

 private:
  uint16_t pending_ = 0;
  uint16_t enabled_ = 0xffff;
  uint64_t raise_counts_[kNumLines] = {};
};

}  // namespace hw

#endif  // SRC_HW_INTERRUPT_CONTROLLER_H_
