#include "src/hw/framebuffer.h"

#include "src/base/log.h"
#include "src/hw/types.h"

namespace hw {

Framebuffer::Framebuffer(std::string name, Machine* machine, uint32_t width, uint32_t height)
    : Device(std::move(name), /*irq_line=*/-1), width_(width), height_(height) {
  const uint64_t frames = PageRound(vram_size()) >> kPageShift;
  auto base = machine->mem().AllocContiguous(frames);
  WPOS_CHECK(base.ok()) << "cannot allocate VRAM aperture";
  vram_base_ = *base;
}

uint32_t Framebuffer::ReadReg(uint32_t offset) {
  switch (offset) {
    case kRegWidth:
      return width_;
    case kRegHeight:
      return height_;
    case kRegVramLo:
      return static_cast<uint32_t>(vram_base_);
    case kRegVsyncCount:
      return vsync_count_;
    default:
      return 0;
  }
}

void Framebuffer::WriteReg(uint32_t offset, uint32_t value) {
  if (offset == kRegVsyncCount) {
    ++vsync_count_;  // a write simulates waiting for the next vsync
  }
}

}  // namespace hw
