#include "src/hw/interrupt_controller.h"

#include "src/base/log.h"

namespace hw {

void InterruptController::Raise(uint32_t line) {
  WPOS_CHECK(line < kNumLines);
  pending_ |= static_cast<uint16_t>(1u << line);
  ++raise_counts_[line];
}

void InterruptController::Ack(uint32_t line) {
  WPOS_CHECK(line < kNumLines);
  pending_ &= static_cast<uint16_t>(~(1u << line));
}

void InterruptController::Enable(uint32_t line, bool enabled) {
  WPOS_CHECK(line < kNumLines);
  if (enabled) {
    enabled_ |= static_cast<uint16_t>(1u << line);
  } else {
    enabled_ &= static_cast<uint16_t>(~(1u << line));
  }
}

bool InterruptController::IsPending(uint32_t line) const {
  return (pending_ & enabled_ & (1u << line)) != 0;
}

int InterruptController::NextPending() const {
  const uint16_t active = pending_ & enabled_;
  for (uint32_t i = 0; i < kNumLines; ++i) {
    if ((active & (1u << i)) != 0) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace hw
