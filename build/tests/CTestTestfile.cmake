# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/hw_tests[1]_include.cmake")
include("/root/repo/build/tests/mk_tests[1]_include.cmake")
include("/root/repo/build/tests/mks_tests[1]_include.cmake")
include("/root/repo/build/tests/drv_tests[1]_include.cmake")
include("/root/repo/build/tests/svc_tests[1]_include.cmake")
include("/root/repo/build/tests/pers_tests[1]_include.cmake")
include("/root/repo/build/tests/baseline_tests[1]_include.cmake")
include("/root/repo/build/tests/props_tests[1]_include.cmake")
