file(REMOVE_RECURSE
  "CMakeFiles/pers_tests.dir/pers/os2_test.cc.o"
  "CMakeFiles/pers_tests.dir/pers/os2_test.cc.o.d"
  "CMakeFiles/pers_tests.dir/pers/unix_mvm_test.cc.o"
  "CMakeFiles/pers_tests.dir/pers/unix_mvm_test.cc.o.d"
  "CMakeFiles/pers_tests.dir/pers/vm86_test.cc.o"
  "CMakeFiles/pers_tests.dir/pers/vm86_test.cc.o.d"
  "pers_tests"
  "pers_tests.pdb"
  "pers_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pers_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
