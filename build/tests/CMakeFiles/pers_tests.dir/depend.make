# Empty dependencies file for pers_tests.
# This may be replaced when dependencies are built.
