# Empty compiler generated dependencies file for props_tests.
# This may be replaced when dependencies are built.
