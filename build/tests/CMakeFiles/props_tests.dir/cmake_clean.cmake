file(REMOVE_RECURSE
  "CMakeFiles/props_tests.dir/props/kernel_props_test.cc.o"
  "CMakeFiles/props_tests.dir/props/kernel_props_test.cc.o.d"
  "CMakeFiles/props_tests.dir/props/pfs_contract_test.cc.o"
  "CMakeFiles/props_tests.dir/props/pfs_contract_test.cc.o.d"
  "props_tests"
  "props_tests.pdb"
  "props_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/props_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
