# Empty compiler generated dependencies file for mk_tests.
# This may be replaced when dependencies are built.
