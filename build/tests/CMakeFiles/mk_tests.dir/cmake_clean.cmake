file(REMOVE_RECURSE
  "CMakeFiles/mk_tests.dir/mk/context_test.cc.o"
  "CMakeFiles/mk_tests.dir/mk/context_test.cc.o.d"
  "CMakeFiles/mk_tests.dir/mk/ipc_test.cc.o"
  "CMakeFiles/mk_tests.dir/mk/ipc_test.cc.o.d"
  "CMakeFiles/mk_tests.dir/mk/port_set_test.cc.o"
  "CMakeFiles/mk_tests.dir/mk/port_set_test.cc.o.d"
  "CMakeFiles/mk_tests.dir/mk/port_test.cc.o"
  "CMakeFiles/mk_tests.dir/mk/port_test.cc.o.d"
  "CMakeFiles/mk_tests.dir/mk/reply_and_receive_test.cc.o"
  "CMakeFiles/mk_tests.dir/mk/reply_and_receive_test.cc.o.d"
  "CMakeFiles/mk_tests.dir/mk/rpc_test.cc.o"
  "CMakeFiles/mk_tests.dir/mk/rpc_test.cc.o.d"
  "CMakeFiles/mk_tests.dir/mk/sched_test.cc.o"
  "CMakeFiles/mk_tests.dir/mk/sched_test.cc.o.d"
  "CMakeFiles/mk_tests.dir/mk/server_loop_test.cc.o"
  "CMakeFiles/mk_tests.dir/mk/server_loop_test.cc.o.d"
  "CMakeFiles/mk_tests.dir/mk/sync_test.cc.o"
  "CMakeFiles/mk_tests.dir/mk/sync_test.cc.o.d"
  "CMakeFiles/mk_tests.dir/mk/vm_test.cc.o"
  "CMakeFiles/mk_tests.dir/mk/vm_test.cc.o.d"
  "mk_tests"
  "mk_tests.pdb"
  "mk_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mk_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
