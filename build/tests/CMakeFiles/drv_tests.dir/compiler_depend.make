# Empty compiler generated dependencies file for drv_tests.
# This may be replaced when dependencies are built.
