file(REMOVE_RECURSE
  "CMakeFiles/drv_tests.dir/drv/drivers_test.cc.o"
  "CMakeFiles/drv_tests.dir/drv/drivers_test.cc.o.d"
  "drv_tests"
  "drv_tests.pdb"
  "drv_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drv_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
