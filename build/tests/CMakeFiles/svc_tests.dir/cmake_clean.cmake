file(REMOVE_RECURSE
  "CMakeFiles/svc_tests.dir/svc/file_server_test.cc.o"
  "CMakeFiles/svc_tests.dir/svc/file_server_test.cc.o.d"
  "CMakeFiles/svc_tests.dir/svc/fs_test.cc.o"
  "CMakeFiles/svc_tests.dir/svc/fs_test.cc.o.d"
  "CMakeFiles/svc_tests.dir/svc/net_test.cc.o"
  "CMakeFiles/svc_tests.dir/svc/net_test.cc.o.d"
  "svc_tests"
  "svc_tests.pdb"
  "svc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
