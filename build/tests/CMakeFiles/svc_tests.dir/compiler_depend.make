# Empty compiler generated dependencies file for svc_tests.
# This may be replaced when dependencies are built.
