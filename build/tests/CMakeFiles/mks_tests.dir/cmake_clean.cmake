file(REMOVE_RECURSE
  "CMakeFiles/mks_tests.dir/mks/loader_test.cc.o"
  "CMakeFiles/mks_tests.dir/mks/loader_test.cc.o.d"
  "CMakeFiles/mks_tests.dir/mks/naming_test.cc.o"
  "CMakeFiles/mks_tests.dir/mks/naming_test.cc.o.d"
  "CMakeFiles/mks_tests.dir/mks/pager_runtime_test.cc.o"
  "CMakeFiles/mks_tests.dir/mks/pager_runtime_test.cc.o.d"
  "mks_tests"
  "mks_tests.pdb"
  "mks_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mks_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
