
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mks/loader_test.cc" "tests/CMakeFiles/mks_tests.dir/mks/loader_test.cc.o" "gcc" "tests/CMakeFiles/mks_tests.dir/mks/loader_test.cc.o.d"
  "/root/repo/tests/mks/naming_test.cc" "tests/CMakeFiles/mks_tests.dir/mks/naming_test.cc.o" "gcc" "tests/CMakeFiles/mks_tests.dir/mks/naming_test.cc.o.d"
  "/root/repo/tests/mks/pager_runtime_test.cc" "tests/CMakeFiles/mks_tests.dir/mks/pager_runtime_test.cc.o" "gcc" "tests/CMakeFiles/mks_tests.dir/mks/pager_runtime_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pers/CMakeFiles/wpos_pers.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/wpos_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/svc/CMakeFiles/wpos_svc.dir/DependInfo.cmake"
  "/root/repo/build/src/drv/CMakeFiles/wpos_drv.dir/DependInfo.cmake"
  "/root/repo/build/src/mks/CMakeFiles/wpos_mks.dir/DependInfo.cmake"
  "/root/repo/build/src/mk/CMakeFiles/wpos_mk.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/wpos_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/wpos_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
