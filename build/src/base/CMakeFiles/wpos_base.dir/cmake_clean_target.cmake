file(REMOVE_RECURSE
  "libwpos_base.a"
)
