file(REMOVE_RECURSE
  "CMakeFiles/wpos_base.dir/log.cc.o"
  "CMakeFiles/wpos_base.dir/log.cc.o.d"
  "CMakeFiles/wpos_base.dir/status.cc.o"
  "CMakeFiles/wpos_base.dir/status.cc.o.d"
  "libwpos_base.a"
  "libwpos_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wpos_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
