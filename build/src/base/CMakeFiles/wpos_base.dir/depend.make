# Empty dependencies file for wpos_base.
# This may be replaced when dependencies are built.
