
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mks/loader/loader.cc" "src/mks/CMakeFiles/wpos_mks.dir/loader/loader.cc.o" "gcc" "src/mks/CMakeFiles/wpos_mks.dir/loader/loader.cc.o.d"
  "/root/repo/src/mks/loader/module.cc" "src/mks/CMakeFiles/wpos_mks.dir/loader/module.cc.o" "gcc" "src/mks/CMakeFiles/wpos_mks.dir/loader/module.cc.o.d"
  "/root/repo/src/mks/naming/lite_name_server.cc" "src/mks/CMakeFiles/wpos_mks.dir/naming/lite_name_server.cc.o" "gcc" "src/mks/CMakeFiles/wpos_mks.dir/naming/lite_name_server.cc.o.d"
  "/root/repo/src/mks/naming/name_server.cc" "src/mks/CMakeFiles/wpos_mks.dir/naming/name_server.cc.o" "gcc" "src/mks/CMakeFiles/wpos_mks.dir/naming/name_server.cc.o.d"
  "/root/repo/src/mks/pager/default_pager.cc" "src/mks/CMakeFiles/wpos_mks.dir/pager/default_pager.cc.o" "gcc" "src/mks/CMakeFiles/wpos_mks.dir/pager/default_pager.cc.o.d"
  "/root/repo/src/mks/runtime/runtime.cc" "src/mks/CMakeFiles/wpos_mks.dir/runtime/runtime.cc.o" "gcc" "src/mks/CMakeFiles/wpos_mks.dir/runtime/runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mk/CMakeFiles/wpos_mk.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/wpos_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/wpos_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
