# Empty compiler generated dependencies file for wpos_mks.
# This may be replaced when dependencies are built.
