file(REMOVE_RECURSE
  "CMakeFiles/wpos_mks.dir/loader/loader.cc.o"
  "CMakeFiles/wpos_mks.dir/loader/loader.cc.o.d"
  "CMakeFiles/wpos_mks.dir/loader/module.cc.o"
  "CMakeFiles/wpos_mks.dir/loader/module.cc.o.d"
  "CMakeFiles/wpos_mks.dir/naming/lite_name_server.cc.o"
  "CMakeFiles/wpos_mks.dir/naming/lite_name_server.cc.o.d"
  "CMakeFiles/wpos_mks.dir/naming/name_server.cc.o"
  "CMakeFiles/wpos_mks.dir/naming/name_server.cc.o.d"
  "CMakeFiles/wpos_mks.dir/pager/default_pager.cc.o"
  "CMakeFiles/wpos_mks.dir/pager/default_pager.cc.o.d"
  "CMakeFiles/wpos_mks.dir/runtime/runtime.cc.o"
  "CMakeFiles/wpos_mks.dir/runtime/runtime.cc.o.d"
  "libwpos_mks.a"
  "libwpos_mks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wpos_mks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
