file(REMOVE_RECURSE
  "libwpos_mks.a"
)
