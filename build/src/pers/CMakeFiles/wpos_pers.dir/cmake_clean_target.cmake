file(REMOVE_RECURSE
  "libwpos_pers.a"
)
