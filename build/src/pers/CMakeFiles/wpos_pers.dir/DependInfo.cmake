
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pers/mvm/mvm.cc" "src/pers/CMakeFiles/wpos_pers.dir/mvm/mvm.cc.o" "gcc" "src/pers/CMakeFiles/wpos_pers.dir/mvm/mvm.cc.o.d"
  "/root/repo/src/pers/mvm/vm86.cc" "src/pers/CMakeFiles/wpos_pers.dir/mvm/vm86.cc.o" "gcc" "src/pers/CMakeFiles/wpos_pers.dir/mvm/vm86.cc.o.d"
  "/root/repo/src/pers/os2/os2.cc" "src/pers/CMakeFiles/wpos_pers.dir/os2/os2.cc.o" "gcc" "src/pers/CMakeFiles/wpos_pers.dir/os2/os2.cc.o.d"
  "/root/repo/src/pers/os2/os2_memory.cc" "src/pers/CMakeFiles/wpos_pers.dir/os2/os2_memory.cc.o" "gcc" "src/pers/CMakeFiles/wpos_pers.dir/os2/os2_memory.cc.o.d"
  "/root/repo/src/pers/os2/pm.cc" "src/pers/CMakeFiles/wpos_pers.dir/os2/pm.cc.o" "gcc" "src/pers/CMakeFiles/wpos_pers.dir/os2/pm.cc.o.d"
  "/root/repo/src/pers/unixp/unix.cc" "src/pers/CMakeFiles/wpos_pers.dir/unixp/unix.cc.o" "gcc" "src/pers/CMakeFiles/wpos_pers.dir/unixp/unix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/svc/CMakeFiles/wpos_svc.dir/DependInfo.cmake"
  "/root/repo/build/src/drv/CMakeFiles/wpos_drv.dir/DependInfo.cmake"
  "/root/repo/build/src/mks/CMakeFiles/wpos_mks.dir/DependInfo.cmake"
  "/root/repo/build/src/mk/CMakeFiles/wpos_mk.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/wpos_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/wpos_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
