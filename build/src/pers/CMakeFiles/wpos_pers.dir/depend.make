# Empty dependencies file for wpos_pers.
# This may be replaced when dependencies are built.
