file(REMOVE_RECURSE
  "CMakeFiles/wpos_pers.dir/mvm/mvm.cc.o"
  "CMakeFiles/wpos_pers.dir/mvm/mvm.cc.o.d"
  "CMakeFiles/wpos_pers.dir/mvm/vm86.cc.o"
  "CMakeFiles/wpos_pers.dir/mvm/vm86.cc.o.d"
  "CMakeFiles/wpos_pers.dir/os2/os2.cc.o"
  "CMakeFiles/wpos_pers.dir/os2/os2.cc.o.d"
  "CMakeFiles/wpos_pers.dir/os2/os2_memory.cc.o"
  "CMakeFiles/wpos_pers.dir/os2/os2_memory.cc.o.d"
  "CMakeFiles/wpos_pers.dir/os2/pm.cc.o"
  "CMakeFiles/wpos_pers.dir/os2/pm.cc.o.d"
  "CMakeFiles/wpos_pers.dir/unixp/unix.cc.o"
  "CMakeFiles/wpos_pers.dir/unixp/unix.cc.o.d"
  "libwpos_pers.a"
  "libwpos_pers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wpos_pers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
