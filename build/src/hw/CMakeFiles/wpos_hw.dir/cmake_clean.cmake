file(REMOVE_RECURSE
  "CMakeFiles/wpos_hw.dir/cache.cc.o"
  "CMakeFiles/wpos_hw.dir/cache.cc.o.d"
  "CMakeFiles/wpos_hw.dir/code_layout.cc.o"
  "CMakeFiles/wpos_hw.dir/code_layout.cc.o.d"
  "CMakeFiles/wpos_hw.dir/cpu.cc.o"
  "CMakeFiles/wpos_hw.dir/cpu.cc.o.d"
  "CMakeFiles/wpos_hw.dir/disk.cc.o"
  "CMakeFiles/wpos_hw.dir/disk.cc.o.d"
  "CMakeFiles/wpos_hw.dir/dma.cc.o"
  "CMakeFiles/wpos_hw.dir/dma.cc.o.d"
  "CMakeFiles/wpos_hw.dir/framebuffer.cc.o"
  "CMakeFiles/wpos_hw.dir/framebuffer.cc.o.d"
  "CMakeFiles/wpos_hw.dir/interrupt_controller.cc.o"
  "CMakeFiles/wpos_hw.dir/interrupt_controller.cc.o.d"
  "CMakeFiles/wpos_hw.dir/machine.cc.o"
  "CMakeFiles/wpos_hw.dir/machine.cc.o.d"
  "CMakeFiles/wpos_hw.dir/nic.cc.o"
  "CMakeFiles/wpos_hw.dir/nic.cc.o.d"
  "CMakeFiles/wpos_hw.dir/phys_mem.cc.o"
  "CMakeFiles/wpos_hw.dir/phys_mem.cc.o.d"
  "CMakeFiles/wpos_hw.dir/timer_device.cc.o"
  "CMakeFiles/wpos_hw.dir/timer_device.cc.o.d"
  "CMakeFiles/wpos_hw.dir/tlb.cc.o"
  "CMakeFiles/wpos_hw.dir/tlb.cc.o.d"
  "libwpos_hw.a"
  "libwpos_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wpos_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
