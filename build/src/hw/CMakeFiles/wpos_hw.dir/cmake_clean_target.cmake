file(REMOVE_RECURSE
  "libwpos_hw.a"
)
