# Empty compiler generated dependencies file for wpos_hw.
# This may be replaced when dependencies are built.
