
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/cache.cc" "src/hw/CMakeFiles/wpos_hw.dir/cache.cc.o" "gcc" "src/hw/CMakeFiles/wpos_hw.dir/cache.cc.o.d"
  "/root/repo/src/hw/code_layout.cc" "src/hw/CMakeFiles/wpos_hw.dir/code_layout.cc.o" "gcc" "src/hw/CMakeFiles/wpos_hw.dir/code_layout.cc.o.d"
  "/root/repo/src/hw/cpu.cc" "src/hw/CMakeFiles/wpos_hw.dir/cpu.cc.o" "gcc" "src/hw/CMakeFiles/wpos_hw.dir/cpu.cc.o.d"
  "/root/repo/src/hw/disk.cc" "src/hw/CMakeFiles/wpos_hw.dir/disk.cc.o" "gcc" "src/hw/CMakeFiles/wpos_hw.dir/disk.cc.o.d"
  "/root/repo/src/hw/dma.cc" "src/hw/CMakeFiles/wpos_hw.dir/dma.cc.o" "gcc" "src/hw/CMakeFiles/wpos_hw.dir/dma.cc.o.d"
  "/root/repo/src/hw/framebuffer.cc" "src/hw/CMakeFiles/wpos_hw.dir/framebuffer.cc.o" "gcc" "src/hw/CMakeFiles/wpos_hw.dir/framebuffer.cc.o.d"
  "/root/repo/src/hw/interrupt_controller.cc" "src/hw/CMakeFiles/wpos_hw.dir/interrupt_controller.cc.o" "gcc" "src/hw/CMakeFiles/wpos_hw.dir/interrupt_controller.cc.o.d"
  "/root/repo/src/hw/machine.cc" "src/hw/CMakeFiles/wpos_hw.dir/machine.cc.o" "gcc" "src/hw/CMakeFiles/wpos_hw.dir/machine.cc.o.d"
  "/root/repo/src/hw/nic.cc" "src/hw/CMakeFiles/wpos_hw.dir/nic.cc.o" "gcc" "src/hw/CMakeFiles/wpos_hw.dir/nic.cc.o.d"
  "/root/repo/src/hw/phys_mem.cc" "src/hw/CMakeFiles/wpos_hw.dir/phys_mem.cc.o" "gcc" "src/hw/CMakeFiles/wpos_hw.dir/phys_mem.cc.o.d"
  "/root/repo/src/hw/timer_device.cc" "src/hw/CMakeFiles/wpos_hw.dir/timer_device.cc.o" "gcc" "src/hw/CMakeFiles/wpos_hw.dir/timer_device.cc.o.d"
  "/root/repo/src/hw/tlb.cc" "src/hw/CMakeFiles/wpos_hw.dir/tlb.cc.o" "gcc" "src/hw/CMakeFiles/wpos_hw.dir/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/wpos_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
