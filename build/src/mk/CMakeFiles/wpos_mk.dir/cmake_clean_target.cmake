file(REMOVE_RECURSE
  "libwpos_mk.a"
)
