file(REMOVE_RECURSE
  "CMakeFiles/wpos_mk.dir/context.cc.o"
  "CMakeFiles/wpos_mk.dir/context.cc.o.d"
  "CMakeFiles/wpos_mk.dir/host.cc.o"
  "CMakeFiles/wpos_mk.dir/host.cc.o.d"
  "CMakeFiles/wpos_mk.dir/kernel.cc.o"
  "CMakeFiles/wpos_mk.dir/kernel.cc.o.d"
  "CMakeFiles/wpos_mk.dir/kernel_ipc.cc.o"
  "CMakeFiles/wpos_mk.dir/kernel_ipc.cc.o.d"
  "CMakeFiles/wpos_mk.dir/kernel_rpc.cc.o"
  "CMakeFiles/wpos_mk.dir/kernel_rpc.cc.o.d"
  "CMakeFiles/wpos_mk.dir/kernel_sync.cc.o"
  "CMakeFiles/wpos_mk.dir/kernel_sync.cc.o.d"
  "CMakeFiles/wpos_mk.dir/kernel_vm.cc.o"
  "CMakeFiles/wpos_mk.dir/kernel_vm.cc.o.d"
  "CMakeFiles/wpos_mk.dir/port.cc.o"
  "CMakeFiles/wpos_mk.dir/port.cc.o.d"
  "CMakeFiles/wpos_mk.dir/scheduler.cc.o"
  "CMakeFiles/wpos_mk.dir/scheduler.cc.o.d"
  "CMakeFiles/wpos_mk.dir/task.cc.o"
  "CMakeFiles/wpos_mk.dir/task.cc.o.d"
  "CMakeFiles/wpos_mk.dir/thread.cc.o"
  "CMakeFiles/wpos_mk.dir/thread.cc.o.d"
  "CMakeFiles/wpos_mk.dir/vm_map.cc.o"
  "CMakeFiles/wpos_mk.dir/vm_map.cc.o.d"
  "CMakeFiles/wpos_mk.dir/vm_object.cc.o"
  "CMakeFiles/wpos_mk.dir/vm_object.cc.o.d"
  "libwpos_mk.a"
  "libwpos_mk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wpos_mk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
