# Empty compiler generated dependencies file for wpos_mk.
# This may be replaced when dependencies are built.
