
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mk/context.cc" "src/mk/CMakeFiles/wpos_mk.dir/context.cc.o" "gcc" "src/mk/CMakeFiles/wpos_mk.dir/context.cc.o.d"
  "/root/repo/src/mk/host.cc" "src/mk/CMakeFiles/wpos_mk.dir/host.cc.o" "gcc" "src/mk/CMakeFiles/wpos_mk.dir/host.cc.o.d"
  "/root/repo/src/mk/kernel.cc" "src/mk/CMakeFiles/wpos_mk.dir/kernel.cc.o" "gcc" "src/mk/CMakeFiles/wpos_mk.dir/kernel.cc.o.d"
  "/root/repo/src/mk/kernel_ipc.cc" "src/mk/CMakeFiles/wpos_mk.dir/kernel_ipc.cc.o" "gcc" "src/mk/CMakeFiles/wpos_mk.dir/kernel_ipc.cc.o.d"
  "/root/repo/src/mk/kernel_rpc.cc" "src/mk/CMakeFiles/wpos_mk.dir/kernel_rpc.cc.o" "gcc" "src/mk/CMakeFiles/wpos_mk.dir/kernel_rpc.cc.o.d"
  "/root/repo/src/mk/kernel_sync.cc" "src/mk/CMakeFiles/wpos_mk.dir/kernel_sync.cc.o" "gcc" "src/mk/CMakeFiles/wpos_mk.dir/kernel_sync.cc.o.d"
  "/root/repo/src/mk/kernel_vm.cc" "src/mk/CMakeFiles/wpos_mk.dir/kernel_vm.cc.o" "gcc" "src/mk/CMakeFiles/wpos_mk.dir/kernel_vm.cc.o.d"
  "/root/repo/src/mk/port.cc" "src/mk/CMakeFiles/wpos_mk.dir/port.cc.o" "gcc" "src/mk/CMakeFiles/wpos_mk.dir/port.cc.o.d"
  "/root/repo/src/mk/scheduler.cc" "src/mk/CMakeFiles/wpos_mk.dir/scheduler.cc.o" "gcc" "src/mk/CMakeFiles/wpos_mk.dir/scheduler.cc.o.d"
  "/root/repo/src/mk/task.cc" "src/mk/CMakeFiles/wpos_mk.dir/task.cc.o" "gcc" "src/mk/CMakeFiles/wpos_mk.dir/task.cc.o.d"
  "/root/repo/src/mk/thread.cc" "src/mk/CMakeFiles/wpos_mk.dir/thread.cc.o" "gcc" "src/mk/CMakeFiles/wpos_mk.dir/thread.cc.o.d"
  "/root/repo/src/mk/vm_map.cc" "src/mk/CMakeFiles/wpos_mk.dir/vm_map.cc.o" "gcc" "src/mk/CMakeFiles/wpos_mk.dir/vm_map.cc.o.d"
  "/root/repo/src/mk/vm_object.cc" "src/mk/CMakeFiles/wpos_mk.dir/vm_object.cc.o" "gcc" "src/mk/CMakeFiles/wpos_mk.dir/vm_object.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/wpos_base.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/wpos_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
