file(REMOVE_RECURSE
  "CMakeFiles/wpos_svc.dir/fs/block_cache.cc.o"
  "CMakeFiles/wpos_svc.dir/fs/block_cache.cc.o.d"
  "CMakeFiles/wpos_svc.dir/fs/fat.cc.o"
  "CMakeFiles/wpos_svc.dir/fs/fat.cc.o.d"
  "CMakeFiles/wpos_svc.dir/fs/file_server.cc.o"
  "CMakeFiles/wpos_svc.dir/fs/file_server.cc.o.d"
  "CMakeFiles/wpos_svc.dir/fs/inode_fs.cc.o"
  "CMakeFiles/wpos_svc.dir/fs/inode_fs.cc.o.d"
  "CMakeFiles/wpos_svc.dir/net/net_server.cc.o"
  "CMakeFiles/wpos_svc.dir/net/net_server.cc.o.d"
  "CMakeFiles/wpos_svc.dir/net/stack.cc.o"
  "CMakeFiles/wpos_svc.dir/net/stack.cc.o.d"
  "CMakeFiles/wpos_svc.dir/registry.cc.o"
  "CMakeFiles/wpos_svc.dir/registry.cc.o.d"
  "libwpos_svc.a"
  "libwpos_svc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wpos_svc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
