# Empty compiler generated dependencies file for wpos_svc.
# This may be replaced when dependencies are built.
