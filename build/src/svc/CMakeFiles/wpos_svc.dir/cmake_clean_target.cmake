file(REMOVE_RECURSE
  "libwpos_svc.a"
)
