
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/svc/fs/block_cache.cc" "src/svc/CMakeFiles/wpos_svc.dir/fs/block_cache.cc.o" "gcc" "src/svc/CMakeFiles/wpos_svc.dir/fs/block_cache.cc.o.d"
  "/root/repo/src/svc/fs/fat.cc" "src/svc/CMakeFiles/wpos_svc.dir/fs/fat.cc.o" "gcc" "src/svc/CMakeFiles/wpos_svc.dir/fs/fat.cc.o.d"
  "/root/repo/src/svc/fs/file_server.cc" "src/svc/CMakeFiles/wpos_svc.dir/fs/file_server.cc.o" "gcc" "src/svc/CMakeFiles/wpos_svc.dir/fs/file_server.cc.o.d"
  "/root/repo/src/svc/fs/inode_fs.cc" "src/svc/CMakeFiles/wpos_svc.dir/fs/inode_fs.cc.o" "gcc" "src/svc/CMakeFiles/wpos_svc.dir/fs/inode_fs.cc.o.d"
  "/root/repo/src/svc/net/net_server.cc" "src/svc/CMakeFiles/wpos_svc.dir/net/net_server.cc.o" "gcc" "src/svc/CMakeFiles/wpos_svc.dir/net/net_server.cc.o.d"
  "/root/repo/src/svc/net/stack.cc" "src/svc/CMakeFiles/wpos_svc.dir/net/stack.cc.o" "gcc" "src/svc/CMakeFiles/wpos_svc.dir/net/stack.cc.o.d"
  "/root/repo/src/svc/registry.cc" "src/svc/CMakeFiles/wpos_svc.dir/registry.cc.o" "gcc" "src/svc/CMakeFiles/wpos_svc.dir/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/drv/CMakeFiles/wpos_drv.dir/DependInfo.cmake"
  "/root/repo/build/src/mks/CMakeFiles/wpos_mks.dir/DependInfo.cmake"
  "/root/repo/build/src/mk/CMakeFiles/wpos_mk.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/wpos_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/wpos_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
