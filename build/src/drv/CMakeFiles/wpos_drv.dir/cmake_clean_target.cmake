file(REMOVE_RECURSE
  "libwpos_drv.a"
)
