
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/drv/disk_driver.cc" "src/drv/CMakeFiles/wpos_drv.dir/disk_driver.cc.o" "gcc" "src/drv/CMakeFiles/wpos_drv.dir/disk_driver.cc.o.d"
  "/root/repo/src/drv/kernel_nic.cc" "src/drv/CMakeFiles/wpos_drv.dir/kernel_nic.cc.o" "gcc" "src/drv/CMakeFiles/wpos_drv.dir/kernel_nic.cc.o.d"
  "/root/repo/src/drv/nic_driver.cc" "src/drv/CMakeFiles/wpos_drv.dir/nic_driver.cc.o" "gcc" "src/drv/CMakeFiles/wpos_drv.dir/nic_driver.cc.o.d"
  "/root/repo/src/drv/resource_manager.cc" "src/drv/CMakeFiles/wpos_drv.dir/resource_manager.cc.o" "gcc" "src/drv/CMakeFiles/wpos_drv.dir/resource_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mks/CMakeFiles/wpos_mks.dir/DependInfo.cmake"
  "/root/repo/build/src/mk/CMakeFiles/wpos_mk.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/wpos_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/wpos_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
