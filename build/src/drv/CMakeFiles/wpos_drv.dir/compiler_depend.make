# Empty compiler generated dependencies file for wpos_drv.
# This may be replaced when dependencies are built.
