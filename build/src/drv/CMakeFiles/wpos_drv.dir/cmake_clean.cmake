file(REMOVE_RECURSE
  "CMakeFiles/wpos_drv.dir/disk_driver.cc.o"
  "CMakeFiles/wpos_drv.dir/disk_driver.cc.o.d"
  "CMakeFiles/wpos_drv.dir/kernel_nic.cc.o"
  "CMakeFiles/wpos_drv.dir/kernel_nic.cc.o.d"
  "CMakeFiles/wpos_drv.dir/nic_driver.cc.o"
  "CMakeFiles/wpos_drv.dir/nic_driver.cc.o.d"
  "CMakeFiles/wpos_drv.dir/resource_manager.cc.o"
  "CMakeFiles/wpos_drv.dir/resource_manager.cc.o.d"
  "libwpos_drv.a"
  "libwpos_drv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wpos_drv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
