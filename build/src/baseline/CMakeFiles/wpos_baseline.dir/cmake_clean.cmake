file(REMOVE_RECURSE
  "CMakeFiles/wpos_baseline.dir/monolithic.cc.o"
  "CMakeFiles/wpos_baseline.dir/monolithic.cc.o.d"
  "libwpos_baseline.a"
  "libwpos_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wpos_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
