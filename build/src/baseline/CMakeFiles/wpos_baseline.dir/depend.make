# Empty dependencies file for wpos_baseline.
# This may be replaced when dependencies are built.
