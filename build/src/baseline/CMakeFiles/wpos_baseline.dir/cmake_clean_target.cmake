file(REMOVE_RECURSE
  "libwpos_baseline.a"
)
