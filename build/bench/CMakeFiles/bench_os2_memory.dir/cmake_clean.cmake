file(REMOVE_RECURSE
  "CMakeFiles/bench_os2_memory.dir/bench_os2_memory.cc.o"
  "CMakeFiles/bench_os2_memory.dir/bench_os2_memory.cc.o.d"
  "bench_os2_memory"
  "bench_os2_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_os2_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
