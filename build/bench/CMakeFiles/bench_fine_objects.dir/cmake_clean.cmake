file(REMOVE_RECURSE
  "CMakeFiles/bench_fine_objects.dir/bench_fine_objects.cc.o"
  "CMakeFiles/bench_fine_objects.dir/bench_fine_objects.cc.o.d"
  "bench_fine_objects"
  "bench_fine_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fine_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
