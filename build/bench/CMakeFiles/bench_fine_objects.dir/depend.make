# Empty dependencies file for bench_fine_objects.
# This may be replaced when dependencies are built.
