# Empty dependencies file for wpos_bench_lib.
# This may be replaced when dependencies are built.
