file(REMOVE_RECURSE
  "../lib/libwpos_bench_lib.a"
  "../lib/libwpos_bench_lib.pdb"
  "CMakeFiles/wpos_bench_lib.dir/lib/systems.cc.o"
  "CMakeFiles/wpos_bench_lib.dir/lib/systems.cc.o.d"
  "CMakeFiles/wpos_bench_lib.dir/lib/workloads.cc.o"
  "CMakeFiles/wpos_bench_lib.dir/lib/workloads.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wpos_bench_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
