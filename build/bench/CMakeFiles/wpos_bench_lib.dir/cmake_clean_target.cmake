file(REMOVE_RECURSE
  "../lib/libwpos_bench_lib.a"
)
