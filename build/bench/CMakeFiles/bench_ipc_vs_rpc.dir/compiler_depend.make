# Empty compiler generated dependencies file for bench_ipc_vs_rpc.
# This may be replaced when dependencies are built.
