file(REMOVE_RECURSE
  "CMakeFiles/bench_ipc_vs_rpc.dir/bench_ipc_vs_rpc.cc.o"
  "CMakeFiles/bench_ipc_vs_rpc.dir/bench_ipc_vs_rpc.cc.o.d"
  "bench_ipc_vs_rpc"
  "bench_ipc_vs_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ipc_vs_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
