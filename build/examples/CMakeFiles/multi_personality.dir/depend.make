# Empty dependencies file for multi_personality.
# This may be replaced when dependencies are built.
