file(REMOVE_RECURSE
  "CMakeFiles/multi_personality.dir/multi_personality.cpp.o"
  "CMakeFiles/multi_personality.dir/multi_personality.cpp.o.d"
  "multi_personality"
  "multi_personality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_personality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
