file(REMOVE_RECURSE
  "CMakeFiles/device_driver_tour.dir/device_driver_tour.cpp.o"
  "CMakeFiles/device_driver_tour.dir/device_driver_tour.cpp.o.d"
  "device_driver_tour"
  "device_driver_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_driver_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
