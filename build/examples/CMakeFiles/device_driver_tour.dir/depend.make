# Empty dependencies file for device_driver_tour.
# This may be replaced when dependencies are built.
