file(REMOVE_RECURSE
  "CMakeFiles/naming_and_paging.dir/naming_and_paging.cpp.o"
  "CMakeFiles/naming_and_paging.dir/naming_and_paging.cpp.o.d"
  "naming_and_paging"
  "naming_and_paging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/naming_and_paging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
