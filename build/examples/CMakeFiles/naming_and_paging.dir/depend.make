# Empty dependencies file for naming_and_paging.
# This may be replaced when dependencies are built.
