// Fault-injection campaign demo: an echo server supervised by the restart
// manager is broken repeatedly by the deterministic injector while a robust
// client runs a fixed workload. The same seed always produces the same
// campaign — same fault points, same restart count, same trace.
//
// Three campaign modes cover the three failure archetypes:
//   crash — the server task dies mid-request; the death notice drives the
//           respawn (the default, the original campaign).
//   stall — the server wedges silently mid-request; only the heartbeat
//           watchdog notices, force-terminates, and respawns it.
//   delay — the server survives but slows down; queued callers ride out
//           seeded delays inside their per-attempt deadlines.
//
//   $ ./fault_campaign                      # seed 1, crash mode
//   $ ./fault_campaign --mode stall         # watchdog recovery campaign
//   $ ./fault_campaign --fault-seed 42      # a different (replayable) run
//   $ ./fault_campaign --json metrics.json  # export counters afterwards
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/hw/machine.h"
#include "src/mk/kernel.h"
#include "src/mk/rpc_robust.h"
#include "src/mk/server_loop.h"
#include "src/mk/trace/exporters.h"
#include "src/mks/naming/name_server.h"
#include "src/mks/restart/restart_manager.h"

namespace {

constexpr uint32_t kEchoOp = 1;
constexpr char kEchoName[] = "/svc/echo";

struct Fleet {
  mk::Kernel& kernel;
  mk::Task* mgr_task;
  // Set (after the manager exists) to make every generation heartbeat, so
  // the stall campaign's watchdog can tell wedged from idle.
  mks::RestartManager* manager = nullptr;
  uint64_t beat_ns = 0;
  std::vector<mk::Task*> tasks;
  std::vector<mk::PortName> recvs;
  std::vector<std::shared_ptr<mk::ServerLoop>> loops;

  mk::Task* Spawn() {
    const int gen = static_cast<int>(tasks.size());
    mk::Task* task = kernel.CreateTask("echo-g" + std::to_string(gen));
    auto recv = kernel.PortAllocate(*task);
    auto loop = std::make_shared<mk::ServerLoop>(*recv, "echo", 64);
    loop->Register(kEchoOp, [](mk::Env& env, const mk::RpcRequest& request, const uint8_t* req,
                               const uint8_t*, uint32_t) {
      env.RpcReply(request.token, req, request.req_len);
    });
    if (manager != nullptr && beat_ns != 0) {
      auto health = manager->HealthRightFor(*task);
      if (health.ok()) {
        loop->EnableHeartbeat(*health, 1, beat_ns);
      }
    }
    kernel.CreateThread(task, "echo", [loop](mk::Env& env) { loop->Run(env); });
    tasks.push_back(task);
    recvs.push_back(*recv);
    loops.push_back(loop);
    return task;
  }
};

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 1;
  const char* json_path = nullptr;
  std::string mode = "crash";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fault-seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--mode") == 0 && i + 1 < argc) {
      mode = argv[++i];
      if (mode != "crash" && mode != "stall" && mode != "delay") {
        std::fprintf(stderr, "unknown --mode %s (crash|stall|delay)\n", mode.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "usage: %s [--fault-seed N] [--mode crash|stall|delay] [--json path]\n",
                   argv[0]);
      return 2;
    }
  }

  hw::Machine machine(hw::MachineConfig{.ram_bytes = 32 * 1024 * 1024});
  mk::Kernel kernel(&machine);
  kernel.tracer().Enable();
  kernel.faults().Enable(seed);
  if (mode == "crash") {
    // Crash the echo server at handler entry on ~15% of requests, at most 3
    // times; drop one reply on the wire for good measure.
    kernel.faults().Arm(mk::fault::FaultPoint::kServerHandlerEntry,
                        mk::fault::FaultMode::kCrashTask, 15, /*max_fires=*/3);
  } else if (mode == "stall") {
    // Wedge the serving thread silently on ~10% of requests, at most twice.
    // No death notice ever arrives — recovery is the watchdog's alone.
    kernel.faults().Arm(mk::fault::FaultPoint::kServerHandlerEntry,
                        mk::fault::FaultMode::kStallTask, 10, /*max_fires=*/2);
  } else {
    // Slow the server down with seeded delays on ~25% of requests; the
    // robust client's per-attempt deadline must absorb them.
    kernel.faults().ArmDelay(mk::fault::FaultPoint::kServerHandlerEntry,
                             mk::fault::Injector::kDefaultDelayMinNs,
                             mk::fault::Injector::kDefaultDelayMaxNs, 25);
  }

  mk::Task* ns_task = kernel.CreateTask("mks-naming");
  mks::NameServer names(kernel, ns_task);
  mk::Task* mgr_task = kernel.CreateTask("mks-restart");
  mks::RestartPolicy policy;
  policy.max_restarts = 5;
  constexpr uint64_t kBeatNs = 500'000;
  if (mode == "stall") {
    // Four missed beats = wedged; the kill + respawn happen well inside one
    // robust-call attempt deadline.
    policy.heartbeat_deadline_ns = 2'000'000;
    policy.backoff_initial_ns = 100'000;
  }
  mks::RestartManager manager(kernel, mgr_task, names.GrantTo(*mgr_task), policy);

  Fleet fleet{kernel, mgr_task};
  if (mode == "stall") {
    fleet.manager = &manager;
    fleet.beat_ns = kBeatNs;
  }
  mk::Task* gen0 = fleet.Spawn();
  manager.Supervise(kEchoName, gen0, [&fleet](mk::Env&) {
    mk::Task* task = fleet.Spawn();
    auto right = fleet.kernel.MakeSendRight(*task, fleet.recvs.back(), *fleet.mgr_task);
    return mks::RestartManager::Respawned{task, right.ok() ? *right : mk::kNullPort};
  });

  mk::Task* client_task = kernel.CreateTask("client");
  const mk::PortName ns_for_client = names.GrantTo(*client_task);
  uint32_t ok_calls = 0;
  bool degraded_at_end = false;  // sampled before Unsupervise drops the entry
  kernel.CreateThread(client_task, "client", [&](mk::Env& env) {
    mks::NameClient nc(ns_for_client);
    auto right = kernel.MakeSendRight(*fleet.tasks[0], fleet.recvs[0], *client_task);
    if (!right.ok() || nc.Register(env, kEchoName, *right) != base::Status::kOk) {
      return;
    }
    const mk::PortResolver resolver = [&nc](mk::Env& e) { return nc.Resolve(e, kEchoName); };
    mk::PortName cached = mk::kNullPort;
    mk::RobustCallOptions opts;
    if (mode != "crash") {
      // A wedged or slowed server never errors — only a bounded attempt
      // turns its silence into a retry.
      opts.attempt_timeout_ns = 5'000'000;
      opts.max_attempts = 10;
      opts.retry_backoff_ns = 500'000;
    }
    for (uint32_t i = 0; i < 60; ++i) {
      uint32_t req[2] = {kEchoOp, i};
      uint32_t reply[2] = {};
      if (mk::RpcCallRobust(env, resolver, &cached, req, sizeof(req), reply, sizeof(reply),
                            opts) == base::Status::kOk &&
          reply[1] == i) {
        ++ok_calls;
      }
    }
    kernel.faults().DisarmAll();
    degraded_at_end = manager.degraded(kEchoName);
    // Deliberate shutdown: withdraw the watchdog first or it would mistake
    // the stopped server for a wedge and respawn an orphan generation.
    manager.Unsupervise(kEchoName);
    fleet.loops.back()->Stop();
    manager.Stop();
    names.Stop();
    (void)nc.Resolve(env, "/x");  // unblock the name server loop
  });
  kernel.Run();

  const auto& log = kernel.faults().log();
  std::printf("campaign mode %s seed %llu: %zu fault(s) fired, %llu restart(s), %u/60 calls ok\n",
              mode.c_str(), static_cast<unsigned long long>(seed), log.size(),
              static_cast<unsigned long long>(manager.total_restarts()), ok_calls);
  for (const auto& fired : log) {
    std::printf("  seq %llu: %s / %s\n", static_cast<unsigned long long>(fired.seq),
                mk::fault::FaultPointName(fired.point), mk::fault::FaultModeName(fired.mode));
  }
  std::printf("degraded: %s (budget %u)\n", degraded_at_end ? "yes" : "no", policy.max_restarts);
  if (json_path != nullptr) {
    std::ofstream out(json_path);
    mk::trace::WriteMetricsJson(out, kernel);
    std::printf("metrics written to %s\n", json_path);
  }
  return ok_calls == 60 ? 0 : 1;
}
