// Multiple operating system personalities running concurrently over the same
// personality-neutral servers — the Workplace OS headline feature (Figure 1
// of the paper).
//
// An OS/2 process, a UNIX process and a DOS box all share one file server
// (HPFS under "/", FAT under "/fat") and see each other's files through the
// single rooted tree, each through its own semantics:
//   - the OS/2 process opens names case-insensitively and uses EAs;
//   - the UNIX process uses byte-stream fds with implicit offsets;
//   - the DOS program reaches the file server via MVM's virtual device
//     drivers from inside the x86 interpreter.
//
//   $ ./multi_personality
#include <cstdio>

#include "src/hw/machine.h"
#include "src/mk/kernel.h"
#include "src/mks/pager/default_pager.h"
#include "src/pers/mvm/mvm.h"
#include "src/pers/os2/os2.h"
#include "src/pers/unixp/unix.h"
#include "src/svc/fs/file_server.h"
#include "src/svc/fs/fat.h"
#include "src/svc/fs/inode_fs.h"

int main() {
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 64 * 1024 * 1024});
  mk::Kernel kernel(&machine);
  auto* disk = static_cast<hw::Disk*>(machine.AddDevice(
      std::make_unique<hw::Disk>("disk0", 3, hw::Disk::Geometry{.sectors = 128 * 1024})));

  // Personality-neutral: one file server, two physical file systems.
  mks::BackdoorBlockStore store(disk, 200'000);
  svc::BlockCache cache(kernel, &store, 1024);
  svc::HpfsFs hpfs(kernel, &cache, 49152);
  // FAT lives on its own disk to keep the example compact.
  auto* fat_disk = static_cast<hw::Disk*>(machine.AddDevice(std::make_unique<hw::Disk>("d2", 4)));
  mks::BackdoorBlockStore fat_store(fat_disk, 200'000);
  svc::BlockCache fat_cache(kernel, &fat_store, 256);
  svc::FatFs fat(kernel, &fat_cache, 8192);

  mk::Task* fs_task = kernel.CreateTask("file-server");
  svc::FileServer fs(kernel, fs_task);
  fs.AddMount("/", &hpfs);
  fs.AddMount("/fat", &fat);

  // Personalities.
  mk::Task* os2_task = kernel.CreateTask("os2-server");
  pers::Os2Server os2_server(kernel, os2_task);
  pers::Os2Process os2(kernel, os2_server, fs, "works");
  pers::UnixPersonality unix_pers(kernel, fs);
  pers::DosBox dos(kernel, fs, "game");

  // mkfs, then run the three personalities in dependency order via a simple
  // shared step counter.
  int step = 0;
  kernel.CreateThread(fs_task, "mkfs", [&](mk::Env& env) {
    hpfs.Format(env);
    fat.Format(env);
    step = 1;
  });

  // 1. The OS/2 application writes a document with an extended attribute.
  kernel.CreateThread(os2.task(), "os2-app", [&](mk::Env& env) {
    while (step < 1) {
      env.SleepNs(100'000);
    }
    auto h = os2.DosOpen(env, "/Shared Report.doc", svc::kFsCreate | svc::kFsWrite);
    const char text[] = "written by OS/2";
    os2.DosWrite(env, *h, 0, text, sizeof(text));
    os2.DosClose(env, *h);
    std::printf("[os2]  wrote \"/Shared Report.doc\"\n");
    // The 8.3 world: the same name cannot exist under /fat.
    auto fat_try = os2.DosOpen(env, "/fat/Shared Report.doc", svc::kFsCreate | svc::kFsWrite);
    std::printf("[os2]  creating the long name on FAT -> %s (the paper's incompatibility)\n",
                base::StatusName(fat_try.status()).data());
    step = 2;
  });

  // 2. The UNIX process reads it back — with exact-case POSIX semantics it
  //    must spell the name correctly.
  pers::UnixProcess* shell = nullptr;
  shell = unix_pers.Spawn("sh", [&](mk::Env& env) {
    while (step < 2) {
      env.SleepNs(100'000);
    }
    auto fd = shell->Open(env, "/Shared Report.doc", pers::kORdOnly);
    char buf[64] = {};
    auto got = shell->Read(env, *fd, buf, sizeof(buf));
    std::printf("[unix] read %u bytes: \"%s\"\n", got.ok() ? *got : 0, buf);
    shell->Close(env, *fd);
    step = 3;
  });

  // 3. A DOS program appends a save file through INT 21h.
  pers::Vm86Assembler as;
  as.MovImm(pers::Vm86Reg::kAx, 0x3c00)  // create
      .MovImm(pers::Vm86Reg::kDx, 0x200)
      .Int(0x21)
      .MovReg(pers::Vm86Reg::kBx, pers::Vm86Reg::kAx)
      .MovImm(pers::Vm86Reg::kAx, 0x4000)  // write
      .MovImm(pers::Vm86Reg::kCx, 9)
      .MovImm(pers::Vm86Reg::kDx, 0x210)
      .MovImm(pers::Vm86Reg::kSi, 0)
      .Int(0x21)
      .MovImm(pers::Vm86Reg::kAx, 0x4c00)
      .Int(0x21);
  std::vector<uint8_t> image = as.code();
  image.resize(0x220, 0);
  std::memcpy(image.data() + 0x200, "DOSGAME.SAV", 12);
  std::memcpy(image.data() + 0x210, "SAVEDGAME", 9);
  kernel.CreateThread(dos.task(), "dos", [&](mk::Env& env) {
    while (step < 3) {
      env.SleepNs(100'000);
    }
    dos.LoadProgram(env, image);
    dos.Run(env, /*translated=*/true);
    std::printf("[dos]  program exited %d after %llu DOS calls (translator: %llu blocks)\n",
                dos.exit_code(), static_cast<unsigned long long>(dos.dos_calls()),
                static_cast<unsigned long long>(dos.vm().blocks_translated()));
    // Everyone sees everyone's files in the single rooted tree.
    svc::FsClient viewer(fs.GrantTo(*dos.task()));
    auto entries = viewer.ReadDir(env, "/");
    std::printf("[tree] '/' now holds:\n");
    for (const auto& e : *entries) {
      std::printf("[tree]   %s%s\n", e.name.c_str(), e.directory ? "/" : "");
    }
    fs.Stop();
    os2_server.Stop();
    (void)viewer.Sync(env);
    kernel.TerminateTask(os2_task);
  });

  const size_t blocked = kernel.Run();
  std::printf("\nmachine halted; %zu threads still parked; simulated time %.3f ms\n", blocked,
              static_cast<double>(kernel.NowNs()) / 1e6);
  return 0;
}
