// Causal request tracing tour: a UNIX read() crossing three servers —
// personality process -> file server -> user-level disk driver — captured
// as one causal tree with per-hop attribution (client send / port queue
// wait / server handler / reply return) and the critical path marked.
//
//   $ ./trace_request [out.json]
//
// Writes the Chrome trace (chrome://tracing, Perfetto) to out.json
// (default trace_request.json) and the request-tree report next to it
// (out.json.trees.txt); the report is also printed below.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include "src/base/log.h"
#include "src/drv/disk_driver.h"
#include "src/hw/machine.h"
#include "src/mk/kernel.h"
#include "src/mk/trace/exporters.h"
#include "src/pers/unixp/unix.h"
#include "src/svc/fs/file_server.h"
#include "src/svc/fs/inode_fs.h"

int main(int argc, char** argv) {
  const std::string out = argc > 1 ? argv[1] : "trace_request.json";
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 32 * 1024 * 1024});
  mk::Kernel kernel(&machine);
  kernel.tracer().Enable();  // host-side bookkeeping: charges no simulated cycles

  // --- Three servers under the application -------------------------------------
  // Disk driver (user-level, interrupt-driven) on its own task.
  auto* disk = static_cast<hw::Disk*>(machine.AddDevice(
      std::make_unique<hw::Disk>("disk0", 3, hw::Disk::Geometry{.sectors = 64 * 1024})));
  mk::Task* driver_task = kernel.CreateTask("disk-driver");
  drv::DiskDriver driver(kernel, driver_task, disk, nullptr);

  // File server on its own task, backed by the driver over RPC.
  mk::Task* fs_task = kernel.CreateTask("file-server");
  drv::RpcBlockStore store(driver.GrantTo(*fs_task), disk->num_sectors());
  // A deliberately tiny cache so the traced read() misses and must take the
  // third hop to the disk driver.
  svc::BlockCache cache(kernel, &store, 16);
  svc::HpfsFs hpfs(kernel, &cache, 65536);
  svc::FileServer fs(kernel, fs_task);
  WPOS_CHECK(fs.AddMount("/", &hpfs) == base::Status::kOk);
  bool formatted = false;
  kernel.CreateThread(fs_task, "mkfs", [&](mk::Env& env) {
    WPOS_CHECK(hpfs.Format(env) == base::Status::kOk);
    formatted = true;
  });

  // UNIX personality process as the application.
  pers::UnixPersonality unix_pers(kernel, fs);
  pers::UnixProcess* proc = nullptr;
  proc = unix_pers.Spawn("cat", [&](mk::Env& env) {
    while (!formatted) {
      env.SleepNs(200'000);
    }
    char block[1024];
    std::memset(block, 'x', sizeof(block));
    auto fd = proc->Open(env, "/data.bin", pers::kOCreat | pers::kORdWr);
    WPOS_CHECK(fd.ok());
    for (int i = 0; i < 32; ++i) {
      WPOS_CHECK(proc->Write(env, *fd, block, sizeof(block)).ok());
    }
    WPOS_CHECK(proc->Lseek(env, *fd, 0, 0).ok());
    // The traced read(): unix.read -> file-server RPC -> disk-driver RPC.
    auto got = proc->Read(env, *fd, block, sizeof(block));
    WPOS_CHECK(got.ok());
    std::printf("read() returned %u bytes through 3 servers\n", *got);
    WPOS_CHECK(proc->Close(env, *fd) == base::Status::kOk);
    // Orderly shutdown so kernel.Run() returns.
    fs.Stop();
    svc::FsClient unblock(fs.GrantTo(*proc->task()));
    (void)unblock.Sync(env);
    driver.Stop();
    kernel.TerminateTask(driver_task);
  });
  kernel.Run();

  // --- Export ------------------------------------------------------------------
  std::ofstream chrome(out);
  WPOS_CHECK(static_cast<bool>(chrome)) << "cannot write " << out;
  mk::trace::WriteChromeTrace(chrome, kernel);
  std::ofstream trees(out + ".trees.txt");
  WPOS_CHECK(static_cast<bool>(trees)) << "cannot write " << out << ".trees.txt";
  mk::trace::WriteRequestTrees(trees, kernel);
  std::printf("chrome trace -> %s, request trees -> %s.trees.txt\n\n", out.c_str(),
              out.c_str());
  mk::trace::WriteRequestTrees(std::cout, kernel);
  return 0;
}
