// Device-driver tour: the hardware resource manager's request/yield/grant
// scheme, a user-level interrupt-driven disk driver serving block I/O over
// RPC, and the OODDM fine-grained-object driver next to its coarse
// equivalent — the three driver architectures the paper describes.
//
//   $ ./device_driver_tour
#include <cstdio>

#include "src/drv/disk_driver.h"
#include "src/drv/oo/ooddm.h"
#include "src/drv/resource_manager.h"
#include "src/hw/machine.h"
#include "src/mk/kernel.h"

int main() {
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 32 * 1024 * 1024});
  mk::Kernel kernel(&machine);
  auto* disk = static_cast<hw::Disk*>(machine.AddDevice(std::make_unique<hw::Disk>("disk0", 3)));

  // --- The hardware resource manager -------------------------------------------
  drv::ResourceManager rm(kernel);
  mk::Task* driver_task = kernel.CreateTask("disk-driver");
  drv::DiskDriver driver(kernel, driver_task, disk, &rm);
  std::printf("resource manager: driver owns irq3=%d, reg window=%d (grants=%llu)\n",
              rm.Owns(1, {drv::ResourceKind::kIrqLine, 3}),
              rm.Owns(1, {drv::ResourceKind::kIoWindow, disk->reg_base()}),
              static_cast<unsigned long long>(rm.grants()));

  // A diagnostic tool politely requests the register window; with no yield
  // handler registered the driver declines and the request stays queued.
  const drv::DriverId diag = rm.RegisterDriver("diagnostics");
  const base::Status st = rm.Request(diag, {drv::ResourceKind::kIoWindow, disk->reg_base()});
  std::printf("diagnostics requests the register window -> %s (owner declined to yield)\n",
              base::StatusName(st).data());

  // --- User-level interrupt-driven I/O ------------------------------------------
  mk::Task* client_task = kernel.CreateTask("client");
  const mk::PortName service = driver.GrantTo(*client_task);
  kernel.CreateThread(client_task, "client", [&](mk::Env& env) {
    drv::RpcBlockStore store(service, disk->num_sectors());
    std::vector<uint8_t> sectors(4 * hw::Disk::kSectorSize);
    for (size_t i = 0; i < sectors.size(); ++i) {
      sectors[i] = static_cast<uint8_t>(i * 7);
    }
    store.Write(env, 100, 4, sectors.data());
    std::vector<uint8_t> back(sectors.size());
    store.Read(env, 100, 4, back.data());
    std::printf("user-level driver: 4 sectors round-tripped %s, %llu interrupts taken\n",
                back == sectors ? "intact" : "CORRUPTED",
                static_cast<unsigned long long>(driver.interrupts_taken()));

    // --- OODDM vs coarse objects --------------------------------------------------
    auto dma = machine.mem().AllocContiguous(1);
    drv::TDiskDrive fine(kernel, disk, *dma);
    drv::CoarseDiskDriver coarse(kernel, disk, *dma);
    std::vector<uint8_t> buf(hw::Disk::kSectorSize);
    auto measure = [&](auto& d) {
      const uint64_t i0 = kernel.Counters().instructions;
      for (int i = 0; i < 10; ++i) {
        d.ReadBlocks(env, 1, 1, buf.data());
      }
      return (kernel.Counters().instructions - i0) / 10;
    };
    const uint64_t fine_instr = measure(fine);
    const uint64_t coarse_instr = measure(coarse);
    std::printf("OODDM TDiskDrive: %llu instr/read over %llu virtual calls;"
                " coarse driver: %llu instr/read\n",
                static_cast<unsigned long long>(fine_instr),
                static_cast<unsigned long long>(fine.virtual_calls() / 10),
                static_cast<unsigned long long>(coarse_instr));
    driver.Stop();
    kernel.TerminateTask(driver_task);
  });

  kernel.Run();
  return 0;
}
