// Quickstart: boot a machine and a microkernel, start a server task and a
// client task, and exchange a few RPCs — the minimal WPOS "hello world".
//
//   $ ./quickstart
#include <cstdio>

#include "src/hw/machine.h"
#include "src/mk/kernel.h"

int main() {
  // One simulated machine: a 133 MHz CPU with Pentium-like caches and 16 MB.
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 16 * 1024 * 1024});
  mk::Kernel kernel(&machine);

  // Tasks are address spaces + port spaces; threads run inside them.
  mk::Task* server_task = kernel.CreateTask("echo-server");
  mk::Task* client_task = kernel.CreateTask("client");

  // The server owns a port (receive right); the client gets a send right.
  auto receive = kernel.PortAllocate(*server_task);
  auto send = kernel.MakeSendRight(*server_task, *receive, *client_task);

  kernel.CreateThread(server_task, "server", [&, port = *receive](mk::Env& env) {
    char buffer[128];
    for (int i = 0; i < 3; ++i) {
      auto request = env.RpcReceive(port, buffer, sizeof(buffer));
      if (!request.ok()) {
        return;
      }
      std::printf("[server] got %u bytes: \"%s\"\n", request->req_len, buffer);
      env.RpcReply(request->token, buffer, request->req_len);
    }
  });

  kernel.CreateThread(client_task, "client", [&, port = *send](mk::Env& env) {
    const char* messages[] = {"hello", "workplace", "os"};
    for (const char* msg : messages) {
      char reply[128] = {};
      uint32_t reply_len = 0;
      const base::Status st = env.RpcCall(port, msg, std::strlen(msg) + 1, reply, sizeof(reply),
                                          &reply_len);
      std::printf("[client] call \"%s\" -> %s (echoed \"%s\")\n", msg,
                  base::StatusName(st).data(), reply);
    }
  });

  // Drive the machine until everything finishes.
  kernel.Run();

  const hw::CpuCounters c = kernel.Counters();
  std::printf("\nsimulated: %llu instructions, %llu cycles (%.3f ms at 133 MHz), "
              "%llu RPCs, %llu context switches\n",
              static_cast<unsigned long long>(c.instructions),
              static_cast<unsigned long long>(c.cycles),
              static_cast<double>(kernel.cpu().CyclesToNs(c.cycles)) / 1e6,
              static_cast<unsigned long long>(kernel.rpc_calls()),
              static_cast<unsigned long long>(kernel.scheduler().context_switches()));
  return 0;
}
