// Microkernel Services tour: the X.500-style name service (attributes,
// search, notifications) alongside the Release-2 lite service, plus the
// default pager backing a memory object on disk, plus the loader resolving
// an address-coerced shared library into two address spaces.
//
//   $ ./naming_and_paging
#include <cstdio>

#include "src/hw/machine.h"
#include "src/mk/kernel.h"
#include "src/mks/loader/loader.h"
#include "src/mks/naming/lite_name_server.h"
#include "src/mks/naming/name_server.h"
#include "src/mks/pager/default_pager.h"

int main() {
  hw::Machine machine(hw::MachineConfig{.ram_bytes = 32 * 1024 * 1024});
  mk::Kernel kernel(&machine);
  auto* disk = static_cast<hw::Disk*>(machine.AddDevice(std::make_unique<hw::Disk>("paging", 3)));

  mk::Task* mks_task = kernel.CreateTask("mks");
  mks::NameServer names(kernel, mks_task);
  mks::LiteNameServer lite(kernel, kernel.CreateTask("mks-lite"));
  mks::DefaultPager pager(kernel, kernel.CreateTask("default-pager"),
                          std::make_unique<mks::BackdoorBlockStore>(disk));

  // A pager-backed object with pre-existing backing-store contents.
  auto object = pager.CreateBackedObject(4 * hw::kPageSize);
  std::vector<uint8_t> page(hw::kPageSize, 0x42);
  pager.Preload(object->pager_object_id(), 1, page.data());

  mk::Task* app = kernel.CreateTask("app");
  auto mapped = kernel.VmMapObject(*app, object, 0, 4 * hw::kPageSize, mk::Prot::kReadWrite,
                                   /*anywhere=*/true);
  const mk::PortName name_service = names.GrantTo(*app);
  const mk::PortName lite_service = lite.GrantTo(*app);

  // The loader: an address-coerced shared library lands at the same address
  // in every task (the OS/2 shared-memory assumption).
  mks::Loader loader(kernel);
  mks::LoadModule lib;
  lib.name = "libpmwin.so";
  lib.shared_library = true;
  lib.coerced = true;
  lib.text_size = 8192;
  lib.data_size = 4096;
  lib.exports.push_back({"WinCreateWindow", 0x40});
  loader.RegisterModule(lib);
  mks::LoadModule prog;
  prog.name = "app.exe";
  prog.text_size = 4096;
  prog.needed.push_back("libpmwin.so");
  prog.imports.push_back({"libpmwin.so", "WinCreateWindow"});
  loader.RegisterModule(prog);
  mk::Task* second = kernel.CreateTask("app2");
  auto load1 = loader.LoadProgram(*app, "app.exe");
  auto load2 = loader.LoadProgram(*second, "app.exe");
  std::printf("loader: WinCreateWindow at %#llx in app, %#llx in app2 (coerced => equal)\n",
              static_cast<unsigned long long>(load1->resolved.at("WinCreateWindow").address),
              static_cast<unsigned long long>(load2->resolved.at("WinCreateWindow").address));

  kernel.CreateThread(app, "main", [&](mk::Env& env) {
    mks::NameClient nc(name_service);
    mks::LiteNameClient lc(lite_service);
    auto my_port = env.PortAllocate();

    // Register with attributes, then find by attribute search.
    mks::Attribute a;
    std::strncpy(a.key, "class", sizeof(a.key) - 1);
    std::strncpy(a.value, "printer", sizeof(a.value) - 1);
    nc.Register(env, "/dev/lpt0", *my_port, {a});
    nc.Register(env, "/dev/disk0", *my_port);
    auto printers = nc.Search(env, "class", "printer");
    std::printf("name service: search(class=printer) -> %zu match (%s)\n", printers->size(),
                (*printers)[0].c_str());

    // Watch the namespace, then trigger a change.
    auto notify = env.PortAllocate();
    nc.Watch(env, "/svc", *notify);
    nc.Register(env, "/svc/spooler", *my_port);
    mk::MachMessage event;
    env.kernel().MachMsgReceive(*notify, &event);
    mks::NameEvent ev;
    std::memcpy(&ev, event.inline_data.data(), sizeof(ev));
    std::printf("name service: watcher notified of '%s'\n", ev.name);

    // Lite service: same resolve, flat namespace, far cheaper.
    lc.Register(env, "/svc/spooler", *my_port);
    const uint64_t c0 = kernel.cpu().cycles();
    nc.Resolve(env, "/svc/spooler");
    const uint64_t full_cycles = kernel.cpu().cycles() - c0;
    const uint64_t c1 = kernel.cpu().cycles();
    lc.Resolve(env, "/svc/spooler");
    const uint64_t lite_cycles = kernel.cpu().cycles() - c1;
    std::printf("resolve cycles: full=%llu lite=%llu (the Release-2 motivation)\n",
                static_cast<unsigned long long>(full_cycles),
                static_cast<unsigned long long>(lite_cycles));

    // Touch the pager-backed object: page 1 arrives from the default pager.
    uint8_t byte = 0;
    env.CopyIn(*mapped + hw::kPageSize, &byte, 1);
    std::printf("default pager: page 1 faulted in with contents 0x%02x (%llu page-ins)\n", byte,
                static_cast<unsigned long long>(pager.pageins_served()));

    names.Stop();
    lite.Stop();
    pager.Stop();
    (void)nc.Resolve(env, "/x");
    (void)lc.Resolve(env, "/x");
    kernel.TerminateTask(pager.task());
  });

  kernel.Run();
  return 0;
}
