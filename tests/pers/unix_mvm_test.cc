#include <gtest/gtest.h>

#include "src/pers/mvm/mvm.h"
#include "src/pers/unixp/unix.h"
#include "src/svc/fs/inode_fs.h"
#include "tests/mk/kernel_test_fixture.h"

namespace pers {
namespace {

class PersonalityTest : public mk::KernelTest {
 protected:
  PersonalityTest() {
    disk_ = static_cast<hw::Disk*>(machine_.AddDevice(
        std::make_unique<hw::Disk>("d", 3, hw::Disk::Geometry{.sectors = 128 * 1024})));
    store_ = std::make_unique<mks::BackdoorBlockStore>(disk_, 10'000);
    cache_ = std::make_unique<svc::BlockCache>(kernel_, store_.get(), 1024);
    jfs_ = std::make_unique<svc::JfsFs>(kernel_, cache_.get(), 65536);
    fs_task_ = kernel_.CreateTask("file-server");
    fs_ = std::make_unique<svc::FileServer>(kernel_, fs_task_);
    EXPECT_EQ(fs_->AddMount("/", jfs_.get()), base::Status::kOk);
    kernel_.CreateThread(fs_task_, "mkfs",
                         [this](mk::Env& env) { ASSERT_EQ(jfs_->Format(env), base::Status::kOk); });
  }

  void StopFs(mk::Env& env, mk::Task& any_client_task) {
    fs_->Stop();
    svc::FsClient unblock(fs_->GrantTo(any_client_task));
    (void)unblock.Sync(env);
  }

  hw::Disk* disk_;
  std::unique_ptr<mks::BackdoorBlockStore> store_;
  std::unique_ptr<svc::BlockCache> cache_;
  std::unique_ptr<svc::JfsFs> jfs_;
  mk::Task* fs_task_;
  std::unique_ptr<svc::FileServer> fs_;
};

TEST_F(PersonalityTest, UnixOpenReadWriteWithImplicitOffset) {
  UnixPersonality unix_pers(kernel_, *fs_);
  UnixProcess* proc = nullptr;
  proc = unix_pers.Spawn("sh", [&](mk::Env& env) {
    auto fd = proc->Open(env, "/notes.txt", kOCreat | kORdWr);
    ASSERT_TRUE(fd.ok());
    // Sequential writes advance the implicit offset.
    ASSERT_TRUE(proc->Write(env, *fd, "hello ", 6).ok());
    ASSERT_TRUE(proc->Write(env, *fd, "world", 5).ok());
    ASSERT_TRUE(proc->Lseek(env, *fd, 0, 0).ok());
    char buf[16] = {};
    auto got = proc->Read(env, *fd, buf, 11);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(std::string(buf, 11), "hello world");
    // Reads advanced the offset too; next read is empty.
    auto more = proc->Read(env, *fd, buf, 8);
    ASSERT_TRUE(more.ok());
    EXPECT_EQ(*more, 0u);
    ASSERT_EQ(proc->Close(env, *fd), base::Status::kOk);
    StopFs(env, *proc->task());
  });
  EXPECT_EQ(kernel_.Run(), 0u);
}

// The errno mapping is the personality's overload surface: every graceful
// degradation status — shed (kBusy), breaker fast-fail (kUnavailable),
// bounded-call expiry (kTimedOut), legacy queue overflow (kQueueFull) —
// becomes EAGAIN ("try again"), not a hang and not a hard error.
TEST(UnixErrnoTest, DegradationStatusesMapToEagain) {
  EXPECT_EQ(UnixErrnoOf(base::Status::kOk), kEOk);
  EXPECT_EQ(UnixErrnoOf(base::Status::kBusy), kEAGAIN);
  EXPECT_EQ(UnixErrnoOf(base::Status::kUnavailable), kEAGAIN);
  EXPECT_EQ(UnixErrnoOf(base::Status::kTimedOut), kEAGAIN);
  EXPECT_EQ(UnixErrnoOf(base::Status::kQueueFull), kEAGAIN);
  EXPECT_EQ(UnixErrnoOf(base::Status::kWouldBlock), kEAGAIN);
  EXPECT_EQ(UnixErrnoOf(base::Status::kNotFound), kENOENT);
  EXPECT_EQ(UnixErrnoOf(base::Status::kPermissionDenied), kEACCES);
  EXPECT_EQ(UnixErrnoOf(base::Status::kAlreadyExists), kEEXIST);
  EXPECT_EQ(UnixErrnoOf(base::Status::kInvalidArgument), kEINVAL);
  EXPECT_EQ(UnixErrnoOf(base::Status::kPortDead), kEIO);
}

// A wedged file server must surface as EAGAIN through the personality, not
// hang the process: with an I/O timeout set, the process's Write comes back
// kTimedOut in bounded simulated time and maps to EAGAIN.
TEST_F(PersonalityTest, UnixIoTimeoutSurfacesWedgedServerAsEagain) {
  kernel_.faults().Enable(3);
  UnixPersonality unix_pers(kernel_, *fs_);
  UnixProcess* proc = nullptr;
  proc = unix_pers.Spawn("sh", [&](mk::Env& env) {
    // Open with no deadline: the concurrent mkfs can hold the fs well past
    // any reasonable I/O timeout. The bound under test is armed afterwards.
    auto fd = proc->Open(env, "/hang.txt", kOCreat | kORdWr);
    ASSERT_TRUE(fd.ok());
    unix_pers.set_io_timeout_ns(3'000'000);
    // Wedge the server on the NEXT request (the fd's port is already warm).
    kernel_.faults().Arm(mk::fault::FaultPoint::kServerHandlerEntry,
                         mk::fault::FaultMode::kStallTask, 100, /*max_fires=*/1);
    const uint64_t t0 = env.NowNs();
    auto got = proc->Write(env, *fd, "x", 1);
    const uint64_t waited = env.NowNs() - t0;
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status(), base::Status::kTimedOut);
    EXPECT_EQ(UnixErrnoOf(got.status()), kEAGAIN);
    EXPECT_GE(waited, 3'000'000u);
    EXPECT_LE(waited, 10'000'000u) << "the bounded call must not hang";
    // The wedged server cannot be stopped cleanly; terminate its task (the
    // watchdog's job in a full system).
    kernel_.TerminateTask(fs_task_);
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(kernel_.CheckInvariants(), 0u);
}

TEST_F(PersonalityTest, UnixReadvWritevMoveAllIovecsInOneCall) {
  UnixPersonality unix_pers(kernel_, *fs_);
  UnixProcess* proc = nullptr;
  proc = unix_pers.Spawn("vec", [&](mk::Env& env) {
    auto fd = proc->Open(env, "/vec.dat", kOCreat | kORdWr);
    ASSERT_TRUE(fd.ok());
    // writev: three buffers, one RPC, consecutive file positions.
    std::vector<uint8_t> w1(3000, 0x11), w2(5000, 0x22), w3(100, 0x33);
    UnixIoVec wv[3] = {{w1.data(), 3000}, {w2.data(), 5000}, {w3.data(), 100}};
    auto wrote = proc->Writev(env, *fd, wv, 3);
    ASSERT_TRUE(wrote.ok());
    EXPECT_EQ(*wrote, 8100u);
    ASSERT_TRUE(proc->Lseek(env, *fd, 0, 0).ok());
    // readv with different boundaries sees the same byte stream, and the
    // implicit offset advances past everything read.
    std::vector<uint8_t> r1(2000), r2(6100);
    UnixIoVec rv[2] = {{r1.data(), 2000}, {r2.data(), 6100}};
    auto got = proc->Readv(env, *fd, rv, 2);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, 8100u);
    EXPECT_EQ(r1[1999], 0x11);
    EXPECT_EQ(r2[999], 0x11);    // file offset 2999
    EXPECT_EQ(r2[1000], 0x22);   // file offset 3000
    EXPECT_EQ(r2[6099], 0x33);
    uint8_t extra = 0;
    UnixIoVec tail[1] = {{&extra, 1}};
    auto eof = proc->Readv(env, *fd, tail, 1);
    ASSERT_TRUE(eof.ok());
    EXPECT_EQ(*eof, 0u) << "offset must sit at EOF after the scatter read";
    // Pipes have no scatter path.
    auto pipe_fds = proc->Pipe(env);
    ASSERT_TRUE(pipe_fds.ok());
    EXPECT_EQ(proc->Readv(env, pipe_fds->first, tail, 1).status(),
              base::Status::kNotSupported);
    ASSERT_EQ(proc->Close(env, *fd), base::Status::kOk);
    StopFs(env, *proc->task());
  });
  EXPECT_EQ(kernel_.Run(), 0u);
}

TEST_F(PersonalityTest, UnixForkIsolatesMemoryAndSharesFiles) {
  UnixPersonality unix_pers(kernel_, *fs_);
  UnixProcess* parent = nullptr;
  uint32_t parent_value = 0;
  uint32_t child_value = 0;
  int32_t wait_code = -1;
  parent = unix_pers.Spawn("parent", [&](mk::Env& env) {
    auto mem = env.VmAllocate(hw::kPageSize);
    ASSERT_TRUE(mem.ok());
    uint32_t v = 42;
    ASSERT_EQ(env.CopyOut(*mem, &v, 4), base::Status::kOk);
    auto child = parent->Fork(env, [&, mem = *mem](mk::Env& child_env) {
      // The child sees the pre-fork value...
      uint32_t cv = 0;
      ASSERT_EQ(child_env.CopyIn(mem, &cv, 4), base::Status::kOk);
      child_value = cv;
      // ...and its writes stay private.
      cv = 99;
      ASSERT_EQ(child_env.CopyOut(mem, &cv, 4), base::Status::kOk);
    });
    ASSERT_TRUE(child.ok());
    (*child)->Exit(env, 7);  // recorded exit status
    auto code = parent->WaitPid(env, *child);
    ASSERT_TRUE(code.ok());
    wait_code = *code;
    uint32_t pv = 0;
    ASSERT_EQ(env.CopyIn(*mem, &pv, 4), base::Status::kOk);
    parent_value = pv;
    StopFs(env, *parent->task());
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(child_value, 42u);
  EXPECT_EQ(parent_value, 42u) << "child write must not leak into the parent";
  EXPECT_EQ(wait_code, 7);
}

TEST_F(PersonalityTest, UnixPipeCarriesBytes) {
  UnixPersonality unix_pers(kernel_, *fs_);
  UnixProcess* proc = nullptr;
  std::string received;
  proc = unix_pers.Spawn("piper", [&](mk::Env& env) {
    auto pipe = proc->Pipe(env);
    ASSERT_TRUE(pipe.ok());
    ASSERT_TRUE(proc->Write(env, pipe->second, "through the pipe", 16).ok());
    char buf[32] = {};
    auto got = proc->Read(env, pipe->first, buf, sizeof(buf));
    ASSERT_TRUE(got.ok());
    received.assign(buf, *got);
    StopFs(env, *proc->task());
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(received, "through the pipe");
}

// Regression: SEEK_END used to return kNotSupported — there was no way to
// ask the server for a handle's size. The handle-based stat fixed that.
TEST_F(PersonalityTest, UnixLseekSeekEndPositionsAtFileSize) {
  UnixPersonality unix_pers(kernel_, *fs_);
  UnixProcess* proc = nullptr;
  proc = unix_pers.Spawn("seeker", [&](mk::Env& env) {
    auto fd = proc->Open(env, "/seek.dat", kOCreat | kORdWr);
    ASSERT_TRUE(fd.ok());
    char data[100];
    std::memset(data, 'x', sizeof(data));
    std::memcpy(data + 90, "0123456789", 10);
    ASSERT_TRUE(proc->Write(env, *fd, data, sizeof(data)).ok());
    auto end = proc->Lseek(env, *fd, 0, 2);  // SEEK_END
    ASSERT_TRUE(end.ok());
    EXPECT_EQ(*end, 100u);
    auto back = proc->Lseek(env, *fd, -10, 2);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, 90u);
    char tail[10] = {};
    auto got = proc->Read(env, *fd, tail, sizeof(tail));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(std::string(tail, 10), "0123456789");
    ASSERT_EQ(proc->Close(env, *fd), base::Status::kOk);
    StopFs(env, *proc->task());
  });
  EXPECT_EQ(kernel_.Run(), 0u);
}

// Regression: a read shorter than the queued pipe message used to discard
// the message's tail. POSIX pipes are byte streams; the tail must come back
// on subsequent reads.
TEST_F(PersonalityTest, UnixPipeShortReadKeepsMessageTail) {
  UnixPersonality unix_pers(kernel_, *fs_);
  UnixProcess* proc = nullptr;
  std::string reassembled;
  proc = unix_pers.Spawn("piper", [&](mk::Env& env) {
    auto pipe = proc->Pipe(env);
    ASSERT_TRUE(pipe.ok());
    ASSERT_TRUE(proc->Write(env, pipe->second, "through the pipe", 16).ok());
    char buf[8];
    // 4 + 4 + 8 bytes: three short reads must reassemble the full message.
    for (const uint32_t n : {4u, 4u, 8u}) {
      auto got = proc->Read(env, pipe->first, buf, n);
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(*got, n);
      reassembled.append(buf, n);
    }
    // The stream position is exact: the next message starts cleanly.
    ASSERT_TRUE(proc->Write(env, pipe->second, "next", 4).ok());
    auto got = proc->Read(env, pipe->first, buf, sizeof(buf));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(std::string(buf, *got), "next");
    StopFs(env, *proc->task());
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(reassembled, "through the pipe");
}

// Regression: fork copied the fd table but never granted the pipe's port
// rights to the child task, so the child's first pipe I/O failed on a name
// its port space never held. Round trip: parent -> child -> parent.
TEST_F(PersonalityTest, UnixForkGrantsPipeRightsToChild) {
  UnixPersonality unix_pers(kernel_, *fs_);
  UnixProcess* parent = nullptr;
  UnixProcess* child_proc = nullptr;  // set after Fork, before the child's thread first runs
  std::string child_saw;
  std::string parent_saw;
  parent = unix_pers.Spawn("parent", [&](mk::Env& env) {
    auto pipe = parent->Pipe(env);
    ASSERT_TRUE(pipe.ok());
    const int rfd = pipe->first;
    const int wfd = pipe->second;
    ASSERT_TRUE(parent->Write(env, wfd, "to child", 8).ok());
    auto child = parent->Fork(env, [&, rfd, wfd](mk::Env& child_env) {
      char buf[16] = {};
      // The child's own receive right drains the message queued pre-fork...
      auto got = child_proc->Read(child_env, rfd, buf, sizeof(buf));
      ASSERT_TRUE(got.ok());
      child_saw.assign(buf, *got);
      // ...and its own send right reaches the parent.
      ASSERT_TRUE(child_proc->Write(child_env, wfd, "from child", 10).ok());
      // Dropping the child's write end must not kill the pipe under the
      // parent (it holds a send right, not the receive right).
      ASSERT_EQ(child_proc->Close(child_env, wfd), base::Status::kOk);
    });
    ASSERT_TRUE(child.ok());
    child_proc = *child;
    auto code = parent->WaitPid(env, *child);
    ASSERT_TRUE(code.ok());
    char buf[16] = {};
    auto got = parent->Read(env, rfd, buf, sizeof(buf));
    ASSERT_TRUE(got.ok());
    parent_saw.assign(buf, *got);
    StopFs(env, *parent->task());
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(child_saw, "to child");
  EXPECT_EQ(parent_saw, "from child");
  EXPECT_EQ(kernel_.CheckInvariants(), 0u);
}

// Regression: O_APPEND writes used the per-fd offset, which goes stale the
// moment another descriptor grows the file. Every append must land at the
// file's *current* end.
TEST_F(PersonalityTest, UnixOAppendWritesAtCurrentEof) {
  UnixPersonality unix_pers(kernel_, *fs_);
  UnixProcess* proc = nullptr;
  proc = unix_pers.Spawn("appender", [&](mk::Env& env) {
    auto log_fd = proc->Open(env, "/app.log", kOCreat | kORdWr | kOAppend);
    ASSERT_TRUE(log_fd.ok());
    ASSERT_TRUE(proc->Write(env, *log_fd, "AAAA", 4).ok());
    // A second descriptor grows the file behind the append fd's back.
    auto other = proc->Open(env, "/app.log", kORdWr);
    ASSERT_TRUE(other.ok());
    ASSERT_TRUE(proc->Lseek(env, *other, 0, 2).ok());
    ASSERT_TRUE(proc->Write(env, *other, "BBBB", 4).ok());
    // The append write must land at offset 8, not the fd's stale offset 4.
    ASSERT_TRUE(proc->Write(env, *log_fd, "CC", 2).ok());
    // And writev through an append fd obeys the same rule.
    UnixIoVec iov[2] = {{const_cast<char*>("D"), 1}, {const_cast<char*>("E"), 1}};
    ASSERT_TRUE(proc->Writev(env, *log_fd, iov, 2).ok());
    char buf[16] = {};
    ASSERT_TRUE(proc->Lseek(env, *other, 0, 0).ok());
    auto got = proc->Read(env, *other, buf, sizeof(buf));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(std::string(buf, *got), "AAAABBBBCCDE");
    ASSERT_EQ(proc->Close(env, *log_fd), base::Status::kOk);
    ASSERT_EQ(proc->Close(env, *other), base::Status::kOk);
    StopFs(env, *proc->task());
  });
  EXPECT_EQ(kernel_.Run(), 0u);
}

// The personality-level cache switch: same POSIX semantics, fewer RPCs.
TEST_F(PersonalityTest, UnixFsCacheCutsRpcsTransparently) {
  UnixPersonality unix_pers(kernel_, *fs_);
  unix_pers.EnableFsCache();
  UnixProcess* proc = nullptr;
  proc = unix_pers.Spawn("cached", [&](mk::Env& env) {
    auto fd = proc->Open(env, "/cached.dat", kOCreat | kORdWr);
    ASSERT_TRUE(fd.ok());
    const uint64_t rpcs_before = kernel_.rpc_calls();
    char chunk[64];
    for (int i = 0; i < 16; ++i) {
      std::memset(chunk, 'a' + i, sizeof(chunk));
      ASSERT_TRUE(proc->Write(env, *fd, chunk, sizeof(chunk)).ok());
    }
    ASSERT_TRUE(proc->Lseek(env, *fd, 0, 0).ok());
    std::string all;
    for (int i = 0; i < 16; ++i) {
      auto got = proc->Read(env, *fd, chunk, sizeof(chunk));
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(*got, sizeof(chunk));
      all.append(chunk, sizeof(chunk));
    }
    const uint64_t rpcs = kernel_.rpc_calls() - rpcs_before;
    EXPECT_LT(rpcs, 8u) << "16 writes + 16 reads should coalesce to a handful of RPCs";
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(all[i * 64], 'a' + i);
      EXPECT_EQ(all[i * 64 + 63], 'a' + i);
    }
    ASSERT_EQ(proc->Close(env, *fd), base::Status::kOk);
    StopFs(env, *proc->task());
  });
  EXPECT_EQ(kernel_.Run(), 0u);
}

TEST_F(PersonalityTest, DosBoxRunsProgramAndPrints) {
  DosBox box(kernel_, *fs_, "box0");
  // Program: print "HI" via INT 21h AH=02, then exit 0 via AH=4C.
  Vm86Assembler as;
  as.MovImm(Vm86Reg::kAx, 0x0200)
      .MovImm(Vm86Reg::kDx, 'H')
      .Int(0x21)
      .MovImm(Vm86Reg::kDx, 'I')
      .Int(0x21)
      .MovImm(Vm86Reg::kAx, 0x4c00)
      .Int(0x21);
  kernel_.CreateThread(box.task(), "dos", [&](mk::Env& env) {
    ASSERT_EQ(box.LoadProgram(env, as.code()), base::Status::kOk);
    auto n = box.Run(env, /*translated=*/false);
    ASSERT_TRUE(n.ok());
    StopFs(env, *box.task());
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(box.console(), "HI");
  EXPECT_EQ(box.exit_code(), 0);
}

TEST_F(PersonalityTest, DosFileIoThroughVirtualDeviceDriver) {
  DosBox box(kernel_, *fs_, "box1");
  // Program layout: filename at 0x200, data at 0x210.
  Vm86Assembler as;
  as.MovImm(Vm86Reg::kAx, 0x3c00)  // create
      .MovImm(Vm86Reg::kDx, 0x200)
      .Int(0x21)
      .MovReg(Vm86Reg::kBx, Vm86Reg::kAx)  // handle
      .MovImm(Vm86Reg::kAx, 0x4000)        // write
      .MovImm(Vm86Reg::kCx, 4)
      .MovImm(Vm86Reg::kDx, 0x210)
      .MovImm(Vm86Reg::kSi, 0)  // offset
      .Int(0x21)
      .MovImm(Vm86Reg::kAx, 0x3e00)  // close
      .Int(0x21)
      .MovImm(Vm86Reg::kAx, 0x4c00)
      .Int(0x21);
  std::vector<uint8_t> image = as.code();
  image.resize(0x220, 0);
  const char fname[] = "GAME.SAV";
  std::memcpy(image.data() + 0x200, fname, sizeof(fname));
  std::memcpy(image.data() + 0x210, "SAVE", 4);
  std::string content;
  kernel_.CreateThread(box.task(), "dos", [&](mk::Env& env) {
    ASSERT_EQ(box.LoadProgram(env, image), base::Status::kOk);
    ASSERT_TRUE(box.Run(env, /*translated=*/false).ok());
    // Verify through the file server that the DOS write landed.
    svc::FsClient fs(fs_->GrantTo(*box.task()));
    auto h = fs.Open(env, "/GAME.SAV");
    ASSERT_TRUE(h.ok());
    char buf[8] = {};
    auto got = fs.Read(env, *h, 0, buf, sizeof(buf));
    ASSERT_TRUE(got.ok());
    content.assign(buf, *got);
    StopFs(env, *box.task());
  });
  EXPECT_EQ(kernel_.Run(), 0u);
  EXPECT_EQ(content, "SAVE");
  EXPECT_GE(box.dos_calls(), 4u);
}

TEST_F(PersonalityTest, TranslatorMatchesInterpreterAndIsFaster) {
  // Sum 1..100 in a loop: CX counts down, BX accumulates.
  Vm86Assembler as;
  as.MovImm(Vm86Reg::kCx, 100).MovImm(Vm86Reg::kBx, 0);
  const uint16_t loop_top = as.here();
  as.Add(Vm86Reg::kBx, Vm86Reg::kCx).Loop(loop_top).Store(0x500, Vm86Reg::kBx).Hlt();

  auto run = [&](bool translated) {
    DosBox box(kernel_, *fs_, translated ? "xlate" : "interp");
    uint64_t cycles = 0;
    uint16_t result = 0;
    kernel_.CreateThread(box.task(), "dos", [&](mk::Env& env) {
      ASSERT_EQ(box.LoadProgram(env, as.code()), base::Status::kOk);
      const uint64_t c0 = kernel_.cpu().cycles();
      auto n = box.Run(env, translated);
      ASSERT_TRUE(n.ok());
      cycles = kernel_.cpu().cycles() - c0;
      auto w = box.vm().ReadWord(env, 0x500);
      ASSERT_TRUE(w.ok());
      result = *w;
    });
    kernel_.Run();
    EXPECT_EQ(result, 5050u);
    if (translated) {
      EXPECT_GE(box.vm().blocks_translated(), 1u);
      EXPECT_GT(box.vm().translation_cache_hits(), 50u);
    }
    return cycles;
  };
  const uint64_t interp_cycles = run(false);
  const uint64_t xlate_cycles = run(true);
  EXPECT_LT(xlate_cycles, interp_cycles)
      << "hot loops must run faster under the block translator";
  // This test never touches the file server; its thread simply stays parked.
}

}  // namespace
}  // namespace pers
